// Integration test for the observability layer: one instrumented platform
// run through install → lease renewal under deterministic transport loss →
// expiry revocation, asserting the counter values at each stage.
package repro

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ext"
	"repro/internal/metrics"
	"repro/internal/sign"
	"repro/internal/store"
	"repro/internal/testutil"
	"repro/internal/transport"
)

// waitForCounter polls reg until the named counter reaches at least want.
func waitForCounter(t *testing.T, reg *metrics.Registry, name string, want uint64) {
	t.Helper()
	testutil.WaitForCounter(t, reg, name, want)
}

func TestMetricsLeaseLifecycle(t *testing.T) {
	fabric := transport.NewInProc()
	reg := metrics.New()
	fabric.Instrument(reg)

	signer, err := sign.NewSigner("base-1")
	if err != nil {
		t.Fatal(err)
	}
	base, err := core.NewBase(core.BaseConfig{
		Name:          "base-1",
		Addr:          "base-1",
		Caller:        fabric.Node("base-1"),
		Signer:        signer,
		Store:         store.NewMemory(),
		LeaseDur:      100 * time.Millisecond,
		RenewFraction: 0.5,
		RenewRetries:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(base.Close)
	base.Instrument(reg)
	baseMux := transport.NewMux()
	base.ServeOn(baseMux)
	stopBase, err := fabric.Serve("base-1", baseMux)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stopBase)

	node := newPlotterNode(t, fabric, "plotter-A", signer)
	node.weaver.Instrument(reg)
	node.receiver.Instrument(reg)
	node.receiver.Grantor().Start(10 * time.Millisecond)
	t.Cleanup(node.receiver.Grantor().Stop)

	if err := base.AddExtension(core.Extension{
		ID:      "hall/logger",
		Name:    "logger",
		Version: 1,
		Advices: []core.AdviceSpec{{
			Name: "log", Kind: core.KindCallBefore, Pattern: "*.*(..)",
			Builtin: ext.BLogger,
		}},
		Caps: []string{"log"},
	}); err != nil {
		t.Fatal(err)
	}

	// Stage 1: adaptation. The push installs and leases one extension.
	if err := base.AdaptNode("plotter-A", "plotter-A"); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for name, want := range map[string]uint64{
		"base.adapts":   1,
		"base.pushes":   1,
		"ext.installs":  1,
		"lease.grants":  1,
		"weave.inserts": 1,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("after adapt: %s = %d, want %d", name, got, want)
		}
	}
	if snap.Counters["transport.calls"] == 0 {
		t.Error("after adapt: no transport calls counted")
	}
	if got := snap.Gauges["ext.installed"]; got != 1 {
		t.Errorf("after adapt: ext.installed = %d, want 1", got)
	}

	// Stage 2: renewal under deterministic loss. Dropping every second call
	// forces in-lease retries, but with 3 retries per cycle the lease
	// survives and the extension stays installed.
	fabric.SetLoss(1, 2)
	waitForCounter(t, reg, "lease.renewals", 3)
	waitForCounter(t, reg, "lease.renew_retries", 1)
	snap = reg.Snapshot()
	if snap.Counters["transport.injected_losses"] == 0 {
		t.Error("under loss: no injected losses counted")
	}
	if got := snap.Counters["lease.renew_failures"]; got != 0 {
		t.Errorf("under loss: renew_failures = %d, want 0 (retries should absorb 1/2 loss)", got)
	}
	if !node.receiver.Has("logger") {
		t.Fatal("under loss: extension lapsed despite retries")
	}

	// Stage 3: total loss. Renewals fail terminally, the base notices the
	// departure, and the receiver autonomously expires and withdraws the
	// extension.
	fabric.SetLoss(1, 1)
	waitForCounter(t, reg, "lease.renew_failures", 1)
	waitForCounter(t, reg, "base.departures", 1)
	waitForCounter(t, reg, "ext.expiries", 1)
	waitForCounter(t, reg, "lease.expiries", 1)
	waitForCounter(t, reg, "weave.withdraws", 1)
	if node.receiver.Has("logger") {
		t.Error("after expiry: extension still installed")
	}
	snap = reg.Snapshot()
	if got := snap.Gauges["ext.installed"]; got != 0 {
		t.Errorf("after expiry: ext.installed = %d, want 0", got)
	}
	if got := snap.Gauges["lease.active"]; got != 0 {
		t.Errorf("after expiry: lease.active = %d, want 0", got)
	}
	if got := snap.Counters["ext.withdrawals"]; got != 0 {
		t.Errorf("after expiry: ext.withdrawals = %d, want 0 (expiry is not a withdrawal)", got)
	}
}
