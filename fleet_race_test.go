//go:build race

package repro

// raceDetectorEnabled shrinks the default fleet so -race suites stay fast;
// FLEET_NODES overrides it.
const raceDetectorEnabled = true
