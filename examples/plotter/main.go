// Plotter: the full prototype of §4.3–§4.5. A plotter robot enters a
// production hall; the hall's base station discovers its adaptation service
// through the lookup service and pushes the hardware-monitoring extension;
// the robot draws; every motor action lands in the base-station database;
// the drawing is then replayed onto a second plotter from the recorded
// movements; finally the robot leaves and the extension is revoked through
// lease expiry.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/ext"
	"repro/internal/lvm"
	"repro/internal/mobility"
	"repro/internal/plotter"
	"repro/internal/registry"
	"repro/internal/sandbox"
	"repro/internal/sign"
	"repro/internal/store"
	"repro/internal/svc"
	"repro/internal/transport"
	"repro/internal/weave"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fabric := transport.NewInProc()
	world := mobility.NewWorld()
	if err := world.AddArea(mobility.Area{Name: "hall-1", Center: mobility.Point{}, Radius: 10, BaseAddr: "base-1"}); err != nil {
		return err
	}
	if err := world.AddNode("plotter-1", "plotter-1", mobility.Point{X: 0, Y: 0}); err != nil {
		return err
	}
	fabric.SetLinkFunc(world.LinkFunc())

	// --- Infrastructure: lookup service + base station with its database.
	lookup := registry.NewLookup(clock.Real{})
	lookup.Grantor().Start(10 * time.Millisecond)
	defer lookup.Grantor().Stop()
	lookupMux := transport.NewMux()
	lookupSrv := registry.NewServer("lookup-1", lookup, lookupMux, fabric.Node("lookup-1"), clock.Real{})
	defer lookupSrv.Close()
	if _, err := fabric.Serve("lookup-1", lookupMux); err != nil {
		return err
	}

	signer, err := sign.NewSigner("hall-1")
	if err != nil {
		return err
	}
	movementDB := store.NewMemory()
	base, err := core.NewBase(core.BaseConfig{
		Name:     "base-1",
		Addr:     "base-1",
		Caller:   fabric.Node("base-1"),
		Signer:   signer,
		Store:    movementDB,
		LeaseDur: 150 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer base.Close()
	baseMux := transport.NewMux()
	base.ServeOn(baseMux)
	if _, err := fabric.Serve("base-1", baseMux); err != nil {
		return err
	}

	// The hall's policy: monitor and log all hardware activity (Fig. 5).
	if err := base.AddExtension(core.Extension{
		ID:      "hall-1/hw-monitoring",
		Name:    "hw-monitoring",
		Version: 1,
		Advices: []core.AdviceSpec{{
			Name:    "log-motor-commands",
			Kind:    core.KindCallBefore,
			Pattern: "Motor.*(..)", // entries of ANY Motor method (ANYMETHOD + REST)
			Builtin: ext.BMonitor,
			Config:  map[string]string{"mode": "sync", "robot": "robot:1:1"},
		}},
		Caps: []string{"net", "clock"},
	}); err != nil {
		return err
	}
	if _, err := base.WatchLookup(&registry.Client{Caller: fabric.Node("base-1"), Addr: "lookup-1"}, time.Minute); err != nil {
		return err
	}

	// --- Mobile node: plotter + adaptation service.
	weaver := weave.New()
	canvas := plotter.NewCanvas(12, 8)
	plot, err := plotter.New(weaver, canvas)
	if err != nil {
		return err
	}
	services := svc.NewRegistry(weaver)
	plot.RegisterService(services)

	trust := sign.NewTrustStore()
	trust.Trust("hall-1", signer.PublicKey())
	builtins := core.NewBuiltins()
	ext.RegisterAll(builtins)
	receiver, err := core.NewReceiver(core.ReceiverConfig{
		NodeName: "plotter-1",
		Addr:     "plotter-1",
		Weaver:   weaver,
		Trust:    trust,
		Policy:   sandbox.AllowAll(),
		Host:     ext.NewNodeHost(ext.NodeHostConfig{Caller: fabric.Node("plotter-1"), Clock: clock.Real{}}),
		Builtins: builtins,
	})
	if err != nil {
		return err
	}
	receiver.Grantor().Start(10 * time.Millisecond)
	defer receiver.Grantor().Stop()
	nodeMux := transport.NewMux()
	receiver.ServeOn(nodeMux)
	services.ServeOn(nodeMux)
	if _, err := fabric.Serve("plotter-1", nodeMux); err != nil {
		return err
	}

	// --- The robot enters the hall and advertises its adaptation service.
	fmt.Println("1. plotter-1 enters hall-1 and advertises its adaptation service")
	stopAdv, err := receiver.Advertise(&registry.Client{Caller: fabric.Node("plotter-1"), Addr: "lookup-1"}, time.Minute, nil)
	if err != nil {
		return err
	}
	defer stopAdv()
	waitFor(func() bool { return receiver.Has("hw-monitoring") })
	fmt.Printf("   adapted: extensions now installed: %v\n", names(receiver))

	// --- A drawing program drives the plotter through its exported service.
	fmt.Println("2. drawing program draws a rectangle through the Plotter service")
	drawer := fabric.Node("drawing-program")
	for _, cmd := range [][3]int64{{1, 1, 0}, {9, 1, 1}, {9, 5, 1}, {1, 5, 1}, {1, 1, 1}} {
		method := "moveTo"
		if cmd[2] == 1 {
			method = "line"
		}
		if _, err := svc.Call(drawer, "plotter-1", plotter.ServiceName, method, "artist", lvm.Int(cmd[0]), lvm.Int(cmd[1])); err != nil {
			return err
		}
	}
	fmt.Print(canvas.Render())

	// --- The base station's database now holds the movement history.
	recs := movementDB.Query(store.Filter{Robot: "robot:1:1"})
	fmt.Printf("3. base-1 database: %d motor actions logged for robot:1:1\n", len(recs))

	// --- Replay the recorded movements onto a second plotter (§4.5,
	// Simulation): the drawing is reproduced without the original program.
	weaver2 := weave.New()
	canvas2 := plotter.NewCanvas(12, 8)
	plot2, err := plotter.New(weaver2, canvas2)
	if err != nil {
		return err
	}
	var cmds []plotter.ReplayCommand
	for _, r := range recs {
		cmds = append(cmds, plotter.ReplayCommand{Device: r.Device, Action: r.Action, Value: r.Value})
	}
	if err := plot2.Replay(cmds); err != nil {
		return err
	}
	fmt.Printf("4. replay onto a fresh plotter reproduces the drawing: %d cells vs %d original\n",
		canvas2.Count(), canvas.Count())

	// --- The robot leaves the hall; the lease lapses; the extension is
	// withdrawn autonomously.
	fmt.Println("5. plotter-1 leaves hall-1")
	if err := world.MoveNode("plotter-1", mobility.Point{X: 1000, Y: 0}); err != nil {
		return err
	}
	waitFor(func() bool { return !receiver.Has("hw-monitoring") })
	fmt.Printf("   extension revoked; receiver activity: %v\n", eventTrail(receiver))
	return nil
}

func names(r *core.Receiver) []string {
	var out []string
	for _, i := range r.Installed() {
		out = append(out, fmt.Sprintf("%s@v%d", i.Name, i.Version))
	}
	return out
}

func eventTrail(r *core.Receiver) []string {
	var out []string
	for _, a := range r.Activity() {
		out = append(out, a.Event+":"+a.Ext)
	}
	return out
}

func waitFor(cond func() bool) {
	clk := clock.Real{}
	deadline := clk.Now().Add(5 * time.Second)
	for !cond() && clk.Now().Before(deadline) {
		<-clk.After(2 * time.Millisecond)
	}
}
