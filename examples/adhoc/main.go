// Ad-hoc mode: the symmetric configuration of §2.1/§3.2 — every node embeds
// BOTH an extension base and an extension receiver. Three devices meet
// spontaneously; each announces itself, discovers its peers and distributes
// its own extension to them. The community converges to the union of all
// extensions without any fixed infrastructure, and when one peer leaves, its
// extensions disappear from the others through lease expiry.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/aop"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/discovery"
	"repro/internal/lvm"
	"repro/internal/mobility"
	"repro/internal/sandbox"
	"repro/internal/sign"
	"repro/internal/transport"
	"repro/internal/weave"
)

type peer struct {
	name     string
	base     *core.Base
	receiver *core.Receiver
	weaver   *weave.Weaver
	signer   *sign.Signer
	trust    *sign.TrustStore
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fabric := transport.NewInProc()
	world := mobility.NewWorld()
	world.SetNodeRange(50)
	bus := discovery.NewBus()

	names := []string{"pda-a", "pda-b", "laptop-c"}
	peers := make([]*peer, 0, len(names))
	for i, name := range names {
		p, err := newPeer(fabric, name)
		if err != nil {
			return err
		}
		if err := world.AddNode(name, name, mobility.Point{X: float64(i * 10)}); err != nil {
			return err
		}
		peers = append(peers, p)
	}
	fabric.SetLinkFunc(world.LinkFunc())

	// Everyone trusts everyone in this community (each node's own choice).
	for _, p := range peers {
		for _, q := range peers {
			p.trust.Trust(q.name, q.signer.PublicKey())
		}
	}

	// Each peer subscribes to announcements and adapts newcomers it can hear.
	for _, p := range peers {
		me := p
		bus.Subscribe(func(a discovery.Announcement) {
			if a.Name == me.name {
				return
			}
			_ = me.base.AdaptNode(a.Name, a.LookupAddr)
		}, func(a discovery.Announcement) bool {
			return world.Linked(me.name, a.LookupAddr)
		})
	}

	fmt.Println("1. three devices meet and announce themselves")
	for _, p := range peers {
		bus.Announce(discovery.Announcement{Name: p.name, LookupAddr: p.name})
	}
	// Announcing twice lets late subscribers hear early announcers.
	for _, p := range peers {
		bus.Announce(discovery.Announcement{Name: p.name, LookupAddr: p.name})
	}

	waitFor(func() bool {
		for _, p := range peers {
			if len(p.receiver.Installed()) != len(peers)-1 {
				return false
			}
		}
		return true
	})
	fmt.Println("2. community converged: every node carries every peer's extension")
	for _, p := range peers {
		fmt.Printf("   %-9s has %v\n", p.name, extNames(p.receiver))
	}

	fmt.Println("3. laptop-c leaves the community")
	if err := world.MoveNode("laptop-c", mobility.Point{X: 10_000}); err != nil {
		return err
	}
	waitFor(func() bool {
		for _, p := range peers[:2] {
			if p.receiver.Has("svc-laptop-c") {
				return false
			}
		}
		return true
	})
	fmt.Println("4. its extensions expired everywhere; remaining community:")
	for _, p := range peers[:2] {
		fmt.Printf("   %-9s has %v\n", p.name, extNames(p.receiver))
	}
	for _, p := range peers {
		p.base.Close()
		p.receiver.Grantor().Stop()
	}
	return nil
}

func newPeer(fabric *transport.InProc, name string) (*peer, error) {
	signer, err := sign.NewSigner(name)
	if err != nil {
		return nil, err
	}
	weaver := weave.New()
	trust := sign.NewTrustStore()
	builtins := core.NewBuiltins()
	builtins.Register("community-svc", func(env *core.Env, cfg map[string]string) (aop.Body, error) {
		return aop.BodyFunc(func(*aop.Context) error { return nil }), nil
	})
	receiver, err := core.NewReceiver(core.ReceiverConfig{
		NodeName: name, Addr: name,
		Weaver: weaver, Trust: trust, Policy: sandbox.AllowAll(),
		Host: lvm.HostMap{}, Builtins: builtins,
	})
	if err != nil {
		return nil, err
	}
	receiver.Grantor().Start(10 * time.Millisecond)
	base, err := core.NewBase(core.BaseConfig{
		Name: name, Addr: name,
		Caller: fabric.Node(name), Signer: signer,
		LeaseDur: 100 * time.Millisecond, CallTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	// Each node offers one extension of its own to the community.
	if err := base.AddExtension(core.Extension{
		ID:      name + "/svc",
		Name:    "svc-" + name,
		Version: 1,
		Advices: []core.AdviceSpec{{
			Name:    "a",
			Kind:    core.KindCallBefore,
			Pattern: "*.*(..)",
			Builtin: "community-svc",
		}},
	}); err != nil {
		return nil, err
	}
	mux := transport.NewMux()
	receiver.ServeOn(mux)
	base.ServeOn(mux)
	if _, err := fabric.Serve(name, mux); err != nil {
		return nil, err
	}
	return &peer{name: name, base: base, receiver: receiver, weaver: weaver, signer: signer, trust: trust}, nil
}

func extNames(r *core.Receiver) []string {
	var out []string
	for _, i := range r.Installed() {
		out = append(out, i.Name)
	}
	sort.Strings(out)
	return out
}

func waitFor(cond func() bool) {
	clk := clock.Real{}
	deadline := clk.Now().Add(5 * time.Second)
	for !cond() && clk.Now().Before(deadline) {
		<-clk.After(2 * time.Millisecond)
	}
}
