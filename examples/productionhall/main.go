// Production hall: the Fig. 2 scenario. A robot exports service m_R; when it
// enters the hall, the base pushes an access-control extension (which
// implicitly brings the session-management extension with it) and a
// quality-assurance extension that persistently logs every state change.
// Calls from authorised clients complete; others end with an exception. The
// hall later evolves its policy: the new version is pushed to the already
// adapted robot.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/ext"
	"repro/internal/lvm"
	"repro/internal/robot"
	"repro/internal/sandbox"
	"repro/internal/sign"
	"repro/internal/store"
	"repro/internal/svc"
	"repro/internal/transport"
	"repro/internal/weave"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func accessPolicy(version int, allow string) core.Extension {
	return core.Extension{
		ID:      "hall/access-control",
		Name:    "access-control",
		Version: version,
		Advices: []core.AdviceSpec{{
			Name:    "authorize",
			Kind:    core.KindCallBefore,
			Pattern: "Robot.*(..)",
			Builtin: ext.BAccessControl,
			Config:  map[string]string{"allow": allow},
		}},
		Requires: []string{ext.SessionBundleName}, // implicit session extraction
		Caps:     []string{"session"},
	}
}

func run() error {
	fabric := transport.NewInProc()

	// Base station with the hall database.
	signer, err := sign.NewSigner("hall-1")
	if err != nil {
		return err
	}
	db := store.NewMemory()
	base, err := core.NewBase(core.BaseConfig{
		Name: "base-1", Addr: "base-1",
		Caller: fabric.Node("base-1"), Signer: signer, Store: db,
		LeaseDur: time.Second,
	})
	if err != nil {
		return err
	}
	defer base.Close()
	baseMux := transport.NewMux()
	base.ServeOn(baseMux)
	if _, err := fabric.Serve("base-1", baseMux); err != nil {
		return err
	}

	// The hall's policy set: access control + quality logging of state (*).
	if err := base.AddExtension(accessPolicy(1, "operator")); err != nil {
		return err
	}
	if err := base.AddExtension(core.Extension{
		ID:      "hall/quality-assurance",
		Name:    "quality-assurance",
		Version: 1,
		Advices: []core.AdviceSpec{{
			Name:    "log-state-changes",
			Kind:    core.KindFieldSet,
			Pattern: "Motor.pos",
			Builtin: ext.BMonitor,
			Config:  map[string]string{"mode": "sync"},
		}},
		Caps: []string{"net", "clock"},
	}); err != nil {
		return err
	}

	// The robot node: a one-armed robot exporting Robot.moveArm as m_R.
	weaver := weave.New()
	ctrl := robot.NewController(weaver, nil)
	arm, err := ctrl.AddMotor("arm")
	if err != nil {
		return err
	}
	services := svc.NewRegistry(weaver)
	services.Register("Robot", "moveArm", []string{"int"}, "int", func(args []lvm.Value) (lvm.Value, error) {
		if err := arm.Rotate(args[0].AsInt()); err != nil {
			return lvm.Nil(), err
		}
		return lvm.Int(arm.Position()), nil
	})

	trust := sign.NewTrustStore()
	trust.Trust("hall-1", signer.PublicKey())
	builtins := core.NewBuiltins()
	ext.RegisterAll(builtins)
	receiver, err := core.NewReceiver(core.ReceiverConfig{
		NodeName: "robot-R", Addr: "robot-R",
		Weaver: weaver, Trust: trust, Policy: sandbox.AllowAll(),
		Host:     ext.NewNodeHost(ext.NodeHostConfig{Caller: fabric.Node("robot-R"), Clock: clock.Real{}}),
		Builtins: builtins,
	})
	if err != nil {
		return err
	}
	nodeMux := transport.NewMux()
	receiver.ServeOn(nodeMux)
	services.ServeOn(nodeMux)
	if _, err := fabric.Serve("robot-R", nodeMux); err != nil {
		return err
	}

	callArm := func(who string, deg int64) {
		v, err := svc.Call(fabric.Node(who), "robot-R", "Robot", "moveArm", who, lvm.Int(deg))
		if err != nil {
			fmt.Printf("   %-9s moveArm(%3d) -> DENIED (%v)\n", who, deg, shortErr(err))
			return
		}
		fmt.Printf("   %-9s moveArm(%3d) -> arm at %s\n", who, deg, v)
	}

	fmt.Println("1. before adaptation: anyone can drive the robot")
	callArm("intruder", 15)

	fmt.Println("2. robot enters the hall; base pushes access control (+ implicit session) and QA logging")
	if err := base.AdaptNode("robot-R", "robot-R"); err != nil {
		return err
	}
	fmt.Printf("   installed: %v\n", names(receiver))

	fmt.Println("3. adapted calls (Fig. 2): session -> access control -> m_R -> state logged")
	callArm("operator", 30)
	callArm("intruder", 30)

	fmt.Printf("   QA database: %d state changes logged\n", db.Len())

	fmt.Println("4. policy evolves: visitors are now also authorised (v2 replaces v1)")
	if err := base.ReplaceExtension(accessPolicy(2, "operator,visitor")); err != nil {
		return err
	}
	waitFor(func() bool {
		for _, i := range receiver.Installed() {
			if i.Name == "access-control" && i.Version == 2 {
				return true
			}
		}
		return false
	})
	callArm("visitor", -10)
	callArm("intruder", -10)

	fmt.Println("5. robot leaves: base releases its leases; extensions are withdrawn")
	base.Release("robot-R")
	receiver.Grantor().Start(10 * time.Millisecond)
	defer receiver.Grantor().Stop()
	waitFor(func() bool { return len(receiver.Installed()) == 0 })
	callArm("intruder", 5)
	return nil
}

func names(r *core.Receiver) []string {
	var out []string
	for _, i := range r.Installed() {
		tag := ""
		if i.System {
			tag = " (implicit)"
		}
		out = append(out, fmt.Sprintf("%s@v%d%s", i.Name, i.Version, tag))
	}
	return out
}

func shortErr(err error) string {
	s := err.Error()
	if len(s) > 70 {
		s = s[len(s)-70:]
	}
	return s
}

func waitFor(cond func() bool) {
	clk := clock.Real{}
	deadline := clk.Now().Add(5 * time.Second)
	for !cond() && clk.Now().Before(deadline) {
		<-clk.After(2 * time.Millisecond)
	}
}
