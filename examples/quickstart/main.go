// Quickstart: weave an extension into a running application at run time,
// watch it intercept calls, then withdraw it — the core PROSE loop from §3.1
// in about fifty lines of application code.
package main

import (
	"fmt"
	"log"

	"repro/internal/aop"
	"repro/internal/jit"
	"repro/internal/lvm"
	"repro/internal/weave"
)

// The "application": a robot controller in LVM bytecode, compiled by the JIT
// with minimal hook stubs at every join point.
const robotApp = `
class Robot
  field pos
  method void moveArm(int deg)
    getself pos
    load deg
    add
    setself pos
  end
  method int armPos()
    getself pos
    ret
  end
end`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	weaver := weave.New()
	machine := jit.NewMachine(lvm.MustAssemble(robotApp), weaver, nil)
	robot := machine.Prog.Class("Robot").New()

	call := func(deg int64) {
		if _, err := machine.Call("Robot", "moveArm", robot, lvm.Int(deg)); err != nil {
			fmt.Printf("  moveArm(%d) -> DENIED: %v\n", deg, err)
			return
		}
		pos, _ := machine.Call("Robot", "armPos", robot)
		fmt.Printf("  moveArm(%d) -> arm at %d\n", deg, pos.I)
	}

	fmt.Println("1. Application running, no extensions woven:")
	call(30)
	call(45)

	// The environment becomes proactive: a monitoring + authorization aspect
	// is woven into the running application. The robot code is unchanged.
	monitor := &aop.Aspect{
		Name: "hall-policy",
		Advices: []aop.Advice{
			aop.BeforeCall("Robot.moveArm(..)", aop.BodyFunc(func(ctx *aop.Context) error {
				fmt.Printf("  [extension] intercept %s.%s(%s)\n", ctx.Sig.Class, ctx.Sig.Method, ctx.Arg(0))
				if ctx.Arg(0).AsInt() > 90 {
					ctx.Abortf("rotation %d exceeds hall safety limit", ctx.Arg(0).AsInt())
				}
				return nil
			})),
			aop.OnFieldSet("Robot.pos", aop.BodyFunc(func(ctx *aop.Context) error {
				fmt.Printf("  [extension] state change * -> pos=%s\n", ctx.Arg(0))
				return nil
			})),
		},
	}
	fmt.Println("\n2. Robot enters the hall; the hall weaves its policy extension:")
	if err := weaver.Insert(monitor); err != nil {
		return err
	}
	call(10)
	call(200) // vetoed by the policy

	fmt.Println("\n3. Robot leaves the hall; the extension is discarded:")
	if err := weaver.Withdraw("hall-policy"); err != nil {
		return err
	}
	call(200) // no policy anymore

	fmt.Printf("\nsites registered: %d, active after withdrawal: %d\n",
		weaver.SiteCount(), weaver.ActiveSiteCount())
	return nil
}
