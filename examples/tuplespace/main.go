// Tuple-space distribution: the paper's future-work idea (§4.6, citing Linda
// and TSpaces) made concrete. Instead of pushing extensions at discovered
// nodes, the base writes them into a shared tuple space under a lease; nodes
// poll the space and install whatever their trust store accepts. Locality
// still holds: when the base stops renewing the tuple, it vanishes and every
// node autonomously withdraws the extension.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/aop"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/lvm"
	"repro/internal/sandbox"
	"repro/internal/sign"
	"repro/internal/tuplespace"
	"repro/internal/weave"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	clk := clock.NewManual(time.Unix(0, 0))
	space := tuplespace.New(clk)

	hall, err := sign.NewSigner("hall-1")
	if err != nil {
		return err
	}

	// Two nodes with different trust preferences: pda-a trusts the hall,
	// pda-b trusts nobody.
	makeNode := func(name string, trustHall bool) (*core.Receiver, *core.SpaceListener, error) {
		trust := sign.NewTrustStore()
		if trustHall {
			trust.Trust("hall-1", hall.PublicKey())
		}
		builtins := core.NewBuiltins()
		builtins.Register("noop", func(*core.Env, map[string]string) (aop.Body, error) {
			return aop.BodyFunc(func(*aop.Context) error { return nil }), nil
		})
		receiver, err := core.NewReceiver(core.ReceiverConfig{
			NodeName: name,
			Weaver:   weave.New(),
			Trust:    trust,
			Policy:   sandbox.AllowAll(),
			Clock:    clk,
			Host:     lvm.HostMap{},
			Builtins: builtins,
		})
		if err != nil {
			return nil, nil, err
		}
		return receiver, &core.SpaceListener{Space: space, Receiver: receiver}, nil
	}

	recvA, listenA, err := makeNode("pda-a", true)
	if err != nil {
		return err
	}
	recvB, listenB, err := makeNode("pda-b", false)
	if err != nil {
		return err
	}

	fmt.Println("1. hall-1 writes its policy extension into the shared tuple space (20s lease)")
	extension := core.Extension{
		ID: "hall-1/policy", Name: "hall-policy", Version: 1,
		Advices: []core.AdviceSpec{{Name: "a", Kind: core.KindCallBefore, Pattern: "*.*(..)", Builtin: "noop"}},
	}
	if _, err := core.PublishExtension(space, hall, extension, "hall-1", 20*time.Second); err != nil {
		return err
	}

	fmt.Println("2. both nodes scan the space")
	listenA.Scan(10 * time.Second)
	listenB.Scan(10 * time.Second)
	fmt.Printf("   pda-a installed: %v (trusts hall-1)\n", recvA.Has("hall-policy"))
	fmt.Printf("   pda-b installed: %v (trusts nobody — signature rejected)\n", recvB.Has("hall-policy"))

	fmt.Println("3. the hall keeps renewing the tuple; pda-a keeps renewing its local lease")
	for i := 0; i < 3; i++ {
		clk.Advance(8 * time.Second)
		space.ExpireNow()
		recvA.Grantor().ExpireNow()
		if space.Len() == 1 {
			// hall still around: it renews the tuple; the node rescans.
			listenA.Scan(10 * time.Second)
		}
	}
	fmt.Printf("   after 24s: pda-a still adapted: %v\n", recvA.Has("hall-policy"))

	fmt.Println("4. the hall disappears; the tuple's lease lapses")
	clk.Advance(21 * time.Second)
	space.ExpireNow()
	fmt.Printf("   tuples left in space: %d\n", space.Len())
	clk.Advance(11 * time.Second)
	recvA.Grantor().ExpireNow()
	fmt.Printf("   pda-a adapted after expiry: %v\n", recvA.Has("hall-policy"))
	for _, a := range recvA.Activity() {
		fmt.Printf("   pda-a activity: %s %s\n", a.Event, a.Ext)
	}
	return nil
}
