// Scenario tests for distributed lifecycle tracing: a node's whole journey —
// discovery, adaptation push (with per-retry attempt spans under injected
// loss), weaving, lease renewals and revocation — must read as ONE trace,
// stitched across the fabric by the span-context envelope. Runs on the
// deterministic network simulator; set SIMNET_SEED to replay a run exactly.
package repro

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/lease"
	"repro/internal/metrics"
	"repro/internal/registry"
	"repro/internal/sign"
	"repro/internal/simnet"
	"repro/internal/trace"
	"repro/internal/transport"
)

// respLossCaller executes calls normally but swallows the response of the
// first call to each listed method, returning ErrUnreachable instead — the
// classic wireless failure where the install lands but the base never hears
// back. Sitting UNDER the retry policy, it forces a retry whose re-push the
// receiver answers as an idempotent refresh, all within one logical call.
type respLossCaller struct {
	inner transport.Caller
	mu    sync.Mutex
	drop  map[string]bool // method -> still to drop
}

func (c *respLossCaller) Call(ctx context.Context, to, method string, req, resp any) error {
	err := c.inner.Call(ctx, to, method, req, resp)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.drop[method] {
		c.drop[method] = false
		return fmt.Errorf("%w: %s response dropped", transport.ErrUnreachable, method)
	}
	return nil
}

// tracedWorld is a simWorld whose base and node share one tracer (they run in
// one test process; parenting across them still exercises the wire envelope).
func newTracedBase(w *simWorld, name string, tr *trace.Tracer, caller transport.Caller) *scenarioBase {
	w.t.Helper()
	signer, err := sign.NewSigner(name)
	if err != nil {
		w.t.Fatal(err)
	}
	pol := transport.NewPolicy(w.seed)
	pol.Clock = w.clk
	pol.BaseDelay = 0
	pol.MaxAttempts = 8
	b := &scenarioBase{name: name, reg: metrics.New(), signer: signer, pol: pol}
	base, err := core.NewBase(core.BaseConfig{
		Name:          name,
		Addr:          name,
		Caller:        caller,
		Signer:        signer,
		Clock:         w.clk,
		LeaseDur:      10 * time.Second,
		RenewFraction: 0.5,
		CallTimeout:   time.Hour,
		Policy:        pol,
	})
	if err != nil {
		w.t.Fatal(err)
	}
	b.base = base
	w.t.Cleanup(base.Close)
	base.Instrument(b.reg)
	base.Trace(tr)
	mux := transport.NewMux()
	base.ServeOn(mux)
	stop, err := w.net.Serve(name, mux)
	if err != nil {
		w.t.Fatal(err)
	}
	w.t.Cleanup(stop)
	return b
}

// spansByName indexes a snapshot slice by span name.
func spansByName(spans []trace.SpanSnapshot) map[string][]trace.SpanSnapshot {
	out := make(map[string][]trace.SpanSnapshot)
	for _, s := range spans {
		out[s.Name] = append(out[s.Name], s)
	}
	return out
}

// TestScenarioTracedLifecycle drives the full MIDAS lifecycle — advertise at
// the lookup, watcher-event adaptation, a push whose first response is lost
// (retry + idempotent refresh), weaving, a lease renewal, then revocation —
// and asserts every span of it shares the trace rooted at the advertisement.
func TestScenarioTracedLifecycle(t *testing.T) {
	w := newSimWorld(t)
	tr := trace.New(w.seed)

	// Lookup service.
	lookup := registry.NewLookup(w.clk)
	lookup.Grantor().Start(time.Second)
	t.Cleanup(lookup.Grantor().Stop)
	lookupMux := transport.NewMux()
	lookupSrv := registry.NewServer("lookup-1", lookup, lookupMux, w.net.Node("lookup-1"), w.clk)
	t.Cleanup(lookupSrv.Close)
	stop, err := w.net.Serve("lookup-1", lookupMux)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stop)

	// Base whose first install response is lost on the "wireless" link.
	lossy := &respLossCaller{inner: w.net.Node("base-1"), drop: map[string]bool{core.MethodInstall: true}}
	b := newTracedBase(w, "base-1", tr, lossy)
	if err := b.base.AddExtension(noopScenarioExt("policy", 1)); err != nil {
		t.Fatal(err)
	}

	// Node, traced.
	n := w.newNode("robot1", b.signer)
	n.receiver.Trace(tr)

	// Watch first, then advertise: the advertisement roots the trace.
	if _, err := b.base.WatchLookup(
		&registry.Client{Caller: w.net.Node("base-1"), Addr: "lookup-1", Timeout: time.Hour},
		time.Hour); err != nil {
		t.Fatal(err)
	}
	stopAdv, err := n.receiver.Advertise(
		&registry.Client{Caller: w.net.Node("robot1"), Addr: "lookup-1", Timeout: time.Hour},
		time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stopAdv)

	waitFor(t, "adaptation via lookup", func() bool { return n.receiver.Has("policy") })
	waitFor(t, "base adapted the node", func() bool { return len(b.base.Adapted()) == 1 })

	// At least one renewal cycle.
	renewalsBefore := n.counter("lease.renewals")
	w.advance(6*time.Second, 500*time.Millisecond)
	waitFor(t, "a lease renewal", func() bool { return n.counter("lease.renewals") > renewalsBefore })

	// Revocation.
	if err := b.base.RemoveExtension("policy"); err != nil {
		t.Fatal(err)
	}
	if n.receiver.Has("policy") {
		t.Fatal("extension still installed after revoke")
	}

	// --- The whole lifecycle must be ONE trace. ---
	roots := tr.Spans(trace.Filter{Name: "discovery.advertise"})
	if len(roots) != 1 {
		t.Fatalf("got %d discovery.advertise spans, want 1", len(roots))
	}
	root := roots[0]
	if root.ParentID != "" {
		t.Fatalf("advertise span has a parent: %+v", root)
	}
	lifecycle := tr.Spans(trace.Filter{TraceID: root.TraceID})
	byName := spansByName(lifecycle)

	wantOne := []string{"base.adapt", "base.push", "base.revoke", "ext.withdraw", "weave.insert", "weave.withdraw"}
	for _, name := range wantOne {
		if len(byName[name]) != 1 {
			t.Errorf("trace %s: got %d %q spans, want 1 (have: %v)", root.TraceID, len(byName[name]), name, names(lifecycle))
		}
	}

	// The lost response forced a retry: two attempts under the push's call,
	// and two installs at the receiver — a real one and an idempotent refresh.
	if got := len(byName["rpc.attempt"]); got < 2 {
		t.Errorf("got %d rpc.attempt spans in the lifecycle trace, want >= 2 (install retry)", got)
	}
	installs := byName["ext.install"]
	if len(installs) != 2 {
		t.Fatalf("got %d ext.install spans, want 2 (install + refresh)", len(installs))
	}
	outcomes := map[string]int{}
	for _, s := range installs {
		outcomes[s.Tags["outcome"]]++
	}
	if outcomes["install"] != 1 || outcomes["refresh"] != 1 {
		t.Errorf("install outcomes = %v, want one install and one refresh", outcomes)
	}
	if len(byName["lease.renew"]) < 1 {
		t.Errorf("no lease.renew span joined the lifecycle trace")
	}

	// Parenting: the adaptation hangs off the advertisement.
	adapt := byName["base.adapt"][0]
	if adapt.TraceID != root.TraceID {
		t.Errorf("base.adapt in trace %s, want %s", adapt.TraceID, root.TraceID)
	}
	push := byName["base.push"][0]
	if push.ParentID != adapt.SpanID {
		t.Errorf("base.push parent = %s, want the adapt span %s", push.ParentID, adapt.SpanID)
	}

	// Open spans must not leak: everything in the lifecycle trace ended.
	for _, s := range lifecycle {
		if s.EndUnixNano == 0 {
			t.Errorf("span %s (%s) never ended", s.Name, s.SpanID)
		}
	}

	// --- The trace is retrievable over the fabric (midasctl trace path). ---
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := transport.Invoke[core.TraceReq, core.TraceResp](ctx, w.net.Node("ctl"), "robot1",
		core.MethodTrace, core.TraceReq{Query: "policy"})
	if err != nil {
		t.Fatal(err)
	}
	got := spansByName(resp.Spans)
	if len(got["ext.install"]) != 2 || len(got["base.push"]) != 1 {
		t.Errorf("midas.trace query 'policy' returned %v, want the full lifecycle", names(resp.Spans))
	}
	for _, s := range resp.Spans {
		// Admission runs when the extension is added at the base, before any
		// node exists — its span starts a trace of its own.
		if s.Name == "base.admit" {
			continue
		}
		if s.TraceID != root.TraceID {
			t.Errorf("queried span %s belongs to trace %s, want %s", s.Name, s.TraceID, root.TraceID)
		}
	}
	// Structured events of the trace ride along (the lease renewals at least).
	hasLeaseEvent := false
	for _, e := range resp.Events {
		if e.Component == "lease" {
			hasLeaseEvent = true
		}
	}
	if !hasLeaseEvent {
		t.Errorf("no lease events returned with the trace (got %d events)", len(resp.Events))
	}

	// Unknown queries return nothing rather than everything.
	empty, err := transport.Invoke[core.TraceReq, core.TraceResp](ctx, w.net.Node("ctl"), "robot1",
		core.MethodTrace, core.TraceReq{Query: "no-such-ext"})
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Spans) != 0 {
		t.Errorf("query for unknown extension returned %d spans", len(empty.Spans))
	}
}

func names(spans []trace.SpanSnapshot) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}

// TestScenarioTraceDeterministicReplay pins the determinism contract: under
// the manual clock and a fixed seed, two identical scripted runs produce
// byte-identical span snapshots — IDs, ordering, tags, errors and all. The
// run is fully synchronous (no simulated time passes) so the tracer's RNG
// draw order is pinned.
func TestScenarioTraceDeterministicReplay(t *testing.T) {
	seed := scenarioSeed(t)
	epoch := time.Unix(0, 0)
	run := func() []trace.SpanSnapshot {
		clk := clock.NewManual(epoch)
		net := simnet.New(clk, seed)
		defer net.Close()
		w := &simWorld{t: t, clk: clk, net: net, seed: seed}
		tr := trace.New(seed)
		tr.SetNow(func() time.Time { return epoch })

		b := newTracedBase(w, "base-1", tr, w.net.Node("base-1"))
		n := w.newNode("robot1", b.signer)
		n.receiver.Trace(tr)
		net.SetDefault(simnet.LinkProfile{Loss: 0.3, Dup: 0.2})

		if err := b.base.AddExtension(noopScenarioExt("policy", 1)); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			if err := b.base.AdaptNode("robot1", "robot1"); err == nil {
				break
			}
		}
		if n.receiver.Has("policy") {
			_ = b.base.RemoveExtension("policy")
		}
		return tr.Spans(trace.Filter{})
	}

	first := run()
	second := run()
	if len(first) == 0 {
		t.Fatal("scripted run recorded no spans")
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("same seed, different traces:\nrun1: %v\nrun2: %v", names(first), names(second))
	}
}

// TestScenarioTraceSentinelOverSimnet pins the satellite fix end to end on
// the simulated fabric: a typed error crossing the simnet boundary must still
// satisfy errors.Is at the caller.
func TestScenarioTraceSentinelOverSimnet(t *testing.T) {
	w := newSimWorld(t)
	b := w.newBase("base-1", nil)
	_ = w.newNode("robot1", b.signer)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := transport.Invoke[core.RenewExtReq, core.RenewExtResp](ctx, w.net.Node("base-1"), "robot1",
		core.MethodRenewE, core.RenewExtReq{LeaseID: "bogus", DurMillis: 1000})
	if !errors.Is(err, lease.ErrUnknownLease) {
		t.Fatalf("renewal of a bogus lease over simnet: errors.Is(err, lease.ErrUnknownLease) = false, err = %v", err)
	}
}
