// Herd scenario: the overload control plane under the worst synchronized
// burst a base station sees — an entire 10k-node fleet healing from a
// partition at once, so every lease renewal lands in the same wheel tick,
// while a read flood hammers the base's query surface. The run is seeded and
// driven by the manual clock: every renewal must succeed (zero degrades,
// zero expiries), the low-priority reads must shed, and a same-seed replay
// must reproduce the shed counters bit for bit.
package repro

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/overload"
	"repro/internal/sign"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/testutil"
	"repro/internal/transport"
)

// herdRun captures one herd scenario for replay comparison: the overload
// snapshot plus every base-side counter and gauge.
type herdRun struct {
	snap     overload.Snapshot
	counters map[string]uint64
	gauges   map[string]int64
}

// runFleetHerd plays the scenario once and returns its capture.
func runFleetHerd(t *testing.T, seed int64, nNodes int) herdRun {
	t.Helper()
	clk := clock.NewManual(time.Unix(0, 0))
	net := simnet.New(clk, seed)
	defer net.Close()

	names := make([]string, nNodes)
	for i := range names {
		names[i] = fmt.Sprintf("node-%05d", i)
	}
	nodes := make(map[string]*fleetNode, nNodes)
	for _, name := range names {
		fn := newFleetNode(name, clk)
		mux := transport.NewMux()
		fn.serveOn(mux)
		stop, err := net.Serve(name, mux)
		if err != nil {
			t.Fatal(err)
		}
		defer stop()
		nodes[name] = fn
	}

	signer, err := sign.NewSigner("fleet-base")
	if err != nil {
		t.Fatal(err)
	}
	breaker := transport.NewBreakerSet(seed, transport.BreakerConfig{
		Threshold: 1,
		Cooldown:  time.Minute,
		Jitter:    0,
		Clock:     clk,
	})
	base, err := core.NewBase(core.BaseConfig{
		Name:          "fleet-base",
		Addr:          "fleet-base",
		Caller:        net.Node("fleet-base"),
		Signer:        signer,
		Store:         store.NewMemory(),
		Clock:         clk,
		Breaker:       breaker,
		LeaseDur:      time.Minute,
		RenewFraction: 0.5,
		RenewRetries:  1,
		CallTimeout:   time.Hour, // simulated time governs
		Shards:        16,
		RenewBatch:    64,
		RenewWorkers:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	reg := metrics.New()
	base.Instrument(reg)

	// The overload front on the base's server side: adaptive limiter on the
	// manual clock, plus per-peer token buckets on the query surface. Flood
	// calls run sequentially in simulated time, so every bucket decision —
	// and therefore every shed counter — is exactly reproducible.
	lim := overload.NewLimiter(overload.Config{
		InitialLimit: 64, MinLimit: 8, MaxLimit: 256,
		QueueDepth: 64, Target: 5 * time.Millisecond,
		Interval: 100 * time.Millisecond, RetryAfter: 250 * time.Millisecond,
		Clock: clk,
	})
	lim.Instrument(reg)
	buckets := overload.NewBuckets(overload.BucketConfig{
		Rate: 1, Burst: 5,
		Methods: []string{core.MethodBaseQuery},
		Clock:   clk,
	})
	buckets.Instrument(reg)
	baseMux := transport.NewMux()
	base.ServeOn(baseMux)
	ovl := overload.Wrap(baseMux, lim, buckets, nil)
	base.SetOverload(ovl.Snapshot)
	stopBase, err := net.Serve("fleet-base", ovl)
	if err != nil {
		t.Fatal(err)
	}
	defer stopBase()

	for _, ext := range []core.Extension{
		noopScenarioExt("policy", 1),
		noopScenarioExt("telemetry", 1),
	} {
		if err := base.AddExtension(ext); err != nil {
			t.Fatal(err)
		}
	}

	// t=0: the whole fleet adapts together, so every lease's renewal lands in
	// the same future wheel tick — the herd is armed.
	for _, name := range names {
		if err := base.AdaptNode(name, name); err != nil {
			t.Fatalf("adapt %s: %v", name, err)
		}
	}
	wantLeases := 2 * nNodes
	if got := base.ScheduledRenewals(); got != wantLeases {
		t.Fatalf("scheduled renewals = %d, want %d", got, wantLeases)
	}

	// t=5s: the entire fleet partitions from the base. No renewals are due
	// yet (they come due at t=30s), so nothing fails — the outage just sets
	// up the synchronized heal.
	clk.Advance(5 * time.Second)
	for _, name := range names {
		net.PartitionBoth("fleet-base", name)
	}

	// t=25s: everything heals at once, 5 simulated seconds before the whole
	// fleet's renewals come due together.
	clk.Advance(20 * time.Second)
	net.HealAll()

	drain := func(total, step time.Duration) {
		t.Helper()
		for elapsed := time.Duration(0); elapsed < total; elapsed += step {
			clk.Advance(step)
			testutil.WaitFor(t, "renewals quiesced", base.RenewalsQuiesced)
		}
	}

	// t=40s: the herd has fired — 2*N renewals burst through the batched
	// renewal pipeline in one tick.
	drain(15*time.Second, 15*time.Second)

	// While the keepalive storm is being absorbed, a read flood hits the
	// query surface: every 20th node fires 8 back-to-back queries against a
	// burst-5 bucket, so each flooder gets exactly 3 sheds.
	flooders := 0
	for i, name := range names {
		if i%20 != 0 {
			continue
		}
		flooders++
		cli := net.Node(name)
		for j := 0; j < 8; j++ {
			err := cli.Call(context.Background(), "fleet-base", core.MethodBaseQuery,
				core.QueryReq{}, &core.QueryResp{})
			if j < 5 && err != nil {
				t.Fatalf("flood %s call %d: %v", name, j, err)
			}
			if j >= 5 && !errors.Is(err, transport.ErrOverloaded) {
				t.Fatalf("flood %s call %d: err = %v, want ErrOverloaded", name, j, err)
			}
		}
	}

	// The rest of the renewal window and one more: renewals keep succeeding
	// after the flood.
	drain(105*time.Second, 15*time.Second)

	// Zero renewal-driven casualties: nobody degraded, nobody departed, every
	// lease still scheduled and every node-side deadline still in the future.
	if got := base.Degraded(); len(got) != 0 {
		t.Fatalf("degraded after herd = %v, want none", got)
	}
	if got := testutil.Counter(reg, "base.degrades"); got != 0 {
		t.Fatalf("base.degrades = %d, want 0", got)
	}
	if got := base.ScheduledRenewals(); got != wantLeases {
		t.Fatalf("scheduled renewals after herd = %d, want %d", got, wantLeases)
	}
	now := clk.Now()
	for name, fn := range nodes {
		fn.mu.Lock()
		for ext, g := range fn.grants {
			if !g.deadline.After(now) {
				t.Fatalf("lease %s/%s expired at %v (now %v): renewal lost in the herd",
					name, ext, g.deadline, now)
			}
		}
		fn.mu.Unlock()
	}

	// The low-priority class shed — and only it. Keepalives and mutations
	// went untouched.
	snap := ovl.Snapshot()
	wantSheds := uint64(3 * flooders)
	if snap.ShedRead != wantSheds || snap.PeerSheds != wantSheds {
		t.Fatalf("read sheds = %d (peer %d), want %d", snap.ShedRead, snap.PeerSheds, wantSheds)
	}
	if snap.ShedKeepalive != 0 || snap.ShedMutation != 0 || snap.ExpiredDrops != 0 {
		t.Fatalf("non-read casualties: %+v", snap)
	}
	if snap.Admitted == 0 || snap.Queued != 0 || snap.Inflight != 0 {
		t.Fatalf("limiter did not settle: %+v", snap)
	}

	// The overload status travels the fleet RPC (gob tolerates the new field,
	// so old peers just see it absent).
	rpcView, err := transport.Invoke[core.EmptyResp, core.FleetResp](
		context.Background(), net.Node("probe"), "fleet-base", core.MethodBaseFleet, core.EmptyResp{})
	if err != nil {
		t.Fatalf("base.fleet RPC: %v", err)
	}
	if rpcView.Overload == nil || rpcView.Overload.ShedRead != wantSheds {
		t.Fatalf("base.fleet overload view = %+v, want ShedRead %d", rpcView.Overload, wantSheds)
	}

	final := ovl.Snapshot()
	snapMetrics := reg.Snapshot()
	return herdRun{snap: final, counters: snapMetrics.Counters, gauges: snapMetrics.Gauges}
}

// TestFleetHerdOverload is the fleet-scale proof for the overload control
// plane: a synchronized 10k-node renewal herd rides through untouched while
// the concurrent read flood sheds deterministically, and a same-seed replay
// reproduces every shed counter bit for bit.
func TestFleetHerdOverload(t *testing.T) {
	seed := testutil.SeedFromEnv(t, "FLEET_SEED", fleetSeedDefault)
	nNodes := fleetNodeCount(t)
	t.Logf("fleet herd: %d nodes, seed %d", nNodes, seed)

	first := runFleetHerd(t, seed, nNodes)
	replay := runFleetHerd(t, seed, nNodes)
	if !reflect.DeepEqual(replay, first) {
		t.Errorf("same-seed replay diverged:\n first: %+v\nreplay: %+v", first.snap, replay.snap)
	}
}
