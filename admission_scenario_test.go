// Admission scenario: the full static-analysis gate played out on the
// deterministic simulator. A base with a store+clock-only admission policy
// refuses an exfiltrating extension (mobile code that posts join-point
// signatures off-node) before it is ever signed or pushed, while a compliant
// audit extension flows through adaptation to the node as usual. A second act
// checks the node-side defense in depth: an under-declared extension signed
// by a trusted key and pushed directly (bypassing the base) is rejected by
// the receiver's pre-weave analysis.
package repro

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sandbox"
	"repro/internal/sign"
	"repro/internal/transport"
)

// exfilSource mirrors examples/advice/exfiltrate.lasm: the inferred
// capability set is {ctx, net}.
const exfilSource = `
class Ext
  method void advice()
    hostcall ctx.class 0
    push "."
    concat
    hostcall ctx.method 0
    concat
    hostcall net.post 1
    pop
  end
end`

// auditScenarioSource mirrors examples/advice/audit.lasm: inferred {clock,
// ctx, store}, statically bounded.
const auditScenarioSource = `
class Ext
  method void advice()
    hostcall ctx.method 0
    push "@"
    concat
    hostcall clock.now 0
    concat
    hostcall store.put 1
    pop
  end
end`

func codeScenarioExt(name string, caps []string, source string) core.Extension {
	return core.Extension{
		ID:      "ext/" + name,
		Name:    name,
		Version: 1,
		Advices: []core.AdviceSpec{{
			Name:    "a",
			Kind:    core.KindCallBefore,
			Pattern: "Motor.*(..)",
			Code:    source,
		}},
		Caps: caps,
	}
}

// newAdmissionBase is newBase with a capability admission policy installed.
func (w *simWorld) newAdmissionBase(name string, admission sandbox.Policy) *scenarioBase {
	w.t.Helper()
	signer, err := sign.NewSigner(name)
	if err != nil {
		w.t.Fatal(err)
	}
	pol := transport.NewPolicy(w.seed)
	pol.Clock = w.clk
	pol.BaseDelay = 0
	pol.MaxAttempts = 8
	b := &scenarioBase{name: name, reg: metrics.New(), signer: signer, pol: pol}
	pol.Instrument(b.reg)
	b.base, err = core.NewBase(core.BaseConfig{
		Name:          name,
		Addr:          name,
		Caller:        w.net.Node(name),
		Signer:        signer,
		Clock:         w.clk,
		LeaseDur:      10 * time.Second,
		RenewFraction: 0.5,
		RenewRetries:  2,
		CallTimeout:   time.Hour,
		Policy:        pol,
		Admission:     admission,
	})
	if err != nil {
		w.t.Fatal(err)
	}
	w.t.Cleanup(b.base.Close)
	b.base.Instrument(b.reg)
	mux := transport.NewMux()
	b.base.ServeOn(mux)
	stop, err := w.net.Serve(name, mux)
	if err != nil {
		w.t.Fatal(err)
	}
	w.t.Cleanup(stop)
	return b
}

func TestScenarioAdmissionBlocksExfiltration(t *testing.T) {
	w := newSimWorld(t)
	base := w.newAdmissionBase("base-1", sandbox.Allowlist(sandbox.CapStore, sandbox.CapClock))
	node := w.newNode("robot1", base.signer)

	// The exfiltrating extension declares its net demand honestly; the
	// store+clock admission policy still refuses it, before signing or push.
	leak := codeScenarioExt("leak", []string{"net"}, exfilSource)
	err := base.base.AddExtension(leak)
	if err == nil || !strings.Contains(err.Error(), "admission") {
		t.Fatalf("want admission rejection, got %v", err)
	}
	if got := base.counter("base.admission_rejected"); got != 1 {
		t.Errorf("base.admission_rejected = %d, want 1", got)
	}
	if _, ok := base.base.AnalysisFor("leak"); ok {
		t.Error("rejected extension left a stored analysis report")
	}

	// The compliant audit extension is admitted and reaches the node.
	audit := codeScenarioExt("audit", []string{"clock", "store"}, auditScenarioSource)
	if err := base.base.AddExtension(audit); err != nil {
		t.Fatal(err)
	}
	adaptWithRetries(t, base, "robot1", "robot1")
	waitFor(t, "audit installed on robot1", func() bool {
		for _, i := range node.receiver.Installed() {
			if i.Name == "audit" {
				return true
			}
		}
		return false
	})
	for _, i := range node.receiver.Installed() {
		if i.Name == "leak" {
			t.Fatal("rejected extension reached the node")
		}
	}
	// The stored analysis of the admitted extension is retained at the base.
	rep, ok := base.base.AnalysisFor("audit")
	if !ok || !rep.FuelBounded {
		t.Errorf("stored audit analysis = %+v (have %v), want a bounded report", rep, ok)
	}
}

func TestScenarioReceiverPreWeaveDefense(t *testing.T) {
	w := newSimWorld(t)
	base := w.newBase("base-1", nil)
	node := w.newNode("robot1", base.signer)

	// Bypass the base's admission gate entirely: sign an under-declared
	// extension (no caps requested, net.post in the code) with the trusted
	// key and hand it straight to the receiver, as a compromised or legacy
	// base would. The node's own pre-weave analysis catches it.
	sneaky := codeScenarioExt("sneaky", nil, exfilSource)
	signed, err := core.Sign(base.signer, sneaky)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.receiver.Install(signed, "base-1", time.Minute); err == nil ||
		!strings.Contains(err.Error(), "beyond grant") {
		t.Fatalf("want pre-weave capability rejection, got %v", err)
	}
	if n := len(node.receiver.Installed()); n != 0 {
		t.Errorf("%d extensions installed, want none", n)
	}
}

// launderScenarioSource mirrors examples/advice/launder.lasm: a stored
// secret routed through a helper method and a field into net.post. Inferred
// caps {ctx, net, store} — declarable — but the store->net flow is not.
const launderScenarioSource = `
class Ext
  field stash
  method void advice()
    load self
    call fetch 0
    pop
    load self
    getfield stash
    hostcall net.post 1
    pop
    retv
  end
  method int fetch()
    load self
    push "secret"
    hostcall store.get 1
    setfield stash
    push 0
    ret
  end
end`

func TestScenarioFlowAdmissionBlocksLaundering(t *testing.T) {
	w := newSimWorld(t)
	// The admission policy grants every capability the extension declares —
	// only the information-flow check can refuse it.
	base := w.newAdmissionBase("base-1", sandbox.AllowAll())
	node := w.newNode("robot1", base.signer)

	// Act one: the laundering extension declares {net, store} honestly, so
	// the capability gate passes; the undeclared store->net flow is refused
	// before the extension is ever signed or pushed.
	launder := codeScenarioExt("launder", []string{"net", "store"}, launderScenarioSource)
	err := base.base.AddExtension(launder)
	if err == nil || !strings.Contains(err.Error(), "undeclared information flow store->net") {
		t.Fatalf("want undeclared-flow rejection, got %v", err)
	}
	if got := base.counter("base.admission_flow_rejected"); got != 1 {
		t.Errorf("base.admission_flow_rejected = %d, want 1", got)
	}
	if got := base.counter("base.admission_rejected"); got != 1 {
		t.Errorf("base.admission_rejected = %d, want 1", got)
	}
	if _, ok := base.base.AnalysisFor("launder"); ok {
		t.Error("rejected extension left a stored analysis report")
	}

	// Act two: a rogue (or compromised) base signs the identical bytecode
	// with the trusted key and pushes it straight to the node. The signature
	// verifies and the capability grant covers the demand — the receiver's
	// own pre-weave flow analysis is the last line of defense.
	signed, err := core.Sign(base.signer, launder)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.receiver.Install(signed, "base-1", time.Minute); err == nil ||
		!strings.Contains(err.Error(), "pre-weave flow check") {
		t.Fatalf("want pre-weave flow rejection, got %v", err)
	}
	if n := len(node.receiver.Installed()); n != 0 {
		t.Errorf("%d extensions installed, want none", n)
	}

	// Declaring the flow in the descriptor admits the same bytecode end to
	// end: the paper's model is explicit contracts, not forbidden behavior.
	declared := codeScenarioExt("launder-declared", []string{"net", "store"}, launderScenarioSource)
	declared.Flows = []string{"store->net"}
	if err := base.base.AddExtension(declared); err != nil {
		t.Fatalf("flow-declaring extension rejected: %v", err)
	}
	adaptWithRetries(t, base, "robot1", "robot1")
	waitFor(t, "launder-declared installed on robot1", func() bool {
		for _, i := range node.receiver.Installed() {
			if i.Name == "launder-declared" {
				return true
			}
		}
		return false
	})
}
