// Scenario tests driving the whole platform — bases, receivers, leases,
// lookup — over the deterministic network simulator: partitions, asymmetric
// link failures, crashes, duplication and loss, i.e. the wireless conditions
// the paper's proactive middleware is built to survive. Every scenario runs
// on a manual clock and a seeded fault stream; set SIMNET_SEED to replay a
// failing run exactly.
package repro

import (
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/aop"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/lvm"
	"repro/internal/metrics"
	"repro/internal/registry"
	"repro/internal/sandbox"
	"repro/internal/sign"
	"repro/internal/simnet"
	"repro/internal/testutil"
	"repro/internal/transport"
	"repro/internal/weave"
)

// scenarioSeed returns the fault seed: SIMNET_SEED when set, a random one
// (logged for replay) otherwise.
func scenarioSeed(t *testing.T) int64 {
	t.Helper()
	return testutil.SeedFromEnv(t, "SIMNET_SEED", time.Now().UnixNano())
}

// simWorld bundles the manual clock and the simulated network a scenario
// plays out on.
type simWorld struct {
	t    *testing.T
	clk  *clock.Manual
	net  *simnet.Net
	seed int64
}

func newSimWorld(t *testing.T) *simWorld {
	t.Helper()
	w := &simWorld{
		t:    t,
		clk:  clock.NewManual(time.Unix(0, 0)),
		seed: scenarioSeed(t),
	}
	w.net = simnet.New(w.clk, w.seed)
	t.Cleanup(w.net.Close)
	return w
}

// advance moves simulated time forward, yielding so renewers, sweepers and
// retry backoffs woken along the way get to run.
func (w *simWorld) advance(total, step time.Duration) {
	simnet.Advance(w.clk, total, step)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	testutil.WaitFor(t, what, cond)
}

// scenarioNode is one mobile node: a receiver with its own metrics registry
// and a shutdown counter fed by the "tracked" builtin.
type scenarioNode struct {
	name      string
	receiver  *core.Receiver
	reg       *metrics.Registry
	shutdowns atomic.Int64
}

func (n *scenarioNode) counter(name string) uint64 {
	return testutil.Counter(n.reg, name)
}

func (w *simWorld) newNode(name string, trusted *sign.Signer) *scenarioNode {
	w.t.Helper()
	n := &scenarioNode{name: name, reg: metrics.New()}
	trust := sign.NewTrustStore()
	trust.Trust(trusted.Name, trusted.PublicKey())
	builtins := core.NewBuiltins()
	builtins.Register("noop", func(*core.Env, map[string]string) (aop.Body, error) {
		return aop.BodyFunc(func(*aop.Context) error { return nil }), nil
	})
	builtins.Register("tracked", func(*core.Env, map[string]string) (aop.Body, error) {
		return &trackedBody{node: n}, nil
	})
	receiver, err := core.NewReceiver(core.ReceiverConfig{
		NodeName: name,
		Addr:     name,
		Weaver:   weave.New(),
		Trust:    trust,
		Policy:   sandbox.AllowAll(),
		Clock:    w.clk,
		Host:     lvm.HostMap{},
		Builtins: builtins,
	})
	if err != nil {
		w.t.Fatal(err)
	}
	n.receiver = receiver
	receiver.Instrument(n.reg)
	receiver.Grantor().Start(time.Second)
	w.t.Cleanup(receiver.Grantor().Stop)
	mux := transport.NewMux()
	receiver.ServeOn(mux)
	stop, err := w.net.Serve(name, mux)
	if err != nil {
		w.t.Fatal(err)
	}
	w.t.Cleanup(stop)
	return n
}

// trackedBody counts its shutdowns so duplicate revocations are observable.
type trackedBody struct{ node *scenarioNode }

func (b *trackedBody) Exec(*aop.Context) error { return nil }
func (b *trackedBody) Shutdown()               { b.node.shutdowns.Add(1) }

// scenarioBase is one extension base with a seeded retry policy on the
// simulated clock.
type scenarioBase struct {
	name   string
	base   *core.Base
	reg    *metrics.Registry
	signer *sign.Signer
	pol    *transport.Policy
}

func (b *scenarioBase) counter(name string) uint64 {
	return testutil.Counter(b.reg, name)
}

// newBase wires a base at name. A nil signer mints a fresh identity; pass an
// existing one to model a restarted base that keeps its keys.
func (w *simWorld) newBase(name string, signer *sign.Signer) *scenarioBase {
	w.t.Helper()
	var err error
	if signer == nil {
		if signer, err = sign.NewSigner(name); err != nil {
			w.t.Fatal(err)
		}
	}
	pol := transport.NewPolicy(w.seed)
	pol.Clock = w.clk
	pol.BaseDelay = 0 // retry back-to-back; scenarios drive faults, not backoff
	pol.MaxAttempts = 8
	b := &scenarioBase{name: name, reg: metrics.New(), signer: signer, pol: pol}
	pol.Instrument(b.reg)
	b.base, err = core.NewBase(core.BaseConfig{
		Name:          name,
		Addr:          name,
		Caller:        w.net.Node(name),
		Signer:        signer,
		Clock:         w.clk,
		LeaseDur:      10 * time.Second,
		RenewFraction: 0.5,
		RenewRetries:  2,
		CallTimeout:   time.Hour, // the policy and the simulated clock govern
		Policy:        pol,
	})
	if err != nil {
		w.t.Fatal(err)
	}
	w.t.Cleanup(b.base.Close)
	b.base.Instrument(b.reg)
	mux := transport.NewMux()
	b.base.ServeOn(mux)
	stop, err := w.net.Serve(name, mux)
	if err != nil {
		w.t.Fatal(err)
	}
	w.t.Cleanup(stop)
	return b
}

func noopScenarioExt(name string, version int) core.Extension {
	return core.Extension{
		ID:      "ext/" + name,
		Name:    name,
		Version: version,
		Advices: []core.AdviceSpec{{
			Name:    "a",
			Kind:    core.KindCallBefore,
			Pattern: "Motor.*(..)",
			Builtin: "noop",
		}},
	}
}

func trackedScenarioExt(name string, version int) core.Extension {
	e := noopScenarioExt(name, version)
	e.Advices[0].Builtin = "tracked"
	return e
}

// adaptWithRetries keeps calling AdaptNode until it converges; on lossy links
// a single call can exhaust its retry budget, and a real base would try again
// on the next discovery beacon.
func adaptWithRetries(t *testing.T, b *scenarioBase, nodeID, addr string) {
	t.Helper()
	for i := 0; i < 50; i++ {
		if err := b.base.AdaptNode(nodeID, addr); err == nil {
			return
		}
	}
	t.Fatalf("AdaptNode(%s) never converged in 50 rounds", addr)
}

// Scenario 1 — departure mid-lease: the node walks out of radio range (full
// partition), the base's renewals fail and it declares the node departed; the
// node's lease lapses and it autonomously withdraws the adaptation (§3.2).
func TestScenarioDepartureMidLease(t *testing.T) {
	w := newSimWorld(t)
	b := w.newBase("base-1", nil)
	n := w.newNode("robot1", b.signer)
	if err := b.base.AddExtension(noopScenarioExt("policy", 1)); err != nil {
		t.Fatal(err)
	}
	if err := b.base.AdaptNode("robot1", "robot1"); err != nil {
		t.Fatal(err)
	}
	if !n.receiver.Has("policy") {
		t.Fatal("extension not installed")
	}

	// One renewal cycle passes while in range.
	w.advance(6*time.Second, time.Second)
	if got := b.base.Adapted(); len(got) != 1 {
		t.Fatalf("adapted = %v before the partition", got)
	}

	w.net.PartitionBoth("base-1", "robot1")
	w.advance(20*time.Second, time.Second)

	waitFor(t, "base departure", func() bool { return len(b.base.Adapted()) == 0 })
	waitFor(t, "autonomous withdrawal", func() bool { return !n.receiver.Has("policy") })
	if got := b.counter("base.departures"); got != 1 {
		t.Fatalf("base.departures = %d, want 1", got)
	}
	if got := n.counter("ext.expiries"); got != 1 {
		t.Fatalf("ext.expiries = %d, want 1", got)
	}
}

// Scenario 2 — asymmetric response loss: the node still hears the base, but
// the base never hears the node. Renewals keep executing at the node (its
// lease stays fresh for a while) while the base only sees failures; both
// sides still converge on "departed" once the base gives up and stops
// renewing.
func TestScenarioAsymmetricResponseLoss(t *testing.T) {
	w := newSimWorld(t)
	b := w.newBase("base-1", nil)
	n := w.newNode("robot1", b.signer)
	if err := b.base.AddExtension(noopScenarioExt("policy", 1)); err != nil {
		t.Fatal(err)
	}
	if err := b.base.AdaptNode("robot1", "robot1"); err != nil {
		t.Fatal(err)
	}

	renewalsBefore := n.counter("lease.renewals")
	w.net.Partition("robot1", "base-1") // responses from the node are lost
	w.advance(15*time.Second, time.Second)
	waitFor(t, "base departure", func() bool { return len(b.base.Adapted()) == 0 })

	// The handler side of every failed renewal still ran.
	if got := n.counter("lease.renewals"); got <= renewalsBefore {
		t.Fatalf("lease.renewals = %d, want > %d (renewals executed at the node)", got, renewalsBefore)
	}
	if b.counter("base.departures") != 1 {
		t.Fatalf("base.departures = %d, want 1", b.counter("base.departures"))
	}
	// With nobody renewing, the node's lease lapses and it withdraws.
	w.advance(15*time.Second, time.Second)
	waitFor(t, "autonomous withdrawal", func() bool { return !n.receiver.Has("policy") })
	if got := n.counter("ext.expiries"); got != 1 {
		t.Fatalf("ext.expiries = %d, want 1", got)
	}
}

// Scenario 3 — flapping link during adaptation: the install executes at the
// node but the response is lost, so the base believes it failed. When the
// link heals, the re-push refreshes the existing install instead of erroring,
// and exactly one install ever happens.
func TestScenarioFlappingLinkIdempotentPush(t *testing.T) {
	w := newSimWorld(t)
	b := w.newBase("base-1", nil)
	n := w.newNode("robot1", b.signer)
	if err := b.base.AddExtension(noopScenarioExt("policy", 1)); err != nil {
		t.Fatal(err)
	}

	w.net.Partition("robot1", "base-1") // responses lost
	if err := b.base.AdaptNode("robot1", "robot1"); err == nil {
		t.Fatal("adapt through response loss should fail at the base")
	}
	if !n.receiver.Has("policy") {
		t.Fatal("install request should have executed at the node")
	}
	if len(b.base.Adapted()) != 0 {
		t.Fatal("base should not consider the node adapted")
	}

	w.net.Heal("robot1", "base-1")
	if err := b.base.AdaptNode("robot1", "robot1"); err != nil {
		t.Fatalf("re-adapt after heal: %v", err)
	}
	if got := n.counter("ext.installs"); got != 1 {
		t.Fatalf("ext.installs = %d, want exactly 1", got)
	}
	if got := n.counter("ext.refreshes"); got == 0 {
		t.Fatal("re-push should have refreshed the existing install")
	}
	// The refreshed lease is being renewed: it survives several periods.
	w.advance(25*time.Second, time.Second)
	if !n.receiver.Has("policy") {
		t.Fatal("extension lapsed although the base is renewing")
	}
}

// Scenario 4 — base crash and restart with rediscovery: the base dies, the
// node's adaptations expire autonomously, and a restarted base (same keys,
// wiped runtime state) re-finds the node through the lookup service and
// re-adapts it.
func TestScenarioBaseCrashRestartRediscovery(t *testing.T) {
	w := newSimWorld(t)

	// Lookup service.
	lookup := registry.NewLookup(w.clk)
	lookup.Grantor().Start(time.Second)
	t.Cleanup(lookup.Grantor().Stop)
	lookupMux := transport.NewMux()
	lookupSrv := registry.NewServer("lookup-1", lookup, lookupMux, w.net.Node("lookup-1"), w.clk)
	t.Cleanup(lookupSrv.Close)
	stop, err := w.net.Serve("lookup-1", lookupMux)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stop)

	b1 := w.newBase("base-1", nil)
	if err := b1.base.AddExtension(noopScenarioExt("policy", 1)); err != nil {
		t.Fatal(err)
	}
	n := w.newNode("robot1", b1.signer)
	stopAdvertise, err := n.receiver.Advertise(
		&registry.Client{Caller: w.net.Node("robot1"), Addr: "lookup-1", Timeout: time.Hour},
		time.Minute, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stopAdvertise)
	if _, err := b1.base.WatchLookup(
		&registry.Client{Caller: w.net.Node("base-1"), Addr: "lookup-1", Timeout: time.Hour},
		time.Minute); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "initial adaptation via lookup", func() bool { return n.receiver.Has("policy") })

	// The base dies. Its in-process renewers are gone with it.
	w.net.Crash("base-1")
	b1.base.Close()
	w.advance(25*time.Second, time.Second)
	waitFor(t, "autonomous withdrawal after base death", func() bool { return !n.receiver.Has("policy") })

	// A fresh base process comes back on the same address with the same
	// identity but none of the old runtime state.
	w.net.Wipe("base-1")
	b2 := w.newBase("base-1", b1.signer)
	if err := b2.base.AddExtension(noopScenarioExt("policy", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := b2.base.WatchLookup(
		&registry.Client{Caller: w.net.Node("base-1"), Addr: "lookup-1", Timeout: time.Hour},
		time.Minute); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "re-adaptation by restarted base", func() bool { return n.receiver.Has("policy") })
	waitFor(t, "restarted base tracks the node", func() bool { return len(b2.base.Adapted()) == 1 })
	if got := n.counter("ext.installs"); got != 2 {
		t.Fatalf("ext.installs = %d, want 2 (one per base generation)", got)
	}
}

// Scenario 5 — duplicated revocation: the link duplicates every datagram, so
// the node receives each revoke twice. The extension's shutdown procedure
// still runs exactly once; the duplicate revoke is answered as already-done.
func TestScenarioDuplicateRevokeSingleShutdown(t *testing.T) {
	w := newSimWorld(t)
	b := w.newBase("base-1", nil)
	n := w.newNode("robot1", b.signer)
	if err := b.base.AddExtension(trackedScenarioExt("tracked-policy", 1)); err != nil {
		t.Fatal(err)
	}
	if err := b.base.AdaptNode("robot1", "robot1"); err != nil {
		t.Fatal(err)
	}

	w.net.SetLink("base-1", "robot1", simnet.LinkProfile{Dup: 1})
	if err := b.base.RemoveExtension("tracked-policy"); err != nil {
		t.Fatal(err)
	}
	if n.receiver.Has("tracked-policy") {
		t.Fatal("extension still installed after revoke")
	}
	if got := n.shutdowns.Load(); got != 1 {
		t.Fatalf("shutdowns = %d, want exactly 1 despite the duplicate revoke", got)
	}
	if got := n.counter("ext.withdrawals"); got != 1 {
		t.Fatalf("ext.withdrawals = %d, want 1", got)
	}
	// The base saw a clean revoke, not an error from the duplicate.
	for _, a := range b.base.Activity() {
		if a.Event == "revoke" && a.Detail != "" {
			t.Fatalf("revoke reported failure: %q", a.Detail)
		}
	}
}

// Scenario 6 — stale delayed duplicate: the link holds a copy of the v1
// install back and delivers it long after v2 replaced it. The receiver
// rejects the stale version and keeps v2.
func TestScenarioStaleDuplicateInstallRejected(t *testing.T) {
	w := newSimWorld(t)
	b := w.newBase("base-1", nil)
	n := w.newNode("robot1", b.signer)
	w.net.SetLink("base-1", "robot1", simnet.LinkProfile{Dup: 1, DupDelay: 3 * time.Second})

	if err := b.base.AddExtension(noopScenarioExt("policy", 1)); err != nil {
		t.Fatal(err)
	}
	if err := b.base.AdaptNode("robot1", "robot1"); err != nil {
		t.Fatal(err)
	}
	if err := b.base.ReplaceExtension(noopScenarioExt("policy", 2)); err != nil {
		t.Fatal(err)
	}
	installed := n.receiver.Installed()
	if len(installed) != 1 || installed[0].Version != 2 {
		t.Fatalf("installed = %+v, want policy v2", installed)
	}

	// Deliver the held-back duplicates: the stale v1 bounces off, the v2
	// duplicate refreshes.
	w.advance(4*time.Second, time.Second)
	waitFor(t, "stale duplicate rejected", func() bool { return n.counter("ext.rejects") >= 1 })
	installed = n.receiver.Installed()
	if len(installed) != 1 || installed[0].Version != 2 {
		t.Fatalf("installed = %+v after stale duplicate, want policy v2", installed)
	}
}

// Scenario 7 — node crash with wiped state: the node dies losing everything,
// the base notices the departure, and when a fresh node comes back under the
// same name it is adapted from scratch.
func TestScenarioNodeCrashWipedReadapts(t *testing.T) {
	w := newSimWorld(t)
	b := w.newBase("base-1", nil)
	n1 := w.newNode("robot1", b.signer)
	if err := b.base.AddExtension(noopScenarioExt("policy", 1)); err != nil {
		t.Fatal(err)
	}
	if err := b.base.AdaptNode("robot1", "robot1"); err != nil {
		t.Fatal(err)
	}

	w.net.Wipe("robot1")
	w.advance(15*time.Second, time.Second)
	waitFor(t, "base departure after node crash", func() bool { return len(b.base.Adapted()) == 0 })

	// A fresh node reappears under the same address; the base re-adapts it
	// (modelling the next discovery round) with a clean install.
	n2 := w.newNode("robot1", b.signer)
	if err := b.base.AdaptNode("robot1", "robot1"); err != nil {
		t.Fatal(err)
	}
	if !n2.receiver.Has("policy") {
		t.Fatal("fresh node not adapted")
	}
	if got := n2.counter("ext.installs"); got != 1 {
		t.Fatalf("fresh node ext.installs = %d, want 1", got)
	}
	if got := n2.counter("ext.refreshes"); got != 0 {
		t.Fatalf("fresh node ext.refreshes = %d, want 0 (state was wiped)", got)
	}
	if got := n1.counter("ext.installs"); got != 1 {
		t.Fatalf("old node counters moved after the wipe: installs = %d", got)
	}
}

// Scenario 8 — lossy wireless link: with 25 % loss in both directions, the
// retry policy still converges the adaptation and keeps the lease alive
// across many renewal periods.
func TestScenarioLossyLinkConverges(t *testing.T) {
	w := newSimWorld(t)
	netReg := metrics.New()
	w.net.Instrument(netReg)
	b := w.newBase("base-1", nil)
	n := w.newNode("robot1", b.signer)
	w.net.SetDefault(simnet.LinkProfile{Loss: 0.25})
	if err := b.base.AddExtension(noopScenarioExt("policy", 1)); err != nil {
		t.Fatal(err)
	}

	adaptWithRetries(t, b, "robot1", "robot1")
	if !n.receiver.Has("policy") {
		t.Fatal("extension not installed")
	}
	if got := n.counter("ext.installs"); got != 1 {
		t.Fatalf("ext.installs = %d, want exactly 1 despite retries", got)
	}

	// Six renewal periods under loss: retries keep the lease alive.
	w.advance(30*time.Second, 500*time.Millisecond)
	if !n.receiver.Has("policy") {
		t.Fatal("lease lapsed on the lossy link")
	}
	if got := b.base.Adapted(); len(got) != 1 {
		t.Fatalf("adapted = %v after 30s of loss", got)
	}
	// Every message the simulator dropped forced a retry somewhere — the
	// cluster converged, so the retries must have absorbed all the loss.
	if netReg.Snapshot().Counters["simnet.losses"] > 0 && b.counter("transport.retries") == 0 {
		t.Fatal("the network dropped messages but no retry was recorded")
	}
}

// Scenario 9 — deterministic replay: the same seed reproduces the same
// fault pattern, call outcomes and metrics, bit for bit. The run is fully
// scripted (no simulated time passes, so no renewal goroutines interleave)
// to pin the per-link RNG draw order.
func TestScenarioDeterministicReplay(t *testing.T) {
	seed := scenarioSeed(t)
	run := func() (metrics.Snapshot, metrics.Snapshot, []bool) {
		clk := clock.NewManual(time.Unix(0, 0))
		net := simnet.New(clk, seed)
		defer net.Close()
		w := &simWorld{t: t, clk: clk, net: net, seed: seed}
		netReg := metrics.New()
		net.Instrument(netReg)
		b := w.newBase("base-1", nil)
		n := w.newNode("robot1", b.signer)
		net.SetDefault(simnet.LinkProfile{Loss: 0.3, Dup: 0.2})

		var outcomes []bool
		for v := 1; v <= 5; v++ {
			ext := noopScenarioExt("policy", v)
			var err error
			if v == 1 {
				err = b.base.AddExtension(ext)
				for i := 0; err == nil && i < 20; i++ {
					if aerr := b.base.AdaptNode("robot1", "robot1"); aerr == nil {
						break
					}
				}
			} else {
				err = b.base.ReplaceExtension(ext)
			}
			outcomes = append(outcomes, err == nil && n.receiver.Has("policy"))
		}
		return netReg.Snapshot(), n.reg.Snapshot(), outcomes
	}

	net1, node1, out1 := run()
	net2, node2, out2 := run()
	if !reflect.DeepEqual(out1, out2) {
		t.Fatalf("same seed, different outcomes:\n%v\n%v", out1, out2)
	}
	if !reflect.DeepEqual(net1, net2) {
		t.Fatalf("same seed, different network metrics:\n%+v\n%+v", net1, net2)
	}
	if !reflect.DeepEqual(node1, node2) {
		t.Fatalf("same seed, different node metrics:\n%+v\n%+v", node1, node2)
	}
}
