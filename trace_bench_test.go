// Benchmarks for the tracing layer. The acceptance bar: with tracing enabled
// but no span on the path, the weave hot path (one atomic load per inactive
// join point) must not regress measurably — tracing touches only the weaver's
// insert/withdraw/replace control plane, never dispatch. The span arms price
// the control-plane cost itself.
package repro

import (
	"context"
	"testing"

	"repro/internal/aop"
	"repro/internal/trace"
	"repro/internal/weave"
)

func BenchmarkTraceOverhead(b *testing.B) {
	arms := []struct {
		name string
		tr   *trace.Tracer
	}{
		{"trace-off", nil},
		{"trace-on", trace.New(1)},
	}
	for _, arm := range arms {
		w := weave.New()
		w.Trace(arm.tr)
		idle := w.RegisterMethodSite(aop.MethodEntry,
			aop.Signature{Class: "Idle", Method: "m", Return: "void"})
		hot := w.RegisterMethodSite(aop.MethodEntry,
			aop.Signature{Class: "Hot", Method: "m", Return: "void"})
		if err := w.Insert(&aop.Aspect{Name: "noop", Advices: []aop.Advice{
			aop.BeforeCall("Hot.m(..)", aop.BodyFunc(func(*aop.Context) error { return nil })),
		}}); err != nil {
			b.Fatal(err)
		}

		b.Run("fast-path/"+arm.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if idle.Active() {
					b.Fatal("idle site became active")
				}
			}
		})
		b.Run("dispatch/"+arm.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ctx := weave.GetContext()
				ctx.Kind = aop.MethodEntry
				ctx.Sig = hot.Sig
				if err := hot.Dispatch(ctx); err != nil {
					b.Fatal(err)
				}
				weave.PutContext(ctx)
			}
		})
	}

	// Control-plane costs: what a span or event actually costs when recorded.
	tr := trace.New(1)
	b.Run("span-start-end", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, sp := tr.StartSpan(context.Background(), "bench")
			sp.End(nil)
		}
	})
	b.Run("eventf", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.Eventf(nil, "bench", "event %d", i)
		}
	})
	b.Run("span-start-end/nil-tracer", func(b *testing.B) {
		var off *trace.Tracer
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, sp := off.StartSpan(context.Background(), "bench")
			sp.End(nil)
		}
	})
}

// BenchmarkSamplerOverhead prices the head sampler's outcomes. sampled-in is
// the full recording path (ring slot, random IDs) and bounds what the kept 1%
// costs. sampled-out/root still mints the trace ID — the decision hashes it —
// and a fresh context to carry the decision downstream. sampled-out/child is
// the fleet steady state: the decision already travels in the parent context,
// the caller's context is reused, and the span itself comes from a pool — the
// steady state allocates nothing. Both arms must leave the ring untouched.
func BenchmarkSamplerOverhead(b *testing.B) {
	b.Run("sampled-in", func(b *testing.B) {
		tr := trace.New(1)
		tr.SetSampler(trace.SamplerConfig{Rate: 1, Seed: 1})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, sp := tr.StartSpan(context.Background(), "bench")
			sp.End(nil)
		}
	})
	b.Run("sampled-out/root", func(b *testing.B) {
		tr := trace.New(1)
		tr.SetSampler(trace.SamplerConfig{Rate: 0, Seed: 1})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, sp := tr.StartSpan(context.Background(), "bench")
			sp.End(nil)
		}
		b.StopTimer()
		if out, _ := tr.SamplerStats(); out == 0 {
			b.Fatal("sampled-out arm recorded spans")
		}
		if used, _ := tr.RingOccupancy(); used != 0 {
			b.Fatalf("sampled-out arm left %d spans in the ring", used)
		}
	})
	b.Run("sampled-out/child", func(b *testing.B) {
		tr := trace.New(1)
		tr.SetSampler(trace.SamplerConfig{Rate: 0, Seed: 1})
		ctx, root := tr.StartSpan(context.Background(), "root")
		root.End(nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, sp := tr.StartSpan(ctx, "bench")
			sp.End(nil)
		}
		b.StopTimer()
		if used, _ := tr.RingOccupancy(); used != 0 {
			b.Fatalf("sampled-out arm left %d spans in the ring", used)
		}
	})
}
