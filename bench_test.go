// Benchmark harness reproducing the evaluation of "A Proactive Middleware
// Platform for Mobile Computing" (Middleware 2003). One benchmark family per
// experiment in DESIGN.md §4; EXPERIMENTS.md records paper-vs-measured.
//
// Run with:
//
//	go test -bench=. -benchmem .
package repro

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/aop"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/ext"
	"repro/internal/jit"
	"repro/internal/lvm"
	"repro/internal/plotter"
	"repro/internal/sandbox"
	"repro/internal/sign"
	"repro/internal/store"
	"repro/internal/svc"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/weave"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// E1 — platform overhead with hooks active and no extensions (§4.6: ~7 % on
// SPECjvm). Compare each synthetic workload on an un-instrumented machine
// against one with hook stubs planted at every join point.

func BenchmarkE1HookOverhead(b *testing.B) {
	for _, spec := range workload.All() {
		plain := jit.NewMachine(workload.Program(), nil, nil)
		hooked := jit.NewMachine(workload.Program(), weave.New(), nil)
		for _, cfg := range []struct {
			name string
			m    *jit.Machine
		}{
			{"hooks=off", plain},
			{"hooks=on", hooked},
		} {
			cfg.m.MaxSteps = 1 << 62
			b.Run(fmt.Sprintf("%s/%s", spec.Name, cfg.name), func(b *testing.B) {
				self := cfg.m.Prog.Class(spec.Class).New()
				meth := cfg.m.Prog.Method(spec.Class, spec.Method)
				arg := []lvm.Value{lvm.Int(spec.Arg)}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := cfg.m.Invoke(meth, self, arg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---------------------------------------------------------------------------
// E2 — cost of one interception (§4.6: ~900 ns intercepted vs ~700 ns plain
// void interface call, ≈1.3×). A void method is called directly, through
// inactive hooks, and with a do-nothing advice woven.

const voidSrc = `
class Void
  method void call()
    retv
  end
end`

func BenchmarkE2Interception(b *testing.B) {
	run := func(b *testing.B, m *jit.Machine) {
		self := m.Prog.Class("Void").New()
		meth := m.Prog.Method("Void", "call")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m.Invoke(meth, self, nil); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("plain-call", func(b *testing.B) {
		run(b, jit.NewMachine(lvm.MustAssemble(voidSrc), nil, nil))
	})
	b.Run("hooks-inactive", func(b *testing.B) {
		run(b, jit.NewMachine(lvm.MustAssemble(voidSrc), weave.New(), nil))
	})
	b.Run("do-nothing-advice", func(b *testing.B) {
		w := weave.New()
		m := jit.NewMachine(lvm.MustAssemble(voidSrc), w, nil)
		a := &aop.Aspect{Name: "noop", Advices: []aop.Advice{
			aop.BeforeCall("Void.call(..)", aop.BodyFunc(func(*aop.Context) error { return nil })),
		}}
		if err := w.Insert(a); err != nil {
			b.Fatal(err)
		}
		run(b, m)
	})
	// Native (non-LVM) interception path used by remote services.
	b.Run("native-hooks-inactive", func(b *testing.B) {
		w := weave.New()
		h := w.HookMethod(aop.Signature{Class: "Svc", Method: "m", Return: "void"})
		fn := func([]lvm.Value) (lvm.Value, error) { return lvm.Nil(), nil }
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := h.Invoke(nil, nil, fn); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("native-do-nothing-advice", func(b *testing.B) {
		w := weave.New()
		h := w.HookMethod(aop.Signature{Class: "Svc", Method: "m", Return: "void"})
		a := &aop.Aspect{Name: "noop", Advices: []aop.Advice{
			aop.BeforeCall("Svc.*(..)", aop.BodyFunc(func(*aop.Context) error { return nil })),
		}}
		if err := w.Insert(a); err != nil {
			b.Fatal(err)
		}
		fn := func([]lvm.Value) (lvm.Value, error) { return lvm.Nil(), nil }
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := h.Invoke(nil, nil, fn); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// E3 — interception cost vs the cost of real extension bodies (§4.6: for
// security, transactions and orthogonal persistence the interception is a
// small fraction of the total).

func BenchmarkE3Extension(b *testing.B) {
	newEnv := func(kv *store.KV, extras map[string]any) *core.Env {
		host := ext.NewNodeHost(ext.NodeHostConfig{KV: kv, Clock: clock.Real{}})
		return &core.Env{NodeName: "bench", BaseAddr: "base", Host: host, Extras: extras}
	}
	builtins := core.NewBuiltins()
	ext.RegisterAll(builtins)

	invoke := func(b *testing.B, w *weave.Weaver) {
		h := w.HookMethod(aop.Signature{Class: "Robot", Method: "moveArm", Return: "int", Params: []string{"int"}})
		fn := func(args []lvm.Value) (lvm.Value, error) { return lvm.Int(args[0].I), nil }
		meta := map[string]lvm.Value{svc.MetaCaller: lvm.Str("operator")}
		args := []lvm.Value{lvm.Int(30)}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := h.InvokeWithMeta(nil, args, meta, fn); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("unwoven-baseline", func(b *testing.B) {
		invoke(b, weave.New())
	})

	b.Run("interception-only", func(b *testing.B) {
		w := weave.New()
		a := &aop.Aspect{Name: "noop", Advices: []aop.Advice{
			aop.BeforeCall("Robot.*(..)", aop.BodyFunc(func(*aop.Context) error { return nil })),
		}}
		if err := w.Insert(a); err != nil {
			b.Fatal(err)
		}
		invoke(b, w)
	})

	b.Run("security", func(b *testing.B) {
		w := weave.New()
		env := newEnv(store.NewKV(), nil)
		session, err := builtins.New(ext.BSession, env, nil)
		if err != nil {
			b.Fatal(err)
		}
		access, err := builtins.New(ext.BAccessControl, env, map[string]string{"allow": "operator"})
		if err != nil {
			b.Fatal(err)
		}
		a := &aop.Aspect{Name: "security", Advices: []aop.Advice{
			aop.BeforeCall("Robot.*(..)", session),
			aop.BeforeCall("Robot.*(..)", access),
		}}
		if err := w.Insert(a); err != nil {
			b.Fatal(err)
		}
		invoke(b, w)
	})

	b.Run("transactions", func(b *testing.B) {
		w := weave.New()
		kv := store.NewKV()
		env := newEnv(kv, map[string]any{ext.ExtraTxnManager: txn.NewManager(kv)})
		body, err := builtins.New(ext.BTxn, env, map[string]string{"key": "bench"})
		if err != nil {
			b.Fatal(err)
		}
		a := &aop.Aspect{Name: "txn", Advices: []aop.Advice{
			aop.BeforeCall("Robot.*(..)", body),
			aop.AfterCall("Robot.*(..)", body),
		}}
		if err := w.Insert(a); err != nil {
			b.Fatal(err)
		}
		invoke(b, w)
	})

	b.Run("persistence", func(b *testing.B) {
		w := weave.New()
		env := newEnv(store.NewKV(), nil)
		body, err := builtins.New(ext.BPersist, env, nil)
		if err != nil {
			b.Fatal(err)
		}
		// Persistence hooks state writes; approximate by running it at the
		// method boundary over the same call shape.
		a := &aop.Aspect{Name: "persist", Advices: []aop.Advice{
			aop.AfterCall("Robot.*(..)", body),
		}}
		if err := w.Insert(a); err != nil {
			b.Fatal(err)
		}
		invoke(b, w)
	})
}

// ---------------------------------------------------------------------------
// E4 — autonomous revocation (§3.2): latency from losing the base to the
// extension being withdrawn, as a function of the lease duration.

func BenchmarkE4Revocation(b *testing.B) {
	for _, leaseDur := range []time.Duration{20 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond} {
		b.Run(fmt.Sprintf("lease=%s", leaseDur), func(b *testing.B) {
			signer, _ := sign.NewSigner("hall")
			trust := sign.NewTrustStore()
			trust.Trust("hall", signer.PublicKey())
			builtins := core.NewBuiltins()
			builtins.Register("noop", func(*core.Env, map[string]string) (aop.Body, error) {
				return aop.BodyFunc(func(*aop.Context) error { return nil }), nil
			})
			receiver, err := core.NewReceiver(core.ReceiverConfig{
				NodeName: "n", Weaver: weave.New(), Trust: trust,
				Policy: sandbox.AllowAll(), Host: lvm.HostMap{}, Builtins: builtins,
			})
			if err != nil {
				b.Fatal(err)
			}
			receiver.Grantor().Start(2 * time.Millisecond)
			defer receiver.Grantor().Stop()

			extension := core.Extension{
				ID: "e", Name: "e", Version: 1,
				Advices: []core.AdviceSpec{{Name: "a", Kind: core.KindCallBefore, Pattern: "*.*(..)", Builtin: "noop"}},
			}
			var total time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				extension.Version = i + 1
				signed, err := core.Sign(signer, extension)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := receiver.Install(signed, "base", leaseDur); err != nil {
					b.Fatal(err)
				}
				// The base disappears: no renewals arrive.
				start := time.Now()
				for receiver.Has("e") {
					time.Sleep(time.Millisecond)
				}
				total += time.Since(start)
			}
			b.StopTimer()
			b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "ms-to-revoke")
		})
	}
}

// ---------------------------------------------------------------------------
// E5 — extension distribution: adapting N newly arrived nodes (push one
// extension each) over the in-process fabric and over TCP.

func benchDistribution(b *testing.B, n int, useTCP bool) {
	signer, _ := sign.NewSigner("hall")
	builtins := core.NewBuiltins()
	builtins.Register("noop", func(*core.Env, map[string]string) (aop.Body, error) {
		return aop.BodyFunc(func(*aop.Context) error { return nil }), nil
	})
	fabric := transport.NewInProc()

	type node struct {
		receiver *core.Receiver
		addr     string
	}
	nodes := make([]node, n)
	var cleanup []func()
	defer func() {
		for _, f := range cleanup {
			f()
		}
	}()
	for i := 0; i < n; i++ {
		trust := sign.NewTrustStore()
		trust.Trust("hall", signer.PublicKey())
		receiver, err := core.NewReceiver(core.ReceiverConfig{
			NodeName: fmt.Sprintf("n%d", i), Weaver: weave.New(), Trust: trust,
			Policy: sandbox.AllowAll(), Host: lvm.HostMap{}, Builtins: builtins,
		})
		if err != nil {
			b.Fatal(err)
		}
		mux := transport.NewMux()
		receiver.ServeOn(mux)
		addr := fmt.Sprintf("node-%d", i)
		if useTCP {
			srv, err := transport.ServeTCP("127.0.0.1:0", mux)
			if err != nil {
				b.Fatal(err)
			}
			cleanup = append(cleanup, func() { srv.Close() })
			addr = srv.Addr()
		} else {
			stop, err := fabric.Serve(addr, mux)
			if err != nil {
				b.Fatal(err)
			}
			cleanup = append(cleanup, stop)
		}
		nodes[i] = node{receiver: receiver, addr: addr}
	}

	var caller transport.Caller = fabric.Node("base")
	if useTCP {
		tcp := transport.NewTCPCaller()
		defer tcp.Close()
		caller = tcp
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base, err := core.NewBase(core.BaseConfig{
			Name: "base", Addr: "base", Caller: caller, Signer: signer,
			LeaseDur: time.Minute, // keep renewals out of the measurement
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := base.AddExtension(core.Extension{
			ID: "e", Name: "e", Version: i + 1,
			Advices: []core.AdviceSpec{{Name: "a", Kind: core.KindCallBefore, Pattern: "*.*(..)", Builtin: "noop"}},
		}); err != nil {
			b.Fatal(err)
		}
		for _, nd := range nodes {
			if err := base.AdaptNode(nd.addr, nd.addr); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		base.Close()
		b.StartTimer()
	}
}

func BenchmarkE5Distribution(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("inproc/nodes=%d", n), func(b *testing.B) { benchDistribution(b, n, false) })
	}
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("tcp/nodes=%d", n), func(b *testing.B) { benchDistribution(b, n, true) })
	}
}

// ---------------------------------------------------------------------------
// E6 — Fig. 2: remote method call latency before and after adaptation, with
// k stacked extensions (session, access control, logging).

func BenchmarkE6AdaptedCall(b *testing.B) {
	builtins := core.NewBuiltins()
	ext.RegisterAll(builtins)

	setups := []struct {
		name  string
		stack []string
	}{
		{"k=0-unadapted", nil},
		{"k=1-session", []string{ext.BSession}},
		{"k=2-access", []string{ext.BSession, ext.BAccessControl}},
		{"k=3-logging", []string{ext.BSession, ext.BAccessControl, ext.BLogger}},
	}
	for _, setup := range setups {
		b.Run(setup.name, func(b *testing.B) {
			fabric := transport.NewInProc()
			weaver := weave.New()
			services := svc.NewRegistry(weaver)
			services.Register("Robot", "moveArm", []string{"int"}, "int", func(args []lvm.Value) (lvm.Value, error) {
				return lvm.Int(args[0].I), nil
			})
			mux := transport.NewMux()
			services.ServeOn(mux)
			stop, err := fabric.Serve("robot", mux)
			if err != nil {
				b.Fatal(err)
			}
			defer stop()

			env := &core.Env{NodeName: "robot", Host: ext.NewNodeHost(ext.NodeHostConfig{Clock: clock.Real{}})}
			var advices []aop.Advice
			for _, name := range setup.stack {
				var cfg map[string]string
				if name == ext.BAccessControl {
					cfg = map[string]string{"allow": "operator"}
				}
				body, err := builtins.New(name, env, cfg)
				if err != nil {
					b.Fatal(err)
				}
				advices = append(advices, aop.BeforeCall("Robot.*(..)", body))
			}
			if len(advices) > 0 {
				if err := weaver.Insert(&aop.Aspect{Name: "stack", Advices: advices}); err != nil {
					b.Fatal(err)
				}
			}

			caller := fabric.Node("client")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := svc.Call(caller, "robot", "Robot", "moveArm", "operator", lvm.Int(30)); err != nil {
					b.Fatal(err)
				}
			}
		})
		// The "local" variants exclude the transport so the per-extension
		// increments of the interception chain are visible (the remote
		// variants show that RPC dominates, which is the paper's point that
		// the platform overhead is negligible against the functionality).
		b.Run("local-"+setup.name, func(b *testing.B) {
			weaver := weave.New()
			services := svc.NewRegistry(weaver)
			services.Register("Robot", "moveArm", []string{"int"}, "int", func(args []lvm.Value) (lvm.Value, error) {
				return lvm.Int(args[0].I), nil
			})
			env := &core.Env{NodeName: "robot", Host: ext.NewNodeHost(ext.NodeHostConfig{Clock: clock.Real{}})}
			var advices []aop.Advice
			for _, name := range setup.stack {
				var cfg map[string]string
				if name == ext.BAccessControl {
					cfg = map[string]string{"allow": "operator"}
				}
				body, err := builtins.New(name, env, cfg)
				if err != nil {
					b.Fatal(err)
				}
				advices = append(advices, aop.BeforeCall("Robot.*(..)", body))
			}
			if len(advices) > 0 {
				if err := weaver.Insert(&aop.Aspect{Name: "stack", Advices: advices}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := services.Invoke("Robot", "moveArm", "operator", []lvm.Value{lvm.Int(30)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E7 — run-time weaving cost as a function of application size (number of
// join-point sites the crosscut must be matched against).

func BenchmarkE7WeaveTime(b *testing.B) {
	for _, methods := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("methods=%d", methods), func(b *testing.B) {
			w := weave.New()
			for i := 0; i < methods; i++ {
				sig := aop.Signature{Class: fmt.Sprintf("C%d", i%50), Method: fmt.Sprintf("m%d", i), Return: "void"}
				w.RegisterMethodSite(aop.MethodEntry, sig)
				w.RegisterMethodSite(aop.MethodExit, sig)
			}
			body := aop.BodyFunc(func(*aop.Context) error { return nil })
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a := &aop.Aspect{Name: "a", Advices: []aop.Advice{aop.BeforeCall("C1.*(..)", body)}}
				if err := w.Insert(a); err != nil {
					b.Fatal(err)
				}
				if err := w.Withdraw("a"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E8 — symmetric ad-hoc mode: time for a community of N peers to converge to
// the union of everyone's extensions.

func BenchmarkE8AdhocConvergence(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("peers=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				fabric := transport.NewInProc()
				type peer struct {
					base     *core.Base
					receiver *core.Receiver
					addr     string
				}
				peers := make([]peer, n)
				signers := make([]*sign.Signer, n)
				for j := 0; j < n; j++ {
					signers[j], _ = sign.NewSigner(fmt.Sprintf("p%d", j))
				}
				builtins := core.NewBuiltins()
				builtins.Register("noop", func(*core.Env, map[string]string) (aop.Body, error) {
					return aop.BodyFunc(func(*aop.Context) error { return nil }), nil
				})
				for j := 0; j < n; j++ {
					trust := sign.NewTrustStore()
					for k := 0; k < n; k++ {
						trust.Trust(fmt.Sprintf("p%d", k), signers[k].PublicKey())
					}
					addr := fmt.Sprintf("peer-%d", j)
					receiver, err := core.NewReceiver(core.ReceiverConfig{
						NodeName: addr, Weaver: weave.New(), Trust: trust,
						Policy: sandbox.AllowAll(), Host: lvm.HostMap{}, Builtins: builtins,
					})
					if err != nil {
						b.Fatal(err)
					}
					base, err := core.NewBase(core.BaseConfig{
						Name: addr, Addr: addr, Caller: fabric.Node(addr),
						Signer: signers[j], LeaseDur: time.Minute,
					})
					if err != nil {
						b.Fatal(err)
					}
					if err := base.AddExtension(core.Extension{
						ID: addr + "/e", Name: "svc-" + addr, Version: 1,
						Advices: []core.AdviceSpec{{Name: "a", Kind: core.KindCallBefore, Pattern: "*.*(..)", Builtin: "noop"}},
					}); err != nil {
						b.Fatal(err)
					}
					mux := transport.NewMux()
					receiver.ServeOn(mux)
					base.ServeOn(mux)
					if _, err := fabric.Serve(addr, mux); err != nil {
						b.Fatal(err)
					}
					peers[j] = peer{base: base, receiver: receiver, addr: addr}
				}
				b.StartTimer()
				// Every peer adapts every other peer; measure to convergence.
				for j := range peers {
					for k := range peers {
						if j == k {
							continue
						}
						if err := peers[j].base.AdaptNode(peers[k].addr, peers[k].addr); err != nil {
							b.Fatal(err)
						}
					}
				}
				for _, p := range peers {
					if len(p.receiver.Installed()) != n-1 {
						b.Fatalf("peer has %d extensions, want %d", len(p.receiver.Installed()), n-1)
					}
				}
				b.StopTimer()
				for _, p := range peers {
					p.base.Close()
				}
				b.StartTimer()
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E9 — dynamic weaving vs a compile-time-weaving baseline (the AspectJ-style
// comparator): the same auditing behaviour inlined into the bytecode at
// "compile time" versus attached through PROSE hooks at run time.

const e9BaseSrc = `
class Work
  field audit
  method int step(int x)
    load x
    push 3
    mul
    push 1
    add
    ret
  end
end`

const e9StaticSrc = `
class Work
  field audit
  method int step(int x)
    ; statically woven advice: audit += 1
    getself audit
    push 1
    add
    setself audit
    load x
    push 3
    mul
    push 1
    add
    ret
  end
end`

func BenchmarkE9StaticVsDynamic(b *testing.B) {
	b.Run("unwoven", func(b *testing.B) {
		m := jit.NewMachine(lvm.MustAssemble(e9BaseSrc), nil, nil)
		benchE9(b, m)
	})
	b.Run("static-weaving", func(b *testing.B) {
		m := jit.NewMachine(lvm.MustAssemble(e9StaticSrc), nil, nil)
		benchE9(b, m)
	})
	b.Run("dynamic-weaving", func(b *testing.B) {
		w := weave.New()
		m := jit.NewMachine(lvm.MustAssemble(e9BaseSrc), w, nil)
		audit := 0
		a := &aop.Aspect{Name: "audit", Advices: []aop.Advice{
			aop.BeforeCall("Work.step(..)", aop.BodyFunc(func(*aop.Context) error {
				audit++
				return nil
			})),
		}}
		if err := w.Insert(a); err != nil {
			b.Fatal(err)
		}
		benchE9(b, m)
	})
}

func benchE9(b *testing.B, m *jit.Machine) {
	m.MaxSteps = 1 << 62
	self := m.Prog.Class("Work").New()
	meth := m.Prog.Method("Work", "step")
	args := []lvm.Value{lvm.Int(7)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Invoke(meth, self, args); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E10 — hardware monitoring throughput (§4.4/Fig. 3b): plotter drawing rate
// without monitoring, with the async logging extension and with sync posting
// (the latter doubles as the sync-post ablation).

func BenchmarkE10Monitoring(b *testing.B) {
	for _, mode := range []string{"off", "async", "sync"} {
		b.Run("mode="+mode, func(b *testing.B) {
			fabric := transport.NewInProc()
			db := store.NewMemory()
			signer, _ := sign.NewSigner("hall")
			base, err := core.NewBase(core.BaseConfig{
				Name: "base", Addr: "base", Caller: fabric.Node("base"),
				Signer: signer, Store: db, LeaseDur: time.Hour,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer base.Close()
			baseMux := transport.NewMux()
			base.ServeOn(baseMux)
			stop, err := fabric.Serve("base", baseMux)
			if err != nil {
				b.Fatal(err)
			}
			defer stop()

			weaver := weave.New()
			plot, err := plotter.New(weaver, plotter.NewCanvas(64, 64))
			if err != nil {
				b.Fatal(err)
			}
			if mode != "off" {
				builtins := core.NewBuiltins()
				ext.RegisterAll(builtins)
				env := &core.Env{
					NodeName: "plotter", BaseAddr: "base",
					Host: ext.NewNodeHost(ext.NodeHostConfig{Caller: fabric.Node("plotter"), Clock: clock.Real{}}),
				}
				body, err := builtins.New(ext.BMonitor, env, map[string]string{"mode": mode})
				if err != nil {
					b.Fatal(err)
				}
				a := &aop.Aspect{Name: "monitor", Advices: []aop.Advice{
					aop.BeforeCall("Motor.*(..)", body),
				}}
				if err := weaver.Insert(a); err != nil {
					b.Fatal(err)
				}
			}

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := plot.MoveTo(32, 0); err != nil {
					b.Fatal(err)
				}
				if err := plot.MoveTo(0, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §5).

// AblationHookFastPath quantifies the minimal-hook design: dispatching
// through an inactive site versus paying for a context even when nothing is
// woven.
func BenchmarkAblationHookFastPath(b *testing.B) {
	w := weave.New()
	site := w.RegisterMethodSite(aop.MethodEntry, aop.Signature{Class: "C", Method: "m", Return: "void"})
	b.Run("fast-path-check", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if site.Active() {
				b.Fatal("site unexpectedly active")
			}
		}
	})
	b.Run("always-build-context", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctx := weave.GetContext()
			ctx.Kind = aop.MethodEntry
			ctx.Sig = site.Sig
			if err := site.Dispatch(ctx); err != nil {
				b.Fatal(err)
			}
			weave.PutContext(ctx)
		}
	})
}

// AblationMatchPerCall compares the weaver's precomputed advice chains with
// the naive design that re-matches the crosscut pattern on every dispatch.
func BenchmarkAblationMatchPerCall(b *testing.B) {
	patterns := make([]*aop.Pattern, 20)
	for i := range patterns {
		patterns[i] = aop.MustParsePattern(fmt.Sprintf("void C%d.m*(int, ..)", i))
	}
	sig := aop.Signature{Class: "C7", Method: "move", Return: "void", Params: []string{"int", "int"}}

	b.Run("precomputed-chain", func(b *testing.B) {
		w := weave.New()
		site := w.RegisterMethodSite(aop.MethodEntry, sig)
		body := aop.BodyFunc(func(*aop.Context) error { return nil })
		var advices []aop.Advice
		for i := range patterns {
			advices = append(advices, aop.Advice{
				When: aop.Before,
				Cut:  aop.Crosscut{Kind: aop.MethodEntry, Pat: patterns[i]},
				Body: body,
			})
		}
		if err := w.Insert(&aop.Aspect{Name: "a", Advices: advices}); err != nil {
			b.Fatal(err)
		}
		ctx := &aop.Context{Sig: sig}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := site.Dispatch(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("match-per-call", func(b *testing.B) {
		body := func() error { return nil }
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, p := range patterns {
				if p.MatchMethod(sig) {
					if err := body(); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	})
}

// AblationRenewInterval measures how the renewal fraction trades renewal
// traffic against revocation latency: later renewals (7/8 of the lease) mean
// fewer messages but later failure detection than eager ones (1/2).
func BenchmarkAblationRenewInterval(b *testing.B) {
	for _, fraction := range []float64{0.5, 0.875} {
		b.Run(fmt.Sprintf("fraction=%.3f", fraction), func(b *testing.B) {
			signer, _ := sign.NewSigner("hall")
			builtins := core.NewBuiltins()
			builtins.Register("noop", func(*core.Env, map[string]string) (aop.Body, error) {
				return aop.BodyFunc(func(*aop.Context) error { return nil }), nil
			})
			trust := sign.NewTrustStore()
			trust.Trust("hall", signer.PublicKey())

			fabric := transport.NewInProc()
			receiver, err := core.NewReceiver(core.ReceiverConfig{
				NodeName: "n", Weaver: weave.New(), Trust: trust,
				Policy: sandbox.AllowAll(), Host: lvm.HostMap{}, Builtins: builtins,
			})
			if err != nil {
				b.Fatal(err)
			}
			receiver.Grantor().Start(2 * time.Millisecond)
			defer receiver.Grantor().Stop()
			mux := transport.NewMux()
			receiver.ServeOn(mux)
			stop, err := fabric.Serve("node", mux)
			if err != nil {
				b.Fatal(err)
			}
			defer stop()

			var totalRevoke time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				base, err := core.NewBase(core.BaseConfig{
					Name: "base", Addr: "base", Caller: fabric.Node("base"),
					Signer: signer, LeaseDur: 50 * time.Millisecond, RenewFraction: fraction,
					CallTimeout: 200 * time.Millisecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := base.AddExtension(core.Extension{
					ID: "e", Name: "e", Version: i + 1,
					Advices: []core.AdviceSpec{{Name: "a", Kind: core.KindCallBefore, Pattern: "*.*(..)", Builtin: "noop"}},
				}); err != nil {
					b.Fatal(err)
				}
				if err := base.AdaptNode("n", "node"); err != nil {
					b.Fatal(err)
				}
				// Let a few renewal rounds pass, then yank the node away by
				// stopping the base's renewals and measure time-to-revoke.
				time.Sleep(120 * time.Millisecond)
				start := time.Now()
				base.Release("node")
				for receiver.Has("e") {
					time.Sleep(time.Millisecond)
				}
				totalRevoke += time.Since(start)
				base.Close()
			}
			b.StopTimer()
			b.ReportMetric(float64(totalRevoke.Milliseconds())/float64(b.N), "ms-to-revoke")
		})
	}
}

// ---------------------------------------------------------------------------
// Engine comparison (supporting E1): the interpreted LVM vs the closure JIT,
// quantifying why PROSE attaches to the JIT rather than interpreting.

func BenchmarkEngineInterpVsJIT(b *testing.B) {
	for _, spec := range workload.All() {
		b.Run(spec.Name+"/interp", func(b *testing.B) {
			prog := workload.Program()
			in := lvm.NewInterp(prog, nil)
			in.MaxSteps = 1 << 62
			self := prog.Class(spec.Class).New()
			meth := prog.Method(spec.Class, spec.Method)
			args := []lvm.Value{lvm.Int(spec.Arg)}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := in.Invoke(meth, self, args); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(spec.Name+"/jit", func(b *testing.B) {
			m := jit.NewMachine(workload.Program(), nil, nil)
			m.MaxSteps = 1 << 62
			self := m.Prog.Class(spec.Class).New()
			meth := m.Prog.Method(spec.Class, spec.Method)
			args := []lvm.Value{lvm.Int(spec.Arg)}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := m.Invoke(meth, self, args); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
