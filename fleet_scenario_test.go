// Fleet-scale scenario: one base station keeping >=10k simulated nodes
// adapted through churn — roams, crashes and partitions — on the timer-wheel
// renewal scheduler, batched RPCs and the sharded node table. The run is
// seeded and driven entirely by the manual clock, so a faulty fleet must
// converge to the exact state of a fault-free fleet, and a same-seed replay
// must reproduce the faulty run bit for bit. Set FLEET_NODES / FLEET_SEED to
// resize or replay.
package repro

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sign"
	"repro/internal/simnet"
	"repro/internal/testutil"
	"repro/internal/trace"
	"repro/internal/transport"
)

// fleetSeedDefault pins the CI fleet run; FLEET_SEED overrides for replay.
const fleetSeedDefault = 20030901

// fleetNodeCount sizes the fleet: FLEET_NODES when set, 10k by default, and
// a smaller fleet under the race detector so -race suites stay quick.
func fleetNodeCount(t *testing.T) int {
	t.Helper()
	if v := os.Getenv("FLEET_NODES"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("FLEET_NODES=%q: want a positive integer", v)
		}
		return n
	}
	if raceDetectorEnabled {
		return 1000
	}
	return 10000
}

// fleetGrant is one lease a fleet node holds.
type fleetGrant struct {
	version  int
	leaseID  string
	baseAddr string
	deadline time.Time
}

// fleetNode is a lightweight mobile node for fleet runs: it serves the full
// receiver wire surface (install, renew, revoke, inventory, singleton and
// batched) straight out of a grant map, with none of a real receiver's
// weaving or sandboxing. Lease IDs come from a per-node counter so a fleet's
// state is independent of cross-node call order.
type fleetNode struct {
	name string
	clk  clock.Clock

	mu      sync.Mutex
	seq     int
	grants  map[string]fleetGrant // extension name -> grant
	obsReg  *metrics.Registry     // when set, WantObs batches answer with deltas
	obsSent map[string]fleetObsCum
}

// fleetObsCum is the cumulative RED state already reported upstream, so the
// next piggybacked report carries only the delta — the same bookkeeping a
// real receiver keeps.
type fleetObsCum struct {
	count  uint64
	errors uint64
	sumNs  int64
}

func newFleetNode(name string, clk clock.Clock) *fleetNode {
	return &fleetNode{name: name, clk: clk, grants: make(map[string]fleetGrant)}
}

// installLocked grants a lease for one pushed extension.
func (n *fleetNode) installLocked(req core.InstallReq) string {
	n.seq++
	g := fleetGrant{
		version:  req.Signed.Ext.Version,
		leaseID:  fmt.Sprintf("%s-L%d", n.name, n.seq),
		baseAddr: req.BaseAddr,
		deadline: n.clk.Now().Add(time.Duration(req.DurMillis) * time.Millisecond),
	}
	n.grants[req.Signed.Ext.Name] = g
	return g.leaseID
}

// renewLocked extends the lease with the given ID, reporting the granted
// duration or an error text for unknown (expired, revoked) leases.
func (n *fleetNode) renewLocked(id string, durMillis int64) (int64, string) {
	for name, g := range n.grants {
		if g.leaseID == id {
			g.deadline = n.clk.Now().Add(time.Duration(durMillis) * time.Millisecond)
			n.grants[name] = g
			return durMillis, ""
		}
	}
	return 0, fmt.Sprintf("unknown lease %s", id)
}

func (n *fleetNode) serveOn(mux *transport.Mux) {
	transport.Register(mux, core.MethodInstall, func(_ context.Context, req core.InstallReq) (core.InstallResp, error) {
		n.mu.Lock()
		defer n.mu.Unlock()
		return core.InstallResp{LeaseID: n.installLocked(req)}, nil
	})
	transport.Register(mux, core.MethodApplyBatch, func(_ context.Context, req core.ApplyBatchReq) (core.ApplyBatchResp, error) {
		n.mu.Lock()
		defer n.mu.Unlock()
		resp := core.ApplyBatchResp{
			Installs: make([]core.InstallItemResp, len(req.Installs)),
			Revokes:  make([]core.RevokeItemResp, len(req.Revokes)),
		}
		for i, ins := range req.Installs {
			resp.Installs[i].LeaseID = n.installLocked(ins)
		}
		for _, name := range req.Revokes {
			delete(n.grants, name) // absent is success, like the receiver
		}
		return resp, nil
	})
	transport.Register(mux, core.MethodRenewE, func(_ context.Context, req core.RenewExtReq) (core.RenewExtResp, error) {
		n.mu.Lock()
		defer n.mu.Unlock()
		dur, errText := n.renewLocked(req.LeaseID, req.DurMillis)
		if errText != "" {
			return core.RenewExtResp{}, fmt.Errorf("%s", errText)
		}
		return core.RenewExtResp{DurMillis: dur}, nil
	})
	transport.Register(mux, core.MethodRenewBatch, func(_ context.Context, req core.RenewBatchReq) (core.RenewBatchResp, error) {
		n.mu.Lock()
		defer n.mu.Unlock()
		resp := core.RenewBatchResp{Items: make([]core.RenewItemResp, len(req.Items))}
		for i, it := range req.Items {
			resp.Items[i].DurMillis, resp.Items[i].Err = n.renewLocked(it.LeaseID, it.DurMillis)
		}
		if req.WantObs {
			resp.Obs = n.obsDeltaLocked()
		}
		return resp, nil
	})
	transport.Register(mux, core.MethodRevoke, func(_ context.Context, req core.RevokeReq) (core.EmptyResp, error) {
		n.mu.Lock()
		defer n.mu.Unlock()
		delete(n.grants, req.Name)
		return core.EmptyResp{}, nil
	})
	transport.Register(mux, core.MethodInventory, func(_ context.Context, _ core.EmptyResp) (core.InventoryResp, error) {
		n.mu.Lock()
		defer n.mu.Unlock()
		resp := core.InventoryResp{Node: n.name}
		for name, g := range n.grants {
			resp.Items = append(resp.Items, core.InventoryItem{
				Name:           name,
				Version:        g.version,
				BaseAddr:       g.baseAddr,
				LeaseID:        g.leaseID,
				DeadlineMillis: g.deadline.UnixMilli(),
			})
		}
		sort.Slice(resp.Items, func(i, j int) bool { return resp.Items[i].Name < resp.Items[j].Name })
		return resp, nil
	})
}

// obsDeltaLocked computes the node's piggyback report from its own RED
// registry, mirroring a real receiver's delta bookkeeping: cumulative
// counters minus what was already reported, nil when nothing is new.
func (n *fleetNode) obsDeltaLocked() *core.ObsReport {
	if n.obsReg == nil {
		return nil
	}
	if n.obsSent == nil {
		n.obsSent = make(map[string]fleetObsCum)
	}
	prefix := transport.REDSuffix(transport.REDServerPrefix, "ns", "")
	rep := &core.ObsReport{}
	n.obsReg.VisitHistograms(func(name string, count uint64, sum int64) {
		method, ok := strings.CutPrefix(name, prefix)
		if !ok || method == "" {
			return
		}
		cum := fleetObsCum{
			count:  count,
			sumNs:  sum,
			errors: n.obsReg.CounterValue(transport.REDSuffix(transport.REDServerPrefix, "errors", method)),
		}
		last := n.obsSent[method]
		d := core.ObsMethodDelta{
			Method: method,
			Count:  cum.count - last.count,
			Errors: cum.errors - last.errors,
			SumNs:  cum.sumNs - last.sumNs,
		}
		if d.Count == 0 && d.Errors == 0 && d.SumNs == 0 {
			return
		}
		n.obsSent[method] = cum
		rep.Methods = append(rep.Methods, d)
	})
	if len(rep.Methods) == 0 {
		return nil
	}
	sort.Slice(rep.Methods, func(i, j int) bool { return rep.Methods[i].Method < rep.Methods[j].Method })
	return rep
}

// reportedCalls sums the RED call counts this node has reported upstream so
// far — the node-side ground truth the base's fleet view must agree with.
func (n *fleetNode) reportedCalls() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	var total uint64
	for _, c := range n.obsSent {
		total += c.count
	}
	return total
}

// fleetNodeState is one node's row in a convergence summary: everything
// about distribution state, nothing about how it got there.
type fleetNodeState struct {
	Addr  string
	State string
	Exts  []string
}

// fleetState is the fault-insensitive convergence summary: a healed, fully
// reconciled fleet must reach the same fleetState a fault-free run reaches.
type fleetState struct {
	Nodes     []fleetNodeState
	Scheduled int
	Adapted   int64
	Degraded  int64
}

// fleetRun additionally captures every counter and drift statistic, which a
// same-seed replay must reproduce exactly.
type fleetRun struct {
	state    fleetState
	drift    core.DriftCounters
	counters map[string]uint64
	gauges   map[string]int64
}

// fleetFaults is the churn plan, derived deterministically from the seed:
// disjoint slices of the fleet to partition, crash, and roam.
type fleetFaults struct {
	partitioned []string
	crashed     []string
	roamed      []string
}

func planFleetFaults(seed int64, names []string) fleetFaults {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(names))
	pick := func(from, n int) []string {
		out := make([]string, 0, n)
		for _, idx := range perm[from : from+n] {
			out = append(out, names[idx])
		}
		sort.Strings(out)
		return out
	}
	nPart := max(1, len(names)*2/100)  // ~2% drop off the network
	nCrash := max(1, len(names)/100)   // ~1% crash and restart
	nRoam := max(1, len(names)*5/1000) // ~0.5% roam away and back
	return fleetFaults{
		partitioned: pick(0, nPart),
		crashed:     pick(nPart, nCrash),
		roamed:      pick(nPart+nCrash, nRoam),
	}
}

// runFleet plays one complete fleet scenario — adapt, optional churn, heal,
// reconcile, stabilize — and returns its summary. Fault-free and faulty runs
// follow the same clock schedule so their convergence states are comparable.
func runFleet(t *testing.T, seed int64, nNodes int, withFaults bool) fleetRun {
	t.Helper()
	goroutineBaseline := runtime.NumGoroutine()

	clk := clock.NewManual(time.Unix(0, 0))
	net := simnet.New(clk, seed)
	defer net.Close()

	names := make([]string, nNodes)
	for i := range names {
		names[i] = fmt.Sprintf("node-%05d", i)
	}
	nodes := make(map[string]*fleetNode, nNodes)
	for _, name := range names {
		fn := newFleetNode(name, clk)
		mux := transport.NewMux()
		fn.serveOn(mux)
		stop, err := net.Serve(name, mux)
		if err != nil {
			t.Fatal(err)
		}
		defer stop()
		nodes[name] = fn
	}

	signer, err := sign.NewSigner("fleet-base")
	if err != nil {
		t.Fatal(err)
	}
	breaker := transport.NewBreakerSet(seed, transport.BreakerConfig{
		Threshold: 1,
		Cooldown:  time.Minute,
		Jitter:    0,
		Clock:     clk,
	})
	base, err := core.NewBase(core.BaseConfig{
		Name:          "fleet-base",
		Addr:          "fleet-base",
		Caller:        net.Node("fleet-base"),
		Signer:        signer,
		Clock:         clk,
		Breaker:       breaker,
		LeaseDur:      time.Minute,
		RenewFraction: 0.5,
		RenewRetries:  1,
		CallTimeout:   time.Hour, // simulated time governs
		Shards:        16,
		RenewBatch:    64,
		RenewWorkers:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	reg := metrics.New()
	base.Instrument(reg)

	for _, ext := range []core.Extension{
		noopScenarioExt("policy", 1),
		noopScenarioExt("telemetry", 1),
	} {
		if err := base.AddExtension(ext); err != nil {
			t.Fatal(err)
		}
	}

	// t=0: the whole fleet walks into the cell.
	for _, name := range names {
		if err := base.AdaptNode(name, name); err != nil {
			t.Fatalf("adapt %s: %v", name, err)
		}
	}
	wantLeases := 2 * nNodes
	if got := base.ScheduledRenewals(); got != wantLeases {
		t.Fatalf("scheduled renewals = %d, want %d", got, wantLeases)
	}
	// The tentpole claim: keeping 2*N leases alive costs O(shards + wheels)
	// goroutines — one wheel, a bounded worker pool — not O(leases).
	if g := runtime.NumGoroutine(); g > goroutineBaseline+32 {
		t.Fatalf("%d goroutines for %d leases (baseline %d): renewal scheduling is not O(shards+wheels)",
			g, wantLeases, goroutineBaseline)
	}

	drain := func(total, step time.Duration) {
		t.Helper()
		for elapsed := time.Duration(0); elapsed < total; elapsed += step {
			clk.Advance(step)
			testutil.WaitFor(t, "renewals quiesced", base.RenewalsQuiesced)
		}
	}

	faults := planFleetFaults(seed, names)
	clk.Advance(5 * time.Second)

	if withFaults {
		// t=5s: churn hits. Partitioned nodes fall off the network, crashed
		// nodes go down holding their state, roamers leave and come right
		// back (release + re-adapt).
		for _, name := range faults.partitioned {
			net.PartitionBoth("fleet-base", name)
		}
		for _, name := range faults.crashed {
			net.Crash(name)
		}
		for _, name := range faults.roamed {
			base.Release(name)
			if err := base.AdaptNode(name, name); err != nil {
				t.Fatalf("re-adapt roamer %s: %v", name, err)
			}
		}
	}

	// One renewal window plus retry slack: unreachable nodes fail their
	// renewals, trip their breakers and park degraded; everyone else renews.
	drain(60*time.Second, 15*time.Second)

	wantDegraded := []string{}
	if withFaults {
		wantDegraded = append(append(wantDegraded, faults.partitioned...), faults.crashed...)
		sort.Strings(wantDegraded)
	}
	testutil.WaitFor(t, "faulted nodes parked degraded", func() bool {
		got := base.Degraded()
		if len(got) != len(wantDegraded) {
			return false
		}
		sort.Strings(got)
		return len(got) == 0 || reflect.DeepEqual(got, wantDegraded)
	})
	testutil.WaitFor(t, "degrade counters settled", func() bool {
		return testutil.Counter(reg, "base.degrades") == uint64(len(wantDegraded))
	})
	// Roamer releases are the only departures; unreachable nodes must have
	// parked degraded, not departed.
	wantDeparts := uint64(0)
	if withFaults {
		wantDeparts = uint64(len(faults.roamed))
	}
	if got := testutil.Counter(reg, "base.departures"); got != wantDeparts {
		t.Fatalf("base.departures = %d, want %d (roamer releases only)", got, wantDeparts)
	}

	// Heal everything and let the breakers' cooldown elapse; degraded nodes
	// are parked (no renewal traffic), the rest keep renewing.
	net.HealAll()
	for _, name := range faults.crashed {
		net.Restart(name)
	}
	drain(60*time.Second, 15*time.Second)

	// Anti-entropy: one reconcile round promotes every parked node and
	// adopts the leases its fake receiver still holds.
	base.ReconcileNow(context.Background())
	if got := base.Degraded(); len(got) != 0 {
		t.Fatalf("degraded after heal+reconcile = %v, want none", got)
	}

	// One more window: adopted leases come due (their deadlines lapsed
	// during the outage) and the whole fleet settles into steady renewal.
	drain(60*time.Second, 15*time.Second)
	testutil.WaitFor(t, "full fleet scheduled again", func() bool {
		return base.ScheduledRenewals() == wantLeases
	})

	status := base.Status()
	run := fleetRun{
		state: fleetState{
			Scheduled: base.ScheduledRenewals(),
			Adapted:   testutil.Gauge(reg, "base.adapted_nodes"),
			Degraded:  testutil.Gauge(reg, "base.degraded_nodes"),
		},
		drift: status.Drift,
	}
	for _, n := range status.Nodes {
		run.state.Nodes = append(run.state.Nodes, fleetNodeState{Addr: n.Addr, State: n.State, Exts: n.Exts})
	}
	snap := reg.Snapshot()
	run.counters = snap.Counters
	run.gauges = snap.Gauges
	return run
}

// obsFleetRun captures one observability run for same-seed replay
// comparison. RPC latencies are wall-clock and therefore excluded (the fleet
// view is normalized); everything else — sampling decisions, tail-keep,
// ring occupancy, audit spans with their IDs and manual-clock timestamps —
// must replay bit for bit.
type obsFleetRun struct {
	fleet      core.FleetResp
	sampledOut uint64
	tailKept   uint64
	dropped    uint64
	ringUsed   int
	audits     []trace.SpanSnapshot
}

// normalizeFleet zeroes the wall-clock latency sums, which are the only
// non-deterministic part of the fleet view.
func normalizeFleet(f core.FleetResp) core.FleetResp {
	out := f
	out.Methods = append([]core.FleetMethod(nil), f.Methods...)
	for i := range out.Methods {
		out.Methods[i].SumNs, out.Methods[i].MeanNs = 0, 0
	}
	out.Nodes = append([]core.FleetNode(nil), f.Nodes...)
	for i := range out.Nodes {
		out.Nodes[i].SumNs = 0
	}
	out.Degraded = nil
	return out
}

// runObsFleet plays the observability scenario: a full fleet adapts and
// renews with 1% head sampling plus tail-keep on the base tracer and RED
// piggyback reporting from every node, then an audit sweep starts one span
// per node with seeded error and slow picks. It asserts the plane's
// invariants inline and returns the replay capture.
func runObsFleet(t *testing.T, seed int64, nNodes int) obsFleetRun {
	t.Helper()
	clk := clock.NewManual(time.Unix(0, 0))
	net := simnet.New(clk, seed)
	defer net.Close()

	// The tracer reads the manual clock plus a test-controlled skew: bumping
	// the skew between a span's start and end makes it "slow" without
	// advancing the renewal wheel.
	tracer := trace.New(seed)
	var skewMu sync.Mutex
	skew := time.Duration(0)
	tracer.SetNow(func() time.Time {
		skewMu.Lock()
		defer skewMu.Unlock()
		return clk.Now().Add(skew)
	})
	const slowCut = 50 * time.Millisecond
	tracer.SetSampler(trace.SamplerConfig{Rate: 0.01, Seed: seed, SlowThreshold: slowCut})

	names := make([]string, nNodes)
	for i := range names {
		names[i] = fmt.Sprintf("node-%05d", i)
	}
	fleet := make(map[string]*fleetNode, nNodes)
	for _, name := range names {
		fn := newFleetNode(name, clk)
		fn.obsReg = metrics.New()
		mux := transport.NewMux()
		fn.serveOn(mux)
		stop, err := net.Serve(name, transport.REDHandling(mux, fn.obsReg))
		if err != nil {
			t.Fatal(err)
		}
		defer stop()
		fleet[name] = fn
	}

	signer, err := sign.NewSigner("fleet-base")
	if err != nil {
		t.Fatal(err)
	}
	base, err := core.NewBase(core.BaseConfig{
		Name:          "fleet-base",
		Addr:          "fleet-base",
		Caller:        net.Node("fleet-base"),
		Signer:        signer,
		Clock:         clk,
		LeaseDur:      time.Minute,
		RenewFraction: 0.5,
		RenewRetries:  1,
		CallTimeout:   time.Hour,
		Shards:        16,
		RenewBatch:    64,
		// One renewal worker: concurrent workers interleave their draws from
		// the tracer's ID source, which shuffles sampling decisions between
		// runs — the exact hazard the scheduler's Workers doc calls out for
		// traced scenarios. Replayability needs ordered traffic.
		RenewWorkers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	reg := metrics.New()
	base.Instrument(reg) // an instrumented base asks nodes for piggybacked deltas
	base.Trace(tracer)
	baseMux := transport.NewMux()
	base.ServeOn(baseMux)
	stopBase, err := net.Serve("fleet-base", baseMux)
	if err != nil {
		t.Fatal(err)
	}
	defer stopBase()

	for _, ext := range []core.Extension{
		noopScenarioExt("policy", 1),
		noopScenarioExt("telemetry", 1),
	} {
		if err := base.AddExtension(ext); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range names {
		if err := base.AdaptNode(name, name); err != nil {
			t.Fatalf("adapt %s: %v", name, err)
		}
	}

	// Two renewal windows: every node serves at least one WantObs batch and
	// reports its RED deltas back.
	for elapsed := time.Duration(0); elapsed < 60*time.Second; elapsed += 15 * time.Second {
		clk.Advance(15 * time.Second)
		testutil.WaitFor(t, "renewals quiesced", base.RenewalsQuiesced)
	}

	// The audit sweep: one span per node, ~1% erroring and ~0.5% slow
	// (disjoint picks), against a 1% head-sampling rate. Tail-keep must
	// rescue every error and every slow span.
	rng := rand.New(rand.NewSource(seed ^ 0xa0d17))
	perm := rng.Perm(nNodes)
	nErr := max(1, nNodes/100)
	nSlow := max(1, nNodes/200)
	isErr := make(map[int]bool, nErr)
	isSlow := make(map[int]bool, nSlow)
	for _, idx := range perm[:nErr] {
		isErr[idx] = true
	}
	for _, idx := range perm[nErr : nErr+nSlow] {
		isSlow[idx] = true
	}
	for i, name := range names {
		_, sp := tracer.StartSpan(context.Background(), "fleet.audit")
		sp.Tag("node", name)
		if isSlow[i] {
			skewMu.Lock()
			skew += slowCut + 10*time.Millisecond
			skewMu.Unlock()
		}
		if isErr[i] {
			sp.End(fmt.Errorf("audit %s failed", name))
		} else {
			sp.End(nil)
		}
	}

	// Zero dropped error/slow traces: despite the 1% rate, every error span
	// and every slow span is in the ring.
	audits := tracer.Spans(trace.Filter{Name: "fleet.audit"})
	gotErr, gotSlow := 0, 0
	for _, s := range audits {
		if s.Err != "" {
			gotErr++
		} else if s.Duration() >= slowCut {
			gotSlow++
		}
	}
	if gotErr != nErr {
		t.Errorf("error audit spans recorded = %d, want all %d", gotErr, nErr)
	}
	if gotSlow != nSlow {
		t.Errorf("slow audit spans recorded = %d, want all %d", gotSlow, nSlow)
	}

	// Bounded trace memory: sampling kept the ring under capacity with zero
	// evictions across a >=10k-span workload.
	used, capacity := tracer.RingOccupancy()
	if used > capacity {
		t.Errorf("ring occupancy %d over capacity %d", used, capacity)
	}
	if dropped := tracer.SpansDropped(); dropped != 0 {
		t.Errorf("ring evicted %d spans; sampling should have kept it bounded", dropped)
	}
	sampledOut, tailKept := tracer.SamplerStats()
	if sampledOut == 0 || tailKept == 0 {
		t.Errorf("sampler stats = (%d out, %d tail-kept), want both active", sampledOut, tailKept)
	}

	// Fleet aggregation: every node reported, and the per-method rollup and
	// per-node rows are two groupings of the same deltas.
	st := base.FleetStatus()
	if st.Reports == 0 || len(st.Nodes) != nNodes {
		t.Errorf("fleet view: %d reports over %d nodes, want >0 over %d", st.Reports, len(st.Nodes), nNodes)
	}
	var mCount, nCount uint64
	for _, m := range st.Methods {
		mCount += m.Count
	}
	var groundTruth uint64
	for _, n := range st.Nodes {
		nCount += n.Count
	}
	for _, fn := range fleet {
		groundTruth += fn.reportedCalls()
	}
	if mCount != nCount || nCount != groundTruth {
		t.Errorf("rollup calls %d, node rows %d, node-side reported %d: must all agree", mCount, nCount, groundTruth)
	}
	seen := make(map[string]bool, len(st.Methods))
	for _, m := range st.Methods {
		seen[m.Method] = true
	}
	if !seen[core.MethodRenewBatch] || !seen[core.MethodApplyBatch] {
		t.Errorf("rollup methods = %v, want the batch surface present", st.Methods)
	}

	// The same view over the base.fleet RPC — the surface midasctl top polls.
	rpcView, err := transport.Invoke[core.EmptyResp, core.FleetResp](
		context.Background(), net.Node("probe"), "fleet-base", core.MethodBaseFleet, core.EmptyResp{})
	if err != nil {
		t.Fatalf("base.fleet RPC: %v", err)
	}
	if got, want := normalizeFleet(rpcView), normalizeFleet(st); !reflect.DeepEqual(got, want) {
		t.Errorf("base.fleet RPC view diverges from FleetStatus:\n got: %+v\nwant: %+v", got, want)
	}

	return obsFleetRun{
		fleet:      normalizeFleet(st),
		sampledOut: sampledOut,
		tailKept:   tailKept,
		dropped:    tracer.SpansDropped(),
		ringUsed:   used,
		audits:     audits,
	}
}

// TestFleetObservability is the fleet-scale proof for the observability
// plane: a 10k-node fleet under 1% head sampling with tail-keep holds its
// trace ring bounded without losing a single error or slow span, the base's
// fleet rollup agrees with per-node ground truth, and a same-seed replay
// reproduces every sampling decision, span ID and timestamp bit for bit.
func TestFleetObservability(t *testing.T) {
	seed := testutil.SeedFromEnv(t, "FLEET_SEED", fleetSeedDefault)
	nNodes := fleetNodeCount(t)
	t.Logf("fleet obs: %d nodes, seed %d", nNodes, seed)

	first := runObsFleet(t, seed, nNodes)
	replay := runObsFleet(t, seed, nNodes)
	if !reflect.DeepEqual(replay, first) {
		t.Errorf("same-seed replay diverged:\n first: %d/%d sampled-out/tail-kept, %d ring, %d audits\nreplay: %d/%d sampled-out/tail-kept, %d ring, %d audits",
			first.sampledOut, first.tailKept, first.ringUsed, len(first.audits),
			replay.sampledOut, replay.tailKept, replay.ringUsed, len(replay.audits))
	}
}

// TestFleetChurnConverges is the fleet-scale proof for this platform's base
// station: a 10k-node fleet (FLEET_NODES to resize) survives seeded churn —
// partitions, crashes, roams — and converges to exactly the state of a
// fault-free fleet, while a same-seed replay reproduces the faulty run's
// metrics bit for bit.
func TestFleetChurnConverges(t *testing.T) {
	seed := testutil.SeedFromEnv(t, "FLEET_SEED", fleetSeedDefault)
	nNodes := fleetNodeCount(t)
	t.Logf("fleet: %d nodes, seed %d", nNodes, seed)

	clean := runFleet(t, seed, nNodes, false)
	faulty := runFleet(t, seed, nNodes, true)
	replay := runFleet(t, seed, nNodes, true)

	// Convergence: churn must leave no trace in the distribution state.
	if !reflect.DeepEqual(faulty.state, clean.state) {
		t.Errorf("faulty fleet did not converge to the fault-free state:\n faulty: scheduled=%d adapted=%d degraded=%d nodes=%d\n  clean: scheduled=%d adapted=%d degraded=%d nodes=%d",
			faulty.state.Scheduled, faulty.state.Adapted, faulty.state.Degraded, len(faulty.state.Nodes),
			clean.state.Scheduled, clean.state.Adapted, clean.state.Degraded, len(clean.state.Nodes))
	}
	// Replayability: the seed pins the whole run, drift stats and counters
	// included.
	if !reflect.DeepEqual(replay, faulty) {
		t.Errorf("same-seed replay diverged:\n first: drift=%+v counters=%v\nreplay: drift=%+v counters=%v",
			faulty.drift, faulty.counters, replay.drift, replay.counters)
	}
	// And churn really happened: the faulty run parked and repaired nodes.
	if faulty.counters["base.degrades"] == 0 {
		t.Error("faulty run parked no nodes: churn plan did not bite")
	}
	if faulty.drift.Adopts == 0 {
		t.Error("reconciliation adopted no leases after the heal")
	}
}
