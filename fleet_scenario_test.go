// Fleet-scale scenario: one base station keeping >=10k simulated nodes
// adapted through churn — roams, crashes and partitions — on the timer-wheel
// renewal scheduler, batched RPCs and the sharded node table. The run is
// seeded and driven entirely by the manual clock, so a faulty fleet must
// converge to the exact state of a fault-free fleet, and a same-seed replay
// must reproduce the faulty run bit for bit. Set FLEET_NODES / FLEET_SEED to
// resize or replay.
package repro

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sign"
	"repro/internal/simnet"
	"repro/internal/testutil"
	"repro/internal/transport"
)

// fleetSeedDefault pins the CI fleet run; FLEET_SEED overrides for replay.
const fleetSeedDefault = 20030901

// fleetNodeCount sizes the fleet: FLEET_NODES when set, 10k by default, and
// a smaller fleet under the race detector so -race suites stay quick.
func fleetNodeCount(t *testing.T) int {
	t.Helper()
	if v := os.Getenv("FLEET_NODES"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("FLEET_NODES=%q: want a positive integer", v)
		}
		return n
	}
	if raceDetectorEnabled {
		return 1000
	}
	return 10000
}

// fleetGrant is one lease a fleet node holds.
type fleetGrant struct {
	version  int
	leaseID  string
	baseAddr string
	deadline time.Time
}

// fleetNode is a lightweight mobile node for fleet runs: it serves the full
// receiver wire surface (install, renew, revoke, inventory, singleton and
// batched) straight out of a grant map, with none of a real receiver's
// weaving or sandboxing. Lease IDs come from a per-node counter so a fleet's
// state is independent of cross-node call order.
type fleetNode struct {
	name string
	clk  clock.Clock

	mu     sync.Mutex
	seq    int
	grants map[string]fleetGrant // extension name -> grant
}

func newFleetNode(name string, clk clock.Clock) *fleetNode {
	return &fleetNode{name: name, clk: clk, grants: make(map[string]fleetGrant)}
}

// installLocked grants a lease for one pushed extension.
func (n *fleetNode) installLocked(req core.InstallReq) string {
	n.seq++
	g := fleetGrant{
		version:  req.Signed.Ext.Version,
		leaseID:  fmt.Sprintf("%s-L%d", n.name, n.seq),
		baseAddr: req.BaseAddr,
		deadline: n.clk.Now().Add(time.Duration(req.DurMillis) * time.Millisecond),
	}
	n.grants[req.Signed.Ext.Name] = g
	return g.leaseID
}

// renewLocked extends the lease with the given ID, reporting the granted
// duration or an error text for unknown (expired, revoked) leases.
func (n *fleetNode) renewLocked(id string, durMillis int64) (int64, string) {
	for name, g := range n.grants {
		if g.leaseID == id {
			g.deadline = n.clk.Now().Add(time.Duration(durMillis) * time.Millisecond)
			n.grants[name] = g
			return durMillis, ""
		}
	}
	return 0, fmt.Sprintf("unknown lease %s", id)
}

func (n *fleetNode) serveOn(mux *transport.Mux) {
	transport.Register(mux, core.MethodInstall, func(_ context.Context, req core.InstallReq) (core.InstallResp, error) {
		n.mu.Lock()
		defer n.mu.Unlock()
		return core.InstallResp{LeaseID: n.installLocked(req)}, nil
	})
	transport.Register(mux, core.MethodApplyBatch, func(_ context.Context, req core.ApplyBatchReq) (core.ApplyBatchResp, error) {
		n.mu.Lock()
		defer n.mu.Unlock()
		resp := core.ApplyBatchResp{
			Installs: make([]core.InstallItemResp, len(req.Installs)),
			Revokes:  make([]core.RevokeItemResp, len(req.Revokes)),
		}
		for i, ins := range req.Installs {
			resp.Installs[i].LeaseID = n.installLocked(ins)
		}
		for _, name := range req.Revokes {
			delete(n.grants, name) // absent is success, like the receiver
		}
		return resp, nil
	})
	transport.Register(mux, core.MethodRenewE, func(_ context.Context, req core.RenewExtReq) (core.RenewExtResp, error) {
		n.mu.Lock()
		defer n.mu.Unlock()
		dur, errText := n.renewLocked(req.LeaseID, req.DurMillis)
		if errText != "" {
			return core.RenewExtResp{}, fmt.Errorf("%s", errText)
		}
		return core.RenewExtResp{DurMillis: dur}, nil
	})
	transport.Register(mux, core.MethodRenewBatch, func(_ context.Context, req core.RenewBatchReq) (core.RenewBatchResp, error) {
		n.mu.Lock()
		defer n.mu.Unlock()
		resp := core.RenewBatchResp{Items: make([]core.RenewItemResp, len(req.Items))}
		for i, it := range req.Items {
			resp.Items[i].DurMillis, resp.Items[i].Err = n.renewLocked(it.LeaseID, it.DurMillis)
		}
		return resp, nil
	})
	transport.Register(mux, core.MethodRevoke, func(_ context.Context, req core.RevokeReq) (core.EmptyResp, error) {
		n.mu.Lock()
		defer n.mu.Unlock()
		delete(n.grants, req.Name)
		return core.EmptyResp{}, nil
	})
	transport.Register(mux, core.MethodInventory, func(_ context.Context, _ core.EmptyResp) (core.InventoryResp, error) {
		n.mu.Lock()
		defer n.mu.Unlock()
		resp := core.InventoryResp{Node: n.name}
		for name, g := range n.grants {
			resp.Items = append(resp.Items, core.InventoryItem{
				Name:           name,
				Version:        g.version,
				BaseAddr:       g.baseAddr,
				LeaseID:        g.leaseID,
				DeadlineMillis: g.deadline.UnixMilli(),
			})
		}
		sort.Slice(resp.Items, func(i, j int) bool { return resp.Items[i].Name < resp.Items[j].Name })
		return resp, nil
	})
}

// fleetNodeState is one node's row in a convergence summary: everything
// about distribution state, nothing about how it got there.
type fleetNodeState struct {
	Addr  string
	State string
	Exts  []string
}

// fleetState is the fault-insensitive convergence summary: a healed, fully
// reconciled fleet must reach the same fleetState a fault-free run reaches.
type fleetState struct {
	Nodes     []fleetNodeState
	Scheduled int
	Adapted   int64
	Degraded  int64
}

// fleetRun additionally captures every counter and drift statistic, which a
// same-seed replay must reproduce exactly.
type fleetRun struct {
	state    fleetState
	drift    core.DriftCounters
	counters map[string]uint64
	gauges   map[string]int64
}

// fleetFaults is the churn plan, derived deterministically from the seed:
// disjoint slices of the fleet to partition, crash, and roam.
type fleetFaults struct {
	partitioned []string
	crashed     []string
	roamed      []string
}

func planFleetFaults(seed int64, names []string) fleetFaults {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(names))
	pick := func(from, n int) []string {
		out := make([]string, 0, n)
		for _, idx := range perm[from : from+n] {
			out = append(out, names[idx])
		}
		sort.Strings(out)
		return out
	}
	nPart := max(1, len(names)*2/100)  // ~2% drop off the network
	nCrash := max(1, len(names)/100)   // ~1% crash and restart
	nRoam := max(1, len(names)*5/1000) // ~0.5% roam away and back
	return fleetFaults{
		partitioned: pick(0, nPart),
		crashed:     pick(nPart, nCrash),
		roamed:      pick(nPart+nCrash, nRoam),
	}
}

// runFleet plays one complete fleet scenario — adapt, optional churn, heal,
// reconcile, stabilize — and returns its summary. Fault-free and faulty runs
// follow the same clock schedule so their convergence states are comparable.
func runFleet(t *testing.T, seed int64, nNodes int, withFaults bool) fleetRun {
	t.Helper()
	goroutineBaseline := runtime.NumGoroutine()

	clk := clock.NewManual(time.Unix(0, 0))
	net := simnet.New(clk, seed)
	defer net.Close()

	names := make([]string, nNodes)
	for i := range names {
		names[i] = fmt.Sprintf("node-%05d", i)
	}
	nodes := make(map[string]*fleetNode, nNodes)
	for _, name := range names {
		fn := newFleetNode(name, clk)
		mux := transport.NewMux()
		fn.serveOn(mux)
		stop, err := net.Serve(name, mux)
		if err != nil {
			t.Fatal(err)
		}
		defer stop()
		nodes[name] = fn
	}

	signer, err := sign.NewSigner("fleet-base")
	if err != nil {
		t.Fatal(err)
	}
	breaker := transport.NewBreakerSet(seed, transport.BreakerConfig{
		Threshold: 1,
		Cooldown:  time.Minute,
		Jitter:    0,
		Clock:     clk,
	})
	base, err := core.NewBase(core.BaseConfig{
		Name:          "fleet-base",
		Addr:          "fleet-base",
		Caller:        net.Node("fleet-base"),
		Signer:        signer,
		Clock:         clk,
		Breaker:       breaker,
		LeaseDur:      time.Minute,
		RenewFraction: 0.5,
		RenewRetries:  1,
		CallTimeout:   time.Hour, // simulated time governs
		Shards:        16,
		RenewBatch:    64,
		RenewWorkers:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	reg := metrics.New()
	base.Instrument(reg)

	for _, ext := range []core.Extension{
		noopScenarioExt("policy", 1),
		noopScenarioExt("telemetry", 1),
	} {
		if err := base.AddExtension(ext); err != nil {
			t.Fatal(err)
		}
	}

	// t=0: the whole fleet walks into the cell.
	for _, name := range names {
		if err := base.AdaptNode(name, name); err != nil {
			t.Fatalf("adapt %s: %v", name, err)
		}
	}
	wantLeases := 2 * nNodes
	if got := base.ScheduledRenewals(); got != wantLeases {
		t.Fatalf("scheduled renewals = %d, want %d", got, wantLeases)
	}
	// The tentpole claim: keeping 2*N leases alive costs O(shards + wheels)
	// goroutines — one wheel, a bounded worker pool — not O(leases).
	if g := runtime.NumGoroutine(); g > goroutineBaseline+32 {
		t.Fatalf("%d goroutines for %d leases (baseline %d): renewal scheduling is not O(shards+wheels)",
			g, wantLeases, goroutineBaseline)
	}

	drain := func(total, step time.Duration) {
		t.Helper()
		for elapsed := time.Duration(0); elapsed < total; elapsed += step {
			clk.Advance(step)
			testutil.WaitFor(t, "renewals quiesced", base.RenewalsQuiesced)
		}
	}

	faults := planFleetFaults(seed, names)
	clk.Advance(5 * time.Second)

	if withFaults {
		// t=5s: churn hits. Partitioned nodes fall off the network, crashed
		// nodes go down holding their state, roamers leave and come right
		// back (release + re-adapt).
		for _, name := range faults.partitioned {
			net.PartitionBoth("fleet-base", name)
		}
		for _, name := range faults.crashed {
			net.Crash(name)
		}
		for _, name := range faults.roamed {
			base.Release(name)
			if err := base.AdaptNode(name, name); err != nil {
				t.Fatalf("re-adapt roamer %s: %v", name, err)
			}
		}
	}

	// One renewal window plus retry slack: unreachable nodes fail their
	// renewals, trip their breakers and park degraded; everyone else renews.
	drain(60*time.Second, 15*time.Second)

	wantDegraded := []string{}
	if withFaults {
		wantDegraded = append(append(wantDegraded, faults.partitioned...), faults.crashed...)
		sort.Strings(wantDegraded)
	}
	testutil.WaitFor(t, "faulted nodes parked degraded", func() bool {
		got := base.Degraded()
		if len(got) != len(wantDegraded) {
			return false
		}
		sort.Strings(got)
		return len(got) == 0 || reflect.DeepEqual(got, wantDegraded)
	})
	testutil.WaitFor(t, "degrade counters settled", func() bool {
		return testutil.Counter(reg, "base.degrades") == uint64(len(wantDegraded))
	})
	// Roamer releases are the only departures; unreachable nodes must have
	// parked degraded, not departed.
	wantDeparts := uint64(0)
	if withFaults {
		wantDeparts = uint64(len(faults.roamed))
	}
	if got := testutil.Counter(reg, "base.departures"); got != wantDeparts {
		t.Fatalf("base.departures = %d, want %d (roamer releases only)", got, wantDeparts)
	}

	// Heal everything and let the breakers' cooldown elapse; degraded nodes
	// are parked (no renewal traffic), the rest keep renewing.
	net.HealAll()
	for _, name := range faults.crashed {
		net.Restart(name)
	}
	drain(60*time.Second, 15*time.Second)

	// Anti-entropy: one reconcile round promotes every parked node and
	// adopts the leases its fake receiver still holds.
	base.ReconcileNow(context.Background())
	if got := base.Degraded(); len(got) != 0 {
		t.Fatalf("degraded after heal+reconcile = %v, want none", got)
	}

	// One more window: adopted leases come due (their deadlines lapsed
	// during the outage) and the whole fleet settles into steady renewal.
	drain(60*time.Second, 15*time.Second)
	testutil.WaitFor(t, "full fleet scheduled again", func() bool {
		return base.ScheduledRenewals() == wantLeases
	})

	status := base.Status()
	run := fleetRun{
		state: fleetState{
			Scheduled: base.ScheduledRenewals(),
			Adapted:   testutil.Gauge(reg, "base.adapted_nodes"),
			Degraded:  testutil.Gauge(reg, "base.degraded_nodes"),
		},
		drift: status.Drift,
	}
	for _, n := range status.Nodes {
		run.state.Nodes = append(run.state.Nodes, fleetNodeState{Addr: n.Addr, State: n.State, Exts: n.Exts})
	}
	snap := reg.Snapshot()
	run.counters = snap.Counters
	run.gauges = snap.Gauges
	return run
}

// TestFleetChurnConverges is the fleet-scale proof for this platform's base
// station: a 10k-node fleet (FLEET_NODES to resize) survives seeded churn —
// partitions, crashes, roams — and converges to exactly the state of a
// fault-free fleet, while a same-seed replay reproduces the faulty run's
// metrics bit for bit.
func TestFleetChurnConverges(t *testing.T) {
	seed := testutil.SeedFromEnv(t, "FLEET_SEED", fleetSeedDefault)
	nNodes := fleetNodeCount(t)
	t.Logf("fleet: %d nodes, seed %d", nNodes, seed)

	clean := runFleet(t, seed, nNodes, false)
	faulty := runFleet(t, seed, nNodes, true)
	replay := runFleet(t, seed, nNodes, true)

	// Convergence: churn must leave no trace in the distribution state.
	if !reflect.DeepEqual(faulty.state, clean.state) {
		t.Errorf("faulty fleet did not converge to the fault-free state:\n faulty: scheduled=%d adapted=%d degraded=%d nodes=%d\n  clean: scheduled=%d adapted=%d degraded=%d nodes=%d",
			faulty.state.Scheduled, faulty.state.Adapted, faulty.state.Degraded, len(faulty.state.Nodes),
			clean.state.Scheduled, clean.state.Adapted, clean.state.Degraded, len(clean.state.Nodes))
	}
	// Replayability: the seed pins the whole run, drift stats and counters
	// included.
	if !reflect.DeepEqual(replay, faulty) {
		t.Errorf("same-seed replay diverged:\n first: drift=%+v counters=%v\nreplay: drift=%+v counters=%v",
			faulty.drift, faulty.counters, replay.drift, replay.counters)
	}
	// And churn really happened: the faulty run parked and repaired nodes.
	if faulty.counters["base.degrades"] == 0 {
		t.Error("faulty run parked no nodes: churn plan did not bite")
	}
	if faulty.drift.Adopts == 0 {
		t.Error("reconciliation adopted no leases after the heal")
	}
}
