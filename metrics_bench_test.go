// Benchmarks for the observability layer: the cost of metrics on the two
// paths that matter — the inactive join-point fast path (must stay one atomic
// load regardless of instrumentation) and the dispatch slow path (where the
// counters live). The no-op sink arm is a nil registry, which hands out
// nil-safe no-op instruments.
package repro

import (
	"testing"

	"repro/internal/aop"
	"repro/internal/metrics"
	"repro/internal/weave"
)

func BenchmarkMetricsOverhead(b *testing.B) {
	arms := []struct {
		name string
		reg  *metrics.Registry
	}{
		{"noop-sink", nil},
		{"metrics-on", metrics.New()},
	}
	for _, arm := range arms {
		w := weave.New()
		w.Instrument(arm.reg)
		idle := w.RegisterMethodSite(aop.MethodEntry,
			aop.Signature{Class: "Idle", Method: "m", Return: "void"})
		hot := w.RegisterMethodSite(aop.MethodEntry,
			aop.Signature{Class: "Hot", Method: "m", Return: "void"})
		if err := w.Insert(&aop.Aspect{Name: "noop", Advices: []aop.Advice{
			aop.BeforeCall("Hot.m(..)", aop.BodyFunc(func(*aop.Context) error { return nil })),
		}}); err != nil {
			b.Fatal(err)
		}
		if idle.Active() || !hot.Active() {
			b.Fatal("unexpected site activity")
		}

		b.Run("fast-path/"+arm.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if idle.Active() {
					b.Fatal("idle site became active")
				}
			}
		})
		b.Run("dispatch/"+arm.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ctx := weave.GetContext()
				ctx.Kind = aop.MethodEntry
				ctx.Sig = hot.Sig
				if err := hot.Dispatch(ctx); err != nil {
					b.Fatal(err)
				}
				weave.PutContext(ctx)
			}
		})
	}
}
