// Mixed-fleet codec interop scenario: one base station drives a fleet where
// some receivers speak the wire codec and the rest are legacy binaries that
// only understand gob (modelled with Mux.SetGobOnly). The base discovers each
// legacy peer from its first rejected frame, falls back to gob for that peer
// alone, and both cohorts converge to the identical adapted state. The run is
// seeded and clock-driven, so a same-seed replay must reproduce every counter
// bit for bit — including the codec fallback counters themselves.
package repro

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sign"
	"repro/internal/simnet"
	"repro/internal/testutil"
	"repro/internal/transport"
)

// mixedCodecRun is everything a same-seed replay must reproduce exactly:
// per-node adapted extensions plus the full counter/gauge snapshot (codec
// traffic split and fallbacks included).
type mixedCodecRun struct {
	nodeExts map[string][]string
	counters map[string]uint64
	gauges   map[string]int64
}

// runMixedCodecFleet plays one adapt-and-renew run over a fleet of nWire
// wire-speaking nodes and nLegacy gob-only nodes behind a single base.
func runMixedCodecFleet(t *testing.T, seed int64, nWire, nLegacy int) mixedCodecRun {
	t.Helper()

	clk := clock.NewManual(time.Unix(0, 0))
	net := simnet.New(clk, seed)
	defer net.Close()
	reg := metrics.New()
	net.Instrument(reg)

	nodes := make(map[string]*fleetNode, nWire+nLegacy)
	var names []string
	var stops []func()
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()
	addNode := func(name string, legacy bool) {
		fn := newFleetNode(name, clk)
		mux := transport.NewMux()
		fn.serveOn(mux)
		// A legacy receiver is the same binary surface minus the codec: it
		// gob-decodes every body, so wire frames fail exactly the way an old
		// node's gob decoder fails on them.
		mux.SetGobOnly(legacy)
		stop, err := net.Serve(name, mux)
		if err != nil {
			t.Fatal(err)
		}
		stops = append(stops, stop)
		nodes[name] = fn
		names = append(names, name)
	}
	for i := 0; i < nWire; i++ {
		addNode(fmtNodeName("wire", i), false)
	}
	for i := 0; i < nLegacy; i++ {
		addNode(fmtNodeName("legacy", i), true)
	}

	signer, err := sign.NewSigner("mixed-base")
	if err != nil {
		t.Fatal(err)
	}
	breaker := transport.NewBreakerSet(seed, transport.BreakerConfig{
		Threshold: 1,
		Cooldown:  time.Minute,
		Jitter:    0,
		Clock:     clk,
	})
	base, err := core.NewBase(core.BaseConfig{
		Name:          "mixed-base",
		Addr:          "mixed-base",
		Caller:        net.Node("mixed-base"),
		Signer:        signer,
		Clock:         clk,
		Breaker:       breaker,
		LeaseDur:      time.Minute,
		RenewFraction: 0.5,
		RenewRetries:  1,
		CallTimeout:   time.Hour, // simulated time governs
		Shards:        4,
		RenewBatch:    8,
		RenewWorkers:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	base.Instrument(reg)

	for _, ext := range []core.Extension{
		noopScenarioExt("policy", 1),
		noopScenarioExt("telemetry", 1),
	} {
		if err := base.AddExtension(ext); err != nil {
			t.Fatal(err)
		}
	}

	// Adapt the whole mixed fleet. The first push to each legacy node is a
	// wire frame it rejects; the fabric remembers the peer and re-sends in
	// gob, so every adapt still succeeds on the first AdaptNode call.
	for _, name := range names {
		if err := base.AdaptNode(name, name); err != nil {
			t.Fatalf("adapt %s: %v", name, err)
		}
	}

	// Two renewal windows: plenty of batched renew traffic in both codecs,
	// and any mis-remembered peer codec would break renewals here.
	for elapsed := time.Duration(0); elapsed < 2*time.Minute; elapsed += 15 * time.Second {
		clk.Advance(15 * time.Second)
		testutil.WaitFor(t, "renewals quiesced", base.RenewalsQuiesced)
	}
	if got := base.Degraded(); len(got) != 0 {
		t.Fatalf("degraded nodes in a fault-free mixed fleet: %v", got)
	}

	run := mixedCodecRun{nodeExts: make(map[string][]string, len(nodes))}
	for name, fn := range nodes {
		fn.mu.Lock()
		var exts []string
		for ext := range fn.grants {
			exts = append(exts, ext)
		}
		fn.mu.Unlock()
		sort.Strings(exts)
		run.nodeExts[name] = exts
	}
	snap := reg.Snapshot()
	run.counters = snap.Counters
	run.gauges = snap.Gauges
	return run
}

func fmtNodeName(kind string, i int) string {
	return fmt.Sprintf("%s-%02d", kind, i)
}

// TestScenarioMixedFleetCodecInterop proves the codec rollout story: wire
// and gob receivers coexist behind one base, the per-peer fallback fires
// exactly once per legacy node, both cohorts converge to the same adapted
// state, and a same-seed replay reproduces the run bit for bit.
func TestScenarioMixedFleetCodecInterop(t *testing.T) {
	seed := scenarioSeed(t)
	const nWire, nLegacy = 5, 3

	run := runMixedCodecFleet(t, seed, nWire, nLegacy)

	// Convergence: every node — either cohort — holds exactly the pushed set.
	want := []string{"policy", "telemetry"}
	for name, exts := range run.nodeExts {
		if !reflect.DeepEqual(exts, want) {
			t.Errorf("node %s converged to %v, want %v", name, exts, want)
		}
	}

	// Codec split: the fallback fired exactly once per legacy node (their
	// first push), never for a wire node; after discovery both cohorts kept
	// their codecs, so both body counters saw real traffic.
	if got := run.counters["simnet.codec_fallbacks"]; got != nLegacy {
		t.Errorf("simnet.codec_fallbacks = %d, want %d (one first-contact fallback per legacy node)", got, nLegacy)
	}
	if got := run.counters["simnet.wire_bodies"]; got == 0 {
		t.Error("simnet.wire_bodies = 0: the wire cohort never used the codec")
	}
	// Every legacy node costs at least its re-sent push plus renew batches.
	if got := run.counters["simnet.gob_bodies"]; got < 2*nLegacy {
		t.Errorf("simnet.gob_bodies = %d, want >= %d (fallback re-sends plus legacy renewals)", got, 2*nLegacy)
	}

	// Replayability: the identical seed reproduces the whole run, codec
	// discovery and all counters included.
	replay := runMixedCodecFleet(t, seed, nWire, nLegacy)
	if !reflect.DeepEqual(replay, run) {
		t.Errorf("same-seed replay diverged:\n first: %v\nreplay: %v", run.counters, replay.counters)
	}
}
