// Integration tests spanning the whole platform: the scenarios of §4.5
// (remote replication, movement control) and the mobile-code distribution
// path, exercised end to end through transport, MIDAS, sandbox and weaver.
package repro

import (
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/ext"
	"repro/internal/lvm"
	"repro/internal/plotter"
	"repro/internal/sandbox"
	"repro/internal/sign"
	"repro/internal/store"
	"repro/internal/svc"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/weave"
)

// plotterNode bundles one adaptable plotter node on a fabric.
type plotterNode struct {
	name     string
	weaver   *weave.Weaver
	canvas   *plotter.Canvas
	plot     *plotter.Plotter
	receiver *core.Receiver
	kv       *store.KV
}

func newPlotterNode(t *testing.T, fabric *transport.InProc, name string, trusted *sign.Signer) *plotterNode {
	t.Helper()
	weaver := weave.New()
	canvas := plotter.NewCanvas(32, 32)
	plot, err := plotter.New(weaver, canvas)
	if err != nil {
		t.Fatal(err)
	}
	services := svc.NewRegistry(weaver)
	plot.RegisterService(services)

	trust := sign.NewTrustStore()
	trust.Trust(trusted.Name, trusted.PublicKey())
	builtins := core.NewBuiltins()
	ext.RegisterAll(builtins)
	kv := store.NewKV()
	receiver, err := core.NewReceiver(core.ReceiverConfig{
		NodeName: name,
		Addr:     name,
		Weaver:   weaver,
		Trust:    trust,
		Policy:   sandbox.AllowAll(),
		Host: ext.NewNodeHost(ext.NodeHostConfig{
			Caller: fabric.Node(name),
			KV:     kv,
			Clock:  clock.Real{},
		}),
		Builtins: builtins,
		Extras:   map[string]any{ext.ExtraTxnManager: txn.NewManager(kv)},
	})
	if err != nil {
		t.Fatal(err)
	}
	mux := transport.NewMux()
	receiver.ServeOn(mux)
	services.ServeOn(mux)
	stop, err := fabric.Serve(name, mux)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stop)
	return &plotterNode{name: name, weaver: weaver, canvas: canvas, plot: plot, receiver: receiver, kv: kv}
}

func newSignedBase(t *testing.T, fabric *transport.InProc, name string, db *store.Store) (*core.Base, *sign.Signer) {
	t.Helper()
	signer, err := sign.NewSigner(name)
	if err != nil {
		t.Fatal(err)
	}
	base, err := core.NewBase(core.BaseConfig{
		Name:     name,
		Addr:     name,
		Caller:   fabric.Node(name),
		Signer:   signer,
		Store:    db,
		LeaseDur: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(base.Close)
	mux := transport.NewMux()
	base.ServeOn(mux)
	stop, err := fabric.Serve(name, mux)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stop)
	return base, signer
}

// TestRemoteReplicationScenario reproduces §4.5 "Remote replication": the
// monitored robot's movements are fed to an identical robot in a remote
// location, at half scale.
func TestRemoteReplicationScenario(t *testing.T) {
	fabric := transport.NewInProc()
	base, signer := newSignedBase(t, fabric, "base-1", store.NewMemory())

	original := newPlotterNode(t, fabric, "plotter-A", signer)
	mirror := newPlotterNode(t, fabric, "plotter-B", signer)

	// The hall adapts the original robot with a replication extension that
	// mirrors every x-axis rotation to the mirror robot at 50 % scale.
	if err := base.AddExtension(core.Extension{
		ID:      "hall/replicate",
		Name:    "replicate",
		Version: 1,
		Advices: []core.AdviceSpec{{
			Name:    "mirror-moves",
			Kind:    core.KindCallAfter,
			Pattern: "Motor.rotate(..)",
			Builtin: ext.BReplicate,
			Config: map[string]string{
				"peer":    "plotter-B",
				"service": plotter.ServiceName,
				"scale":   "50",
			},
		}},
		Caps: []string{"net"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := base.AdaptNode("plotter-A", "plotter-A"); err != nil {
		t.Fatal(err)
	}
	if !original.receiver.Has("replicate") {
		t.Fatal("replication extension not installed")
	}

	// Drive only the original's x motor; every rotation is mirrored.
	mx := original.plot.Controller().Motor("x")
	for i := 0; i < 4; i++ {
		if err := mx.Rotate(2); err != nil {
			t.Fatal(err)
		}
	}
	if got := mx.Position(); got != 8 {
		t.Fatalf("original x = %d", got)
	}
	if got := mirror.plot.Controller().Motor("x").Position(); got != 4 {
		t.Fatalf("mirror x = %d, want 4 (half scale)", got)
	}
}

// TestMobileCodeDistribution ships LVM advice bytecode through the full
// MIDAS path (sign → push → verify → sandbox → weave) and verifies it
// controls the plotter.
func TestMobileCodeDistribution(t *testing.T) {
	fabric := transport.NewInProc()
	base, signer := newSignedBase(t, fabric, "base-1", store.NewMemory())
	node := newPlotterNode(t, fabric, "plotter-A", signer)

	// Mobile code: forbid x-axis rotations that would move past 5.
	if err := base.AddExtension(core.Extension{
		ID:      "hall/mobile-limit",
		Name:    "mobile-limit",
		Version: 1,
		Advices: []core.AdviceSpec{{
			Name:    "limit",
			Kind:    core.KindFieldSet,
			Pattern: "Motor.pos",
			Code: `
class Ext
  method void advice()
    hostcall ctx.field 0
    push "pos"
    eq
    jmpf ok           ; not a pos write: nothing to check
    push 0
    hostcall ctx.arg 1
    push 5
    gt
    jmpf ok
    push "x limit exceeded"
    hostcall ctx.abort 1
    pop
  ok:
    retv
  end
end`,
		}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := base.AdaptNode("plotter-A", "plotter-A"); err != nil {
		t.Fatal(err)
	}
	if !node.receiver.Has("mobile-limit") {
		t.Fatal("mobile-code extension not installed")
	}

	mx := node.plot.Controller().Motor("x")
	for i := 0; i < 5; i++ {
		if err := mx.Rotate(1); err != nil {
			t.Fatalf("rotate %d: %v", i, err)
		}
	}
	err := mx.Rotate(1) // would move pos to 6
	if err == nil || !strings.Contains(err.Error(), "x limit exceeded") {
		t.Fatalf("limit not enforced: %v", err)
	}
	if mx.Position() != 5 {
		t.Errorf("pos = %d, want 5", mx.Position())
	}
}

// TestAccountingScenario bills every completed service call to the caller
// and records the charges at the base station (§1's accounting example).
func TestAccountingScenario(t *testing.T) {
	fabric := transport.NewInProc()
	db := store.NewMemory()
	base, signer := newSignedBase(t, fabric, "base-1", db)
	node := newPlotterNode(t, fabric, "plotter-A", signer)

	if err := base.AddExtension(core.Extension{
		ID:      "hall/billing",
		Name:    "billing",
		Version: 1,
		Advices: []core.AdviceSpec{{
			Name:    "charge",
			Kind:    core.KindCallAfter,
			Pattern: "Plotter.*(..)",
			Builtin: ext.BAccounting,
			Config:  map[string]string{"price": "2"},
		}},
		Requires: []string{ext.SessionBundleName},
		Caps:     []string{"net", "clock", "session"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := base.AdaptNode("plotter-A", "plotter-A"); err != nil {
		t.Fatal(err)
	}
	if !node.receiver.Has(ext.SessionBundleName) {
		t.Fatal("implicit session extension missing")
	}

	client := fabric.Node("laptop-1")
	for i := 0; i < 3; i++ {
		if _, err := svc.Call(client, "plotter-A", plotter.ServiceName, "moveTo", "laptop-1", lvm.Int(int64(i)), lvm.Int(0)); err != nil {
			t.Fatal(err)
		}
	}
	bills := db.Query(store.Filter{Device: "billing"})
	if len(bills) != 3 {
		t.Fatalf("bills = %d, want 3", len(bills))
	}
	var total int64
	for _, b := range bills {
		if b.Action != "charge:laptop-1" {
			t.Errorf("bill = %+v", b)
		}
		total += b.Value
	}
	if total != 6 {
		t.Errorf("total charged = %d, want 6", total)
	}
}

// TestPersistenceScenario snapshots every Motor.pos change into the node's
// KV through the orthogonal-persistence extension.
func TestPersistenceScenario(t *testing.T) {
	fabric := transport.NewInProc()
	base, signer := newSignedBase(t, fabric, "base-1", store.NewMemory())
	node := newPlotterNode(t, fabric, "plotter-A", signer)

	if err := base.AddExtension(core.Extension{
		ID:      "hall/persist",
		Name:    "persist",
		Version: 1,
		Advices: []core.AdviceSpec{{
			Name:    "snapshot-state",
			Kind:    core.KindFieldSet,
			Pattern: "Motor.pos",
			Builtin: ext.BPersist,
		}},
		Caps: []string{"store"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := base.AdaptNode("plotter-A", "plotter-A"); err != nil {
		t.Fatal(err)
	}

	if err := node.plot.MoveTo(3, 2); err != nil {
		t.Fatal(err)
	}
	vx, okx := node.kv.Get("persist/Motor.pos/x")
	vy, oky := node.kv.Get("persist/Motor.pos/y")
	if !okx || string(vx) != "3" {
		t.Errorf("x snapshot = %q, %v", vx, okx)
	}
	if !oky || string(vy) != "2" {
		t.Errorf("y snapshot = %q, %v", vy, oky)
	}
}

// TestTransparentEncryptionChannel reproduces §3.3's "extension that will
// encrypt every outgoing call from an application and decrypt every incoming
// call", using the paper's flagship crosscut pattern. Neither endpoint's
// application code knows about the cipher; the environment welds it on.
func TestTransparentEncryptionChannel(t *testing.T) {
	fabric := transport.NewInProc()
	base, signer := newSignedBase(t, fabric, "base-1", store.NewMemory())

	// Receiver side: a courier service that stores what it gets.
	courier := newPlotterNode(t, fabric, "courier", signer)
	var received []byte
	courierSvc := svc.NewRegistry(courier.weaver)
	courierSvc.Register("Courier", "recvMessage", []string{"bytes"}, "void", func(args []lvm.Value) (lvm.Value, error) {
		received = append([]byte(nil), args[0].B...)
		return lvm.Nil(), nil
	})
	courierMux := transport.NewMux()
	courierSvc.ServeOn(courierMux)
	stop, err := fabric.Serve("courier-svc", courierMux)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stop)

	// Sender side: an app whose only outgoing path is Net.sendMessage.
	sender := newPlotterNode(t, fabric, "sender", signer)
	var onWire []byte
	senderSvc := svc.NewRegistry(sender.weaver)
	senderSvc.Register("Net", "sendMessage", []string{"bytes"}, "void", func(args []lvm.Value) (lvm.Value, error) {
		onWire = append([]byte(nil), args[0].B...)
		return svc.Call(fabric.Node("sender"), "courier-svc", "Courier", "recvMessage", "sender", args[0])
	})

	// The hall welds the cipher onto both endpoints: encrypt on every
	// outgoing send* (the paper's 'void *.send*(bytes, ..)' crosscut),
	// decrypt on every incoming recv*.
	if err := base.AddExtension(core.Extension{
		ID: "hall/encrypt-out", Name: "encrypt-out", Version: 1,
		Advices: []core.AdviceSpec{{
			Name: "enc", Kind: core.KindCallBefore,
			Pattern: "void *.send*(bytes, ..)",
			Builtin: ext.BEncrypt, Config: map[string]string{"key": "hall-secret"},
		}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := base.AdaptNode("sender", "sender"); err != nil {
		t.Fatal(err)
	}

	if err := base.RemoveExtension("encrypt-out"); err != nil {
		t.Fatal(err)
	}
	if err := base.AddExtension(core.Extension{
		ID: "hall/decrypt-in", Name: "decrypt-in", Version: 1,
		Advices: []core.AdviceSpec{{
			Name: "dec", Kind: core.KindCallBefore,
			Pattern: "void *.recv*(bytes, ..)",
			Builtin: ext.BDecrypt, Config: map[string]string{"key": "hall-secret"},
		}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := base.AdaptNode("courier", "courier"); err != nil {
		t.Fatal(err)
	}
	// The sender must not get the decryptor: RemoveExtension above revoked
	// the encryptor from the shared policy set before the courier joined,
	// but the sender keeps its already-woven copy? No: revocation withdrew
	// it. Re-weave the encryptor locally to model two halls' disjoint sets.
	if sender.receiver.Has("encrypt-out") {
		t.Fatal("revocation failed")
	}
	encSigned, err := core.Sign(signer, core.Extension{
		ID: "hall/encrypt-out", Name: "encrypt-out", Version: 2,
		Advices: []core.AdviceSpec{{
			Name: "enc", Kind: core.KindCallBefore,
			Pattern: "void *.send*(bytes, ..)",
			Builtin: ext.BEncrypt, Config: map[string]string{"key": "hall-secret"},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sender.receiver.Install(encSigned, "base-1", time.Minute); err != nil {
		t.Fatal(err)
	}

	plain := []byte("the drill moves to bay 7 at 14:00")
	if _, err := senderSvc.Invoke("Net", "sendMessage", "app", []lvm.Value{lvm.Bytes(append([]byte(nil), plain...))}); err != nil {
		t.Fatal(err)
	}
	if string(onWire) == string(plain) {
		t.Fatal("payload left the sender in plaintext")
	}
	if string(received) != string(plain) {
		t.Fatalf("courier got %q, want %q", received, plain)
	}
}
