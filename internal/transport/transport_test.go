package transport

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

type echoReq struct {
	Msg string
	N   int
}

type echoResp struct {
	Msg string
}

func newEchoMux() *Mux {
	mux := NewMux()
	Register(mux, "echo", func(_ context.Context, req echoReq) (echoResp, error) {
		return echoResp{Msg: strings.Repeat(req.Msg, req.N)}, nil
	})
	Register(mux, "fail", func(_ context.Context, _ echoReq) (echoResp, error) {
		return echoResp{}, errors.New("deliberate failure")
	})
	return mux
}

func TestInProcRoundTrip(t *testing.T) {
	fabric := NewInProc()
	stop, err := fabric.Serve("nodeB", newEchoMux())
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	caller := fabric.Node("nodeA")
	resp, err := Invoke[echoReq, echoResp](context.Background(), caller, "nodeB", "echo", echoReq{Msg: "ab", N: 3})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Msg != "ababab" {
		t.Errorf("resp = %q", resp.Msg)
	}
}

func TestInProcRemoteError(t *testing.T) {
	fabric := NewInProc()
	stop, _ := fabric.Serve("b", newEchoMux())
	defer stop()
	_, err := Invoke[echoReq, echoResp](context.Background(), fabric.Node("a"), "b", "fail", echoReq{})
	var remote *RemoteError
	if !errors.As(err, &remote) || !strings.Contains(remote.Msg, "deliberate failure") {
		t.Fatalf("want RemoteError, got %v", err)
	}
}

func TestInProcUnknownMethodAndNode(t *testing.T) {
	fabric := NewInProc()
	stop, _ := fabric.Serve("b", newEchoMux())
	defer stop()
	caller := fabric.Node("a")
	_, err := Invoke[echoReq, echoResp](context.Background(), caller, "b", "nope", echoReq{})
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("unknown method: %v", err)
	}
	_, err = Invoke[echoReq, echoResp](context.Background(), caller, "ghost", "echo", echoReq{})
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("unknown node: %v", err)
	}
}

func TestInProcLinkFunc(t *testing.T) {
	fabric := NewInProc()
	stop, _ := fabric.Serve("b", newEchoMux())
	defer stop()
	var mu sync.Mutex
	up := true
	fabric.SetLinkFunc(func(from, to string) bool {
		mu.Lock()
		defer mu.Unlock()
		return up
	})
	caller := fabric.Node("a")
	if _, err := Invoke[echoReq, echoResp](context.Background(), caller, "b", "echo", echoReq{Msg: "x", N: 1}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	up = false
	mu.Unlock()
	_, err := Invoke[echoReq, echoResp](context.Background(), caller, "b", "echo", echoReq{Msg: "x", N: 1})
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("partitioned call: %v", err)
	}
}

func TestInProcDuplicateAddress(t *testing.T) {
	fabric := NewInProc()
	stop, err := fabric.Serve("a", newEchoMux())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fabric.Serve("a", newEchoMux()); err == nil {
		t.Fatal("duplicate address should fail")
	}
	stop()
	// After stop the address is reusable.
	stop2, err := fabric.Serve("a", newEchoMux())
	if err != nil {
		t.Fatal(err)
	}
	stop2()
}

func TestInProcLatencyRespectsContext(t *testing.T) {
	fabric := NewInProc()
	stop, _ := fabric.Serve("b", newEchoMux())
	defer stop()
	fabric.SetLatency(500 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := Invoke[echoReq, echoResp](ctx, fabric.Node("a"), "b", "echo", echoReq{Msg: "x", N: 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline exceeded, got %v", err)
	}
	if time.Since(start) > 200*time.Millisecond {
		t.Error("call did not respect context deadline")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	srv, err := ServeTCP("127.0.0.1:0", newEchoMux())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	caller := NewTCPCaller()
	defer caller.Close()
	for i := 0; i < 3; i++ { // exercise connection reuse
		resp, err := Invoke[echoReq, echoResp](context.Background(), caller, srv.Addr(), "echo", echoReq{Msg: "hi", N: 2})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Msg != "hihi" {
			t.Errorf("resp = %q", resp.Msg)
		}
	}
}

func TestTCPRemoteError(t *testing.T) {
	srv, err := ServeTCP("127.0.0.1:0", newEchoMux())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	caller := NewTCPCaller()
	defer caller.Close()
	_, err = Invoke[echoReq, echoResp](context.Background(), caller, srv.Addr(), "fail", echoReq{})
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("want RemoteError, got %v", err)
	}
	// The connection survives a remote error.
	if _, err := Invoke[echoReq, echoResp](context.Background(), caller, srv.Addr(), "echo", echoReq{Msg: "a", N: 1}); err != nil {
		t.Fatalf("call after remote error: %v", err)
	}
}

func TestTCPUnreachable(t *testing.T) {
	caller := NewTCPCaller()
	caller.DialTimeout = 100 * time.Millisecond
	defer caller.Close()
	err := caller.Call(context.Background(), "127.0.0.1:1", "echo", echoReq{}, nil)
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("want unreachable, got %v", err)
	}
}

func TestTCPServerClose(t *testing.T) {
	srv, err := ServeTCP("127.0.0.1:0", newEchoMux())
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	caller := NewTCPCaller()
	defer caller.Close()
	if _, err := Invoke[echoReq, echoResp](context.Background(), caller, addr, "echo", echoReq{Msg: "x", N: 1}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	caller.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := caller.Call(ctx, addr, "echo", echoReq{Msg: "x", N: 1}, nil); err == nil {
		t.Fatal("call to closed server should fail")
	}
}

func TestMuxMethods(t *testing.T) {
	mux := newEchoMux()
	methods := mux.Methods()
	if len(methods) != 2 {
		t.Errorf("Methods = %v", methods)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := echoReq{Msg: "payload", N: 7}
	b, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	var out echoReq
	if err := Decode(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("roundtrip = %+v", out)
	}
}
