package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/metrics"
	"repro/internal/wire"
)

// TestOverloadedGoldenText freezes the shed sentinel's wire text. The hint
// travels inside the error string — that is what crosses every fabric and
// what old peers echo back — so these literals are a compatibility surface:
// changing them strands the retry-after hint on mixed-version fleets.
func TestOverloadedGoldenText(t *testing.T) {
	cases := []struct {
		err      error
		text     string
		hint     time.Duration
		overload bool
	}{
		{Overloaded(0), "transport: overloaded", 0, true},
		{Overloaded(250 * time.Millisecond), "transport: overloaded; retry-after-ms=250", 250 * time.Millisecond, true},
		// Sub-millisecond hints round up: a zero would read as "no hint".
		{Overloaded(time.Microsecond), "transport: overloaded; retry-after-ms=1", time.Millisecond, true},
		{ErrOverloaded, "transport: overloaded", 0, true},
		{ErrUnreachable, "transport: destination unreachable", 0, false},
	}
	for _, c := range cases {
		if got := c.err.Error(); got != c.text {
			t.Errorf("text = %q, want %q", got, c.text)
		}
		hint, ok := RetryAfterHint(c.err)
		if ok != c.overload || hint != c.hint {
			t.Errorf("RetryAfterHint(%q) = %v, %v; want %v, %v", c.err, hint, ok, c.hint, c.overload)
		}
	}
}

// TestOverloadedRemoteSentinel proves the sentinel and its hint survive the
// remote-error round trip every fabric uses: the server-side error text is
// re-wrapped by NewRemoteError on the caller and still unwraps and parses.
func TestOverloadedRemoteSentinel(t *testing.T) {
	remote := NewRemoteError("base.query", Overloaded(75*time.Millisecond).Error())
	if !errors.Is(remote, ErrOverloaded) {
		t.Fatalf("remote error %q does not unwrap to ErrOverloaded", remote)
	}
	if hint, ok := RetryAfterHint(remote); !ok || hint != 75*time.Millisecond {
		t.Fatalf("hint = %v, %v; want 75ms, true", hint, ok)
	}
}

// overloadedEnvelopeGolden is the frozen wire response envelope for a
// handler that shed with Overloaded(250ms): errText string + empty body.
const overloadedEnvelopeGolden = "297472616e73706f72743a206f7665726c6f616465643b2072657472792d61667465722d6d733d32353000"

// TestOverloadedEnvelopeGolden drives a raw TCP wire exchange against a
// shedding handler and compares the response envelope byte for byte.
func TestOverloadedEnvelopeGolden(t *testing.T) {
	mux := NewMux()
	mux.HandleRaw("shed", func(ctx context.Context, body []byte) ([]byte, error) {
		return nil, Overloaded(250 * time.Millisecond)
	})
	srv, err := ServeTCP("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.DialTimeout("tcp", srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))

	if _, err := conn.Write([]byte{0x00, 0xC6, wire.Version}); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	var ack [2]byte
	if _, err := io.ReadFull(br, ack[:]); err != nil {
		t.Fatal(err)
	}

	e := wire.GetEncoder()
	e.String("shed")
	e.String("") // trace ID
	e.String("") // span ID
	e.Bytes(nil)
	payload := append([]byte{}, e.Data()...)
	wire.PutEncoder(e)
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(payload)))
	if _, err := conn.Write(append(lenBuf[:n], payload...)); err != nil {
		t.Fatal(err)
	}

	plen, err := binary.ReadUvarint(br)
	if err != nil {
		t.Fatal(err)
	}
	rpayload := make([]byte, plen)
	if _, err := io.ReadFull(br, rpayload); err != nil {
		t.Fatal(err)
	}
	if got := hex.EncodeToString(rpayload); got != overloadedEnvelopeGolden {
		t.Fatalf("shed response envelope drifted:\n got: %s\nwant: %s", got, overloadedEnvelopeGolden)
	}
}

// TestOverloadedGobInterop proves the shed sentinel crosses the legacy gob
// envelope in both mixed-version directions: a new wire-preferring caller
// against a server predating the wire codec, and a gob-only caller against a
// new server.
func TestOverloadedGobInterop(t *testing.T) {
	newMux := func() *Mux {
		m := NewMux()
		m.HandleRaw("shed", func(ctx context.Context, body []byte) ([]byte, error) {
			return nil, Overloaded(250 * time.Millisecond)
		})
		return m
	}
	check := func(t *testing.T, err error) {
		t.Helper()
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("err = %v, want ErrOverloaded", err)
		}
		if hint, ok := RetryAfterHint(err); !ok || hint != 250*time.Millisecond {
			t.Fatalf("hint = %v, %v; want 250ms, true", hint, ok)
		}
	}

	t.Run("new caller, legacy server", func(t *testing.T) {
		mux := newMux()
		mux.SetGobOnly(true)
		srv, err := ServeTCPLegacy("127.0.0.1:0", mux)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		c := NewTCPCaller()
		defer c.Close()
		check(t, c.Call(context.Background(), srv.Addr(), "shed", &struct{ N int }{1}, nil))
	})

	t.Run("legacy caller, new server", func(t *testing.T) {
		srv, err := ServeTCP("127.0.0.1:0", newMux())
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		c := NewTCPCaller()
		c.DisableWire()
		defer c.Close()
		check(t, c.Call(context.Background(), srv.Addr(), "shed", &struct{ N int }{1}, nil))
	})
}

// shedThenOKCaller returns remote overload errors for the first n calls,
// then succeeds — a server that recovered after shedding.
type shedThenOKCaller struct {
	n     int
	hint  time.Duration
	calls int
}

func (c *shedThenOKCaller) Call(ctx context.Context, to, method string, req, resp any) error {
	c.calls++
	if c.calls <= c.n {
		return NewRemoteError(method, Overloaded(c.hint).Error())
	}
	return nil
}

// TestPolicyRetriesOverloadedAfterHint proves cooperative backpressure on
// the caller: a shed is retried — even though remote application errors are
// not — and the retry waits exactly the server's hint, not the policy's own
// backoff.
func TestPolicyRetriesOverloadedAfterHint(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	reg := metrics.New()
	pol := testPolicy(3, clk) // BaseDelay 0: any wait comes from the hint
	pol.MaxAttempts = 3
	pol.Instrument(reg)
	inner := &shedThenOKCaller{n: 1, hint: 250 * time.Millisecond}

	done := make(chan error, 1)
	go func() {
		done <- pol.Wrap(inner).Call(context.Background(), "base", "base.query", nil, nil)
	}()
	waitTimers(t, clk, 1)
	clk.Advance(249 * time.Millisecond)
	select {
	case err := <-done:
		t.Fatalf("retried before the hinted delay elapsed: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	clk.Advance(time.Millisecond)
	if err := <-done; err != nil {
		t.Fatalf("call after hinted retry: %v", err)
	}
	if inner.calls != 2 {
		t.Fatalf("calls = %d, want 2", inner.calls)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["transport.retry_overloads"]; got != 1 {
		t.Fatalf("transport.retry_overloads = %d, want 1", got)
	}
	if got := snap.Counters["transport.retries"]; got != 1 {
		t.Fatalf("transport.retries = %d, want 1", got)
	}
}

// TestPolicyOverloadedGivesUpAtMaxAttempts proves a persistently shedding
// server still exhausts the attempt budget rather than retrying forever.
func TestPolicyOverloadedGivesUpAtMaxAttempts(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	pol := testPolicy(3, clk)
	pol.MaxAttempts = 3
	inner := &shedThenOKCaller{n: 100, hint: 0} // hint 0: no wait, synchronous

	err := pol.Wrap(inner).Call(context.Background(), "base", "base.query", nil, nil)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if inner.calls != 3 {
		t.Fatalf("calls = %d, want 3 (attempt budget)", inner.calls)
	}
}

// TestBreakerIgnoresOverloadSheds proves sheds never open a circuit, even
// under a hair-trigger breaker whose FailIf counts every error: tripping on
// backpressure would convert a recoverable overload into minutes of outage.
func TestBreakerIgnoresOverloadSheds(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	set := NewBreakerSet(1, BreakerConfig{
		Threshold: 1, Cooldown: 5 * time.Second, Jitter: 0, Clock: clk,
		FailIf: func(error) bool { return true },
	})
	inner := &shedThenOKCaller{n: 5, hint: 100 * time.Millisecond}
	c := set.Wrap(inner)
	ctx := context.Background()

	for i := 0; i < 5; i++ {
		if err := c.Call(ctx, "base", "base.query", nil, nil); !errors.Is(err, ErrOverloaded) {
			t.Fatalf("shed %d: %v", i, err)
		}
		if got := set.State("base"); got != BreakerClosed {
			t.Fatalf("breaker %v after %d sheds, want closed", got, i+1)
		}
	}
	// A genuine transport failure still trips the threshold-1 circuit.
	down := &flakyCaller{down: true}
	c = set.Wrap(down)
	if err := c.Call(ctx, "base", "base.query", nil, nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("transport failure: %v", err)
	}
	if err := c.Call(ctx, "base", "base.query", nil, nil); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("after transport failure: %v, want ErrBreakerOpen", err)
	}
}

// FuzzRetryAfterHint hammers the hint parser with arbitrary remote error
// texts: it must never panic, must report ok exactly when the sentinel text
// is present, and must never return a negative hint.
func FuzzRetryAfterHint(f *testing.F) {
	f.Add("transport: overloaded")
	f.Add("transport: overloaded; retry-after-ms=250")
	f.Add("transport: overloaded; retry-after-ms=")
	f.Add("transport: overloaded; retry-after-ms=99999999999999999999999")
	f.Add("retry-after-ms=5")
	f.Add("some other error")
	f.Fuzz(func(t *testing.T, msg string) {
		err := NewRemoteError("m", msg)
		hint, ok := RetryAfterHint(err)
		if ok != errors.Is(err, ErrOverloaded) {
			t.Fatalf("ok = %v but errors.Is = %v for %q", ok, !ok, msg)
		}
		if strings.Contains(msg, ErrOverloaded.Error()) && !ok {
			t.Fatalf("sentinel text present but ok=false for %q", msg)
		}
		if hint < 0 {
			t.Fatalf("negative hint %v for %q", hint, msg)
		}
	})
}
