package transport

import (
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// wire envelope types. Trace carries the caller's span context so a trace
// stitches across processes; gob tolerates the field being absent (older
// peers) or unknown (newer peers), so the envelope stays wire-compatible in
// both directions.
type tcpRequest struct {
	Method string
	Body   []byte
	Trace  trace.SpanContext
}

type tcpResponse struct {
	Body []byte
	Err  string
}

// TCPServer serves a Handler over real TCP connections, one request per
// connection.
type TCPServer struct {
	ln      net.Listener
	handler Handler

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup

	m atomic.Pointer[serverMetrics]
}

// serverMetrics is the serve-side RPC accounting.
type serverMetrics struct {
	requests  *metrics.Counter
	errors    *metrics.Counter
	bytesIn   *metrics.Counter
	bytesOut  *metrics.Counter
	handleNs  *metrics.Histogram
	openConns *metrics.Gauge
}

// Instrument records served requests (count, errors, payload bytes, handler
// latency) and the open-connection gauge in reg. Safe to call while serving;
// a nil reg is a no-op.
func (s *TCPServer) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	s.m.Store(&serverMetrics{
		requests:  reg.Counter("transport.serve_requests"),
		errors:    reg.Counter("transport.serve_errors"),
		bytesIn:   reg.Counter("transport.serve_bytes_received"),
		bytesOut:  reg.Counter("transport.serve_bytes_sent"),
		handleNs:  reg.Histogram("transport.serve_ns", nil),
		openConns: reg.Gauge("transport.serve_open_conns"),
	})
}

// ServeTCP starts a server on addr ("127.0.0.1:0" picks a free port).
func ServeTCP(addr string, h Handler) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s := &TCPServer{ln: ln, handler: h, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes open connections and waits for handlers.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	if sm := s.m.Load(); sm != nil {
		sm.openConns.Add(1)
	}
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		if sm := s.m.Load(); sm != nil {
			sm.openConns.Add(-1)
		}
	}()

	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req tcpRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		sm := s.m.Load()
		start := time.Time{}
		if sm != nil {
			sm.requests.Inc()
			sm.bytesIn.Add(uint64(len(req.Body)))
			start = time.Now() //lint:allow clockcheck (real RPC latency metric)
		}
		body, err := s.handler.Handle(trace.NewContext(context.Background(), req.Trace), req.Method, req.Body)
		resp := tcpResponse{Body: body}
		if err != nil {
			resp.Err = err.Error()
		}
		if sm != nil {
			sm.handleNs.Since(start)
			if err != nil {
				sm.errors.Inc()
			}
			sm.bytesOut.Add(uint64(len(body)))
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// TCPCaller issues calls over TCP, keeping one pooled connection per
// destination.
type TCPCaller struct {
	DialTimeout time.Duration

	mu    sync.Mutex
	conns map[string]*tcpClientConn

	m atomic.Pointer[fabricMetrics]
}

// Instrument records every outbound call (count, errors, timeouts, payload
// bytes, latency) in reg, sharing metric names with the in-proc fabric. Safe
// to call while calls are in flight; a nil reg is a no-op.
func (c *TCPCaller) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	c.m.Store(newFabricMetrics(reg))
}

type tcpClientConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// NewTCPCaller returns a caller with a 2s dial timeout.
func NewTCPCaller() *TCPCaller {
	return &TCPCaller{DialTimeout: 2 * time.Second, conns: make(map[string]*tcpClientConn)}
}

// Call implements Caller. to is a host:port address.
func (c *TCPCaller) Call(ctx context.Context, to, method string, req, resp any) (err error) {
	if fm := c.m.Load(); fm != nil {
		fm.calls.Inc()
		start := time.Now() //lint:allow clockcheck (real RPC latency metric)
		defer func() { fm.finishCall(start, err) }()
	}
	body, err := Encode(req)
	if err != nil {
		return err
	}
	cc, err := c.conn(ctx, to)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return fmt.Errorf("transport: dial %s: %w", to, ctxErr)
		}
		return fmt.Errorf("%w: %s: %v", ErrUnreachable, to, err)
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if deadline, ok := ctx.Deadline(); ok {
		_ = cc.conn.SetDeadline(deadline)
	} else {
		_ = cc.conn.SetDeadline(time.Time{})
	}
	// A deadline alone does not observe cancellation: watch ctx and abort the
	// in-flight round trip by forcing a deadline in the past.
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			_ = cc.conn.SetDeadline(time.Unix(1, 0))
		case <-watchDone:
		}
	}()
	fm := c.m.Load()
	sc, _ := trace.FromContext(ctx)
	callErr := func() error {
		if err := cc.enc.Encode(&tcpRequest{Method: method, Body: body, Trace: sc}); err != nil {
			return err
		}
		if fm != nil {
			fm.bytesOut.Add(uint64(len(body)))
		}
		var out tcpResponse
		if err := cc.dec.Decode(&out); err != nil {
			return err
		}
		if fm != nil {
			fm.bytesIn.Add(uint64(len(out.Body)))
		}
		if out.Err != "" {
			return NewRemoteError(method, out.Err)
		}
		if resp == nil {
			return nil
		}
		return Decode(out.Body, resp)
	}()
	close(watchDone)
	if callErr != nil {
		ctxErr := ctx.Err()
		if ctxErr == nil {
			// The conn deadline equals the ctx deadline and its poller can
			// fire a moment before the ctx timer: map that to expiry too.
			if d, ok := ctx.Deadline(); ok && !time.Now().Before(d) { //lint:allow clockcheck (compares against the conn's real deadline)
				ctxErr = context.DeadlineExceeded
			}
		}
		if ctxErr != nil {
			// Surface cancellation/expiry as the context error, not the I/O
			// error the forced deadline produced.
			callErr = fmt.Errorf("transport: call %s %s: %w", to, method, ctxErr)
		}
		if _, isRemote := callErr.(*RemoteError); !isRemote {
			// Connection-level failure: drop the pooled connection.
			c.drop(to, cc)
		}
	}
	return callErr
}

// Close closes all pooled connections.
func (c *TCPCaller) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cc := range c.conns {
		cc.conn.Close()
	}
	c.conns = make(map[string]*tcpClientConn)
}

func (c *TCPCaller) conn(ctx context.Context, to string) (*tcpClientConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cc, ok := c.conns[to]; ok {
		return cc, nil
	}
	// DialContext caps the dial at DialTimeout but also honors the caller's
	// ctx, so a tight deadline or cancellation cuts the dial short instead of
	// always waiting out the full timeout.
	d := net.Dialer{Timeout: c.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", to)
	if err != nil {
		return nil, err
	}
	cc := &tcpClientConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
	c.conns[to] = cc
	return cc, nil
}

func (c *TCPCaller) drop(to string, cc *tcpClientConn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.conns[to]; ok && cur == cc {
		cc.conn.Close()
		delete(c.conns, to)
	}
}
