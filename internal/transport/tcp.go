package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/wire"
)

// The TCP fabric speaks two envelope protocols on one port and negotiates
// per connection:
//
//   - wire: the client opens with the 3-byte wire frame header as a preface;
//     the server answers with a 2-byte ack [Magic, Version] and both sides
//     switch to hand-rolled envelopes — uvarint payload length, then
//     method · trace · body as wire fields, the body copied in verbatim
//     (whatever codec EncodeBody picked), so nothing is encoded twice.
//   - gob: anything else is the legacy protocol — gob tcpRequest/tcpResponse
//     envelopes around an already-encoded body (the historical double-gob).
//
// An old server's gob decoder rejects the preface (a gob message length can
// never be 0x00) and closes the connection; the client reads EOF, remembers
// the destination as legacy — exactly like the ErrNoMethod legacy-batch
// fallback — and redials in gob. Old clients never send the preface, and the
// server routes them to the gob loop off the first byte, so mixed fleets
// interoperate in both directions.

// maxEnvelope caps one wire envelope (64 MiB): a corrupt or hostile length
// prefix must not allocate unbounded memory.
const maxEnvelope = 1 << 26

// gob envelope types of the legacy protocol. Trace carries the caller's span
// context so a trace stitches across processes; BudgetMillis carries the
// remaining time to the caller's deadline (0 = none) so an overloaded server
// can drop a request whose caller already gave up — it is relative, not an
// absolute timestamp, so clock skew between peers cannot corrupt it. gob
// tolerates fields being absent (older peers) or unknown (newer peers), so
// the envelope stays wire-compatible in both directions.
type tcpRequest struct {
	Method       string
	Body         []byte
	Trace        trace.SpanContext
	BudgetMillis int64
}

type tcpResponse struct {
	Body []byte
	Err  string
}

// TCPServer serves a Handler over real TCP connections.
type TCPServer struct {
	ln      net.Listener
	handler Handler
	gobOnly bool

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup

	m atomic.Pointer[serverMetrics]
}

// serverMetrics is the serve-side RPC accounting.
type serverMetrics struct {
	requests  *metrics.Counter
	errors    *metrics.Counter
	bytesIn   *metrics.Counter
	bytesOut  *metrics.Counter
	wireConns *metrics.Counter
	gobConns  *metrics.Counter
	handleNs  *metrics.Histogram
	openConns *metrics.Gauge
}

// Instrument records served requests (count, errors, payload bytes, handler
// latency), the per-protocol connection counters and the open-connection
// gauge in reg. Safe to call while serving; a nil reg is a no-op.
func (s *TCPServer) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	s.m.Store(&serverMetrics{
		requests:  reg.Counter("transport.serve_requests"),
		errors:    reg.Counter("transport.serve_errors"),
		bytesIn:   reg.Counter("transport.serve_bytes_received"),
		bytesOut:  reg.Counter("transport.serve_bytes_sent"),
		wireConns: reg.Counter("transport.serve_wire_conns"),
		gobConns:  reg.Counter("transport.serve_gob_conns"),
		handleNs:  reg.Histogram("transport.serve_ns", nil),
		openConns: reg.Gauge("transport.serve_open_conns"),
	})
}

// ServeTCP starts a server on addr ("127.0.0.1:0" picks a free port).
func ServeTCP(addr string, h Handler) (*TCPServer, error) {
	return serveTCP(addr, h, false)
}

// ServeTCPLegacy starts a server that behaves like a binary predating the
// wire codec: the negotiation preface is answered by closing the connection
// (as an old gob decoder would) and only the gob envelope is spoken.
// Interop tests pair it with Mux.SetGobOnly to model a fully legacy peer.
func ServeTCPLegacy(addr string, h Handler) (*TCPServer, error) {
	return serveTCP(addr, h, true)
}

func serveTCP(addr string, h Handler, gobOnly bool) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s := &TCPServer{ln: ln, handler: h, gobOnly: gobOnly, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes open connections and waits for handlers.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	if sm := s.m.Load(); sm != nil {
		sm.openConns.Add(1)
	}
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		if sm := s.m.Load(); sm != nil {
			sm.openConns.Add(-1)
		}
	}()

	// The first byte routes the connection: 0x00 can only be the wire
	// preface (a gob message length is never zero), anything else is a gob
	// client mid-first-message.
	br := bufio.NewReader(conn)
	first, err := br.Peek(1)
	if err != nil {
		return
	}
	peer := ""
	if ra := conn.RemoteAddr(); ra != nil {
		peer = ra.String()
	}
	if first[0] == 0x00 {
		if s.gobOnly {
			return // what an old binary's gob decoder does: error out, hang up
		}
		var preface [3]byte
		if _, err := io.ReadFull(br, preface[:]); err != nil {
			return
		}
		if !wire.IsFrame(preface[:]) || preface[2] != wire.Version {
			return
		}
		if _, err := conn.Write([]byte{wire.Magic, wire.Version}); err != nil {
			return
		}
		if sm := s.m.Load(); sm != nil {
			sm.wireConns.Inc()
		}
		s.serveWire(conn, br, peer)
		return
	}
	if sm := s.m.Load(); sm != nil {
		sm.gobConns.Inc()
	}
	s.serveGob(conn, br, peer)
}

// serveGob runs the legacy gob envelope loop.
func (s *TCPServer) serveGob(conn net.Conn, br *bufio.Reader, peer string) {
	dec := gob.NewDecoder(br)
	enc := gob.NewEncoder(conn)
	for {
		var req tcpRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		body, err := s.handle(req.Trace, peer, req.BudgetMillis, req.Method, req.Body)
		resp := tcpResponse{Body: body}
		if err != nil {
			resp.Err = err.Error()
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// serveWire runs the wire envelope loop: length-prefixed envelopes in both
// directions, the response written through a pooled encoder straight onto
// the socket's buffered writer — no intermediate envelope allocation.
func (s *TCPServer) serveWire(conn net.Conn, br *bufio.Reader, peer string) {
	bw := bufio.NewWriter(conn)
	var lenBuf [binary.MaxVarintLen64]byte
	for {
		plen, err := binary.ReadUvarint(br)
		if err != nil || plen > maxEnvelope {
			return
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(br, payload); err != nil {
			return
		}
		// Envelope layout: method · trace · body [· flags [· budget]]. The
		// flags byte carries the trace's sampling decision and the budget
		// varint the remaining milliseconds to the caller's deadline; clients
		// predating either omit them, so each is read only when present.
		// Further trailing bytes are tolerated so a future envelope may
		// append more fields.
		d := wire.NewDecoder(payload)
		method := d.String()
		var sc trace.SpanContext
		_ = sc.UnmarshalWire(d)
		body := d.Bytes()
		if d.More() {
			sc.Flags = d.Byte()
		}
		var budgetMillis int64
		if d.More() {
			budgetMillis = d.Varint()
		}
		if d.Err() != nil {
			return
		}
		rbody, herr := s.handle(sc, peer, budgetMillis, method, body)
		e := wire.GetEncoder()
		if herr != nil {
			e.String(herr.Error())
		} else {
			e.String("")
		}
		e.Bytes(rbody)
		n := binary.PutUvarint(lenBuf[:], uint64(len(e.Data())))
		_, werr := bw.Write(lenBuf[:n])
		if werr == nil {
			_, werr = bw.Write(e.Data())
		}
		if werr == nil {
			werr = bw.Flush()
		}
		wire.PutEncoder(e)
		if werr != nil {
			return
		}
	}
}

// handle dispatches one request to the handler with metrics accounting. The
// handler context carries the peer's address and, when the caller sent a
// deadline budget, a matching local deadline — so the overload layer can drop
// a request whose caller already gave up without invoking the handler.
func (s *TCPServer) handle(sc trace.SpanContext, peer string, budgetMillis int64, method string, body []byte) ([]byte, error) {
	sm := s.m.Load()
	start := time.Time{}
	if sm != nil {
		sm.requests.Inc()
		sm.bytesIn.Add(uint64(len(body)))
		start = time.Now() //lint:allow clockcheck (real RPC latency metric)
	}
	ctx := WithPeer(trace.NewContext(context.Background(), sc), peer)
	if budgetMillis > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(budgetMillis)*time.Millisecond)
		defer cancel()
	}
	out, err := s.handler.Handle(ctx, method, body)
	if sm != nil {
		sm.handleNs.Since(start)
		if err != nil {
			sm.errors.Inc()
		}
		sm.bytesOut.Add(uint64(len(out)))
	}
	return out, err
}

// TCPCaller issues calls over TCP, keeping one pooled connection per
// destination and remembering which destinations fell back to gob.
type TCPCaller struct {
	DialTimeout time.Duration

	mu     sync.Mutex
	conns  map[string]*tcpClientConn
	noWire bool
	legacy map[string]bool // peers that rejected the preface or a wire body

	m atomic.Pointer[fabricMetrics]
}

// Instrument records every outbound call (count, errors, timeouts, payload
// bytes, codec mix, latency) in reg, sharing metric names with the in-proc
// fabric. Safe to call while calls are in flight; a nil reg is a no-op.
func (c *TCPCaller) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	c.m.Store(newFabricMetrics(reg))
}

type tcpClientConn struct {
	mu   sync.Mutex
	conn net.Conn
	wire bool
	// wire protocol state
	br *bufio.Reader
	bw *bufio.Writer
	// gob protocol state
	enc *gob.Encoder
	dec *gob.Decoder
}

// NewTCPCaller returns a caller with a 2s dial timeout.
func NewTCPCaller() *TCPCaller {
	return &TCPCaller{
		DialTimeout: 2 * time.Second,
		conns:       make(map[string]*tcpClientConn),
		legacy:      make(map[string]bool),
	}
}

// DisableWire forces every connection and body onto gob, behaving like a
// client predating the wire codec (-wire=false on the cmds).
func (c *TCPCaller) DisableWire() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.noWire = true
}

// peerWire reports whether bodies to addr should use the wire codec.
func (c *TCPCaller) peerWire(addr string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.noWire && !c.legacy[addr]
}

// markLegacy remembers that addr cannot decode wire bodies.
func (c *TCPCaller) markLegacy(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.legacy == nil { // zero-value TCPCaller
		c.legacy = make(map[string]bool)
	}
	c.legacy[addr] = true
}

// Call implements Caller. to is a host:port address.
func (c *TCPCaller) Call(ctx context.Context, to, method string, req, resp any) (err error) {
	if fm := c.m.Load(); fm != nil {
		fm.calls.Inc()
		start := time.Now() //lint:allow clockcheck (real RPC latency metric)
		defer func() { fm.finishCall(start, err) }()
	}
	err, usedWire := c.callOnce(ctx, to, method, req, resp)
	if err != nil && usedWire {
		var re *RemoteError
		if errors.As(err, &re) && errors.Is(err, ErrDecode) {
			// The connection negotiated wire envelopes but the remote could
			// not decode this wire body (a peer of an intermediate version):
			// remember it and re-issue the call in gob. The request never
			// reached its handler, so the retry cannot double-apply.
			c.markLegacy(to)
			if fm := c.m.Load(); fm != nil {
				fm.fallbacks.Inc()
			}
			err, _ = c.callOnce(ctx, to, method, req, resp)
		}
	}
	return err
}

// callOnce performs one round trip, reporting whether the body went out as a
// wire frame.
func (c *TCPCaller) callOnce(ctx context.Context, to, method string, req, resp any) (error, bool) {
	cc, err := c.conn(ctx, to)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return fmt.Errorf("transport: dial %s: %w", to, ctxErr), false
		}
		return fmt.Errorf("%w: %s: %v", ErrUnreachable, to, err), false
	}
	fm := c.m.Load()
	body, usedWire, err := EncodeBody(req, cc.wire && c.peerWire(to))
	if err != nil {
		return err, false
	}
	fm.countBody(usedWire)
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if deadline, ok := ctx.Deadline(); ok {
		_ = cc.conn.SetDeadline(deadline)
	} else {
		_ = cc.conn.SetDeadline(time.Time{})
	}
	// A deadline alone does not observe cancellation: watch ctx and abort the
	// in-flight round trip by forcing a deadline in the past.
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			_ = cc.conn.SetDeadline(time.Unix(1, 0))
		case <-watchDone:
		}
	}()
	sc, _ := trace.FromContext(ctx)
	// The deadline rides the envelope as a relative budget (remaining ms,
	// rounded up so a tight-but-live deadline never truncates to "none"), so
	// the server can expire queued requests without trusting clock alignment.
	var budgetMillis int64
	if d, ok := ctx.Deadline(); ok {
		if remaining := time.Until(d); remaining > 0 { //lint:allow clockcheck (real deadline budget for the wire)
			budgetMillis = int64((remaining + time.Millisecond - 1) / time.Millisecond)
		}
	}
	var callErr error
	if cc.wire {
		callErr = c.roundTripWire(cc, fm, method, sc, budgetMillis, body, resp)
	} else {
		callErr = c.roundTripGob(cc, fm, method, sc, budgetMillis, body, resp)
	}
	close(watchDone)
	if callErr != nil {
		ctxErr := ctx.Err()
		if ctxErr == nil {
			// The conn deadline equals the ctx deadline and its poller can
			// fire a moment before the ctx timer: map that to expiry too.
			if d, ok := ctx.Deadline(); ok && !time.Now().Before(d) { //lint:allow clockcheck (compares against the conn's real deadline)
				ctxErr = context.DeadlineExceeded
			}
		}
		if ctxErr != nil {
			// Surface cancellation/expiry as the context error, not the I/O
			// error the forced deadline produced.
			callErr = fmt.Errorf("transport: call %s %s: %w", to, method, ctxErr)
		}
		if _, isRemote := callErr.(*RemoteError); !isRemote {
			// Connection-level failure: drop the pooled connection.
			c.drop(to, cc)
		}
	}
	return callErr, usedWire
}

// roundTripWire writes one wire envelope and reads its response. The
// request's already-encoded body is copied into the envelope verbatim — the
// fix for the historical gob-inside-gob double encode.
func (c *TCPCaller) roundTripWire(cc *tcpClientConn, fm *fabricMetrics, method string, sc trace.SpanContext, budgetMillis int64, body []byte, resp any) error {
	e := wire.GetEncoder()
	e.String(method)
	sc.MarshalWire(e)
	e.Bytes(body)
	// Sampling flags and the deadline budget ride after the body, where
	// servers predating them see only tolerated trailing bytes (the
	// envelope's designed growth seam).
	e.Byte(sc.Flags)
	e.Varint(budgetMillis)
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(e.Data())))
	_, err := cc.bw.Write(lenBuf[:n])
	if err == nil {
		_, err = cc.bw.Write(e.Data())
	}
	if err == nil {
		err = cc.bw.Flush()
	}
	wire.PutEncoder(e)
	if err != nil {
		return err
	}
	if fm != nil {
		fm.bytesOut.Add(uint64(len(body)))
	}
	plen, err := binary.ReadUvarint(cc.br)
	if err != nil {
		return err
	}
	if plen > maxEnvelope {
		return fmt.Errorf("transport: response envelope of %d bytes exceeds cap", plen)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(cc.br, payload); err != nil {
		return err
	}
	d := wire.NewDecoder(payload)
	errText := d.String()
	rbody := d.Bytes()
	if derr := d.Err(); derr != nil {
		return fmt.Errorf("%w %v", ErrDecode, derr)
	}
	if fm != nil {
		fm.bytesIn.Add(uint64(len(rbody)))
	}
	if errText != "" {
		return NewRemoteError(method, errText)
	}
	if resp == nil {
		return nil
	}
	return Decode(rbody, resp)
}

// roundTripGob writes one legacy gob envelope and reads its response.
func (c *TCPCaller) roundTripGob(cc *tcpClientConn, fm *fabricMetrics, method string, sc trace.SpanContext, budgetMillis int64, body []byte, resp any) error {
	if err := cc.enc.Encode(&tcpRequest{Method: method, Body: body, Trace: sc, BudgetMillis: budgetMillis}); err != nil {
		return err
	}
	if fm != nil {
		fm.bytesOut.Add(uint64(len(body)))
	}
	var out tcpResponse
	if err := cc.dec.Decode(&out); err != nil {
		return err
	}
	if fm != nil {
		fm.bytesIn.Add(uint64(len(out.Body)))
	}
	if out.Err != "" {
		return NewRemoteError(method, out.Err)
	}
	if resp == nil {
		return nil
	}
	return Decode(out.Body, resp)
}

// Close closes all pooled connections.
func (c *TCPCaller) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cc := range c.conns {
		cc.conn.Close()
	}
	c.conns = make(map[string]*tcpClientConn)
}

func (c *TCPCaller) conn(ctx context.Context, to string) (*tcpClientConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cc, ok := c.conns[to]; ok {
		return cc, nil
	}
	// DialContext caps the dial at DialTimeout but also honors the caller's
	// ctx, so a tight deadline or cancellation cuts the dial short instead of
	// always waiting out the full timeout.
	d := net.Dialer{Timeout: c.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", to)
	if err != nil {
		return nil, err
	}
	if !c.noWire && !c.legacy[to] {
		if cc, ok := c.handshake(ctx, conn); ok {
			c.conns[to] = cc
			return cc, nil
		}
		// The preface was rejected, timed out or mis-acked: the server
		// predates the wire codec (or is unreadably slow — treating it as
		// legacy stays correct either way). Remember and redial in gob; the
		// handshake connection is closed because the preface bytes already
		// sent would corrupt a gob stream.
		if c.legacy == nil { // zero-value TCPCaller
			c.legacy = make(map[string]bool)
		}
		c.legacy[to] = true
		if fm := c.m.Load(); fm != nil {
			fm.fallbacks.Inc()
		}
		conn, err = d.DialContext(ctx, "tcp", to)
		if err != nil {
			return nil, err
		}
	}
	cc := &tcpClientConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
	c.conns[to] = cc
	return cc, nil
}

// handshake sends the wire preface and waits briefly for the ack. On any
// failure the connection is closed and (nil, false) returned.
func (c *TCPCaller) handshake(ctx context.Context, conn net.Conn) (*tcpClientConn, bool) {
	ackTimeout := c.DialTimeout
	if ackTimeout <= 0 {
		ackTimeout = 2 * time.Second
	}
	deadline := time.Now().Add(ackTimeout) //lint:allow clockcheck (real I/O deadline on the socket)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	_ = conn.SetDeadline(deadline)
	if _, err := conn.Write(wire.Header()); err != nil {
		conn.Close()
		return nil, false
	}
	br := bufio.NewReader(conn)
	var ack [2]byte
	if _, err := io.ReadFull(br, ack[:]); err != nil || ack[0] != wire.Magic || ack[1] != wire.Version {
		conn.Close()
		return nil, false
	}
	_ = conn.SetDeadline(time.Time{})
	return &tcpClientConn{conn: conn, wire: true, br: br, bw: bufio.NewWriter(conn)}, true
}

func (c *TCPCaller) drop(to string, cc *tcpClientConn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.conns[to]; ok && cur == cc {
		cc.conn.Close()
		delete(c.conns, to)
	}
}
