package transport

import (
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"
)

// wire envelope types.
type tcpRequest struct {
	Method string
	Body   []byte
}

type tcpResponse struct {
	Body []byte
	Err  string
}

// TCPServer serves a Handler over real TCP connections, one request per
// connection.
type TCPServer struct {
	ln      net.Listener
	handler Handler

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// ServeTCP starts a server on addr ("127.0.0.1:0" picks a free port).
func ServeTCP(addr string, h Handler) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s := &TCPServer{ln: ln, handler: h, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes open connections and waits for handlers.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req tcpRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		body, err := s.handler.Handle(context.Background(), req.Method, req.Body)
		resp := tcpResponse{Body: body}
		if err != nil {
			resp.Err = err.Error()
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// TCPCaller issues calls over TCP, keeping one pooled connection per
// destination.
type TCPCaller struct {
	DialTimeout time.Duration

	mu    sync.Mutex
	conns map[string]*tcpClientConn
}

type tcpClientConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// NewTCPCaller returns a caller with a 2s dial timeout.
func NewTCPCaller() *TCPCaller {
	return &TCPCaller{DialTimeout: 2 * time.Second, conns: make(map[string]*tcpClientConn)}
}

// Call implements Caller. to is a host:port address.
func (c *TCPCaller) Call(ctx context.Context, to, method string, req, resp any) error {
	body, err := Encode(req)
	if err != nil {
		return err
	}
	cc, err := c.conn(to)
	if err != nil {
		return fmt.Errorf("%w: %s: %v", ErrUnreachable, to, err)
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if deadline, ok := ctx.Deadline(); ok {
		_ = cc.conn.SetDeadline(deadline)
	} else {
		_ = cc.conn.SetDeadline(time.Time{})
	}
	callErr := func() error {
		if err := cc.enc.Encode(&tcpRequest{Method: method, Body: body}); err != nil {
			return err
		}
		var out tcpResponse
		if err := cc.dec.Decode(&out); err != nil {
			return err
		}
		if out.Err != "" {
			return &RemoteError{Method: method, Msg: out.Err}
		}
		if resp == nil {
			return nil
		}
		return Decode(out.Body, resp)
	}()
	if callErr != nil {
		if _, isRemote := callErr.(*RemoteError); !isRemote {
			// Connection-level failure: drop the pooled connection.
			c.drop(to, cc)
		}
	}
	return callErr
}

// Close closes all pooled connections.
func (c *TCPCaller) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cc := range c.conns {
		cc.conn.Close()
	}
	c.conns = make(map[string]*tcpClientConn)
}

func (c *TCPCaller) conn(to string) (*tcpClientConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cc, ok := c.conns[to]; ok {
		return cc, nil
	}
	conn, err := net.DialTimeout("tcp", to, c.DialTimeout)
	if err != nil {
		return nil, err
	}
	cc := &tcpClientConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
	c.conns[to] = cc
	return cc, nil
}

func (c *TCPCaller) drop(to string, cc *tcpClientConn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.conns[to]; ok && cur == cc {
		cc.conn.Close()
		delete(c.conns, to)
	}
}
