// Package transport provides the RPC layer the platform's distributed pieces
// (lookup service, extension bases, adaptation services) communicate over.
// Hot message types ride the zero-reflection wire codec (internal/wire);
// everything else is gob-encoded, and the two are distinguished on the
// receiving side by the wire frame header, so mixed fleets interoperate. Two
// interchangeable fabrics are provided: an in-process fabric whose
// connectivity is steered by the mobility simulator (standing in for the
// wireless network of the paper's testbed) and a real TCP fabric.
package transport

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/wire"
)

// Handler serves RPC requests addressed to one node.
type Handler interface {
	Handle(ctx context.Context, method string, body []byte) ([]byte, error)
}

// Caller issues RPC requests to remote nodes.
type Caller interface {
	Call(ctx context.Context, to, method string, req, resp any) error
}

// Errors surfaced by the transports.
var (
	// ErrUnreachable indicates no route to the destination (node out of
	// range, partitioned or gone).
	ErrUnreachable = errors.New("transport: destination unreachable")
	// ErrNoMethod indicates the destination does not serve the method.
	ErrNoMethod = errors.New("transport: no such method")
	// ErrDecode indicates a request or response body failed to decode. Its
	// text is the prefix every decode failure has always carried, so a
	// RemoteError from an old, gob-only peer that choked on a wire frame
	// unwraps to it via the sentinel machinery — that match is what triggers
	// the caller's remembered per-peer gob fallback.
	ErrDecode = errors.New("transport: decode:")
)

// RemoteError wraps an error string returned by the remote handler. When the
// remote message matches a registered sentinel (see RegisterRemoteSentinel),
// Unwrap exposes it so errors.Is behaves identically whether the error
// crossed a process boundary or not.
type RemoteError struct {
	Method string
	Msg    string

	sentinel error
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("transport: remote %s: %s", e.Method, e.Msg)
}

// Unwrap exposes the sentinel recovered from the remote message, if any.
func (e *RemoteError) Unwrap() error { return e.sentinel }

// NewRemoteError builds the error a fabric reports for a remote handler
// failure, mapping well-known sentinel texts back to their sentinels. Every
// fabric (in-proc, TCP, simnet) constructs remote errors through this so
// errors.Is(err, ErrNoMethod) etc. hold on all of them.
func NewRemoteError(method, msg string) *RemoteError {
	return &RemoteError{Method: method, Msg: msg, sentinel: matchRemoteSentinel(msg)}
}

var (
	sentinelMu sync.RWMutex
	sentinels  = []error{ErrNoMethod, ErrDecode, ErrOverloaded}
)

// RegisterRemoteSentinel adds sentinel errors that should survive a trip over
// the wire: a remote error whose message contains a registered sentinel's
// text unwraps to that sentinel. Packages register their wire-visible
// sentinels at init (e.g. lease.ErrExpired), keeping the transport layer free
// of upward dependencies.
func RegisterRemoteSentinel(errs ...error) {
	sentinelMu.Lock()
	defer sentinelMu.Unlock()
	for _, err := range errs {
		if err == nil || err.Error() == "" {
			continue
		}
		dup := false
		for _, have := range sentinels {
			if have == err {
				dup = true
				break
			}
		}
		if !dup {
			sentinels = append(sentinels, err)
		}
	}
}

// matchRemoteSentinel finds the registered sentinel whose text appears in
// msg, preferring the longest match so more specific sentinels win.
func matchRemoteSentinel(msg string) error {
	sentinelMu.RLock()
	defer sentinelMu.RUnlock()
	var best error
	bestLen := 0
	for _, s := range sentinels {
		text := s.Error()
		if len(text) > bestLen && strings.Contains(msg, text) {
			best, bestLen = s, len(text)
		}
	}
	return best
}

// Encode gob-encodes v.
func Encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("transport: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// EncodeBody encodes v for a fabric: with the wire codec when useWire is set
// and v implements it, gob otherwise. The second result reports whether the
// body is a wire frame, which the fabrics record (metrics) and mirror in
// their responses.
func EncodeBody(v any, useWire bool) ([]byte, bool, error) {
	if useWire {
		if m, ok := v.(wire.Marshaler); ok {
			return wire.Marshal(m), true, nil
		}
	}
	data, err := Encode(v)
	return data, false, err
}

// Decode decodes a fabric body into v (a pointer), dispatching on the body's
// first bytes: wire frames go through the value's wire codec, everything
// else through gob. Failures wrap ErrDecode.
func Decode(data []byte, v any) error {
	if wire.IsFrame(data) {
		u, ok := v.(wire.Unmarshaler)
		if !ok {
			return fmt.Errorf("%w wire frame for %T, which has no wire codec", ErrDecode, v)
		}
		if err := wire.Unmarshal(data, u); err != nil {
			return fmt.Errorf("%w %v", ErrDecode, err)
		}
		return nil
	}
	return DecodeGob(data, v)
}

// DecodeGob gob-decodes data into v (a pointer) with no frame dispatch — the
// behavior of peers that predate the wire codec. Mux.SetGobOnly routes
// request decoding through it to model such a peer in tests.
func DecodeGob(data []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("%w %v", ErrDecode, err)
	}
	return nil
}

// Mux dispatches methods to registered handler functions. It is safe for
// concurrent use; handlers may be added while serving.
type Mux struct {
	mu       sync.RWMutex
	handlers map[string]func(ctx context.Context, body []byte) ([]byte, error)
	gobOnly  bool
}

// NewMux returns an empty Mux.
func NewMux() *Mux {
	return &Mux{handlers: make(map[string]func(ctx context.Context, body []byte) ([]byte, error))}
}

// SetGobOnly makes typed handlers on this mux behave like a peer that
// predates the wire codec: request bodies are always gob-decoded (so wire
// frames fail with the decode error old binaries produce) and responses are
// always gob-encoded. Mixed-fleet tests use it to stand up legacy receivers.
func (m *Mux) SetGobOnly(on bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gobOnly = on
}

// GobOnly reports whether SetGobOnly is in effect.
func (m *Mux) GobOnly() bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.gobOnly
}

// HandleRaw registers a raw body handler for method.
func (m *Mux) HandleRaw(method string, fn func(ctx context.Context, body []byte) ([]byte, error)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers[method] = fn
}

// Handle implements Handler.
func (m *Mux) Handle(ctx context.Context, method string, body []byte) ([]byte, error) {
	m.mu.RLock()
	fn, ok := m.handlers[method]
	m.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoMethod, method)
	}
	return fn(ctx, body)
}

// Methods returns the registered method names (order unspecified).
func (m *Mux) Methods() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.handlers))
	for k := range m.handlers {
		out = append(out, k)
	}
	return out
}

// Register installs a typed handler for method on mux. The response mirrors
// the request's codec: a wire-framed request gets a wire-framed response
// (when Resp has a codec) and a gob request gets a gob response, so old
// callers never receive bytes they cannot decode.
func Register[Req, Resp any](mux *Mux, method string, fn func(ctx context.Context, req Req) (Resp, error)) {
	mux.HandleRaw(method, func(ctx context.Context, body []byte) ([]byte, error) {
		var req Req
		if mux.GobOnly() {
			if err := DecodeGob(body, &req); err != nil {
				return nil, err
			}
		} else if err := Decode(body, &req); err != nil {
			return nil, err
		}
		resp, err := fn(ctx, req)
		if err != nil {
			return nil, err
		}
		out, _, eerr := EncodeBody(resp, wire.IsFrame(body) && !mux.GobOnly())
		return out, eerr
	})
}

// Invoke performs a typed call through c.
func Invoke[Req, Resp any](ctx context.Context, c Caller, to, method string, req Req) (Resp, error) {
	var resp Resp
	err := c.Call(ctx, to, method, req, &resp)
	return resp, err
}
