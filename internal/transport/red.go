package transport

import (
	"context"
	"sync"
	"time"

	"repro/internal/metrics"
)

// This file is the RED auto-instrumentation layer: wrap a Caller or Handler
// once and every RPC that flows through it gets per-method Rate (histogram
// count), Error (counter) and Duration (latency histogram with p50/p95/p99
// in snapshots) instruments — no per-call-site code. Instrument names carry
// the method as a label suffix ("rpc.client.ns|method=midas.renew") which
// /metrics?format=prom renders as a proper Prometheus label, and which the
// fleet-aggregation path in internal/core parses back out per method.

// RED instrument-name prefixes, shared with the fleet aggregation parser.
const (
	REDClientPrefix = "rpc.client"
	REDServerPrefix = "rpc.server"
)

// REDSuffix builds the per-method instrument name for a RED prefix, e.g.
// REDSuffix("rpc.server", "ns", "midas.renew").
func REDSuffix(prefix, kind, method string) string {
	return prefix + "." + kind + "|method=" + method
}

// redMethod is one method's instrument pair, resolved once and cached.
type redMethod struct {
	ns   *metrics.Histogram
	errs *metrics.Counter
}

// redSet caches per-method instruments behind a read lock so steady-state
// calls never rebuild instrument names or hit the registry's maps.
type redSet struct {
	reg    *metrics.Registry
	prefix string

	mu      sync.RWMutex
	methods map[string]*redMethod
}

func newRedSet(reg *metrics.Registry, prefix string) *redSet {
	return &redSet{reg: reg, prefix: prefix, methods: make(map[string]*redMethod)}
}

func (rs *redSet) get(method string) *redMethod {
	rs.mu.RLock()
	m, ok := rs.methods[method]
	rs.mu.RUnlock()
	if ok {
		return m
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if m, ok := rs.methods[method]; ok {
		return m
	}
	m = &redMethod{
		ns:   rs.reg.Histogram(REDSuffix(rs.prefix, "ns", method), nil),
		errs: rs.reg.Counter(REDSuffix(rs.prefix, "errors", method)),
	}
	rs.methods[method] = m
	return m
}

// observe records one completed RPC.
func (rs *redSet) observe(method string, d time.Duration, err error) {
	m := rs.get(method)
	m.ns.Observe(int64(d))
	if err != nil {
		m.errs.Inc()
	}
}

// redCaller wraps a Caller with client-side RED instruments.
type redCaller struct {
	inner Caller
	set   *redSet
}

// REDCalls instruments every call through c with per-method rate/error/
// duration metrics under "rpc.client.*|method=...". A nil registry returns c
// unwrapped: observability stays strictly opt-in on the hot path.
func REDCalls(c Caller, reg *metrics.Registry) Caller {
	if reg == nil {
		return c
	}
	return &redCaller{inner: c, set: newRedSet(reg, REDClientPrefix)}
}

func (r *redCaller) Call(ctx context.Context, to, method string, req, resp any) error {
	t0 := time.Now() //lint:allow clockcheck (RPC latency measurement, not scheduling)
	err := r.inner.Call(ctx, to, method, req, resp)
	r.set.observe(method, time.Since(t0), err) //lint:allow clockcheck (RPC latency measurement, not scheduling)
	return err
}

// redHandler wraps a Handler with server-side RED instruments.
type redHandler struct {
	inner Handler
	set   *redSet
}

// REDHandling instruments every request served through h with per-method
// rate/error/duration metrics under "rpc.server.*|method=...". A nil registry
// returns h unwrapped.
func REDHandling(h Handler, reg *metrics.Registry) Handler {
	if reg == nil {
		return h
	}
	return &redHandler{inner: h, set: newRedSet(reg, REDServerPrefix)}
}

func (r *redHandler) Handle(ctx context.Context, method string, body []byte) ([]byte, error) {
	t0 := time.Now() //lint:allow clockcheck (RPC latency measurement, not scheduling)
	out, err := r.inner.Handle(ctx, method, body)
	r.set.observe(method, time.Since(t0), err) //lint:allow clockcheck (RPC latency measurement, not scheduling)
	return out, err
}
