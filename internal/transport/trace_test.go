package transport

import (
	"context"
	"errors"
	"testing"

	"repro/internal/trace"
)

// TestRemoteErrorSentinelRoundTrip is the regression test for the lost
// sentinel bug: ErrNoMethod used to round-trip over TCP as a plain string,
// so errors.Is held on the in-proc fabric but not over the wire. Both
// fabrics must now behave identically.
func TestRemoteErrorSentinelRoundTrip(t *testing.T) {
	mux := newEchoMux()

	t.Run("inproc", func(t *testing.T) {
		fabric := NewInProc()
		stop, _ := fabric.Serve("b", mux)
		defer stop()
		_, err := Invoke[echoReq, echoResp](context.Background(), fabric.Node("a"), "b", "nope", echoReq{})
		if !errors.Is(err, ErrNoMethod) {
			t.Fatalf("in-proc unknown method: errors.Is(err, ErrNoMethod) = false, err = %v", err)
		}
	})

	t.Run("tcp", func(t *testing.T) {
		srv, err := ServeTCP("127.0.0.1:0", mux)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		caller := NewTCPCaller()
		defer caller.Close()
		_, err = Invoke[echoReq, echoResp](context.Background(), caller, srv.Addr(), "nope", echoReq{})
		if !errors.Is(err, ErrNoMethod) {
			t.Fatalf("TCP unknown method: errors.Is(err, ErrNoMethod) = false, err = %v", err)
		}
		var remote *RemoteError
		if !errors.As(err, &remote) {
			t.Fatalf("still want a RemoteError wrapper, got %v", err)
		}
	})
}

func TestRegisterRemoteSentinel(t *testing.T) {
	errCustom := errors.New("custom: widget jammed")
	RegisterRemoteSentinel(errCustom)
	RegisterRemoteSentinel(errCustom, nil) // dup + nil are ignored

	re := NewRemoteError("m", "handler said: custom: widget jammed (code 7)")
	if !errors.Is(re, errCustom) {
		t.Fatalf("registered sentinel not recovered from %q", re.Msg)
	}
	if errors.Is(NewRemoteError("m", "unrelated"), errCustom) {
		t.Fatal("sentinel matched an unrelated message")
	}
	// Transient retry classification must not change: remote errors are
	// never retried even when they unwrap to a sentinel.
	if RetryTransient(re) {
		t.Fatal("RemoteError with sentinel became retryable")
	}
}

// TestTraceEnvelopeOverTCP checks the wire propagation: a span context on
// the caller's ctx must arrive in the server handler's ctx.
func TestTraceEnvelopeOverTCP(t *testing.T) {
	got := make(chan trace.SpanContext, 1)
	mux := NewMux()
	Register(mux, "probe", func(ctx context.Context, _ echoReq) (echoResp, error) {
		sc, _ := trace.FromContext(ctx)
		got <- sc
		return echoResp{}, nil
	})
	srv, err := ServeTCP("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	caller := NewTCPCaller()
	defer caller.Close()

	tr := trace.New(1)
	ctx, sp := tr.StartSpan(context.Background(), "client")
	if _, err := Invoke[echoReq, echoResp](ctx, caller, srv.Addr(), "probe", echoReq{}); err != nil {
		t.Fatal(err)
	}
	sp.End(nil)
	if sc := <-got; sc != sp.Context() {
		t.Fatalf("server saw %+v, want %+v", sc, sp.Context())
	}

	// Without a span on ctx the envelope carries the zero context.
	if _, err := Invoke[echoReq, echoResp](context.Background(), caller, srv.Addr(), "probe", echoReq{}); err != nil {
		t.Fatal(err)
	}
	if sc := <-got; sc.Valid() {
		t.Fatalf("untraced call leaked span context %+v", sc)
	}
}

// TestPolicyAttemptSpans checks that a traced retrying caller opens one
// child "rpc.attempt" span per attempt under the logical call span.
func TestPolicyAttemptSpans(t *testing.T) {
	fails := 2
	inner := callerFunc(func(ctx context.Context, to, method string, req, resp any) error {
		if fails > 0 {
			fails--
			return ErrUnreachable
		}
		return nil
	})
	tr := trace.New(2)
	pol := NewPolicy(1)
	pol.BaseDelay = 0
	pol.Trace(tr)
	wrapped := TraceCalls(pol.Wrap(inner), tr)

	if err := wrapped.Call(context.Background(), "n", "m", nil, nil); err != nil {
		t.Fatal(err)
	}
	calls := tr.Spans(trace.Filter{Name: "rpc.call"})
	if len(calls) != 1 {
		t.Fatalf("got %d rpc.call spans, want 1", len(calls))
	}
	attempts := tr.Spans(trace.Filter{Name: "rpc.attempt"})
	if len(attempts) != 3 {
		t.Fatalf("got %d rpc.attempt spans, want 3", len(attempts))
	}
	for i, a := range attempts {
		if a.ParentID != calls[0].SpanID || a.TraceID != calls[0].TraceID {
			t.Fatalf("attempt %d not a child of the call span: %+v", i, a)
		}
		if i < 2 && a.Err == "" {
			t.Fatalf("failed attempt %d recorded no error", i)
		}
	}
	if attempts[2].Err != "" {
		t.Fatalf("final attempt recorded error %q", attempts[2].Err)
	}
}

type callerFunc func(ctx context.Context, to, method string, req, resp any) error

func (f callerFunc) Call(ctx context.Context, to, method string, req, resp any) error {
	return f(ctx, to, method, req, resp)
}

// TestTraceHandling checks the serve-side wrapper parents its span to the
// inbound context and tags the node.
func TestTraceHandling(t *testing.T) {
	tr := trace.New(3)
	h := TraceHandling(newEchoMux(), tr, "n1")
	ctx, sp := tr.StartSpan(context.Background(), "caller")
	body, _ := Encode(echoReq{Msg: "x", N: 1})
	if _, err := h.Handle(ctx, "echo", body); err != nil {
		t.Fatal(err)
	}
	sp.End(nil)
	serves := tr.Spans(trace.Filter{Name: "rpc.serve"})
	if len(serves) != 1 {
		t.Fatalf("got %d rpc.serve spans, want 1", len(serves))
	}
	if serves[0].ParentID != sp.Context().SpanID || serves[0].Tags["node"] != "n1" {
		t.Fatalf("serve span shape wrong: %+v", serves[0])
	}
	if TraceHandling(newEchoMux(), nil, "") == nil {
		t.Fatal("nil tracer should pass handler through")
	}
}

// TestSampledBitPropagatesAcrossTCP pins head-sampling coherence across the
// fabric for both codecs: the root's decision must override whatever the
// remote tracer would decide locally — a sampled-in trace is recorded even by
// a server whose own sampler drops everything, and a sampled-out trace stays
// out even where the server's sampler would keep it. The legacy gob protocol
// carries the decision too (Flags is a struct field gob versions naturally).
func TestSampledBitPropagatesAcrossTCP(t *testing.T) {
	for _, tc := range []struct {
		name       string
		gobCaller  bool
		legacySrv  bool
		clientRate float64
		serverRate float64
		wantServed int
	}{
		{"wire/sampled-in-overrides-server-drop", false, false, 1, 0, 1},
		{"wire/sampled-out-overrides-server-keep", false, false, 0, 1, 0},
		{"gob/sampled-in-overrides-server-drop", true, false, 1, 0, 1},
		{"gob/sampled-out-overrides-server-keep", true, false, 0, 1, 0},
		{"legacy-server/sampled-in-overrides-drop", true, true, 1, 0, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			srvTr := trace.New(2)
			srvTr.SetSampler(trace.SamplerConfig{Rate: tc.serverRate, Seed: 2})
			mux := newWireEchoMux()
			serve := ServeTCP
			if tc.legacySrv {
				mux.SetGobOnly(true)
				serve = ServeTCPLegacy
			}
			srv, err := serve("127.0.0.1:0", TraceHandling(mux, srvTr, "n1"))
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			caller := NewTCPCaller()
			defer caller.Close()
			if tc.gobCaller {
				caller.DisableWire()
			}
			cliTr := trace.New(1)
			cliTr.SetSampler(trace.SamplerConfig{Rate: tc.clientRate, Seed: 1})
			c := TraceCalls(caller, cliTr)
			if _, err := Invoke[wireReq, wireResp](context.Background(), c, srv.Addr(), "wecho", wireReq{Msg: "a", N: 2}); err != nil {
				t.Fatal(err)
			}
			served := srvTr.Spans(trace.Filter{Name: "rpc.serve"})
			if len(served) != tc.wantServed {
				t.Fatalf("server recorded %d rpc.serve spans, want %d", len(served), tc.wantServed)
			}
			if tc.wantServed == 1 {
				calls := cliTr.Spans(trace.Filter{Name: "rpc.call"})
				if len(calls) != 1 {
					t.Fatalf("client recorded %d rpc.call spans, want 1", len(calls))
				}
				if served[0].TraceID != calls[0].TraceID {
					t.Fatalf("server joined trace %q, client rooted %q", served[0].TraceID, calls[0].TraceID)
				}
			}
		})
	}
}
