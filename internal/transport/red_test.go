package transport

import (
	"context"
	"errors"
	"testing"

	"repro/internal/metrics"
	"repro/internal/testutil"
)

// TestREDWrappers drives a caller and a handler through their RED wrappers
// and checks the per-method instruments: a latency histogram counting every
// call and an error counter counting only the failures, on both sides.
func TestREDWrappers(t *testing.T) {
	fabric := NewInProc()
	mux := newWireEchoMux()
	boom := errors.New("boom")
	Register(mux, "fail", func(_ context.Context, _ wireReq) (wireResp, error) {
		return wireResp{}, boom
	})
	sreg := metrics.New()
	stop, _ := fabric.Serve("b", REDHandling(mux, sreg))
	defer stop()

	creg := metrics.New()
	c := REDCalls(fabric.Node("a"), creg)
	for i := 0; i < 3; i++ {
		if _, err := Invoke[wireReq, wireResp](context.Background(), c, "b", "wecho", wireReq{Msg: "x", N: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Invoke[wireReq, wireResp](context.Background(), c, "b", "fail", wireReq{}); err == nil {
		t.Fatal("fail method should error")
	}

	for _, side := range []struct {
		prefix string
		snap   metrics.Snapshot
	}{
		{REDClientPrefix, creg.Snapshot()},
		{REDServerPrefix, sreg.Snapshot()},
	} {
		h, ok := side.snap.Histograms[REDSuffix(side.prefix, "ns", "wecho")]
		if !ok || h.Count != 3 {
			t.Fatalf("%s: wecho histogram count = %d (ok=%v), want 3", side.prefix, h.Count, ok)
		}
		if got := side.snap.Counters[REDSuffix(side.prefix, "errors", "wecho")]; got != 0 {
			t.Fatalf("%s: wecho errors = %d, want 0", side.prefix, got)
		}
		fh := side.snap.Histograms[REDSuffix(side.prefix, "ns", "fail")]
		if fh.Count != 1 {
			t.Fatalf("%s: fail histogram count = %d, want 1 (errors still time)", side.prefix, fh.Count)
		}
		if got := side.snap.Counters[REDSuffix(side.prefix, "errors", "fail")]; got != 1 {
			t.Fatalf("%s: fail errors = %d, want 1", side.prefix, got)
		}
	}
	if got := testutil.Counter(creg, REDSuffix(REDClientPrefix, "errors", "fail")); got != 1 {
		t.Fatalf("testutil counter read = %d, want 1", got)
	}
}

// TestREDNilRegistryPassesThrough pins the no-op contract: without a registry
// the wrappers add nothing — not even a frame on the call path.
func TestREDNilRegistryPassesThrough(t *testing.T) {
	fabric := NewInProc()
	c := fabric.Node("a")
	if REDCalls(c, nil) != c {
		t.Fatal("REDCalls(nil reg) should return the caller unchanged")
	}
	mux := newWireEchoMux()
	if REDHandling(mux, nil) != Handler(mux) {
		t.Fatal("REDHandling(nil reg) should return the handler unchanged")
	}
}
