package transport

import (
	"context"

	"repro/internal/trace"
)

// TraceCalls wraps c so every outbound call runs inside an "rpc.call" span
// (tags: method, to) whose context rides the fabric to the remote handler. A
// nil tracer returns c unchanged.
func TraceCalls(c Caller, tr *trace.Tracer) Caller {
	if tr == nil {
		return c
	}
	return &tracedCaller{inner: c, tr: tr}
}

type tracedCaller struct {
	inner Caller
	tr    *trace.Tracer
}

// Call implements Caller.
func (t *tracedCaller) Call(ctx context.Context, to, method string, req, resp any) error {
	ctx, sp := t.tr.StartSpan(ctx, "rpc.call")
	sp.Tag("method", method)
	sp.Tag("to", to)
	err := t.inner.Call(ctx, to, method, req, resp)
	sp.End(err)
	return err
}

// TraceHandling wraps h so every served request runs inside an "rpc.serve"
// span (tags: method, and node if non-empty), parented to whatever span
// context arrived with the request. A nil tracer returns h unchanged.
func TraceHandling(h Handler, tr *trace.Tracer, node string) Handler {
	if tr == nil {
		return h
	}
	return &tracedHandler{inner: h, tr: tr, node: node}
}

type tracedHandler struct {
	inner Handler
	tr    *trace.Tracer
	node  string
}

// Handle implements Handler.
func (t *tracedHandler) Handle(ctx context.Context, method string, body []byte) ([]byte, error) {
	ctx, sp := t.tr.StartSpan(ctx, "rpc.serve")
	sp.Tag("method", method)
	if t.node != "" {
		sp.Tag("node", t.node)
	}
	out, err := t.inner.Handle(ctx, method, body)
	sp.End(err)
	return out, err
}
