package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/metrics"
)

// fabricMetrics is the RPC accounting shared by the in-proc and TCP fabrics;
// all fields are nil-safe no-ops when un-instrumented.
type fabricMetrics struct {
	calls     *metrics.Counter
	errors    *metrics.Counter
	timeouts  *metrics.Counter
	losses    *metrics.Counter
	bytesOut  *metrics.Counter
	bytesIn   *metrics.Counter
	wireReqs  *metrics.Counter
	gobReqs   *metrics.Counter
	fallbacks *metrics.Counter
	callNs    *metrics.Histogram
}

func newFabricMetrics(reg *metrics.Registry) *fabricMetrics {
	return &fabricMetrics{
		calls:     reg.Counter("transport.calls"),
		errors:    reg.Counter("transport.call_errors"),
		timeouts:  reg.Counter("transport.timeouts"),
		losses:    reg.Counter("transport.injected_losses"),
		bytesOut:  reg.Counter("transport.bytes_sent"),
		bytesIn:   reg.Counter("transport.bytes_received"),
		wireReqs:  reg.Counter("transport.wire_bodies"),
		gobReqs:   reg.Counter("transport.gob_bodies"),
		fallbacks: reg.Counter("transport.codec_fallbacks"),
		callNs:    reg.Histogram("transport.call_ns", nil),
	}
}

// countBody records which codec one request body used.
func (fm *fabricMetrics) countBody(usedWire bool) {
	if fm == nil {
		return
	}
	if usedWire {
		fm.wireReqs.Inc()
	} else {
		fm.gobReqs.Inc()
	}
}

// finishCall records the outcome of one RPC on the caller side.
func (fm *fabricMetrics) finishCall(start time.Time, err error) {
	if fm == nil {
		return
	}
	fm.callNs.Since(start)
	if err != nil {
		fm.errors.Inc()
		var ne net.Error
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) ||
			(errors.As(err, &ne) && ne.Timeout()) {
			fm.timeouts.Inc()
		}
	}
}

// InProc is an in-process RPC fabric. It simulates the wireless network of
// the paper's testbed: a LinkFunc (typically wired to the mobility
// simulator's range oracle) decides which node pairs can currently talk, and
// an optional per-call latency models the air interface.
type InProc struct {
	mu       sync.RWMutex
	nodes    map[string]Handler
	linked   func(from, to string) bool
	latency  time.Duration
	lossNum  uint64 // drop lossNum out of every lossDen calls
	lossDen  uint64
	lossTick uint64
	noWire   bool
	legacy   map[string]bool // peers that rejected a wire frame; gob from then on
	m        *fabricMetrics
}

// Instrument records every call through the fabric (count, errors, timeouts,
// payload bytes, latency) and each deterministically injected loss in reg. A
// nil reg is a no-op.
func (n *InProc) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.m = newFabricMetrics(reg)
}

// NewInProc returns a fully connected fabric with zero latency.
func NewInProc() *InProc {
	return &InProc{nodes: make(map[string]Handler), legacy: make(map[string]bool)}
}

// DisableWire forces every body onto gob, as if no peer spoke the wire
// codec. Ablation benchmarks and legacy-caller tests use it.
func (n *InProc) DisableWire() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.noWire = true
}

// peerWire reports whether bodies to addr should use the wire codec.
func (n *InProc) peerWire(addr string) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return !n.noWire && !n.legacy[addr]
}

// markLegacy remembers that addr rejected a wire frame; every later body to
// it is gob, exactly like the per-node ErrNoMethod batch fallback.
func (n *InProc) markLegacy(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.legacy[addr] = true
}

// SetLinkFunc installs the connectivity oracle. A nil oracle means fully
// connected. Local delivery (from == to) is always allowed.
func (n *InProc) SetLinkFunc(f func(from, to string) bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.linked = f
}

// SetLatency sets the simulated one-way message latency.
func (n *InProc) SetLatency(d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.latency = d
}

// SetLoss drops num out of every den calls deterministically (evenly
// spread), modelling a lossy wireless link. SetLoss(0, 0) disables loss.
func (n *InProc) SetLoss(num, den uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.lossNum, n.lossDen, n.lossTick = num, den, 0
}

// dropCall reports whether the current call falls into a loss slot.
func (n *InProc) dropCall() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.lossDen == 0 || n.lossNum == 0 {
		return false
	}
	tick := n.lossTick
	n.lossTick++
	// Evenly spread: drop when the scaled counter crosses a unit boundary.
	drop := (tick*n.lossNum)/n.lossDen != ((tick+1)*n.lossNum)/n.lossDen
	if drop && n.m != nil {
		n.m.losses.Inc()
	}
	return drop
}

// Serve attaches h at addr. The returned stop function detaches it.
func (n *InProc) Serve(addr string, h Handler) (func(), error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.nodes[addr]; dup {
		return nil, fmt.Errorf("transport: inproc address %q in use", addr)
	}
	n.nodes[addr] = h
	return func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		delete(n.nodes, addr)
	}, nil
}

// Node returns a Caller whose calls originate from addr, so the connectivity
// oracle sees the correct link endpoints.
func (n *InProc) Node(addr string) Caller {
	return &inprocCaller{net: n, from: addr}
}

type inprocCaller struct {
	net  *InProc
	from string
}

// Call implements Caller.
func (c *inprocCaller) Call(ctx context.Context, to, method string, req, resp any) (err error) {
	c.net.mu.RLock()
	h, ok := c.net.nodes[to]
	linked := c.net.linked
	latency := c.net.latency
	fm := c.net.m
	c.net.mu.RUnlock()
	if fm != nil {
		fm.calls.Inc()
		start := time.Now() //lint:allow clockcheck (real RPC latency metric)
		defer func() { fm.finishCall(start, err) }()
	}
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnreachable, to)
	}
	if linked != nil && c.from != to && !linked(c.from, to) {
		return fmt.Errorf("%w: %s -> %s (out of range)", ErrUnreachable, c.from, to)
	}
	if c.net.dropCall() {
		return fmt.Errorf("%w: %s -> %s (message lost)", ErrUnreachable, c.from, to)
	}
	if latency > 0 {
		select {
		case <-time.After(latency): //lint:allow clockcheck (simulated link latency elapses in real time)
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	body, usedWire, err := EncodeBody(req, c.net.peerWire(to))
	if err != nil {
		return err
	}
	fm.countBody(usedWire)
	if fm != nil {
		fm.bytesOut.Add(uint64(len(body)))
	}
	out, herr := h.Handle(WithPeer(ctx, c.from), method, body)
	if herr != nil {
		rerr := NewRemoteError(method, herr.Error())
		if usedWire && errors.Is(rerr, ErrDecode) {
			// The peer could not decode a wire frame (an old binary):
			// remember it and retry this one call in gob. The request never
			// reached its handler, so the retry cannot double-apply.
			c.net.markLegacy(to)
			if fm != nil {
				fm.fallbacks.Inc()
			}
			return c.Call(ctx, to, method, req, resp)
		}
		return rerr
	}
	if fm != nil {
		fm.bytesIn.Add(uint64(len(out)))
	}
	if latency > 0 {
		select {
		case <-time.After(latency): //lint:allow clockcheck (simulated link latency elapses in real time)
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if resp == nil {
		return nil
	}
	return Decode(out, resp)
}
