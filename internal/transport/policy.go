package transport

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"strconv"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Policy is a retry/timeout/backoff policy for RPC calls over lossy mobile
// links: capped exponential backoff with jitter drawn from a seeded RNG (so
// simulated runs are reproducible), an optional per-attempt deadline, and an
// idempotency-aware retry predicate.
//
// Retries are only safe because the platform's wire surface tolerates
// re-delivery: installs of the same extension version refresh the existing
// lease, renewals of a live lease are absolute (expiry := now+d), and revokes
// of an already-withdrawn extension succeed. RetryTransient therefore retries
// only transport-level failures (unreachable, timeout) where the request may
// or may not have executed, and never application errors reported by the
// remote handler, which are deterministic and would just repeat.
type Policy struct {
	// MaxAttempts is the total number of attempts including the first
	// (default 4).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; zero retries
	// immediately (NewPolicy tunes it to 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff (default 2s).
	MaxDelay time.Duration
	// Multiplier grows the backoff between retries (default 2).
	Multiplier float64
	// Jitter spreads each backoff by ±Jitter fraction, drawn from the seeded
	// RNG (NewPolicy tunes it to 0.2). Zero jitter is valid; out-of-range
	// values reset to 0.2.
	Jitter float64
	// AttemptTimeout bounds each individual attempt (0 = only the caller's
	// context bounds the attempt).
	AttemptTimeout time.Duration
	// Clock times the backoff waits (default the real clock). Point it at a
	// manual clock to drive retries deterministically in simulation.
	Clock clock.Clock
	// RetryIf decides whether an error is worth retrying (default
	// RetryTransient).
	RetryIf func(error) bool

	mu     sync.Mutex
	rng    *rand.Rand
	tracer *trace.Tracer

	m policyMetrics
}

// policyMetrics counts retry traffic; nil-safe no-ops until Instrument.
type policyMetrics struct {
	retries   *metrics.Counter
	giveups   *metrics.Counter
	successes *metrics.Counter
	overloads *metrics.Counter
}

// NewPolicy returns a Policy with default tuning and jitter drawn from a RNG
// seeded with seed, so two runs with the same seed back off identically.
func NewPolicy(seed int64) *Policy {
	return &Policy{
		MaxAttempts: 4,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    2 * time.Second,
		Multiplier:  2,
		Jitter:      0.2,
		rng:         rand.New(rand.NewSource(seed)),
	}
}

// Instrument records retries, give-ups (retryable errors that exhausted the
// attempt budget) and retried calls that eventually succeeded in reg. A nil
// reg is a no-op.
func (p *Policy) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.m = policyMetrics{
		retries:   reg.Counter("transport.retries"),
		giveups:   reg.Counter("transport.retry_giveups"),
		successes: reg.Counter("transport.retry_successes"),
		overloads: reg.Counter("transport.retry_overloads"),
	}
}

// Trace makes callers wrapped by this policy open an "rpc.attempt" child
// span per attempt, so retries show up individually inside a traced call. A
// nil policy or nil tracer is a no-op.
func (p *Policy) Trace(tr *trace.Tracer) {
	if p == nil || tr == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tracer = tr
}

func (p *Policy) traceRef() *trace.Tracer {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tracer
}

// RetryTransient reports whether err is a transport-level failure worth
// retrying: no route to the destination, a timed-out attempt, or a network
// timeout. Remote application errors are not retried.
func RetryTransient(err error) bool {
	if err == nil {
		return false
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return false
	}
	var ne net.Error
	return errors.Is(err, ErrUnreachable) ||
		errors.Is(err, context.DeadlineExceeded) ||
		(errors.As(err, &ne) && ne.Timeout())
}

// Do runs op, retrying per the policy until it succeeds, the error is not
// retryable, ctx is done, or the attempt budget is exhausted. The last
// attempt's error is returned.
func (p *Policy) Do(ctx context.Context, op func(ctx context.Context) error) error {
	attempts := p.MaxAttempts
	if attempts <= 0 {
		attempts = 4
	}
	base := p.BaseDelay
	if base < 0 {
		base = 0
	}
	maxDelay := p.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 2 * time.Second
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	jitter := p.Jitter
	if jitter < 0 || jitter > 1 {
		jitter = 0.2
	}
	clk := p.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	retryIf := p.RetryIf
	if retryIf == nil {
		retryIf = RetryTransient
	}

	delay := base
	for attempt := 1; ; attempt++ {
		err := p.attempt(ctx, op)
		if err == nil {
			if attempt > 1 {
				p.m.successes.Inc()
			}
			return nil
		}
		// A load shed is always worth retrying — the server answered, it just
		// refused the work — but only on the server's schedule: the retry-after
		// hint replaces the local backoff verbatim, with no jitter, so a herd
		// of shed callers returns exactly when invited instead of hammering.
		hint, overloaded := RetryAfterHint(err)
		if (!overloaded && !retryIf(err)) || ctx.Err() != nil {
			return err
		}
		if attempt >= attempts {
			p.m.giveups.Inc()
			return err
		}
		// The jittered draw happens even when the hint overrides it, keeping
		// the seeded RNG sequence — and with it a simulated run — reproducible
		// whether or not a server shed along the way.
		wait := p.jittered(delay, jitter)
		if overloaded {
			p.m.overloads.Inc()
			if hint > 0 {
				wait = hint
			}
		}
		select {
		case <-ctx.Done():
			return err
		case <-clk.After(wait):
		}
		p.m.retries.Inc()
		delay = time.Duration(float64(delay) * mult)
		if delay > maxDelay {
			delay = maxDelay
		}
	}
}

func (p *Policy) attempt(ctx context.Context, op func(ctx context.Context) error) error {
	if p.AttemptTimeout > 0 {
		actx, cancel := context.WithTimeout(ctx, p.AttemptTimeout)
		defer cancel()
		return op(actx)
	}
	return op(ctx)
}

// jittered spreads d by ±frac using the seeded RNG. The RNG is consumed even
// for zero delays so the draw sequence — and with it a simulated run — stays
// reproducible regardless of tuning.
func (p *Policy) jittered(d time.Duration, frac float64) time.Duration {
	p.mu.Lock()
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(1))
	}
	u := p.rng.Float64()
	p.mu.Unlock()
	if d <= 0 || frac <= 0 {
		return d
	}
	scaled := float64(d) * (1 + frac*(2*u-1))
	if scaled < 0 {
		scaled = 0
	}
	return time.Duration(scaled)
}

// Wrap returns a Caller that routes every Call through the policy. A nil
// policy returns c unchanged, so callers can thread an optional policy
// unconditionally.
func (p *Policy) Wrap(c Caller) Caller {
	if p == nil {
		return c
	}
	return &retryCaller{pol: p, inner: c}
}

type retryCaller struct {
	pol   *Policy
	inner Caller
}

// Call implements Caller. With a tracer installed (Policy.Trace), each
// attempt — including the first — runs in its own "rpc.attempt" child span so
// retries are visible as siblings under the logical call.
func (r *retryCaller) Call(ctx context.Context, to, method string, req, resp any) error {
	tr := r.pol.traceRef()
	attempt := 0
	return r.pol.Do(ctx, func(ctx context.Context) error {
		attempt++
		actx, sp := tr.StartSpan(ctx, "rpc.attempt")
		sp.Tag("method", method)
		sp.Tag("to", to)
		sp.Tag("attempt", strconv.Itoa(attempt))
		err := r.inner.Call(actx, to, method, req, resp)
		sp.End(err)
		return err
	})
}
