package transport

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/metrics"
)

// flakyCaller fails while down, succeeds otherwise, and counts the calls that
// actually reach it.
type flakyCaller struct {
	down  bool
	calls int
}

func (f *flakyCaller) Call(ctx context.Context, to, method string, req, resp any) error {
	f.calls++
	if f.down {
		return fmt.Errorf("%w: %s", ErrUnreachable, to)
	}
	return nil
}

func TestBreakerOpensFastFailsAndRecloses(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	inner := &flakyCaller{down: true}
	reg := metrics.New()
	set := NewBreakerSet(1, BreakerConfig{Threshold: 3, Cooldown: 5 * time.Second, Jitter: 0, Clock: clk})
	set.Instrument(reg)
	c := set.Wrap(inner)
	ctx := context.Background()

	// Three consecutive transport failures trip the circuit.
	for i := 0; i < 3; i++ {
		if err := c.Call(ctx, "robot1", "m", nil, nil); !errors.Is(err, ErrUnreachable) {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if got := set.State("robot1"); got != BreakerOpen {
		t.Fatalf("state = %v after threshold failures, want open", got)
	}

	// While open, calls fast-fail without reaching the network.
	before := inner.calls
	for i := 0; i < 5; i++ {
		if err := c.Call(ctx, "robot1", "m", nil, nil); !errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("open circuit returned %v, want ErrBreakerOpen", err)
		}
	}
	if inner.calls != before {
		t.Fatalf("open circuit leaked %d calls to the network", inner.calls-before)
	}
	if got := reg.Snapshot().Counters["transport.breaker_fastfails"]; got != 5 {
		t.Fatalf("breaker_fastfails = %d, want 5", got)
	}
	// ErrBreakerOpen is not retryable: it must never consume retry budget.
	if RetryTransient(fmt.Errorf("%w: robot1", ErrBreakerOpen)) {
		t.Fatal("RetryTransient retries ErrBreakerOpen")
	}

	// After the cooldown one probe is admitted; it fails, re-opening.
	clk.Advance(5 * time.Second)
	if got := set.State("robot1"); got != BreakerHalfOpen {
		t.Fatalf("state = %v after cooldown, want half-open", got)
	}
	before = inner.calls
	if err := c.Call(ctx, "robot1", "m", nil, nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("probe returned %v", err)
	}
	if inner.calls != before+1 {
		t.Fatal("probe did not reach the network")
	}
	if got := set.State("robot1"); got != BreakerOpen {
		t.Fatalf("state = %v after failed probe, want open", got)
	}

	// Node comes back: the next probe succeeds and the circuit closes.
	inner.down = false
	clk.Advance(5 * time.Second)
	if err := c.Call(ctx, "robot1", "m", nil, nil); err != nil {
		t.Fatalf("probe after recovery: %v", err)
	}
	if got := set.State("robot1"); got != BreakerClosed {
		t.Fatalf("state = %v after successful probe, want closed", got)
	}
	snap := reg.Snapshot().Counters
	if snap["transport.breaker_opens"] != 1 || snap["transport.breaker_closes"] != 1 {
		t.Fatalf("opens/closes = %d/%d, want 1/1", snap["transport.breaker_opens"], snap["transport.breaker_closes"])
	}
	if snap["transport.breaker_probes"] != 2 {
		t.Fatalf("breaker_probes = %d, want 2", snap["transport.breaker_probes"])
	}
}

// TestBreakerIgnoresApplicationErrors: deterministic remote errors mean the
// node is reachable — they must never trip the circuit.
func TestBreakerIgnoresApplicationErrors(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	set := NewBreakerSet(1, BreakerConfig{Threshold: 2, Clock: clk})
	c := set.Wrap(callerFunc(func(ctx context.Context, to, method string, req, resp any) error {
		return NewRemoteError(method, "boom")
	}))
	for i := 0; i < 10; i++ {
		if err := c.Call(context.Background(), "robot1", "m", nil, nil); err == nil {
			t.Fatal("expected remote error")
		}
	}
	if got := set.State("robot1"); got != BreakerClosed {
		t.Fatalf("state = %v after remote application errors, want closed", got)
	}
}

// TestBreakerPerDestinationIsolation: one node's open circuit must not
// affect traffic to a healthy node.
func TestBreakerPerDestinationIsolation(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	set := NewBreakerSet(1, BreakerConfig{Threshold: 1, Clock: clk})
	c := set.Wrap(callerFunc(func(ctx context.Context, to, method string, req, resp any) error {
		if to == "dead" {
			return ErrUnreachable
		}
		return nil
	}))
	ctx := context.Background()
	_ = c.Call(ctx, "dead", "m", nil, nil)
	if got := set.State("dead"); got != BreakerOpen {
		t.Fatalf("dead state = %v, want open", got)
	}
	if err := c.Call(ctx, "alive", "m", nil, nil); err != nil {
		t.Fatalf("healthy destination blocked: %v", err)
	}
	if got := set.State("alive"); got != BreakerClosed {
		t.Fatalf("alive state = %v, want closed", got)
	}
	if sn := set.Snapshot(); len(sn) != 2 || sn[0].To != "alive" || sn[1].To != "dead" {
		t.Fatalf("snapshot = %+v", sn)
	}
}

// TestBreakerNilSafety: a nil set wraps to the bare caller and answers
// queries harmlessly, so components thread an optional breaker
// unconditionally.
func TestBreakerNilSafety(t *testing.T) {
	var set *BreakerSet
	inner := &flakyCaller{}
	if got := set.Wrap(inner); got != Caller(inner) {
		t.Fatal("nil set must return the caller unchanged")
	}
	if got := set.State("x"); got != BreakerClosed {
		t.Fatalf("nil set State = %v", got)
	}
	if got := set.Snapshot(); got != nil {
		t.Fatalf("nil set Snapshot = %v", got)
	}
	set.Instrument(metrics.New())
}
