package transport

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// A context canceled before the dial must fail immediately with the context
// error, not wait out the 2s dial timeout.
func TestTCPDialHonorsCanceledContext(t *testing.T) {
	caller := NewTCPCaller()
	defer caller.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	// DialContext refuses a dead context up front, so this must not wait out
	// the 2s DialTimeout no matter where the address routes.
	var resp string
	err := caller.Call(ctx, "192.0.2.1:9", "echo", "x", &resp)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if took := time.Since(start); took > time.Second {
		t.Fatalf("canceled dial took %v, want immediate", took)
	}
}

// slowMux answers only after a long handler sleep, unless released early.
type slowHandler struct{ release chan struct{} }

func (h *slowHandler) Handle(_ context.Context, method string, _ []byte) ([]byte, error) {
	select {
	case <-h.release:
	case <-time.After(30 * time.Second):
	}
	return Encode("late")
}

// Cancellation mid-round-trip unblocks the in-flight call promptly instead of
// hanging until the server answers.
func TestTCPCancelMidCallUnblocks(t *testing.T) {
	h := &slowHandler{release: make(chan struct{})}
	srv, err := ServeTCP("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer close(h.release) // before srv.Close, which waits for handlers

	caller := NewTCPCaller()
	defer caller.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		var resp string
		done <- caller.Call(ctx, srv.Addr(), "slow", "x", &resp)
	}()
	time.Sleep(50 * time.Millisecond) // let the request reach the server
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled call never returned")
	}
}

// A deadline expiring mid-round-trip surfaces context.DeadlineExceeded, which
// the retry policy treats as transient.
func TestTCPDeadlineMidCallIsTransient(t *testing.T) {
	h := &slowHandler{release: make(chan struct{})}
	var once sync.Once
	release := func() { once.Do(func() { close(h.release) }) }
	srv, err := ServeTCP("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer release() // before srv.Close, which waits for handlers

	caller := NewTCPCaller()
	defer caller.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	var resp string
	callErr := caller.Call(ctx, srv.Addr(), "slow", "x", &resp)
	if !errors.Is(callErr, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", callErr)
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("deadline call took %v", took)
	}
	if !RetryTransient(callErr) {
		t.Fatal("timed-out call should be retryable")
	}
	// The poisoned connection was dropped: a fresh call dials anew and works
	// once the handlers are released.
	release()
	var out string
	if err := caller.Call(context.Background(), srv.Addr(), "slow", "y", &out); err != nil {
		t.Fatalf("call after dropped conn: %v", err)
	}
	if out != "late" {
		t.Fatalf("out = %q", out)
	}
}

// The dial error for an unreachable host stays an ErrUnreachable (not a
// context error) when the context is still live.
func TestTCPUnreachableStillUnreachable(t *testing.T) {
	caller := NewTCPCaller()
	caller.DialTimeout = 200 * time.Millisecond
	defer caller.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens here now: connection refused
	var resp string
	callErr := caller.Call(context.Background(), addr, "echo", "x", &resp)
	if !errors.Is(callErr, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", callErr)
	}
}
