package transport

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// ErrOverloaded is the load-shedding sentinel: a server whose overload
// control plane (internal/overload) refuses a request answers with it instead
// of doing work. It is registered as a remote sentinel, so errors.Is holds
// whether the shed happened in-process or across any fabric, and it carries
// an optional retry-after hint as plain text in the error message — the one
// representation that survives both the wire and the legacy gob envelope,
// which transmit remote failures as strings.
//
// The rest of the transport layer treats sheds specially in two ways:
//   - Policy retries an overloaded call, but only after the hinted delay
//     (cooperative backpressure instead of hammering a struggling server).
//   - BreakerSet never counts a shed toward tripping a circuit: an
//     overloaded-but-healthy server answered, so the link is fine.
var ErrOverloaded = errors.New("transport: overloaded")

// retryAfterToken introduces the retry-after hint inside an overload error's
// text. The format is frozen — old peers relay the text verbatim and new
// peers parse it back out — and pinned by golden vectors in the tests.
const retryAfterToken = "retry-after-ms="

// Overloaded builds the error a shedding server returns. A positive
// retryAfter attaches the scheduling hint, rounded up to a whole millisecond
// so a sub-millisecond hint is never silently dropped; zero or negative
// returns the bare sentinel.
func Overloaded(retryAfter time.Duration) error {
	if retryAfter <= 0 {
		return ErrOverloaded
	}
	ms := (retryAfter + time.Millisecond - 1) / time.Millisecond
	return fmt.Errorf("%w; %s%d", ErrOverloaded, retryAfterToken, ms)
}

// RetryAfterHint reports whether err is a load shed (local or remote) and the
// server's retry-after hint, 0 when the shed carried none. The hint is parsed
// from the error text, so it round-trips through every envelope — including a
// legacy gob peer that only relayed the string.
func RetryAfterHint(err error) (time.Duration, bool) {
	if err == nil || !errors.Is(err, ErrOverloaded) {
		return 0, false
	}
	msg := err.Error()
	i := strings.Index(msg, retryAfterToken)
	if i < 0 {
		return 0, true
	}
	rest := msg[i+len(retryAfterToken):]
	var ms int64
	j := 0
	for j < len(rest) && rest[j] >= '0' && rest[j] <= '9' {
		d := int64(rest[j] - '0')
		if ms > (1<<62-d)/10 {
			return 0, true // absurd hint: treat as unhinted rather than overflow
		}
		ms = ms*10 + d
		j++
	}
	if j == 0 {
		return 0, true
	}
	return time.Duration(ms) * time.Millisecond, true
}
