package transport

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/metrics"
)

// failNCaller fails the first n calls with a transient error, then succeeds.
type failNCaller struct {
	n     int
	calls int
}

func (c *failNCaller) Call(ctx context.Context, to, method string, req, resp any) error {
	c.calls++
	if c.calls <= c.n {
		return fmt.Errorf("%w: %s", ErrUnreachable, to)
	}
	return nil
}

func testPolicy(seed int64, clk clock.Clock) *Policy {
	p := NewPolicy(seed)
	p.BaseDelay = 0 // no backoff wait: keeps manual-clock tests synchronous
	p.Clock = clk
	return p
}

func TestPolicyRetriesTransientThenSucceeds(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	reg := metrics.New()
	pol := testPolicy(1, clk)
	pol.MaxAttempts = 5
	pol.Instrument(reg)

	inner := &failNCaller{n: 3}
	if err := pol.Wrap(inner).Call(context.Background(), "x", "m", nil, nil); err != nil {
		t.Fatalf("wrapped call failed: %v", err)
	}
	if inner.calls != 4 {
		t.Fatalf("calls = %d, want 4 (3 failures + success)", inner.calls)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["transport.retries"]; got != 3 {
		t.Fatalf("transport.retries = %d, want 3", got)
	}
	if got := snap.Counters["transport.retry_successes"]; got != 1 {
		t.Fatalf("transport.retry_successes = %d, want 1", got)
	}
	if got := snap.Counters["transport.retry_giveups"]; got != 0 {
		t.Fatalf("transport.retry_giveups = %d, want 0", got)
	}
}

func TestPolicyGivesUpAfterMaxAttempts(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	reg := metrics.New()
	pol := testPolicy(1, clk)
	pol.MaxAttempts = 3
	pol.Instrument(reg)

	inner := &failNCaller{n: 100}
	err := pol.Wrap(inner).Call(context.Background(), "x", "m", nil, nil)
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
	if inner.calls != 3 {
		t.Fatalf("calls = %d, want 3", inner.calls)
	}
	if got := reg.Snapshot().Counters["transport.retry_giveups"]; got != 1 {
		t.Fatalf("transport.retry_giveups = %d, want 1", got)
	}
}

func TestPolicyDoesNotRetryRemoteErrors(t *testing.T) {
	pol := testPolicy(1, clock.NewManual(time.Unix(0, 0)))
	calls := 0
	err := pol.Do(context.Background(), func(context.Context) error {
		calls++
		return &RemoteError{Method: "m", Msg: "boom"}
	})
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (remote errors are deterministic)", calls)
	}
}

func TestPolicyStopsWhenContextDone(t *testing.T) {
	pol := testPolicy(1, clock.NewManual(time.Unix(0, 0)))
	pol.MaxAttempts = 10
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := pol.Do(ctx, func(context.Context) error {
		calls++
		cancel()
		return ErrUnreachable
	})
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want the op's error", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (no retries after cancel)", calls)
	}
}

func TestPolicyBacksOffOnFakeClock(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	pol := NewPolicy(7)
	pol.Clock = clk
	pol.Jitter = 0 // exact delays
	pol.BaseDelay = 100 * time.Millisecond
	pol.Multiplier = 2
	pol.MaxDelay = 300 * time.Millisecond
	pol.MaxAttempts = 4

	var stamps []time.Duration
	done := make(chan error, 1)
	go func() {
		done <- pol.Do(context.Background(), func(context.Context) error {
			stamps = append(stamps, clk.Now().Sub(time.Unix(0, 0)))
			return ErrUnreachable
		})
	}()

	// Attempts land at 0, 100ms, 300ms (100+200), 600ms (cap 300).
	for i := 0; i < 3; i++ {
		waitTimers(t, clk, 1)
		clk.Advance(300 * time.Millisecond)
	}
	if err := <-done; !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
	want := []time.Duration{0, 300 * time.Millisecond, 600 * time.Millisecond, 900 * time.Millisecond}
	// With 300ms advances the exact delays (100, 200, 300) are each rounded
	// up to the next advance, so attempts land on the advance boundaries.
	if len(stamps) != len(want) {
		t.Fatalf("attempts = %d, want %d (at %v)", len(stamps), len(want), stamps)
	}
}

// waitTimers blocks until the manual clock has at least n pending timers.
func waitTimers(t *testing.T, clk *clock.Manual, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for clk.PendingTimers() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %d pending timers", n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPolicyAttemptTimeout(t *testing.T) {
	pol := NewPolicy(1)
	pol.BaseDelay = 0
	pol.MaxAttempts = 2
	pol.AttemptTimeout = 10 * time.Millisecond
	calls := 0
	err := pol.Do(context.Background(), func(ctx context.Context) error {
		calls++
		<-ctx.Done() // each attempt gets its own deadline
		return ctx.Err()
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 (per-attempt timeouts are retryable)", calls)
	}
}

func TestPolicyJitterDeterministicPerSeed(t *testing.T) {
	draw := func(seed int64) []time.Duration {
		p := NewPolicy(seed)
		var out []time.Duration
		for i := 0; i < 8; i++ {
			out = append(out, p.jittered(100*time.Millisecond, 0.2))
		}
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: %v != %v for same seed", i, a[i], b[i])
		}
		if a[i] < 80*time.Millisecond || a[i] > 120*time.Millisecond {
			t.Fatalf("draw %d = %v outside ±20%% band", i, a[i])
		}
	}
}
