package transport

import "context"

// peerKey carries the calling peer's address in a server-side context.
type peerKey struct{}

// WithPeer stamps the calling peer's address into ctx. Every fabric stamps
// the addresses it knows — the in-proc and simnet fabrics their caller's node
// name, the TCP server the connection's remote address — so server-side
// middleware (per-peer token buckets in internal/overload) can attribute a
// request without the peer having to claim an identity in the payload.
func WithPeer(ctx context.Context, addr string) context.Context {
	if addr == "" {
		return ctx
	}
	return context.WithValue(ctx, peerKey{}, addr)
}

// Peer reports the address WithPeer stamped, "" for unattributed requests.
func Peer(ctx context.Context) string {
	addr, _ := ctx.Value(peerKey{}).(string)
	return addr
}
