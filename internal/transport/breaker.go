package transport

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// ErrBreakerOpen is returned without touching the network when the circuit
// to a destination is open. It is deliberately not an ErrUnreachable (and not
// a net.Error), so retry policies never burn attempts on it: the whole point
// of the breaker is that a persistently unreachable node stops consuming
// retry budget.
var ErrBreakerOpen = errors.New("transport: circuit open")

// BreakerState is one destination's circuit state.
type BreakerState int

// Circuit states. Closed passes traffic; Open fast-fails everything until the
// cooldown elapses; HalfOpen lets exactly one probe through.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String renders the state for status surfaces.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig tunes a BreakerSet.
type BreakerConfig struct {
	// Threshold is the number of consecutive counted failures that trips the
	// circuit (default 3).
	Threshold int
	// Cooldown is how long an open circuit fast-fails before admitting a
	// half-open probe (default 5s).
	Cooldown time.Duration
	// Jitter spreads each cooldown by ±Jitter fraction, drawn from the seeded
	// RNG so simulated runs replay identically (default 0.2; out-of-range
	// values reset to it). Zero disables jitter.
	Jitter float64
	// Clock times the cooldown (default the real clock). Point it at a manual
	// clock to drive the breaker deterministically in simulation.
	Clock clock.Clock
	// FailIf decides which errors count toward tripping (default
	// RetryTransient: transport-level failures only, so deterministic remote
	// application errors never open a circuit).
	FailIf func(error) bool
}

// BreakerStatus is a snapshot of one destination's circuit.
type BreakerStatus struct {
	To           string
	State        string
	Failures     int    // consecutive counted failures
	LastError    string // most recent counted failure
	OpenedMillis int64  // when the circuit last opened (0 = never)
}

// breaker is one destination's state. All fields are guarded by the set's mu.
type breaker struct {
	state     BreakerState
	failures  int
	openUntil time.Time
	openedAt  time.Time
	probing   bool // a half-open probe is in flight
	lastErr   string
}

// breakerMetrics counts circuit activity; nil-safe until Instrument.
type breakerMetrics struct {
	opens     *metrics.Counter
	closes    *metrics.Counter
	fastFails *metrics.Counter
	probes    *metrics.Counter
}

// BreakerSet holds one circuit breaker per destination address and wraps a
// Caller with them. A persistently unreachable node's circuit opens after
// Threshold consecutive transport failures; while open every call to it
// fast-fails locally with ErrBreakerOpen, and after a jittered cooldown a
// single probe is admitted — success closes the circuit, failure re-opens it.
// A nil *BreakerSet is a no-op (Wrap returns the caller unchanged), so
// components can thread an optional breaker unconditionally.
type BreakerSet struct {
	cfg BreakerConfig

	mu     sync.Mutex
	rng    *rand.Rand
	nodes  map[string]*breaker
	m      breakerMetrics
	tracer *trace.Tracer
}

// NewBreakerSet returns a BreakerSet with cooldown jitter drawn from a RNG
// seeded with seed, so two simulated runs with the same seed open and probe
// identically.
func NewBreakerSet(seed int64, cfg BreakerConfig) *BreakerSet {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 3
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 5 * time.Second
	}
	if cfg.Jitter < 0 || cfg.Jitter > 1 {
		cfg.Jitter = 0.2
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.FailIf == nil {
		cfg.FailIf = RetryTransient
	}
	return &BreakerSet{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(seed)),
		nodes: make(map[string]*breaker),
	}
}

// Instrument records circuit opens, closes, fast-failed calls and half-open
// probes in reg. A nil set or nil reg is a no-op.
func (s *BreakerSet) Instrument(reg *metrics.Registry) {
	if s == nil || reg == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m = breakerMetrics{
		opens:     reg.Counter("transport.breaker_opens"),
		closes:    reg.Counter("transport.breaker_closes"),
		fastFails: reg.Counter("transport.breaker_fastfails"),
		probes:    reg.Counter("transport.breaker_probes"),
	}
}

// Trace logs circuit transitions to tr's structured event ring under the
// "breaker" component. A nil set or nil tr is a no-op.
func (s *BreakerSet) Trace(tr *trace.Tracer) {
	if s == nil || tr == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tracer = tr
}

// State returns the circuit state for destination to (BreakerClosed for a
// destination never called). Nil-safe.
func (s *BreakerSet) State(to string) BreakerState {
	if s == nil {
		return BreakerClosed
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.nodes[to]
	if !ok {
		return BreakerClosed
	}
	return s.effectiveStateLocked(b)
}

// Snapshot returns the per-destination circuit status, sorted by address.
// Nil-safe.
func (s *BreakerSet) Snapshot() []BreakerStatus {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]BreakerStatus, 0, len(s.nodes))
	for to, b := range s.nodes {
		st := BreakerStatus{
			To:        to,
			State:     s.effectiveStateLocked(b).String(),
			Failures:  b.failures,
			LastError: b.lastErr,
		}
		if !b.openedAt.IsZero() {
			st.OpenedMillis = b.openedAt.UnixMilli()
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].To < out[j].To })
	return out
}

// effectiveStateLocked folds cooldown expiry into the stored state: an open
// circuit whose cooldown has elapsed reads as half-open (the next call is the
// probe).
func (s *BreakerSet) effectiveStateLocked(b *breaker) BreakerState {
	if b.state == BreakerOpen && !s.cfg.Clock.Now().Before(b.openUntil) {
		return BreakerHalfOpen
	}
	return b.state
}

// Wrap returns a Caller that routes every Call through the per-destination
// circuit. A nil set returns c unchanged.
func (s *BreakerSet) Wrap(c Caller) Caller {
	if s == nil {
		return c
	}
	return &breakerCaller{set: s, inner: c}
}

type breakerCaller struct {
	set   *BreakerSet
	inner Caller
}

// Call implements Caller.
func (bc *breakerCaller) Call(ctx context.Context, to, method string, req, resp any) error {
	s := bc.set
	probe, err := s.admit(to)
	if err != nil {
		return fmt.Errorf("%w: %s", err, to)
	}
	callErr := bc.inner.Call(ctx, to, method, req, resp)
	s.record(to, probe, callErr)
	return callErr
}

// admit decides whether a call to to may proceed. It returns probe=true when
// the call is the single half-open probe, or ErrBreakerOpen when the circuit
// fast-fails the call.
func (s *BreakerSet) admit(to string) (probe bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.nodes[to]
	if !ok {
		b = &breaker{}
		s.nodes[to] = b
	}
	switch s.effectiveStateLocked(b) {
	case BreakerClosed:
		return false, nil
	case BreakerHalfOpen:
		if b.probing {
			s.m.fastFails.Inc()
			return false, ErrBreakerOpen
		}
		b.state = BreakerHalfOpen
		b.probing = true
		s.m.probes.Inc()
		s.tracer.Eventf(nil, "breaker", "half-open probe to %s", to)
		return true, nil
	default: // open, cooling down
		s.m.fastFails.Inc()
		return false, ErrBreakerOpen
	}
}

// record feeds a call outcome back into the circuit. A load shed
// (ErrOverloaded) is never counted regardless of FailIf: the server answered,
// so the link is healthy, and parking an overloaded-but-working base as
// degraded would turn congestion into an outage.
func (s *BreakerSet) record(to string, probe bool, callErr error) {
	counted := callErr != nil && !errors.Is(callErr, ErrOverloaded) && s.cfg.FailIf(callErr)
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.nodes[to]
	if b == nil {
		return
	}
	if probe {
		b.probing = false
	}
	if !counted {
		if callErr == nil || probe {
			// Success (or a probe answered with a deterministic application
			// error: the node is reachable) closes the circuit and resets the
			// failure run.
			if b.state != BreakerClosed {
				s.m.closes.Inc()
				s.tracer.Eventf(nil, "breaker", "circuit to %s closed", to)
			}
			b.state = BreakerClosed
			b.failures = 0
			b.lastErr = ""
		}
		// A non-probe application error leaves the circuit as-is: the node
		// answered, so the link is fine and the failure run is not extended.
		return
	}
	b.failures++
	b.lastErr = callErr.Error()
	if probe || b.failures >= s.cfg.Threshold {
		s.openLocked(to, b)
	}
}

// openLocked trips (or re-arms) the circuit with a jittered cooldown.
func (s *BreakerSet) openLocked(to string, b *breaker) {
	now := s.cfg.Clock.Now()
	wasOpen := b.state == BreakerOpen || b.state == BreakerHalfOpen
	b.state = BreakerOpen
	b.openedAt = now
	b.openUntil = now.Add(s.jitteredCooldown())
	if !wasOpen {
		s.m.opens.Inc()
		s.tracer.Eventf(nil, "breaker", "circuit to %s opened after %d consecutive failures: %s", to, b.failures, b.lastErr)
	}
}

// jitteredCooldown spreads the cooldown by ±Jitter. The RNG is consumed even
// with zero jitter so the draw sequence — and with it a simulated run — stays
// reproducible regardless of tuning. Callers hold s.mu.
func (s *BreakerSet) jitteredCooldown() time.Duration {
	u := s.rng.Float64()
	d := s.cfg.Cooldown
	if s.cfg.Jitter <= 0 {
		return d
	}
	return time.Duration(float64(d) * (1 + s.cfg.Jitter*(2*u-1)))
}
