package transport

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/testutil"
	"repro/internal/wire"
)

// wireReq/wireResp carry wire codecs, so they ride the zero-reflection path;
// echoReq/echoResp (transport_test.go) have none and pin the gob-body path.
type wireReq struct {
	Msg string
	N   int64
}

func (r wireReq) MarshalWire(e *wire.Encoder) {
	e.String(r.Msg)
	e.Varint(r.N)
}

func (r *wireReq) UnmarshalWire(d *wire.Decoder) error {
	r.Msg = d.String()
	r.N = d.Varint()
	return d.Err()
}

type wireResp struct {
	Msg string
}

func (r wireResp) MarshalWire(e *wire.Encoder) { e.String(r.Msg) }

func (r *wireResp) UnmarshalWire(d *wire.Decoder) error {
	r.Msg = d.String()
	return d.Err()
}

func newWireEchoMux() *Mux {
	mux := NewMux()
	Register(mux, "wecho", func(_ context.Context, req wireReq) (wireResp, error) {
		out := ""
		for i := int64(0); i < req.N; i++ {
			out += req.Msg
		}
		return wireResp{Msg: out}, nil
	})
	return mux
}

func TestEncodeBodyPicksCodecPerType(t *testing.T) {
	data, usedWire, err := EncodeBody(wireReq{Msg: "x", N: 1}, true)
	if err != nil || !usedWire || !wire.IsFrame(data) {
		t.Fatalf("wire-capable type: usedWire=%v frame=%v err=%v", usedWire, wire.IsFrame(data), err)
	}
	data, usedWire, err = EncodeBody(echoReq{Msg: "x", N: 1}, true)
	if err != nil || usedWire || wire.IsFrame(data) {
		t.Fatalf("gob-only type: usedWire=%v frame=%v err=%v", usedWire, wire.IsFrame(data), err)
	}
	data, usedWire, err = EncodeBody(wireReq{Msg: "x", N: 1}, false)
	if err != nil || usedWire || wire.IsFrame(data) {
		t.Fatalf("wire disabled: usedWire=%v frame=%v err=%v", usedWire, wire.IsFrame(data), err)
	}
}

func TestDecodeDispatchesOnFrameHeader(t *testing.T) {
	in := wireReq{Msg: "hello", N: 42}
	for _, useWire := range []bool{true, false} {
		data, _, err := EncodeBody(in, useWire)
		if err != nil {
			t.Fatal(err)
		}
		var out wireReq
		if err := Decode(data, &out); err != nil {
			t.Fatalf("useWire=%v: %v", useWire, err)
		}
		if out != in {
			t.Fatalf("useWire=%v: got %+v want %+v", useWire, out, in)
		}
	}
	// A wire frame for a codec-less type errors with ErrDecode rather than
	// guessing.
	var eo echoReq
	if err := Decode(wire.Marshal(wireReq{}), &eo); !errors.Is(err, ErrDecode) {
		t.Fatalf("frame into codec-less type: %v", err)
	}
}

func TestInProcWireBodiesCounted(t *testing.T) {
	fabric := NewInProc()
	reg := metrics.New()
	fabric.Instrument(reg)
	stop, _ := fabric.Serve("b", newWireEchoMux())
	defer stop()
	resp, err := Invoke[wireReq, wireResp](context.Background(), fabric.Node("a"), "b", "wecho", wireReq{Msg: "ab", N: 2})
	if err != nil || resp.Msg != "abab" {
		t.Fatalf("resp=%q err=%v", resp.Msg, err)
	}
	if got := testutil.Counter(reg, "transport.wire_bodies"); got != 1 {
		t.Fatalf("wire_bodies = %d, want 1", got)
	}
	if got := testutil.Counter(reg, "transport.codec_fallbacks"); got != 0 {
		t.Fatalf("codec_fallbacks = %d, want 0", got)
	}
}

func TestInProcFallsBackToGobOnlyPeer(t *testing.T) {
	fabric := NewInProc()
	reg := metrics.New()
	fabric.Instrument(reg)
	legacyMux := newWireEchoMux()
	legacyMux.SetGobOnly(true)
	stop, _ := fabric.Serve("old", legacyMux)
	defer stop()
	caller := fabric.Node("base")
	for i := 0; i < 3; i++ {
		resp, err := Invoke[wireReq, wireResp](context.Background(), caller, "old", "wecho", wireReq{Msg: "x", N: 3})
		if err != nil || resp.Msg != "xxx" {
			t.Fatalf("call %d: resp=%q err=%v", i, resp.Msg, err)
		}
	}
	// One wire attempt, one remembered fallback, all later calls gob.
	if got := testutil.Counter(reg, "transport.codec_fallbacks"); got != 1 {
		t.Fatalf("codec_fallbacks = %d, want 1", got)
	}
	if got := testutil.Counter(reg, "transport.wire_bodies"); got != 1 {
		t.Fatalf("wire_bodies = %d, want 1", got)
	}
	if got := testutil.Counter(reg, "transport.gob_bodies"); got != 3 {
		t.Fatalf("gob_bodies = %d, want 3 (the fallback retry plus two remembered)", got)
	}
}

func TestTCPNegotiatesWireEnvelope(t *testing.T) {
	srv, err := ServeTCP("127.0.0.1:0", newWireEchoMux())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sreg := metrics.New()
	srv.Instrument(sreg)
	caller := NewTCPCaller()
	defer caller.Close()
	creg := metrics.New()
	caller.Instrument(creg)
	resp, err := Invoke[wireReq, wireResp](context.Background(), caller, srv.Addr(), "wecho", wireReq{Msg: "ab", N: 3})
	if err != nil || resp.Msg != "ababab" {
		t.Fatalf("resp=%q err=%v", resp.Msg, err)
	}
	if got := testutil.Counter(sreg, "transport.serve_wire_conns"); got != 1 {
		t.Fatalf("serve_wire_conns = %d, want 1", got)
	}
	if got := testutil.Counter(creg, "transport.wire_bodies"); got != 1 {
		t.Fatalf("wire_bodies = %d, want 1", got)
	}
}

func TestTCPFallsBackToLegacyServer(t *testing.T) {
	legacyMux := newWireEchoMux()
	legacyMux.SetGobOnly(true)
	srv, err := ServeTCPLegacy("127.0.0.1:0", legacyMux)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	caller := NewTCPCaller()
	caller.DialTimeout = time.Second
	defer caller.Close()
	reg := metrics.New()
	caller.Instrument(reg)
	for i := 0; i < 2; i++ {
		resp, err := Invoke[wireReq, wireResp](context.Background(), caller, srv.Addr(), "wecho", wireReq{Msg: "y", N: 2})
		if err != nil || resp.Msg != "yy" {
			t.Fatalf("call %d: resp=%q err=%v", i, resp.Msg, err)
		}
	}
	if got := testutil.Counter(reg, "transport.codec_fallbacks"); got != 1 {
		t.Fatalf("codec_fallbacks = %d, want 1", got)
	}
	if got := testutil.Counter(reg, "transport.wire_bodies"); got != 0 {
		t.Fatalf("wire_bodies = %d, want 0 (legacy peer remembered at dial)", got)
	}
}

func TestTCPServesLegacyGobClient(t *testing.T) {
	srv, err := ServeTCP("127.0.0.1:0", newWireEchoMux())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sreg := metrics.New()
	srv.Instrument(sreg)
	caller := NewTCPCaller()
	caller.DisableWire() // a client binary predating the codec
	defer caller.Close()
	resp, err := Invoke[wireReq, wireResp](context.Background(), caller, srv.Addr(), "wecho", wireReq{Msg: "z", N: 4})
	if err != nil || resp.Msg != "zzzz" {
		t.Fatalf("resp=%q err=%v", resp.Msg, err)
	}
	if got := testutil.Counter(sreg, "transport.serve_gob_conns"); got != 1 {
		t.Fatalf("serve_gob_conns = %d, want 1", got)
	}
}

// TestTCPWireEnvelopeLayout is the regression test pinning the frame layout:
// it speaks the protocol with raw socket reads and writes, byte for byte —
// preface, ack, then an envelope of (uvarint length, method, trace, body)
// where the body is one wire frame copied in verbatim. If any of this
// drifts, old nodes stop interoperating; change the codec version instead.
func TestTCPWireEnvelopeLayout(t *testing.T) {
	srv, err := ServeTCP("127.0.0.1:0", newWireEchoMux())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.DialTimeout("tcp", srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))

	// Preface and ack, as raw bytes.
	if _, err := conn.Write([]byte{0x00, 0xC6, wire.Version}); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	var ack [2]byte
	if _, err := io.ReadFull(br, ack[:]); err != nil {
		t.Fatal(err)
	}
	if ack != [2]byte{0xC6, wire.Version} {
		t.Fatalf("ack = %#v, want [0xC6, wire.Version]", ack)
	}

	// Request envelope, assembled by hand. The body is the wire frame for
	// wireReq{Msg:"ab", N:2} — and must appear in the envelope verbatim
	// (encoded exactly once; the double-gob these envelopes replaced put a
	// gob stream inside a gob stream here).
	body := wire.Marshal(wireReq{Msg: "ab", N: 2})
	e := wire.GetEncoder()
	e.String("wecho") // method
	e.String("")      // trace ID (absent)
	e.String("")      // span ID (absent)
	e.Bytes(body)
	payload := append([]byte{}, e.Data()...)
	wire.PutEncoder(e)
	if !bytes.Contains(payload, body) {
		t.Fatal("request body not embedded verbatim in the envelope")
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(payload)))
	if _, err := conn.Write(append(lenBuf[:n], payload...)); err != nil {
		t.Fatal(err)
	}

	// Response envelope: uvarint length, then errText string + body bytes,
	// the body again one verbatim wire frame.
	plen, err := binary.ReadUvarint(br)
	if err != nil {
		t.Fatal(err)
	}
	rpayload := make([]byte, plen)
	if _, err := io.ReadFull(br, rpayload); err != nil {
		t.Fatal(err)
	}
	d := wire.NewDecoder(rpayload)
	if errText := d.String(); errText != "" {
		t.Fatalf("remote error: %q", errText)
	}
	rbody := d.Bytes()
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	want := wire.Marshal(wireResp{Msg: "abab"})
	if !bytes.Equal(rbody, want) {
		t.Fatalf("response body drifted:\n got: % x\nwant: % x", rbody, want)
	}

	// Second request on the same connection, this time with the sampling
	// flags byte appended after the body — the envelope's optional trailing
	// field. New clients send it; the first request above pins that servers
	// still accept envelopes without it.
	e = wire.GetEncoder()
	e.String("wecho")
	e.String("") // trace ID
	e.String("") // span ID
	e.Bytes(body)
	e.Byte(0x03) // FlagSampleKnown | FlagSampled
	payload = append([]byte{}, e.Data()...)
	wire.PutEncoder(e)
	n = binary.PutUvarint(lenBuf[:], uint64(len(payload)))
	if _, err := conn.Write(append(lenBuf[:n], payload...)); err != nil {
		t.Fatal(err)
	}
	plen, err = binary.ReadUvarint(br)
	if err != nil {
		t.Fatal(err)
	}
	rpayload = make([]byte, plen)
	if _, err := io.ReadFull(br, rpayload); err != nil {
		t.Fatal(err)
	}
	d = wire.NewDecoder(rpayload)
	if errText := d.String(); errText != "" {
		t.Fatalf("flagged request remote error: %q", errText)
	}
	if !bytes.Equal(d.Bytes(), want) {
		t.Fatal("flagged request got a different response body")
	}
}

// TestWireResponseMirrorsRequestCodec pins the compatibility rule that old
// gob callers never receive wire bytes: the same handler answers a gob
// request in gob and a wire request in wire.
func TestWireResponseMirrorsRequestCodec(t *testing.T) {
	mux := newWireEchoMux()
	ctx := context.Background()
	gobBody, _, err := EncodeBody(wireReq{Msg: "a", N: 1}, false)
	if err != nil {
		t.Fatal(err)
	}
	out, err := mux.Handle(ctx, "wecho", gobBody)
	if err != nil {
		t.Fatal(err)
	}
	if wire.IsFrame(out) {
		t.Fatal("gob request got a wire response")
	}
	wireBody, _, err := EncodeBody(wireReq{Msg: "a", N: 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	out, err = mux.Handle(ctx, "wecho", wireBody)
	if err != nil {
		t.Fatal(err)
	}
	if !wire.IsFrame(out) {
		t.Fatal("wire request got a gob response")
	}
}
