// Package aop defines the aspect model of the platform: join points,
// crosscut signature patterns, advice and aspects. It mirrors the PROSE
// programming model in which aspects are first-class entities assembled from
// a crosscut (a signature pattern selecting join points) and a crosscut
// action (the advice body executed there).
package aop

import (
	"fmt"
	"strings"

	"repro/internal/lvm"
)

// Kind identifies the category of a join point.
type Kind uint8

// Join point kinds supported by the weaver, matching the stub sites PROSE
// plants during JIT compilation: method boundaries, field accesses and
// exception throws/handlers.
const (
	MethodEntry Kind = iota + 1
	MethodExit
	FieldGet
	FieldSet
	ExceptionThrow
	ExceptionHandler
)

var kindNames = map[Kind]string{
	MethodEntry:      "method-entry",
	MethodExit:       "method-exit",
	FieldGet:         "field-get",
	FieldSet:         "field-set",
	ExceptionThrow:   "exception-throw",
	ExceptionHandler: "exception-handler",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Signature describes a concrete method for pattern matching purposes.
type Signature struct {
	Class  string
	Method string
	Return string
	Params []string
}

// String renders "ret Class.Method(p1, p2)".
func (s Signature) String() string {
	return fmt.Sprintf("%s %s.%s(%s)", s.Return, s.Class, s.Method, strings.Join(s.Params, ", "))
}

// SignatureOf extracts the matchable signature from an LVM method.
func SignatureOf(m *lvm.Method) Signature {
	cls := ""
	if m.Class != nil {
		cls = m.Class.Name
	}
	return Signature{Class: cls, Method: m.Name, Return: m.Return, Params: m.Params}
}

// When says whether advice runs before or after the join point.
type When uint8

// Advice positions.
const (
	Before When = iota + 1
	After
)

// String implements fmt.Stringer.
func (w When) String() string {
	switch w {
	case Before:
		return "before"
	case After:
		return "after"
	default:
		return fmt.Sprintf("when(%d)", uint8(w))
	}
}

// Body is executed when a woven join point fires. Implementations include
// native Go functions (BodyFunc) and sandboxed LVM bytecode (see
// internal/core). Returning an error aborts the intercepted operation with an
// LVM exception — this is how, e.g., the access-control extension denies a
// call.
type Body interface {
	Exec(ctx *Context) error
}

// BodyFunc adapts a Go function to Body.
type BodyFunc func(ctx *Context) error

// Exec implements Body.
func (f BodyFunc) Exec(ctx *Context) error { return f(ctx) }

// Crosscut selects join points: a kind plus a signature pattern.
type Crosscut struct {
	Kind Kind
	Pat  *Pattern
}

// Cut builds a Crosscut from a pattern source string, panicking on a parse
// error. Use ParsePattern for untrusted input.
func Cut(kind Kind, pattern string) Crosscut {
	p, err := ParsePattern(pattern)
	if err != nil {
		panic(err)
	}
	return Crosscut{Kind: kind, Pat: p}
}

// Advice is one crosscut action of an aspect.
type Advice struct {
	Name string
	When When
	Cut  Crosscut
	Body Body
}

// Aspect is a first-class run-time extension: a named bundle of advice with
// lifecycle hooks. OnShutdown implements the paper's "each extension is
// notified before leaving a proactive space so that it can execute a
// shut-down procedure".
type Aspect struct {
	Name     string
	Priority int // lower runs first among matching advice
	Advices  []Advice

	OnActivate func() error
	OnShutdown func()
}

// Validate reports structural problems: empty name, advice without body or
// pattern.
func (a *Aspect) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("aop: aspect needs a name")
	}
	if len(a.Advices) == 0 {
		return fmt.Errorf("aop: aspect %q has no advice", a.Name)
	}
	for i, adv := range a.Advices {
		if adv.Body == nil {
			return fmt.Errorf("aop: aspect %q advice %d has no body", a.Name, i)
		}
		if adv.Cut.Pat == nil {
			return fmt.Errorf("aop: aspect %q advice %d has no crosscut pattern", a.Name, i)
		}
		if adv.When != Before && adv.When != After {
			return fmt.Errorf("aop: aspect %q advice %d has invalid position", a.Name, i)
		}
		switch adv.Cut.Kind {
		case MethodEntry, MethodExit, FieldGet, FieldSet, ExceptionThrow, ExceptionHandler:
		default:
			return fmt.Errorf("aop: aspect %q advice %d has invalid kind", a.Name, i)
		}
	}
	return nil
}
