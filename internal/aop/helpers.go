package aop

// Helper constructors covering the advice forms used throughout the paper.
// Field advice fires once per access — for FieldSet before the store (the new
// value is Args[0] and may be rewritten or vetoed), for FieldGet after the
// load (the value is Result and may be rewritten). Exception advice fires at
// the throw site or at handler entry.

// BeforeCall returns advice running at the entry of methods matching pattern.
func BeforeCall(pattern string, body Body) Advice {
	return Advice{When: Before, Cut: Cut(MethodEntry, pattern), Body: body}
}

// AfterCall returns advice running at the exit of methods matching pattern.
func AfterCall(pattern string, body Body) Advice {
	return Advice{When: After, Cut: Cut(MethodExit, pattern), Body: body}
}

// OnFieldSet returns advice running when a matching field is written.
func OnFieldSet(pattern string, body Body) Advice {
	return Advice{When: Before, Cut: Cut(FieldSet, pattern), Body: body}
}

// OnFieldGet returns advice running when a matching field is read.
func OnFieldGet(pattern string, body Body) Advice {
	return Advice{When: After, Cut: Cut(FieldGet, pattern), Body: body}
}

// OnThrow returns advice running when an exception is thrown inside methods
// matching pattern.
func OnThrow(pattern string, body Body) Advice {
	return Advice{When: Before, Cut: Cut(ExceptionThrow, pattern), Body: body}
}

// OnHandle returns advice running when an exception handler is entered inside
// methods matching pattern.
func OnHandle(pattern string, body Body) Advice {
	return Advice{When: Before, Cut: Cut(ExceptionHandler, pattern), Body: body}
}
