package aop

import (
	"fmt"
	"strings"
)

// Pattern is a compiled crosscut signature pattern in the style of the
// paper's example
//
//	before methods-with-signature 'void *.send*(byte[] x, ..)' do ...
//
// The textual forms accepted by ParsePattern are:
//
//	[ret] class.method(param, param, ..)   — method pattern
//	class.field                            — field pattern (no parentheses)
//
// Each component may contain '*' wildcards matching any (possibly empty)
// substring. A parameter list may end with '..' (the paper's REST marker),
// which matches any remaining parameters; the bare list '(..)' matches any
// parameter list. A method pattern without an explicit return type matches
// any return type.
type Pattern struct {
	Src    string
	Ret    string   // glob; "*" when unspecified
	Class  string   // glob
	Name   string   // glob: method or field name
	Params []string // globs for leading parameters
	Rest   bool     // ".." — any remaining parameters allowed
	Field  bool     // field pattern (no parameter list)
}

// ParsePattern compiles a textual signature pattern.
func ParsePattern(src string) (*Pattern, error) {
	s := strings.TrimSpace(src)
	if s == "" {
		return nil, fmt.Errorf("aop: empty pattern")
	}
	p := &Pattern{Src: src, Ret: "*"}

	open := strings.IndexByte(s, '(')
	if open < 0 {
		// Field pattern: class.field
		p.Field = true
		cls, name, err := splitQualified(s)
		if err != nil {
			return nil, fmt.Errorf("aop: pattern %q: %v", src, err)
		}
		p.Class, p.Name = cls, name
		return p, nil
	}
	if !strings.HasSuffix(s, ")") {
		return nil, fmt.Errorf("aop: pattern %q: missing ')'", src)
	}
	head := strings.TrimSpace(s[:open])
	paramSrc := strings.TrimSpace(s[open+1 : len(s)-1])

	// head is "[ret] class.method"
	if sp := strings.LastIndexAny(head, " \t"); sp >= 0 {
		p.Ret = strings.TrimSpace(head[:sp])
		head = strings.TrimSpace(head[sp+1:])
		if p.Ret == "" || strings.ContainsAny(p.Ret, " \t") {
			return nil, fmt.Errorf("aop: pattern %q: bad return type", src)
		}
	}
	cls, name, err := splitQualified(head)
	if err != nil {
		return nil, fmt.Errorf("aop: pattern %q: %v", src, err)
	}
	p.Class, p.Name = cls, name

	if paramSrc != "" {
		for _, part := range strings.Split(paramSrc, ",") {
			part = strings.TrimSpace(part)
			if part == ".." {
				p.Rest = true
				continue
			}
			if p.Rest {
				return nil, fmt.Errorf("aop: pattern %q: '..' must be last", src)
			}
			if part == "" {
				return nil, fmt.Errorf("aop: pattern %q: empty parameter", src)
			}
			// Parameters may carry a binding name ("bytes x"); only the type
			// participates in matching.
			typ := strings.Fields(part)[0]
			p.Params = append(p.Params, typ)
		}
	}
	return p, nil
}

// MustParsePattern is ParsePattern that panics on error.
func MustParsePattern(src string) *Pattern {
	p, err := ParsePattern(src)
	if err != nil {
		panic(err)
	}
	return p
}

func splitQualified(s string) (class, name string, err error) {
	dot := strings.LastIndexByte(s, '.')
	if dot <= 0 || dot == len(s)-1 {
		return "", "", fmt.Errorf("want class.name, got %q", s)
	}
	return s[:dot], s[dot+1:], nil
}

// MatchMethod reports whether the pattern selects the given method signature.
// Field patterns never match methods.
func (p *Pattern) MatchMethod(sig Signature) bool {
	if p.Field {
		return false
	}
	if !glob(p.Ret, sig.Return) || !glob(p.Class, sig.Class) || !glob(p.Name, sig.Method) {
		return false
	}
	if len(sig.Params) < len(p.Params) {
		return false
	}
	for i, pp := range p.Params {
		if !glob(pp, sig.Params[i]) {
			return false
		}
	}
	if len(sig.Params) > len(p.Params) && !p.Rest {
		return false
	}
	return true
}

// MatchField reports whether the pattern selects the given class/field pair.
// Method patterns never match fields.
func (p *Pattern) MatchField(class, field string) bool {
	if !p.Field {
		return false
	}
	return glob(p.Class, class) && glob(p.Name, field)
}

// String returns the original pattern source.
func (p *Pattern) String() string { return p.Src }

// glob matches s against a pattern containing '*' wildcards (any substring).
func glob(pattern, s string) bool {
	if pattern == "*" {
		return true
	}
	parts := strings.Split(pattern, "*")
	if len(parts) == 1 {
		return pattern == s
	}
	// Anchor the first and last fragments, greedily consume the middle ones.
	if !strings.HasPrefix(s, parts[0]) {
		return false
	}
	s = s[len(parts[0]):]
	last := parts[len(parts)-1]
	if !strings.HasSuffix(s, last) {
		return false
	}
	s = s[:len(s)-len(last)]
	for _, mid := range parts[1 : len(parts)-1] {
		if mid == "" {
			continue
		}
		idx := strings.Index(s, mid)
		if idx < 0 {
			return false
		}
		s = s[idx+len(mid):]
	}
	return true
}
