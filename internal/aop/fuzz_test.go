package aop

import (
	"testing"
	"testing/quick"
)

// TestParsePatternNeverPanics feeds arbitrary strings to the pattern parser:
// crosscut patterns arrive from the network inside extension descriptors, so
// the parser must fail gracefully on garbage.
func TestParsePatternNeverPanics(t *testing.T) {
	check := func(src string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("ParsePattern(%q) panicked: %v", src, r)
				ok = false
			}
		}()
		p, err := ParsePattern(src)
		if err == nil && p == nil {
			return false
		}
		return true
	}
	// Random strings.
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// Adversarial shapes.
	for _, src := range []string{
		"(", ")", "((", "))", "(.)", "..", "...", "*", "**", ".",
		"a.b(", "a.b)", "a.b(,,,)", "a.b(..,..)", " a . b ( .. ) ",
		"ret ret a.b()", "\x00.\x00()", "a.b(c", "void  *.*(..)",
	} {
		check(src)
	}
}

// TestParsedPatternsMatchSafely checks that any successfully parsed pattern
// can be matched against arbitrary signatures without panicking.
func TestParsedPatternsMatchSafely(t *testing.T) {
	if err := quick.Check(func(src, class, method, ret string, params []string) bool {
		p, err := ParsePattern(src)
		if err != nil {
			return true
		}
		sig := Signature{Class: class, Method: method, Return: ret, Params: params}
		_ = p.MatchMethod(sig)
		_ = p.MatchField(class, method)
		return true
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestCanonicalPatternsRoundTrip verifies that every pattern used in the
// documentation and built-in extensions parses and keeps its source.
func TestCanonicalPatternsRoundTrip(t *testing.T) {
	for _, src := range []string{
		"void *.send*(bytes, ..)",
		"*.*(..)",
		"Motor.*(..)",
		"Motor.rotate(int)",
		"Motor.pos",
		"*.pos",
		"int Math.sumTo(..)",
	} {
		p, err := ParsePattern(src)
		if err != nil {
			t.Errorf("%q: %v", src, err)
			continue
		}
		if p.String() != src {
			t.Errorf("String() = %q, want %q", p.String(), src)
		}
	}
}
