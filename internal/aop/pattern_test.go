package aop

import (
	"strings"
	"testing"
	"testing/quick"
)

func sig(class, method, ret string, params ...string) Signature {
	return Signature{Class: class, Method: method, Return: ret, Params: params}
}

func TestPatternMatchMethod(t *testing.T) {
	tests := []struct {
		pattern string
		sig     Signature
		want    bool
	}{
		// The paper's flagship example: void *.send*(byte[] x, ..)
		{"void *.send*(bytes, ..)", sig("Net", "sendPacket", "void", "bytes"), true},
		{"void *.send*(bytes, ..)", sig("Net", "sendPacket", "void", "bytes", "int"), true},
		{"void *.send*(bytes, ..)", sig("Net", "sendPacket", "void", "int"), false},
		{"void *.send*(bytes, ..)", sig("Net", "receive", "void", "bytes"), false},
		{"void *.send*(bytes, ..)", sig("Net", "sendPacket", "int", "bytes"), false},
		// Any-method patterns.
		{"*.*(..)", sig("Motor", "rotate", "void", "int"), true},
		{"Motor.*(..)", sig("Motor", "rotate", "void", "int"), true},
		{"Motor.*(..)", sig("Sensor", "read", "int"), false},
		// Exact parameter lists.
		{"int Math.add(int, int)", sig("Math", "add", "int", "int", "int"), true},
		{"int Math.add(int, int)", sig("Math", "add", "int", "int"), false},
		{"int Math.add(int, int)", sig("Math", "add", "int", "int", "int", "int"), false},
		// No-arg pattern: () matches only zero params.
		{"*.init()", sig("Counter", "init", "void"), true},
		{"*.init()", sig("Counter", "init", "void", "int"), false},
		// Bare (..) matches any arity.
		{"*.init(..)", sig("Counter", "init", "void", "int"), true},
		// Return type defaults to any.
		{"*.read(..)", sig("Sensor", "read", "int"), true},
		{"*.read(..)", sig("Sensor", "read", "bytes"), true},
		// Multiple wildcards in one component.
		{"*.*Arm*(..)", sig("Robot", "moveArmFast", "void"), true},
		{"*.*Arm*(..)", sig("Robot", "moveLeg", "void"), false},
		// Parameter with binding name (paper writes "byte[] x").
		{"void *.send*(bytes x, ..)", sig("Net", "send", "void", "bytes"), true},
		// Wildcard params.
		{"*.*(*, int)", sig("C", "m", "void", "str", "int"), true},
		{"*.*(*, int)", sig("C", "m", "void", "str", "bool"), false},
		// Field patterns never match methods.
		{"Motor.speed", sig("Motor", "speed", "int"), false},
	}
	for _, tt := range tests {
		t.Run(tt.pattern+"/"+tt.sig.String(), func(t *testing.T) {
			p, err := ParsePattern(tt.pattern)
			if err != nil {
				t.Fatal(err)
			}
			if got := p.MatchMethod(tt.sig); got != tt.want {
				t.Errorf("MatchMethod(%v) = %v, want %v", tt.sig, got, tt.want)
			}
		})
	}
}

func TestPatternMatchField(t *testing.T) {
	tests := []struct {
		pattern      string
		class, field string
		want         bool
	}{
		{"Motor.speed", "Motor", "speed", true},
		{"Motor.speed", "Motor", "power", false},
		{"Motor.*", "Motor", "power", true},
		{"*.state", "Robot", "state", true},
		{"*.*", "Anything", "whatever", true},
		{"Mot*.sp*", "Motor", "speed", true},
		// Method patterns never match fields.
		{"Motor.speed(..)", "Motor", "speed", false},
	}
	for _, tt := range tests {
		p, err := ParsePattern(tt.pattern)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.MatchField(tt.class, tt.field); got != tt.want {
			t.Errorf("%q.MatchField(%s, %s) = %v, want %v", tt.pattern, tt.class, tt.field, got, tt.want)
		}
	}
}

func TestParsePatternErrors(t *testing.T) {
	bad := []string{
		"",
		"noclassdot(..)",
		"Class.method(..",
		"void *.m(a, .., b)",
		"justaname",
		".leadingdot",
		"trailing.",
		"*.m(,)",
	}
	for _, src := range bad {
		if _, err := ParsePattern(src); err == nil {
			t.Errorf("ParsePattern(%q) should fail", src)
		}
	}
}

func TestGlobProperties(t *testing.T) {
	// A literal pattern matches only itself.
	if err := quick.Check(func(s string) bool {
		if strings.ContainsRune(s, '*') {
			return true
		}
		return glob(s, s)
	}, nil); err != nil {
		t.Error(err)
	}
	// prefix* matches prefix+anything.
	if err := quick.Check(func(prefix, rest string) bool {
		if strings.ContainsRune(prefix, '*') {
			return true
		}
		return glob(prefix+"*", prefix+rest)
	}, nil); err != nil {
		t.Error(err)
	}
	// *suffix matches anything+suffix.
	if err := quick.Check(func(rest, suffix string) bool {
		if strings.ContainsRune(suffix, '*') {
			return true
		}
		return glob("*"+suffix, rest+suffix)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestAspectValidate(t *testing.T) {
	body := BodyFunc(func(ctx *Context) error { return nil })
	valid := &Aspect{
		Name:    "log",
		Advices: []Advice{BeforeCall("*.*(..)", body)},
	}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid aspect rejected: %v", err)
	}
	cases := []*Aspect{
		{Name: "", Advices: []Advice{BeforeCall("*.*(..)", body)}},
		{Name: "empty"},
		{Name: "nobody", Advices: []Advice{{When: Before, Cut: Cut(MethodEntry, "*.*(..)")}}},
		{Name: "nopattern", Advices: []Advice{{When: Before, Cut: Crosscut{Kind: MethodEntry}, Body: body}}},
		{Name: "badwhen", Advices: []Advice{{Cut: Cut(MethodEntry, "*.*(..)"), Body: body}}},
		{Name: "badkind", Advices: []Advice{{When: Before, Cut: Crosscut{Kind: 0, Pat: MustParsePattern("*.*(..)")}, Body: body}}},
	}
	for _, a := range cases {
		if err := a.Validate(); err == nil {
			t.Errorf("aspect %q should be invalid", a.Name)
		}
	}
}

func TestKindAndWhenStrings(t *testing.T) {
	if MethodEntry.String() != "method-entry" || FieldSet.String() != "field-set" {
		t.Error("Kind.String mismatch")
	}
	if Before.String() != "before" || After.String() != "after" {
		t.Error("When.String mismatch")
	}
	if !strings.HasPrefix(Kind(99).String(), "kind(") {
		t.Error("unknown kind should render numerically")
	}
}
