package aop

import (
	"fmt"

	"repro/internal/lvm"
)

// Context carries the run-time state of a fired join point into advice
// bodies. A single Context flows through the before-advice chain, the
// intercepted operation and the after-advice chain, so advice can
// communicate — the session-management extension, for instance, stores the
// caller identity in Meta where the access-control extension reads it.
type Context struct {
	Kind  Kind
	Sig   Signature
	Field string // field name for field join points

	Self   *lvm.Object
	Args   []lvm.Value
	Result lvm.Value
	ErrMsg string // exception message at throw/handler join points

	// Meta holds cross-extension session state. It is lazily allocated.
	Meta map[string]lvm.Value

	// attachments carries native Go values between advice executions on the
	// same context (e.g. an open transaction between entry and exit advice).
	attachments map[string]any

	abort error
}

// Abort vetoes the intercepted operation: the call (or field access) is not
// performed and the caller observes an LVM exception with the given message.
// This is the mechanism behind "if the access is denied, the execution is
// ended with an exception" (§4.6).
func (c *Context) Abort(msg string) {
	if c.abort == nil {
		c.abort = &lvm.Thrown{Msg: msg}
	}
}

// Abortf is Abort with formatting.
func (c *Context) Abortf(format string, args ...any) {
	c.Abort(fmt.Sprintf(format, args...))
}

// Aborted returns the pending veto error, or nil.
func (c *Context) Aborted() error { return c.abort }

// ClearAbort removes a pending veto (used by the weaver between dispatches).
func (c *Context) ClearAbort() { c.abort = nil }

// Arg returns argument i, or nil when out of range.
func (c *Context) Arg(i int) lvm.Value {
	if i < 0 || i >= len(c.Args) {
		return lvm.Nil()
	}
	return c.Args[i]
}

// SetArg replaces argument i if it exists; advice such as the encryption
// extension uses this to rewrite outgoing payloads in place.
func (c *Context) SetArg(i int, v lvm.Value) {
	if i >= 0 && i < len(c.Args) {
		c.Args[i] = v
	}
}

// SetResult overrides the value the intercepted call returns; only
// meaningful in After advice at MethodExit, or when combined with Abort
// semantics is ignored.
func (c *Context) SetResult(v lvm.Value) { c.Result = v }

// Put stores a cross-extension metadata value.
func (c *Context) Put(key string, v lvm.Value) {
	if c.Meta == nil {
		c.Meta = make(map[string]lvm.Value, 4)
	}
	c.Meta[key] = v
}

// Get loads a cross-extension metadata value.
func (c *Context) Get(key string) (lvm.Value, bool) {
	v, ok := c.Meta[key]
	return v, ok
}

// Attach stores a native Go value on the context (for advice pairs that need
// state across entry and exit, like a transaction handle).
func (c *Context) Attach(key string, v any) {
	if c.attachments == nil {
		c.attachments = make(map[string]any, 2)
	}
	c.attachments[key] = v
}

// Attachment loads a native Go value stored with Attach.
func (c *Context) Attachment(key string) (any, bool) {
	v, ok := c.attachments[key]
	return v, ok
}

// Detach removes an attachment.
func (c *Context) Detach(key string) {
	delete(c.attachments, key)
}

// Reset clears the context for reuse from a pool.
func (c *Context) Reset() {
	*c = Context{}
}
