package aop

import "testing"

// FuzzParsePattern is the native-fuzzing counterpart of
// TestParsePatternNeverPanics: crosscut patterns arrive from the network
// inside extension descriptors, so the parser must reject garbage with
// errors, never panics, and accepted patterns must match safely.
func FuzzParsePattern(f *testing.F) {
	for _, seed := range []string{
		"void *.send*(bytes, ..)",
		"*.*(..)",
		"Motor.*(..)",
		"Motor.rotate(int)",
		"Motor.pos",
		"int Math.sumTo(..)",
		"(", ")", "..", "...", "*", "**", ".",
		"a.b(,,,)", " a . b ( .. ) ", "\x00.\x00()",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ParsePattern(src)
		if err != nil {
			return
		}
		if p == nil {
			t.Fatalf("ParsePattern(%q): nil pattern without error", src)
		}
		sig := Signature{Class: "Motor", Method: "rotate", Return: "void", Params: []string{"int"}}
		_ = p.MatchMethod(sig)
		_ = p.MatchField("Motor", "pos")
		// A pattern must reproduce its canonical source, and that source
		// must parse again (String/Parse round trip).
		if _, err := ParsePattern(p.String()); err != nil {
			t.Fatalf("round trip of %q via %q: %v", src, p.String(), err)
		}
	})
}
