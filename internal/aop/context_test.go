package aop

import (
	"testing"

	"repro/internal/lvm"
)

func TestContextAbort(t *testing.T) {
	var c Context
	if c.Aborted() != nil {
		t.Fatal("fresh context should not be aborted")
	}
	c.Abort("denied")
	err := c.Aborted()
	if err == nil {
		t.Fatal("want abort error")
	}
	thrown, ok := err.(*lvm.Thrown)
	if !ok || thrown.Msg != "denied" {
		t.Fatalf("got %v", err)
	}
	// First abort wins.
	c.Abort("second")
	if c.Aborted().(*lvm.Thrown).Msg != "denied" {
		t.Error("second abort should not override first")
	}
	c.ClearAbort()
	if c.Aborted() != nil {
		t.Error("ClearAbort should reset")
	}
	c.Abortf("no access for %s", "bob")
	if c.Aborted().(*lvm.Thrown).Msg != "no access for bob" {
		t.Error("Abortf formatting broken")
	}
}

func TestContextArgs(t *testing.T) {
	c := Context{Args: []lvm.Value{lvm.Int(1), lvm.Str("x")}}
	if c.Arg(0).I != 1 || c.Arg(1).S != "x" {
		t.Error("Arg lookup broken")
	}
	if c.Arg(-1).K != lvm.KNil || c.Arg(5).K != lvm.KNil {
		t.Error("out-of-range Arg should be nil")
	}
	c.SetArg(0, lvm.Int(42))
	if c.Arg(0).I != 42 {
		t.Error("SetArg broken")
	}
	c.SetArg(9, lvm.Int(1)) // silently ignored
	if len(c.Args) != 2 {
		t.Error("SetArg out of range must not grow args")
	}
}

func TestContextMeta(t *testing.T) {
	var c Context
	if _, ok := c.Get("caller"); ok {
		t.Error("empty meta should miss")
	}
	c.Put("caller", lvm.Str("alice"))
	v, ok := c.Get("caller")
	if !ok || v.S != "alice" {
		t.Error("meta roundtrip broken")
	}
	c.Reset()
	if _, ok := c.Get("caller"); ok {
		t.Error("Reset should clear meta")
	}
}

func TestSignatureOf(t *testing.T) {
	prog := lvm.MustAssemble(`
class Motor
  method void rotate(int deg)
    retv
  end
end`)
	got := SignatureOf(prog.Method("Motor", "rotate"))
	want := Signature{Class: "Motor", Method: "rotate", Return: "void", Params: []string{"int"}}
	if got.Class != want.Class || got.Method != want.Method || got.Return != want.Return ||
		len(got.Params) != 1 || got.Params[0] != "int" {
		t.Errorf("SignatureOf = %v, want %v", got, want)
	}
	if got.String() != "void Motor.rotate(int)" {
		t.Errorf("String = %q", got.String())
	}
}
