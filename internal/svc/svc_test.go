package svc

import (
	"strings"
	"testing"

	"repro/internal/aop"
	"repro/internal/lvm"
	"repro/internal/transport"
	"repro/internal/weave"
)

func newEchoRegistry(w *weave.Weaver) *Registry {
	r := NewRegistry(w)
	r.Register("Robot", "moveArm", []string{"int"}, "int", func(args []lvm.Value) (lvm.Value, error) {
		return lvm.Int(args[0].I * 2), nil
	})
	return r
}

func TestLocalInvoke(t *testing.T) {
	r := newEchoRegistry(weave.New())
	v, err := r.Invoke("Robot", "moveArm", "alice", []lvm.Value{lvm.Int(21)})
	if err != nil || v.I != 42 {
		t.Fatalf("Invoke = %v, %v", v, err)
	}
	if _, err := r.Invoke("Robot", "fly", "alice", nil); err == nil {
		t.Fatal("unknown method should fail")
	}
	if _, err := r.Invoke("Nope", "moveArm", "alice", nil); err == nil {
		t.Fatal("unknown service should fail")
	}
}

func TestCallerMetadataReachesAdvice(t *testing.T) {
	w := weave.New()
	r := newEchoRegistry(w)
	var seen []string
	a := &aop.Aspect{Name: "session", Advices: []aop.Advice{
		aop.BeforeCall("Robot.*(..)", aop.BodyFunc(func(ctx *aop.Context) error {
			if v, ok := ctx.Get(MetaCaller); ok {
				seen = append(seen, v.S)
			}
			return nil
		})),
	}}
	if err := w.Insert(a); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Invoke("Robot", "moveArm", "alice", []lvm.Value{lvm.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || seen[0] != "alice" {
		t.Errorf("seen = %v", seen)
	}
}

func TestRemoteInvokeThroughFabric(t *testing.T) {
	w := weave.New()
	r := newEchoRegistry(w)
	mux := transport.NewMux()
	r.ServeOn(mux)
	fabric := transport.NewInProc()
	stop, err := fabric.Serve("robot1", mux)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	v, err := Call(fabric.Node("client"), "robot1", "Robot", "moveArm", "bob", lvm.Int(5))
	if err != nil || v.I != 10 {
		t.Fatalf("Call = %v, %v", v, err)
	}
}

func TestVetoPropagatesToRemoteCaller(t *testing.T) {
	w := weave.New()
	r := newEchoRegistry(w)
	deny := &aop.Aspect{Name: "deny", Advices: []aop.Advice{
		aop.BeforeCall("Robot.*(..)", aop.BodyFunc(func(ctx *aop.Context) error {
			if v, _ := ctx.Get(MetaCaller); v.S == "mallory" {
				ctx.Abort("access denied")
			}
			return nil
		})),
	}}
	if err := w.Insert(deny); err != nil {
		t.Fatal(err)
	}
	mux := transport.NewMux()
	r.ServeOn(mux)
	fabric := transport.NewInProc()
	stop, _ := fabric.Serve("robot1", mux)
	defer stop()

	if _, err := Call(fabric.Node("c"), "robot1", "Robot", "moveArm", "alice", lvm.Int(1)); err != nil {
		t.Fatalf("alice should pass: %v", err)
	}
	_, err := Call(fabric.Node("c"), "robot1", "Robot", "moveArm", "mallory", lvm.Int(1))
	if err == nil || !strings.Contains(err.Error(), "access denied") {
		t.Fatalf("mallory should be denied, got %v", err)
	}
}
