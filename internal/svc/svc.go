// Package svc exposes a node's application methods as remote services whose
// invocations flow through the weaver's hook sites — this is the adapted
// remote method call of Fig. 2: the transport delivers the request, the
// session extension extracts the caller identity at the entry interception,
// the access-control extension decides whether execution proceeds, the method
// runs (its state changes visible to field-level extensions), and exit
// interceptions see the result before it returns to the caller.
package svc

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/aop"
	"repro/internal/lvm"
	"repro/internal/transport"
	"repro/internal/weave"
)

// MethodInvoke is the RPC method name for service invocation.
const MethodInvoke = "svc.invoke"

// MetaCaller is the context metadata key under which the transport layer
// exposes the remote caller's identity; the session extension republishes it
// as "session.caller".
const MetaCaller = "rpc.caller"

// InvokeReq is a remote service invocation. Args are restricted to scalar
// LVM values (int, bool, str, bytes).
type InvokeReq struct {
	Service string
	Method  string
	Caller  string
	Args    []lvm.Value
}

// InvokeResp carries the result value.
type InvokeResp struct {
	Result lvm.Value
}

// Handler implements one service method natively.
type Handler func(args []lvm.Value) (lvm.Value, error)

type method struct {
	hooks *weave.MethodHooks
	fn    Handler
}

// Registry holds the services of one node.
type Registry struct {
	weaver *weave.Weaver

	mu       sync.Mutex
	services map[string]map[string]*method
}

// NewRegistry returns an empty service registry over the node's weaver.
func NewRegistry(weaver *weave.Weaver) *Registry {
	return &Registry{weaver: weaver, services: make(map[string]map[string]*method)}
}

// Register exposes fn as service.method with the given declared signature
// (used by crosscut patterns). Registering twice overwrites.
func (r *Registry) Register(service, methodName string, params []string, ret string, fn Handler) {
	sig := aop.Signature{Class: service, Method: methodName, Return: ret, Params: params}
	m := &method{hooks: r.weaver.HookMethod(sig), fn: fn}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.services[service] == nil {
		r.services[service] = make(map[string]*method)
	}
	r.services[service][methodName] = m
}

// Invoke runs a service method locally through the woven hooks.
func (r *Registry) Invoke(service, methodName, caller string, args []lvm.Value) (lvm.Value, error) {
	r.mu.Lock()
	var m *method
	if svcMap, ok := r.services[service]; ok {
		m = svcMap[methodName]
	}
	r.mu.Unlock()
	if m == nil {
		return lvm.Nil(), fmt.Errorf("svc: no method %s.%s", service, methodName)
	}
	var meta map[string]lvm.Value
	if caller != "" {
		meta = map[string]lvm.Value{MetaCaller: lvm.Str(caller)}
	}
	return m.hooks.InvokeWithMeta(nil, args, meta, m.fn)
}

// ServeOn registers the invocation endpoint on mux.
func (r *Registry) ServeOn(mux *transport.Mux) {
	transport.Register(mux, MethodInvoke, func(_ context.Context, req InvokeReq) (InvokeResp, error) {
		v, err := r.Invoke(req.Service, req.Method, req.Caller, req.Args)
		if err != nil {
			return InvokeResp{}, err
		}
		return InvokeResp{Result: v}, nil
	})
}

// Call invokes a remote service method at addr on behalf of caller.
func Call(c transport.Caller, addr, service, methodName, caller string, args ...lvm.Value) (lvm.Value, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	resp, err := transport.Invoke[InvokeReq, InvokeResp](ctx, c, addr, MethodInvoke, InvokeReq{
		Service: service,
		Method:  methodName,
		Caller:  caller,
		Args:    args,
	})
	if err != nil {
		return lvm.Nil(), err
	}
	return resp.Result, nil
}
