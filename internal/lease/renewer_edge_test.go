package lease

import (
	"errors"
	"testing"
	"time"

	"repro/internal/clock"
)

// waitManualTimers blocks until the manual clock has at least n armed timers,
// i.e. the renewer goroutine has reached its next wait.
func waitManualTimers(t *testing.T, clk *clock.Manual, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for clk.PendingTimers() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %d pending timers (have %d)", n, clk.PendingTimers())
		}
		time.Sleep(time.Millisecond)
	}
}

// A renewal arriving exactly at the expiry instant is still valid: the lease
// lapses only strictly after its expiry.
func TestRenewExactlyAtExpiry(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	g := NewGrantor(clk)
	l := g.Grant(10*time.Second, nil)

	clk.Advance(10 * time.Second) // now == expiry, not past it
	renewed, err := g.Renew(l.ID, 10*time.Second)
	if err != nil {
		t.Fatalf("renew exactly at expiry: %v", err)
	}
	if want := time.Unix(20, 0); !renewed.Expiry.Equal(want) {
		t.Fatalf("new expiry %v, want %v", renewed.Expiry, want)
	}

	clk.Advance(10*time.Second + time.Nanosecond) // now strictly past expiry
	if _, err := g.Renew(l.ID, 10*time.Second); !errors.Is(err, ErrExpired) {
		t.Fatalf("renew past expiry: %v, want ErrExpired", err)
	}
}

// A grantor may return a shorter lease than requested; the renewer must
// adopt it and renew on the shorter period, or the lease lapses between
// renewals.
func TestRenewerAdoptsShorterLease(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	calls := make(chan time.Time, 8)
	renew := func(id ID, d time.Duration) (Lease, error) {
		calls <- clk.Now()
		// Grant only 4s of the requested 10s.
		return Lease{ID: id, Duration: 4 * time.Second}, nil
	}
	r := NewRenewer(clk, Lease{ID: "l", Duration: 10 * time.Second}, renew, 0.5, nil)
	r.Start()
	defer r.Stop()

	waitManualTimers(t, clk, 1)
	clk.Advance(5 * time.Second) // half of the original 10s
	if at := <-calls; !at.Equal(time.Unix(5, 0)) {
		t.Fatalf("first renewal at %v, want t=5s", at)
	}

	waitManualTimers(t, clk, 1)
	clk.Advance(2 * time.Second) // half of the *granted* 4s, not 5s
	select {
	case at := <-calls:
		if !at.Equal(time.Unix(7, 0)) {
			t.Fatalf("second renewal at %v, want t=7s (shorter lease adopted)", at)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("renewer kept the requested duration instead of the granted one")
	}
}

// Stopping the renewer while it is waiting between in-lease retries is a
// deliberate halt and must not fire the failure callback (which would make a
// base declare a node departed during an orderly release).
func TestRenewerStopDuringInFlightRetryDoesNotFail(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	attempts := make(chan struct{}, 8)
	renew := func(ID, time.Duration) (Lease, error) {
		attempts <- struct{}{}
		return Lease{}, ErrUnknownLease
	}
	failed := make(chan error, 1)
	r := NewRenewer(clk, Lease{ID: "l", Duration: 10 * time.Second}, renew, 0.5, func(err error) { failed <- err })
	r.SetRetries(3)
	r.Start()

	waitManualTimers(t, clk, 1)
	clk.Advance(5 * time.Second)
	<-attempts                  // first renewal failed
	waitManualTimers(t, clk, 1) // renewer is now waiting out the retry gap
	r.Stop()                    // cancel mid-retry

	select {
	case err := <-failed:
		t.Fatalf("failure callback fired on deliberate stop: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
}

// Exhausting the in-lease retries still reports failure exactly once, with
// every retry spaced inside the remaining lease time.
func TestRenewerRetriesExhaustedReportsOnce(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	attempts := make(chan time.Time, 8)
	renew := func(ID, time.Duration) (Lease, error) {
		attempts <- clk.Now()
		return Lease{}, ErrUnknownLease
	}
	failed := make(chan error, 2)
	r := NewRenewer(clk, Lease{ID: "l", Duration: 8 * time.Second}, renew, 0.5, func(err error) { failed <- err })
	r.SetRetries(2)
	r.Start()
	defer r.Stop()

	waitManualTimers(t, clk, 1)
	clk.Advance(4 * time.Second)
	first := <-attempts // initial renewal at t=4s
	if !first.Equal(time.Unix(4, 0)) {
		t.Fatalf("first attempt at %v", first)
	}
	// Slack is 4s, 2 retries → gap 4s/3.
	for i := 0; i < 2; i++ {
		waitManualTimers(t, clk, 1)
		clk.Advance(4 * time.Second / 3)
		at := <-attempts
		if !at.Before(time.Unix(8, 0).Add(time.Second)) {
			t.Fatalf("retry %d at %v, outside the lease", i+1, at)
		}
	}
	select {
	case err := <-failed:
		if !errors.Is(err, ErrUnknownLease) {
			t.Fatalf("failure err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("renewer never reported failure")
	}
	select {
	case err := <-failed:
		t.Fatalf("failure reported twice: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
}
