package lease

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
)

func TestGrantRenewExpire(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	g := NewGrantor(clk)

	expired := make(chan ID, 1)
	l := g.Grant(10*time.Second, func(id ID) { expired <- id })
	if !g.Active(l.ID) {
		t.Fatal("fresh lease should be active")
	}

	clk.Advance(5 * time.Second)
	if _, err := g.Renew(l.ID, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	clk.Advance(8 * time.Second)
	if n := g.ExpireNow(); n != 0 {
		t.Fatalf("renewed lease expired early (%d)", n)
	}
	clk.Advance(3 * time.Second)
	if n := g.ExpireNow(); n != 1 {
		t.Fatalf("expired %d leases, want 1", n)
	}
	select {
	case id := <-expired:
		if id != l.ID {
			t.Errorf("expired id %s, want %s", id, l.ID)
		}
	default:
		t.Fatal("expiry callback did not run")
	}
	if g.Active(l.ID) {
		t.Error("expired lease should be inactive")
	}
}

func TestRenewExpiredFails(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	g := NewGrantor(clk)
	l := g.Grant(time.Second, nil)
	clk.Advance(2 * time.Second)
	if _, err := g.Renew(l.ID, time.Second); !errors.Is(err, ErrExpired) {
		t.Fatalf("want ErrExpired, got %v", err)
	}
}

func TestCancelSkipsCallback(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	g := NewGrantor(clk)
	called := false
	l := g.Grant(time.Second, func(ID) { called = true })
	if err := g.Cancel(l.ID); err != nil {
		t.Fatal(err)
	}
	clk.Advance(5 * time.Second)
	g.ExpireNow()
	if called {
		t.Error("cancel must not fire expiry callback")
	}
	if err := g.Cancel(l.ID); !errors.Is(err, ErrUnknownLease) {
		t.Errorf("double cancel: %v", err)
	}
	if _, err := g.Renew(l.ID, time.Second); !errors.Is(err, ErrUnknownLease) {
		t.Errorf("renew after cancel: %v", err)
	}
}

func TestGrantorSweeper(t *testing.T) {
	g := NewGrantor(clock.Real{})
	var mu sync.Mutex
	expired := 0
	g.Grant(5*time.Millisecond, func(ID) {
		mu.Lock()
		expired++
		mu.Unlock()
	})
	g.Start(2 * time.Millisecond)
	defer g.Stop()
	deadline := time.After(time.Second)
	for {
		mu.Lock()
		n := expired
		mu.Unlock()
		if n == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("sweeper did not expire lease")
		case <-time.After(time.Millisecond):
		}
	}
}

func TestRenewerKeepsAlive(t *testing.T) {
	g := NewGrantor(clock.Real{})
	expired := make(chan ID, 1)
	l := g.Grant(20*time.Millisecond, func(id ID) { expired <- id })
	r := NewRenewer(clock.Real{}, l, g.Renew, 0.5, nil)
	r.Start()
	g.Start(5 * time.Millisecond)
	defer g.Stop()

	select {
	case <-expired:
		t.Fatal("lease expired while renewer active")
	case <-time.After(100 * time.Millisecond):
	}
	r.Stop()
	select {
	case <-expired:
	case <-time.After(time.Second):
		t.Fatal("lease did not expire after renewer stopped")
	}
}

func TestRenewerFailureCallback(t *testing.T) {
	g := NewGrantor(clock.Real{})
	l := g.Grant(10*time.Millisecond, nil)
	// Cancel underneath the renewer so its next renewal fails.
	if err := g.Cancel(l.ID); err != nil {
		t.Fatal(err)
	}
	failed := make(chan error, 1)
	r := NewRenewer(clock.Real{}, l, g.Renew, 0.5, func(err error) { failed <- err })
	r.Start()
	select {
	case err := <-failed:
		if !errors.Is(err, ErrUnknownLease) {
			t.Errorf("failure err = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("renewer did not report failure")
	}
	r.Stop()
}

func TestLeaseIDsUnique(t *testing.T) {
	g := NewGrantor(clock.Real{})
	seen := make(map[ID]bool)
	for i := 0; i < 100; i++ {
		l := g.Grant(time.Minute, nil)
		if seen[l.ID] {
			t.Fatal("duplicate lease ID")
		}
		seen[l.ID] = true
	}
	if g.Len() != 100 {
		t.Errorf("Len = %d", g.Len())
	}
}
