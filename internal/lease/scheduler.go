package lease

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/metrics"
)

// BatchItem names one lease due for renewal in a batched renew call.
type BatchItem struct {
	ID ID
}

// BatchResult reports one lease's renewal outcome. A zero Granted on success
// means the renewer keeps its previous duration.
type BatchResult struct {
	ID      ID
	Granted time.Duration
	Err     error
}

// BatchRenewFunc renews all items held at one node in a single exchange. A
// call-level error fails every item (the node was unreachable); otherwise the
// per-item results decide.
type BatchRenewFunc func(node string, items []BatchItem) ([]BatchResult, error)

// SchedulerConfig assembles a renewal Scheduler.
type SchedulerConfig struct {
	// Tick is the timer-wheel granularity (default 10ms); Slots the wheel
	// size (default 512).
	Tick  time.Duration
	Slots int
	// Fraction controls when a renewal fires relative to the lease duration
	// (default 0.5); Retries how many in-lease retries follow a failed
	// renewal, spaced across the remaining slack like Renewer's.
	Fraction float64
	Retries  int
	// MaxBatch caps how many leases ride in one batched renew call (default
	// 64); Workers how many renew calls may be in flight at once (default 1,
	// which keeps traffic ordering deterministic for traced scenarios).
	MaxBatch int
	Workers  int
	// Renew performs the batched renewal; OnRenew observes each success (for
	// journaling); OnNodeFail fires once per node per terminal failure — the
	// base's departure path. Both callbacks run off the scheduler's locks.
	Renew      BatchRenewFunc
	OnRenew    func(node string, id ID, granted time.Duration)
	OnNodeFail func(node string, err error)
}

// Scheduler keeps every lease a base holds alive using one hashed timer
// wheel and a small worker pool, instead of one goroutine per lease. All of
// a node's leases that come due in the same wheel advance coalesce into one
// batched renew call (chunked at MaxBatch). Retry pacing and terminal
// failure semantics mirror Renewer's: a failed renewal gets Retries more
// attempts spaced slack/(retries+1) apart, then the node is reported failed.
type Scheduler struct {
	cfg   SchedulerConfig
	wheel *clock.Wheel

	mu      sync.Mutex
	entries map[entryKey]*schedEntry
	byNode  map[string]map[ID]*schedEntry
	due     []*schedEntry // came due since the last flush, in wheel order
	queue   []renewJob
	qcond   *sync.Cond
	pending int // queued + in-flight jobs, for Quiesced
	stopped bool

	wg sync.WaitGroup

	m         renewerMetrics
	scheduled *metrics.Gauge
}

type entryKey struct {
	node string
	id   ID
}

type schedEntry struct {
	key      entryKey
	granted  time.Duration // current lease window; retry slack derives from it
	attempts int           // retries consumed for the renewal in progress
	timer    *clock.WheelTimer
}

type renewJob struct {
	node    string
	entries []*schedEntry
}

// NewScheduler starts a scheduler on clk (nil means the real clock).
func NewScheduler(clk clock.Clock, cfg SchedulerConfig) *Scheduler {
	if clk == nil {
		clk = clock.Real{}
	}
	if cfg.Tick <= 0 {
		cfg.Tick = 10 * time.Millisecond
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 512
	}
	if cfg.Fraction <= 0 || cfg.Fraction >= 1 {
		cfg.Fraction = 0.5
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	s := &Scheduler{
		cfg:     cfg,
		entries: make(map[entryKey]*schedEntry),
		byNode:  make(map[string]map[ID]*schedEntry),
	}
	s.qcond = sync.NewCond(&s.mu)
	s.wheel = clock.NewWheel(clk, cfg.Tick, cfg.Slots)
	s.wheel.OnFlush(s.flush)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Instrument records renewals sent, in-lease retries, terminal failures and
// the scheduled-lease gauge. Nil-safe; call before traffic for exact counts.
func (s *Scheduler) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m = renewerMetrics{
		renews:   reg.Counter("lease.renews_sent"),
		retries:  reg.Counter("lease.renew_retries"),
		failures: reg.Counter("lease.renew_failures"),
	}
	s.scheduled = reg.Gauge("lease.scheduled")
	s.scheduled.Set(int64(len(s.entries)))
}

// Add tracks one lease held at node. The first renewal fires at
// window*fraction from now (the full lease duration on a fresh grant, the
// remaining window on recovery); a non-positive window renews on the next
// tick. Re-adding an existing (node, id) pair resets its schedule.
func (s *Scheduler) Add(node string, id ID, window time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return
	}
	key := entryKey{node: node, id: id}
	if old, ok := s.entries[key]; ok {
		old.timer.Cancel()
		s.removeLocked(old)
	}
	if window <= 0 {
		window = time.Millisecond
	}
	e := &schedEntry{key: key, granted: window}
	s.entries[key] = e
	if s.byNode[node] == nil {
		s.byNode[node] = make(map[ID]*schedEntry)
	}
	s.byNode[node][id] = e
	s.armLocked(e, time.Duration(float64(window)*s.cfg.Fraction))
	s.gaugeLocked()
}

// Cancel stops renewing one lease. Safe for untracked pairs.
func (s *Scheduler) Cancel(node string, id ID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[entryKey{node: node, id: id}]; ok {
		e.timer.Cancel()
		s.removeLocked(e)
		s.gaugeLocked()
	}
}

// CancelNode stops renewing every lease held at node (departure, release).
func (s *Scheduler) CancelNode(node string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.byNode[node] {
		e.timer.Cancel()
		delete(s.entries, e.key)
	}
	delete(s.byNode, node)
	s.gaugeLocked()
}

// Len reports how many leases are being kept alive.
func (s *Scheduler) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Backlog reports the renewal work outstanding right now: leases that came
// due but are not yet queued, plus queued and in-flight batch jobs. A healthy
// scheduler hovers near zero; a sustained backlog means the worker pool is
// not keeping up with the fleet's renewal rate.
func (s *Scheduler) Backlog() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.due) + s.pending
}

// Quiesced reports whether every tick the clock has passed was fully
// processed and no renewal work is queued or in flight, so a deterministic
// test can advance the clock tick by tick: advance, wait for Quiesced,
// advance again.
func (s *Scheduler) Quiesced() bool {
	if !s.wheel.Synced() {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.due) == 0 && s.pending == 0
}

// Stop halts the wheel and the workers. Armed renewals never fire again;
// queued-but-unstarted work is dropped; an in-flight renew call is waited
// for, mirroring Renewer.Stop.
func (s *Scheduler) Stop() {
	s.wheel.Stop()
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	s.pending -= len(s.queue)
	s.queue = nil
	s.qcond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Scheduler) removeLocked(e *schedEntry) {
	delete(s.entries, e.key)
	if m := s.byNode[e.key.node]; m != nil {
		delete(m, e.key.id)
		if len(m) == 0 {
			delete(s.byNode, e.key.node)
		}
	}
}

func (s *Scheduler) armLocked(e *schedEntry, d time.Duration) {
	e.timer = s.wheel.Schedule(d, func() {
		s.mu.Lock()
		if s.entries[e.key] == e { // not cancelled since firing
			s.due = append(s.due, e)
		}
		s.mu.Unlock()
	})
}

func (s *Scheduler) gaugeLocked() {
	if s.scheduled != nil {
		s.scheduled.Set(int64(len(s.entries)))
	}
}

// flush runs on the wheel goroutine after each advance that fired timers: it
// groups everything that came due by node — the coalescing step — and hands
// the worker pool one job per node per MaxBatch chunk.
func (s *Scheduler) flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.due) == 0 {
		return
	}
	perNode := make(map[string][]*schedEntry)
	var nodes []string
	for _, e := range s.due {
		if s.entries[e.key] != e {
			continue // cancelled between firing and flush
		}
		if _, ok := perNode[e.key.node]; !ok {
			nodes = append(nodes, e.key.node)
		}
		perNode[e.key.node] = append(perNode[e.key.node], e)
	}
	s.due = s.due[:0]
	sort.Strings(nodes) // deterministic dispatch order
	for _, node := range nodes {
		es := perNode[node]
		for len(es) > 0 {
			n := min(len(es), s.cfg.MaxBatch)
			s.queue = append(s.queue, renewJob{node: node, entries: es[:n]})
			s.pending++
			es = es[n:]
		}
	}
	s.qcond.Broadcast()
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.stopped {
			s.qcond.Wait()
		}
		if s.stopped {
			s.mu.Unlock()
			return
		}
		job := s.queue[0]
		s.queue = s.queue[1:]
		// Drop entries cancelled while queued; the batch carries only leases
		// still tracked at dispatch time.
		live := make([]*schedEntry, 0, len(job.entries))
		items := make([]BatchItem, 0, len(job.entries))
		for _, e := range job.entries {
			if s.entries[e.key] == e {
				live = append(live, e)
				items = append(items, BatchItem{ID: e.key.id})
			}
		}
		s.mu.Unlock()

		var results []BatchResult
		var callErr error
		if len(items) > 0 {
			results, callErr = s.cfg.Renew(job.node, items)
		}
		s.settle(job.node, live, results, callErr)

		s.mu.Lock()
		s.pending--
		s.mu.Unlock()
	}
}

// settle applies one renew call's outcome: successes re-arm at
// granted*fraction, failures retry across the slack, exhausted retries drop
// the lease and report the node failed (once per call).
func (s *Scheduler) settle(node string, live []*schedEntry, results []BatchResult, callErr error) {
	byID := make(map[ID]BatchResult, len(results))
	if callErr == nil {
		for _, r := range results {
			byID[r.ID] = r
		}
	}
	type renewed struct {
		id      ID
		granted time.Duration
	}
	var oks []renewed
	var failErr error
	s.mu.Lock()
	for _, e := range live {
		if s.entries[e.key] != e {
			continue // cancelled while the call was in flight
		}
		rerr := callErr
		if callErr == nil {
			r, ok := byID[e.key.id]
			switch {
			case !ok:
				rerr = fmt.Errorf("lease: batch renew of %s: no result for %s", node, e.key.id)
			default:
				rerr = r.Err
			}
			if rerr == nil {
				granted := r.Granted
				if granted <= 0 {
					granted = e.granted
				}
				e.granted = granted
				e.attempts = 0
				s.m.renews.Inc()
				s.armLocked(e, time.Duration(float64(granted)*s.cfg.Fraction))
				oks = append(oks, renewed{id: e.key.id, granted: granted})
				continue
			}
		}
		if e.attempts < s.cfg.Retries {
			// Space the retries across the slack remaining before expiry,
			// exactly like Renewer.renewWithRetry.
			e.attempts++
			s.m.retries.Inc()
			slack := time.Duration(float64(e.granted) * (1 - s.cfg.Fraction))
			gap := slack / time.Duration(s.cfg.Retries+1)
			if gap <= 0 {
				gap = time.Millisecond
			}
			s.armLocked(e, gap)
			continue
		}
		s.m.failures.Inc()
		s.removeLocked(e)
		if failErr == nil {
			failErr = rerr
		}
	}
	s.gaugeLocked()
	s.mu.Unlock()

	if s.cfg.OnRenew != nil {
		for _, ok := range oks {
			s.cfg.OnRenew(node, ok.id, ok.granted)
		}
	}
	if failErr != nil && s.cfg.OnNodeFail != nil {
		s.cfg.OnNodeFail(node, failErr)
	}
}
