package lease

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/metrics"
)

// schedHarness records every batched renew call a Scheduler makes.
type schedHarness struct {
	mu      sync.Mutex
	calls   []schedCall
	granted time.Duration
	fail    map[string]error // node -> call-level error
	failIDs map[ID]error     // per-item errors
	renewed []ID
	failed  []string
}

type schedCall struct {
	node  string
	items []BatchItem
}

func newSchedHarness(granted time.Duration) *schedHarness {
	return &schedHarness{granted: granted, fail: map[string]error{}, failIDs: map[ID]error{}}
}

func (h *schedHarness) renew(node string, items []BatchItem) ([]BatchResult, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.calls = append(h.calls, schedCall{node: node, items: append([]BatchItem(nil), items...)})
	if err := h.fail[node]; err != nil {
		return nil, err
	}
	out := make([]BatchResult, len(items))
	for i, it := range items {
		out[i] = BatchResult{ID: it.ID, Granted: h.granted, Err: h.failIDs[it.ID]}
	}
	return out, nil
}

func (h *schedHarness) onRenew(node string, id ID, granted time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.renewed = append(h.renewed, id)
}

func (h *schedHarness) onFail(node string, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.failed = append(h.failed, node)
}

func (h *schedHarness) callCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.calls)
}

func waitSched(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("%s: condition not reached before deadline", what)
}

// TestSchedulerCoalescesPerNode grants many leases at two nodes in the same
// tick and checks renewals arrive as one batched call per node, not one call
// per lease.
func TestSchedulerCoalescesPerNode(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	h := newSchedHarness(10 * time.Second)
	s := NewScheduler(clk, SchedulerConfig{
		Tick:     time.Second,
		Fraction: 0.5,
		MaxBatch: 64,
		Renew:    h.renew,
		OnRenew:  h.onRenew,
	})
	defer s.Stop()

	for i := 0; i < 40; i++ {
		node := "node-a"
		if i%2 == 1 {
			node = "node-b"
		}
		s.Add(node, ID(string(rune('a'+i))), 10*time.Second)
	}
	if got := s.Len(); got != 40 {
		t.Fatalf("Len = %d, want 40", got)
	}

	clk.Advance(5 * time.Second) // all 40 come due at window*fraction
	waitSched(t, "first renewal wave", func() bool {
		h.mu.Lock()
		defer h.mu.Unlock()
		return len(h.renewed) == 40
	})
	h.mu.Lock()
	calls := append([]schedCall(nil), h.calls...)
	h.mu.Unlock()
	if len(calls) != 2 {
		t.Fatalf("40 leases at 2 nodes renewed in %d calls, want 2 (one per node)", len(calls))
	}
	for _, c := range calls {
		if len(c.items) != 20 {
			t.Errorf("call to %s carried %d items, want 20", c.node, len(c.items))
		}
	}
}

// TestSchedulerChunksAtMaxBatch checks an oversized due set splits into
// ceil(N/MaxBatch) calls.
func TestSchedulerChunksAtMaxBatch(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	h := newSchedHarness(10 * time.Second)
	s := NewScheduler(clk, SchedulerConfig{
		Tick:     time.Second,
		Fraction: 0.5,
		MaxBatch: 16,
		Renew:    h.renew,
		OnRenew:  h.onRenew,
	})
	defer s.Stop()

	for i := 0; i < 50; i++ {
		s.Add("node-a", ID(string(rune('0'+i))), 10*time.Second)
	}
	clk.Advance(5 * time.Second)
	waitSched(t, "chunked wave", func() bool {
		h.mu.Lock()
		defer h.mu.Unlock()
		return len(h.renewed) == 50
	})
	if got := h.callCount(); got != 4 { // ceil(50/16)
		t.Fatalf("50 leases renewed in %d calls, want 4", got)
	}
}

// TestSchedulerRetriesThenFailsNode drives one node's renewals into terminal
// failure and checks the retry pacing, the single OnNodeFail report, and the
// metric counters, mirroring Renewer semantics.
func TestSchedulerRetriesThenFailsNode(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	reg := metrics.New()
	h := newSchedHarness(10 * time.Second)
	h.fail["node-a"] = errors.New("unreachable")
	s := NewScheduler(clk, SchedulerConfig{
		Tick:       time.Second,
		Fraction:   0.5,
		Retries:    2,
		Renew:      h.renew,
		OnRenew:    h.onRenew,
		OnNodeFail: h.onFail,
	})
	s.Instrument(reg)
	defer s.Stop()

	s.Add("node-a", "lease-1", 10*time.Second)
	s.Add("node-b", "lease-2", 10*time.Second)

	// First attempt at 5s; retries spaced slack/(retries+1) land within the
	// remaining 5s of lease. node-b renews fine throughout.
	for i := 0; i < 10; i++ {
		clk.Advance(time.Second)
		waitSched(t, "tick settle", s.Quiesced)
	}
	h.mu.Lock()
	failed := append([]string(nil), h.failed...)
	h.mu.Unlock()
	if len(failed) != 1 || failed[0] != "node-a" {
		t.Fatalf("failed nodes = %v, want exactly [node-a]", failed)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["lease.renew_retries"]; got != 2 {
		t.Errorf("renew_retries = %d, want 2", got)
	}
	if got := snap.Counters["lease.renew_failures"]; got != 1 {
		t.Errorf("renew_failures = %d, want 1", got)
	}
	if got := snap.Counters["lease.renews_sent"]; got == 0 {
		t.Error("node-b sent no renewals while node-a was failing")
	}
	if got := s.Len(); got != 1 {
		t.Errorf("Len = %d after node-a failed, want 1 (node-b only)", got)
	}
	if got := snap.Gauges["lease.scheduled"]; got != 1 {
		t.Errorf("lease.scheduled = %d, want 1", got)
	}
}

// TestSchedulerCancelNodeDropsInFlight cancels a node between due-collection
// and settle and checks nothing resurrects the entries.
func TestSchedulerCancelNodeDropsInFlight(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	h := newSchedHarness(10 * time.Second)
	release := make(chan struct{})
	started := make(chan string, 8)
	s := NewScheduler(clk, SchedulerConfig{
		Tick:     time.Second,
		Fraction: 0.5,
		Renew: func(node string, items []BatchItem) ([]BatchResult, error) {
			started <- node
			<-release
			return h.renew(node, items)
		},
		OnRenew: h.onRenew,
	})
	defer s.Stop()

	s.Add("node-a", "lease-1", 10*time.Second)
	clk.Advance(5 * time.Second)
	<-started // renew call for node-a is now parked mid-flight
	s.CancelNode("node-a")
	close(release)
	waitSched(t, "in-flight settle", s.Quiesced)
	if got := s.Len(); got != 0 {
		t.Fatalf("Len = %d after CancelNode, want 0", got)
	}
	// The parked call's success must not re-arm the cancelled lease.
	clk.Advance(20 * time.Second)
	waitSched(t, "post-cancel settle", s.Quiesced)
	if got := h.callCount(); got != 1 {
		t.Fatalf("renew calls = %d, want 1 (no renewals after CancelNode)", got)
	}
}
