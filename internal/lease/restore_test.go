package lease

import (
	"testing"
	"time"

	"repro/internal/clock"
)

// TestRestoreExpiredLeaseFiresImmediately is the crash-replay contract: a
// journal records the grant's absolute deadline, so restoring it after a
// crash longer than the lease window yields an already-expired grant that is
// swept (and its expiry callback fired) on the very next sweep — not a fresh
// window measured from the restart instant.
func TestRestoreExpiredLeaseFiresImmediately(t *testing.T) {
	clk := clock.NewManual(time.Unix(1000, 0))
	g := NewGrantor(clk)

	granted := g.Grant(10*time.Second, nil)
	deadline := granted.Expiry // what a journal would persist

	// The process crashes; by the time it is back, the deadline has long
	// passed.
	clk.Advance(5 * time.Minute)
	g2 := NewGrantor(clk)
	expired := make(chan ID, 1)
	restored := g2.Restore(granted.ID, deadline, granted.Duration, func(id ID) { expired <- id })

	if restored.ID != granted.ID {
		t.Fatalf("restored ID = %q, want %q", restored.ID, granted.ID)
	}
	if g2.Active(granted.ID) {
		t.Fatal("lease restored from a stale deadline must not be active")
	}
	if n := g2.ExpireNow(); n != 1 {
		t.Fatalf("ExpireNow = %d, want 1 immediate expiry", n)
	}
	select {
	case id := <-expired:
		if id != granted.ID {
			t.Fatalf("expired %q, want %q", id, granted.ID)
		}
	default:
		t.Fatal("expiry callback did not fire")
	}
}

// TestRestoreLiveLeaseKeepsRemainingWindow: a short crash restores the lease
// with exactly the remaining time — renewable, and expiring at the original
// instant if nobody renews.
func TestRestoreLiveLeaseKeepsRemainingWindow(t *testing.T) {
	clk := clock.NewManual(time.Unix(1000, 0))
	g := NewGrantor(clk)
	granted := g.Grant(10*time.Second, nil)

	clk.Advance(4 * time.Second) // crash + quick restart, 6s of lease left
	g2 := NewGrantor(clk)
	g2.Restore(granted.ID, granted.Expiry, granted.Duration, nil)

	if !g2.Active(granted.ID) {
		t.Fatal("restored lease with remaining window must be active")
	}
	dl, ok := g2.Deadline(granted.ID)
	if !ok || !dl.Equal(granted.Expiry) {
		t.Fatalf("Deadline = %v, %v; want %v", dl, ok, granted.Expiry)
	}
	// The original deadline still governs: 6s later it lapses.
	clk.Advance(7 * time.Second)
	if n := g2.ExpireNow(); n != 1 {
		t.Fatalf("ExpireNow = %d, want 1", n)
	}

	// A renewal on a restored lease extends from now, as usual.
	g3 := NewGrantor(clk)
	g3.Restore(granted.ID, clk.Now().Add(2*time.Second), granted.Duration, nil)
	l, err := g3.Renew(granted.ID, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if want := clk.Now().Add(10 * time.Second); !l.Expiry.Equal(want) {
		t.Fatalf("renewed expiry = %v, want %v", l.Expiry, want)
	}
}
