// Package lease implements Jini-style leasing, the mechanism MIDAS uses to
// make adaptations local in time and space: every distributed extension is
// leased to its receiver, the extension base keeps the lease alive while the
// node is in its area, and when renewals stop (the node left, the base died)
// the holder autonomously expires the grant.
package lease

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/transport"
)

// ID identifies a lease at its grantor.
type ID string

// Lease is the granted view handed to the holder.
type Lease struct {
	ID       ID
	Expiry   time.Time
	Duration time.Duration
}

// Errors returned by the grantor.
var (
	ErrUnknownLease = errors.New("lease: unknown lease")
	ErrExpired      = errors.New("lease: lease expired")
)

func init() {
	// Lease errors cross the wire on renewals: let errors.Is recover them
	// from remote errors on every fabric.
	transport.RegisterRemoteSentinel(ErrUnknownLease, ErrExpired)
}

// errStopped marks a renewal abandoned because the renewer was stopped
// mid-retry; it must not be reported as a renewal failure.
var errStopped = errors.New("lease: renewer stopped")

type grant struct {
	lease    Lease
	onExpire func(ID)
	onCancel func(ID)
}

// Grantor issues and tracks leases (the "landlord" role). Expiry is driven
// either by the background sweeper (Start/Stop) or by explicit ExpireNow
// calls under a manual clock.
type Grantor struct {
	clk clock.Clock

	mu     sync.Mutex
	grants map[ID]*grant
	m      grantorMetrics
	tracer *trace.Tracer

	stop chan struct{}
	done chan struct{}
}

// grantorMetrics aggregates lease lifecycle counters; all fields are nil-safe
// no-ops until Instrument.
type grantorMetrics struct {
	grants      *metrics.Counter
	renewals    *metrics.Counter
	renewErrors *metrics.Counter
	cancels     *metrics.Counter
	expiries    *metrics.Counter
	active      *metrics.Gauge
}

// Instrument records grants, renewals (and renewal errors), cancellations,
// expiries and the live-lease gauge in reg. Grantors sharing one registry
// aggregate into the same counters. A nil reg is a no-op.
func (g *Grantor) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.m = grantorMetrics{
		grants:      reg.Counter("lease.grants"),
		renewals:    reg.Counter("lease.renewals"),
		renewErrors: reg.Counter("lease.renew_errors"),
		cancels:     reg.Counter("lease.cancels"),
		expiries:    reg.Counter("lease.expiries"),
		active:      reg.Gauge("lease.active"),
	}
	g.m.active.Set(int64(len(g.grants)))
}

// NewGrantor returns a Grantor on the given clock.
func NewGrantor(clk clock.Clock) *Grantor {
	if clk == nil {
		clk = clock.Real{}
	}
	return &Grantor{clk: clk, grants: make(map[ID]*grant)}
}

// Trace logs grant/renew/cancel/expiry facts to tr's structured event ring
// under the "lease" component. A nil tr is a no-op.
func (g *Grantor) Trace(tr *trace.Tracer) {
	if tr == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.tracer = tr
}

func (g *Grantor) traceRef() *trace.Tracer {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.tracer
}

// Grant issues a lease for d. onExpire (may be nil) runs when the lease
// lapses without renewal; it does not run on Cancel.
func (g *Grantor) Grant(d time.Duration, onExpire func(ID)) Lease {
	return g.GrantCtx(context.Background(), d, onExpire)
}

// GrantCtx is Grant stamping the grant event with the trace carried by ctx
// (normally the install that holds the lease).
func (g *Grantor) GrantCtx(ctx context.Context, d time.Duration, onExpire func(ID)) Lease {
	id := ID(randomID())
	l := Lease{ID: id, Expiry: g.clk.Now().Add(d), Duration: d}
	g.mu.Lock()
	g.grants[id] = &grant{lease: l, onExpire: onExpire}
	g.m.grants.Inc()
	g.m.active.Set(int64(len(g.grants)))
	g.tracer.Eventf(ctx, "lease", "grant %s for %s", id, d)
	g.mu.Unlock()
	return l
}

// Restore re-registers a grant recovered from a durable journal under its
// original ID and absolute expiry instant. Unlike Grant, no fresh window is
// opened: a lease whose deadline already passed during the crash is restored
// expired and fires onExpire on the next sweep, so replay after a long
// outage converges exactly like an uninterrupted run would have. d records
// the originally granted duration (what renewals extend by).
func (g *Grantor) Restore(id ID, expiry time.Time, d time.Duration, onExpire func(ID)) Lease {
	l := Lease{ID: id, Expiry: expiry, Duration: d}
	g.mu.Lock()
	g.grants[id] = &grant{lease: l, onExpire: onExpire}
	g.m.grants.Inc()
	g.m.active.Set(int64(len(g.grants)))
	g.tracer.Eventf(nil, "lease", "restore %s (expiry %s)", id, expiry.Format(time.RFC3339))
	g.mu.Unlock()
	return l
}

// Deadline returns the absolute expiry instant of a tracked lease.
func (g *Grantor) Deadline(id ID) (time.Time, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	gr, ok := g.grants[id]
	if !ok {
		return time.Time{}, false
	}
	return gr.lease.Expiry, true
}

// Renew extends the lease by d from now.
func (g *Grantor) Renew(id ID, d time.Duration) (Lease, error) {
	return g.RenewCtx(context.Background(), id, d)
}

// RenewCtx is Renew stamping the renewal event with the trace carried by ctx
// (normally the remote renewal RPC, which joins the install's trace).
func (g *Grantor) RenewCtx(ctx context.Context, id ID, d time.Duration) (Lease, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	gr, ok := g.grants[id]
	if !ok {
		g.m.renewErrors.Inc()
		g.tracer.Eventf(ctx, "lease", "renew %s refused: unknown lease", id)
		return Lease{}, ErrUnknownLease
	}
	now := g.clk.Now()
	if gr.lease.Expiry.Before(now) {
		g.m.renewErrors.Inc()
		g.tracer.Eventf(ctx, "lease", "renew %s refused: already expired", id)
		return Lease{}, ErrExpired
	}
	gr.lease.Expiry = now.Add(d)
	gr.lease.Duration = d
	g.m.renewals.Inc()
	g.tracer.Eventf(ctx, "lease", "renew %s for %s", id, d)
	return gr.lease, nil
}

// Cancel revokes the lease without running its expiry callback.
func (g *Grantor) Cancel(id ID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.grants[id]; !ok {
		return ErrUnknownLease
	}
	delete(g.grants, id)
	g.m.cancels.Inc()
	g.m.active.Set(int64(len(g.grants)))
	g.tracer.Eventf(nil, "lease", "cancel %s", id)
	return nil
}

// Active reports whether the lease exists and has not expired.
func (g *Grantor) Active(id ID) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	gr, ok := g.grants[id]
	return ok && !gr.lease.Expiry.Before(g.clk.Now())
}

// Len returns the number of tracked (possibly expired, not yet swept) leases.
func (g *Grantor) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.grants)
}

// ExpireNow sweeps lapsed leases, firing their expiry callbacks, and returns
// how many expired.
func (g *Grantor) ExpireNow() int {
	now := g.clk.Now()
	var fired []*grant
	g.mu.Lock()
	for id, gr := range g.grants {
		if gr.lease.Expiry.Before(now) {
			delete(g.grants, id)
			fired = append(fired, gr)
		}
	}
	g.m.expiries.Add(uint64(len(fired)))
	g.m.active.Set(int64(len(g.grants)))
	for _, gr := range fired {
		g.tracer.Eventf(nil, "lease", "expire %s (no renewal)", gr.lease.ID)
	}
	g.mu.Unlock()
	for _, gr := range fired {
		if gr.onExpire != nil {
			gr.onExpire(gr.lease.ID)
		}
	}
	return len(fired)
}

// Start launches a background sweeper with the given period. It must be
// paired with Stop.
func (g *Grantor) Start(period time.Duration) {
	g.mu.Lock()
	if g.stop != nil {
		g.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	g.stop, g.done = stop, done
	g.mu.Unlock()

	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			case <-g.clk.After(period):
				g.ExpireNow()
			}
		}
	}()
}

// Stop terminates the background sweeper and waits for it to exit.
func (g *Grantor) Stop() {
	g.mu.Lock()
	stop, done := g.stop, g.done
	g.stop, g.done = nil, nil
	g.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// RenewFunc renews a lease at its (possibly remote) grantor.
type RenewFunc func(id ID, d time.Duration) (Lease, error)

// Renewer keeps one lease alive from the holder side, renewing at a fraction
// of the lease duration. When a renewal fails — after the configured number
// of in-lease retries, which matter on lossy wireless links — OnFail runs
// once and the renewer stops; this is the trigger for a MIDAS base to
// consider a node departed.
type Renewer struct {
	clk      clock.Clock
	renew    RenewFunc
	onFail   func(error)
	lease    Lease
	fraction float64
	retries  int
	m        renewerMetrics
	tracer   *trace.Tracer

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// renewerMetrics counts holder-side renewal traffic; nil-safe until
// Instrument.
type renewerMetrics struct {
	renews   *metrics.Counter
	retries  *metrics.Counter
	failures *metrics.Counter
}

// Instrument records the renewals this holder sends, the in-lease retries it
// needs on lossy links, and terminal renewal failures. Like SetRetries it
// must be called before Start. A nil reg is a no-op.
func (r *Renewer) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	r.m = renewerMetrics{
		renews:   reg.Counter("lease.renews_sent"),
		retries:  reg.Counter("lease.renew_retries"),
		failures: reg.Counter("lease.renew_failures"),
	}
}

// NewRenewer returns a renewer for l. fraction in (0,1) controls when the
// renewal fires relative to the lease duration (default 0.5).
func NewRenewer(clk clock.Clock, l Lease, renew RenewFunc, fraction float64, onFail func(error)) *Renewer {
	if clk == nil {
		clk = clock.Real{}
	}
	if fraction <= 0 || fraction >= 1 {
		fraction = 0.5
	}
	return &Renewer{
		clk:      clk,
		renew:    renew,
		onFail:   onFail,
		lease:    l,
		fraction: fraction,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Trace logs holder-side renewal retries and terminal failures to tr's
// structured event ring under the "lease" component. Like Instrument it must
// be called before Start. A nil tr is a no-op.
func (r *Renewer) Trace(tr *trace.Tracer) {
	r.tracer = tr
}

// SetRetries configures how many additional renewal attempts are made within
// the remaining lease time before the renewer declares failure (default 0).
// Retries are spaced so they all fit before the lease would lapse.
func (r *Renewer) SetRetries(n int) {
	if n >= 0 {
		r.retries = n
	}
}

// Start launches the renewal loop.
func (r *Renewer) Start() {
	go func() {
		defer close(r.done)
		for {
			wait := time.Duration(float64(r.lease.Duration) * r.fraction)
			if wait <= 0 {
				wait = time.Millisecond
			}
			select {
			case <-r.stop:
				return
			case <-r.clk.After(wait):
			}
			l, err := r.renewWithRetry()
			if err != nil {
				if errors.Is(err, errStopped) {
					// Stop() raced an in-flight retry: a deliberate halt,
					// not a departure — never report failure.
					return
				}
				r.m.failures.Inc()
				r.tracer.Eventf(nil, "lease", "renewal of %s failed for good: %v", r.lease.ID, err)
				if r.onFail != nil {
					r.onFail(err)
				}
				return
			}
			r.m.renews.Inc()
			r.lease = l
		}
	}()
}

func (r *Renewer) renewWithRetry() (Lease, error) {
	l, err := r.renew(r.lease.ID, r.lease.Duration)
	if err == nil || r.retries == 0 {
		return l, err
	}
	// Space the retries across the slack remaining before expiry.
	slack := time.Duration(float64(r.lease.Duration) * (1 - r.fraction))
	gap := slack / time.Duration(r.retries+1)
	if gap <= 0 {
		gap = time.Millisecond
	}
	for attempt := 0; attempt < r.retries; attempt++ {
		select {
		case <-r.stop:
			return Lease{}, errStopped
		case <-r.clk.After(gap):
		}
		r.m.retries.Inc()
		r.tracer.Eventf(nil, "lease", "retrying renewal of %s (attempt %d of %d): %v", r.lease.ID, attempt+1, r.retries, err)
		if l, rerr := r.renew(r.lease.ID, r.lease.Duration); rerr == nil {
			return l, nil
		} else {
			err = rerr
		}
	}
	return Lease{}, err
}

// Stop halts renewal and waits for the loop to exit. Safe to call multiple
// times.
func (r *Renewer) Stop() {
	r.once.Do(func() { close(r.stop) })
	<-r.done
}

func randomID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; fall back to a
		// counter-free constant would break uniqueness, so panic loudly.
		panic(fmt.Sprintf("lease: rand: %v", err))
	}
	return hex.EncodeToString(b[:])
}
