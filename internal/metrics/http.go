package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Handler serves the registry's snapshot as JSON (expvar-style): counters and
// gauges as flat name → value maps, histograms with bounds, per-bucket counts,
// total count, sum and p50/p95/p99. With ?format=prom it serves the same
// snapshot as Prometheus text exposition instead (see WriteProm).
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req != nil && req.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			WriteProm(w, r.Snapshot())
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}

// WriteText pretty-prints a snapshot, sorted by name: one line per counter
// and gauge, a count/mean summary plus bucket rows per histogram. Used by
// `midasctl metrics` and handy in tests.
func WriteText(w io.Writer, s Snapshot) {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "%-32s %d\n", n, s.Counters[n])
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "%-32s %d\n", n, s.Gauges[n])
	}

	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		mean := time.Duration(0)
		if h.Count > 0 {
			mean = time.Duration(h.Sum / int64(h.Count))
		}
		fmt.Fprintf(w, "%-32s count=%d mean=%s p50=%s p95=%s p99=%s\n",
			n, h.Count, mean, time.Duration(h.P50), time.Duration(h.P95), time.Duration(h.P99))
		for i, c := range h.Counts {
			if c == 0 {
				continue
			}
			if i < len(h.Bounds) {
				fmt.Fprintf(w, "%-32s   <= %-12s %d\n", "", time.Duration(h.Bounds[i]), c)
			} else {
				fmt.Fprintf(w, "%-32s    > %-12s %d\n", "", time.Duration(h.Bounds[len(h.Bounds)-1]), c)
			}
		}
	}
}

// Health aggregates named liveness checks for a /healthz endpoint, plus
// informational values — gauges worth seeing next to the verdict (degraded
// node counts, scheduler backlog, dropped spans) without failing it.
type Health struct {
	mu     sync.Mutex
	checks map[string]func() error
	values map[string]func() int64
}

// NewHealth returns an empty health checker (healthy by definition).
func NewHealth() *Health {
	return &Health{
		checks: make(map[string]func() error),
		values: make(map[string]func() int64),
	}
}

// Register adds (or replaces) a named check. fn returns nil when healthy.
func (h *Health) Register(name string, fn func() error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.checks[name] = fn
}

// RegisterValue adds (or replaces) a named informational value rendered on
// /healthz alongside the checks. Values never affect the health verdict;
// they exist so a degrading fleet is visible where operators already look.
func (h *Health) RegisterValue(name string, fn func() int64) {
	if fn == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.values[name] = fn
}

// Values evaluates every registered informational value.
func (h *Health) Values() map[string]int64 {
	h.mu.Lock()
	fns := make(map[string]func() int64, len(h.values))
	for n, fn := range h.values {
		fns[n] = fn
	}
	h.mu.Unlock()
	out := make(map[string]int64, len(fns))
	for n, fn := range fns {
		out[n] = fn()
	}
	return out
}

// Check runs every registered check and reports per-check errors (nil entry =
// healthy) plus overall health.
func (h *Health) Check() (map[string]error, bool) {
	h.mu.Lock()
	checks := make(map[string]func() error, len(h.checks))
	for n, fn := range h.checks {
		checks[n] = fn
	}
	h.mu.Unlock()

	out := make(map[string]error, len(checks))
	ok := true
	for n, fn := range checks {
		err := fn()
		out[n] = err
		if err != nil {
			ok = false
		}
	}
	return out, ok
}

// Handler serves the check results: HTTP 200 with "ok" per healthy check, 503
// when any check fails.
func (h *Health) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		results, ok := h.Check()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		names := make([]string, 0, len(results))
		for n := range results {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			if err := results[n]; err != nil {
				fmt.Fprintf(w, "%s: %v\n", n, err)
			} else {
				fmt.Fprintf(w, "%s: ok\n", n)
			}
		}
		if len(names) == 0 {
			fmt.Fprintln(w, "ok")
		}
		values := h.Values()
		names = names[:0]
		for n := range values {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(w, "%s: %d\n", n, values[n])
		}
	})
}

// Mount attaches an extra handler to the observability listener — tracing
// endpoints, pprof, anything a daemon wants on the same port as /metrics.
type Mount struct {
	Pattern string
	Handler http.Handler
}

// ServeHTTP starts an HTTP server on addr exposing /metrics (the registry
// snapshot) and /healthz (the health checks), plus any extra mounts. It
// returns the bound address and a shutdown function. addr may end in ":0" to
// pick a free port.
func ServeHTTP(addr string, r *Registry, h *Health, extra ...Mount) (string, func(), error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	if h == nil {
		h = NewHealth()
	}
	mux.Handle("/healthz", h.Handler())
	for _, m := range extra {
		if m.Pattern != "" && m.Handler != nil {
			mux.Handle(m.Pattern, m.Handler)
		}
	}
	srv := &http.Server{Handler: mux}
	ln, err := listen(addr)
	if err != nil {
		return "", nil, err
	}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
