package metrics

import "net"

// listen is split out so metrics.go stays free of net imports (the instrument
// core has no I/O dependencies at all).
func listen(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}
