package metrics

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCounterParallelStress: N goroutines × M ops must land exactly N*M, and
// gauges must survive mixed Add traffic; this is the lock-light claim.
func TestCounterParallelStress(t *testing.T) {
	const (
		goroutines = 16
		ops        = 10_000
	)
	r := New()
	c := r.Counter("stress.counter")
	g := r.Gauge("stress.gauge")
	h := r.Histogram("stress.hist", []int64{10, 100, 1000})

	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for j := 0; j < ops; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(seed + int64(j)%1500)
			}
		}(int64(i))
	}
	wg.Wait()

	if got := c.Value(); got != goroutines*ops {
		t.Fatalf("counter: got %d, want %d", got, goroutines*ops)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge: got %d, want 0", got)
	}
	if got := h.Count(); got != goroutines*ops {
		t.Fatalf("histogram count: got %d, want %d", got, goroutines*ops)
	}
	// Same names must resolve to the same instruments.
	if r.Counter("stress.counter") != c || r.Gauge("stress.gauge") != g || r.Histogram("stress.hist", nil) != h {
		t.Fatal("get-or-create returned a different instrument for an existing name")
	}
}

// TestHistogramBucketBoundaries pins the bucket rule: v <= bound lands in
// that bucket (inclusive upper bounds), above the last bound is overflow.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, {0, 0}, {9, 0}, {10, 0}, // inclusive upper bound
		{11, 1}, {100, 1},
		{101, 2}, {1000, 2},
		{1001, 3}, {1 << 40, 3}, // overflow
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	s := h.snapshot()
	want := make([]uint64, 4)
	var sum int64
	for _, c := range cases {
		want[c.bucket]++
		sum += c.v
	}
	for i := range want {
		if s.Counts[i] != want[i] {
			t.Errorf("bucket %d: got %d, want %d (counts %v)", i, s.Counts[i], want[i], s.Counts)
		}
	}
	if s.Count != uint64(len(cases)) {
		t.Errorf("count: got %d, want %d", s.Count, len(cases))
	}
	if s.Sum != sum {
		t.Errorf("sum: got %d, want %d", s.Sum, sum)
	}
}

// TestHistogramBoundsNormalised: unsorted and duplicated bounds are sorted
// and deduplicated at construction.
func TestHistogramBoundsNormalised(t *testing.T) {
	h := NewHistogram([]int64{100, 10, 100, 1000, 10})
	want := []int64{10, 100, 1000}
	if len(h.bounds) != len(want) {
		t.Fatalf("bounds: got %v, want %v", h.bounds, want)
	}
	for i := range want {
		if h.bounds[i] != want[i] {
			t.Fatalf("bounds: got %v, want %v", h.bounds, want)
		}
	}
	if len(h.counts) != len(want)+1 {
		t.Fatalf("counts: got %d buckets, want %d", len(h.counts), len(want)+1)
	}
}

// TestSnapshotConsistencyUnderConcurrentWrites takes snapshots while writers
// are mid-flight and checks every snapshot's internal invariants: histogram
// Count equals the sum of its captured buckets, and counters are monotonic
// across successive snapshots.
func TestSnapshotConsistencyUnderConcurrentWrites(t *testing.T) {
	r := New()
	c := r.Counter("snap.counter")
	h := r.Histogram("snap.hist", []int64{1, 2, 4, 8})

	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := int64(0); !stop.Load(); j++ {
				c.Inc()
				h.Observe(j % 10)
			}
		}()
	}

	var lastCounter, lastHist uint64
	for i := 0; i < 200; i++ {
		s := r.Snapshot()
		hs := s.Histograms["snap.hist"]
		var bucketSum uint64
		for _, n := range hs.Counts {
			bucketSum += n
		}
		if hs.Count != bucketSum {
			t.Fatalf("snapshot %d: histogram Count %d != sum of buckets %d", i, hs.Count, bucketSum)
		}
		if hs.Count < lastHist {
			t.Fatalf("snapshot %d: histogram count went backwards (%d -> %d)", i, lastHist, hs.Count)
		}
		if s.Counters["snap.counter"] < lastCounter {
			t.Fatalf("snapshot %d: counter went backwards (%d -> %d)", i, lastCounter, s.Counters["snap.counter"])
		}
		lastCounter, lastHist = s.Counters["snap.counter"], hs.Count
	}
	stop.Store(true)
	wg.Wait()

	// Quiescent: everything must line up exactly.
	s := r.Snapshot()
	if s.Counters["snap.counter"] != c.Value() {
		t.Fatalf("final counter snapshot %d != live %d", s.Counters["snap.counter"], c.Value())
	}
	if s.Histograms["snap.hist"].Count != h.Count() {
		t.Fatalf("final histogram snapshot %d != live %d", s.Histograms["snap.hist"].Count, h.Count())
	}
}

// TestNilSafety: a nil registry hands out nil instruments and every operation
// on them is a no-op — this is what an un-instrumented component relies on.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(42)
	h.Since(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

// TestHTTPEndpoints drives /metrics and /healthz through real HTTP.
func TestHTTPEndpoints(t *testing.T) {
	r := New()
	r.Counter("http.requests").Add(7)
	r.Gauge("http.inflight").Set(2)
	r.Histogram("http.latency_ns", nil).Observe(5_000)

	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["http.requests"] != 7 || s.Gauges["http.inflight"] != 2 {
		t.Fatalf("bad snapshot over HTTP: %+v", s)
	}
	if s.Histograms["http.latency_ns"].Count != 1 {
		t.Fatalf("bad histogram over HTTP: %+v", s.Histograms)
	}

	health := NewHealth()
	health.Register("always-ok", func() error { return nil })
	hsrv := httptest.NewServer(health.Handler())
	defer hsrv.Close()
	hr, err := http.Get(hsrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK || !strings.Contains(string(body), "always-ok: ok") {
		t.Fatalf("healthy /healthz: status %d body %q", hr.StatusCode, body)
	}

	health.Register("broken", func() error { return io.ErrUnexpectedEOF })
	hr, err = http.Get(hsrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "broken: unexpected EOF") {
		t.Fatalf("unhealthy /healthz: status %d body %q", hr.StatusCode, body)
	}
}

// TestServeHTTP exercises the one-call server used by cmd/node and
// cmd/basestation.
func TestServeHTTP(t *testing.T) {
	r := New()
	r.Counter("served").Inc()
	addr, stop, err := ServeHTTP("127.0.0.1:0", r, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	err = json.NewDecoder(resp.Body).Decode(&s)
	resp.Body.Close()
	if err != nil || s.Counters["served"] != 1 {
		t.Fatalf("decode: %v, snapshot %+v", err, s)
	}
	hresp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d", hresp.StatusCode)
	}
}

// TestWriteText checks the pretty printer midasctl uses.
func TestWriteText(t *testing.T) {
	r := New()
	r.Counter("b.counter").Add(3)
	r.Counter("a.counter").Add(1)
	r.Gauge("z.gauge").Set(-4)
	h := r.Histogram("lat", []int64{1000, 1_000_000})
	h.Observe(500)
	h.Observe(2_000_000)

	var sb strings.Builder
	WriteText(&sb, r.Snapshot())
	out := sb.String()
	if !strings.Contains(out, "a.counter") || !strings.Contains(out, "b.counter") ||
		!strings.Contains(out, "z.gauge") || !strings.Contains(out, "count=2") {
		t.Fatalf("pretty output missing entries:\n%s", out)
	}
	if strings.Index(out, "a.counter") > strings.Index(out, "b.counter") {
		t.Fatalf("counters not sorted:\n%s", out)
	}
}
