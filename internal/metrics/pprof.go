package metrics

import (
	"net/http"
	"net/http/pprof"
)

// PprofMounts returns the standard net/http/pprof handlers as mounts for
// ServeHTTP, so daemons can expose CPU/heap/goroutine profiling on the same
// listener as /metrics. Callers should gate this behind a flag: the profile
// endpoints are debugging surface and cost CPU while sampled.
func PprofMounts() []Mount {
	return []Mount{
		{Pattern: "/debug/pprof/", Handler: http.HandlerFunc(pprof.Index)},
		{Pattern: "/debug/pprof/cmdline", Handler: http.HandlerFunc(pprof.Cmdline)},
		{Pattern: "/debug/pprof/profile", Handler: http.HandlerFunc(pprof.Profile)},
		{Pattern: "/debug/pprof/symbol", Handler: http.HandlerFunc(pprof.Symbol)},
		{Pattern: "/debug/pprof/trace", Handler: http.HandlerFunc(pprof.Trace)},
	}
}
