package metrics

import (
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
)

// TestHistQuantile pins the fixed-bucket quantile estimate: linear
// interpolation inside the target bucket, the last bound as the ceiling for
// overflow ranks, zero when empty.
func TestHistQuantile(t *testing.T) {
	h := NewHistogram([]int64{100, 200, 400})
	if got := h.snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %d, want 0", got)
	}
	// 10 observations in (100, 200]: the median interpolates inside it.
	for i := 0; i < 10; i++ {
		h.Observe(150)
	}
	s := h.snapshot()
	if got := s.Quantile(0.5); got != 150 {
		t.Fatalf("p50 = %d, want the bucket midpoint 150", got)
	}
	if s.P50 != s.Quantile(0.5) || s.P95 != s.Quantile(0.95) || s.P99 != s.Quantile(0.99) {
		t.Fatal("precomputed quantiles disagree with Quantile")
	}
	// Overflow observations cap the estimate at the last bound.
	h2 := NewHistogram([]int64{100, 200, 400})
	for i := 0; i < 10; i++ {
		h2.Observe(10_000)
	}
	if got := h2.snapshot().Quantile(0.99); got != 400 {
		t.Fatalf("overflow p99 = %d, want the last bound 400", got)
	}
	// Out-of-range q clamps instead of panicking.
	if a, b := s.Quantile(-1), s.Quantile(2); a > b || b > 200 {
		t.Fatalf("clamped quantiles = %d, %d", a, b)
	}
	// A skewed spread: 90 fast + 10 slow must pull p95 into the slow bucket.
	h3 := NewHistogram([]int64{100, 200, 400})
	for i := 0; i < 90; i++ {
		h3.Observe(50)
	}
	for i := 0; i < 10; i++ {
		h3.Observe(300)
	}
	s3 := h3.snapshot()
	if s3.P50 > 100 {
		t.Fatalf("p50 = %d, want inside the fast bucket", s3.P50)
	}
	if s3.P95 <= 200 || s3.P95 > 400 {
		t.Fatalf("p95 = %d, want inside the slow bucket (200, 400]", s3.P95)
	}
}

// TestWriteProm checks the exposition shape on a registry with labelled RED
// names and hostile label values: one # TYPE per metric, cumulative buckets
// closed by +Inf, escaped values.
func TestWriteProm(t *testing.T) {
	r := New()
	r.Counter("rpc.server.errors|method=midas.renew").Add(3)
	r.Counter(`weird|method=a"b\c` + "\nd").Inc()
	r.Gauge("ext.installed").Set(7)
	h := r.Histogram("rpc.server.ns|method=midas.renew", []int64{100, 200})
	h.Observe(50)
	h.Observe(150)
	h.Observe(999)

	var b strings.Builder
	WriteProm(&b, r.Snapshot())
	out := b.String()

	for _, want := range []string{
		"# TYPE rpc_server_errors counter\n",
		`rpc_server_errors{method="midas.renew"} 3` + "\n",
		`weird{method="a\"b\\c\nd"} 1` + "\n",
		"# TYPE ext_installed gauge\n",
		"ext_installed 7\n",
		"# TYPE rpc_server_ns histogram\n",
		`rpc_server_ns_bucket{method="midas.renew",le="100"} 1` + "\n",
		`rpc_server_ns_bucket{method="midas.renew",le="200"} 2` + "\n",
		`rpc_server_ns_bucket{method="midas.renew",le="+Inf"} 3` + "\n",
		`rpc_server_ns_sum{method="midas.renew"} 1199` + "\n",
		`rpc_server_ns_count{method="midas.renew"} 3` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE rpc_server_ns histogram") != 1 {
		t.Fatalf("duplicate TYPE line:\n%s", out)
	}

	// The HTTP handler reaches the same writer via ?format=prom.
	rec := httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=prom", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("prom content type = %q", ct)
	}
	if rec.Body.String() != out {
		t.Fatal("handler exposition differs from WriteProm")
	}
	rec = httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("default content type = %q", ct)
	}
}

// TestHealthValues pins the informational-value surface: values render after
// the checks, sorted, and never flip the verdict.
func TestHealthValues(t *testing.T) {
	h := NewHealth()
	h.Register("transport", func() error { return nil })
	h.RegisterValue("trace.spans_dropped", func() int64 { return 42 })
	h.RegisterValue("base.degraded_nodes", func() int64 { return 0 })
	h.RegisterValue("nil-fn-ignored", nil)
	rec := httptest.NewRecorder()
	h.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("healthy handler returned %d", rec.Code)
	}
	out := rec.Body.String()
	for _, want := range []string{"transport: ok\n", "base.degraded_nodes: 0\n", "trace.spans_dropped: 42\n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("healthz missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "nil-fn-ignored") {
		t.Fatalf("nil value fn rendered:\n%s", out)
	}
	if got := h.Values()["trace.spans_dropped"]; got != 42 {
		t.Fatalf("Values() = %d, want 42", got)
	}
}

// promSampleLine matches one exposition sample: sanitized metric name,
// optional well-formed label block, then a numeric value.
var promSampleLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\\\|\\"|\\n|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\\\|\\"|\\n|[^"\\])*")*\})? -?[0-9]+$`)

// FuzzPromExposition feeds arbitrary instrument names — label separators,
// quotes, backslashes, newlines, anything — through the exposition writer and
// requires every emitted line to stay inside the format grammar. A name that
// broke a line in two or leaked an unescaped quote would corrupt a scrape.
func FuzzPromExposition(f *testing.F) {
	f.Add("plain", "rpc.server.ns|method=midas.renew")
	f.Add("with|label=x", `evil|k=a"b`)
	f.Add("newline|l=a\nb", `backslash|l=a\b`)
	f.Add("", "|=")
	f.Add("0digit", "dots.every.where|a=1,b=2,malformed")
	f.Fuzz(func(t *testing.T, counterName, histName string) {
		r := New()
		r.Counter(counterName).Inc()
		h := r.Histogram(histName, []int64{100, 200})
		h.Observe(150)
		var b strings.Builder
		WriteProm(&b, r.Snapshot())
		out := b.String()
		for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
			if strings.HasPrefix(line, "# TYPE ") {
				rest := strings.TrimPrefix(line, "# TYPE ")
				fields := strings.Fields(rest)
				if len(fields) != 2 {
					t.Fatalf("malformed TYPE line %q in:\n%s", line, out)
				}
				continue
			}
			if !promSampleLine.MatchString(line) {
				t.Fatalf("line %q escapes the exposition grammar (inputs %q, %q):\n%s",
					line, counterName, histName, out)
			}
		}
	})
}
