package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file renders a Snapshot as Prometheus text exposition (format 0.0.4),
// so any off-the-shelf scraper can consume /metrics?format=prom without the
// platform importing a client library.
//
// Instrument names here are dots-and-pipes: "rpc.server.ns|method=midas.renew"
// means metric "rpc.server.ns" with label method="midas.renew" (the RED layer
// in internal/transport mints such names). promName splits the label suffix
// off, sanitizes the metric and label names to the Prometheus grammar, and
// escapes label values, so arbitrary method strings cannot corrupt the
// exposition.

// promSeries is one parsed instrument name: a sanitized metric name plus a
// rendered, escaped label block like {method="midas.renew"} (empty if none).
type promSeries struct {
	name   string
	labels string // "" or `{k="v",...}`
}

// sanitizeMetricName maps an arbitrary instrument name onto the Prometheus
// metric-name grammar [a-zA-Z_:][a-zA-Z0-9_:]*. Dots (our namespace
// separator) and anything else illegal become underscores.
func sanitizeMetricName(s string) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// sanitizeLabelName maps onto the label-name grammar [a-zA-Z_][a-zA-Z0-9_]*.
func sanitizeLabelName(s string) string {
	out := sanitizeMetricName(s)
	return strings.ReplaceAll(out, ":", "_")
}

// escapeLabelValue escapes a label value per the exposition format: backslash,
// double quote and newline are the three characters with escape sequences.
// The format requires valid UTF-8, so stray bytes become replacement runes.
func escapeLabelValue(s string) string {
	s = strings.ToValidUTF8(s, "�")
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// promParse splits an instrument name into metric name and label block. The
// label suffix is everything after the first '|', as comma-separated k=v
// pairs; malformed pairs keep their text as a value under the label "label"
// rather than being dropped, so nothing silently disappears.
func promParse(instrument string) promSeries {
	name, rest, found := strings.Cut(instrument, "|")
	s := promSeries{name: sanitizeMetricName(name)}
	if !found || rest == "" {
		return s
	}
	var parts []string
	for _, pair := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			k, v = "label", pair
		}
		// Not %q: the value is already exposition-escaped, and Go quoting
		// would double-escape it (and escape bytes the format leaves alone).
		parts = append(parts, fmt.Sprintf(`%s="%s"`, sanitizeLabelName(k), escapeLabelValue(v)))
	}
	s.labels = "{" + strings.Join(parts, ",") + "}"
	return s
}

// seriesLine renders one sample, merging extra labels (le for histogram
// buckets) into an existing label block.
func (s promSeries) line(suffix, extraLabel string, value any) string {
	labels := s.labels
	if extraLabel != "" {
		if labels == "" {
			labels = "{" + extraLabel + "}"
		} else {
			labels = labels[:len(labels)-1] + "," + extraLabel + "}"
		}
	}
	return fmt.Sprintf("%s%s%s %v\n", s.name, suffix, labels, value)
}

// WriteProm writes s as Prometheus text exposition, sorted by instrument name
// so scrapes are diffable. Histograms render as the conventional cumulative
// _bucket series (le in nanoseconds, closed by +Inf) plus _sum and _count.
func WriteProm(w io.Writer, s Snapshot) {
	typed := make(map[string]bool) // one # TYPE line per metric name

	writeType := func(name, kind string) {
		if !typed[name] {
			typed[name] = true
			fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
		}
	}

	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ps := promParse(n)
		writeType(ps.name, "counter")
		io.WriteString(w, ps.line("", "", s.Counters[n]))
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ps := promParse(n)
		writeType(ps.name, "gauge")
		io.WriteString(w, ps.line("", "", s.Gauges[n]))
	}

	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		ps := promParse(n)
		writeType(ps.name, "histogram")
		cum := uint64(0)
		for i, bound := range h.Bounds {
			if i < len(h.Counts) {
				cum += h.Counts[i]
			}
			io.WriteString(w, ps.line("_bucket", fmt.Sprintf(`le="%d"`, bound), cum))
		}
		io.WriteString(w, ps.line("_bucket", `le="+Inf"`, h.Count))
		io.WriteString(w, ps.line("_sum", "", h.Sum))
		io.WriteString(w, ps.line("_count", "", h.Count))
	}
}
