// Package metrics is the platform's observability core: a dependency-free,
// lock-light registry of atomic counters, gauges and fixed-bucket latency
// histograms. The paper's evaluation (§4.6: hook overhead, per-interception
// cost, lease-driven revocation latency) rests on being able to observe the
// middleware; this package is the introspection feed those numbers come from
// at run time, without one-off benchmarks.
//
// Design rules, mirroring the minimal-hook philosophy of the weaver:
//
//   - Every instrument is a single atomic word (counters, gauges) or a small
//     array of atomic words (histograms). No locks on the update path.
//   - All instrument methods are nil-receiver safe and no-ops on nil, and a
//     nil *Registry hands out nil instruments. Components therefore accept an
//     optional registry and instrument themselves unconditionally; an
//     un-instrumented deployment pays only a predictable nil check, and only
//     on paths that are already slow (dispatch, RPC, weave) — never on the
//     inactive join-point fast path, which stays one atomic pointer load.
//   - Snapshot() gives a consistent read: histogram totals are derived from
//     the very bucket counts captured in the snapshot, so the invariant
//     Count == sum(Counts) holds in every snapshot even under concurrent
//     writers.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter is a no-op sink.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The zero value is ready to use; a
// nil *Gauge is a no-op sink.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds d (may be negative).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultLatencyBuckets are the histogram bounds used for latency instruments
// across the platform: 1 µs … 10 s in decades, in nanoseconds. The paper's
// interesting latencies (900 ns interceptions, µs-scale weaves, ms-scale
// revocations, wireless RPC round trips) all land inside this range.
var DefaultLatencyBuckets = []int64{
	1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000, 10_000_000_000,
}

// Histogram counts observations into fixed buckets. Bucket i holds values
// v <= Bounds[i] (first matching bound); one implicit overflow bucket holds
// everything above the last bound. A nil *Histogram is a no-op sink.
type Histogram struct {
	bounds []int64
	counts []atomic.Uint64 // len(bounds)+1, last is overflow
	sum    atomic.Int64
}

// NewHistogram builds a histogram over the given upper bounds, which are
// sorted and de-duplicated. Empty bounds fall back to DefaultLatencyBuckets.
func NewHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	bs := append([]int64(nil), bounds...)
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	uniq := bs[:1]
	for _, b := range bs[1:] {
		if b != uniq[len(uniq)-1] {
			uniq = append(uniq, b)
		}
	}
	return &Histogram{bounds: uniq, counts: make([]atomic.Uint64, len(uniq)+1)}
}

// Observe records v into its bucket.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	// Buckets are few (≤ ~10): linear scan beats binary search in practice
	// and keeps the update branch-predictable.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// Sum returns the running sum of all observations (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Since records the elapsed time from t0 in nanoseconds.
func (h *Histogram) Since(t0 time.Time) {
	if h != nil {
		h.Observe(int64(time.Since(t0)))
	}
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// HistSnapshot is one histogram's consistent view: Count is derived from the
// captured Counts, so Count == sum(Counts) always holds. Bounds travel with
// the counts so any consumer of /metrics JSON can recompute quantiles; P50,
// P95 and P99 are precomputed from the same captured buckets for convenience.
type HistSnapshot struct {
	Bounds []int64  // upper bounds; Counts has one extra overflow bucket
	Counts []uint64 // len(Bounds)+1
	Count  uint64
	Sum    int64
	P50    int64
	P95    int64
	P99    int64
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// inside the bucket holding the target rank, the standard fixed-bucket
// estimate. Ranks landing in the overflow bucket report the last bound (the
// estimate cannot exceed what the buckets resolve). Returns 0 when empty.
func (h HistSnapshot) Quantile(q float64) int64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.Count)
	cum := 0.0
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			if i >= len(h.Bounds) {
				return h.Bounds[len(h.Bounds)-1]
			}
			lower := int64(0)
			if i > 0 {
				lower = h.Bounds[i-1]
			}
			frac := 1.0
			if c > 0 {
				frac = (target - cum) / float64(c)
			}
			if frac < 0 {
				frac = 0
			}
			return lower + int64(frac*float64(h.Bounds[i]-lower))
		}
		cum = next
	}
	return h.Bounds[len(h.Bounds)-1]
}

func (h *Histogram) snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: append([]int64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = h.sum.Load()
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	return s
}

// Snapshot is a point-in-time view of a registry.
type Snapshot struct {
	Counters   map[string]uint64
	Gauges     map[string]int64
	Histograms map[string]HistSnapshot
}

// Registry names and hands out instruments. Instrument lookup takes a lock;
// updates through the returned instruments never do. A nil *Registry hands
// out nil (no-op) instruments, so components can instrument themselves
// unconditionally.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given bounds on
// first use (later callers get the existing instrument regardless of bounds;
// nil bounds mean DefaultLatencyBuckets). Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	h = NewHistogram(bounds)
	r.histograms[name] = h
	return h
}

// Snapshot captures every instrument. Safe under concurrent writes; each
// histogram's Count is internally consistent with its captured buckets.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for n, h := range r.histograms {
		hists[n] = h
	}
	r.mu.RUnlock()

	for n, c := range counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range hists {
		s.Histograms[n] = h.snapshot()
	}
	return s
}

// VisitHistograms calls f with each histogram's name, observation count, and
// running sum, in no particular order. Unlike Snapshot it copies no buckets
// and computes no quantiles — the cheap choice for delta extraction on report
// paths that only need the totals. f may call back into the registry.
func (r *Registry) VisitHistograms(f func(name string, count uint64, sum int64)) {
	if r == nil {
		return
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.histograms))
	hists := make([]*Histogram, 0, len(r.histograms))
	for n, h := range r.histograms {
		names = append(names, n)
		hists = append(hists, h)
	}
	r.mu.RUnlock()
	for i, h := range hists {
		f(names[i], h.Count(), h.Sum())
	}
}

// CounterValue reads one counter by name without snapshotting the registry.
// Returns 0 when the counter does not exist (or on a nil registry).
func (r *Registry) CounterValue(name string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	return c.Value()
}
