package mobility

import (
	"fmt"
	"sync"
	"time"
)

// Mover advances nodes along waypoint routes at fixed speeds — the motion
// model behind scenarios like "the robot crosses the yard from hall-1 to
// hall-2". Each Step moves every routed node and fires the world's
// transition listeners through MoveNode, so connectivity, discovery and
// lease behaviour all follow automatically.
type Mover struct {
	world *World

	mu     sync.Mutex
	routes map[string]*route
}

type route struct {
	waypoints []Point
	speed     float64 // metres per second
	next      int
	loop      bool
}

// NewMover returns a mover over w.
func NewMover(w *World) *Mover {
	return &Mover{world: w, routes: make(map[string]*route)}
}

// SetRoute assigns node a waypoint route walked at speed m/s. With loop the
// route repeats from the first waypoint; otherwise the node stops at the
// last one.
func (m *Mover) SetRoute(node string, waypoints []Point, speed float64, loop bool) error {
	if _, ok := m.world.NodePos(node); !ok {
		return fmt.Errorf("mobility: unknown node %q", node)
	}
	if len(waypoints) == 0 {
		return fmt.Errorf("mobility: route needs waypoints")
	}
	if speed <= 0 {
		return fmt.Errorf("mobility: speed must be positive")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.routes[node] = &route{
		waypoints: append([]Point(nil), waypoints...),
		speed:     speed,
		loop:      loop,
	}
	return nil
}

// ClearRoute stops moving the node.
func (m *Mover) ClearRoute(node string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.routes, node)
}

// Moving reports whether the node has an active route.
func (m *Mover) Moving(node string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.routes[node]
	return ok
}

// Step advances every routed node by dt of simulated time. Nodes that reach
// the end of a non-looping route have their route cleared.
func (m *Mover) Step(dt time.Duration) {
	m.mu.Lock()
	type pending struct {
		node string
		to   Point
		done bool
	}
	var moves []pending
	for node, r := range m.routes {
		pos, ok := m.world.NodePos(node)
		if !ok {
			delete(m.routes, node)
			continue
		}
		budget := r.speed * dt.Seconds()
		done := false
		for budget > 0 {
			target := r.waypoints[r.next]
			d := pos.Dist(target)
			if d <= budget {
				pos = target
				budget -= d
				r.next++
				if r.next >= len(r.waypoints) {
					if r.loop {
						r.next = 0
					} else {
						done = true
						break
					}
				}
				continue
			}
			// Partial step toward the target.
			frac := budget / d
			pos = Point{
				X: pos.X + (target.X-pos.X)*frac,
				Y: pos.Y + (target.Y-pos.Y)*frac,
			}
			budget = 0
		}
		moves = append(moves, pending{node: node, to: pos, done: done})
	}
	for _, mv := range moves {
		if mv.done {
			delete(m.routes, mv.node)
		}
	}
	m.mu.Unlock()

	// Apply moves outside the lock: MoveNode fires transition listeners.
	for _, mv := range moves {
		_ = m.world.MoveNode(mv.node, mv.to)
	}
}
