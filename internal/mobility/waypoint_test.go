package mobility

import (
	"math"
	"testing"
	"time"
)

func TestMoverWalksRoute(t *testing.T) {
	w := twoHallWorld(t)
	if err := w.AddNode("robot", "r1", Point{X: 0, Y: 0}); err != nil {
		t.Fatal(err)
	}
	m := NewMover(w)
	// Walk from hall-1 (x=0) to hall-2 (x=100) at 10 m/s.
	if err := m.SetRoute("robot", []Point{{X: 100, Y: 0}}, 10, false); err != nil {
		t.Fatal(err)
	}

	var exits, enters int
	w.OnTransition(func(node string, entered, exited []string) {
		enters += len(entered)
		exits += len(exited)
	})

	m.Step(2 * time.Second) // 20 m: just outside hall-1's 10 m radius
	pos, _ := w.NodePos("robot")
	if math.Abs(pos.X-20) > 1e-9 {
		t.Fatalf("x = %f, want 20", pos.X)
	}
	if exits != 1 {
		t.Errorf("exits = %d", exits)
	}
	m.Step(8 * time.Second) // reaches x=100 exactly
	pos, _ = w.NodePos("robot")
	if math.Abs(pos.X-100) > 1e-9 {
		t.Fatalf("x = %f, want 100", pos.X)
	}
	if enters != 1 {
		t.Errorf("enters = %d", enters)
	}
	// Route finished: mover idles.
	if m.Moving("robot") {
		t.Error("finished route still active")
	}
	m.Step(time.Second)
	pos, _ = w.NodePos("robot")
	if pos.X != 100 {
		t.Errorf("node moved after route end: %v", pos)
	}
}

func TestMoverMultipleWaypoints(t *testing.T) {
	w := NewWorld()
	if err := w.AddNode("n", "n", Point{}); err != nil {
		t.Fatal(err)
	}
	m := NewMover(w)
	square := []Point{{X: 10, Y: 0}, {X: 10, Y: 10}, {X: 0, Y: 10}, {X: 0, Y: 0}}
	if err := m.SetRoute("n", square, 5, false); err != nil {
		t.Fatal(err)
	}
	// Total route length 40 m at 5 m/s = 8 s; step past a corner.
	m.Step(3 * time.Second) // 15 m: 10 along x, 5 up y
	pos, _ := w.NodePos("n")
	if math.Abs(pos.X-10) > 1e-9 || math.Abs(pos.Y-5) > 1e-9 {
		t.Fatalf("pos = %+v, want (10,5)", pos)
	}
	m.Step(5 * time.Second) // complete
	pos, _ = w.NodePos("n")
	if math.Abs(pos.X) > 1e-9 || math.Abs(pos.Y) > 1e-9 {
		t.Fatalf("pos = %+v, want origin", pos)
	}
}

func TestMoverLoops(t *testing.T) {
	w := NewWorld()
	if err := w.AddNode("n", "n", Point{}); err != nil {
		t.Fatal(err)
	}
	m := NewMover(w)
	if err := m.SetRoute("n", []Point{{X: 10, Y: 0}, {X: 0, Y: 0}}, 10, true); err != nil {
		t.Fatal(err)
	}
	m.Step(4 * time.Second) // 40 m = two full loops
	if !m.Moving("n") {
		t.Error("looping route should stay active")
	}
	pos, _ := w.NodePos("n")
	if math.Abs(pos.X) > 1e-9 {
		t.Errorf("pos after loops = %+v", pos)
	}
}

func TestMoverValidation(t *testing.T) {
	w := NewWorld()
	m := NewMover(w)
	if err := m.SetRoute("ghost", []Point{{X: 1}}, 1, false); err == nil {
		t.Error("unknown node accepted")
	}
	if err := w.AddNode("n", "n", Point{}); err != nil {
		t.Fatal(err)
	}
	if err := m.SetRoute("n", nil, 1, false); err == nil {
		t.Error("empty route accepted")
	}
	if err := m.SetRoute("n", []Point{{X: 1}}, 0, false); err == nil {
		t.Error("zero speed accepted")
	}
	m.ClearRoute("n") // no-op without a route
}

func TestMoverRemovedNode(t *testing.T) {
	w := NewWorld()
	if err := w.AddNode("n", "n", Point{}); err != nil {
		t.Fatal(err)
	}
	m := NewMover(w)
	if err := m.SetRoute("n", []Point{{X: 100}}, 1, false); err != nil {
		t.Fatal(err)
	}
	w.RemoveNode("n")
	m.Step(time.Second) // must drop the route rather than panic
	if m.Moving("n") {
		t.Error("route for removed node survived")
	}
}
