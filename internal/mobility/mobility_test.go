package mobility

import (
	"testing"
	"testing/quick"
)

func twoHallWorld(t *testing.T) *World {
	t.Helper()
	w := NewWorld()
	if err := w.AddArea(Area{Name: "hall-1", Center: Point{X: 0, Y: 0}, Radius: 10, BaseAddr: "base-1"}); err != nil {
		t.Fatal(err)
	}
	if err := w.AddArea(Area{Name: "hall-2", Center: Point{X: 100, Y: 0}, Radius: 10, BaseAddr: "base-2"}); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestAreaMembership(t *testing.T) {
	w := twoHallWorld(t)
	if err := w.AddNode("robot", "r1", Point{X: 1, Y: 1}); err != nil {
		t.Fatal(err)
	}
	if !w.InArea("robot", "hall-1") {
		t.Error("robot should be in hall-1")
	}
	if w.InArea("robot", "hall-2") {
		t.Error("robot should not be in hall-2")
	}
	areas := w.AreasContaining("robot")
	if len(areas) != 1 || areas[0] != "hall-1" {
		t.Errorf("AreasContaining = %v", areas)
	}
}

func TestTransitions(t *testing.T) {
	w := twoHallWorld(t)
	if err := w.AddNode("robot", "r1", Point{X: 0, Y: 0}); err != nil {
		t.Fatal(err)
	}
	type ev struct {
		node            string
		entered, exited []string
	}
	var events []ev
	w.OnTransition(func(node string, entered, exited []string) {
		events = append(events, ev{node, entered, exited})
	})

	// Move within hall-1: no transition.
	if err := w.MoveNode("robot", Point{X: 2, Y: 2}); err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatalf("unexpected events: %v", events)
	}
	// Move to no-man's land: exit hall-1.
	if err := w.MoveNode("robot", Point{X: 50, Y: 0}); err != nil {
		t.Fatal(err)
	}
	// Move into hall-2: enter hall-2.
	if err := w.MoveNode("robot", Point{X: 100, Y: 0}); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("events = %v", events)
	}
	if len(events[0].exited) != 1 || events[0].exited[0] != "hall-1" {
		t.Errorf("event[0] = %+v", events[0])
	}
	if len(events[1].entered) != 1 || events[1].entered[0] != "hall-2" {
		t.Errorf("event[1] = %+v", events[1])
	}
}

func TestLinkedNodeToBase(t *testing.T) {
	w := twoHallWorld(t)
	if err := w.AddNode("robot", "r1", Point{X: 0, Y: 0}); err != nil {
		t.Fatal(err)
	}
	if !w.Linked("r1", "base-1") || !w.Linked("base-1", "r1") {
		t.Error("in-range node should reach its base (both directions)")
	}
	if w.Linked("r1", "base-2") {
		t.Error("node should not reach a distant base")
	}
	if err := w.MoveNode("robot", Point{X: 100, Y: 0}); err != nil {
		t.Fatal(err)
	}
	if w.Linked("r1", "base-1") {
		t.Error("node that left should lose its base")
	}
	if !w.Linked("r1", "base-2") {
		t.Error("node should reach the new hall's base")
	}
}

func TestLinkedInfrastructure(t *testing.T) {
	w := twoHallWorld(t)
	if !w.Linked("base-1", "base-2") {
		t.Error("bases are wired")
	}
	if !w.Linked("base-1", "unknown-service") {
		t.Error("unknown addresses are wired infrastructure")
	}
}

func TestLinkedNodeToNode(t *testing.T) {
	w := twoHallWorld(t)
	if err := w.AddNode("a", "na", Point{X: 0, Y: 0}); err != nil {
		t.Fatal(err)
	}
	if err := w.AddNode("b", "nb", Point{X: 3, Y: 4}); err != nil {
		t.Fatal(err)
	}
	if w.Linked("na", "nb") {
		t.Error("ad-hoc links disabled by default")
	}
	w.SetNodeRange(5)
	if !w.Linked("na", "nb") {
		t.Error("nodes within range should link")
	}
	w.SetNodeRange(4.9)
	if w.Linked("na", "nb") {
		t.Error("nodes beyond range should not link")
	}
}

func TestRemoveNode(t *testing.T) {
	w := twoHallWorld(t)
	if err := w.AddNode("robot", "r1", Point{}); err != nil {
		t.Fatal(err)
	}
	w.RemoveNode("robot")
	if _, ok := w.NodePos("robot"); ok {
		t.Error("removed node still present")
	}
	// Its address becomes "infrastructure" (unknown).
	if !w.Linked("r1", "base-1") {
		t.Error("unknown addr should be wired")
	}
	// Re-adding works.
	if err := w.AddNode("robot", "r1", Point{}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateRegistration(t *testing.T) {
	w := twoHallWorld(t)
	if err := w.AddArea(Area{Name: "hall-1"}); err == nil {
		t.Error("duplicate area should fail")
	}
	if err := w.AddNode("n", "a", Point{}); err != nil {
		t.Fatal(err)
	}
	if err := w.AddNode("n", "b", Point{}); err == nil {
		t.Error("duplicate node should fail")
	}
	if err := w.MoveNode("ghost", Point{}); err == nil {
		t.Error("moving unknown node should fail")
	}
}

func TestDistProperties(t *testing.T) {
	// Symmetry and identity.
	if err := quick.Check(func(x1, y1, x2, y2 float64) bool {
		if !finite(x1) || !finite(y1) || !finite(x2) || !finite(y2) {
			return true
		}
		p, q := Point{X: x1, Y: y1}, Point{X: x2, Y: y2}
		return p.Dist(q) == q.Dist(p) && p.Dist(p) == 0
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func finite(f float64) bool {
	return f == f && f < 1e150 && f > -1e150
}

func TestNodeHears(t *testing.T) {
	w := twoHallWorld(t)
	if err := w.AddNode("robot", "r1", Point{X: 0, Y: 0}); err != nil {
		t.Fatal(err)
	}
	if !w.NodeHears("robot", "hall-1") {
		t.Error("robot should hear hall-1 announcements")
	}
	if w.NodeHears("robot", "hall-2") {
		t.Error("robot should not hear hall-2")
	}
}
