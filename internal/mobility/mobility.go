// Package mobility simulates the physical world of the paper's scenarios:
// production halls (areas) covered by base stations, and mobile nodes
// (robots, PDAs) moving between them. Its range oracle drives the in-process
// transport's connectivity, so a node leaving a hall observably loses contact
// with the hall's base station — which is exactly what makes extension leases
// lapse and adaptations get revoked.
package mobility

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Point is a position in the 2-D world, in metres.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance to q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Area is a circular coverage zone (a production hall) with a base station.
type Area struct {
	Name     string
	Center   Point
	Radius   float64
	BaseAddr string // transport address of the area's base station / lookup
}

// Contains reports whether p lies inside the area.
func (a Area) Contains(p Point) bool { return a.Center.Dist(p) <= a.Radius }

// TransitionFunc observes a node entering and/or leaving areas.
type TransitionFunc func(node string, entered, exited []string)

// World holds areas and nodes and answers connectivity queries.
type World struct {
	mu        sync.RWMutex
	areas     map[string]Area
	nodes     map[string]*nodeState
	addrOwner map[string]string // transport addr -> node name or area name
	nodeRange float64           // node-to-node radio range; 0 disables ad-hoc links
	listeners []TransitionFunc
}

type nodeState struct {
	name string
	addr string
	pos  Point
}

// NewWorld returns an empty world with ad-hoc (node-to-node) links disabled.
func NewWorld() *World {
	return &World{
		areas:     make(map[string]Area),
		nodes:     make(map[string]*nodeState),
		addrOwner: make(map[string]string),
	}
}

// SetNodeRange enables node-to-node links within r metres (0 disables).
func (w *World) SetNodeRange(r float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.nodeRange = r
}

// AddArea registers an area. Its BaseAddr becomes anchored to the area.
func (w *World) AddArea(a Area) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dup := w.areas[a.Name]; dup {
		return fmt.Errorf("mobility: area %q exists", a.Name)
	}
	w.areas[a.Name] = a
	if a.BaseAddr != "" {
		w.addrOwner[a.BaseAddr] = a.Name
	}
	return nil
}

// AddNode places a node at pos with the given transport address.
func (w *World) AddNode(name, addr string, pos Point) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dup := w.nodes[name]; dup {
		return fmt.Errorf("mobility: node %q exists", name)
	}
	w.nodes[name] = &nodeState{name: name, addr: addr, pos: pos}
	w.addrOwner[addr] = name
	return nil
}

// RemoveNode deletes a node from the world.
func (w *World) RemoveNode(name string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if n, ok := w.nodes[name]; ok {
		delete(w.addrOwner, n.addr)
		delete(w.nodes, name)
	}
}

// OnTransition registers a listener for area enter/exit events caused by
// MoveNode.
func (w *World) OnTransition(fn TransitionFunc) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.listeners = append(w.listeners, fn)
}

// MoveNode teleports the node to p, firing transition listeners for any area
// boundary crossings.
func (w *World) MoveNode(name string, p Point) error {
	w.mu.Lock()
	n, ok := w.nodes[name]
	if !ok {
		w.mu.Unlock()
		return fmt.Errorf("mobility: unknown node %q", name)
	}
	before := w.areasContainingLocked(n.pos)
	n.pos = p
	after := w.areasContainingLocked(p)
	listeners := append([]TransitionFunc(nil), w.listeners...)
	w.mu.Unlock()

	entered, exited := diff(before, after)
	if len(entered) == 0 && len(exited) == 0 {
		return nil
	}
	for _, fn := range listeners {
		fn(name, entered, exited)
	}
	return nil
}

// NodePos returns the node's current position.
func (w *World) NodePos(name string) (Point, bool) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	n, ok := w.nodes[name]
	if !ok {
		return Point{}, false
	}
	return n.pos, true
}

// InArea reports whether the node is inside the named area.
func (w *World) InArea(node, area string) bool {
	w.mu.RLock()
	defer w.mu.RUnlock()
	n, ok := w.nodes[node]
	a, ok2 := w.areas[area]
	return ok && ok2 && a.Contains(n.pos)
}

// AreasContaining lists the areas whose coverage includes the node, sorted.
func (w *World) AreasContaining(node string) []string {
	w.mu.RLock()
	defer w.mu.RUnlock()
	n, ok := w.nodes[node]
	if !ok {
		return nil
	}
	return w.areasContainingLocked(n.pos)
}

func (w *World) areasContainingLocked(p Point) []string {
	var out []string
	for name, a := range w.areas {
		if a.Contains(p) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Linked is the connectivity oracle for the in-process transport:
//   - base/infrastructure to base/infrastructure: always linked (wired)
//   - node to base: linked iff the node is inside the base's area
//   - node to node: linked iff both within the ad-hoc radio range
//   - addresses unknown to the world are treated as wired infrastructure
func (w *World) Linked(fromAddr, toAddr string) bool {
	w.mu.RLock()
	defer w.mu.RUnlock()
	fromNode, fromIsNode := w.nodeByAddrLocked(fromAddr)
	toNode, toIsNode := w.nodeByAddrLocked(toAddr)
	switch {
	case !fromIsNode && !toIsNode:
		return true
	case fromIsNode && toIsNode:
		return w.nodeRange > 0 && fromNode.pos.Dist(toNode.pos) <= w.nodeRange
	case fromIsNode:
		return w.nodeInsideAreaOfAddrLocked(fromNode, toAddr)
	default:
		return w.nodeInsideAreaOfAddrLocked(toNode, fromAddr)
	}
}

// LinkFunc adapts Linked for transport.InProc.SetLinkFunc.
func (w *World) LinkFunc() func(from, to string) bool {
	return w.Linked
}

func (w *World) nodeByAddrLocked(addr string) (*nodeState, bool) {
	owner, ok := w.addrOwner[addr]
	if !ok {
		return nil, false
	}
	n, isNode := w.nodes[owner]
	return n, isNode
}

func (w *World) nodeInsideAreaOfAddrLocked(n *nodeState, baseAddr string) bool {
	owner, ok := w.addrOwner[baseAddr]
	if !ok {
		return true // unknown infrastructure: wired
	}
	a, isArea := w.areas[owner]
	if !isArea {
		return false
	}
	return a.Contains(n.pos)
}

// NodeHears reports whether the node can hear announcements from the named
// area (i.e. is inside its coverage); used as a discovery bus filter.
func (w *World) NodeHears(node, area string) bool { return w.InArea(node, area) }

func diff(before, after []string) (entered, exited []string) {
	inBefore := make(map[string]bool, len(before))
	for _, a := range before {
		inBefore[a] = true
	}
	inAfter := make(map[string]bool, len(after))
	for _, a := range after {
		inAfter[a] = true
	}
	for _, a := range after {
		if !inBefore[a] {
			entered = append(entered, a)
		}
	}
	for _, a := range before {
		if !inAfter[a] {
			exited = append(exited, a)
		}
	}
	return entered, exited
}
