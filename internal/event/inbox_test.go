package event

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/simnet"
	"repro/internal/transport"
)

func note(src string, seq int64) Notification {
	return Notification{Source: src, Seq: seq, Kind: "k"}
}

// A scripted burst of duplicated and reordered notifications comes out the
// other side exactly once each, in sequence order.
func TestInboxDedupesAndReorders(t *testing.T) {
	var applied []int64
	in := NewInbox(func(n Notification) { applied = append(applied, n.Seq) })
	reg := metrics.New()
	in.Instrument(reg)

	fresh := 0
	for _, seq := range []int64{2, 1, 1, 3, 5, 5, 4} {
		if in.Deliver(note("lookup-1", seq)) {
			fresh++
		}
	}
	want := []int64{1, 2, 3, 4, 5}
	if len(applied) != len(want) {
		t.Fatalf("applied %v, want %v", applied, want)
	}
	for i := range want {
		if applied[i] != want[i] {
			t.Fatalf("applied %v, want %v", applied, want)
		}
	}
	if fresh != 5 {
		t.Fatalf("fresh = %d, want 5", fresh)
	}
	snap := reg.Snapshot()
	if snap.Counters["event.inbox_applied"] != 5 {
		t.Fatalf("inbox_applied = %d", snap.Counters["event.inbox_applied"])
	}
	if snap.Counters["event.inbox_duplicates"] != 2 {
		t.Fatalf("inbox_duplicates = %d", snap.Counters["event.inbox_duplicates"])
	}
	if snap.Counters["event.inbox_reorders"] == 0 {
		t.Fatal("reorders not counted")
	}
	if in.Pending() != 0 {
		t.Fatalf("pending = %d after the window drained", in.Pending())
	}
}

// Sequence numbering is per source: the same Seq from two sources is two
// distinct notifications.
func TestInboxTracksSourcesIndependently(t *testing.T) {
	count := 0
	in := NewInbox(func(Notification) { count++ })
	in.Deliver(note("a", 1))
	in.Deliver(note("b", 1))
	in.Deliver(note("a", 1)) // duplicate
	if count != 2 {
		t.Fatalf("applied = %d, want 2", count)
	}
}

// A gap never filled keeps later notifications held back.
func TestInboxHoldsBackAcrossGap(t *testing.T) {
	count := 0
	in := NewInbox(func(Notification) { count++ })
	in.Deliver(note("a", 2))
	in.Deliver(note("a", 3))
	if count != 0 {
		t.Fatalf("applied %d before the gap filled", count)
	}
	if in.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", in.Pending())
	}
	in.Deliver(note("a", 1))
	if count != 3 || in.Pending() != 0 {
		t.Fatalf("applied=%d pending=%d after gap filled", count, in.Pending())
	}
}

// End to end over a duplicating simulated link: every published event takes
// effect exactly once at the listener despite each datagram arriving twice.
func TestInboxExactlyOnceOverDuplicatingLink(t *testing.T) {
	net := simnet.New(nil, 5)
	defer net.Close()
	net.SetLink("lookup-1", "base-1", simnet.LinkProfile{Dup: 1})

	var applied atomic.Int64
	in := NewInbox(func(Notification) { applied.Add(1) })
	reg := metrics.New()
	in.Instrument(reg)
	mux := transport.NewMux()
	in.Register(mux, "notify")
	stop, err := net.Serve("base-1", mux)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	d := NewDispatcher("lookup-1", net.Node("lookup-1"), nil)
	defer d.Close()
	d.Subscribe("base-1", "notify", time.Minute)
	const events = 20
	for i := 0; i < events; i++ {
		if _, err := d.Publish("changed", i); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for applied.Load() != events {
		if time.Now().After(deadline) {
			t.Fatalf("applied = %d, want %d", applied.Load(), events)
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // absorb trailing duplicates
	if applied.Load() != events {
		t.Fatalf("applied = %d after duplicates, want exactly %d", applied.Load(), events)
	}
	if dups := reg.Snapshot().Counters["event.inbox_duplicates"]; dups != events {
		t.Fatalf("inbox_duplicates = %d, want %d (every event duplicated)", dups, events)
	}
}
