package event

import (
	"context"
	"sync"

	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Inbox turns the at-least-once, possibly reordered notification delivery of
// a lossy mobile link into exactly-once, in-order *effects* on the listener
// side. It tracks per source the next expected sequence number: duplicates
// (already applied or already buffered) are dropped, early arrivals are held
// back until the gap before them fills.
type Inbox struct {
	apply func(Notification)

	mu      sync.Mutex
	sources map[string]*seqWindow
	m       inboxMetrics
	tracer  *trace.Tracer
}

type seqWindow struct {
	next  int64                  // lowest sequence number not yet applied
	ahead map[int64]Notification // arrived out of order, waiting for the gap
}

// inboxMetrics counts dedup/reorder traffic; nil-safe no-ops until Instrument.
type inboxMetrics struct {
	applied    *metrics.Counter
	duplicates *metrics.Counter
	reorders   *metrics.Counter
}

// NewInbox returns an inbox invoking apply for each unique notification, in
// sequence order per source. apply runs under the inbox lock, so it must not
// call back into the inbox.
func NewInbox(apply func(Notification)) *Inbox {
	return &Inbox{apply: apply, sources: make(map[string]*seqWindow)}
}

// Instrument records applied, duplicate and out-of-order notifications in
// reg. A nil reg is a no-op.
func (in *Inbox) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.m = inboxMetrics{
		applied:    reg.Counter("event.inbox_applied"),
		duplicates: reg.Counter("event.inbox_duplicates"),
		reorders:   reg.Counter("event.inbox_reorders"),
	}
}

// Trace logs accepted, duplicate and held-back notifications to tr's
// structured event ring under the "event" component, each stamped with the
// publisher's trace ID. A nil tr is a no-op.
func (in *Inbox) Trace(tr *trace.Tracer) {
	if tr == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.tracer = tr
}

// eventCtx reconstitutes a context carrying n's span context so ring events
// are stamped with the publisher's trace ID.
func eventCtx(n Notification) context.Context {
	return trace.NewContext(context.Background(), n.Trace)
}

// Deliver feeds one received notification through the dedup window. It
// reports whether n was fresh (first sighting); the apply callback may run
// zero or more times depending on which gaps n fills.
func (in *Inbox) Deliver(n Notification) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	w, ok := in.sources[n.Source]
	if !ok {
		w = &seqWindow{next: 1, ahead: make(map[int64]Notification)}
		in.sources[n.Source] = w
	}
	if n.Seq < w.next {
		in.m.duplicates.Inc()
		in.tracer.Eventf(eventCtx(n), "event", "drop duplicate %s seq %d from %s (already applied)", n.Kind, n.Seq, n.Source)
		return false
	}
	if _, held := w.ahead[n.Seq]; held {
		in.m.duplicates.Inc()
		in.tracer.Eventf(eventCtx(n), "event", "drop duplicate %s seq %d from %s (already buffered)", n.Kind, n.Seq, n.Source)
		return false
	}
	if n.Seq > w.next {
		in.m.reorders.Inc()
		in.tracer.Eventf(eventCtx(n), "event", "hold early %s seq %d from %s (want %d)", n.Kind, n.Seq, n.Source, w.next)
	}
	w.ahead[n.Seq] = n
	for {
		nn, ready := w.ahead[w.next]
		if !ready {
			break
		}
		delete(w.ahead, w.next)
		w.next++
		in.m.applied.Inc()
		in.tracer.Eventf(eventCtx(nn), "event", "apply %s seq %d from %s", nn.Kind, nn.Seq, nn.Source)
		in.apply(nn)
	}
	return true
}

// Pending returns how many early arrivals are held back across all sources.
func (in *Inbox) Pending() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for _, w := range in.sources {
		n += len(w.ahead)
	}
	return n
}

// Register serves the inbox as a notification listener method on mux, the
// shape dispatchers deliver to.
func (in *Inbox) Register(mux *transport.Mux, method string) {
	transport.Register(mux, method, func(_ context.Context, n Notification) (struct{}, error) {
		in.Deliver(n)
		return struct{}{}, nil
	})
}
