package event

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/transport"
)

type collected struct {
	mu    sync.Mutex
	notes []Notification
}

func (c *collected) add(n Notification) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.notes = append(c.notes, n)
}

func (c *collected) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.notes)
}

func (c *collected) snapshot() []Notification {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Notification, len(c.notes))
	copy(out, c.notes)
	return out
}

func listenerMux(c *collected) *transport.Mux {
	mux := transport.NewMux()
	transport.Register(mux, "notify", func(_ context.Context, n Notification) (struct{}, error) {
		c.add(n)
		return struct{}{}, nil
	})
	return mux
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.After(2 * time.Second)
	for !cond() {
		select {
		case <-deadline:
			t.Fatal("condition not reached")
		case <-time.After(time.Millisecond):
		}
	}
}

type payload struct {
	X int
}

func TestPublishDelivers(t *testing.T) {
	fabric := transport.NewInProc()
	var got collected
	stop, _ := fabric.Serve("listener", listenerMux(&got))
	defer stop()

	d := NewDispatcher("src", fabric.Node("src"), clock.Real{})
	defer d.Close()
	id, _ := d.Subscribe("listener", "notify", time.Minute)
	if id == "" {
		t.Fatal("empty subscription id")
	}
	for i := 1; i <= 3; i++ {
		if _, err := d.Publish("tick", payload{X: i}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return got.len() == 3 })

	notes := got.snapshot()
	for i, n := range notes {
		if n.Seq != int64(i+1) {
			t.Errorf("seq[%d] = %d", i, n.Seq)
		}
		if n.Kind != "tick" || n.Source != "src" {
			t.Errorf("note = %+v", n)
		}
		var p payload
		if err := n.DecodeBody(&p); err != nil || p.X != i+1 {
			t.Errorf("body[%d] = %+v, %v", i, p, err)
		}
	}
}

func TestPublishToTargetsOne(t *testing.T) {
	fabric := transport.NewInProc()
	var a, b collected
	stopA, _ := fabric.Serve("a", listenerMux(&a))
	defer stopA()
	stopB, _ := fabric.Serve("b", listenerMux(&b))
	defer stopB()

	d := NewDispatcher("src", fabric.Node("src"), clock.Real{})
	defer d.Close()
	idA, _ := d.Subscribe("a", "notify", time.Minute)
	d.Subscribe("b", "notify", time.Minute)

	if err := d.PublishTo(idA, "only-a", payload{X: 9}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return a.len() == 1 })
	time.Sleep(10 * time.Millisecond)
	if b.len() != 0 {
		t.Error("b received a targeted event")
	}
}

func TestCancelStopsDelivery(t *testing.T) {
	fabric := transport.NewInProc()
	var got collected
	stop, _ := fabric.Serve("l", listenerMux(&got))
	defer stop()
	d := NewDispatcher("src", fabric.Node("src"), clock.Real{})
	defer d.Close()
	id, _ := d.Subscribe("l", "notify", time.Minute)
	d.Cancel(id)
	if n, _ := d.Publish("tick", payload{}); n != 0 {
		t.Errorf("published to %d subscribers after cancel", n)
	}
	if len(d.Subscribers()) != 0 {
		t.Error("subscriber list not empty")
	}
}

func TestLeaseExpiryDropsSubscriber(t *testing.T) {
	fabric := transport.NewInProc()
	var got collected
	stop, _ := fabric.Serve("l", listenerMux(&got))
	defer stop()
	clk := clock.NewManual(time.Unix(0, 0))
	d := NewDispatcher("src", fabric.Node("src"), clk)
	defer d.Close()
	d.Subscribe("l", "notify", 10*time.Second)
	clk.Advance(11 * time.Second)
	if n := d.ExpireNow(); n != 1 {
		t.Fatalf("expired %d, want 1", n)
	}
	if len(d.Subscribers()) != 0 {
		t.Error("expired subscriber still present")
	}
}

func TestUnreachableSubscriberDropped(t *testing.T) {
	fabric := transport.NewInProc()
	// No listener served at "ghost".
	d := NewDispatcher("src", fabric.Node("src"), clock.Real{})
	defer d.Close()
	d.Subscribe("ghost", "notify", time.Minute)
	for i := 0; i < maxFailures; i++ {
		if _, err := d.Publish("tick", payload{}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitFor(t, func() bool { return len(d.Subscribers()) == 0 })
}

func TestRenewUnknown(t *testing.T) {
	fabric := transport.NewInProc()
	d := NewDispatcher("src", fabric.Node("src"), clock.Real{})
	defer d.Close()
	if _, err := d.Renew("nope", time.Second); err == nil {
		t.Fatal("renew of unknown subscription should fail")
	}
}
