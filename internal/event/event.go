// Package event implements Jini-style remote events: leased listener
// registrations receiving sequenced, asynchronously delivered notifications.
// The lookup service uses it to tell extension bases about newly arrived
// adaptation services; the monitoring extensions use it to stream state
// changes to base stations.
package event

import (
	"context"
	"strconv"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/lease"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Notification is one delivered event. Seq increases per subscription, so
// listeners can detect loss or reordering. Trace carries the span context of
// the operation that published the event, so a notification delivered later
// on another node still joins the originating trace; the zero value means the
// publish was untraced.
type Notification struct {
	Source string
	Seq    int64
	Kind   string
	Body   []byte
	Trace  trace.SpanContext
}

// DecodeBody decodes the notification payload into v.
func (n *Notification) DecodeBody(v any) error {
	return transport.Decode(n.Body, v)
}

// Subscription describes one leased remote listener.
type Subscription struct {
	ID     string
	Addr   string // transport address the listener serves
	Method string // RPC method receiving Notification
}

const (
	// deliveryQueue bounds per-subscriber buffering.
	deliveryQueue = 64
	// maxFailures drops a subscriber after this many consecutive send errors.
	maxFailures = 3
	// deliveryTimeout bounds one remote notify call.
	deliveryTimeout = 2 * time.Second
)

type subscriber struct {
	sub      Subscription
	leaseID  lease.ID
	seq      int64
	failures int
	queue    chan Notification
	done     chan struct{}
}

// Dispatcher fans notifications out to leased subscribers. Each subscriber
// has a private ordered queue drained by its own goroutine, so one slow
// listener cannot stall the others.
type Dispatcher struct {
	source  string
	caller  transport.Caller
	grantor *lease.Grantor

	mu   sync.Mutex
	subs map[string]*subscriber
	next int
}

// NewDispatcher returns a dispatcher identified as source, delivering through
// caller, leasing on clk.
func NewDispatcher(source string, caller transport.Caller, clk clock.Clock) *Dispatcher {
	return &Dispatcher{
		source:  source,
		caller:  caller,
		grantor: lease.NewGrantor(clk),
		subs:    make(map[string]*subscriber),
	}
}

// Grantor exposes the lease grantor so callers can drive expiry sweeps.
func (d *Dispatcher) Grantor() *lease.Grantor { return d.grantor }

// Subscribe registers a leased listener and returns its id and lease.
func (d *Dispatcher) Subscribe(addr, method string, dur time.Duration) (string, lease.Lease) {
	d.mu.Lock()
	d.next++
	id := d.source + "/sub-" + strconv.Itoa(d.next)
	s := &subscriber{
		sub:   Subscription{ID: id, Addr: addr, Method: method},
		queue: make(chan Notification, deliveryQueue),
		done:  make(chan struct{}),
	}
	d.subs[id] = s
	d.mu.Unlock()

	l := d.grantor.Grant(dur, func(lease.ID) { d.remove(id) })
	d.mu.Lock()
	s.leaseID = l.ID
	d.mu.Unlock()

	go d.drain(s)
	return id, l
}

// Renew extends a subscription's lease.
func (d *Dispatcher) Renew(id string, dur time.Duration) (lease.Lease, error) {
	d.mu.Lock()
	s, ok := d.subs[id]
	d.mu.Unlock()
	if !ok {
		return lease.Lease{}, lease.ErrUnknownLease
	}
	return d.grantor.Renew(s.leaseID, dur)
}

// Cancel removes a subscription.
func (d *Dispatcher) Cancel(id string) {
	d.mu.Lock()
	s, ok := d.subs[id]
	d.mu.Unlock()
	if ok {
		_ = d.grantor.Cancel(s.leaseID)
		d.remove(id)
	}
}

// Subscribers returns the ids of live subscriptions.
func (d *Dispatcher) Subscribers() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.subs))
	for id := range d.subs {
		out = append(out, id)
	}
	return out
}

// Publish encodes v and enqueues a notification of the given kind to every
// subscriber. Returns the number of subscribers targeted.
func (d *Dispatcher) Publish(kind string, v any) (int, error) {
	return d.PublishCtx(context.Background(), kind, v)
}

// PublishCtx is Publish carrying the span context from ctx (if any) in the
// notification envelope, so asynchronous delivery still joins the publishing
// operation's trace.
func (d *Dispatcher) PublishCtx(ctx context.Context, kind string, v any) (int, error) {
	body, err := transport.Encode(v)
	if err != nil {
		return 0, err
	}
	sc, _ := trace.FromContext(ctx)
	d.mu.Lock()
	targets := make([]*subscriber, 0, len(d.subs))
	for _, s := range d.subs {
		targets = append(targets, s)
	}
	d.mu.Unlock()
	for _, s := range targets {
		d.enqueue(s, kind, body, sc)
	}
	return len(targets), nil
}

// PublishTo notifies a single subscription.
func (d *Dispatcher) PublishTo(id, kind string, v any) error {
	return d.PublishToCtx(context.Background(), id, kind, v)
}

// PublishToCtx is PublishTo carrying the span context from ctx (if any).
func (d *Dispatcher) PublishToCtx(ctx context.Context, id, kind string, v any) error {
	body, err := transport.Encode(v)
	if err != nil {
		return err
	}
	sc, _ := trace.FromContext(ctx)
	d.mu.Lock()
	s, ok := d.subs[id]
	d.mu.Unlock()
	if !ok {
		return lease.ErrUnknownLease
	}
	d.enqueue(s, kind, body, sc)
	return nil
}

// ExpireNow sweeps lapsed subscription leases.
func (d *Dispatcher) ExpireNow() int { return d.grantor.ExpireNow() }

// Close drops all subscriptions and waits for delivery goroutines.
func (d *Dispatcher) Close() {
	d.mu.Lock()
	ids := make([]string, 0, len(d.subs))
	for id := range d.subs {
		ids = append(ids, id)
	}
	d.mu.Unlock()
	for _, id := range ids {
		d.remove(id)
	}
}

func (d *Dispatcher) enqueue(s *subscriber, kind string, body []byte, sc trace.SpanContext) {
	d.mu.Lock()
	s.seq++
	n := Notification{Source: d.source, Seq: s.seq, Kind: kind, Body: body, Trace: sc}
	d.mu.Unlock()
	select {
	case s.queue <- n:
	default:
		// Queue overflow counts as a delivery failure; the subscriber is
		// clearly not keeping up.
		d.fail(s)
	}
}

func (d *Dispatcher) drain(s *subscriber) {
	for {
		select {
		case <-s.done:
			return
		case n := <-s.queue:
			// Reconstitute the publisher's span context so the notify RPC
			// (and anything the listener does with it) joins its trace.
			ctx, cancel := context.WithTimeout(trace.NewContext(context.Background(), n.Trace), deliveryTimeout)
			err := d.caller.Call(ctx, s.sub.Addr, s.sub.Method, n, nil)
			cancel()
			if err != nil {
				d.fail(s)
			} else {
				d.mu.Lock()
				s.failures = 0
				d.mu.Unlock()
			}
		}
	}
}

func (d *Dispatcher) fail(s *subscriber) {
	d.mu.Lock()
	s.failures++
	dead := s.failures >= maxFailures
	id := s.sub.ID
	leaseID := s.leaseID
	d.mu.Unlock()
	if dead {
		_ = d.grantor.Cancel(leaseID)
		d.remove(id)
	}
}

func (d *Dispatcher) remove(id string) {
	d.mu.Lock()
	s, ok := d.subs[id]
	if ok {
		delete(d.subs, id)
	}
	d.mu.Unlock()
	if ok {
		close(s.done)
	}
}
