package txn

import (
	"errors"
	"testing"

	"repro/internal/store"
)

func TestCommitAppliesWrites(t *testing.T) {
	kv := store.NewKV()
	m := NewManager(kv)
	tx := m.Begin()
	if err := tx.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Put("b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	// Writes invisible before commit.
	if _, ok := kv.Get("a"); ok {
		t.Error("uncommitted write visible")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	v, ok := kv.Get("a")
	if !ok || string(v) != "1" {
		t.Errorf("a = %q, %v", v, ok)
	}
	commits, conflicts := m.Stats()
	if commits != 1 || conflicts != 0 {
		t.Errorf("stats = %d, %d", commits, conflicts)
	}
}

func TestReadYourOwnWrites(t *testing.T) {
	kv := store.NewKV()
	m := NewManager(kv)
	tx := m.Begin()
	if err := tx.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := tx.Get("k")
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get = %q, %v, %v", v, ok, err)
	}
	if err := tx.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := tx.Get("k"); ok {
		t.Error("deleted key visible in txn")
	}
	tx.Abort()
}

func TestAbortDiscards(t *testing.T) {
	kv := store.NewKV()
	m := NewManager(kv)
	tx := m.Begin()
	if err := tx.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if _, ok := kv.Get("a"); ok {
		t.Error("aborted write applied")
	}
	if err := tx.Commit(); !errors.Is(err, ErrFinished) {
		t.Errorf("commit after abort: %v", err)
	}
}

func TestFirstCommitterWins(t *testing.T) {
	kv := store.NewKV()
	if err := kv.Put("balance", []byte("100")); err != nil {
		t.Fatal(err)
	}
	m := NewManager(kv)

	t1 := m.Begin()
	t2 := m.Begin()
	if _, _, err := t1.Get("balance"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := t2.Get("balance"); err != nil {
		t.Fatal(err)
	}
	if err := t1.Put("balance", []byte("90")); err != nil {
		t.Fatal(err)
	}
	if err := t2.Put("balance", []byte("80")); err != nil {
		t.Fatal(err)
	}

	if err := t1.Commit(); err != nil {
		t.Fatalf("first committer: %v", err)
	}
	if err := t2.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("second committer: want conflict, got %v", err)
	}
	v, _ := kv.Get("balance")
	if string(v) != "90" {
		t.Errorf("balance = %q", v)
	}
	_, conflicts := m.Stats()
	if conflicts != 1 {
		t.Errorf("conflicts = %d", conflicts)
	}
}

func TestBlindWritesDoNotConflict(t *testing.T) {
	kv := store.NewKV()
	m := NewManager(kv)
	t1 := m.Begin()
	t2 := m.Begin()
	if err := t1.Put("x", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := t2.Put("y", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatalf("disjoint blind writes should both commit: %v", err)
	}
}

func TestOpsAfterFinish(t *testing.T) {
	kv := store.NewKV()
	m := NewManager(kv)
	tx := m.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Put("a", nil); !errors.Is(err, ErrFinished) {
		t.Error("Put after commit should fail")
	}
	if _, _, err := tx.Get("a"); !errors.Is(err, ErrFinished) {
		t.Error("Get after commit should fail")
	}
	if err := tx.Delete("a"); !errors.Is(err, ErrFinished) {
		t.Error("Delete after commit should fail")
	}
}
