// Package txn is a small optimistic transaction manager over the store.KV,
// supporting the "ad-hoc transactions for mobile services" extension the
// paper cites as one of the functionality extensions measured in §4.6:
// transactions buffer writes, record read versions, and commit with
// first-committer-wins validation.
package txn

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/store"
)

// Errors returned by Commit and post-finish operations.
var (
	// ErrConflict means a read or written key changed under the transaction.
	ErrConflict = errors.New("txn: conflict, transaction aborted")
	// ErrFinished means the transaction was already committed or aborted.
	ErrFinished = errors.New("txn: already finished")
)

// Manager creates transactions over one KV and serialises commits.
type Manager struct {
	kv *store.KV

	mu        sync.Mutex
	commits   int64
	conflicts int64
}

// NewManager returns a manager over kv.
func NewManager(kv *store.KV) *Manager {
	return &Manager{kv: kv}
}

// Stats reports total commits and conflicts.
func (m *Manager) Stats() (commits, conflicts int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.commits, m.conflicts
}

// Begin starts a transaction.
func (m *Manager) Begin() *Txn {
	return &Txn{
		m:      m,
		reads:  make(map[string]int64),
		writes: make(map[string][]byte),
	}
}

// Txn is one in-flight transaction. Not safe for concurrent use by multiple
// goroutines.
type Txn struct {
	m        *Manager
	reads    map[string]int64  // key -> version observed
	writes   map[string][]byte // nil value = delete
	finished bool
}

// Get reads a key, observing either the transaction's own pending write or
// the underlying store (recording the version for validation).
func (t *Txn) Get(key string) ([]byte, bool, error) {
	if t.finished {
		return nil, false, ErrFinished
	}
	if v, ok := t.writes[key]; ok {
		if v == nil {
			return nil, false, nil
		}
		return append([]byte(nil), v...), true, nil
	}
	v, ok := t.m.kv.Get(key)
	t.reads[key] = t.m.kv.Version(key)
	return v, ok, nil
}

// Put buffers a write.
func (t *Txn) Put(key string, value []byte) error {
	if t.finished {
		return ErrFinished
	}
	t.writes[key] = append([]byte(nil), value...)
	return nil
}

// Delete buffers a deletion.
func (t *Txn) Delete(key string) error {
	if t.finished {
		return ErrFinished
	}
	t.writes[key] = nil
	return nil
}

// Commit validates read versions and applies buffered writes atomically with
// respect to other transactions from the same manager.
func (t *Txn) Commit() error {
	if t.finished {
		return ErrFinished
	}
	t.finished = true

	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	// Validation: every key read (and not overwritten before reading) must
	// still be at the observed version; keys written blind are not checked.
	for key, ver := range t.reads {
		if t.m.kv.Version(key) != ver {
			t.m.conflicts++
			return fmt.Errorf("%w: key %q", ErrConflict, key)
		}
	}
	for key, val := range t.writes {
		var err error
		if val == nil {
			err = t.m.kv.Delete(key)
		} else {
			err = t.m.kv.Put(key, val)
		}
		if err != nil {
			return err
		}
	}
	t.m.commits++
	return nil
}

// Abort discards buffered writes.
func (t *Txn) Abort() {
	t.finished = true
	t.writes = nil
	t.reads = nil
}
