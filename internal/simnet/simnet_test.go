package simnet

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/metrics"
	"repro/internal/transport"
)

// echoServer serves one "echo" method that counts invocations and returns
// the request payload unchanged.
func echoServer(t *testing.T, n *Net, addr string) (*atomic.Int64, func()) {
	t.Helper()
	var count atomic.Int64
	mux := transport.NewMux()
	transport.Register(mux, "echo", func(_ context.Context, req string) (string, error) {
		count.Add(1)
		return req, nil
	})
	stop, err := n.Serve(addr, mux)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stop)
	return &count, stop
}

func call(c transport.Caller, to string) error {
	var resp string
	return c.Call(context.Background(), to, "echo", "ping", &resp)
}

func TestFaultFreeRoundTrip(t *testing.T) {
	n := New(nil, 1)
	defer n.Close()
	count, _ := echoServer(t, n, "b")
	var resp string
	if err := n.Node("a").Call(context.Background(), "b", "echo", "hello", &resp); err != nil {
		t.Fatal(err)
	}
	if resp != "hello" || count.Load() != 1 {
		t.Fatalf("resp=%q count=%d", resp, count.Load())
	}
}

func TestAsymmetricPartition(t *testing.T) {
	n := New(nil, 1)
	defer n.Close()
	countA, _ := echoServer(t, n, "a")
	countB, _ := echoServer(t, n, "b")

	n.Partition("a", "b")
	if err := call(n.Node("a"), "b"); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("a->b through partition: %v", err)
	}
	if countB.Load() != 0 {
		t.Fatal("partitioned request was delivered")
	}
	// The reverse direction still flows: b's request reaches a, but the
	// response crosses a->b, which is blocked — handler runs, caller fails.
	if err := call(n.Node("b"), "a"); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("b->a response should be lost: %v", err)
	}
	if countA.Load() != 1 {
		t.Fatalf("request b->a should have been delivered once, got %d", countA.Load())
	}

	n.HealBoth("a", "b")
	if err := call(n.Node("a"), "b"); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

func TestCrashRestartAndWipe(t *testing.T) {
	n := New(nil, 1)
	defer n.Close()
	count, _ := echoServer(t, n, "b")
	c := n.Node("a")
	if err := call(c, "b"); err != nil {
		t.Fatal(err)
	}

	n.Crash("b")
	if err := call(c, "b"); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("call to crashed node: %v", err)
	}
	// Calls *from* a crashed node fail too.
	if err := call(n.Node("b"), "a"); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("call from crashed node: %v", err)
	}

	n.Restart("b") // state retained
	if err := call(c, "b"); err != nil {
		t.Fatalf("after restart: %v", err)
	}
	if count.Load() != 2 {
		t.Fatalf("restart should retain the handler, count=%d", count.Load())
	}

	n.Wipe("b")
	if err := call(c, "b"); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("call to wiped node: %v", err)
	}
	n.Restart("b") // no-op: state is gone
	if err := call(c, "b"); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("restart after wipe must not resurrect state: %v", err)
	}
	fresh, _ := echoServer(t, n, "b") // restart from scratch
	if err := call(c, "b"); err != nil {
		t.Fatalf("after re-serve: %v", err)
	}
	if fresh.Load() != 1 || count.Load() != 2 {
		t.Fatalf("wiped state leaked: fresh=%d old=%d", fresh.Load(), count.Load())
	}
}

func TestSynchronousDuplicateDelivery(t *testing.T) {
	n := New(nil, 1)
	defer n.Close()
	count, _ := echoServer(t, n, "b")
	n.SetLink("a", "b", LinkProfile{Dup: 1})
	if err := call(n.Node("a"), "b"); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 2 {
		t.Fatalf("handler ran %d times, want 2 (original + duplicate)", count.Load())
	}
}

func TestDelayedDuplicateDelivery(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	n := New(clk, 1)
	defer n.Close()
	count, _ := echoServer(t, n, "b")
	n.SetLink("a", "b", LinkProfile{Dup: 1, DupDelay: 5 * time.Second})
	if err := call(n.Node("a"), "b"); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 1 {
		t.Fatalf("duplicate delivered early: %d", count.Load())
	}
	Advance(clk, 6*time.Second, time.Second)
	deadline := time.Now().Add(5 * time.Second)
	for count.Load() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("delayed duplicate never delivered, count=%d", count.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestLatencyRunsOnInjectedClock(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	n := New(clk, 1)
	defer n.Close()
	echoServer(t, n, "b")
	n.SetLinkBoth("a", "b", LinkProfile{LatencyMin: 10 * time.Millisecond, LatencyMax: 10 * time.Millisecond})

	done := make(chan error, 1)
	go func() { done <- call(n.Node("a"), "b") }()
	select {
	case err := <-done:
		t.Fatalf("call completed without the clock advancing: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	stop := Drive(clk, 5*time.Millisecond)
	defer stop()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := clk.Now().Sub(time.Unix(0, 0)); got < 20*time.Millisecond {
		t.Fatalf("round trip took %v simulated, want >= 20ms (two one-way hops)", got)
	}
}

func TestSeededFaultsReplayIdentically(t *testing.T) {
	run := func(seed int64) (metrics.Snapshot, []bool) {
		reg := metrics.New()
		n := New(nil, seed)
		defer n.Close()
		n.Instrument(reg)
		echoServer(t, n, "b")
		n.SetLinkBoth("a", "b", LinkProfile{Loss: 0.4, Dup: 0.3})
		c := n.Node("a")
		var outcomes []bool
		for i := 0; i < 50; i++ {
			outcomes = append(outcomes, call(c, "b") == nil)
		}
		return reg.Snapshot(), outcomes
	}
	s1, o1 := run(99)
	s2, o2 := run(99)
	if !reflect.DeepEqual(o1, o2) {
		t.Fatalf("same seed, different call outcomes:\n%v\n%v", o1, o2)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("same seed, different metrics:\n%+v\n%+v", s1, s2)
	}
	if s1.Counters["simnet.losses"] == 0 || s1.Counters["simnet.dups"] == 0 {
		t.Fatalf("faults not exercised: %+v", s1.Counters)
	}
	_, o3 := run(100)
	if reflect.DeepEqual(o1, o3) {
		t.Fatal("different seeds produced identical 50-call outcome sequences")
	}
}

func TestReorderAddsDelayAndCounts(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	reg := metrics.New()
	n := New(clk, 1)
	defer n.Close()
	n.Instrument(reg)
	echoServer(t, n, "b")
	n.SetLink("a", "b", LinkProfile{Reorder: 1, ReorderDelay: 50 * time.Millisecond})

	stop := Drive(clk, 10*time.Millisecond)
	defer stop()
	if err := call(n.Node("a"), "b"); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters["simnet.reorders"]; got != 1 {
		t.Fatalf("simnet.reorders = %d, want 1", got)
	}
	if got := clk.Now().Sub(time.Unix(0, 0)); got < 50*time.Millisecond {
		t.Fatalf("reordered message arrived after %v, want >= 50ms held back", got)
	}
}

func TestParseFaults(t *testing.T) {
	p, err := ParseFaults("loss=0.1, dup=0.05, reorder=0.02, latmin=5ms, latmax=50ms, dupdelay=1s")
	if err != nil {
		t.Fatal(err)
	}
	want := LinkProfile{
		Loss: 0.1, Dup: 0.05, Reorder: 0.02,
		LatencyMin: 5 * time.Millisecond, LatencyMax: 50 * time.Millisecond,
		DupDelay: time.Second,
	}
	if p != want {
		t.Fatalf("got %+v, want %+v", p, want)
	}
	for _, bad := range []string{"loss=2", "nope=1", "latmin=xyz", "loss"} {
		if _, err := ParseFaults(bad); err == nil {
			t.Fatalf("ParseFaults(%q) accepted", bad)
		}
	}
	if p, err := ParseFaults(""); err != nil || p != (LinkProfile{}) {
		t.Fatalf("empty spec: %+v, %v", p, err)
	}
}

func TestChaosWrapperInjectsFaults(t *testing.T) {
	n := New(nil, 1)
	defer n.Close()
	count, _ := echoServer(t, n, "b")
	reg := metrics.New()
	chaos := NewChaos(n.Node("a"), 3, LinkProfile{Loss: 0.5, Dup: 0.2})
	chaos.Instrument(reg)
	okCalls := 0
	for i := 0; i < 40; i++ {
		if call(chaos, "b") == nil {
			okCalls++
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["simnet.losses"] == 0 {
		t.Fatal("chaos injected no losses")
	}
	if okCalls == 0 || okCalls == 40 {
		t.Fatalf("okCalls = %d, want a mix", okCalls)
	}
	if dups := snap.Counters["simnet.dups"]; int64(count.Load()) != int64(okCalls)+int64(dups) {
		t.Fatalf("handler ran %d times, want %d ok + %d dups", count.Load(), okCalls, dups)
	}
}
