package simnet

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/metrics"
	"repro/internal/transport"
)

// ParseFaults parses a comma-separated fault spec into a LinkProfile, e.g.
//
//	loss=0.1,dup=0.05,reorder=0.02,latmin=5ms,latmax=50ms
//
// Keys: loss, dup, reorder (probabilities in [0,1]); latmin, latmax,
// dupdelay, reorderdelay (Go durations). Unknown keys are errors so typos in
// a -faults flag fail loudly instead of silently running fault-free.
func ParseFaults(spec string) (LinkProfile, error) {
	var p LinkProfile
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return p, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return p, fmt.Errorf("simnet: fault spec %q: want key=value", kv)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		switch key {
		case "loss", "dup", "reorder":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return p, fmt.Errorf("simnet: fault %s=%q: want probability in [0,1]", key, val)
			}
			switch key {
			case "loss":
				p.Loss = f
			case "dup":
				p.Dup = f
			case "reorder":
				p.Reorder = f
			}
		case "latmin", "latmax", "dupdelay", "reorderdelay":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return p, fmt.Errorf("simnet: fault %s=%q: want non-negative duration", key, val)
			}
			switch key {
			case "latmin":
				p.LatencyMin = d
			case "latmax":
				p.LatencyMax = d
			case "dupdelay":
				p.DupDelay = d
			case "reorderdelay":
				p.ReorderDelay = d
			}
		default:
			return p, fmt.Errorf("simnet: unknown fault key %q", key)
		}
	}
	if p.LatencyMax < p.LatencyMin {
		p.LatencyMax = p.LatencyMin
	}
	return p, nil
}

// Chaos wraps a real transport.Caller with seeded fault injection — loss,
// latency, duplication, reordering — for manual chaos runs against live
// fabrics (cmd/node -faults). Unlike Net it sits caller-side only: a dropped
// message surfaces as ErrUnreachable without touching the wire, a duplicated
// one is sent twice.
type Chaos struct {
	inner transport.Caller
	prof  LinkProfile
	clk   clock.Clock

	mu  sync.Mutex
	rng *rand.Rand

	m netMetrics
}

// NewChaos returns a chaos wrapper around inner drawing faults from seed.
func NewChaos(inner transport.Caller, seed int64, prof LinkProfile) *Chaos {
	return &Chaos{
		inner: inner,
		prof:  prof,
		clk:   clock.Real{},
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Instrument records injected faults in reg under the simnet.* names. A nil
// reg is a no-op.
func (c *Chaos) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = newNetMetrics(reg)
}

// Call implements transport.Caller.
func (c *Chaos) Call(ctx context.Context, to, method string, req, resp any) error {
	c.mu.Lock()
	c.m.calls.Inc()
	p := c.prof
	lost := c.rng.Float64() < p.Loss
	dup := c.rng.Float64() < p.Dup
	reordered := c.rng.Float64() < p.Reorder
	u := c.rng.Float64()
	c.mu.Unlock()

	latency := p.LatencyMin
	if p.LatencyMax > p.LatencyMin {
		latency += time.Duration(u * float64(p.LatencyMax-p.LatencyMin))
	}
	if reordered {
		c.m.reorders.Inc()
		extra := p.ReorderDelay
		if extra <= 0 {
			extra = p.LatencyMax
		}
		latency += extra
	}
	if lost {
		c.m.losses.Inc()
		return fmt.Errorf("%w: %s (chaos: message lost)", transport.ErrUnreachable, to)
	}
	if latency > 0 {
		select {
		case <-c.clk.After(latency):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	err := c.inner.Call(ctx, to, method, req, resp)
	c.m.delivered.Inc()
	if dup && err == nil {
		// Retransmit: the duplicate's response is discarded.
		c.m.dups.Inc()
		_ = c.inner.Call(ctx, to, method, req, nil)
	}
	return err
}
