// Package simnet is a deterministic, seeded network simulator for testing
// the platform under the hostile conditions of the paper's testbed: nodes
// roam out of coverage, wireless links lose, delay, duplicate and reorder
// messages, and bases or nodes crash and restart. It implements the
// transport.Caller/server surface, so every distributed component (bases,
// receivers, lookup services, event dispatchers) runs over it unmodified.
//
// All randomness comes from per-link RNGs derived from one seed, and all
// delays run on an injected clock (typically clock.Manual), so a scenario's
// fault schedule — which messages are lost, duplicated or delayed, and by
// how much — replays identically from the same seed.
package simnet

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/metrics"
	"repro/internal/transport"
)

// LinkProfile describes the fault behaviour of one directed link.
type LinkProfile struct {
	// LatencyMin/LatencyMax bound the one-way delivery latency, sampled
	// uniformly per message. Zero means instantaneous delivery.
	LatencyMin, LatencyMax time.Duration
	// Loss is the probability a message is dropped in flight.
	Loss float64
	// Dup is the probability a request is delivered a second time (the
	// duplicate's response is discarded, as a retransmitted datagram's
	// would be).
	Dup float64
	// DupDelay postpones the duplicate delivery by that much simulated
	// time; zero re-delivers immediately, back to back. A delayed duplicate
	// is how an old message overtakes newer ones.
	DupDelay time.Duration
	// Reorder is the probability a message is held back an extra
	// ReorderDelay, letting later traffic overtake it.
	Reorder float64
	// ReorderDelay is the extra in-flight delay of a reordered message
	// (default LatencyMax).
	ReorderDelay time.Duration
}

type linkKey struct{ from, to string }

// link is the per-directed-pair simulation state. Each link owns its RNG so
// fault decisions depend only on the seed and the sequence of messages on
// that link, not on unrelated traffic.
type link struct {
	prof        *LinkProfile // nil = the net's default profile
	rng         *rand.Rand
	partitioned bool
}

type simNode struct {
	h    transport.Handler
	down bool
}

// netMetrics counts simulated network events; nil-safe until Instrument.
// Only counters (no wall-clock histograms), so snapshots of two replayed
// runs compare equal.
type netMetrics struct {
	calls          *metrics.Counter
	delivered      *metrics.Counter
	losses         *metrics.Counter
	dups           *metrics.Counter
	reorders       *metrics.Counter
	partitionDrops *metrics.Counter
	downDrops      *metrics.Counter
	wireBodies     *metrics.Counter
	gobBodies      *metrics.Counter
	codecFallbacks *metrics.Counter
}

func newNetMetrics(reg *metrics.Registry) netMetrics {
	return netMetrics{
		calls:          reg.Counter("simnet.calls"),
		delivered:      reg.Counter("simnet.delivered"),
		losses:         reg.Counter("simnet.losses"),
		dups:           reg.Counter("simnet.dups"),
		reorders:       reg.Counter("simnet.reorders"),
		partitionDrops: reg.Counter("simnet.partition_drops"),
		downDrops:      reg.Counter("simnet.down_drops"),
		wireBodies:     reg.Counter("simnet.wire_bodies"),
		gobBodies:      reg.Counter("simnet.gob_bodies"),
		codecFallbacks: reg.Counter("simnet.codec_fallbacks"),
	}
}

// Net is the simulated network fabric.
type Net struct {
	clk  clock.Clock
	seed int64

	mu     sync.Mutex
	nodes  map[string]*simNode
	links  map[linkKey]*link
	def    LinkProfile
	m      netMetrics
	noWire bool
	legacy map[string]bool // peers that rejected a wire frame; gob from then on
	closed bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// New returns a fully connected, fault-free network on clk, deriving all
// fault randomness from seed. A nil clk uses the real clock.
func New(clk clock.Clock, seed int64) *Net {
	if clk == nil {
		clk = clock.Real{}
	}
	return &Net{
		clk:    clk,
		seed:   seed,
		nodes:  make(map[string]*simNode),
		links:  make(map[linkKey]*link),
		legacy: make(map[string]bool),
		stop:   make(chan struct{}),
	}
}

// DisableWire forces every body onto gob, as if no peer spoke the wire
// codec. Ablation runs and legacy-caller scenarios use it; it does not
// consume any RNG draws, so fault schedules replay identically either way.
func (n *Net) DisableWire() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.noWire = true
}

// peerWire reports whether bodies to addr should use the wire codec.
func (n *Net) peerWire(addr string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return !n.noWire && !n.legacy[addr]
}

// markLegacy remembers that addr rejected a wire frame.
func (n *Net) markLegacy(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.legacy[addr] = true
}

// Instrument records simulated traffic and injected faults in reg. A nil reg
// is a no-op.
func (n *Net) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.m = newNetMetrics(reg)
}

// Close stops pending duplicate deliveries and waits for them to drain.
func (n *Net) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.mu.Unlock()
	close(n.stop)
	n.wg.Wait()
}

// Serve attaches h at addr, or re-attaches a fresh handler to a wiped node
// (a restart with state lost). The returned stop function detaches it.
func (n *Net) Serve(addr string, h transport.Handler) (func(), error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	nd, ok := n.nodes[addr]
	if ok && nd.h != nil {
		return nil, fmt.Errorf("simnet: address %q in use", addr)
	}
	if !ok {
		nd = &simNode{}
		n.nodes[addr] = nd
	}
	nd.h = h
	nd.down = false
	return func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		if cur, ok := n.nodes[addr]; ok && cur == nd {
			delete(n.nodes, addr)
		}
	}, nil
}

// Node returns a Caller whose calls originate from addr, so partitions and
// crash state are evaluated against the correct link endpoints.
func (n *Net) Node(addr string) transport.Caller {
	return &caller{net: n, from: addr}
}

// SetDefault installs the fault profile of every link without an explicit
// override.
func (n *Net) SetDefault(p LinkProfile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.def = p
}

// SetLink overrides the profile of the directed link from → to.
func (n *Net) SetLink(from, to string, p LinkProfile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	cp := p
	n.linkLocked(from, to).prof = &cp
}

// SetLinkBoth overrides both directions between a and b.
func (n *Net) SetLinkBoth(a, b string, p LinkProfile) {
	n.SetLink(a, b, p)
	n.SetLink(b, a, p)
}

// Partition blocks all messages from → to (asymmetric: the reverse direction
// keeps flowing until partitioned itself).
func (n *Net) Partition(from, to string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.linkLocked(from, to).partitioned = true
}

// PartitionBoth blocks both directions between a and b.
func (n *Net) PartitionBoth(a, b string) {
	n.Partition(a, b)
	n.Partition(b, a)
}

// Heal unblocks the directed link from → to.
func (n *Net) Heal(from, to string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.linkLocked(from, to).partitioned = false
}

// HealBoth unblocks both directions between a and b.
func (n *Net) HealBoth(a, b string) {
	n.Heal(a, b)
	n.Heal(b, a)
}

// HealAll removes every partition.
func (n *Net) HealAll() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, l := range n.links {
		l.partitioned = false
	}
}

// Crash takes the node at addr off the network; its state (handler) is
// retained for Restart.
func (n *Net) Crash(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if nd, ok := n.nodes[addr]; ok {
		nd.down = true
	}
}

// Restart brings a crashed node back with its state retained.
func (n *Net) Restart(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if nd, ok := n.nodes[addr]; ok && nd.h != nil {
		nd.down = false
	}
}

// Wipe crashes the node at addr and discards its state; a subsequent Serve
// on the same address models a restart from scratch.
func (n *Net) Wipe(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if nd, ok := n.nodes[addr]; ok {
		nd.h = nil
		nd.down = true
	}
}

// linkLocked returns the directed link, creating it (with its seed-derived
// RNG) on first use. Callers hold n.mu.
func (n *Net) linkLocked(from, to string) *link {
	k := linkKey{from, to}
	l, ok := n.links[k]
	if !ok {
		h := fnv.New64a()
		h.Write([]byte(from))
		h.Write([]byte{0})
		h.Write([]byte(to))
		l = &link{rng: rand.New(rand.NewSource(n.seed ^ int64(h.Sum64())))}
		n.links[k] = l
	}
	return l
}

// sendPlan is one message's fate, drawn up front so each link's RNG is
// consumed in a fixed order per message regardless of the outcome.
type sendPlan struct {
	lost      bool
	dup       bool
	dupDelay  time.Duration
	reordered bool
	latency   time.Duration
}

// planLocked draws a message's fate from the link's RNG. Callers hold n.mu.
func (n *Net) planLocked(l *link) sendPlan {
	p := l.prof
	if p == nil {
		p = &n.def
	}
	var plan sendPlan
	// Fixed draw order: loss, dup, reorder, latency.
	plan.lost = l.rng.Float64() < p.Loss
	plan.dup = l.rng.Float64() < p.Dup
	plan.dupDelay = p.DupDelay
	plan.reordered = l.rng.Float64() < p.Reorder
	u := l.rng.Float64()
	plan.latency = p.LatencyMin
	if p.LatencyMax > p.LatencyMin {
		plan.latency += time.Duration(u * float64(p.LatencyMax-p.LatencyMin))
	}
	if plan.reordered {
		extra := p.ReorderDelay
		if extra <= 0 {
			extra = p.LatencyMax
		}
		plan.latency += extra
	}
	return plan
}

type caller struct {
	net  *Net
	from string
}

// Call implements transport.Caller. The request traverses the from→to link
// (loss, latency, duplication, reordering, partition) and the response the
// to→from link (loss, latency, partition), so asymmetric failures — request
// delivered, response lost — occur exactly as on a real wireless fabric.
func (c *caller) Call(ctx context.Context, to, method string, req, resp any) error {
	n := c.net
	n.mu.Lock()
	n.m.calls.Inc()
	if src, ok := n.nodes[c.from]; ok && (src.down || src.h == nil) {
		n.m.downDrops.Inc()
		n.mu.Unlock()
		return fmt.Errorf("%w: %s is down", transport.ErrUnreachable, c.from)
	}
	dst, ok := n.nodes[to]
	if !ok || dst.down || dst.h == nil {
		n.m.downDrops.Inc()
		n.mu.Unlock()
		return fmt.Errorf("%w: %s", transport.ErrUnreachable, to)
	}
	fwd := n.linkLocked(c.from, to)
	if c.from != to && fwd.partitioned {
		n.m.partitionDrops.Inc()
		n.mu.Unlock()
		return fmt.Errorf("%w: %s -> %s (partitioned)", transport.ErrUnreachable, c.from, to)
	}
	var plan sendPlan
	if c.from != to {
		plan = n.planLocked(fwd)
	}
	h := dst.h
	if plan.reordered {
		n.m.reorders.Inc()
	}
	n.mu.Unlock()

	if plan.lost {
		n.m.losses.Inc()
		return fmt.Errorf("%w: %s -> %s (message lost)", transport.ErrUnreachable, c.from, to)
	}
	if err := n.wait(ctx, plan.latency); err != nil {
		return err
	}
	body, usedWire, err := transport.EncodeBody(req, n.peerWire(to))
	if err != nil {
		return err
	}
	if usedWire {
		n.m.wireBodies.Inc()
	} else {
		n.m.gobBodies.Inc()
	}

	out, herr := h.Handle(transport.WithPeer(ctx, c.from), method, body)
	n.m.delivered.Inc()
	if plan.dup {
		n.deliverDup(c.from, to, method, body, plan.dupDelay)
	}

	// Response path: the reverse link's partition and faults apply, so the
	// handler may have executed while the caller still sees a failure.
	if c.from != to {
		n.mu.Lock()
		rev := n.linkLocked(to, c.from)
		if rev.partitioned {
			n.m.partitionDrops.Inc()
			n.mu.Unlock()
			return fmt.Errorf("%w: %s -> %s (response partitioned)", transport.ErrUnreachable, to, c.from)
		}
		rplan := n.planLocked(rev)
		n.mu.Unlock()
		if rplan.lost {
			n.m.losses.Inc()
			return fmt.Errorf("%w: %s -> %s (response lost)", transport.ErrUnreachable, to, c.from)
		}
		if rplan.reordered {
			n.m.reorders.Inc()
		}
		if err := n.wait(ctx, rplan.latency); err != nil {
			return err
		}
	}

	if herr != nil {
		rerr := transport.NewRemoteError(method, herr.Error())
		if usedWire && errors.Is(rerr, transport.ErrDecode) {
			// The peer could not decode a wire frame (an old binary):
			// remember it and re-issue this one call in gob. The request
			// never reached its handler, so the retry cannot double-apply;
			// the retry is a fresh message, so it draws a fresh fault plan —
			// deterministic, because the legacy discovery itself is.
			n.markLegacy(to)
			n.m.codecFallbacks.Inc()
			return c.Call(ctx, to, method, req, resp)
		}
		return rerr
	}
	if resp == nil {
		return nil
	}
	return transport.Decode(out, resp)
}

// wait sleeps d on the simulated clock, honouring ctx.
func (n *Net) wait(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	select {
	case <-n.clk.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-n.stop:
		return fmt.Errorf("%w: simnet closed", transport.ErrUnreachable)
	}
}

// deliverDup re-delivers a request body, modelling a retransmitted datagram:
// immediately (back to back with the original) or after dupDelay of
// simulated time. The duplicate's response is discarded either way.
func (n *Net) deliverDup(from, to, method string, body []byte, dupDelay time.Duration) {
	redeliver := func() {
		n.mu.Lock()
		dst, ok := n.nodes[to]
		var h transport.Handler
		if ok && !dst.down {
			h = dst.h
		}
		n.mu.Unlock()
		if h == nil {
			return // crashed or wiped between original and duplicate
		}
		n.m.dups.Inc()
		// The duplicate keeps the original sender's identity: a retransmitted
		// datagram must not slip past per-peer admission control.
		_, _ = h.Handle(transport.WithPeer(context.Background(), from), method, body)
	}
	if dupDelay <= 0 {
		redeliver()
		return
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.wg.Add(1)
	n.mu.Unlock()
	go func() {
		defer n.wg.Done()
		select {
		case <-n.clk.After(dupDelay):
			redeliver()
		case <-n.stop:
		}
	}()
}
