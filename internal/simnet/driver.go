package simnet

import (
	"time"

	"repro/internal/clock"
)

// Advance moves a manual clock forward by total in increments of step,
// yielding real time between increments so goroutines woken by one increment
// (renewers, sweepers, retry backoffs) run before the next. It is the
// scenario driver's "let simulated time pass" primitive.
func Advance(clk *clock.Manual, total, step time.Duration) {
	if step <= 0 {
		step = total
	}
	for elapsed := time.Duration(0); elapsed < total; elapsed += step {
		clk.Advance(step)
		time.Sleep(2 * time.Millisecond) //lint:allow clockcheck (real pause lets goroutines drain between simulated steps)
	}
}

// Drive advances clk by step on every real-time tick until the returned stop
// function is called. Use it when a scenario blocks synchronously on work
// that waits on the simulated clock (e.g. a retry policy backing off) and no
// explicit Advance schedule fits.
func Drive(clk *clock.Manual, step time.Duration) (stop func()) {
	halt := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-halt:
				return
			case <-time.After(time.Millisecond): //lint:allow clockcheck (real pacing of the simulated clock)
				clk.Advance(step)
			}
		}
	}()
	return func() {
		close(halt)
		<-done
	}
}

// Settle advances a manual clock while timers are pending and returns once
// none have appeared for a few scheduling rounds — i.e. the simulated world
// has gone quiet. Only useful when no component keeps a perpetual timer
// armed (renewers and sweepers re-arm forever; use Advance for those).
func Settle(clk *clock.Manual, step time.Duration) {
	idle := 0
	for idle < 20 {
		if clk.PendingTimers() > 0 {
			clk.Advance(step)
			idle = 0
		} else {
			idle++
		}
		time.Sleep(time.Millisecond) //lint:allow clockcheck (real pause while polling for quiescence)
	}
}
