package clock

import (
	"sort"
	"sync"
	"time"
)

// Wheel is a hashed timer wheel: a fixed ring of slots advanced by one
// background goroutine, giving O(1) insert and cancel regardless of how many
// timers are armed. It exists so that a base station keeping tens of
// thousands of leases alive runs one goroutine per wheel instead of one per
// lease.
//
// Deadlines are quantised up to the wheel's tick: a timer never fires early,
// and fires at the first tick boundary at or after its deadline. Within one
// processed tick timers fire ordered by (deadline, schedule order), so firing
// order matches the order a sorted timer list would produce.
//
// The wheel aligns its wake-ups to its own tick grid (anchored at creation
// time), which keeps firing instants deterministic on a Manual clock no
// matter how the test advances it: a single large Advance processes every
// elapsed tick in order.
type Wheel struct {
	clk  Clock
	tick time.Duration

	mu         sync.Mutex
	slots      []map[*WheelTimer]struct{}
	cursor     int       // slot processed by the most recent tick
	lastTick   time.Time // instant of the most recent processed tick boundary
	seq        uint64
	n          int
	stopped    bool
	processing bool // an advance's callbacks/flush are still running
	// onFlush runs after each wake-up that fired at least one timer, once all
	// fired callbacks have run. A scheduler uses it to coalesce everything
	// that came due in one advance before dispatching work.
	onFlush func()

	stop chan struct{}
	done chan struct{}
}

// WheelTimer is one armed timer. Cancel is O(1).
type WheelTimer struct {
	w        *Wheel
	fn       func()
	deadline time.Time
	seq      uint64
	rounds   int
	slot     int
	state    timerState
}

type timerState uint8

const (
	timerPending timerState = iota
	timerFired
	timerCancelled
)

// NewWheel starts a wheel on clk with the given tick granularity and slot
// count (defaults: 10ms, 512 slots).
func NewWheel(clk Clock, tick time.Duration, slots int) *Wheel {
	if clk == nil {
		clk = Real{}
	}
	if tick <= 0 {
		tick = 10 * time.Millisecond
	}
	if slots <= 0 {
		slots = 512
	}
	w := &Wheel{
		clk:      clk,
		tick:     tick,
		slots:    make([]map[*WheelTimer]struct{}, slots),
		lastTick: clk.Now(),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for i := range w.slots {
		w.slots[i] = make(map[*WheelTimer]struct{})
	}
	go w.run()
	return w
}

// Tick returns the wheel's granularity.
func (w *Wheel) Tick() time.Duration { return w.tick }

// Len reports how many timers are armed.
func (w *Wheel) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Synced reports whether the wheel has fully processed every tick boundary
// the clock has passed — including the fired timers' callbacks and the flush
// hook. Deterministic tests use it as a barrier between manual advances.
func (w *Wheel) Synced() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.stopped {
		return true
	}
	return !w.processing && w.clk.Now().Sub(w.lastTick) < w.tick
}

// OnFlush registers fn to run after each wake-up that fired timers, once all
// their callbacks have run. Must be set before timers are scheduled.
func (w *Wheel) OnFlush(fn func()) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.onFlush = fn
}

// Schedule arms a timer that runs fn (on the wheel goroutine) at the first
// tick boundary at or after d from now. A non-positive d fires on the next
// tick. Returns the timer handle; on a stopped wheel the timer is returned
// already cancelled and never fires.
func (w *Wheel) Schedule(d time.Duration, fn func()) *WheelTimer {
	w.mu.Lock()
	defer w.mu.Unlock()
	t := &WheelTimer{w: w, fn: fn, deadline: w.clk.Now().Add(d), seq: w.seq}
	w.seq++
	if w.stopped {
		t.state = timerCancelled
		return t
	}
	// Ticks until due, relative to the last processed boundary: never early,
	// at most one tick late, and at least one tick out.
	due := t.deadline.Sub(w.lastTick)
	ticks := int64((due + w.tick - 1) / w.tick)
	if ticks < 1 {
		ticks = 1
	}
	t.slot = (w.cursor + int(ticks%int64(len(w.slots)))) % len(w.slots)
	t.rounds = int((ticks - 1) / int64(len(w.slots)))
	w.slots[t.slot][t] = struct{}{}
	w.n++
	return t
}

// Cancel disarms the timer; it reports false if the timer already fired or
// was cancelled. A fired timer's callback may still be running.
func (t *WheelTimer) Cancel() bool {
	if t == nil || t.w == nil {
		return false
	}
	t.w.mu.Lock()
	defer t.w.mu.Unlock()
	if t.state != timerPending {
		return false
	}
	t.state = timerCancelled
	delete(t.w.slots[t.slot], t)
	t.w.n--
	return true
}

// Stop halts the wheel goroutine. Armed timers never fire; on a Manual clock
// the wheel's single pending After waiter is left behind (Manual has no
// waiter cancellation). Safe to call once.
func (w *Wheel) Stop() {
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		return
	}
	w.stopped = true
	w.mu.Unlock()
	close(w.stop)
	<-w.done
}

func (w *Wheel) run() {
	defer close(w.done)
	sleeper, _ := w.clk.(Sleeper)
	for {
		w.mu.Lock()
		next := w.lastTick.Add(w.tick)
		wait := next.Sub(w.clk.Now())
		w.mu.Unlock()
		if wait <= 0 {
			// The clock already passed the next boundary (large manual
			// advance, slow callback): process due ticks without sleeping.
			w.advance()
			continue
		}
		// Pin the absolute boundary when the clock supports it, so a manual
		// Advance racing the re-arm cannot push the wake-up past the grid.
		var wake <-chan time.Time
		if sleeper != nil {
			wake = sleeper.Until(next)
		} else {
			wake = w.clk.After(wait)
		}
		select {
		case <-w.stop:
			return
		case <-wake:
			w.advance()
		}
	}
}

// advance processes every tick boundary the clock has passed, fires due
// timers in (deadline, seq) order and runs the flush hook.
func (w *Wheel) advance() {
	w.mu.Lock()
	steps := int64(w.clk.Now().Sub(w.lastTick) / w.tick)
	var fired []*WheelTimer
	for i := int64(0); i < steps; i++ {
		w.cursor = (w.cursor + 1) % len(w.slots)
		for t := range w.slots[w.cursor] {
			if t.rounds > 0 {
				t.rounds--
				continue
			}
			t.state = timerFired
			delete(w.slots[w.cursor], t)
			w.n--
			fired = append(fired, t)
		}
	}
	w.lastTick = w.lastTick.Add(time.Duration(steps) * w.tick)
	w.processing = len(fired) > 0
	flush := w.onFlush
	w.mu.Unlock()

	if len(fired) == 0 {
		return
	}
	defer func() {
		w.mu.Lock()
		w.processing = false
		w.mu.Unlock()
	}()
	sort.Slice(fired, func(i, j int) bool {
		if !fired[i].deadline.Equal(fired[j].deadline) {
			return fired[i].deadline.Before(fired[j].deadline)
		}
		return fired[i].seq < fired[j].seq
	})
	for _, t := range fired {
		t.fn()
	}
	if flush != nil {
		flush()
	}
}
