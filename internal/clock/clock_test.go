package clock

import (
	"testing"
	"time"
)

func TestManualNowAndAdvance(t *testing.T) {
	start := time.Unix(100, 0)
	m := NewManual(start)
	if !m.Now().Equal(start) {
		t.Fatalf("Now = %v", m.Now())
	}
	m.Advance(5 * time.Second)
	if !m.Now().Equal(start.Add(5 * time.Second)) {
		t.Fatalf("Now after advance = %v", m.Now())
	}
}

func TestManualAfterFires(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	ch := m.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired early")
	default:
	}
	m.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired before deadline")
	default:
	}
	if m.PendingTimers() != 1 {
		t.Fatalf("PendingTimers = %d", m.PendingTimers())
	}
	m.Advance(time.Second)
	select {
	case at := <-ch:
		if !at.Equal(time.Unix(10, 0)) {
			t.Errorf("fired at %v", at)
		}
	default:
		t.Fatal("timer did not fire")
	}
	if m.PendingTimers() != 0 {
		t.Errorf("PendingTimers = %d", m.PendingTimers())
	}
}

func TestManualAfterZeroFiresImmediately(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	select {
	case <-m.After(0):
	default:
		t.Fatal("zero-duration timer pending")
	}
}

func TestManualSet(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	ch := m.After(30 * time.Second)
	m.Set(time.Unix(60, 0))
	select {
	case <-ch:
	default:
		t.Fatal("Set did not fire timer")
	}
	// Set never moves backwards.
	m.Set(time.Unix(10, 0))
	if !m.Now().Equal(time.Unix(60, 0)) {
		t.Errorf("Now = %v", m.Now())
	}
}

func TestManualMultipleWaiters(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	early := m.After(time.Second)
	late := m.After(time.Minute)
	m.Advance(2 * time.Second)
	select {
	case <-early:
	default:
		t.Fatal("early timer pending")
	}
	select {
	case <-late:
		t.Fatal("late timer fired")
	default:
	}
}

func TestRealClock(t *testing.T) {
	var c Clock = Real{}
	before := time.Now()
	now := c.Now()
	if now.Before(before.Add(-time.Second)) {
		t.Error("Real.Now is far in the past")
	}
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(time.Second):
		t.Error("Real.After did not fire")
	}
}
