// Package clock abstracts time so that lease expiry, mobility simulation and
// revocation tests can run against a deterministic manual clock while
// production code uses the real one.
package clock

import (
	"sync"
	"time"
)

// Clock is the minimal time source used throughout the platform.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// After returns a channel that delivers the then-current time once d has
	// elapsed on this clock.
	After(d time.Duration) <-chan time.Time
}

// Sleeper is an optional Clock extension for waiting until an absolute
// instant. Unlike After, which measures from the moment of the call, Until
// pins the deadline first — so a concurrent Advance on a Manual clock can
// never slip between reading Now and arming the timer. The timer wheel uses
// it to keep its tick grid exact.
type Sleeper interface {
	// Until returns a channel that delivers once the clock reaches t; a
	// deadline already passed delivers immediately.
	Until(t time.Time) <-chan time.Time
}

// Real is a Clock backed by the system clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Until implements Sleeper.
func (Real) Until(t time.Time) <-chan time.Time { return time.After(time.Until(t)) }

// Manual is a deterministic Clock advanced explicitly by tests. The zero
// value is not usable; construct it with NewManual.
type Manual struct {
	mu      sync.Mutex
	now     time.Time
	waiters []waiter
}

type waiter struct {
	at time.Time
	ch chan time.Time
}

// NewManual returns a Manual clock starting at start.
func NewManual(start time.Time) *Manual {
	return &Manual{now: start}
}

// Now implements Clock.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// After implements Clock. The returned channel fires when Advance moves the
// clock past the deadline.
func (m *Manual) After(d time.Duration) <-chan time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	ch := make(chan time.Time, 1)
	at := m.now.Add(d)
	if d <= 0 {
		ch <- m.now
		return ch
	}
	m.waiters = append(m.waiters, waiter{at: at, ch: ch})
	return ch
}

// Until implements Sleeper: the channel fires when the clock reaches t. The
// deadline is compared against the clock atomically, so an Advance racing the
// call either satisfies the wait immediately or is seen by a later Advance.
func (m *Manual) Until(t time.Time) <-chan time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	ch := make(chan time.Time, 1)
	if !t.After(m.now) {
		ch <- m.now
		return ch
	}
	m.waiters = append(m.waiters, waiter{at: t, ch: ch})
	return ch
}

// Advance moves the clock forward by d, firing any timers whose deadline has
// been reached.
func (m *Manual) Advance(d time.Duration) {
	m.mu.Lock()
	m.now = m.now.Add(d)
	now := m.now
	var remaining []waiter
	var fired []waiter
	for _, w := range m.waiters {
		if !w.at.After(now) {
			fired = append(fired, w)
		} else {
			remaining = append(remaining, w)
		}
	}
	m.waiters = remaining
	m.mu.Unlock()
	for _, w := range fired {
		w.ch <- now
	}
}

// Set jumps the clock to t (which must not move backwards) and fires due
// timers.
func (m *Manual) Set(t time.Time) {
	m.mu.Lock()
	if t.Before(m.now) {
		m.mu.Unlock()
		return
	}
	d := t.Sub(m.now)
	m.mu.Unlock()
	m.Advance(d)
}

// PendingTimers reports how many After timers have not yet fired; useful for
// deterministic test synchronisation.
func (m *Manual) PendingTimers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.waiters)
}
