package clock

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"
)

// wheelSeeds returns the seeds the property test runs at: a pinned set plus
// an optional WHEEL_SEED override for replaying a failure.
func wheelSeeds(t *testing.T) []int64 {
	if s := os.Getenv("WHEEL_SEED"); s != "" {
		seed, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad WHEEL_SEED %q: %v", s, err)
		}
		return []int64{seed}
	}
	return []int64{1, 42, 20030901}
}

// TestWheelMatchesSortedListOracle drives a wheel through random seeded
// insert/cancel/advance sequences on the manual clock and checks, against a
// naive sorted-list oracle, that every surviving deadline fires exactly once,
// in (deadline, schedule-order) order, and that no cancelled timer ever
// fires.
func TestWheelMatchesSortedListOracle(t *testing.T) {
	for _, seed := range wheelSeeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runWheelOracle(t, seed)
		})
	}
}

func runWheelOracle(t *testing.T, seed int64) {
	const (
		tick  = 10 * time.Millisecond
		slots = 32 // small, so long delays exercise the rounds counter
		ops   = 600
	)
	clk := NewManual(time.Unix(0, 0))
	w := NewWheel(clk, tick, slots)
	defer w.Stop()

	var mu sync.Mutex
	var fired []int // timer ids in fire order

	rng := rand.New(rand.NewSource(seed))
	type armed struct {
		id       int
		deadline time.Time
		timer    *WheelTimer
	}
	var all []armed // every timer still expected to fire, in schedule order
	cancelled := map[int]bool{}
	nextID := 0

	for op := 0; op < ops; op++ {
		switch r := rng.Float64(); {
		case r < 0.55:
			// Schedule with a delay up to three full wheel revolutions.
			d := time.Duration(rng.Int63n(int64(3 * slots * tick)))
			id := nextID
			nextID++
			tm := w.Schedule(d, func() {
				mu.Lock()
				fired = append(fired, id)
				mu.Unlock()
			})
			all = append(all, armed{id: id, deadline: clk.Now().Add(d), timer: tm})
		case r < 0.75 && len(all) > 0:
			// Cancel a random armed timer. Cancel's return value is the
			// truth: true means it will never fire, false means it already
			// did (or was cancelled before) and stays in the oracle.
			pick := all[rng.Intn(len(all))]
			if !cancelled[pick.id] && pick.timer.Cancel() {
				cancelled[pick.id] = true
			}
		default:
			clk.Advance(time.Duration(rng.Int63n(int64(5 * tick))))
		}
	}

	// Drain: advance far past the last deadline, then wait for the wheel
	// goroutine to deliver everything.
	clk.Advance(time.Duration(4*slots) * tick)
	var oracle []armed
	for _, a := range all {
		if !cancelled[a.id] {
			oracle = append(oracle, a)
		}
	}
	sort.SliceStable(oracle, func(i, j int) bool {
		return oracle[i].deadline.Before(oracle[j].deadline)
	})
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(fired)
		mu.Unlock()
		if n >= len(oracle) || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
		clk.Advance(tick) // nudge, in case a re-arm raced the drain
	}

	mu.Lock()
	defer mu.Unlock()
	if len(fired) != len(oracle) {
		t.Fatalf("fired %d timers, oracle expects %d", len(fired), len(oracle))
	}
	seen := map[int]int{}
	for _, id := range fired {
		seen[id]++
		if cancelled[id] {
			t.Fatalf("cancelled timer %d fired", id)
		}
	}
	for i, want := range oracle {
		if got := fired[i]; got != want.id {
			t.Fatalf("fire order diverges at %d: got timer %d, oracle says %d (deadline %v)",
				i, got, want.id, want.deadline)
		}
		if seen[want.id] != 1 {
			t.Fatalf("timer %d fired %d times, want exactly once", want.id, seen[want.id])
		}
	}
	if got := w.Len(); got != 0 {
		t.Fatalf("wheel still holds %d timers after drain", got)
	}
}

// TestWheelCancelAndStopSemantics pins the edge cases the scheduler relies
// on: Cancel is O(1) truth, a stopped wheel never fires, and the flush hook
// runs after a batch of fires.
func TestWheelCancelAndStopSemantics(t *testing.T) {
	clk := NewManual(time.Unix(0, 0))
	w := NewWheel(clk, 10*time.Millisecond, 8)

	var mu sync.Mutex
	firedA := false
	flushes := 0
	w.OnFlush(func() {
		mu.Lock()
		flushes++
		mu.Unlock()
	})

	a := w.Schedule(30*time.Millisecond, func() {
		mu.Lock()
		firedA = true
		mu.Unlock()
	})
	b := w.Schedule(50*time.Millisecond, func() { t.Error("cancelled timer fired") })
	if !b.Cancel() {
		t.Fatal("Cancel of an armed timer reported false")
	}
	if b.Cancel() {
		t.Fatal("second Cancel reported true")
	}

	clk.Advance(40 * time.Millisecond)
	waitUntilWheel(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firedA && flushes == 1
	})
	if a.Cancel() {
		t.Fatal("Cancel of a fired timer reported true")
	}

	w.Stop()
	c := w.Schedule(10*time.Millisecond, func() { t.Error("timer scheduled on stopped wheel fired") })
	if c.Cancel() {
		t.Fatal("timer scheduled on a stopped wheel should be born cancelled")
	}
	clk.Advance(time.Second)
	time.Sleep(5 * time.Millisecond)
	if got := w.Len(); got != 0 {
		t.Fatalf("stopped wheel reports %d armed timers", got)
	}
}

func waitUntilWheel(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached before deadline")
}
