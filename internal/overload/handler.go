package overload

import (
	"context"

	"repro/internal/trace"
	"repro/internal/transport"
)

// Handler fronts a transport.Handler with the overload control plane:
// per-peer token buckets first (cheapest check, and a misbehaving peer
// shouldn't consume shared queue space), then the adaptive concurrency
// limiter with its priority queues and deadline-aware drops, and only then
// the wrapped handler. Because every fabric — in-proc, simnet, TCP — invokes
// servers through transport.Handler, one wrapper protects all three.
type Handler struct {
	inner   transport.Handler
	lim     *Limiter
	buckets *Buckets
	tracer  *trace.Tracer
}

// Wrap builds the overload front. lim, buckets, and tr may each be nil, in
// which case that layer is skipped.
func Wrap(inner transport.Handler, lim *Limiter, buckets *Buckets, tr *trace.Tracer) *Handler {
	return &Handler{inner: inner, lim: lim, buckets: buckets, tracer: tr}
}

// Handle implements transport.Handler.
func (h *Handler) Handle(ctx context.Context, method string, body []byte) ([]byte, error) {
	class := Classify(method)
	if retry, ok := h.buckets.Admit(transport.Peer(ctx), method); !ok {
		err := transport.Overloaded(retry)
		h.lim.shed(class) // bucket denials count in the per-class sheds too
		h.shedSpan(ctx, method, class, "peer_rate", err)
		return nil, err
	}
	if err := h.lim.Acquire(ctx, class); err != nil {
		h.shedSpan(ctx, method, class, "queue", err)
		return nil, err
	}
	defer h.lim.Release()
	return h.inner.Handle(ctx, method, body)
}

// shedSpan records a shed decision in the trace so a cross-node walk shows
// where (and why) the fabric pushed back. The span carries the overloaded
// tag the observability plane keys on.
func (h *Handler) shedSpan(ctx context.Context, method string, class Class, reason string, err error) {
	if h.tracer == nil {
		return
	}
	_, span := h.tracer.StartSpan(ctx, "rpc.shed")
	span.Tag("overloaded", "true")
	span.Tag("method", method)
	span.Tag("class", class.String())
	span.Tag("reason", reason)
	span.End(err)
}

// Snapshot merges the limiter's state with the bucket counters into the
// status surface served over base.fleet and /healthz.
func (h *Handler) Snapshot() Snapshot {
	s := h.lim.Snapshot()
	s.PeerSheds = h.buckets.Sheds()
	s.Peers = h.buckets.Peers()
	return s
}
