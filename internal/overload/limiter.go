// Package overload is the server-side overload control plane: an adaptive
// concurrency limiter with bounded per-priority queues, deadline-aware
// shedding, and per-peer token buckets, fronting the Handler side of every
// RPC fabric (in-proc, simnet, TCP — they all deliver through
// transport.Handler.Handle, so one wrapper covers all three).
//
// The concurrency limit adapts by AIMD on observed queue delay with a
// CoDel-style target: each control interval, the limiter looks at the *best*
// queue delay any admission saw — if even the best-treated request waited
// past the target, the server is genuinely saturated (not just bursty) and
// the limit halves; otherwise it creeps up by one. Requests beyond the limit
// wait in one bounded FIFO per priority class, granted strictly
// keepalive > mutation > read, so a renewal storm cuts the line past a
// dashboard's reads. Requests that overflow their class queue are shed
// immediately with transport.ErrOverloaded carrying a retry-after hint, and
// requests whose deadline lapses before a slot frees are dropped without
// invoking the handler — work for a caller that already gave up is the purest
// waste an overloaded server can cut.
package overload

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/metrics"
	"repro/internal/transport"
)

// Config tunes a Limiter. The zero value gets serviceable defaults.
type Config struct {
	// InitialLimit is the starting concurrency limit (default 16, clamped
	// into [MinLimit, MaxLimit]).
	InitialLimit int
	// MinLimit is the AIMD floor — the limit a saturated server decays to
	// (default 4).
	MinLimit int
	// MaxLimit is the AIMD ceiling (default 256).
	MaxLimit int
	// QueueDepth bounds each priority class's wait queue; an arrival past it
	// is shed (default 128).
	QueueDepth int
	// Target is the CoDel-style queue-delay target: when an interval's
	// minimum observed queue delay exceeds it, the limit halves (default 5ms).
	Target time.Duration
	// Interval is the AIMD control interval (default 100ms).
	Interval time.Duration
	// RetryAfter is the hint attached to queue-overflow sheds (default 250ms).
	RetryAfter time.Duration
	// Clock times queue delays and control intervals (default the real
	// clock). Point it at a manual clock to drive the limiter
	// deterministically in simulation.
	Clock clock.Clock
}

// waiter is one queued request. ready is closed by the granter after it has
// transferred an inflight slot to the waiter; granted disambiguates the race
// between a grant and the waiter's own cancellation.
type waiter struct {
	class   Class
	ready   chan struct{}
	enq     time.Time
	granted bool
}

// limiterMetrics mirrors the limiter's internal counters into a registry;
// nil-safe no-ops until Instrument.
type limiterMetrics struct {
	sheds    [numClasses]*metrics.Counter
	expired  *metrics.Counter
	admits   *metrics.Counter
	limit    *metrics.Gauge
	inflight *metrics.Gauge
	queued   *metrics.Gauge
}

// Limiter is the adaptive concurrency limiter. Acquire blocks until the
// request is admitted, sheds it, or its context dies; every successful
// Acquire must be paired with exactly one Release.
type Limiter struct {
	cfg Config
	clk clock.Clock

	mu            sync.Mutex
	limit         int
	inflight      int
	queues        [numClasses][]*waiter
	queued        int
	intervalStart time.Time
	minDelay      time.Duration
	haveSample    bool

	sheds    [numClasses]uint64
	expired  uint64
	admitted uint64

	m limiterMetrics
}

// NewLimiter returns a Limiter with cfg's gaps filled by defaults.
func NewLimiter(cfg Config) *Limiter {
	if cfg.MinLimit <= 0 {
		cfg.MinLimit = 4
	}
	if cfg.MaxLimit < cfg.MinLimit {
		cfg.MaxLimit = 256
		if cfg.MaxLimit < cfg.MinLimit {
			cfg.MaxLimit = cfg.MinLimit
		}
	}
	if cfg.InitialLimit <= 0 {
		cfg.InitialLimit = 16
	}
	if cfg.InitialLimit < cfg.MinLimit {
		cfg.InitialLimit = cfg.MinLimit
	}
	if cfg.InitialLimit > cfg.MaxLimit {
		cfg.InitialLimit = cfg.MaxLimit
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 128
	}
	if cfg.Target <= 0 {
		cfg.Target = 5 * time.Millisecond
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 250 * time.Millisecond
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	return &Limiter{cfg: cfg, clk: cfg.Clock, limit: cfg.InitialLimit}
}

// Instrument mirrors shed/drop counters and the limit/inflight/queue gauges
// into reg. A nil limiter or nil reg is a no-op.
func (l *Limiter) Instrument(reg *metrics.Registry) {
	if l == nil || reg == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for c := Class(0); c < numClasses; c++ {
		l.m.sheds[c] = reg.Counter("overload.sheds|class=" + c.String())
	}
	l.m.expired = reg.Counter("overload.expired_drops")
	l.m.admits = reg.Counter("overload.admitted")
	l.m.limit = reg.Gauge("overload.limit")
	l.m.inflight = reg.Gauge("overload.inflight")
	l.m.queued = reg.Gauge("overload.queued")
	l.m.limit.Set(int64(l.limit))
}

// Acquire admits one request of the given class, blocking in the class's
// bounded queue while the server is at its limit. It returns nil when the
// caller owns an inflight slot (pair with Release), transport.ErrOverloaded
// (with the retry-after hint) when the request is shed, or a wrapped context
// error when the request's deadline died before a slot freed.
func (l *Limiter) Acquire(ctx context.Context, class Class) error {
	if l == nil {
		return nil
	}
	// Deadline-aware shedding, step one: a request that arrives already dead
	// is dropped before it queues — let alone runs.
	if err := ctx.Err(); err != nil {
		l.mu.Lock()
		l.expired++
		l.mu.Unlock()
		l.m.expired.Inc()
		return fmt.Errorf("overload: request expired before admission: %w", err)
	}
	now := l.clk.Now()
	l.mu.Lock()
	l.tickLocked(now)
	if l.inflight < l.limit && l.queued == 0 {
		l.inflight++
		l.admitted++
		l.observeLocked(now, 0)
		l.gaugesLocked()
		l.mu.Unlock()
		l.m.admits.Inc()
		return nil
	}
	if len(l.queues[class]) >= l.cfg.QueueDepth {
		l.sheds[class]++
		l.mu.Unlock()
		l.m.sheds[class].Inc()
		return transport.Overloaded(l.cfg.RetryAfter)
	}
	w := &waiter{class: class, ready: make(chan struct{}), enq: now}
	l.queues[class] = append(l.queues[class], w)
	l.queued++
	l.gaugesLocked()
	l.mu.Unlock()

	select {
	case <-w.ready:
		// A slot was transferred to us. Deadline-aware shedding, step two: if
		// our caller gave up while we queued, hand the slot straight on and
		// drop without invoking the handler.
		if err := ctx.Err(); err != nil {
			l.Release()
			l.mu.Lock()
			l.expired++
			l.mu.Unlock()
			l.m.expired.Inc()
			return fmt.Errorf("overload: deadline expired in queue: %w", err)
		}
		return nil
	case <-ctx.Done():
		l.mu.Lock()
		if w.granted {
			// The grant raced our cancellation and won: we own a slot after
			// all. Pass it on rather than run for a dead caller.
			l.mu.Unlock()
			l.Release()
		} else {
			l.removeLocked(w)
			l.gaugesLocked()
			l.mu.Unlock()
		}
		l.mu.Lock()
		l.expired++
		l.mu.Unlock()
		l.m.expired.Inc()
		return fmt.Errorf("overload: deadline expired in queue: %w", ctx.Err())
	}
}

// shed records a shed that happened outside the limiter's own queues (the
// per-peer token buckets) so the per-class shed counters stay the one place
// that answers "what is being dropped". Nil-safe.
func (l *Limiter) shed(class Class) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.sheds[class]++
	l.mu.Unlock()
	l.m.sheds[class].Inc()
}

// Release returns one inflight slot, handing it to the highest-priority
// queued waiter if the limit allows.
func (l *Limiter) Release() {
	if l == nil {
		return
	}
	now := l.clk.Now()
	l.mu.Lock()
	l.inflight--
	l.tickLocked(now)
	l.pumpLocked(now)
	l.gaugesLocked()
	l.mu.Unlock()
}

// pumpLocked grants freed or newly raised capacity to queued waiters,
// highest class first, FIFO within a class.
func (l *Limiter) pumpLocked(now time.Time) {
	for l.inflight < l.limit && l.queued > 0 {
		var w *waiter
		for c := 0; c < numClasses; c++ {
			if q := l.queues[c]; len(q) > 0 {
				w = q[0]
				l.queues[c] = q[1:]
				break
			}
		}
		if w == nil {
			return
		}
		l.queued--
		l.inflight++
		l.admitted++
		w.granted = true
		l.observeLocked(now, now.Sub(w.enq))
		close(w.ready)
		l.m.admits.Inc()
	}
}

// removeLocked unlinks a cancelled waiter from its class queue.
func (l *Limiter) removeLocked(w *waiter) {
	q := l.queues[w.class]
	for i, cand := range q {
		if cand == w {
			l.queues[w.class] = append(q[:i], q[i+1:]...)
			l.queued--
			return
		}
	}
}

// observeLocked feeds one admission's queue delay into the controller. CoDel
// tracks the interval *minimum*: a high minimum means every request waited —
// standing saturation — while a high p99 alone is just a burst.
func (l *Limiter) observeLocked(now time.Time, delay time.Duration) {
	if !l.haveSample || delay < l.minDelay {
		l.minDelay = delay
		l.haveSample = true
	}
	l.tickLocked(now)
}

// tickLocked closes out an elapsed control interval: multiplicative decrease
// when even the best-treated admission waited past Target, additive increase
// otherwise. Intervals with no admissions adjust nothing.
func (l *Limiter) tickLocked(now time.Time) {
	if l.intervalStart.IsZero() {
		l.intervalStart = now
		return
	}
	if now.Sub(l.intervalStart) < l.cfg.Interval {
		return
	}
	// Close the interval before acting on it: pumpLocked re-enters here via
	// observeLocked, and a stale intervalStart would double-adjust.
	sampled, minDelay := l.haveSample, l.minDelay
	l.intervalStart = now
	l.haveSample = false
	if !sampled {
		return
	}
	if minDelay > l.cfg.Target {
		l.limit /= 2
		if l.limit < l.cfg.MinLimit {
			l.limit = l.cfg.MinLimit
		}
	} else if l.limit < l.cfg.MaxLimit {
		l.limit++
		l.pumpLocked(now)
	}
	l.m.limit.Set(int64(l.limit))
}

// gaugesLocked refreshes the instantaneous instruments.
func (l *Limiter) gaugesLocked() {
	l.m.limit.Set(int64(l.limit))
	l.m.inflight.Set(int64(l.inflight))
	l.m.queued.Set(int64(l.queued))
}

// Snapshot is the control plane's status surface: rendered by midasctl top
// (via the base.fleet RPC), exposed as /healthz values, and compared bit for
// bit by the seeded herd scenario's replay.
type Snapshot struct {
	Limit         int
	Inflight      int
	Queued        int
	Admitted      uint64
	ShedKeepalive uint64
	ShedMutation  uint64
	ShedRead      uint64
	ExpiredDrops  uint64
	// PeerSheds is the subset of the class counters above attributable to
	// the per-peer token buckets rather than queue overflow.
	PeerSheds uint64
	Peers     int
}

// Sheds returns the total requests shed across all classes (queue overflows
// and per-peer bucket denials; the latter are also broken out in PeerSheds).
func (s Snapshot) Sheds() uint64 {
	return s.ShedKeepalive + s.ShedMutation + s.ShedRead
}

// Snapshot returns the limiter's current state and cumulative counters.
// Nil-safe.
func (l *Limiter) Snapshot() Snapshot {
	if l == nil {
		return Snapshot{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return Snapshot{
		Limit:         l.limit,
		Inflight:      l.inflight,
		Queued:        l.queued,
		Admitted:      l.admitted,
		ShedKeepalive: l.sheds[ClassKeepalive],
		ShedMutation:  l.sheds[ClassMutation],
		ShedRead:      l.sheds[ClassRead],
		ExpiredDrops:  l.expired,
	}
}
