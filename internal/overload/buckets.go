package overload

import (
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/metrics"
)

// BucketConfig tunes the per-peer token buckets that govern the base
// station's edge: a single chatty peer hammering pushes or lookups is rated
// down before it can crowd the shared admission queues that every other
// peer's keepalives share.
type BucketConfig struct {
	// Rate is tokens refilled per second per peer (default 10).
	Rate float64
	// Burst is the bucket capacity — how many calls a peer can make
	// back-to-back after an idle stretch (default 2×Rate, min 1).
	Burst float64
	// Methods lists the governed method names; calls to any other method
	// pass untouched. Empty means the buckets govern nothing.
	Methods []string
	// RetryAfter overrides the shed hint; zero derives it from the refill
	// rate (time until one token accrues).
	RetryAfter time.Duration
	// Clock times refills (default real). On a manual clock the float
	// arithmetic is exact-replayable: same call sequence, same sheds.
	Clock clock.Clock
}

// bucket is one peer's token state.
type bucket struct {
	tokens float64
	last   time.Time
}

// Buckets rate-limits governed methods per calling peer.
type Buckets struct {
	cfg     BucketConfig
	clk     clock.Clock
	methods map[string]bool

	mu    sync.Mutex
	peers map[string]*bucket
	sheds uint64

	mSheds *metrics.Counter
	mPeers *metrics.Gauge
}

// NewBuckets returns a bucket set; nil is returned (and safe to use) when
// cfg governs no methods.
func NewBuckets(cfg BucketConfig) *Buckets {
	if len(cfg.Methods) == 0 {
		return nil
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 10
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 2 * cfg.Rate
	}
	if cfg.Burst < 1 {
		cfg.Burst = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	methods := make(map[string]bool, len(cfg.Methods))
	for _, m := range cfg.Methods {
		methods[m] = true
	}
	return &Buckets{
		cfg:     cfg,
		clk:     cfg.Clock,
		methods: methods,
		peers:   make(map[string]*bucket),
	}
}

// Instrument mirrors the shed counter and tracked-peer gauge into reg.
// Nil-safe on both sides.
func (b *Buckets) Instrument(reg *metrics.Registry) {
	if b == nil || reg == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.mSheds = reg.Counter("overload.peer_sheds")
	b.mPeers = reg.Gauge("overload.peers")
}

// Admit charges one token from peer's bucket for a governed method. It
// returns ok=true when the call may proceed; otherwise retryAfter is how long
// until the peer's next token accrues. Ungoverned methods and anonymous
// peers (fabrics that don't stamp an origin) always pass.
func (b *Buckets) Admit(peer, method string) (retryAfter time.Duration, ok bool) {
	if b == nil || peer == "" || !b.methods[method] {
		return 0, true
	}
	now := b.clk.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	bk := b.peers[peer]
	if bk == nil {
		bk = &bucket{tokens: b.cfg.Burst, last: now}
		b.peers[peer] = bk
		b.mPeers.Set(int64(len(b.peers)))
	}
	if el := now.Sub(bk.last); el > 0 {
		bk.tokens += el.Seconds() * b.cfg.Rate
		if bk.tokens > b.cfg.Burst {
			bk.tokens = b.cfg.Burst
		}
	}
	bk.last = now
	if bk.tokens >= 1 {
		bk.tokens--
		return 0, true
	}
	b.sheds++
	b.mSheds.Inc()
	if b.cfg.RetryAfter > 0 {
		return b.cfg.RetryAfter, false
	}
	need := (1 - bk.tokens) / b.cfg.Rate
	return time.Duration(need * float64(time.Second)), false
}

// Sheds returns the cumulative per-peer shed count. Nil-safe.
func (b *Buckets) Sheds() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sheds
}

// Peers returns how many distinct peers have buckets. Nil-safe.
func (b *Buckets) Peers() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.peers)
}
