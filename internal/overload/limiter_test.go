package overload

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/metrics"
	"repro/internal/testutil"
	"repro/internal/transport"
)

var t0 = time.Date(2003, 9, 1, 0, 0, 0, 0, time.UTC)

// TestLimiterPriorityOrder proves the strict keepalive > mutation > read
// grant order: with one slot held and one waiter queued per class (enqueued
// lowest-priority first), releases grant in class order, not arrival order.
func TestLimiterPriorityOrder(t *testing.T) {
	clk := clock.NewManual(t0)
	lim := NewLimiter(Config{InitialLimit: 1, MinLimit: 1, MaxLimit: 1, Clock: clk})
	if err := lim.Acquire(context.Background(), ClassRead); err != nil {
		t.Fatalf("initial acquire: %v", err)
	}
	order := make(chan Class, 3)
	var wg sync.WaitGroup
	for _, c := range []Class{ClassRead, ClassMutation, ClassKeepalive} {
		c := c
		before := lim.Snapshot().Queued
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := lim.Acquire(context.Background(), c); err != nil {
				t.Errorf("acquire %v: %v", c, err)
				return
			}
			order <- c
			lim.Release()
		}()
		testutil.WaitFor(t, "waiter queued", func() bool { return lim.Snapshot().Queued == before+1 })
	}
	lim.Release()
	wg.Wait()
	got := []Class{<-order, <-order, <-order}
	want := []Class{ClassKeepalive, ClassMutation, ClassRead}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order %v, want %v", got, want)
		}
	}
}

// TestLimiterQueueShed proves a bounded queue sheds its overflow with the
// overload sentinel and the configured retry-after hint.
func TestLimiterQueueShed(t *testing.T) {
	clk := clock.NewManual(t0)
	lim := NewLimiter(Config{
		InitialLimit: 1, MinLimit: 1, MaxLimit: 1,
		QueueDepth: 1, RetryAfter: 250 * time.Millisecond, Clock: clk,
	})
	if err := lim.Acquire(context.Background(), ClassRead); err != nil {
		t.Fatalf("initial acquire: %v", err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := lim.Acquire(context.Background(), ClassRead); err != nil {
			t.Errorf("queued acquire: %v", err)
			return
		}
		lim.Release()
	}()
	testutil.WaitFor(t, "waiter queued", func() bool { return lim.Snapshot().Queued == 1 })

	err := lim.Acquire(context.Background(), ClassRead)
	if !errors.Is(err, transport.ErrOverloaded) {
		t.Fatalf("overflow error = %v, want ErrOverloaded", err)
	}
	hint, ok := transport.RetryAfterHint(err)
	if !ok || hint != 250*time.Millisecond {
		t.Fatalf("hint = %v, %v; want 250ms, true", hint, ok)
	}
	if s := lim.Snapshot(); s.ShedRead != 1 || s.Sheds() != 1 {
		t.Fatalf("snapshot after shed: %+v", s)
	}
	lim.Release()
	wg.Wait()
}

// TestLimiterAIMD drives the controller through both branches on a manual
// clock: an interval whose best admission was instant raises the limit by
// one, an interval whose best admission still waited past Target halves it.
func TestLimiterAIMD(t *testing.T) {
	clk := clock.NewManual(t0)
	lim := NewLimiter(Config{
		InitialLimit: 2, MinLimit: 1, MaxLimit: 8,
		Interval: 100 * time.Millisecond, Target: 5 * time.Millisecond,
		QueueDepth: 10, Clock: clk,
	})
	reg := metrics.New()
	lim.Instrument(reg)

	// Two fast-path admissions at t0 observe zero queue delay.
	for i := 0; i < 2; i++ {
		if err := lim.Acquire(context.Background(), ClassRead); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	// Two waiters queue behind them.
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := lim.Acquire(context.Background(), ClassRead); err != nil {
				t.Errorf("queued acquire: %v", err)
				return
			}
			<-release
			lim.Release()
		}()
	}
	testutil.WaitFor(t, "two queued", func() bool { return lim.Snapshot().Queued == 2 })

	// Interval 1 closes with min delay 0 → additive increase, and the raised
	// limit pumps both waiters, each having queued 120ms.
	clk.Advance(120 * time.Millisecond)
	lim.Release()
	testutil.WaitFor(t, "waiters granted", func() bool { return lim.Snapshot().Queued == 0 })
	if s := lim.Snapshot(); s.Limit != 3 {
		t.Fatalf("limit after uncongested interval = %d, want 3", s.Limit)
	}

	// Interval 2 closes with min delay 120ms > target → multiplicative
	// decrease.
	clk.Advance(120 * time.Millisecond)
	lim.Release()
	if s := lim.Snapshot(); s.Limit != 1 {
		t.Fatalf("limit after congested interval = %d, want 1", s.Limit)
	}
	if g := testutil.Gauge(reg, "overload.limit"); g != 1 {
		t.Fatalf("overload.limit gauge = %d, want 1", g)
	}
	close(release)
	wg.Wait()
	if s := lim.Snapshot(); s.Inflight != 0 {
		t.Fatalf("inflight after drain = %d, want 0", s.Inflight)
	}
}

// TestLimiterExpiredBeforeAdmission proves a request that arrives already
// past its deadline is dropped without consuming a slot.
func TestLimiterExpiredBeforeAdmission(t *testing.T) {
	lim := NewLimiter(Config{Clock: clock.NewManual(t0)})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := lim.Acquire(ctx, ClassKeepalive)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s := lim.Snapshot(); s.ExpiredDrops != 1 || s.Inflight != 0 || s.Admitted != 0 {
		t.Fatalf("snapshot: %+v", s)
	}
}

// TestLimiterExpiredInQueue proves a waiter whose context dies while queued
// is unlinked and counted, and the queue keeps flowing afterwards.
func TestLimiterExpiredInQueue(t *testing.T) {
	clk := clock.NewManual(t0)
	lim := NewLimiter(Config{InitialLimit: 1, MinLimit: 1, MaxLimit: 1, Clock: clk})
	if err := lim.Acquire(context.Background(), ClassRead); err != nil {
		t.Fatalf("initial acquire: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- lim.Acquire(ctx, ClassRead) }()
	testutil.WaitFor(t, "waiter queued", func() bool { return lim.Snapshot().Queued == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued err = %v, want context.Canceled", err)
	}
	if s := lim.Snapshot(); s.ExpiredDrops != 1 || s.Queued != 0 {
		t.Fatalf("snapshot: %+v", s)
	}
	lim.Release()
	if err := lim.Acquire(context.Background(), ClassRead); err != nil {
		t.Fatalf("post-expiry acquire: %v", err)
	}
	lim.Release()
}

// TestClassify pins the method→class table and the unknown-method default.
func TestClassify(t *testing.T) {
	cases := map[string]Class{
		"midas.renewBatch": ClassKeepalive,
		"midas.inventory":  ClassKeepalive,
		"lookup.renew":     ClassKeepalive,
		"midas.applyBatch": ClassMutation,
		"base.post":        ClassMutation,
		"lookup.register":  ClassMutation,
		"base.query":       ClassRead,
		"base.fleet":       ClassRead,
		"lookup.find":      ClassRead,
		"no.such.method":   ClassMutation, // unknown defaults to the middle band
	}
	for m, want := range cases {
		if got := Classify(m); got != want {
			t.Errorf("Classify(%q) = %v, want %v", m, got, want)
		}
	}
}

// TestBucketsDeterministic proves per-peer token buckets are exact on a
// manual clock — the same call sequence always yields the same admits, sheds
// and hints — and that ungoverned methods and anonymous peers pass freely.
func TestBucketsDeterministic(t *testing.T) {
	run := func() (sheds uint64, hints []time.Duration) {
		clk := clock.NewManual(t0)
		b := NewBuckets(BucketConfig{Rate: 1, Burst: 2, Methods: []string{"base.query"}, Clock: clk})
		step := func(peer, method string, wantOK bool) {
			t.Helper()
			retry, ok := b.Admit(peer, method)
			if ok != wantOK {
				t.Fatalf("Admit(%s, %s) ok = %v, want %v", peer, method, ok, wantOK)
			}
			if !ok {
				hints = append(hints, retry)
			}
		}
		step("n1", "base.query", true)  // burst token 1
		step("n1", "base.query", true)  // burst token 2
		step("n1", "base.query", false) // empty → shed, ~1s to next token
		step("n1", "midas.list", true)  // ungoverned method passes
		step("", "base.query", true)    // anonymous peer passes
		step("n2", "base.query", true)  // other peer has its own bucket
		clk.Advance(time.Second)
		step("n1", "base.query", true) // refilled exactly one token
		step("n1", "base.query", false)
		return b.Sheds(), hints
	}
	sheds1, hints1 := run()
	sheds2, hints2 := run()
	if sheds1 != 2 || sheds2 != 2 {
		t.Fatalf("sheds = %d, %d; want 2, 2", sheds1, sheds2)
	}
	if len(hints1) != 2 || hints1[0] != time.Second || hints1[0] != hints2[0] || hints1[1] != hints2[1] {
		t.Fatalf("hints = %v vs %v", hints1, hints2)
	}
}

// TestBucketsNilSafe proves the disabled configuration (no governed methods)
// returns a nil set that admits everything.
func TestBucketsNilSafe(t *testing.T) {
	b := NewBuckets(BucketConfig{})
	if b != nil {
		t.Fatalf("NewBuckets with no methods = %v, want nil", b)
	}
	if _, ok := b.Admit("n1", "base.query"); !ok {
		t.Fatal("nil Buckets must admit")
	}
	if b.Sheds() != 0 || b.Peers() != 0 {
		t.Fatal("nil Buckets counters must be zero")
	}
}
