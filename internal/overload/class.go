package overload

// Class is a request's priority band. When the server is saturated, admission
// runs strictly by class: every queued keepalive is granted before any queued
// mutation, and every mutation before any read. The ordering encodes what the
// platform can least afford to lose — a missed renewal expires a lease and
// degrades a node (minutes of repair), a deferred mutation merely delays an
// adaptation, and a shed read costs one dashboard refresh.
type Class int

// Priority bands, highest first.
const (
	// ClassKeepalive is lease-keeping traffic: renewals and the anti-entropy
	// inventory sweep. Shedding it converts congestion into expiries.
	ClassKeepalive Class = iota
	// ClassMutation is state-changing traffic: pushes, adaptations, revokes,
	// registrations.
	ClassMutation
	// ClassRead is observational traffic: lookups, status, metrics, analyses.
	ClassRead

	numClasses = 3
)

// String renders the class for metric labels and span tags.
func (c Class) String() string {
	switch c {
	case ClassKeepalive:
		return "keepalive"
	case ClassMutation:
		return "mutation"
	default:
		return "read"
	}
}

// defaultClasses maps the platform's RPC surface onto the bands. The method
// names are string literals rather than the core/registry constants so this
// package sits below both (core imports overload for the fleet view).
var defaultClasses = map[string]Class{
	// Keepalive: lease renewals (singleton, batched, lookup-service) and the
	// reconciliation inventory sweep.
	"midas.renewBatch":  ClassKeepalive,
	"midas.renew":       ClassKeepalive,
	"midas.inventory":   ClassKeepalive,
	"lookup.renew":      ClassKeepalive,
	"lookup.renewWatch": ClassKeepalive,

	// Mutations: extension pushes, adaptation lifecycle, service registry
	// writes.
	"midas.install":     ClassMutation,
	"midas.applyBatch":  ClassMutation,
	"midas.revoke":      ClassMutation,
	"base.post":         ClassMutation,
	"base.onservice":    ClassMutation,
	"base.roam":         ClassMutation,
	"lookup.register":   ClassMutation,
	"lookup.deregister": ClassMutation,
	"lookup.watch":      ClassMutation,
	"lookup.unwatch":    ClassMutation,

	// Reads: lookups, status surfaces, observability pulls.
	"midas.list":    ClassRead,
	"midas.metrics": ClassRead,
	"midas.trace":   ClassRead,
	"base.query":    ClassRead,
	"base.status":   ClassRead,
	"base.fleet":    ClassRead,
	"base.analyze":  ClassRead,
	"lookup.find":   ClassRead,
}

// Classify maps a method name to its priority class. Unknown methods land in
// the middle band: safer than top (an unclassified method cannot starve
// keepalives) and safer than bottom (it is not silently first to shed).
func Classify(method string) Class {
	if c, ok := defaultClasses[method]; ok {
		return c
	}
	return ClassMutation
}
