package overload

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/simnet"
	"repro/internal/testutil"
	"repro/internal/transport"
)

// ping is a trivial gob-encodable request body for fabric tests.
type ping struct{ N int }

// blockingHandler counts invocations and parks each one on release until the
// test lets it finish.
type blockingHandler struct {
	mu      sync.Mutex
	calls   int
	release chan struct{}
}

func (h *blockingHandler) Handle(ctx context.Context, method string, body []byte) ([]byte, error) {
	h.mu.Lock()
	h.calls++
	h.mu.Unlock()
	if h.release != nil {
		<-h.release
	}
	return transport.Encode(&ping{})
}

func (h *blockingHandler) callCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.calls
}

// testDeadlineShed drives the shared scenario on one fabric: a single-slot
// limiter is occupied by a blocked call, a second call with a short deadline
// queues behind it and expires — and must be dropped without the wrapped
// handler ever running.
func testDeadlineShed(t *testing.T, serve func(t *testing.T, h transport.Handler) (newCaller func() transport.Caller, addr string, stop func())) {
	inner := &blockingHandler{release: make(chan struct{})}
	lim := NewLimiter(Config{InitialLimit: 1, MinLimit: 1, MaxLimit: 1, QueueDepth: 4})
	newCaller, addr, stop := serve(t, Wrap(inner, lim, nil, nil))
	defer stop()

	done := make(chan error, 1)
	go func() {
		done <- newCaller().Call(context.Background(), addr, "midas.list", &ping{N: 1}, nil)
	}()
	testutil.WaitFor(t, "first call inflight", func() bool { return lim.Snapshot().Inflight == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := newCaller().Call(ctx, addr, "midas.list", &ping{N: 2}, nil); err == nil {
		t.Fatal("expired call succeeded, want deadline drop")
	}
	// The expiry is recorded server-side even when the client saw only its
	// own context deadline (the TCP fabric forwards the budget).
	testutil.WaitFor(t, "expired drop counted", func() bool { return lim.Snapshot().ExpiredDrops == 1 })

	close(inner.release)
	if err := <-done; err != nil {
		t.Fatalf("blocked call: %v", err)
	}
	testutil.WaitFor(t, "slot released", func() bool { return lim.Snapshot().Inflight == 0 })
	if got := inner.callCount(); got != 1 {
		t.Fatalf("handler ran %d times, want 1 (expired request must not run)", got)
	}
}

func TestDeadlineShedInProc(t *testing.T) {
	testDeadlineShed(t, func(t *testing.T, h transport.Handler) (func() transport.Caller, string, func()) {
		net := transport.NewInProc()
		stop, err := net.Serve("srv", h)
		if err != nil {
			t.Fatalf("serve: %v", err)
		}
		i := 0
		return func() transport.Caller { i++; return net.Node("cli") }, "srv", stop
	})
}

func TestDeadlineShedSimnet(t *testing.T) {
	testDeadlineShed(t, func(t *testing.T, h transport.Handler) (func() transport.Caller, string, func()) {
		net := simnet.New(clock.NewManual(t0), 1)
		if _, err := net.Serve("srv", h); err != nil {
			t.Fatalf("serve: %v", err)
		}
		return func() transport.Caller { return net.Node("cli") }, "srv", net.Close
	})
}

func TestDeadlineShedTCP(t *testing.T) {
	testDeadlineShed(t, func(t *testing.T, h transport.Handler) (func() transport.Caller, string, func()) {
		srv, err := transport.ServeTCP("127.0.0.1:0", h)
		if err != nil {
			t.Fatalf("serve: %v", err)
		}
		var callers []*transport.TCPCaller
		var mu sync.Mutex
		newCaller := func() transport.Caller {
			c := transport.NewTCPCaller()
			mu.Lock()
			callers = append(callers, c)
			mu.Unlock()
			return c
		}
		stop := func() {
			mu.Lock()
			defer mu.Unlock()
			for _, c := range callers {
				c.Close()
			}
			srv.Close()
		}
		return newCaller, srv.Addr(), stop
	})
}

// TestHandlerPeerRateShed proves the base-edge token buckets shed a chatty
// peer's governed calls with the overload sentinel (which round-trips the
// fabric as a remote error), while other methods and other peers flow.
func TestHandlerPeerRateShed(t *testing.T) {
	clk := clock.NewManual(t0)
	inner := &blockingHandler{} // nil release: never blocks
	bk := NewBuckets(BucketConfig{Rate: 1, Burst: 2, Methods: []string{"base.query"}, Clock: clk})
	lim := NewLimiter(Config{Clock: clk})
	h := Wrap(inner, lim, bk, nil)

	net := transport.NewInProc()
	if _, err := net.Serve("base", h); err != nil {
		t.Fatalf("serve: %v", err)
	}
	cli := net.Node("node-1")
	for i := 0; i < 2; i++ {
		if err := cli.Call(context.Background(), "base", "base.query", &ping{N: i}, nil); err != nil {
			t.Fatalf("burst call %d: %v", i, err)
		}
	}
	err := cli.Call(context.Background(), "base", "base.query", &ping{N: 3}, nil)
	if !errors.Is(err, transport.ErrOverloaded) {
		t.Fatalf("third call err = %v, want ErrOverloaded", err)
	}
	if hint, ok := transport.RetryAfterHint(err); !ok || hint != time.Second {
		t.Fatalf("hint = %v, %v; want 1s, true", hint, ok)
	}
	// Ungoverned method from the rated-down peer still passes.
	if err := cli.Call(context.Background(), "base", "midas.list", &ping{}, nil); err != nil {
		t.Fatalf("ungoverned call: %v", err)
	}
	// Another peer has a fresh bucket.
	if err := net.Node("node-2").Call(context.Background(), "base", "base.query", &ping{}, nil); err != nil {
		t.Fatalf("other peer call: %v", err)
	}
	if got := inner.callCount(); got != 4 {
		t.Fatalf("handler ran %d times, want 4 (shed call must not run)", got)
	}
	s := h.Snapshot()
	if s.PeerSheds != 1 || s.ShedRead != 1 || s.Sheds() != 1 || s.Peers != 2 || s.Admitted != 4 {
		t.Fatalf("snapshot: %+v", s)
	}
}
