// Package trace is a dependency-free distributed tracer for the MIDAS
// lifecycle. It mints trace/span IDs from a seeded source (so a simnet run on
// the manual clock is bit-for-bit reproducible), records spans in a bounded
// in-memory ring with consistent snapshots, and keeps a structured event ring
// (Eventf) for point-in-time facts that do not deserve a span.
//
// At fleet scale recording every span thrashes the ring, so a tracer can run
// a head sampler (SetSampler): the keep/drop decision is made once per trace
// at the root — a pure function of the sampler seed and the trace ID, so a
// same-seed replay reproduces every decision bit for bit — and carried to
// every child span as a sampled bit in the SpanContext, across goroutines and
// all RPC fabrics. Sampled-out spans never touch the ring; a tail-keep pass
// at End still rescues error spans and slow spans (>= SlowThreshold), so the
// interesting traces survive any sampling rate.
//
// Like internal/metrics, every method is nil-safe: a nil *Tracer and a nil
// *Span are no-ops, so libraries thread tracers through without nil checks.
// Trace context crosses goroutines and the RPC fabric as a SpanContext value
// carried in a context.Context (and, over TCP, in the request envelope).
package trace

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Sampling bits carried in SpanContext.Flags. Legacy peers that predate
// sampling always send zero flags, which reads as "no decision present".
const (
	// FlagSampleKnown marks that a head-sampling decision travelled with the
	// span context. Without it the other bits are meaningless and a sampling
	// tracer decides locally from the trace ID.
	FlagSampleKnown uint8 = 1 << 0
	// FlagSampled marks the trace sampled in (record every span).
	FlagSampled uint8 = 1 << 1
)

// SpanContext identifies a span within a trace. It is a plain value type so
// the transport layer can gob-encode it inside request envelopes. The zero
// value means "no trace".
type SpanContext struct {
	TraceID string
	SpanID  string
	// Flags carries the head-sampling decision across process boundaries
	// (see FlagSampleKnown). Zero — what every legacy peer sends — means no
	// decision travelled, and the receiving tracer resolves one locally from
	// the trace ID, which same-seed tracers resolve identically.
	Flags uint8
}

// Valid reports whether sc refers to a real span.
func (sc SpanContext) Valid() bool { return sc.TraceID != "" && sc.SpanID != "" }

// SampleDecision unpacks the sampling bits: known reports whether a decision
// travelled with the context, sampled is that decision (meaningless when
// !known).
func (sc SpanContext) SampleDecision() (sampled, known bool) {
	return sc.Flags&FlagSampled != 0, sc.Flags&FlagSampleKnown != 0
}

type ctxKey struct{}

// NewContext returns ctx carrying sc. An invalid sc returns ctx unchanged.
func NewContext(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext extracts the span context carried by ctx, if any.
func FromContext(ctx context.Context) (SpanContext, bool) {
	if ctx == nil {
		return SpanContext{}, false
	}
	sc, ok := ctx.Value(ctxKey{}).(SpanContext)
	return sc, ok && sc.Valid()
}

// Detach returns a fresh background context carrying only the span context of
// ctx (if any). Use it when handing work to a goroutine that must outlive the
// request but stay in its trace.
func Detach(ctx context.Context) context.Context {
	sc, ok := FromContext(ctx)
	if !ok {
		return context.Background()
	}
	return NewContext(context.Background(), sc)
}

// Annotation is a timestamped note attached to a span.
type Annotation struct {
	AtUnixNano int64
	Msg        string
}

// SpanSnapshot is the immutable exported view of a span.
type SpanSnapshot struct {
	TraceID       string
	SpanID        string
	ParentID      string
	Name          string
	Tags          map[string]string
	StartUnixNano int64
	EndUnixNano   int64 // 0 while the span is still open
	Err           string
	Annotations   []Annotation
}

// Duration returns the span's elapsed time, or 0 if it has not ended.
func (s SpanSnapshot) Duration() time.Duration {
	if s.EndUnixNano == 0 {
		return 0
	}
	return time.Duration(s.EndUnixNano - s.StartUnixNano)
}

// Span is a live span handle. All methods are nil-safe no-ops.
type Span struct {
	tr    *Tracer
	flags uint8 // sampling bits stamped on every context derived from this span

	mu     sync.Mutex
	lazy   bool  // sampled out: not in the ring unless tail-keep rescues it
	slowNs int64 // tail-keep threshold captured at start (lazy spans only)
	tags   []tagKV
	snap   SpanSnapshot
}

// tagKV stages one Tag call. Tags live in this flat slice while the span is
// hot and become the snapshot's map only when somebody reads it — sampled-out
// spans, the fleet's steady state, then never pay for a map at all.
type tagKV struct{ k, v string }

// Context returns the span's identity for propagation. A nil span returns the
// zero SpanContext.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lazy && s.snap.SpanID == "" {
		// Sampled-out spans defer ID minting; propagation needs one now.
		s.snap.SpanID = s.tr.lazyID()
	}
	return SpanContext{TraceID: s.snap.TraceID, SpanID: s.snap.SpanID, Flags: s.flags}
}

// Tag sets a key/value label on the span.
func (s *Span) Tag(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tags == nil {
		// Spans carry one or two tags almost always; size for that and let
		// append grow the rare outlier.
		s.tags = make([]tagKV, 0, 2)
	}
	s.tags = append(s.tags, tagKV{key, value})
}

// Annotatef appends a timestamped note to the span.
func (s *Span) Annotatef(format string, args ...any) {
	if s == nil {
		return
	}
	at := s.tr.nowNanos()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.snap.Annotations = append(s.snap.Annotations, Annotation{AtUnixNano: at, Msg: fmt.Sprintf(format, args...)})
}

// End closes the span, recording err (nil for success). A sampled-out span
// is discarded here unless tail-keep applies: spans that ended in error, and
// spans at or over the sampler's SlowThreshold, always enter the ring
// regardless of the head decision.
//
// A span must not be used after End returns: discarded sampled-out spans are
// recycled, so a late Tag, Annotatef, or second End would land on an
// unrelated span.
func (s *Span) End(err error) {
	if s == nil {
		return
	}
	at := s.tr.nowNanos()
	s.mu.Lock()
	if s.snap.EndUnixNano != 0 {
		s.mu.Unlock()
		return
	}
	s.snap.EndUnixNano = at
	if err != nil {
		s.snap.Err = err.Error()
	}
	keep := s.lazy && (s.snap.Err != "" || (s.slowNs > 0 && at-s.snap.StartUnixNano >= s.slowNs))
	if keep {
		if s.snap.SpanID == "" {
			s.snap.SpanID = s.tr.lazyID()
		}
		s.lazy = false
	}
	discard := s.lazy
	s.mu.Unlock()
	if keep {
		s.tr.tailKept.Add(1)
		s.tr.insert(s)
	} else if discard {
		lazyPool.Put(s)
	}
}

func (s *Span) snapshot() SpanSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.snap
	if len(s.tags) > 0 {
		out.Tags = make(map[string]string, len(s.tags))
		for _, t := range s.tags {
			// Append order: a repeated key keeps its last value, map semantics.
			out.Tags[t.k] = t.v
		}
	}
	if s.snap.Annotations != nil {
		out.Annotations = append([]Annotation(nil), s.snap.Annotations...)
	}
	return out
}

// Default ring capacities; override with SetCapacity before use.
const (
	DefaultSpanCapacity  = 4096
	DefaultEventCapacity = 2048
)

// SamplerConfig describes head sampling with tail-keep. Rate is the fraction
// of new traces recorded (clamped to [0,1]; 1 records everything, 0 records
// only what tail-keep rescues). Seed feeds the decision hash so a fleet of
// same-seed tracers — and a replay — resolves every trace identically.
// SlowThreshold is the tail-keep latency bound: a span at or over it is
// recorded even when its trace was sampled out (0 rescues only errors).
type SamplerConfig struct {
	Rate          float64
	Seed          int64
	SlowThreshold time.Duration
}

// sampler is the immutable compiled form, swapped atomically on the tracer.
type sampler struct {
	threshold uint64 // keep when mixed trace-ID hash < threshold
	seed      uint64
	slowNs    int64
}

// keep is the head decision: a pure function of (seed, traceID), so every
// tracer sharing a seed — local or across the fabric — agrees, and a replay
// reproduces the run's decisions bit for bit.
func (s *sampler) keep(traceID string) bool {
	switch s.threshold {
	case math.MaxUint64:
		return true
	case 0:
		return false
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(traceID); i++ {
		h ^= uint64(traceID[i])
		h *= prime64
	}
	return mix64(h^s.seed) < s.threshold
}

// mix64 is the splitmix64 finalizer: a cheap full-avalanche mix so every bit
// of the FNV hash and seed lands in the thresholded comparison.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Tracer mints IDs, records spans and buffers events. The zero value is not
// usable; construct with New. A nil *Tracer is a no-op everywhere.
type Tracer struct {
	nowFn      atomic.Pointer[func() time.Time]
	smp        atomic.Pointer[sampler] // nil: sampling off, record everything
	sampledOut atomic.Uint64
	tailKept   atomic.Uint64
	lazySeq    atomic.Uint64
	lazySalt   uint64

	mu        sync.Mutex
	rng       *rand.Rand
	spans     []*Span // ring: oldest at spanNext when full
	spanNext  int
	spanFull  bool
	dropped   uint64
	events    []Event // ring, same scheme
	eventNext int
	eventFull bool
	eventSeq  uint64
	spanCap   int
	eventCap  int
}

// New returns a tracer whose IDs are minted from seed. Daemons seed from the
// wall clock; deterministic tests pass a fixed seed so replayed runs mint
// identical IDs.
func New(seed int64) *Tracer {
	t := &Tracer{
		rng:      rand.New(rand.NewSource(seed)),
		spanCap:  DefaultSpanCapacity,
		eventCap: DefaultEventCapacity,
		lazySalt: mix64(uint64(seed) ^ 0x9e3779b97f4a7c15),
	}
	t.storeNow(time.Now) //lint:allow clockcheck (SetNow overrides; wall clock is the right default)
	return t
}

// SetNow replaces the tracer's time source (e.g. a manual clock's Now).
// Call before the tracer is shared. A nil tracer or nil now is a no-op.
func (t *Tracer) SetNow(now func() time.Time) {
	if t == nil || now == nil {
		return
	}
	t.storeNow(now)
}

func (t *Tracer) storeNow(fn func() time.Time) { t.nowFn.Store(&fn) }

// SetSampler installs (or replaces) the head sampler. Without one — the
// default — every span is recorded, and span contexts carry no sampling
// decision, exactly as before sampling existed. A nil tracer is a no-op.
func (t *Tracer) SetSampler(cfg SamplerConfig) {
	if t == nil {
		return
	}
	s := &sampler{seed: mix64(uint64(cfg.Seed)), slowNs: int64(cfg.SlowThreshold)}
	switch {
	case cfg.Rate >= 1:
		s.threshold = math.MaxUint64
	case cfg.Rate <= 0:
		s.threshold = 0
	default:
		s.threshold = uint64(cfg.Rate * float64(math.MaxUint64))
	}
	t.smp.Store(s)
}

// SamplerStats reports how many spans the head sampler dropped at start and
// how many of those tail-keep rescued into the ring (errors and slow spans).
func (t *Tracer) SamplerStats() (sampledOut, tailKept uint64) {
	if t == nil {
		return 0, 0
	}
	return t.sampledOut.Load(), t.tailKept.Load()
}

// SetCapacity bounds the span and event rings. Values < 1 keep the current
// capacity. Existing contents are discarded.
func (t *Tracer) SetCapacity(spans, events int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if spans > 0 {
		t.spanCap = spans
	}
	if events > 0 {
		t.eventCap = events
	}
	t.spans, t.spanNext, t.spanFull = nil, 0, false
	t.events, t.eventNext, t.eventFull = nil, 0, false
}

func (t *Tracer) nowNanos() int64 {
	if t == nil {
		return 0
	}
	fn := t.nowFn.Load()
	if fn == nil {
		return 0
	}
	return (*fn)().UnixNano()
}

// lazyID mints a span ID for a sampled-out span outside the shared RNG, so
// the sampled-in ID sequence — and with it any same-seed replay of recorded
// spans — is independent of how many sampled-out spans needed IDs.
func (t *Tracer) lazyID() string {
	if t == nil {
		return ""
	}
	return hex16(mix64(t.lazySalt ^ t.lazySeq.Add(1)))
}

// hex16 renders v as exactly 16 lowercase hex digits — what %016x produces,
// without fmt's formatting machinery. IDs are minted on every traced RPC, so
// this shows up at fleet scale.
func hex16(v uint64) string {
	var b [16]byte
	putHex16(b[:], v)
	return string(b[:])
}

// hex32 renders hi then lo as 32 lowercase hex digits (%016x%016x).
func hex32(hi, lo uint64) string {
	var b [32]byte
	putHex16(b[:16], hi)
	putHex16(b[16:], lo)
	return string(b[:])
}

func putHex16(dst []byte, v uint64) {
	const digits = "0123456789abcdef"
	for i := 15; i >= 0; i-- {
		dst[i] = digits[v&0xf]
		v >>= 4
	}
}

// StartSpan opens a span named name. If ctx carries a span context the new
// span joins that trace as a child; otherwise it roots a new trace. It
// returns a derived context carrying the new span (for propagation) and the
// span handle. On a nil tracer it returns (ctx, nil) — both safe to use.
//
// With a sampler installed the root resolves the trace's head decision and
// every descendant inherits it from the context — including across the RPC
// fabric. Sampled-out spans are cheap: pooled, no span ID up front, the ring is never
// touched, and on a child the caller's context is returned as-is (the next
// hop re-parents to the nearest sampled ancestor; End may still tail-keep).
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	parent, _ := FromContext(ctx)

	smp := t.smp.Load()
	if smp == nil {
		// No sampler: record unconditionally, pass inbound flags through so
		// an unsampled middle hop does not erase the root's decision.
		return t.startRecorded(ctx, parent, parent.Flags, name)
	}

	sampled, known := parent.SampleDecision()
	root := parent.TraceID == ""
	if root {
		// Root span: mint the trace ID first, then derive the decision from
		// it — a same-seed replay mints the same IDs, hence decides alike.
		parent.TraceID = t.mintTraceID()
	}
	if !known {
		// No decision travelled (new root, or a parent from a legacy peer):
		// resolve it here from the trace ID.
		sampled = smp.keep(parent.TraceID)
	}
	flags := FlagSampleKnown
	if sampled {
		flags |= FlagSampled
	}
	if sampled {
		return t.startRecorded(ctx, parent, flags, name)
	}

	sp := t.newLazy(parent, flags, name, smp.slowNs)
	if known && parent.Flags == flags && !root {
		// The inbound context already names this trace and carries this very
		// decision: reuse it and keep the sampled-out fast path free of
		// context and ID allocations.
		return ctx, sp
	}
	return NewContext(ctx, sp.Context()), sp
}

// StartSpanFrom starts a span as a child of a remembered SpanContext without
// threading a context.Context — the fan-out shape, where batch work spawns
// one short span per item off a parent captured earlier and nothing
// downstream needs propagation. Sampling semantics match StartSpan exactly
// (same decisions, same RNG draws, so replays stay bit-identical); only the
// context plumbing is skipped, which keeps the sampled-out fan-out at a
// single allocation per span.
func (t *Tracer) StartSpanFrom(parent SpanContext, name string) *Span {
	if t == nil {
		return nil
	}
	smp := t.smp.Load()
	if smp == nil {
		return t.newRecorded(parent, parent.Flags, name)
	}
	sampled, known := parent.SampleDecision()
	if parent.TraceID == "" {
		parent.TraceID = t.mintTraceID()
	}
	if !known {
		sampled = smp.keep(parent.TraceID)
	}
	flags := FlagSampleKnown
	if sampled {
		flags |= FlagSampled
	}
	if sampled {
		return t.newRecorded(parent, flags, name)
	}
	return t.newLazy(parent, flags, name, smp.slowNs)
}

// lazyPool recycles sampled-out spans. The fleet steady state starts and
// discards hundreds of thousands of them per renewal window; recycling keeps
// that churn off the garbage collector. Tail-kept spans enter the ring and
// are never pooled.
var lazyPool = sync.Pool{New: func() any { return new(Span) }}

// newLazy builds a sampled-out span from the pool and counts it.
func (t *Tracer) newLazy(parent SpanContext, flags uint8, name string, slowNs int64) *Span {
	t.sampledOut.Add(1)
	sp := lazyPool.Get().(*Span)
	sp.tr = t
	sp.flags = flags
	sp.lazy = true
	sp.slowNs = slowNs
	sp.tags = sp.tags[:0]
	sp.snap = SpanSnapshot{
		TraceID:       parent.TraceID,
		ParentID:      parent.SpanID,
		Name:          name,
		StartUnixNano: t.nowNanos(),
	}
	return sp
}

// startRecorded is the record-unconditionally path: IDs from the seeded RNG,
// a ring slot up front, flags stamped for propagation.
func (t *Tracer) startRecorded(ctx context.Context, parent SpanContext, flags uint8, name string) (context.Context, *Span) {
	sp := t.newRecorded(parent, flags, name)
	return NewContext(ctx, SpanContext{TraceID: sp.snap.TraceID, SpanID: sp.snap.SpanID, Flags: flags}), sp
}

// newRecorded mints IDs and takes a ring slot — shared by the context-carried
// and context-free start paths. Span IDs come from the seeded RNG, whose draw
// order is part of the replay contract; recorded spans are its only consumer,
// so the sampled-in ID sequence never shifts with the sampled-out load.
func (t *Tracer) newRecorded(parent SpanContext, flags uint8, name string) *Span {
	traceID := parent.TraceID
	if traceID == "" {
		traceID = t.mintTraceID()
	}
	t.mu.Lock()
	spanID := hex16(t.rng.Uint64())
	t.mu.Unlock()

	sp := &Span{tr: t, flags: flags}
	sp.snap = SpanSnapshot{
		TraceID:       traceID,
		SpanID:        spanID,
		ParentID:      parent.SpanID,
		Name:          name,
		StartUnixNano: t.nowNanos(),
	}
	t.insert(sp)
	return sp
}

// mintTraceID mints a root trace ID from the tracer's salted sequence, not
// the shared RNG. A root's ID must exist before the head decision hashes it,
// so at fleet scale nearly every minted ID belongs to a trace that is then
// sampled out — a lock-free mint keeps those off the recorded-span RNG's
// critical section and out of its draw sequence. Same-seed replays issue the
// same sequence values in the same order, so the IDs — and the decisions
// derived from them — reproduce bit for bit.
func (t *Tracer) mintTraceID() string {
	n := t.lazySeq.Add(1)
	return hex32(mix64(t.lazySalt^n), mix64(n+0x9e3779b97f4a7c15))
}

// insert places sp in the span ring, evicting the oldest span when full.
func (t *Tracer) insert(sp *Span) {
	t.mu.Lock()
	if t.spans == nil {
		t.spans = make([]*Span, 0, t.spanCap)
	}
	if len(t.spans) < t.spanCap {
		t.spans = append(t.spans, sp)
	} else {
		t.spans[t.spanNext] = sp
		t.spanFull = true
		t.dropped++
	}
	t.spanNext = (t.spanNext + 1) % t.spanCap
	t.mu.Unlock()
}

// SpansDropped reports how many spans were evicted from the ring.
func (t *Tracer) SpansDropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// RingOccupancy reports how many spans the ring currently holds and its
// capacity — the gauge pair that shows whether sampling is keeping trace
// memory bounded.
func (t *Tracer) RingOccupancy() (used, capacity int) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans), t.spanCap
}

// Filter selects spans. Zero fields match everything; Tags entries must all
// match the span's tags.
type Filter struct {
	TraceID string
	Name    string
	Tags    map[string]string
}

func (f Filter) matches(s SpanSnapshot) bool {
	if f.TraceID != "" && s.TraceID != f.TraceID {
		return false
	}
	if f.Name != "" && s.Name != f.Name {
		return false
	}
	for k, v := range f.Tags {
		if s.Tags[k] != v {
			return false
		}
	}
	return true
}

// Spans returns a consistent snapshot of recorded spans matching f, oldest
// first.
func (t *Tracer) Spans(f Filter) []SpanSnapshot {
	if t == nil {
		return nil
	}
	live := t.liveSpans()
	var out []SpanSnapshot
	for _, sp := range live {
		snap := sp.snapshot()
		if f.matches(snap) {
			out = append(out, snap)
		}
	}
	return out
}

// liveSpans copies the ring contents (oldest first) under the tracer lock.
func (t *Tracer) liveSpans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.spanFull {
		return append([]*Span(nil), t.spans...)
	}
	out := make([]*Span, 0, len(t.spans))
	out = append(out, t.spans[t.spanNext:]...)
	out = append(out, t.spans[:t.spanNext]...)
	return out
}

// QuerySpans resolves q — a trace ID, an extension name, or a node name —
// into the full set of spans of every trace it touches. An empty q returns
// every span.
func (t *Tracer) QuerySpans(q string) []SpanSnapshot {
	if t == nil {
		return nil
	}
	all := t.Spans(Filter{})
	if q == "" {
		return all
	}
	ids := make(map[string]bool)
	for _, s := range all {
		if s.TraceID == q || s.Tags["ext"] == q || s.Tags["node"] == q {
			ids[s.TraceID] = true
		}
	}
	var out []SpanSnapshot
	for _, s := range all {
		if ids[s.TraceID] {
			out = append(out, s)
		}
	}
	return out
}
