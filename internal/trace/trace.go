// Package trace is a dependency-free distributed tracer for the MIDAS
// lifecycle. It mints trace/span IDs from a seeded source (so a simnet run on
// the manual clock is bit-for-bit reproducible), records spans in a bounded
// in-memory ring with consistent snapshots, and keeps a structured event ring
// (Eventf) for point-in-time facts that do not deserve a span.
//
// Like internal/metrics, every method is nil-safe: a nil *Tracer and a nil
// *Span are no-ops, so libraries thread tracers through without nil checks.
// Trace context crosses goroutines and the RPC fabric as a SpanContext value
// carried in a context.Context (and, over TCP, in the request envelope).
package trace

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// SpanContext identifies a span within a trace. It is a plain value type so
// the transport layer can gob-encode it inside request envelopes. The zero
// value means "no trace".
type SpanContext struct {
	TraceID string
	SpanID  string
}

// Valid reports whether sc refers to a real span.
func (sc SpanContext) Valid() bool { return sc.TraceID != "" && sc.SpanID != "" }

type ctxKey struct{}

// NewContext returns ctx carrying sc. An invalid sc returns ctx unchanged.
func NewContext(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext extracts the span context carried by ctx, if any.
func FromContext(ctx context.Context) (SpanContext, bool) {
	if ctx == nil {
		return SpanContext{}, false
	}
	sc, ok := ctx.Value(ctxKey{}).(SpanContext)
	return sc, ok && sc.Valid()
}

// Detach returns a fresh background context carrying only the span context of
// ctx (if any). Use it when handing work to a goroutine that must outlive the
// request but stay in its trace.
func Detach(ctx context.Context) context.Context {
	sc, ok := FromContext(ctx)
	if !ok {
		return context.Background()
	}
	return NewContext(context.Background(), sc)
}

// Annotation is a timestamped note attached to a span.
type Annotation struct {
	AtUnixNano int64
	Msg        string
}

// SpanSnapshot is the immutable exported view of a span.
type SpanSnapshot struct {
	TraceID       string
	SpanID        string
	ParentID      string
	Name          string
	Tags          map[string]string
	StartUnixNano int64
	EndUnixNano   int64 // 0 while the span is still open
	Err           string
	Annotations   []Annotation
}

// Duration returns the span's elapsed time, or 0 if it has not ended.
func (s SpanSnapshot) Duration() time.Duration {
	if s.EndUnixNano == 0 {
		return 0
	}
	return time.Duration(s.EndUnixNano - s.StartUnixNano)
}

// Span is a live span handle. All methods are nil-safe no-ops.
type Span struct {
	tr *Tracer

	mu   sync.Mutex
	snap SpanSnapshot
}

// Context returns the span's identity for propagation. A nil span returns the
// zero SpanContext.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return SpanContext{TraceID: s.snap.TraceID, SpanID: s.snap.SpanID}
}

// Tag sets a key/value label on the span.
func (s *Span) Tag(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.snap.Tags == nil {
		s.snap.Tags = make(map[string]string)
	}
	s.snap.Tags[key] = value
}

// Annotatef appends a timestamped note to the span.
func (s *Span) Annotatef(format string, args ...any) {
	if s == nil {
		return
	}
	at := s.tr.nowNanos()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.snap.Annotations = append(s.snap.Annotations, Annotation{AtUnixNano: at, Msg: fmt.Sprintf(format, args...)})
}

// End closes the span, recording err (nil for success). Ending twice keeps
// the first end time.
func (s *Span) End(err error) {
	if s == nil {
		return
	}
	at := s.tr.nowNanos()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.snap.EndUnixNano != 0 {
		return
	}
	s.snap.EndUnixNano = at
	if err != nil {
		s.snap.Err = err.Error()
	}
}

func (s *Span) snapshot() SpanSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.snap
	if s.snap.Tags != nil {
		out.Tags = make(map[string]string, len(s.snap.Tags))
		for k, v := range s.snap.Tags {
			out.Tags[k] = v
		}
	}
	if s.snap.Annotations != nil {
		out.Annotations = append([]Annotation(nil), s.snap.Annotations...)
	}
	return out
}

// Default ring capacities; override with SetCapacity before use.
const (
	DefaultSpanCapacity  = 4096
	DefaultEventCapacity = 2048
)

// Tracer mints IDs, records spans and buffers events. The zero value is not
// usable; construct with New. A nil *Tracer is a no-op everywhere.
type Tracer struct {
	mu        sync.Mutex
	now       func() time.Time
	rng       *rand.Rand
	spans     []*Span // ring: oldest at spanNext when full
	spanNext  int
	spanFull  bool
	dropped   uint64
	events    []Event // ring, same scheme
	eventNext int
	eventFull bool
	eventSeq  uint64
	spanCap   int
	eventCap  int
}

// New returns a tracer whose IDs are minted from seed. Daemons seed from the
// wall clock; deterministic tests pass a fixed seed so replayed runs mint
// identical IDs.
func New(seed int64) *Tracer {
	return &Tracer{
		now:      time.Now, //lint:allow clockcheck (SetNow overrides; wall clock is the right default)
		rng:      rand.New(rand.NewSource(seed)),
		spanCap:  DefaultSpanCapacity,
		eventCap: DefaultEventCapacity,
	}
}

// SetNow replaces the tracer's time source (e.g. a manual clock's Now).
// Call before the tracer is shared. A nil tracer or nil now is a no-op.
func (t *Tracer) SetNow(now func() time.Time) {
	if t == nil || now == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.now = now
}

// SetCapacity bounds the span and event rings. Values < 1 keep the current
// capacity. Existing contents are discarded.
func (t *Tracer) SetCapacity(spans, events int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if spans > 0 {
		t.spanCap = spans
	}
	if events > 0 {
		t.eventCap = events
	}
	t.spans, t.spanNext, t.spanFull = nil, 0, false
	t.events, t.eventNext, t.eventFull = nil, 0, false
}

func (t *Tracer) nowNanos() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	now := t.now
	t.mu.Unlock()
	return now().UnixNano()
}

// StartSpan opens a span named name. If ctx carries a span context the new
// span joins that trace as a child; otherwise it roots a new trace. It
// returns a derived context carrying the new span (for propagation) and the
// span handle. On a nil tracer it returns (ctx, nil) — both safe to use.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	parent, _ := FromContext(ctx)

	t.mu.Lock()
	traceID := parent.TraceID
	if traceID == "" {
		traceID = fmt.Sprintf("%016x%016x", t.rng.Uint64(), t.rng.Uint64())
	}
	spanID := fmt.Sprintf("%016x", t.rng.Uint64())
	now := t.now
	t.mu.Unlock()

	sp := &Span{tr: t}
	sp.snap = SpanSnapshot{
		TraceID:       traceID,
		SpanID:        spanID,
		ParentID:      parent.SpanID,
		Name:          name,
		StartUnixNano: now().UnixNano(),
	}

	t.mu.Lock()
	if t.spans == nil {
		t.spans = make([]*Span, 0, t.spanCap)
	}
	if len(t.spans) < t.spanCap {
		t.spans = append(t.spans, sp)
	} else {
		t.spans[t.spanNext] = sp
		t.spanFull = true
		t.dropped++
	}
	t.spanNext = (t.spanNext + 1) % t.spanCap
	t.mu.Unlock()

	return NewContext(ctx, sp.Context()), sp
}

// SpansDropped reports how many spans were evicted from the ring.
func (t *Tracer) SpansDropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Filter selects spans. Zero fields match everything; Tags entries must all
// match the span's tags.
type Filter struct {
	TraceID string
	Name    string
	Tags    map[string]string
}

func (f Filter) matches(s SpanSnapshot) bool {
	if f.TraceID != "" && s.TraceID != f.TraceID {
		return false
	}
	if f.Name != "" && s.Name != f.Name {
		return false
	}
	for k, v := range f.Tags {
		if s.Tags[k] != v {
			return false
		}
	}
	return true
}

// Spans returns a consistent snapshot of recorded spans matching f, oldest
// first.
func (t *Tracer) Spans(f Filter) []SpanSnapshot {
	if t == nil {
		return nil
	}
	live := t.liveSpans()
	var out []SpanSnapshot
	for _, sp := range live {
		snap := sp.snapshot()
		if f.matches(snap) {
			out = append(out, snap)
		}
	}
	return out
}

// liveSpans copies the ring contents (oldest first) under the tracer lock.
func (t *Tracer) liveSpans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.spanFull {
		return append([]*Span(nil), t.spans...)
	}
	out := make([]*Span, 0, len(t.spans))
	out = append(out, t.spans[t.spanNext:]...)
	out = append(out, t.spans[:t.spanNext]...)
	return out
}

// QuerySpans resolves q — a trace ID, an extension name, or a node name —
// into the full set of spans of every trace it touches. An empty q returns
// every span.
func (t *Tracer) QuerySpans(q string) []SpanSnapshot {
	if t == nil {
		return nil
	}
	all := t.Spans(Filter{})
	if q == "" {
		return all
	}
	ids := make(map[string]bool)
	for _, s := range all {
		if s.TraceID == q || s.Tags["ext"] == q || s.Tags["node"] == q {
			ids[s.TraceID] = true
		}
	}
	var out []SpanSnapshot
	for _, s := range all {
		if ids[s.TraceID] {
			out = append(out, s)
		}
	}
	return out
}
