package trace

import (
	"context"
	"errors"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety mirrors the metrics package's nil-safety contract: a nil
// *Tracer and a nil *Span must be usable no-ops so libraries never nil-check.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.StartSpan(context.Background(), "noop")
	if ctx == nil {
		t.Fatal("nil tracer returned nil ctx")
	}
	if sp != nil {
		t.Fatal("nil tracer returned non-nil span")
	}
	sp.Tag("k", "v")
	sp.Annotatef("note %d", 1)
	sp.End(errors.New("boom"))
	if sc := sp.Context(); sc.Valid() {
		t.Fatalf("nil span context should be invalid, got %+v", sc)
	}
	tr.Eventf(ctx, "comp", "event %d", 1)
	tr.SetNow(time.Now)
	tr.SetCapacity(10, 10)
	if got := tr.Spans(Filter{}); got != nil {
		t.Fatalf("nil tracer Spans = %v, want nil", got)
	}
	if got := tr.Events(EventFilter{}); got != nil {
		t.Fatalf("nil tracer Events = %v, want nil", got)
	}
	if got := tr.QuerySpans("x"); got != nil {
		t.Fatalf("nil tracer QuerySpans = %v, want nil", got)
	}
	if tr.SpansDropped() != 0 {
		t.Fatal("nil tracer SpansDropped != 0")
	}
}

func TestSpanParentChildAndContext(t *testing.T) {
	tr := New(1)
	ctx, root := tr.StartSpan(context.Background(), "root")
	root.Tag("node", "n1")
	cctx, child := tr.StartSpan(ctx, "child")
	child.End(nil)
	root.End(nil)

	rsc := root.Context()
	csc := child.Context()
	if !rsc.Valid() || !csc.Valid() {
		t.Fatal("span contexts should be valid")
	}
	if rsc.TraceID != csc.TraceID {
		t.Fatalf("child trace %s != root trace %s", csc.TraceID, rsc.TraceID)
	}
	if got, ok := FromContext(cctx); !ok || got != csc {
		t.Fatalf("FromContext = %+v, want %+v", got, csc)
	}
	spans := tr.Spans(Filter{})
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[1].ParentID != rsc.SpanID {
		t.Fatalf("child parent %s, want %s", spans[1].ParentID, rsc.SpanID)
	}
	if spans[0].Tags["node"] != "n1" {
		t.Fatalf("root tags = %v", spans[0].Tags)
	}
	if spans[1].EndUnixNano == 0 {
		t.Fatal("child should be ended")
	}
}

func TestDeterministicIDs(t *testing.T) {
	mint := func() []SpanSnapshot {
		tr := New(42)
		tr.SetNow(func() time.Time { return time.Unix(0, 12345) })
		ctx, a := tr.StartSpan(context.Background(), "a")
		_, b := tr.StartSpan(ctx, "b")
		b.End(nil)
		a.End(nil)
		return tr.Spans(Filter{})
	}
	if got, want := mint(), mint(); !reflect.DeepEqual(got, want) {
		t.Fatalf("same seed minted different spans:\n%v\n%v", got, want)
	}
	other := New(43)
	_, sp := other.StartSpan(context.Background(), "a")
	if sp.Context().TraceID == mint()[0].TraceID {
		t.Fatal("different seeds minted identical trace IDs")
	}
}

func TestSpanRingBounds(t *testing.T) {
	tr := New(7)
	tr.SetCapacity(4, 4)
	var last SpanContext
	for i := 0; i < 10; i++ {
		_, sp := tr.StartSpan(context.Background(), "s")
		sp.End(nil)
		last = sp.Context()
	}
	spans := tr.Spans(Filter{})
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	if spans[3].SpanID != last.SpanID {
		t.Fatal("newest span missing from ring")
	}
	if tr.SpansDropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.SpansDropped())
	}
}

func TestEventRingOrderAndFilter(t *testing.T) {
	tr := New(7)
	tr.SetCapacity(16, 3)
	ctx, sp := tr.StartSpan(context.Background(), "s")
	for i := 0; i < 5; i++ {
		if i%2 == 0 {
			tr.Eventf(ctx, "lease", "ev %d", i)
		} else {
			tr.Eventf(nil, "disc", "ev %d", i)
		}
	}
	sp.End(nil)
	events := tr.Events(EventFilter{})
	if len(events) != 3 {
		t.Fatalf("ring holds %d events, want 3", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("events out of order: %v", events)
		}
	}
	if events[2].Msg != "ev 4" || events[2].TraceID != sp.Context().TraceID {
		t.Fatalf("newest event wrong: %+v", events[2])
	}
	byComp := tr.Events(EventFilter{Component: "lease"})
	for _, e := range byComp {
		if e.Component != "lease" {
			t.Fatalf("component filter leaked %+v", e)
		}
	}
	byTrace := tr.Events(EventFilter{TraceID: sp.Context().TraceID})
	if len(byTrace) == 0 {
		t.Fatal("trace filter found nothing")
	}
}

func TestQuerySpansExpandsTraces(t *testing.T) {
	tr := New(9)
	ctx, root := tr.StartSpan(context.Background(), "base.push")
	root.Tag("ext", "plotter-guard")
	_, child := tr.StartSpan(ctx, "rpc.call")
	child.End(nil)
	root.End(nil)
	_, other := tr.StartSpan(context.Background(), "unrelated")
	other.End(nil)

	got := tr.QuerySpans("plotter-guard")
	if len(got) != 2 {
		t.Fatalf("query by ext got %d spans, want the full 2-span trace", len(got))
	}
	byID := tr.QuerySpans(root.Context().TraceID)
	if len(byID) != 2 {
		t.Fatalf("query by trace ID got %d spans, want 2", len(byID))
	}
	if all := tr.QuerySpans(""); len(all) != 3 {
		t.Fatalf("empty query got %d spans, want all 3", len(all))
	}
}

func TestConcurrentSpansAndSnapshots(t *testing.T) {
	tr := New(3)
	tr.SetCapacity(64, 64)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				ctx, sp := tr.StartSpan(context.Background(), "w")
				sp.Tag("k", "v")
				tr.Eventf(ctx, "c", "e")
				sp.End(nil)
				tr.Spans(Filter{Name: "w"})
				tr.Events(EventFilter{})
			}
		}()
	}
	wg.Wait()
}

func TestHTTPHandlers(t *testing.T) {
	tr := New(5)
	ctx, sp := tr.StartSpan(context.Background(), "ext.install")
	sp.Tag("ext", "e1")
	tr.Eventf(ctx, "lease", "grant")
	sp.End(nil)

	rec := httptest.NewRecorder()
	Handler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/trace?q=e1", nil))
	if !strings.Contains(rec.Body.String(), "ext.install") {
		t.Fatalf("/trace missing span: %s", rec.Body.String())
	}
	rec = httptest.NewRecorder()
	EventsHandler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/events?component=lease", nil))
	if !strings.Contains(rec.Body.String(), "grant") {
		t.Fatalf("/events missing event: %s", rec.Body.String())
	}
	rec = httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/trace", nil))
	if strings.TrimSpace(rec.Body.String()) != "[]" {
		t.Fatalf("nil tracer /trace = %q, want []", rec.Body.String())
	}
}

func TestWriteTextTree(t *testing.T) {
	tr := New(11)
	ctx, root := tr.StartSpan(context.Background(), "base.adapt")
	root.Tag("node", "n1")
	_, child := tr.StartSpan(ctx, "base.push")
	child.Annotatef("retrying")
	child.End(errors.New("lost"))
	root.End(nil)

	var b strings.Builder
	WriteText(&b, tr.Spans(Filter{}))
	out := b.String()
	for _, want := range []string{"trace ", "- base.adapt", "  - base.push", "@ retrying", `err="lost"`, "node=n1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteText output missing %q:\n%s", want, out)
		}
	}
	var eb strings.Builder
	tr.Eventf(nil, "weave", "inserted")
	WriteEventsText(&eb, tr.Events(EventFilter{}))
	if !strings.Contains(eb.String(), "[weave] inserted") {
		t.Fatalf("WriteEventsText output: %s", eb.String())
	}
}

func TestDetach(t *testing.T) {
	tr := New(13)
	ctx, sp := tr.StartSpan(context.Background(), "s")
	type key struct{}
	ctx = context.WithValue(ctx, key{}, "payload")
	d := Detach(ctx)
	if sc, ok := FromContext(d); !ok || sc != sp.Context() {
		t.Fatal("Detach lost span context")
	}
	if d.Value(key{}) != nil {
		t.Fatal("Detach kept unrelated values")
	}
	if d := Detach(context.Background()); d == nil {
		t.Fatal("Detach of plain ctx returned nil")
	}
	sp.End(nil)
}

// TestSamplerDeterministicDecisions pins the head sampler's contract: the
// decision is a pure function of (seed, trace ID), so two tracers sharing a
// seed resolve every trace identically, and a replay reproduces the original
// run's recorded spans bit for bit.
func TestSamplerDeterministicDecisions(t *testing.T) {
	run := func() ([]SpanSnapshot, uint64) {
		tr := New(42)
		tr.SetNow(func() time.Time { return time.Unix(0, 777) })
		tr.SetSampler(SamplerConfig{Rate: 0.5, Seed: 42})
		for i := 0; i < 200; i++ {
			ctx, root := tr.StartSpan(context.Background(), "root")
			_, child := tr.StartSpan(ctx, "child")
			child.End(nil)
			root.End(nil)
		}
		out, _ := tr.SamplerStats()
		return tr.Spans(Filter{}), out
	}
	spans1, out1 := run()
	spans2, out2 := run()
	if !reflect.DeepEqual(spans1, spans2) {
		t.Fatalf("same-seed replay recorded different spans: %d vs %d", len(spans1), len(spans2))
	}
	if out1 != out2 {
		t.Fatalf("same-seed replay sampled out %d vs %d", out1, out2)
	}
	if out1 == 0 || len(spans1) == 0 {
		t.Fatalf("rate 0.5 should both keep and drop: kept %d, dropped %d", len(spans1), out1)
	}
	// Children always share the root's decision: every recorded span's trace
	// must appear an even number of times (root + child or neither).
	perTrace := map[string]int{}
	for _, s := range spans1 {
		perTrace[s.TraceID]++
	}
	for id, n := range perTrace {
		if n != 2 {
			t.Fatalf("trace %s recorded %d spans, want 2 (decision must bind the whole trace)", id, n)
		}
	}
}

// TestTailKeepRescuesErrorsAndSlow drives Rate 0 — head-drop everything — and
// checks the two tail-keep escape hatches: spans that end in error, and spans
// at or over SlowThreshold, still enter the ring.
func TestTailKeepRescuesErrorsAndSlow(t *testing.T) {
	tr := New(7)
	now := time.Unix(0, 0)
	tr.SetNow(func() time.Time { return now })
	tr.SetSampler(SamplerConfig{Rate: 0, Seed: 7, SlowThreshold: 10 * time.Millisecond})

	_, errSpan := tr.StartSpan(context.Background(), "boom")
	errSpan.End(errors.New("lost"))

	_, slowSpan := tr.StartSpan(context.Background(), "slow")
	now = now.Add(10 * time.Millisecond)
	slowSpan.End(nil)

	_, fastSpan := tr.StartSpan(context.Background(), "fast")
	now = now.Add(time.Millisecond)
	fastSpan.End(nil)

	spans := tr.Spans(Filter{})
	if len(spans) != 2 {
		t.Fatalf("ring holds %d spans, want error+slow only: %+v", len(spans), spans)
	}
	names := map[string]bool{}
	for _, s := range spans {
		names[s.Name] = true
		if s.SpanID == "" {
			t.Fatalf("tail-kept span %q has no ID", s.Name)
		}
	}
	if !names["boom"] || !names["slow"] {
		t.Fatalf("tail-keep kept %v, want boom and slow", names)
	}
	sampledOut, tailKept := tr.SamplerStats()
	if sampledOut != 3 || tailKept != 2 {
		t.Fatalf("stats = (out %d, kept %d), want (3, 2)", sampledOut, tailKept)
	}
}

// TestSampledOutChildReusesContext pins the fast path: once a trace is
// sampled out, starting a child with the decision already in the context
// must not allocate a fresh context, and the decision must ride the flags.
func TestSampledOutChildReusesContext(t *testing.T) {
	tr := New(3)
	tr.SetSampler(SamplerConfig{Rate: 0, Seed: 3})
	ctx, root := tr.StartSpan(context.Background(), "root")
	sc, ok := FromContext(ctx)
	if !ok {
		t.Fatal("root context missing span context")
	}
	if sampled, known := sc.SampleDecision(); sampled || !known {
		t.Fatalf("root flags = %#x, want known+not-sampled", sc.Flags)
	}
	cctx, child := tr.StartSpan(ctx, "child")
	if cctx != ctx {
		t.Fatal("sampled-out child should return the caller's context unchanged")
	}
	child.End(nil)
	root.End(nil)
	if spans := tr.Spans(Filter{}); len(spans) != 0 {
		t.Fatalf("sampled-out trace recorded %d spans", len(spans))
	}
}

// TestSamplerDecisionFromLegacyPeer: a span context without sampling flags —
// what a pre-sampling peer propagates — forces a local re-decision from the
// trace ID, which every same-seed tracer resolves the same way.
func TestSamplerDecisionFromLegacyPeer(t *testing.T) {
	tr := New(11)
	tr.SetSampler(SamplerConfig{Rate: 0.5, Seed: 99})
	legacy := SpanContext{TraceID: "00000000000000000000000000000abc", SpanID: "0000000000000abc"}
	ctx := NewContext(context.Background(), legacy)
	_, sp := tr.StartSpan(ctx, "hop")
	sampled, known := sp.Context().SampleDecision()
	if !known {
		t.Fatal("hop should resolve a decision for a legacy parent")
	}
	tr2 := New(1234) // different ID seed, same sampler seed
	tr2.SetSampler(SamplerConfig{Rate: 0.5, Seed: 99})
	_, sp2 := tr2.StartSpan(NewContext(context.Background(), legacy), "hop")
	sampled2, _ := sp2.Context().SampleDecision()
	if sampled != sampled2 {
		t.Fatal("same sampler seed resolved one trace two ways across tracers")
	}
	sp.End(nil)
	sp2.End(nil)
}

// TestRingEvictionUnderConcurrentStartAndSnapshot hammers a tiny ring from
// parallel writers while readers snapshot, then checks the ring never grew
// past capacity and the drop counter accounts for every eviction. Run with
// -race, this is also the memory-model check on the sampler fast path.
func TestRingEvictionUnderConcurrentStartAndSnapshot(t *testing.T) {
	tr := New(5)
	tr.SetCapacity(8, 8)
	tr.SetSampler(SamplerConfig{Rate: 0.5, Seed: 5, SlowThreshold: time.Minute})
	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				ctx, root := tr.StartSpan(context.Background(), "w")
				_, child := tr.StartSpan(ctx, "c")
				if i%16 == 0 {
					child.End(errors.New("boom")) // exercises tail-keep concurrently
				} else {
					child.End(nil)
				}
				root.End(nil)
				if i%8 == 0 {
					tr.Spans(Filter{})
					tr.RingOccupancy()
				}
			}
		}(w)
	}
	wg.Wait()
	used, capacity := tr.RingOccupancy()
	if capacity != 8 || used > capacity {
		t.Fatalf("ring occupancy %d/%d, want <= 8/8", used, capacity)
	}
	if got := len(tr.Spans(Filter{})); got > 8 {
		t.Fatalf("snapshot returned %d spans from an 8-slot ring", got)
	}
	sampledOut, tailKept := tr.SamplerStats()
	if sampledOut == 0 || tailKept == 0 {
		t.Fatalf("expected both sampling and tail-keep under load, got out=%d kept=%d", sampledOut, tailKept)
	}
}

// TestSamplerKeepsRingBounded is the fleet-scale property in miniature: at a
// 1% rate, pushing far more traces than the ring holds leaves occupancy
// bounded while errors are never lost.
func TestSamplerKeepsRingBounded(t *testing.T) {
	tr := New(17)
	tr.SetCapacity(64, 8)
	tr.SetSampler(SamplerConfig{Rate: 0.01, Seed: 17})
	errs := 0
	for i := 0; i < 5000; i++ {
		_, sp := tr.StartSpan(context.Background(), "op")
		if i%500 == 0 {
			errs++
			sp.End(errors.New("boom"))
		} else {
			sp.End(nil)
		}
	}
	used, capacity := tr.RingOccupancy()
	if used > capacity {
		t.Fatalf("ring occupancy %d over capacity %d", used, capacity)
	}
	kept := tr.Spans(Filter{})
	errKept := 0
	for _, s := range kept {
		if s.Err != "" {
			errKept++
		}
	}
	_, tailKept := tr.SamplerStats()
	if int(tailKept) < errs {
		t.Fatalf("tail-keep rescued %d, want at least the %d errors", tailKept, errs)
	}
}
