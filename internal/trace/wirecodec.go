package trace

import "repro/internal/wire"

// Wire codec for SpanContext: it rides in every TCP request envelope, so
// trace propagation costs two length-prefixed strings instead of a gob
// descriptor.
//
// Flags is deliberately NOT part of this layout: old decoders read exactly
// two strings and then the body's length prefix, so a byte inserted here
// would be swallowed as body length and break every old peer. The sampling
// flags instead ride at the tail of the TCP envelope, where old servers see
// only tolerated trailing bytes (gob envelopes carry Flags as a struct field,
// which gob versions naturally).

// MarshalWire encodes sc with the wire codec.
func (sc SpanContext) MarshalWire(e *wire.Encoder) {
	e.String(sc.TraceID)
	e.String(sc.SpanID)
}

// UnmarshalWire decodes sc from the wire codec.
func (sc *SpanContext) UnmarshalWire(d *wire.Decoder) error {
	sc.TraceID = d.String()
	sc.SpanID = d.String()
	return d.Err()
}
