package trace

import "repro/internal/wire"

// Wire codec for SpanContext: it rides in every TCP request envelope, so
// trace propagation costs two length-prefixed strings instead of a gob
// descriptor.

// MarshalWire encodes sc with the wire codec.
func (sc SpanContext) MarshalWire(e *wire.Encoder) {
	e.String(sc.TraceID)
	e.String(sc.SpanID)
}

// UnmarshalWire decodes sc from the wire codec.
func (sc *SpanContext) UnmarshalWire(d *wire.Decoder) error {
	sc.TraceID = d.String()
	sc.SpanID = d.String()
	return d.Err()
}
