package trace

import (
	"context"
	"fmt"
)

// Event is one entry in the structured event log: a point-in-time fact tied
// to a component and, when the emitting code was inside a trace, a trace ID.
type Event struct {
	Seq        uint64
	AtUnixNano int64
	TraceID    string
	Component  string
	Msg        string
}

// Eventf appends a formatted event to the ring. If ctx carries a span
// context the event is stamped with its trace ID. ctx may be nil. A nil
// tracer is a no-op.
func (t *Tracer) Eventf(ctx context.Context, component, format string, args ...any) {
	if t == nil {
		return
	}
	at := t.nowNanos()
	var traceID string
	if sc, ok := FromContext(ctx); ok {
		traceID = sc.TraceID
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.eventSeq++
	ev := Event{
		Seq:        t.eventSeq,
		AtUnixNano: at,
		TraceID:    traceID,
		Component:  component,
		Msg:        fmt.Sprintf(format, args...),
	}
	if t.events == nil {
		t.events = make([]Event, 0, t.eventCap)
	}
	if len(t.events) < t.eventCap {
		t.events = append(t.events, ev)
	} else {
		t.events[t.eventNext] = ev
		t.eventFull = true
	}
	t.eventNext = (t.eventNext + 1) % t.eventCap
}

// EventFilter selects events; zero fields match everything.
type EventFilter struct {
	TraceID   string
	Component string
}

func (f EventFilter) matches(e Event) bool {
	if f.TraceID != "" && e.TraceID != f.TraceID {
		return false
	}
	if f.Component != "" && e.Component != f.Component {
		return false
	}
	return true
}

// Events returns buffered events matching f in sequence order.
func (t *Tracer) Events(f EventFilter) []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	var ring []Event
	if !t.eventFull {
		ring = append(ring, t.events...)
	} else {
		ring = append(ring, t.events[t.eventNext:]...)
		ring = append(ring, t.events[:t.eventNext]...)
	}
	t.mu.Unlock()
	var out []Event
	for _, e := range ring {
		if f.matches(e) {
			out = append(out, e)
		}
	}
	return out
}
