package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"
)

// Handler serves recorded spans as JSON. Query parameters:
//
//	q     — trace ID, extension name or node name (expands to whole traces)
//	trace — exact trace ID filter
//	name  — exact span name filter
//
// It is safe with a nil tracer (serves an empty list).
func Handler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var spans []SpanSnapshot
		if q := r.URL.Query().Get("q"); q != "" {
			spans = t.QuerySpans(q)
		} else {
			spans = t.Spans(Filter{
				TraceID: r.URL.Query().Get("trace"),
				Name:    r.URL.Query().Get("name"),
			})
		}
		if spans == nil {
			spans = []SpanSnapshot{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(spans)
	})
}

// EventsHandler serves the structured event log as JSON. Query parameters:
//
//	trace     — trace ID filter
//	component — component filter
func EventsHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		events := t.Events(EventFilter{
			TraceID:   r.URL.Query().Get("trace"),
			Component: r.URL.Query().Get("component"),
		})
		if events == nil {
			events = []Event{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(events)
	})
}

// WriteText renders spans as per-trace trees, the shape midasctl prints.
// Spans whose parent is absent (remote, or evicted from the ring) are shown
// at the root level.
func WriteText(w io.Writer, spans []SpanSnapshot) {
	byTrace := make(map[string][]SpanSnapshot)
	var order []string
	for _, s := range spans {
		if _, ok := byTrace[s.TraceID]; !ok {
			order = append(order, s.TraceID)
		}
		byTrace[s.TraceID] = append(byTrace[s.TraceID], s)
	}
	for _, id := range order {
		fmt.Fprintf(w, "trace %s\n", id)
		group := byTrace[id]
		children := make(map[string][]SpanSnapshot)
		present := make(map[string]bool)
		for _, s := range group {
			present[s.SpanID] = true
		}
		var roots []SpanSnapshot
		for _, s := range group {
			if s.ParentID != "" && present[s.ParentID] {
				children[s.ParentID] = append(children[s.ParentID], s)
			} else {
				roots = append(roots, s)
			}
		}
		sortSpans(roots)
		for k := range children {
			sortSpans(children[k])
		}
		var walk func(s SpanSnapshot, depth int)
		walk = func(s SpanSnapshot, depth int) {
			for i := 0; i < depth; i++ {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "- %s", s.Name)
			if d := s.Duration(); d > 0 {
				fmt.Fprintf(w, " (%s)", d)
			} else if s.EndUnixNano == 0 {
				fmt.Fprint(w, " (open)")
			}
			if len(s.Tags) > 0 {
				keys := make([]string, 0, len(s.Tags))
				for k := range s.Tags {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					fmt.Fprintf(w, " %s=%s", k, s.Tags[k])
				}
			}
			if s.Err != "" {
				fmt.Fprintf(w, " err=%q", s.Err)
			}
			fmt.Fprintln(w)
			for _, a := range s.Annotations {
				for i := 0; i < depth+1; i++ {
					fmt.Fprint(w, "  ")
				}
				fmt.Fprintf(w, "@ %s\n", a.Msg)
			}
			for _, c := range children[s.SpanID] {
				walk(c, depth+1)
			}
		}
		for _, r := range roots {
			walk(r, 1)
		}
	}
}

// WriteEventsText renders events one per line for CLI output.
func WriteEventsText(w io.Writer, events []Event) {
	for _, e := range events {
		at := time.Unix(0, e.AtUnixNano).UTC().Format("15:04:05.000")
		if e.TraceID != "" {
			fmt.Fprintf(w, "%s [%s] %s (trace %s)\n", at, e.Component, e.Msg, e.TraceID)
		} else {
			fmt.Fprintf(w, "%s [%s] %s\n", at, e.Component, e.Msg)
		}
	}
}

func sortSpans(s []SpanSnapshot) {
	sort.SliceStable(s, func(i, j int) bool {
		if s[i].StartUnixNano != s[j].StartUnixNano {
			return s[i].StartUnixNano < s[j].StartUnixNano
		}
		return s[i].SpanID < s[j].SpanID
	})
}
