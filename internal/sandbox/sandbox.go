// Package sandbox is the PROSE aspect sandbox: foreign extension code is
// isolated from the application and can only reach the outside world through
// host functions gated by capabilities. A receiver node grants each incoming
// extension a capability set derived from its local policy; anything else is
// a security violation that aborts the extension (and is not catchable by the
// extension's own exception handlers).
package sandbox

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/lvm"
)

// Capability names one guarded resource class. Host functions are namespaced
// "<capability>.<operation>", e.g. "store.put" or "net.post".
type Capability string

// Capabilities used by the built-in extensions.
const (
	CapStore   Capability = "store"   // persistent storage at the node
	CapNet     Capability = "net"     // sending data off-node (e.g. to a base)
	CapDevice  Capability = "device"  // touching robot hardware
	CapSession Capability = "session" // reading session/caller information
	CapClock   Capability = "clock"   // reading the local clock
	CapLog     Capability = "log"     // emitting local diagnostics
	CapCtx     Capability = "ctx"     // join-point context access (always safe)
)

// Perms is an immutable capability set.
type Perms struct {
	set map[Capability]struct{}
}

// NewPerms builds a permission set.
func NewPerms(caps ...Capability) Perms {
	s := make(map[Capability]struct{}, len(caps))
	for _, c := range caps {
		s[c] = struct{}{}
	}
	return Perms{set: s}
}

// Allows reports whether c is granted.
func (p Perms) Allows(c Capability) bool {
	_, ok := p.set[c]
	return ok
}

// List returns the granted capabilities in sorted order.
func (p Perms) List() []Capability {
	out := make([]Capability, 0, len(p.set))
	for c := range p.set {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Diff returns the capabilities in want that p does not grant, sorted. An
// empty result means p covers want. Admission uses this to name exactly which
// inferred capabilities a policy refused.
func (p Perms) Diff(want []Capability) []Capability {
	var missing []Capability
	for _, c := range want {
		if !p.Allows(c) {
			missing = append(missing, c)
		}
	}
	sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
	return missing
}

// String renders the set for diagnostics.
func (p Perms) String() string {
	caps := p.List()
	parts := make([]string, len(caps))
	for i, c := range caps {
		parts[i] = string(c)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Violation is the uncatchable error raised when sandboxed code exceeds its
// capabilities. It deliberately does not unwrap to *lvm.Thrown, so extension
// bytecode cannot swallow it with a handler. Granted records what the policy
// actually allowed, so the error names both sides of the mismatch.
type Violation struct {
	Capability Capability
	Fn         string
	Granted    Perms
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("sandbox: call %q requires capability %q, granted %s", v.Fn, v.Capability, v.Granted)
}

// Policy decides which of an extension's requested capabilities a node
// grants, given the (verified) signer name.
type Policy interface {
	Grant(signer string, requested []Capability) (Perms, error)
}

// PolicyFunc adapts a function to Policy.
type PolicyFunc func(signer string, requested []Capability) (Perms, error)

// Grant implements Policy.
func (f PolicyFunc) Grant(signer string, requested []Capability) (Perms, error) {
	return f(signer, requested)
}

// AllowAll grants every requested capability.
func AllowAll() Policy {
	return PolicyFunc(func(_ string, requested []Capability) (Perms, error) {
		return NewPerms(requested...), nil
	})
}

// Allowlist grants only requested capabilities that appear in the list; a
// request outside the list is an error (the extension is rejected rather
// than silently degraded).
func Allowlist(caps ...Capability) Policy {
	allowed := NewPerms(caps...)
	return PolicyFunc(func(_ string, requested []Capability) (Perms, error) {
		if missing := allowed.Diff(requested); len(missing) > 0 {
			return Perms{}, fmt.Errorf("sandbox: capabilities %v not permitted by node policy (allows %s)", missing, allowed)
		}
		return NewPerms(requested...), nil
	})
}

// Host gates an underlying lvm.Host by capability, counting calls for
// auditing. Functions proven safe at admission time (Prove) are dispatched
// straight to the inner host, skipping the capability check, the audit
// mutex, and the call counter.
type Host struct {
	inner  lvm.Host
	perms  Perms
	proven map[string]bool

	mu    sync.Mutex
	calls map[string]int
}

// NewHost wraps inner with the given permission set. CapCtx is always
// granted: reading the current join point is harmless and every advice needs
// it.
func NewHost(inner lvm.Host, perms Perms) *Host {
	withCtx := append(perms.List(), CapCtx, CapLog)
	return &Host{inner: inner, perms: NewPerms(withCtx...), calls: make(map[string]int)}
}

// Perms returns the effective permission set.
func (h *Host) Perms() Perms { return h.perms }

// HostCall implements lvm.Host with a capability check on the function's
// namespace.
func (h *Host) HostCall(name string, args []lvm.Value) (lvm.Value, error) {
	cap := CapabilityOf(name)
	if !h.perms.Allows(cap) {
		return lvm.Nil(), &Violation{Capability: cap, Fn: name, Granted: h.perms}
	}
	h.mu.Lock()
	h.calls[name]++
	h.mu.Unlock()
	return h.inner.HostCall(name, args)
}

// Prove marks host functions as statically verified: admission analysis has
// already shown each fn's capability is granted, so the per-dispatch check is
// dead. Functions whose capability the permission set does NOT allow are
// silently ignored — Prove can never widen what the host permits, only skip
// re-checking what it would permit anyway. Call it once, after admission and
// before execution; it is not safe concurrently with dispatch.
func (h *Host) Prove(fns ...string) {
	for _, fn := range fns {
		if !h.perms.Allows(CapabilityOf(fn)) {
			continue
		}
		if h.proven == nil {
			h.proven = make(map[string]bool, len(fns))
		}
		h.proven[fn] = true
	}
}

// Prechecked implements lvm.PrecheckedHost: proven functions dispatch
// directly on the inner host. Note the fast path also skips the audit call
// counter — CallCount only observes checked dispatches.
func (h *Host) Prechecked(fn string) lvm.Host {
	if h.proven[fn] {
		return h.inner
	}
	return nil
}

// CallCount reports how many times the named host function was invoked.
func (h *Host) CallCount(name string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.calls[name]
}

// CapabilityOf maps a host-function name onto the capability guarding it: the
// namespace before the first '.', or the whole name if it has none. Static
// capability inference uses the same mapping, so admission-time and run-time
// decisions cannot disagree.
func CapabilityOf(fn string) Capability {
	if dot := strings.IndexByte(fn, '.'); dot > 0 {
		return Capability(fn[:dot])
	}
	return Capability(fn)
}
