package sandbox

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/lvm"
)

func baseHost() lvm.HostMap {
	return lvm.HostMap{
		"store.put": func(args []lvm.Value) (lvm.Value, error) { return lvm.Bool(true), nil },
		"net.post":  func(args []lvm.Value) (lvm.Value, error) { return lvm.Bool(true), nil },
		"ctx.arg":   func(args []lvm.Value) (lvm.Value, error) { return lvm.Int(1), nil },
		"log.info":  func(args []lvm.Value) (lvm.Value, error) { return lvm.Nil(), nil },
	}
}

func TestGatedHostAllowsGranted(t *testing.T) {
	h := NewHost(baseHost(), NewPerms(CapStore))
	if _, err := h.HostCall("store.put", nil); err != nil {
		t.Fatalf("granted call failed: %v", err)
	}
	if h.CallCount("store.put") != 1 {
		t.Error("call count not tracked")
	}
}

func TestGatedHostBlocksUngranted(t *testing.T) {
	h := NewHost(baseHost(), NewPerms(CapStore))
	_, err := h.HostCall("net.post", nil)
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("want Violation, got %v", err)
	}
	if v.Capability != CapNet || v.Fn != "net.post" {
		t.Errorf("violation = %+v", v)
	}
	if h.CallCount("net.post") != 0 {
		t.Error("blocked call must not be counted")
	}
}

func TestCtxAndLogAlwaysGranted(t *testing.T) {
	h := NewHost(baseHost(), NewPerms())
	if _, err := h.HostCall("ctx.arg", nil); err != nil {
		t.Errorf("ctx should always be allowed: %v", err)
	}
	if _, err := h.HostCall("log.info", nil); err != nil {
		t.Errorf("log should always be allowed: %v", err)
	}
}

func TestViolationNotCatchableByLVM(t *testing.T) {
	// An extension that tries to swallow the security violation with its own
	// handler must still fail: Violation is not an lvm.Thrown.
	prog := lvm.MustAssemble(`
class Evil
  method void sneak()
  s:
    hostcall net.post 0
    pop
    retv
  e:
  h:
    pop
    retv
    handler s e h
  end
end`)
	gated := NewHost(baseHost(), NewPerms(CapStore))
	in := lvm.NewInterp(prog, gated)
	_, err := in.Invoke(prog.Method("Evil", "sneak"), prog.Class("Evil").New(), nil)
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("violation was swallowed: err = %v", err)
	}
}

func TestAllowAllPolicy(t *testing.T) {
	perms, err := AllowAll().Grant("anyone", []Capability{CapNet, CapStore})
	if err != nil {
		t.Fatal(err)
	}
	if !perms.Allows(CapNet) || !perms.Allows(CapStore) {
		t.Error("AllowAll should grant requested caps")
	}
	if perms.Allows(CapDevice) {
		t.Error("unrequested capability granted")
	}
}

func TestAllowlistPolicy(t *testing.T) {
	p := Allowlist(CapStore, CapSession)
	perms, err := p.Grant("hall-1", []Capability{CapStore})
	if err != nil {
		t.Fatal(err)
	}
	if !perms.Allows(CapStore) {
		t.Error("listed capability not granted")
	}
	if _, err := p.Grant("hall-1", []Capability{CapNet}); err == nil {
		t.Error("unlisted capability should be rejected")
	}
}

func TestPermsString(t *testing.T) {
	p := NewPerms(CapNet, CapStore)
	if p.String() != "{net,store}" {
		t.Errorf("String = %s", p.String())
	}
	if len(p.List()) != 2 {
		t.Errorf("List = %v", p.List())
	}
}

func TestPermsDiff(t *testing.T) {
	p := NewPerms(CapStore, CapLog)
	missing := p.Diff([]Capability{CapNet, CapStore, CapClock})
	if len(missing) != 2 || missing[0] != CapClock || missing[1] != CapNet {
		t.Errorf("Diff = %v, want [clock net]", missing)
	}
	if got := p.Diff([]Capability{CapStore}); len(got) != 0 {
		t.Errorf("covered set should diff empty, got %v", got)
	}
}

func TestViolationNamesGrantedSet(t *testing.T) {
	h := NewHost(baseHost(), NewPerms(CapStore))
	_, err := h.HostCall("net.post", nil)
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("want Violation, got %v", err)
	}
	if !v.Granted.Allows(CapStore) {
		t.Errorf("violation should carry the granted set, got %s", v.Granted)
	}
	msg := v.Error()
	if !strings.Contains(msg, "net.post") || !strings.Contains(msg, `"net"`) || !strings.Contains(msg, "store") {
		t.Errorf("violation message should name call, capability and grants: %s", msg)
	}
}

func TestAllowlistErrorNamesMissingAndPolicy(t *testing.T) {
	p := Allowlist(CapStore, CapSession)
	_, err := p.Grant("hall-1", []Capability{CapNet, CapClock})
	if err == nil {
		t.Fatal("want rejection")
	}
	for _, want := range []string{"net", "clock", "store"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error should mention %q: %v", want, err)
		}
	}
}

func TestCapabilityOf(t *testing.T) {
	tests := []struct {
		fn   string
		want Capability
	}{
		{"store.put", CapStore},
		{"net.post", CapNet},
		{"bare", Capability("bare")},
	}
	for _, tt := range tests {
		if got := CapabilityOf(tt.fn); got != tt.want {
			t.Errorf("CapabilityOf(%s) = %s", tt.fn, got)
		}
	}
}

func TestProveSkipsCheckAndCounting(t *testing.T) {
	h := NewHost(baseHost(), NewPerms(CapStore))
	h.Prove("store.put")
	if direct := h.Prechecked("store.put"); direct == nil {
		t.Fatal("proven function should have a direct host")
	} else if _, err := direct.HostCall("store.put", nil); err != nil {
		t.Fatalf("direct dispatch failed: %v", err)
	}
	// The fast path bypasses the audit counter by contract.
	if h.CallCount("store.put") != 0 {
		t.Error("direct dispatch must not touch the checked counter")
	}
	// Unproven functions stay on the checked path.
	if h.Prechecked("log.info") != nil {
		t.Error("unproven function should not get a direct host")
	}
}

func TestProveCannotWidenGrant(t *testing.T) {
	h := NewHost(baseHost(), NewPerms(CapStore))
	h.Prove("net.post") // not granted: must be ignored, not proven
	if h.Prechecked("net.post") != nil {
		t.Fatal("Prove must refuse functions outside the grant")
	}
	_, err := h.HostCall("net.post", nil)
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("ungranted call must still violate, got %v", err)
	}
}

func TestInterpUsesPrecheckedFastPath(t *testing.T) {
	prog := lvm.MustAssemble(`
class C
  method int m()
    push "k"
    hostcall store.put 1
    ret
  end
end`)
	h := NewHost(baseHost(), NewPerms(CapStore))
	h.Prove("store.put")
	in := lvm.NewInterp(prog, h)
	v, err := in.Invoke(prog.Class("C").Methods["m"], nil, nil)
	if err != nil || v.K != lvm.KBool {
		t.Fatalf("invoke = %v, %v", v, err)
	}
	if h.CallCount("store.put") != 0 {
		t.Error("interpreter took the checked path for a proven call")
	}
}
