package sign

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestSignVerify(t *testing.T) {
	signer, err := NewSigner("hall-1")
	if err != nil {
		t.Fatal(err)
	}
	store := NewTrustStore()
	store.Trust("hall-1", signer.PublicKey())

	payload := []byte("extension descriptor bytes")
	sig := signer.Sign(payload)
	if err := store.Verify(payload, sig); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestUntrustedSignerRejected(t *testing.T) {
	mallory, _ := NewSigner("mallory")
	store := NewTrustStore()
	payload := []byte("evil extension")
	err := store.Verify(payload, mallory.Sign(payload))
	if !errors.Is(err, ErrUntrustedSigner) {
		t.Fatalf("want untrusted, got %v", err)
	}
}

func TestTamperedPayloadRejected(t *testing.T) {
	signer, _ := NewSigner("hall-1")
	store := NewTrustStore()
	store.Trust("hall-1", signer.PublicKey())
	sig := signer.Sign([]byte("original"))
	err := store.Verify([]byte("tampered"), sig)
	if !errors.Is(err, ErrBadSignature) {
		t.Fatalf("want bad signature, got %v", err)
	}
}

func TestTamperedSignatureRejected(t *testing.T) {
	signer, _ := NewSigner("hall-1")
	store := NewTrustStore()
	store.Trust("hall-1", signer.PublicKey())
	payload := []byte("payload")
	sig := signer.Sign(payload)
	sig.Sig[0] ^= 0xff
	if err := store.Verify(payload, sig); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("want bad signature, got %v", err)
	}
}

func TestForgedKeyRejected(t *testing.T) {
	signer, _ := NewSigner("hall-1")
	mallory, _ := NewSigner("mallory")
	store := NewTrustStore()
	store.Trust("hall-1", signer.PublicKey())
	payload := []byte("payload")
	// Mallory signs but claims the trusted name.
	sig := mallory.Sign(payload)
	sig.SignerName = "hall-1"
	if err := store.Verify(payload, sig); !errors.Is(err, ErrUntrustedSigner) {
		t.Fatalf("want untrusted, got %v", err)
	}
	// Short/garbage key.
	sig.PublicKey = []byte{1, 2, 3}
	if err := store.Verify(payload, sig); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("want bad signature, got %v", err)
	}
}

func TestRevoke(t *testing.T) {
	signer, _ := NewSigner("hall-1")
	store := NewTrustStore()
	store.Trust("hall-1", signer.PublicKey())
	if store.Len() != 1 {
		t.Fatal("trust store should have one key")
	}
	payload := []byte("p")
	sig := signer.Sign(payload)
	if err := store.Verify(payload, sig); err != nil {
		t.Fatal(err)
	}
	store.Revoke(signer.PublicKey())
	if err := store.Verify(payload, sig); !errors.Is(err, ErrUntrustedSigner) {
		t.Fatalf("after revoke: %v", err)
	}
	if store.Len() != 0 {
		t.Error("trust store should be empty")
	}
}

func TestVerifyArbitraryPayloads(t *testing.T) {
	signer, _ := NewSigner("s")
	store := NewTrustStore()
	store.Trust("s", signer.PublicKey())
	if err := quick.Check(func(payload []byte) bool {
		return store.Verify(payload, signer.Sign(payload)) == nil
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFingerprintStable(t *testing.T) {
	signer, _ := NewSigner("s")
	if signer.Fingerprint() != Fingerprint(signer.PublicKey()) {
		t.Error("fingerprints disagree")
	}
	if len(signer.Fingerprint()) != 16 {
		t.Errorf("fingerprint length = %d", len(signer.Fingerprint()))
	}
}
