package sign

import "repro/internal/wire"

// Wire codec for Signature: it rides inside every SignedExtension push, so
// install/applyBatch traffic encodes it without reflection.

// MarshalWire encodes s with the wire codec.
func (s Signature) MarshalWire(e *wire.Encoder) {
	e.String(s.SignerName)
	e.Bytes(s.PublicKey)
	e.Bytes(s.Sig)
}

// UnmarshalWire decodes s from the wire codec.
func (s *Signature) UnmarshalWire(d *wire.Decoder) error {
	s.SignerName = d.String()
	s.PublicKey = d.Bytes()
	s.Sig = d.Bytes()
	return d.Err()
}
