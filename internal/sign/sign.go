// Package sign implements the MIDAS trust layer: each extension instance is
// signed by its originator, and a receiver only weaves extensions whose
// signatures verify against its trust store (§3.2, "Addressing security").
// ed25519 over the canonical encoding of the payload stands in for the Java
// code-signing infrastructure.
package sign

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
)

// Errors returned by verification.
var (
	// ErrUntrustedSigner means the signer's key is not in the trust store.
	ErrUntrustedSigner = errors.New("sign: untrusted signer")
	// ErrBadSignature means the signature does not verify.
	ErrBadSignature = errors.New("sign: invalid signature")
)

// Signer holds an identity keypair used by an extension base (or peer) to
// sign the extensions it distributes.
type Signer struct {
	Name string
	priv ed25519.PrivateKey
	pub  ed25519.PublicKey
}

// NewSigner generates a fresh identity.
func NewSigner(name string) (*Signer, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("sign: generate key: %w", err)
	}
	return &Signer{Name: name, priv: priv, pub: pub}, nil
}

// PublicKey returns the signer's public key.
func (s *Signer) PublicKey() ed25519.PublicKey { return s.pub }

// Fingerprint returns a short hex identifier of the public key.
func (s *Signer) Fingerprint() string { return Fingerprint(s.pub) }

// Sign produces a detached signature over payload.
func (s *Signer) Sign(payload []byte) Signature {
	return Signature{
		SignerName: s.Name,
		PublicKey:  append([]byte(nil), s.pub...),
		Sig:        ed25519.Sign(s.priv, payload),
	}
}

// Signature is a detached signature plus the claimed signer identity.
type Signature struct {
	SignerName string
	PublicKey  []byte
	Sig        []byte
}

// Fingerprint returns a short hex identifier for a public key.
func Fingerprint(pub ed25519.PublicKey) string {
	if len(pub) < 8 {
		return hex.EncodeToString(pub)
	}
	return hex.EncodeToString(pub[:8])
}

// TrustStore is a receiver's set of trusted originator keys. Each mobile node
// defines its own preferences and trusted entities.
type TrustStore struct {
	mu      sync.RWMutex
	trusted map[string]ed25519.PublicKey // fingerprint -> key
	names   map[string]string            // fingerprint -> display name
}

// NewTrustStore returns an empty trust store (nothing trusted).
func NewTrustStore() *TrustStore {
	return &TrustStore{
		trusted: make(map[string]ed25519.PublicKey),
		names:   make(map[string]string),
	}
}

// Trust adds a public key to the store.
func (t *TrustStore) Trust(name string, pub ed25519.PublicKey) {
	t.mu.Lock()
	defer t.mu.Unlock()
	fp := Fingerprint(pub)
	t.trusted[fp] = append(ed25519.PublicKey(nil), pub...)
	t.names[fp] = name
}

// Revoke removes a key from the store.
func (t *TrustStore) Revoke(pub ed25519.PublicKey) {
	t.mu.Lock()
	defer t.mu.Unlock()
	fp := Fingerprint(pub)
	delete(t.trusted, fp)
	delete(t.names, fp)
}

// Trusted reports whether pub is in the store.
func (t *TrustStore) Trusted(pub ed25519.PublicKey) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	stored, ok := t.trusted[Fingerprint(pub)]
	return ok && stored.Equal(pub)
}

// Len returns the number of trusted keys.
func (t *TrustStore) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.trusted)
}

// Verify checks that sig is a valid signature over payload by a trusted key.
func (t *TrustStore) Verify(payload []byte, sig Signature) error {
	if len(sig.PublicKey) != ed25519.PublicKeySize {
		return fmt.Errorf("%w: bad key size %d", ErrBadSignature, len(sig.PublicKey))
	}
	pub := ed25519.PublicKey(sig.PublicKey)
	if !t.Trusted(pub) {
		return fmt.Errorf("%w: %s (%s)", ErrUntrustedSigner, sig.SignerName, Fingerprint(pub))
	}
	if !ed25519.Verify(pub, payload, sig.Sig) {
		return fmt.Errorf("%w: signer %s", ErrBadSignature, sig.SignerName)
	}
	return nil
}
