package jit

import (
	"fmt"

	"repro/internal/aop"
	"repro/internal/lvm"
	"repro/internal/weave"
)

// compile translates a method's bytecode into a closure chain and, when a
// weaver is attached, registers its join-point sites and plants stubs.
func (m *Machine) compile(meth *lvm.Method) (*compiled, error) {
	c := &compiled{
		m:        meth,
		steps:    make([]stepFn, len(meth.Code)),
		maxStack: len(meth.Code) + 2,
	}
	if m.Weaver != nil {
		sig := aop.SignatureOf(meth)
		c.entrySite = m.Weaver.RegisterMethodSite(aop.MethodEntry, sig)
		c.exitSite = m.Weaver.RegisterMethodSite(aop.MethodExit, sig)
		c.throwSite = m.Weaver.RegisterMethodSite(aop.ExceptionThrow, sig)
		if len(meth.Handlers) > 0 {
			c.handlerSite = m.Weaver.RegisterMethodSite(aop.ExceptionHandler, sig)
		}
	}
	for pc, ins := range meth.Code {
		step, err := m.compileInstr(c, pc, ins)
		if err != nil {
			return nil, fmt.Errorf("jit: %s pc=%d: %w", meth, pc, err)
		}
		c.steps[pc] = step
	}
	return c, nil
}

func (m *Machine) compileInstr(c *compiled, pc int, ins lvm.Instr) (stepFn, error) {
	meth := c.m
	next := pc + 1
	switch ins.Op {
	case lvm.OpNop:
		return func(e *env, fr *frame, depth int) (int, error) { return next, nil }, nil

	case lvm.OpConst:
		if ins.A < 0 || ins.A >= len(meth.Consts) {
			return nil, fmt.Errorf("const index %d out of range", ins.A)
		}
		v := meth.Consts[ins.A]
		return func(e *env, fr *frame, depth int) (int, error) {
			fr.stack = append(fr.stack, v)
			return next, nil
		}, nil

	case lvm.OpLoad:
		slot := ins.A
		if slot < 0 || slot >= meth.FrameSize() {
			return nil, fmt.Errorf("load slot %d out of range", slot)
		}
		return func(e *env, fr *frame, depth int) (int, error) {
			fr.stack = append(fr.stack, fr.locals[slot])
			return next, nil
		}, nil

	case lvm.OpStore:
		slot := ins.A
		if slot < 0 || slot >= meth.FrameSize() {
			return nil, fmt.Errorf("store slot %d out of range", slot)
		}
		return func(e *env, fr *frame, depth int) (int, error) {
			n := len(fr.stack)
			fr.locals[slot] = fr.stack[n-1]
			fr.stack = fr.stack[:n-1]
			return next, nil
		}, nil

	case lvm.OpGetField, lvm.OpGetSelf:
		idx := ins.A
		onSelf := ins.Op == lvm.OpGetSelf
		var site *weave.Site
		if m.Weaver != nil {
			class, field := fieldNames(meth, ins)
			site = m.Weaver.RegisterFieldSite(aop.FieldGet, class, field)
		}
		fieldName := ins.Sym
		return func(e *env, fr *frame, depth int) (int, error) {
			var obj *lvm.Object
			if onSelf {
				obj = fr.locals[0].O
			} else {
				n := len(fr.stack)
				top := fr.stack[n-1]
				fr.stack = fr.stack[:n-1]
				obj = top.O
				if top.K != lvm.KObj {
					obj = nil
				}
			}
			if obj == nil {
				return 0, lvm.Throwf("getfield on non-object")
			}
			v := obj.Get(idx)
			if site != nil && site.Active() {
				ctx := weave.GetContext()
				ctx.Kind = aop.FieldGet
				ctx.Sig = aop.Signature{Class: obj.Class.Name}
				ctx.Field = fieldName
				ctx.Self = obj
				ctx.Result = v
				err := site.Dispatch(ctx)
				v = ctx.Result
				weave.PutContext(ctx)
				if err != nil {
					return 0, err
				}
			}
			fr.stack = append(fr.stack, v)
			return next, nil
		}, nil

	case lvm.OpSetField, lvm.OpSetSelf:
		idx := ins.A
		onSelf := ins.Op == lvm.OpSetSelf
		var site *weave.Site
		if m.Weaver != nil {
			class, field := fieldNames(meth, ins)
			site = m.Weaver.RegisterFieldSite(aop.FieldSet, class, field)
		}
		fieldName := ins.Sym
		return func(e *env, fr *frame, depth int) (int, error) {
			n := len(fr.stack)
			v := fr.stack[n-1]
			fr.stack = fr.stack[:n-1]
			var obj *lvm.Object
			if onSelf {
				obj = fr.locals[0].O
			} else {
				n := len(fr.stack)
				top := fr.stack[n-1]
				fr.stack = fr.stack[:n-1]
				if top.K == lvm.KObj {
					obj = top.O
				}
			}
			if obj == nil {
				return 0, lvm.Throwf("setfield on non-object")
			}
			if site != nil && site.Active() {
				ctx := weave.GetContext()
				ctx.Kind = aop.FieldSet
				ctx.Sig = aop.Signature{Class: obj.Class.Name}
				ctx.Field = fieldName
				ctx.Self = obj
				ctx.Args = append(ctx.Args[:0], v)
				err := site.Dispatch(ctx)
				v = ctx.Args[0]
				weave.PutContext(ctx)
				if err != nil {
					return 0, err
				}
			}
			obj.Set(idx, v)
			return next, nil
		}, nil

	case lvm.OpAdd, lvm.OpSub, lvm.OpMul:
		op := ins.Op
		return func(e *env, fr *frame, depth int) (int, error) {
			n := len(fr.stack)
			a, b := fr.stack[n-2].I, fr.stack[n-1].I
			fr.stack = fr.stack[:n-1]
			var r int64
			switch op {
			case lvm.OpAdd:
				r = a + b
			case lvm.OpSub:
				r = a - b
			default:
				r = a * b
			}
			fr.stack[n-2] = lvm.Int(r)
			return next, nil
		}, nil

	case lvm.OpDiv, lvm.OpMod:
		isDiv := ins.Op == lvm.OpDiv
		return func(e *env, fr *frame, depth int) (int, error) {
			n := len(fr.stack)
			a, b := fr.stack[n-2].I, fr.stack[n-1].I
			fr.stack = fr.stack[:n-1]
			if b == 0 {
				return 0, lvm.Throwf("divide by zero")
			}
			var r int64
			if isDiv {
				r = a / b
			} else {
				r = a % b
			}
			fr.stack[n-2] = lvm.Int(r)
			return next, nil
		}, nil

	case lvm.OpNeg:
		return func(e *env, fr *frame, depth int) (int, error) {
			n := len(fr.stack)
			fr.stack[n-1] = lvm.Int(-fr.stack[n-1].I)
			return next, nil
		}, nil

	case lvm.OpEq, lvm.OpNe:
		negate := ins.Op == lvm.OpNe
		return func(e *env, fr *frame, depth int) (int, error) {
			n := len(fr.stack)
			eq := fr.stack[n-2].Equal(fr.stack[n-1])
			fr.stack = fr.stack[:n-1]
			fr.stack[n-2] = lvm.Bool(eq != negate)
			return next, nil
		}, nil

	case lvm.OpLt, lvm.OpLe, lvm.OpGt, lvm.OpGe:
		op := ins.Op
		return func(e *env, fr *frame, depth int) (int, error) {
			n := len(fr.stack)
			a, b := fr.stack[n-2], fr.stack[n-1]
			fr.stack = fr.stack[:n-1]
			fr.stack[n-2] = lvm.Bool(compareValues(op, a, b))
			return next, nil
		}, nil

	case lvm.OpAnd, lvm.OpOr:
		isAnd := ins.Op == lvm.OpAnd
		return func(e *env, fr *frame, depth int) (int, error) {
			n := len(fr.stack)
			a, b := fr.stack[n-2].AsBool(), fr.stack[n-1].AsBool()
			fr.stack = fr.stack[:n-1]
			if isAnd {
				fr.stack[n-2] = lvm.Bool(a && b)
			} else {
				fr.stack[n-2] = lvm.Bool(a || b)
			}
			return next, nil
		}, nil

	case lvm.OpNot:
		return func(e *env, fr *frame, depth int) (int, error) {
			n := len(fr.stack)
			fr.stack[n-1] = lvm.Bool(!fr.stack[n-1].AsBool())
			return next, nil
		}, nil

	case lvm.OpConcat:
		return func(e *env, fr *frame, depth int) (int, error) {
			n := len(fr.stack)
			s := fr.stack[n-2].String() + fr.stack[n-1].String()
			fr.stack = fr.stack[:n-1]
			fr.stack[n-2] = lvm.Str(s)
			return next, nil
		}, nil

	case lvm.OpLen:
		return func(e *env, fr *frame, depth int) (int, error) {
			n := len(fr.stack)
			v := fr.stack[n-1]
			switch v.K {
			case lvm.KStr:
				fr.stack[n-1] = lvm.Int(int64(len(v.S)))
			case lvm.KBytes:
				fr.stack[n-1] = lvm.Int(int64(len(v.B)))
			default:
				return 0, lvm.Throwf("len on %s", v.K)
			}
			return next, nil
		}, nil

	case lvm.OpJump:
		target := ins.A
		return func(e *env, fr *frame, depth int) (int, error) { return target, nil }, nil

	case lvm.OpJumpFalse:
		target := ins.A
		return func(e *env, fr *frame, depth int) (int, error) {
			n := len(fr.stack)
			v := fr.stack[n-1]
			fr.stack = fr.stack[:n-1]
			if !v.AsBool() {
				return target, nil
			}
			return next, nil
		}, nil

	case lvm.OpCall:
		name := ins.Sym
		argc := ins.B
		return func(e *env, fr *frame, depth int) (int, error) {
			n := len(fr.stack)
			if n < argc+1 {
				return 0, lvm.Throwf("call %s: stack underflow", name)
			}
			args := make([]lvm.Value, argc)
			copy(args, fr.stack[n-argc:])
			recv := fr.stack[n-argc-1]
			fr.stack = fr.stack[:n-argc-1]
			if recv.K != lvm.KObj || recv.O == nil {
				return 0, lvm.Throwf("call %s on non-object", name)
			}
			callee := recv.O.Class.Methods[name]
			if callee == nil {
				return 0, lvm.Throwf("no method %s.%s", recv.O.Class.Name, name)
			}
			cc, err := e.m.compiledFor(callee)
			if err != nil {
				return 0, err
			}
			r, err := cc.invoke(e, recv.O, args, depth+1)
			if err != nil {
				return 0, err
			}
			fr.stack = append(fr.stack, r)
			return next, nil
		}, nil

	case lvm.OpHostCall:
		name := ins.Sym
		argc := ins.B
		// Devirtualise statically-proven calls at compile time: the closure
		// binds the unchecked inner host directly and the per-dispatch
		// capability gate disappears from the compiled code. Proofs must be
		// established (sandbox.Host.Prove) before the method is compiled.
		var direct lvm.Host
		if ph, ok := m.Host.(lvm.PrecheckedHost); ok {
			direct = ph.Prechecked(name)
		}
		return func(e *env, fr *frame, depth int) (int, error) {
			n := len(fr.stack)
			if n < argc {
				return 0, lvm.Throwf("hostcall %s: stack underflow", name)
			}
			args := make([]lvm.Value, argc)
			copy(args, fr.stack[n-argc:])
			fr.stack = fr.stack[:n-argc]
			host := direct
			if host == nil {
				host = e.m.Host
			}
			if host == nil {
				return 0, lvm.Throwf("no host environment for %s", name)
			}
			r, err := host.HostCall(name, args)
			if err != nil {
				return 0, err
			}
			fr.stack = append(fr.stack, r)
			return next, nil
		}, nil

	case lvm.OpNew:
		cls := m.Prog.Class(ins.Sym)
		if cls == nil {
			return nil, fmt.Errorf("unknown class %q", ins.Sym)
		}
		return func(e *env, fr *frame, depth int) (int, error) {
			fr.stack = append(fr.stack, lvm.Obj(cls.New()))
			return next, nil
		}, nil

	case lvm.OpThrow:
		return func(e *env, fr *frame, depth int) (int, error) {
			n := len(fr.stack)
			v := fr.stack[n-1]
			fr.stack = fr.stack[:n-1]
			return 0, &lvm.Thrown{Msg: v.String()}
		}, nil

	case lvm.OpReturn:
		return func(e *env, fr *frame, depth int) (int, error) {
			n := len(fr.stack)
			fr.ret = fr.stack[n-1]
			fr.stack = fr.stack[:n-1]
			return retPC, nil
		}, nil

	case lvm.OpReturnVoid:
		return func(e *env, fr *frame, depth int) (int, error) {
			fr.ret = lvm.Value{}
			return retPC, nil
		}, nil

	case lvm.OpPop:
		return func(e *env, fr *frame, depth int) (int, error) {
			fr.stack = fr.stack[:len(fr.stack)-1]
			return next, nil
		}, nil

	case lvm.OpDup:
		return func(e *env, fr *frame, depth int) (int, error) {
			fr.stack = append(fr.stack, fr.stack[len(fr.stack)-1])
			return next, nil
		}, nil
	}
	return nil, fmt.Errorf("unsupported opcode %s", ins.Op)
}

func compareValues(op lvm.Op, a, b lvm.Value) bool {
	if a.K == lvm.KStr && b.K == lvm.KStr {
		switch op {
		case lvm.OpLt:
			return a.S < b.S
		case lvm.OpLe:
			return a.S <= b.S
		case lvm.OpGt:
			return a.S > b.S
		case lvm.OpGe:
			return a.S >= b.S
		}
	}
	switch op {
	case lvm.OpLt:
		return a.I < b.I
	case lvm.OpLe:
		return a.I <= b.I
	case lvm.OpGt:
		return a.I > b.I
	case lvm.OpGe:
		return a.I >= b.I
	}
	return false
}
