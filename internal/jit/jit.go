// Package jit plays the role of the JIT compiler PROSE instruments: it
// translates LVM bytecode into chains of Go closures ("native code") and —
// when a weaver is attached — plants minimal hook stubs at every potential
// join point: method entries and exits, field reads and writes, exception
// throws and handler entries (Fig. 1 of the paper).
//
// A stub's inactive cost is one atomic pointer load, so methods without
// woven advice run at essentially compiled speed; this is the property the
// paper's 7 %-overhead and 900 ns-per-interception measurements characterise,
// reproduced here by benchmarks E1 and E2.
package jit

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/aop"
	"repro/internal/lvm"
	"repro/internal/metrics"
	"repro/internal/weave"
)

// Machine executes LVM programs through compiled code. A nil Weaver compiles
// without hook stubs (the un-instrumented baseline); a non-nil Weaver plants
// stubs at all join points.
type Machine struct {
	Prog     *lvm.Program
	Weaver   *weave.Weaver
	Host     lvm.Host
	MaxSteps int64
	MaxDepth int

	mu    sync.Mutex
	cache map[*lvm.Method]*compiled

	// Compile-time accounting (nil until Instrument). Compilation happens
	// once per method under mu; invocation itself is never counted here so
	// the compiled execution path stays untouched.
	compiles  *metrics.Counter
	compileNs *metrics.Histogram

	framePool sync.Pool
}

// Instrument records method compilations (count and latency) in reg. Safe to
// call at any time; a nil reg is a no-op. Interception dispatches are counted
// by the weaver's sites, not here, so the hot invoke path is unchanged.
func (m *Machine) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.compiles = reg.Counter("jit.compiles")
	m.compileNs = reg.Histogram("jit.compile_ns", nil)
}

// NewMachine returns a Machine over prog. weaver may be nil for an
// un-instrumented machine.
func NewMachine(prog *lvm.Program, weaver *weave.Weaver, host lvm.Host) *Machine {
	m := &Machine{
		Prog:     prog,
		Weaver:   weaver,
		Host:     host,
		MaxSteps: lvm.DefaultMaxSteps,
		MaxDepth: lvm.DefaultMaxDepth,
		cache:    make(map[*lvm.Method]*compiled),
	}
	m.framePool.New = func() any { return &frame{} }
	return m
}

// CompileAll eagerly compiles every method in the program, registering all
// join-point sites with the weaver. Returns the number of methods compiled.
func (m *Machine) CompileAll() (int, error) {
	n := 0
	var err error
	m.Prog.EachMethod(func(meth *lvm.Method) {
		if err != nil {
			return
		}
		if _, cerr := m.compiledFor(meth); cerr != nil {
			err = cerr
			return
		}
		n++
	})
	return n, err
}

// Invoke calls a compiled method with the given receiver and arguments.
func (m *Machine) Invoke(meth *lvm.Method, self *lvm.Object, args []lvm.Value) (lvm.Value, error) {
	c, err := m.compiledFor(meth)
	if err != nil {
		return lvm.Nil(), err
	}
	e := &env{m: m, steps: m.MaxSteps}
	if e.steps <= 0 {
		e.steps = lvm.DefaultMaxSteps
	}
	return c.invoke(e, self, args, 0)
}

// Call resolves "Class.method" and invokes it on a fresh instance when self
// is nil.
func (m *Machine) Call(class, method string, self *lvm.Object, args ...lvm.Value) (lvm.Value, error) {
	meth := m.Prog.Method(class, method)
	if meth == nil {
		return lvm.Nil(), fmt.Errorf("jit: no method %s.%s", class, method)
	}
	if self == nil {
		self = m.Prog.Class(class).New()
	}
	return m.Invoke(meth, self, args)
}

func (m *Machine) compiledFor(meth *lvm.Method) (*compiled, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.cache[meth]; ok {
		return c, nil
	}
	start := time.Time{}
	if m.compiles != nil {
		start = time.Now() //lint:allow clockcheck (measures real compile latency)
	}
	c, err := m.compile(meth)
	if err != nil {
		return nil, err
	}
	if m.compiles != nil {
		m.compiles.Inc()
		m.compileNs.Since(start)
	}
	m.cache[meth] = c
	return c, nil
}

// env carries per-invocation execution state shared across nested calls.
type env struct {
	m     *Machine
	steps int64
}

type frame struct {
	locals []lvm.Value
	stack  []lvm.Value
	ret    lvm.Value
}

func (m *Machine) getFrame(nLocals, maxStack int) *frame {
	fr := m.framePool.Get().(*frame)
	if cap(fr.locals) < nLocals {
		fr.locals = make([]lvm.Value, nLocals)
	} else {
		fr.locals = fr.locals[:nLocals]
		for i := range fr.locals {
			fr.locals[i] = lvm.Value{}
		}
	}
	if cap(fr.stack) < maxStack {
		fr.stack = make([]lvm.Value, 0, maxStack)
	} else {
		fr.stack = fr.stack[:0]
	}
	fr.ret = lvm.Value{}
	return fr
}

func (m *Machine) putFrame(fr *frame) {
	m.framePool.Put(fr)
}

// stepFn executes one compiled instruction. It returns the next pc, or
// retPC to leave the method with fr.ret as the result.
type stepFn func(e *env, fr *frame, depth int) (int, error)

const retPC = -1

// compiled is the "native code" of one method plus its planted stub sites.
type compiled struct {
	m        *lvm.Method
	steps    []stepFn
	maxStack int

	// Hook stubs; nil when the machine has no weaver.
	entrySite   *weave.Site
	exitSite    *weave.Site
	throwSite   *weave.Site
	handlerSite *weave.Site
}

func (c *compiled) invoke(e *env, self *lvm.Object, args []lvm.Value, depth int) (lvm.Value, error) {
	maxDepth := e.m.MaxDepth
	if maxDepth <= 0 {
		maxDepth = lvm.DefaultMaxDepth
	}
	if depth > maxDepth {
		return lvm.Nil(), lvm.ErrStackDepth
	}
	if len(args) != c.m.Arity() {
		return lvm.Nil(), lvm.Throwf("%s: want %d args, got %d", c.m, c.m.Arity(), len(args))
	}

	// Method-boundary stubs share one context so advice can pass session
	// state from the entry interception to the exit interception (Fig. 2).
	entryActive := c.entrySite != nil && c.entrySite.Active()
	exitActive := c.exitSite != nil && c.exitSite.Active()
	var ctx *aop.Context
	if entryActive || exitActive {
		ctx = weave.GetContext()
		defer weave.PutContext(ctx)
		ctx.Sig = aop.SignatureOf(c.m)
		ctx.Self = self
		ctx.Args = args
	}
	if entryActive {
		ctx.Kind = aop.MethodEntry
		if err := c.entrySite.Dispatch(ctx); err != nil {
			return lvm.Nil(), err
		}
	}

	fr := e.m.getFrame(c.m.FrameSize(), c.maxStack)
	fr.locals[0] = lvm.Obj(self)
	copy(fr.locals[1:], args)

	pc := 0
	var result lvm.Value
	var finalErr error
	for pc >= 0 && pc < len(c.steps) {
		e.steps--
		if e.steps < 0 {
			finalErr = lvm.ErrStepBudget
			break
		}
		next, err := c.steps[pc](e, fr, depth)
		if err != nil {
			var thrown *lvm.Thrown
			if errors.As(err, &thrown) {
				// Exception-throw stub.
				if c.throwSite != nil && c.throwSite.Active() {
					ctx := weave.GetContext()
					ctx.Kind = aop.ExceptionThrow
					ctx.Sig = aop.SignatureOf(c.m)
					ctx.Self = self
					ctx.ErrMsg = thrown.Msg
					derr := c.throwSite.Dispatch(ctx)
					weave.PutContext(ctx)
					if derr != nil {
						finalErr = derr
						break
					}
				}
				if h, ok := handlerFor(c.m.Handlers, pc); ok {
					// Exception-handler stub.
					if c.handlerSite != nil && c.handlerSite.Active() {
						ctx := weave.GetContext()
						ctx.Kind = aop.ExceptionHandler
						ctx.Sig = aop.SignatureOf(c.m)
						ctx.Self = self
						ctx.ErrMsg = thrown.Msg
						derr := c.handlerSite.Dispatch(ctx)
						weave.PutContext(ctx)
						if derr != nil {
							finalErr = derr
							break
						}
					}
					fr.stack = fr.stack[:0]
					fr.stack = append(fr.stack, lvm.Str(thrown.Msg))
					pc = h.Target
					continue
				}
			}
			finalErr = err
			break
		}
		if next == retPC {
			result = fr.ret
			break
		}
		pc = next
	}
	e.m.putFrame(fr)
	if finalErr != nil {
		return lvm.Nil(), finalErr
	}

	// Method-exit stub.
	if exitActive {
		ctx.Kind = aop.MethodExit
		ctx.Result = result
		if err := c.exitSite.Dispatch(ctx); err != nil {
			return lvm.Nil(), err
		}
		result = ctx.Result
	}
	return result, nil
}

func handlerFor(hs []lvm.Handler, pc int) (lvm.Handler, bool) {
	for _, h := range hs {
		if pc >= h.Start && pc < h.End {
			return h, true
		}
	}
	return lvm.Handler{}, false
}

// fieldNames recovers (class, field) for a field instruction's join point.
// The assembler stores "Class.field" or a bare field name in Sym; self
// accesses use the enclosing class.
func fieldNames(m *lvm.Method, ins lvm.Instr) (class, field string) {
	cls := ""
	if m.Class != nil {
		cls = m.Class.Name
	}
	switch {
	case ins.Sym == "":
		// Raw numeric access from hand-built code: use the slot number.
		return cls, fmt.Sprintf("#%d", ins.A)
	case strings.ContainsRune(ins.Sym, '.'):
		dot := strings.LastIndexByte(ins.Sym, '.')
		return ins.Sym[:dot], ins.Sym[dot+1:]
	default:
		return cls, ins.Sym
	}
}
