package jit

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/aop"
	"repro/internal/lvm"
	"repro/internal/sandbox"
	"repro/internal/weave"
)

const robotSrc = `
class Motor
  field pos
  field id
  method void rotate(int deg)
    getself pos
    load deg
    add
    setself pos
  end
  method int position()
    getself pos
    ret
  end
  method void reset()
    push 0
    setself pos
  end
end
class Robot
  field arm
  method void init()
    new Motor
    setself arm
    getself arm
    push 0
    setfield Motor.pos
  end
  method void moveArm(int deg)
    getself arm
    load deg
    call rotate 1
    pop
  end
  method int armPos()
    getself arm
    call position 0
    ret
  end
end
class Math
  method int sumTo(int n)
    local acc
    local i
    push 0
    store acc
    push 1
    store i
  loop:
    load i
    load n
    le
    jmpf done
    load acc
    load i
    add
    store acc
    load i
    push 1
    add
    store i
    jmp loop
  done:
    load acc
    ret
  end
  method int safeDiv(int a, int b)
  s:
    load a
    load b
    div
    ret
  e:
  h:
    pop
    push -1
    ret
    handler s e h
  end
end`

func newRobotMachine(t *testing.T, w *weave.Weaver) *Machine {
	t.Helper()
	prog := lvm.MustAssemble(robotSrc)
	return NewMachine(prog, w, nil)
}

func TestCompiledMatchesInterpreter(t *testing.T) {
	prog := lvm.MustAssemble(robotSrc)
	m := NewMachine(prog, nil, nil)
	in := lvm.NewInterp(prog, nil)
	meth := prog.Method("Math", "sumTo")
	self := prog.Class("Math").New()
	if err := quick.Check(func(n uint8) bool {
		a, err1 := m.Invoke(meth, self, []lvm.Value{lvm.Int(int64(n))})
		b, err2 := in.Invoke(meth, self, []lvm.Value{lvm.Int(int64(n))})
		return err1 == nil && err2 == nil && a.Equal(b)
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCompiledObjectsAndCalls(t *testing.T) {
	m := newRobotMachine(t, nil)
	robot := m.Prog.Class("Robot").New()
	if _, err := m.Call("Robot", "init", robot); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Call("Robot", "moveArm", robot, lvm.Int(30)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Call("Robot", "moveArm", robot, lvm.Int(-10)); err != nil {
		t.Fatal(err)
	}
	v, err := m.Call("Robot", "armPos", robot)
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 20 {
		t.Errorf("armPos = %d, want 20", v.I)
	}
}

func TestCompiledExceptionHandling(t *testing.T) {
	m := newRobotMachine(t, nil)
	v, err := m.Call("Math", "safeDiv", nil, lvm.Int(10), lvm.Int(0))
	if err != nil || v.I != -1 {
		t.Fatalf("safeDiv(10,0) = %v, %v", v, err)
	}
	v, err = m.Call("Math", "safeDiv", nil, lvm.Int(10), lvm.Int(5))
	if err != nil || v.I != 2 {
		t.Fatalf("safeDiv(10,5) = %v, %v", v, err)
	}
}

func TestCompileAllRegistersSites(t *testing.T) {
	w := weave.New()
	m := newRobotMachine(t, w)
	n, err := m.CompileAll()
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Errorf("compiled %d methods, want 8", n)
	}
	// 8 methods × (entry+exit+throw) plus one handler site for safeDiv plus
	// field sites for every getself/setself/getfield/setfield instruction.
	if w.SiteCount() < 8*3+1 {
		t.Errorf("SiteCount = %d, want at least %d", w.SiteCount(), 8*3+1)
	}
}

func TestMethodEntryAdviceFires(t *testing.T) {
	w := weave.New()
	m := newRobotMachine(t, w)
	var calls []string
	a := &aop.Aspect{Name: "monitor", Advices: []aop.Advice{
		aop.BeforeCall("Motor.*(..)", aop.BodyFunc(func(ctx *aop.Context) error {
			calls = append(calls, ctx.Sig.Method)
			return nil
		})),
	}}
	if err := w.Insert(a); err != nil {
		t.Fatal(err)
	}
	robot := m.Prog.Class("Robot").New()
	if _, err := m.Call("Robot", "init", robot); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Call("Robot", "moveArm", robot, lvm.Int(5)); err != nil {
		t.Fatal(err)
	}
	if strings.Join(calls, ",") != "rotate" {
		t.Errorf("intercepted = %v, want [rotate]", calls)
	}
}

func TestAdviceCanVetoCall(t *testing.T) {
	w := weave.New()
	m := newRobotMachine(t, w)
	a := &aop.Aspect{Name: "guard", Advices: []aop.Advice{
		aop.BeforeCall("Motor.rotate(..)", aop.BodyFunc(func(ctx *aop.Context) error {
			if ctx.Arg(0).I > 90 {
				ctx.Abortf("rotation %d exceeds limit", ctx.Arg(0).I)
			}
			return nil
		})),
	}}
	if err := w.Insert(a); err != nil {
		t.Fatal(err)
	}
	robot := m.Prog.Class("Robot").New()
	if _, err := m.Call("Robot", "init", robot); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Call("Robot", "moveArm", robot, lvm.Int(45)); err != nil {
		t.Fatal(err)
	}
	_, err := m.Call("Robot", "moveArm", robot, lvm.Int(120))
	var thrown *lvm.Thrown
	if !errors.As(err, &thrown) || !strings.Contains(thrown.Msg, "exceeds limit") {
		t.Fatalf("want veto exception, got %v", err)
	}
	// Vetoed call must not have moved the arm.
	v, err := m.Call("Robot", "armPos", robot)
	if err != nil || v.I != 45 {
		t.Fatalf("armPos = %v, %v; want 45", v, err)
	}
}

func TestAdviceRewritesArguments(t *testing.T) {
	w := weave.New()
	m := newRobotMachine(t, w)
	// Scale all rotations by 2 — the paper's "replication at a different
	// scale" use case.
	a := &aop.Aspect{Name: "scale", Advices: []aop.Advice{
		aop.BeforeCall("Motor.rotate(..)", aop.BodyFunc(func(ctx *aop.Context) error {
			ctx.SetArg(0, lvm.Int(ctx.Arg(0).I*2))
			return nil
		})),
	}}
	if err := w.Insert(a); err != nil {
		t.Fatal(err)
	}
	robot := m.Prog.Class("Robot").New()
	if _, err := m.Call("Robot", "init", robot); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Call("Robot", "moveArm", robot, lvm.Int(10)); err != nil {
		t.Fatal(err)
	}
	v, _ := m.Call("Robot", "armPos", robot)
	if v.I != 20 {
		t.Errorf("armPos = %d, want 20 (scaled)", v.I)
	}
}

func TestMethodExitAdviceSeesAndRewritesResult(t *testing.T) {
	w := weave.New()
	m := newRobotMachine(t, w)
	a := &aop.Aspect{Name: "clamp", Advices: []aop.Advice{
		aop.AfterCall("int Math.sumTo(..)", aop.BodyFunc(func(ctx *aop.Context) error {
			if ctx.Result.I > 100 {
				ctx.SetResult(lvm.Int(100))
			}
			return nil
		})),
	}}
	if err := w.Insert(a); err != nil {
		t.Fatal(err)
	}
	v, err := m.Call("Math", "sumTo", nil, lvm.Int(5))
	if err != nil || v.I != 15 {
		t.Fatalf("sumTo(5) = %v, %v", v, err)
	}
	v, err = m.Call("Math", "sumTo", nil, lvm.Int(100))
	if err != nil || v.I != 100 {
		t.Fatalf("sumTo(100) = %v, %v; want clamped 100", v, err)
	}
}

func TestFieldSetAdvice(t *testing.T) {
	w := weave.New()
	m := newRobotMachine(t, w)
	var observed []int64
	// The quality-assurance extension of §3.3: log every change to the
	// robot's state (*).
	a := &aop.Aspect{Name: "qa", Advices: []aop.Advice{
		aop.OnFieldSet("Motor.pos", aop.BodyFunc(func(ctx *aop.Context) error {
			observed = append(observed, ctx.Arg(0).I)
			return nil
		})),
	}}
	if err := w.Insert(a); err != nil {
		t.Fatal(err)
	}
	motor := m.Prog.Class("Motor").New()
	if _, err := m.Call("Motor", "reset", motor); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Call("Motor", "rotate", motor, lvm.Int(15)); err != nil {
		t.Fatal(err)
	}
	if len(observed) != 2 || observed[0] != 0 || observed[1] != 15 {
		t.Errorf("observed = %v, want [0 15]", observed)
	}
}

func TestFieldGetAdviceRewrites(t *testing.T) {
	w := weave.New()
	m := newRobotMachine(t, w)
	a := &aop.Aspect{Name: "spoof", Advices: []aop.Advice{
		aop.OnFieldGet("Motor.pos", aop.BodyFunc(func(ctx *aop.Context) error {
			ctx.SetResult(lvm.Int(999))
			return nil
		})),
	}}
	if err := w.Insert(a); err != nil {
		t.Fatal(err)
	}
	motor := m.Prog.Class("Motor").New()
	v, err := m.Call("Motor", "position", motor)
	if err != nil || v.I != 999 {
		t.Fatalf("position = %v, %v; want spoofed 999", v, err)
	}
}

func TestExceptionThrowAdvice(t *testing.T) {
	w := weave.New()
	m := newRobotMachine(t, w)
	var thrownMsgs, handledMsgs []string
	a := &aop.Aspect{Name: "exmon", Advices: []aop.Advice{
		aop.OnThrow("Math.*(..)", aop.BodyFunc(func(ctx *aop.Context) error {
			thrownMsgs = append(thrownMsgs, ctx.ErrMsg)
			return nil
		})),
		aop.OnHandle("Math.*(..)", aop.BodyFunc(func(ctx *aop.Context) error {
			handledMsgs = append(handledMsgs, ctx.ErrMsg)
			return nil
		})),
	}}
	if err := w.Insert(a); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Call("Math", "safeDiv", nil, lvm.Int(1), lvm.Int(0)); err != nil {
		t.Fatal(err)
	}
	if len(thrownMsgs) != 1 || !strings.Contains(thrownMsgs[0], "divide by zero") {
		t.Errorf("throw advice saw %v", thrownMsgs)
	}
	if len(handledMsgs) != 1 {
		t.Errorf("handler advice saw %v", handledMsgs)
	}
}

func TestWithdrawRestoresBehaviour(t *testing.T) {
	w := weave.New()
	m := newRobotMachine(t, w)
	count := 0
	a := &aop.Aspect{Name: "c", Advices: []aop.Advice{
		aop.BeforeCall("Math.*(..)", aop.BodyFunc(func(*aop.Context) error {
			count++
			return nil
		})),
	}}
	if err := w.Insert(a); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Call("Math", "sumTo", nil, lvm.Int(3)); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("count = %d", count)
	}
	if err := w.Withdraw("c"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Call("Math", "sumTo", nil, lvm.Int(3)); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("advice ran after withdrawal: count = %d", count)
	}
}

func TestStepBudgetCompiled(t *testing.T) {
	prog := lvm.MustAssemble(`
class App
  method void spin()
  loop:
    jmp loop
  end
end`)
	m := NewMachine(prog, nil, nil)
	m.MaxSteps = 500
	_, err := m.Call("App", "spin", nil)
	if !errors.Is(err, lvm.ErrStepBudget) {
		t.Fatalf("want step budget error, got %v", err)
	}
}

func TestRecursionDepthCompiled(t *testing.T) {
	prog := lvm.MustAssemble(`
class App
  method void rec()
    load self
    call rec 0
    pop
  end
end`)
	m := NewMachine(prog, nil, nil)
	_, err := m.Call("App", "rec", nil)
	if !errors.Is(err, lvm.ErrStackDepth) {
		t.Fatalf("want stack depth error, got %v", err)
	}
}

func TestHostCallCompiled(t *testing.T) {
	prog := lvm.MustAssemble(`
class App
  method int probe(int x)
    load x
    hostcall triple 1
    ret
  end
end`)
	host := lvm.HostMap{"triple": func(args []lvm.Value) (lvm.Value, error) {
		return lvm.Int(args[0].I * 3), nil
	}}
	m := NewMachine(prog, nil, host)
	v, err := m.Call("App", "probe", nil, lvm.Int(7))
	if err != nil || v.I != 21 {
		t.Fatalf("probe = %v, %v", v, err)
	}
}

func TestUnknownMethodCall(t *testing.T) {
	m := newRobotMachine(t, nil)
	if _, err := m.Call("Robot", "fly", nil); err == nil {
		t.Fatal("want error for unknown method")
	}
}

func TestHostCallCompiledPrecheckedFastPath(t *testing.T) {
	prog := lvm.MustAssemble(`
class App
  method int probe()
    push "k"
    hostcall store.put 1
    ret
  end
end`)
	inner := lvm.HostMap{"store.put": func(args []lvm.Value) (lvm.Value, error) {
		return lvm.Int(42), nil
	}}
	gated := sandbox.NewHost(inner, sandbox.NewPerms(sandbox.CapStore))
	gated.Prove("store.put")
	m := NewMachine(prog, nil, gated)
	v, err := m.Call("App", "probe", nil)
	if err != nil || v.I != 42 {
		t.Fatalf("probe = %v, %v", v, err)
	}
	// The compiled closure bound the inner host directly: the sandbox's
	// checked-path counter never moved.
	if gated.CallCount("store.put") != 0 {
		t.Error("compiled dispatch took the checked path for a proven call")
	}
}

func TestHostCallCompiledUnprovenStaysChecked(t *testing.T) {
	prog := lvm.MustAssemble(`
class App
  method int probe()
    push "k"
    hostcall store.put 1
    ret
  end
end`)
	inner := lvm.HostMap{"store.put": func(args []lvm.Value) (lvm.Value, error) {
		return lvm.Int(7), nil
	}}
	gated := sandbox.NewHost(inner, sandbox.NewPerms(sandbox.CapStore))
	m := NewMachine(prog, nil, gated)
	if _, err := m.Call("App", "probe", nil); err != nil {
		t.Fatal(err)
	}
	if gated.CallCount("store.put") != 1 {
		t.Error("unproven call must go through the capability gate")
	}
}
