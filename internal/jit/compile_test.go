package jit

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/aop"
	"repro/internal/lvm"
	"repro/internal/weave"
)

// TestCompiledOpcodeCoverage runs a program exercising every opcode family
// through the compiled path and checks the results against expectations.
func TestCompiledOpcodeCoverage(t *testing.T) {
	prog := lvm.MustAssemble(`
class Ops
  field tag
  method bool logic(bool a, bool b)
    load a
    load b
    and
    load a
    load b
    or
    and
    load a
    not
    or
    ret
  end
  method int negmod(int a, int b)
    load a
    neg
    load b
    mod
    ret
  end
  method str describe(int n)
    push "n="
    load n
    concat
    dup
    len
    pop
    ret
  end
  method int strops(str s)
    load s
    len
    ret
  end
  method obj make()
    new Ops
    dup
    push "made"
    setfield Ops.tag
    ret
  end
  method str readTag()
    load self
    call make 0
    getfield Ops.tag
    ret
  end
  method bool cmp(int a, int b)
    load a
    load b
    ge
    load a
    load b
    ne
    and
    ret
  end
  method bool strcmp(str a, str b)
    load a
    load b
    lt
    ret
  end
end`)
	m := NewMachine(prog, weave.New(), nil) // hooks planted, nothing woven
	tests := []struct {
		method string
		args   []lvm.Value
		want   lvm.Value
	}{
		{"logic", []lvm.Value{lvm.Bool(true), lvm.Bool(false)}, lvm.Bool(false)},
		{"logic", []lvm.Value{lvm.Bool(true), lvm.Bool(true)}, lvm.Bool(true)},
		{"negmod", []lvm.Value{lvm.Int(-17), lvm.Int(5)}, lvm.Int(2)},
		{"describe", []lvm.Value{lvm.Int(42)}, lvm.Str("n=42")},
		{"strops", []lvm.Value{lvm.Str("hello")}, lvm.Int(5)},
		{"readTag", nil, lvm.Str("made")},
		{"cmp", []lvm.Value{lvm.Int(5), lvm.Int(3)}, lvm.Bool(true)},
		{"cmp", []lvm.Value{lvm.Int(3), lvm.Int(3)}, lvm.Bool(false)},
		{"strcmp", []lvm.Value{lvm.Str("a"), lvm.Str("b")}, lvm.Bool(true)},
	}
	for _, tt := range tests {
		got, err := m.Call("Ops", tt.method, nil, tt.args...)
		if err != nil {
			t.Fatalf("%s: %v", tt.method, err)
		}
		if !got.Equal(tt.want) {
			t.Errorf("%s(%v) = %v, want %v", tt.method, tt.args, got, tt.want)
		}
	}
}

func TestCompiledRuntimeErrors(t *testing.T) {
	prog := lvm.MustAssemble(`
class Bad
  field f
  method void callOnInt()
    push 1
    call anything 0
    pop
  end
  method void getfieldOnInt()
    push 1
    getfield Bad.f
    pop
  end
  method void setfieldOnInt()
    push 1
    push 2
    setfield Bad.f
  end
  method void lenOnInt()
    push 1
    len
    pop
  end
  method void noSuchMethod()
    load self
    call ghost 0
    pop
  end
end`)
	m := NewMachine(prog, nil, nil)
	for _, method := range []string{"callOnInt", "getfieldOnInt", "setfieldOnInt", "lenOnInt", "noSuchMethod"} {
		_, err := m.Call("Bad", method, nil)
		var thrown *lvm.Thrown
		if !errors.As(err, &thrown) {
			t.Errorf("%s: want thrown error, got %v", method, err)
		}
	}
}

func TestWeaveDuringExecution(t *testing.T) {
	// An aspect inserted between calls affects the next call without
	// recompilation — the run-time adaptation property of Fig. 1.
	prog := lvm.MustAssemble(`
class App
  method int val()
    push 10
    ret
  end
end`)
	w := weave.New()
	m := NewMachine(prog, w, nil)
	if v, err := m.Call("App", "val", nil); err != nil || v.I != 10 {
		t.Fatalf("before: %v %v", v, err)
	}
	a := &aop.Aspect{Name: "boost", Advices: []aop.Advice{
		aop.AfterCall("App.val(..)", aop.BodyFunc(func(ctx *aop.Context) error {
			ctx.SetResult(lvm.Int(ctx.Result.I * 10))
			return nil
		})),
	}}
	if err := w.Insert(a); err != nil {
		t.Fatal(err)
	}
	if v, err := m.Call("App", "val", nil); err != nil || v.I != 100 {
		t.Fatalf("woven: %v %v", v, err)
	}
	if err := w.Withdraw("boost"); err != nil {
		t.Fatal(err)
	}
	if v, err := m.Call("App", "val", nil); err != nil || v.I != 10 {
		t.Fatalf("after withdraw: %v %v", v, err)
	}
}

func TestConcurrentExecutionAndWeaving(t *testing.T) {
	prog := lvm.MustAssemble(`
class App
  method int work(int n)
    local acc
    local i
    push 0
    store acc
    push 1
    store i
  loop:
    load i
    load n
    le
    jmpf done
    load acc
    load i
    add
    store acc
    load i
    push 1
    add
    store i
    jmp loop
  done:
    load acc
    ret
  end
end`)
	w := weave.New()
	m := NewMachine(prog, w, nil)
	if _, err := m.CompileAll(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, err := m.Call("App", "work", nil, lvm.Int(50))
				if err != nil {
					t.Errorf("work: %v", err)
					return
				}
				if v.I != 1275 {
					t.Errorf("work = %d", v.I)
					return
				}
			}
		}()
	}
	// Weave and unweave concurrently with execution.
	body := aop.BodyFunc(func(*aop.Context) error { return nil })
	for i := 0; i < 100; i++ {
		a := &aop.Aspect{Name: "a", Advices: []aop.Advice{aop.BeforeCall("App.*(..)", body)}}
		if err := w.Insert(a); err != nil {
			t.Fatal(err)
		}
		if err := w.Withdraw("a"); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestThrowAdviceVetoOverridesHandler(t *testing.T) {
	// A throw-site advice returning an error aborts even catchable
	// exceptions (e.g. a security monitor that must not be silenced).
	prog := lvm.MustAssemble(`
class App
  method int f()
  s:
    push "oops"
    throw
  e:
  h:
    pop
    push 1
    ret
    handler s e h
  end
end`)
	w := weave.New()
	m := NewMachine(prog, w, nil)
	// Without advice, the handler catches.
	if v, err := m.Call("App", "f", nil); err != nil || v.I != 1 {
		t.Fatalf("unwoven: %v %v", v, err)
	}
	a := &aop.Aspect{Name: "exmon", Advices: []aop.Advice{
		aop.OnThrow("App.*(..)", aop.BodyFunc(func(ctx *aop.Context) error {
			return errors.New("security monitor: exception quarantined")
		})),
	}}
	if err := w.Insert(a); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Call("App", "f", nil); err == nil {
		t.Fatal("throw advice error should abort")
	}
}

func TestSessionStateFlowsEntryToExit(t *testing.T) {
	// Entry and exit advice share one context per invocation (Fig. 2).
	prog := lvm.MustAssemble(`
class App
  method int f(int x)
    load x
    ret
  end
end`)
	w := weave.New()
	m := NewMachine(prog, w, nil)
	var got string
	a := &aop.Aspect{Name: "session", Advices: []aop.Advice{
		aop.BeforeCall("App.*(..)", aop.BodyFunc(func(ctx *aop.Context) error {
			ctx.Put("session.caller", lvm.Str("alice"))
			return nil
		})),
		aop.AfterCall("App.*(..)", aop.BodyFunc(func(ctx *aop.Context) error {
			if v, ok := ctx.Get("session.caller"); ok {
				got = v.S
			}
			return nil
		})),
	}}
	if err := w.Insert(a); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Call("App", "f", nil, lvm.Int(1)); err != nil {
		t.Fatal(err)
	}
	if got != "alice" {
		t.Errorf("exit advice saw %q, want alice", got)
	}
}
