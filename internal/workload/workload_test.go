package workload

import (
	"testing"

	"repro/internal/jit"
	"repro/internal/lvm"
	"repro/internal/weave"
)

func TestWorkloadsComputeExpectedValues(t *testing.T) {
	for _, spec := range All() {
		t.Run(spec.Name, func(t *testing.T) {
			want, err := Expected(spec.Name, spec.Arg)
			if err != nil {
				t.Fatal(err)
			}
			// Interpreter.
			prog := Program()
			in := lvm.NewInterp(prog, nil)
			in.MaxSteps = 100_000_000
			got, err := in.Invoke(prog.Method(spec.Class, spec.Method), prog.Class(spec.Class).New(), []lvm.Value{lvm.Int(spec.Arg)})
			if err != nil {
				t.Fatal(err)
			}
			if got.I != want {
				t.Errorf("interp %s = %d, want %d", spec.Name, got.I, want)
			}
			// Un-instrumented JIT.
			m := jit.NewMachine(Program(), nil, nil)
			m.MaxSteps = 100_000_000
			got2, err := m.Call(spec.Class, spec.Method, nil, lvm.Int(spec.Arg))
			if err != nil {
				t.Fatal(err)
			}
			if got2.I != want {
				t.Errorf("jit %s = %d, want %d", spec.Name, got2.I, want)
			}
			// Instrumented JIT (hooks planted, no advice): semantics must be
			// identical — the core of the E1 overhead claim.
			mw := jit.NewMachine(Program(), weave.New(), nil)
			mw.MaxSteps = 100_000_000
			got3, err := mw.Call(spec.Class, spec.Method, nil, lvm.Int(spec.Arg))
			if err != nil {
				t.Fatal(err)
			}
			if got3.I != want {
				t.Errorf("hooked jit %s = %d, want %d", spec.Name, got3.I, want)
			}
		})
	}
}

func TestExpectedUnknown(t *testing.T) {
	if _, err := Expected("nope", 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
