// Package workload provides the SPECjvm-style synthetic benchmark programs
// used to measure the platform overhead of §4.6: deterministic LVM programs
// exercising arithmetic, string handling, method calls and field traffic.
// The overhead experiments run each workload on an un-instrumented machine
// and on one with hook stubs planted at every join point.
package workload

import (
	"fmt"

	"repro/internal/lvm"
)

// Spec names one synthetic workload and its entry point.
type Spec struct {
	Name   string
	Class  string
	Method string
	Arg    int64 // iteration count handed to the entry method
}

// All returns the benchmark suite. Arg values are sized so a single run
// takes roughly comparable work across workloads.
func All() []Spec {
	return []Spec{
		{Name: "arith", Class: "Arith", Method: "run", Arg: 400},
		{Name: "calls", Class: "Calls", Method: "run", Arg: 150},
		{Name: "fields", Class: "Fields", Method: "run", Arg: 200},
		{Name: "strings", Class: "Strings", Method: "run", Arg: 60},
	}
}

// Program assembles the workload suite. Each call returns a fresh Program so
// instrumented and un-instrumented machines never share compiled state.
func Program() *lvm.Program {
	return lvm.MustAssemble(src)
}

// Expected returns the value the named workload must compute for the given
// argument; used to verify that instrumentation does not change semantics.
func Expected(name string, n int64) (int64, error) {
	switch name {
	case "arith":
		var acc int64
		for i := int64(1); i <= n; i++ {
			acc += i*i - 3*i + (acc % 7)
		}
		return acc, nil
	case "calls":
		var acc int64
		for i := int64(1); i <= n; i++ {
			acc += i*2 + 1
		}
		return acc, nil
	case "fields":
		var v int64
		for i := int64(1); i <= n; i++ {
			v = v + i
		}
		return v, nil
	case "strings":
		var l int64
		s := ""
		for i := int64(0); i < n; i++ {
			s += "ab"
			l += int64(len(s))
		}
		return l, nil
	default:
		return 0, fmt.Errorf("workload: unknown %q", name)
	}
}

const src = `
; SPECjvm-style synthetic workloads.
class Arith
  method int run(int n)
    local acc
    local i
    push 0
    store acc
    push 1
    store i
  loop:
    load i
    load n
    le
    jmpf done
    ; acc += i*i - 3*i + (acc % 7)
    load acc
    load i
    load i
    mul
    push 3
    load i
    mul
    sub
    load acc
    push 7
    mod
    add
    add
    store acc
    load i
    push 1
    add
    store i
    jmp loop
  done:
    load acc
    ret
  end
end

class Calls
  method int helper(int x)
    load x
    push 2
    mul
    push 1
    add
    ret
  end
  method int run(int n)
    local acc
    local i
    push 0
    store acc
    push 1
    store i
  loop:
    load i
    load n
    le
    jmpf done
    load acc
    load self
    load i
    call helper 1
    add
    store acc
    load i
    push 1
    add
    store i
    jmp loop
  done:
    load acc
    ret
  end
end

class Fields
  field v
  method int run(int n)
    local i
    push 0
    setself v
    push 1
    store i
  loop:
    load i
    load n
    le
    jmpf done
    getself v
    load i
    add
    setself v
    load i
    push 1
    add
    store i
    jmp loop
  done:
    getself v
    ret
  end
end

class Strings
  method int run(int n)
    local s
    local l
    local i
    push ""
    store s
    push 0
    store l
    push 0
    store i
  loop:
    load i
    load n
    lt
    jmpf done
    load s
    push "ab"
    concat
    store s
    load l
    load s
    len
    add
    store l
    load i
    push 1
    add
    store i
    jmp loop
  done:
    load l
    ret
  end
end
`
