// Codec micro-benchmarks: the wire codec against encoding/gob on the hottest
// message type, RenewBatchReq, at singleton, one-batch and storm sizes. The
// gob side is measured the way the fabrics actually used it — a fresh
// encoder/decoder per message, so type descriptors are re-sent every time —
// because that is the cost the codec replaces. Run with:
//
//	go test -run '^$' -bench WireCodec -benchmem ./internal/wire/
package wire_test

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/transport"
	"repro/internal/wire"
)

// benchRenewBatch builds an n-lease renewal batch with realistic lease IDs.
func benchRenewBatch(n int) core.RenewBatchReq {
	req := core.RenewBatchReq{Items: make([]core.RenewExtReq, n)}
	for i := range req.Items {
		req.Items[i] = core.RenewExtReq{
			LeaseID:   fmt.Sprintf("node-%05d-L%d", i, i%7),
			DurMillis: 60_000,
		}
	}
	return req
}

var benchSizes = []int{1, 64, 1024}

func BenchmarkWireCodecEncode(b *testing.B) {
	for _, n := range benchSizes {
		req := benchRenewBatch(n)
		b.Run(fmt.Sprintf("renewBatch-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = wire.Marshal(req)
			}
		})
	}
}

func BenchmarkWireCodecDecode(b *testing.B) {
	for _, n := range benchSizes {
		data := wire.Marshal(benchRenewBatch(n))
		b.Run(fmt.Sprintf("renewBatch-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var out core.RenewBatchReq
				if err := wire.Unmarshal(data, &out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGobCodecEncode(b *testing.B) {
	for _, n := range benchSizes {
		req := benchRenewBatch(n)
		b.Run(fmt.Sprintf("renewBatch-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := transport.Encode(req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGobCodecDecode(b *testing.B) {
	for _, n := range benchSizes {
		data, err := transport.Encode(benchRenewBatch(n))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("renewBatch-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var out core.RenewBatchReq
				if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
