// Package wire is the platform's hand-rolled, zero-reflection binary codec
// for the hot RPC message types. Where encoding/gob walks every value through
// reflection and re-transmits type descriptors on every message (a fresh
// encoder per RPC never amortizes them), wire messages marshal themselves
// field by field into a flat byte buffer: unsigned varints for counts and
// lengths, zigzag varints for signed integers, length-prefixed UTF-8 for
// strings and raw bytes, and key-sorted entries for string maps so the same
// value always produces the same bytes (replays and golden vectors are
// bit-for-bit stable).
//
// Every marshalled message is framed with a 3-byte self-describing header:
//
//	offset 0: 0x00  — a byte no gob stream can start with (gob's leading
//	                  message-length varint is never zero), so a frame is
//	                  distinguishable from a gob body at a glance
//	offset 1: 0xC6  — the wire magic
//	offset 2: 0x01  — the codec version
//
// The header is what lets transport.Decode dispatch between the two codecs,
// old peers reject frames with their familiar gob error (which the fabrics
// translate into a remembered per-peer gob fallback), and the version byte
// evolve the format without flag days.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Version is the wire-format version emitted by this build. Decoders accept
// exactly this version; bumping it is a format change and must come with new
// golden vectors. Version 2 added Extension.Flows (declared information-flow
// rules) between Caps and Meta; version-1 peers interoperate through the gob
// fallback, which the transport negotiates per type.
const Version = 2

// Magic is the second frame-header byte. The TCP fabric reuses it in its
// codec-negotiation ack.
const Magic = 0xC6

// Frame header bytes (see the package comment for the layout).
const (
	headerLen  = 3
	headerZero = 0x00
)

// Marshaler is implemented by message types that marshal themselves with the
// wire codec. Implementations append fields to e in declaration order and
// never fail: the encoder is infallible by construction.
type Marshaler interface {
	MarshalWire(e *Encoder)
}

// Unmarshaler is implemented by message types that unmarshal themselves with
// the wire codec. Implementations read fields from d in the order they were
// written and report d.Err(); the decoder carries a sticky error so field
// reads need no individual checks.
type Unmarshaler interface {
	UnmarshalWire(d *Decoder) error
}

// Header returns a fresh copy of the 3-byte frame header.
func Header() []byte { return []byte{headerZero, Magic, Version} }

// IsFrame reports whether data begins with a wire frame header (any
// version). Gob bodies never match: a gob stream cannot start with 0x00.
func IsFrame(data []byte) bool {
	return len(data) >= headerLen && data[0] == headerZero && data[1] == Magic
}

// Errors surfaced by Unmarshal and the Decoder.
var (
	// ErrNotFrame reports data without a wire frame header.
	ErrNotFrame = errors.New("wire: not a wire frame")
	// ErrTruncated reports a frame that ended mid-field.
	ErrTruncated = errors.New("wire: truncated")
	// ErrTrailing reports leftover bytes after the top-level message.
	ErrTrailing = errors.New("wire: trailing bytes after message")
)

// Marshal frames and encodes m: header then fields. The returned buffer is
// freshly allocated (safe to retain); the scratch encoder is pooled.
func Marshal(m Marshaler) []byte {
	e := GetEncoder()
	e.buf = append(e.buf, headerZero, Magic, Version)
	m.MarshalWire(e)
	out := make([]byte, len(e.buf))
	copy(out, e.buf)
	PutEncoder(e)
	return out
}

// Unmarshal decodes a framed message into u, rejecting bad headers,
// unsupported versions, truncation and trailing garbage.
func Unmarshal(data []byte, u Unmarshaler) error {
	if !IsFrame(data) {
		return ErrNotFrame
	}
	if data[2] != Version {
		return fmt.Errorf("wire: unsupported version %d (have %d)", data[2], Version)
	}
	d := Decoder{data: data[headerLen:]}
	if err := u.UnmarshalWire(&d); err != nil {
		return err
	}
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.data) {
		return fmt.Errorf("%w: %d of %d bytes consumed", ErrTrailing, d.off, len(d.data))
	}
	return nil
}

// Encoder appends wire-encoded fields to a byte buffer. The zero value is
// ready to use; hot paths take pooled encoders through GetEncoder.
type Encoder struct {
	buf []byte
}

// encPool recycles encoder scratch buffers across messages; oversized
// buffers (a huge extension push) are dropped rather than pinned forever.
var encPool = sync.Pool{New: func() any { return &Encoder{buf: make([]byte, 0, 512)} }}

// GetEncoder returns a reset pooled encoder.
func GetEncoder() *Encoder {
	e := encPool.Get().(*Encoder)
	e.buf = e.buf[:0]
	return e
}

// PutEncoder returns e to the pool. The caller must not touch e (or buffers
// obtained from Data) afterwards.
func PutEncoder(e *Encoder) {
	if cap(e.buf) > 1<<20 {
		return
	}
	encPool.Put(e)
}

// Reset empties the encoder, keeping its buffer.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Data returns the encoded bytes. The slice aliases the encoder's buffer and
// is invalidated by further writes, Reset or PutEncoder.
func (e *Encoder) Data() []byte { return e.buf }

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(u uint64) { e.buf = binary.AppendUvarint(e.buf, u) }

// Varint appends a zigzag-encoded signed varint (small magnitudes of either
// sign stay small on the wire).
func (e *Encoder) Varint(i int64) { e.buf = binary.AppendVarint(e.buf, i) }

// Byte appends one raw byte.
func (e *Encoder) Byte(b byte) { e.buf = append(e.buf, b) }

// Bool appends a bool as one byte (0 or 1).
func (e *Encoder) Bool(b bool) {
	if b {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.buf = binary.AppendUvarint(e.buf, uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Bytes appends a length-prefixed byte slice; nil encodes as length 0.
func (e *Encoder) Bytes(b []byte) {
	e.buf = binary.AppendUvarint(e.buf, uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Len appends a slice or map element count.
func (e *Encoder) Len(n int) { e.buf = binary.AppendUvarint(e.buf, uint64(n)) }

// StringSlice appends a count-prefixed slice of strings.
func (e *Encoder) StringSlice(ss []string) {
	e.Len(len(ss))
	for _, s := range ss {
		e.String(s)
	}
}

// StringMap appends a count-prefixed map in ascending key order, so equal
// maps always encode to equal bytes.
func (e *Encoder) StringMap(m map[string]string) {
	e.Len(len(m))
	if len(m) == 0 {
		return
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e.String(k)
		e.String(m[k])
	}
}

// Decoder reads wire-encoded fields from a byte buffer. The first malformed
// field sets a sticky error; every later read returns a zero value, so
// unmarshal code reads all fields straight through and checks Err once.
type Decoder struct {
	data []byte
	off  int
	err  error
}

// NewDecoder returns a decoder over data (no frame header expected — use
// Unmarshal for framed messages).
func NewDecoder(data []byte) *Decoder { return &Decoder{data: data} }

// Err returns the sticky decode error, if any.
func (d *Decoder) Err() error { return d.err }

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// remaining reports the undecoded byte count.
func (d *Decoder) remaining() int { return len(d.data) - d.off }

// More reports whether undecoded bytes remain and no error is pending. It is
// the hook for optional trailing fields: an unmarshaler that has read every
// field an old encoder wrote can probe More to decode fields a newer encoder
// appended, keeping old bytes decodable without a version bump.
func (d *Decoder) More() bool { return d.err == nil && d.off < len(d.data) }

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	u, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.fail(fmt.Errorf("%w: bad uvarint at offset %d", ErrTruncated, d.off))
		return 0
	}
	d.off += n
	return u
}

// Varint reads a zigzag-encoded signed varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	i, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		d.fail(fmt.Errorf("%w: bad varint at offset %d", ErrTruncated, d.off))
		return 0
	}
	d.off += n
	return i
}

// Byte reads one raw byte.
func (d *Decoder) Byte() byte {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 1 {
		d.fail(fmt.Errorf("%w: byte at offset %d", ErrTruncated, d.off))
		return 0
	}
	b := d.data[d.off]
	d.off++
	return b
}

// Bool reads a bool, rejecting bytes other than 0 and 1 (a canonical
// encoding keeps round trips bit-identical).
func (d *Decoder) Bool() bool {
	b := d.Byte()
	if d.err != nil {
		return false
	}
	if b > 1 {
		d.fail(fmt.Errorf("wire: bad bool byte %#x at offset %d", b, d.off-1))
		return false
	}
	return b == 1
}

// String reads a length-prefixed string. The bytes are copied, so the result
// does not alias the input buffer.
func (d *Decoder) String() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(d.remaining()) {
		d.fail(fmt.Errorf("%w: string of %d bytes with %d left", ErrTruncated, n, d.remaining()))
		return ""
	}
	s := string(d.data[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// Bytes reads a length-prefixed byte slice (copied; length 0 decodes as
// nil).
func (d *Decoder) Bytes() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.remaining()) {
		d.fail(fmt.Errorf("%w: %d bytes with %d left", ErrTruncated, n, d.remaining()))
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, d.data[d.off:])
	d.off += int(n)
	return out
}

// Len reads an element count, bounded by the remaining bytes: every element
// costs at least one byte, so a count beyond that is hostile input and an
// allocation of that size would be unbounded.
func (d *Decoder) Len() int {
	n := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if n > uint64(d.remaining()) {
		d.fail(fmt.Errorf("%w: count %d with %d bytes left", ErrTruncated, n, d.remaining()))
		return 0
	}
	return int(n)
}

// StringSlice reads a count-prefixed slice of strings (length 0 decodes as
// nil).
func (d *Decoder) StringSlice() []string {
	n := d.Len()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.String())
	}
	if d.err != nil {
		return nil
	}
	return out
}

// StringMap reads a count-prefixed string map, rejecting unsorted or
// duplicate keys so every valid encoding is canonical (length 0 decodes as
// nil).
func (d *Decoder) StringMap() map[string]string {
	n := d.Len()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make(map[string]string, n)
	prev := ""
	for i := 0; i < n; i++ {
		k := d.String()
		v := d.String()
		if d.err != nil {
			return nil
		}
		if i > 0 && k <= prev {
			d.fail(fmt.Errorf("wire: map keys out of order (%q after %q)", k, prev))
			return nil
		}
		prev = k
		out[k] = v
	}
	return out
}
