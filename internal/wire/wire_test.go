package wire

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math"
	"strings"
	"testing"
)

// testMsg exercises every primitive the codec offers.
type testMsg struct {
	U  uint64
	I  int64
	B  byte
	OK bool
	S  string
	Bs []byte
	Ss []string
	M  map[string]string
}

func (m testMsg) MarshalWire(e *Encoder) {
	e.Uvarint(m.U)
	e.Varint(m.I)
	e.Byte(m.B)
	e.Bool(m.OK)
	e.String(m.S)
	e.Bytes(m.Bs)
	e.StringSlice(m.Ss)
	e.StringMap(m.M)
}

func (m *testMsg) UnmarshalWire(d *Decoder) error {
	m.U = d.Uvarint()
	m.I = d.Varint()
	m.B = d.Byte()
	m.OK = d.Bool()
	m.S = d.String()
	m.Bs = d.Bytes()
	m.Ss = d.StringSlice()
	m.M = d.StringMap()
	return d.Err()
}

func TestRoundTrip(t *testing.T) {
	msgs := []testMsg{
		{},
		{U: 1, I: -1, B: 0xff, OK: true, S: "hello", Bs: []byte{0, 1, 2}},
		{U: math.MaxUint64, I: math.MinInt64, S: strings.Repeat("x", 300)},
		{Ss: []string{"", "a", "bb"}, M: map[string]string{"k2": "v2", "k1": "v1", "": "zero"}},
	}
	for i, in := range msgs {
		data := Marshal(in)
		if !IsFrame(data) {
			t.Fatalf("msg %d: Marshal output is not a frame: % x", i, data[:3])
		}
		var out testMsg
		if err := Unmarshal(data, &out); err != nil {
			t.Fatalf("msg %d: Unmarshal: %v", i, err)
		}
		// Canonical form decodes empty containers as nil; normalize in.
		if len(in.Bs) == 0 {
			in.Bs = nil
		}
		if len(in.Ss) == 0 {
			in.Ss = nil
		}
		if len(in.M) == 0 {
			in.M = nil
		}
		if out.U != in.U || out.I != in.I || out.B != in.B || out.OK != in.OK || out.S != in.S ||
			!bytes.Equal(out.Bs, in.Bs) || len(out.Ss) != len(in.Ss) || len(out.M) != len(in.M) {
			t.Fatalf("msg %d: round trip mismatch:\n in: %+v\nout: %+v", i, in, out)
		}
		for j := range in.Ss {
			if out.Ss[j] != in.Ss[j] {
				t.Fatalf("msg %d: Ss[%d] = %q, want %q", i, j, out.Ss[j], in.Ss[j])
			}
		}
		for k, v := range in.M {
			if out.M[k] != v {
				t.Fatalf("msg %d: M[%q] = %q, want %q", i, k, out.M[k], v)
			}
		}
		// Re-encoding the decoded value must give the identical bytes.
		if again := Marshal(out); !bytes.Equal(again, data) {
			t.Fatalf("msg %d: re-encode drifted:\n 1st: % x\n 2nd: % x", i, data, again)
		}
	}
}

func TestMapEncodingIsSorted(t *testing.T) {
	m := testMsg{M: map[string]string{"b": "2", "a": "1", "c": "3"}}
	data := Marshal(m)
	for i := 0; i < 16; i++ {
		if !bytes.Equal(Marshal(m), data) {
			t.Fatal("map encoding is not deterministic across runs")
		}
	}
}

func TestUnmarshalRejects(t *testing.T) {
	good := Marshal(testMsg{S: "ok", U: 7})
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrNotFrame},
		{"gob-like", []byte{0x2b, 0x7f, 0x03}, ErrNotFrame},
		{"short header", good[:2], ErrNotFrame},
		{"truncated body", good[:len(good)-1], ErrTruncated},
		{"trailing bytes", append(append([]byte{}, good...), 0xAA), ErrTrailing},
	}
	for _, tc := range cases {
		var out testMsg
		err := Unmarshal(tc.data, &out)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
	// Wrong version is rejected too (distinct message, no sentinel).
	bad := append([]byte{}, good...)
	bad[2] = Version + 1
	var out testMsg
	if err := Unmarshal(bad, &out); err == nil || !strings.Contains(err.Error(), "unsupported version") {
		t.Errorf("future version: got %v, want unsupported-version error", err)
	}
}

func TestDecoderBoundsHostileLengths(t *testing.T) {
	// A string claiming 2^40 bytes in a 10-byte message must error, not
	// allocate.
	e := GetEncoder()
	defer PutEncoder(e)
	e.Uvarint(1 << 40)
	d := NewDecoder(e.Data())
	if s := d.String(); s != "" || d.Err() == nil {
		t.Fatalf("hostile string length: got %q, err %v", s, d.Err())
	}
	e.Reset()
	e.Uvarint(1 << 40)
	d = NewDecoder(e.Data())
	if n := d.Len(); n != 0 || d.Err() == nil {
		t.Fatalf("hostile count: got %d, err %v", n, d.Err())
	}
}

func TestDecoderRejectsNonCanonical(t *testing.T) {
	// Unsorted map keys.
	e := GetEncoder()
	e.Len(2)
	e.String("b")
	e.String("1")
	e.String("a")
	e.String("2")
	d := NewDecoder(e.Data())
	if m := d.StringMap(); m != nil || d.Err() == nil {
		t.Fatalf("unsorted map: got %v, err %v", m, d.Err())
	}
	PutEncoder(e)
	// Bool bytes other than 0/1.
	d = NewDecoder([]byte{2})
	if d.Bool(); d.Err() == nil {
		t.Fatal("bool byte 2 accepted")
	}
}

func TestStickyError(t *testing.T) {
	d := NewDecoder([]byte{})
	_ = d.Uvarint()
	first := d.Err()
	if first == nil {
		t.Fatal("expected error on empty input")
	}
	_ = d.String()
	_ = d.Bytes()
	if d.Err() != first {
		t.Fatalf("sticky error replaced: %v -> %v", first, d.Err())
	}
}

// TestGobCannotStartWithZero pins the property the self-describing header
// depends on: a gob stream never begins with 0x00, and a gob decoder fed a
// wire frame errors out promptly instead of hanging or succeeding.
func TestGobCannotStartWithZero(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(testMsg{S: "x"}); err != nil {
		t.Fatal(err)
	}
	if buf.Bytes()[0] == 0x00 {
		t.Fatalf("gob stream starts with 0x00: % x", buf.Bytes()[:4])
	}
	frame := Marshal(testMsg{S: "x"})
	var out testMsg
	if err := gob.NewDecoder(bytes.NewReader(frame)).Decode(&out); err == nil {
		t.Fatal("gob decoder accepted a wire frame")
	}
}

func TestEncoderPoolReuse(t *testing.T) {
	e := GetEncoder()
	e.String("scratch")
	PutEncoder(e)
	e2 := GetEncoder()
	if len(e2.Data()) != 0 {
		t.Fatalf("pooled encoder not reset: % x", e2.Data())
	}
	PutEncoder(e2)
}
