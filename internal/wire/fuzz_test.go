// Fuzz battery for the wire codec, run against the real hot message types
// (this is an external test package, so it can import core and registry
// without a cycle — they import wire).
//
// FuzzWireRoundTrip: any message value round-trips bit-identically — encode,
// decode, re-encode must give the same bytes (the property replays and
// golden vectors rest on). FuzzWireDecode: arbitrary bytes never panic the
// decoder; every input either errors or yields a message whose own encoding
// decodes again.
package wire_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/registry"
	"repro/internal/sign"
	"repro/internal/trace"
	"repro/internal/wire"
)

// buildMessages derives one instance of each hot message type from the fuzz
// inputs, exercising every primitive: varints of both signs, strings, byte
// slices, string slices, maps, bools and nesting.
func buildMessages(s1, s2, s3 string, i1, i2 int64, b1 []byte, ok bool) []wire.Marshaler {
	ext := core.Extension{
		ID:       s1,
		Name:     s2,
		Version:  int(int32(i1)),
		Priority: int(int32(i2)),
		Advices: []core.AdviceSpec{{
			Name:    s2,
			Kind:    "call-before",
			Pattern: s3,
			Builtin: s1,
			Config:  map[string]string{s1: s2, s3: s1},
			Code:    s3,
		}},
		Requires: []string{s1, s2},
		Caps:     []string{s3},
		Meta:     map[string]string{s2: s3},
	}
	signed := core.SignedExtension{
		Ext: ext,
		Sig: sign.Signature{SignerName: s1, PublicKey: b1, Sig: b1},
	}
	return []wire.Marshaler{
		core.RenewExtReq{LeaseID: s1, DurMillis: i1},
		core.RenewExtResp{DurMillis: i2},
		core.RenewBatchReq{Items: []core.RenewExtReq{{LeaseID: s1, DurMillis: i1}, {LeaseID: s2, DurMillis: i2}}},
		core.RenewBatchResp{Items: []core.RenewItemResp{{DurMillis: i1, Err: s3}}},
		core.InstallReq{Signed: signed, BaseAddr: s2, DurMillis: i1},
		core.InstallResp{LeaseID: s3},
		core.ApplyBatchReq{Installs: []core.InstallReq{{Signed: signed, BaseAddr: s1, DurMillis: i2}}, Revokes: []string{s1, s2, s3}},
		core.ApplyBatchResp{
			Installs: []core.InstallItemResp{{LeaseID: s1, Err: s2}},
			Revokes:  []core.RevokeItemResp{{Err: s3}},
		},
		core.RevokeReq{Name: s1},
		core.ListResp{Extensions: []core.ExtensionInfo{{ID: s1, Name: s2, Version: int(int32(i1)), BaseAddr: s3, System: ok}}},
		core.InventoryResp{Node: s1, Items: []core.InventoryItem{{Name: s2, Version: int(int32(i2)), BaseAddr: s3, LeaseID: s1, DeadlineMillis: i1}}},
		core.EmptyResp{},
		registry.RegisterReq{Item: registry.ServiceItem{ID: s1, Name: s2, Addr: s3, Attrs: map[string]string{s1: s2}}, DurMillis: i1},
		registry.LeaseResp{LeaseID: s1, DurMillis: i2},
		registry.FindReq{Tmpl: registry.Template{Name: s1, Attrs: map[string]string{s2: s3, s1: s2}}},
		registry.FindResp{Items: []registry.ServiceItem{{ID: s1, Name: s2, Addr: s3}}},
		registry.WatchReq{Tmpl: registry.Template{Name: s3}, DurMillis: i1, Addr: s1, Method: s2},
		trace.SpanContext{TraceID: s1, SpanID: s2},
	}
}

func FuzzWireRoundTrip(f *testing.F) {
	f.Add("lease-1", "policy", "cell/*", int64(60_000), int64(-7), []byte{1, 2, 3}, true)
	f.Add("", "", "", int64(0), int64(0), []byte(nil), false)
	f.Add("☃ unicode", "\x00nul", "long"+string(make([]byte, 300)), int64(1)<<62, int64(-1)<<62, bytes.Repeat([]byte{0xff}, 64), true)
	f.Fuzz(func(t *testing.T, s1, s2, s3 string, i1, i2 int64, b1 []byte, ok bool) {
		for _, msg := range buildMessages(s1, s2, s3, i1, i2, b1, ok) {
			data := wire.Marshal(msg)
			if !wire.IsFrame(data) {
				t.Fatalf("%T: marshal produced a non-frame", msg)
			}
			// Decode into a fresh value of the same type.
			out := reflect.New(reflect.TypeOf(msg)).Interface().(wire.Unmarshaler)
			if err := wire.Unmarshal(data, out); err != nil {
				t.Fatalf("%T: unmarshal of own encoding: %v", msg, err)
			}
			again := wire.Marshal(reflect.ValueOf(out).Elem().Interface().(wire.Marshaler))
			if !bytes.Equal(data, again) {
				t.Fatalf("%T: round trip not bit-identical:\n 1st: % x\n 2nd: % x", msg, data, again)
			}
		}
	})
}

func FuzzWireDecode(f *testing.F) {
	// Seed with valid encodings, truncations and corruptions of each type.
	for _, msg := range buildMessages("a", "bb", "ccc", 1, -2, []byte{9}, true) {
		data := wire.Marshal(msg)
		f.Add(data)
		f.Add(data[:len(data)-1])
		if len(data) > 4 {
			mid := append([]byte{}, data...)
			mid[4] ^= 0xff
			f.Add(mid)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0x00, 0xC6, 0x01})
	f.Add([]byte{0x00, 0xC6, 0x02, 0x01})
	f.Add(bytes.Repeat([]byte{0xff}, 32))
	targets := func() []wire.Unmarshaler {
		return []wire.Unmarshaler{
			&core.RenewBatchReq{},
			&core.ApplyBatchReq{},
			&core.InstallReq{},
			&core.InventoryResp{},
			&core.ListResp{},
			&registry.RegisterReq{},
			&registry.FindResp{},
			&registry.WatchReq{},
			&trace.SpanContext{},
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, u := range targets() {
			// Must never panic and never allocate beyond the input's size
			// (hostile length prefixes are bounds-checked inside).
			if err := wire.Unmarshal(data, u); err != nil {
				continue
			}
			// Decoded cleanly: the value must be a valid message, i.e. its
			// own encoding decodes again.
			m := reflect.ValueOf(u).Elem().Interface().(wire.Marshaler)
			out := reflect.New(reflect.TypeOf(u).Elem()).Interface().(wire.Unmarshaler)
			if err := wire.Unmarshal(wire.Marshal(m), out); err != nil {
				t.Fatalf("%T: decoded value does not re-encode cleanly: %v", u, err)
			}
		}
	})
}
