// Golden wire-format vectors: one frozen encoding per hot message type,
// checked byte for byte. Once old nodes exist in a fleet, the format cannot
// change silently — any intentional change must bump wire.Version and
// regenerate these files with:
//
//	WIRE_GOLDEN_UPDATE=1 go test ./internal/wire/ -run TestGoldenVectors
package wire_test

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/registry"
	"repro/internal/sign"
	"repro/internal/trace"
	"repro/internal/wire"
)

// goldenMessages are fixed, fully populated values of every hot message
// type. Field values are arbitrary but frozen: changing them invalidates the
// vectors just as a codec change would.
func goldenMessages() map[string]wire.Marshaler {
	signed := core.SignedExtension{
		Ext: core.Extension{
			ID:       "ext-0001",
			Name:     "policy",
			Version:  3,
			Priority: 10,
			Advices: []core.AdviceSpec{{
				Name:    "audit",
				Kind:    "call-before",
				Pattern: "cell/*/enter",
				Builtin: "",
				Config:  map[string]string{"level": "info", "sink": "log"},
				Code:    "PUSHK 1\nRET",
			}},
			Requires: []string{"session"},
			Caps:     []string{"hostcall.log"},
			Meta:     map[string]string{"origin": "base-1"},
		},
		Sig: sign.Signature{
			SignerName: "base-1",
			PublicKey:  []byte{0x01, 0x02, 0x03, 0x04},
			Sig:        []byte{0xAA, 0xBB, 0xCC},
		},
	}
	return map[string]wire.Marshaler{
		"renew_ext_req":    core.RenewExtReq{LeaseID: "lease-42", DurMillis: 60_000},
		"renew_ext_resp":   core.RenewExtResp{DurMillis: 45_000},
		"renew_batch_req":  core.RenewBatchReq{Items: []core.RenewExtReq{{LeaseID: "lease-1", DurMillis: 60_000}, {LeaseID: "lease-2", DurMillis: 30_000}}},
		"renew_batch_resp": core.RenewBatchResp{Items: []core.RenewItemResp{{DurMillis: 60_000}, {DurMillis: 0, Err: "lease: expired"}}},
		// The observability piggyback rides as optional trailing fields: the
		// two vectors above pin that their absence keeps the old bytes, these
		// pin the encoding when present.
		"renew_batch_req_obs": core.RenewBatchReq{Items: []core.RenewExtReq{{LeaseID: "lease-1", DurMillis: 60_000}}, WantObs: true},
		"renew_batch_resp_obs": core.RenewBatchResp{
			Items: []core.RenewItemResp{{DurMillis: 60_000}},
			Obs: &core.ObsReport{
				Methods: []core.ObsMethodDelta{
					{Method: "midas.renewBatch", Count: 12, Errors: 1, SumNs: 3_456_000},
					{Method: "plotter.draw", Count: 90, SumNs: 77_000},
				},
				SpansDropped: 5,
				SampledOut:   990,
				TailKept:     3,
			},
		},
		"install_req":      core.InstallReq{Signed: signed, BaseAddr: "base-1", DurMillis: 60_000},
		"install_resp":     core.InstallResp{LeaseID: "lease-77"},
		"apply_batch_req":  core.ApplyBatchReq{Installs: []core.InstallReq{{Signed: signed, BaseAddr: "base-1", DurMillis: 60_000}}, Revokes: []string{"stale-ext"}},
		"apply_batch_resp": core.ApplyBatchResp{Installs: []core.InstallItemResp{{LeaseID: "lease-78"}}, Revokes: []core.RevokeItemResp{{}}},
		"revoke_req":       core.RevokeReq{Name: "policy"},
		"list_resp":        core.ListResp{Extensions: []core.ExtensionInfo{{ID: "ext-0001", Name: "policy", Version: 3, BaseAddr: "base-1", System: false}, {ID: "ext-0002", Name: "session", Version: 1, BaseAddr: "base-1", System: true}}},
		"empty_resp":       core.EmptyResp{},
		"inventory_resp":   core.InventoryResp{Node: "node-00017", Items: []core.InventoryItem{{Name: "policy", Version: 3, BaseAddr: "base-1", LeaseID: "lease-42", DeadlineMillis: 1_060_000}}},
		"register_req":     registry.RegisterReq{Item: registry.ServiceItem{ID: "svc-9", Name: "midas.adaptation", Addr: "10.0.0.9:4410", Attrs: map[string]string{"cell": "north", "tier": "edge"}}, DurMillis: 120_000},
		"lease_resp":       registry.LeaseResp{LeaseID: "rl-3", DurMillis: 120_000},
		"renew_req":        registry.RenewReq{LeaseID: "rl-3", DurMillis: 120_000},
		"deregister_req":   registry.DeregisterReq{ServiceID: "svc-9"},
		"find_req":         registry.FindReq{Tmpl: registry.Template{Name: "midas.*", Attrs: map[string]string{"cell": "north"}}},
		"find_resp":        registry.FindResp{Items: []registry.ServiceItem{{ID: "svc-9", Name: "midas.adaptation", Addr: "10.0.0.9:4410"}}},
		"watch_req":        registry.WatchReq{Tmpl: registry.Template{Name: "midas.*"}, DurMillis: 60_000, Addr: "node-3", Method: "lookup.event"},
		"watch_resp":       registry.WatchResp{WatchID: "w-5", DurMillis: 60_000},
		"renew_watch_req":  registry.RenewWatchReq{WatchID: "w-5", DurMillis: 60_000},
		"unwatch_req":      registry.UnwatchReq{WatchID: "w-5"},
		"span_context":     trace.SpanContext{TraceID: "t-0123456789abcdef", SpanID: "s-00ff"},
	}
}

func TestGoldenVectors(t *testing.T) {
	update := os.Getenv("WIRE_GOLDEN_UPDATE") != ""
	for name, msg := range goldenMessages() {
		t.Run(name, func(t *testing.T) {
			got := wire.Marshal(msg)
			path := filepath.Join("testdata", name+".hex")
			if update {
				if err := os.WriteFile(path, []byte(hex.EncodeToString(got)+"\n"), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden vector (WIRE_GOLDEN_UPDATE=1 to generate): %v", err)
			}
			want, err := hex.DecodeString(string(bytes.TrimSpace(raw)))
			if err != nil {
				t.Fatalf("corrupt golden vector %s: %v", path, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("wire format drifted for %s — old nodes would stop decoding this; "+
					"bump wire.Version instead of changing the format in place\n got: %s\nwant: %s",
					name, hex.EncodeToString(got), hex.EncodeToString(want))
			}
			// The frozen bytes must also decode back to the exact value.
			out := reflect.New(reflect.TypeOf(msg)).Interface().(wire.Unmarshaler)
			if err := wire.Unmarshal(want, out); err != nil {
				t.Fatalf("golden vector does not decode: %v", err)
			}
			if !reflect.DeepEqual(reflect.ValueOf(out).Elem().Interface(), msg) {
				t.Fatalf("golden vector decodes to a different value:\n got: %#v\nwant: %#v",
					reflect.ValueOf(out).Elem().Interface(), msg)
			}
		})
	}
	if update {
		fmt.Println("golden vectors regenerated under internal/wire/testdata/")
	}
}
