// Package robot models the lowest layer of Fig. 3a: software models and
// macros for operating the robot hardware (motors and sensors), as provided
// by the LeJOS-based RCX controller in the paper's testbed. Every motor
// operation and every position change flows through weaver join points, so
// MIDAS extensions can monitor, veto, replicate or rescale hardware activity
// without the robot code knowing.
package robot

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/aop"
	"repro/internal/clock"
	"repro/internal/lvm"
	"repro/internal/weave"
)

// Command is one executed hardware action, kept in the controller trace.
type Command struct {
	Device   string
	Action   string
	Value    int64
	AtMillis int64
}

// Motor is one actuator. Its class/field names ("Motor", "pos") are the
// anchor points for crosscut patterns such as Motor.*(..) and Motor.pos.
type Motor struct {
	id   string
	obj  *lvm.Object
	ctrl *Controller

	rotateHooks *weave.MethodHooks
	stopHooks   *weave.MethodHooks
	posSite     *weave.Site

	mu  sync.Mutex
	pos int64
}

// ID returns the motor identity (e.g. "x").
func (m *Motor) ID() string { return m.id }

// Position returns the accumulated rotation.
func (m *Motor) Position() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pos
}

// Rotate turns the motor by delta degrees, passing through the method-entry
// and method-exit join points of Motor.rotate and the field-set join point
// of Motor.pos. Extensions may veto (error returned) or rescale the delta.
func (m *Motor) Rotate(delta int64) error {
	_, err := m.rotateHooks.Invoke(m.obj, []lvm.Value{lvm.Int(delta)}, func(args []lvm.Value) (lvm.Value, error) {
		d := args[0].AsInt()
		if err := m.setPos(m.Position() + d); err != nil {
			return lvm.Nil(), err
		}
		m.ctrl.record(m, "rotate", d)
		return lvm.Int(m.Position()), nil
	})
	return err
}

// Stop halts the motor (a no-op in the simulation beyond its join points).
func (m *Motor) Stop() error {
	_, err := m.stopHooks.Invoke(m.obj, nil, func([]lvm.Value) (lvm.Value, error) {
		m.ctrl.record(m, "stop", 0)
		return lvm.Nil(), nil
	})
	return err
}

// setPos writes the position through the Motor.pos field-set join point.
func (m *Motor) setPos(v int64) error {
	if m.posSite.Active() {
		ctx := weave.GetContext()
		defer weave.PutContext(ctx)
		ctx.Kind = aop.FieldSet
		ctx.Sig = aop.Signature{Class: "Motor"}
		ctx.Field = "pos"
		ctx.Self = m.obj
		ctx.Args = append(ctx.Args[:0], lvm.Int(v))
		if err := m.posSite.Dispatch(ctx); err != nil {
			return err
		}
		v = ctx.Args[0].AsInt()
	}
	m.mu.Lock()
	m.pos = v
	m.mu.Unlock()
	m.obj.SetFieldByName("pos", lvm.Int(v))
	return nil
}

// SensorEvent is delivered when a sensor crosses its trigger threshold.
type SensorEvent struct {
	Sensor   string
	Value    int64
	AtMillis int64
}

// Sensor is one input device; the simulation (or tests) feed it values, and
// values at or above the trigger threshold interrupt the running task.
type Sensor struct {
	id      string
	trigger int64
	ctrl    *Controller

	mu    sync.Mutex
	value int64
}

// ID returns the sensor identity.
func (s *Sensor) ID() string { return s.id }

// Read returns the current value.
func (s *Sensor) Read() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.value
}

// Feed injects a new reading (the simulated physical world). Crossing the
// trigger threshold freezes the hardware and emits a SensorEvent, mirroring
// "the hardware completely freezes its activity and notifies the robot
// application layer" (§4.1).
func (s *Sensor) Feed(v int64) {
	s.mu.Lock()
	prev := s.value
	s.value = v
	trigger := s.trigger
	s.mu.Unlock()
	if prev < trigger && v >= trigger {
		s.ctrl.interrupt(SensorEvent{Sensor: s.id, Value: v, AtMillis: s.ctrl.clk.Now().UnixMilli()})
	}
}

// Controller is the RCX-like device controller: it owns motors and sensors,
// offers a homogeneous view of the hardware, executes hardware macros and
// freezes on sensor interrupts.
type Controller struct {
	clk    clock.Clock
	weaver *weave.Weaver

	mu      sync.Mutex
	motors  map[string]*Motor
	sensors map[string]*Sensor
	trace   []Command
	frozen  bool
	events  chan SensorEvent

	motorClass  *lvm.Class
	rotateHooks *weave.MethodHooks
	stopHooks   *weave.MethodHooks
	posSite     *weave.Site
}

// NewController builds a controller whose devices are woven through weaver.
func NewController(weaver *weave.Weaver, clk clock.Clock) *Controller {
	if clk == nil {
		clk = clock.Real{}
	}
	motorClass := lvm.NewClass("Motor")
	motorClass.AddField("id")
	motorClass.AddField("pos")
	c := &Controller{
		clk:        clk,
		weaver:     weaver,
		motors:     make(map[string]*Motor),
		sensors:    make(map[string]*Sensor),
		events:     make(chan SensorEvent, 16),
		motorClass: motorClass,
		rotateHooks: weaver.HookMethod(aop.Signature{
			Class: "Motor", Method: "rotate", Return: "int", Params: []string{"int"},
		}),
		stopHooks: weaver.HookMethod(aop.Signature{
			Class: "Motor", Method: "stop", Return: "void",
		}),
		posSite: weaver.RegisterFieldSite(aop.FieldSet, "Motor", "pos"),
	}
	return c
}

// AddMotor registers a motor with the given identity.
func (c *Controller) AddMotor(id string) (*Motor, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.motors[id]; dup {
		return nil, fmt.Errorf("robot: motor %q exists", id)
	}
	obj := c.motorClass.New()
	obj.SetFieldByName("id", lvm.Str(id))
	m := &Motor{
		id:          id,
		obj:         obj,
		ctrl:        c,
		rotateHooks: c.rotateHooks,
		stopHooks:   c.stopHooks,
		posSite:     c.posSite,
	}
	c.motors[id] = m
	return m, nil
}

// AddSensor registers a sensor that interrupts at or above trigger.
func (c *Controller) AddSensor(id string, trigger int64) (*Sensor, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.sensors[id]; dup {
		return nil, fmt.Errorf("robot: sensor %q exists", id)
	}
	s := &Sensor{id: id, trigger: trigger, ctrl: c}
	c.sensors[id] = s
	return s, nil
}

// Motor returns the named motor, or nil.
func (c *Controller) Motor(id string) *Motor {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.motors[id]
}

// Sensor returns the named sensor, or nil.
func (c *Controller) Sensor(id string) *Sensor {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sensors[id]
}

// Macro is one hardware macro, e.g. "turn motor x by 30 degrees".
type Macro struct {
	Motor string
	Delta int64
	Pause time.Duration // simulated execution time
}

// Execute runs one hardware macro. It fails when the hardware is frozen by a
// sensor interrupt or when an extension vetoes the movement.
func (c *Controller) Execute(m Macro) error {
	c.mu.Lock()
	frozen := c.frozen
	motor := c.motors[m.Motor]
	c.mu.Unlock()
	if frozen {
		return ErrFrozen
	}
	if motor == nil {
		return fmt.Errorf("robot: no motor %q", m.Motor)
	}
	if err := motor.Rotate(m.Delta); err != nil {
		return err
	}
	if m.Pause > 0 {
		<-c.clk.After(m.Pause)
	}
	return nil
}

// ErrFrozen indicates a sensor interrupt froze the hardware.
var ErrFrozen = errFrozen{}

type errFrozen struct{}

func (errFrozen) Error() string { return "robot: hardware frozen by sensor event" }

// Frozen reports whether the hardware is frozen.
func (c *Controller) Frozen() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.frozen
}

// Resume unfreezes the hardware after an interrupt was handled.
func (c *Controller) Resume() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.frozen = false
}

// Events exposes the sensor interrupt channel for the task layer.
func (c *Controller) Events() <-chan SensorEvent { return c.events }

// Trace returns a copy of the executed command history.
func (c *Controller) Trace() []Command {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Command, len(c.trace))
	copy(out, c.trace)
	return out
}

func (c *Controller) record(m *Motor, action string, value int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.trace = append(c.trace, Command{
		Device:   "motor:" + m.id,
		Action:   action,
		Value:    value,
		AtMillis: c.clk.Now().UnixMilli(),
	})
}

func (c *Controller) interrupt(ev SensorEvent) {
	c.mu.Lock()
	c.frozen = true
	c.mu.Unlock()
	select {
	case c.events <- ev:
	default:
		// Event queue full: the freeze still holds; the task layer will
		// observe it on its next macro.
	}
}
