package robot

import (
	"errors"
	"testing"

	"repro/internal/aop"
	"repro/internal/lvm"
	"repro/internal/weave"
)

func newControllerWithMotor(t *testing.T) (*weave.Weaver, *Controller, *Motor) {
	t.Helper()
	w := weave.New()
	c := NewController(w, nil)
	m, err := c.AddMotor("x")
	if err != nil {
		t.Fatal(err)
	}
	return w, c, m
}

func TestMotorRotateAccumulates(t *testing.T) {
	_, c, m := newControllerWithMotor(t)
	if err := m.Rotate(30); err != nil {
		t.Fatal(err)
	}
	if err := m.Rotate(-10); err != nil {
		t.Fatal(err)
	}
	if m.Position() != 20 {
		t.Errorf("pos = %d", m.Position())
	}
	if err := m.Stop(); err != nil {
		t.Fatal(err)
	}
	trace := c.Trace()
	if len(trace) != 3 || trace[0].Action != "rotate" || trace[2].Action != "stop" {
		t.Errorf("trace = %+v", trace)
	}
	if trace[0].Device != "motor:x" {
		t.Errorf("device = %s", trace[0].Device)
	}
}

func TestMotorAdviceInterceptsAndScales(t *testing.T) {
	w, _, m := newControllerWithMotor(t)
	scale := &aop.Aspect{Name: "scale", Advices: []aop.Advice{
		aop.BeforeCall("Motor.rotate(..)", aop.BodyFunc(func(ctx *aop.Context) error {
			ctx.SetArg(0, lvm.Int(ctx.Arg(0).AsInt()*2))
			return nil
		})),
	}}
	if err := w.Insert(scale); err != nil {
		t.Fatal(err)
	}
	if err := m.Rotate(10); err != nil {
		t.Fatal(err)
	}
	if m.Position() != 20 {
		t.Errorf("scaled pos = %d, want 20", m.Position())
	}
}

func TestMotorAdviceVetoes(t *testing.T) {
	w, _, m := newControllerWithMotor(t)
	guard := &aop.Aspect{Name: "guard", Advices: []aop.Advice{
		aop.BeforeCall("Motor.rotate(..)", aop.BodyFunc(func(ctx *aop.Context) error {
			if ctx.Arg(0).AsInt() > 90 {
				ctx.Abort("too far")
			}
			return nil
		})),
	}}
	if err := w.Insert(guard); err != nil {
		t.Fatal(err)
	}
	if err := m.Rotate(45); err != nil {
		t.Fatal(err)
	}
	if err := m.Rotate(120); err == nil {
		t.Fatal("veto did not propagate")
	}
	if m.Position() != 45 {
		t.Errorf("vetoed rotation moved motor: %d", m.Position())
	}
}

func TestFieldSetJoinPointFires(t *testing.T) {
	w, _, m := newControllerWithMotor(t)
	var observed []int64
	qa := &aop.Aspect{Name: "qa", Advices: []aop.Advice{
		aop.OnFieldSet("Motor.pos", aop.BodyFunc(func(ctx *aop.Context) error {
			observed = append(observed, ctx.Arg(0).AsInt())
			return nil
		})),
	}}
	if err := w.Insert(qa); err != nil {
		t.Fatal(err)
	}
	if err := m.Rotate(5); err != nil {
		t.Fatal(err)
	}
	if err := m.Rotate(7); err != nil {
		t.Fatal(err)
	}
	if len(observed) != 2 || observed[0] != 5 || observed[1] != 12 {
		t.Errorf("observed = %v", observed)
	}
}

func TestSensorInterruptFreezes(t *testing.T) {
	w := weave.New()
	c := NewController(w, nil)
	if _, err := c.AddMotor("x"); err != nil {
		t.Fatal(err)
	}
	s, err := c.AddSensor("touch", 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Execute(Macro{Motor: "x", Delta: 1}); err != nil {
		t.Fatal(err)
	}
	s.Feed(50) // below threshold
	if c.Frozen() {
		t.Fatal("frozen below threshold")
	}
	s.Feed(150) // obstacle!
	if !c.Frozen() {
		t.Fatal("not frozen at threshold")
	}
	if err := c.Execute(Macro{Motor: "x", Delta: 1}); !errors.Is(err, ErrFrozen) {
		t.Fatalf("frozen execute = %v", err)
	}
	select {
	case ev := <-c.Events():
		if ev.Sensor != "touch" || ev.Value != 150 {
			t.Errorf("event = %+v", ev)
		}
	default:
		t.Fatal("no event delivered")
	}
	c.Resume()
	if err := c.Execute(Macro{Motor: "x", Delta: 1}); err != nil {
		t.Fatalf("after resume: %v", err)
	}
	if s.Read() != 150 {
		t.Errorf("Read = %d", s.Read())
	}
}

func TestDuplicateDevices(t *testing.T) {
	w := weave.New()
	c := NewController(w, nil)
	if _, err := c.AddMotor("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddMotor("x"); err == nil {
		t.Error("duplicate motor accepted")
	}
	if _, err := c.AddSensor("s", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddSensor("s", 1); err == nil {
		t.Error("duplicate sensor accepted")
	}
	if c.Motor("x") == nil || c.Motor("nope") != nil {
		t.Error("Motor lookup broken")
	}
	if c.Sensor("s") == nil || c.Sensor("nope") != nil {
		t.Error("Sensor lookup broken")
	}
}

func TestExecuteUnknownMotor(t *testing.T) {
	w := weave.New()
	c := NewController(w, nil)
	if err := c.Execute(Macro{Motor: "ghost", Delta: 1}); err == nil {
		t.Fatal("unknown motor accepted")
	}
}
