package registry

import (
	"context"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/event"
	"repro/internal/lease"
	"repro/internal/trace"
	"repro/internal/transport"
)

// RPC method names served by a lookup Server.
const (
	MethodRegister   = "lookup.register"
	MethodRenew      = "lookup.renew"
	MethodDeregister = "lookup.deregister"
	MethodFind       = "lookup.find"
	MethodWatch      = "lookup.watch"
	MethodRenewWatch = "lookup.renewWatch"
	MethodUnwatch    = "lookup.unwatch"
)

// Wire types.
type (
	// RegisterReq advertises a service item.
	RegisterReq struct {
		Item      ServiceItem
		DurMillis int64
	}
	// LeaseResp carries a granted or renewed lease.
	LeaseResp struct {
		LeaseID   string
		DurMillis int64
	}
	// RenewReq renews a registration lease.
	RenewReq struct {
		LeaseID   string
		DurMillis int64
	}
	// DeregisterReq removes a service.
	DeregisterReq struct {
		ServiceID string
	}
	// FindReq queries by template.
	FindReq struct {
		Tmpl Template
	}
	// FindResp lists matches.
	FindResp struct {
		Items []ServiceItem
	}
	// WatchReq registers a remote watcher; events are delivered to
	// Addr/Method as event.Notification with an Event payload.
	WatchReq struct {
		Tmpl      Template
		DurMillis int64
		Addr      string
		Method    string
	}
	// WatchResp identifies the watcher and its lease.
	WatchResp struct {
		WatchID   string
		DurMillis int64
	}
	// RenewWatchReq renews a watcher lease.
	RenewWatchReq struct {
		WatchID   string
		DurMillis int64
	}
	// UnwatchReq removes a watcher.
	UnwatchReq struct {
		WatchID string
	}
	// Empty is the empty response.
	Empty struct{}
)

// Server exposes a Lookup over a transport Mux, delivering watcher events as
// remote events through an event.Dispatcher.
type Server struct {
	lookup     *Lookup
	dispatcher *event.Dispatcher

	mu   sync.Mutex
	subs map[string]string // watchID -> dispatcher subscription id
}

// NewServer wires lookup into mux. caller is used to deliver watcher events;
// name identifies this lookup service as an event source.
func NewServer(name string, lookup *Lookup, mux *transport.Mux, caller transport.Caller, clk clock.Clock) *Server {
	s := &Server{
		lookup:     lookup,
		dispatcher: event.NewDispatcher(name, caller, clk),
		subs:       make(map[string]string),
	}

	transport.Register(mux, MethodRegister, func(ctx context.Context, req RegisterReq) (LeaseResp, error) {
		l, err := lookup.RegisterCtx(ctx, req.Item, time.Duration(req.DurMillis)*time.Millisecond)
		if err != nil {
			return LeaseResp{}, err
		}
		return LeaseResp{LeaseID: string(l.ID), DurMillis: req.DurMillis}, nil
	})
	transport.Register(mux, MethodRenew, func(_ context.Context, req RenewReq) (LeaseResp, error) {
		l, err := lookup.Renew(lease.ID(req.LeaseID), time.Duration(req.DurMillis)*time.Millisecond)
		if err != nil {
			return LeaseResp{}, err
		}
		return LeaseResp{LeaseID: string(l.ID), DurMillis: req.DurMillis}, nil
	})
	transport.Register(mux, MethodDeregister, func(_ context.Context, req DeregisterReq) (Empty, error) {
		return Empty{}, lookup.Deregister(req.ServiceID)
	})
	transport.Register(mux, MethodFind, func(_ context.Context, req FindReq) (FindResp, error) {
		return FindResp{Items: lookup.Find(req.Tmpl)}, nil
	})
	transport.Register(mux, MethodWatch, func(_ context.Context, req WatchReq) (WatchResp, error) {
		return s.watch(req)
	})
	transport.Register(mux, MethodRenewWatch, func(_ context.Context, req RenewWatchReq) (LeaseResp, error) {
		l, err := lookup.RenewWatch(req.WatchID, time.Duration(req.DurMillis)*time.Millisecond)
		if err != nil {
			return LeaseResp{}, err
		}
		return LeaseResp{LeaseID: string(l.ID), DurMillis: req.DurMillis}, nil
	})
	transport.Register(mux, MethodUnwatch, func(_ context.Context, req UnwatchReq) (Empty, error) {
		lookup.Unwatch(req.WatchID)
		return Empty{}, nil
	})
	return s
}

func (s *Server) watch(req WatchReq) (WatchResp, error) {
	// Event delivery is leased implicitly through the lookup watcher; the
	// dispatcher subscription lives until the watcher is removed.
	subID, _ := s.dispatcher.Subscribe(req.Addr, req.Method, 365*24*time.Hour)
	var watchID string
	watchID, _ = s.lookup.WatchFull(req.Tmpl, time.Duration(req.DurMillis)*time.Millisecond,
		func(ev Event) {
			// Deliver under the registrant's span context so the watcher's
			// reaction joins its trace.
			ectx := trace.NewContext(context.Background(), ev.Trace)
			_ = s.dispatcher.PublishToCtx(ectx, subID, "registry."+ev.Kind.String(), ev)
		},
		func() {
			s.dispatcher.Cancel(subID)
			s.mu.Lock()
			delete(s.subs, watchID)
			s.mu.Unlock()
		})
	s.mu.Lock()
	s.subs[watchID] = subID
	s.mu.Unlock()
	return WatchResp{WatchID: watchID, DurMillis: req.DurMillis}, nil
}

// Close releases dispatcher resources.
func (s *Server) Close() { s.dispatcher.Close() }

// Client is a typed lookup-service client bound to one lookup address.
type Client struct {
	Caller transport.Caller
	Addr   string
	// Timeout bounds each RPC; default 2s.
	Timeout time.Duration
}

func (c *Client) ctx() (context.Context, context.CancelFunc) {
	return c.ctxFrom(context.Background())
}

func (c *Client) ctxFrom(parent context.Context) (context.Context, context.CancelFunc) {
	d := c.Timeout
	if d <= 0 {
		d = 2 * time.Second
	}
	return context.WithTimeout(parent, d)
}

// Register advertises item.
func (c *Client) Register(item ServiceItem, dur time.Duration) (lease.ID, error) {
	return c.RegisterCtx(context.Background(), item, dur)
}

// RegisterCtx is Register preserving the caller's context (and any span
// context on it) so the registration joins an ongoing trace.
func (c *Client) RegisterCtx(ctx context.Context, item ServiceItem, dur time.Duration) (lease.ID, error) {
	ctx, cancel := c.ctxFrom(ctx)
	defer cancel()
	resp, err := transport.Invoke[RegisterReq, LeaseResp](ctx, c.Caller, c.Addr, MethodRegister,
		RegisterReq{Item: item, DurMillis: dur.Milliseconds()})
	if err != nil {
		return "", err
	}
	return lease.ID(resp.LeaseID), nil
}

// Renew extends a registration lease.
func (c *Client) Renew(id lease.ID, dur time.Duration) error {
	ctx, cancel := c.ctx()
	defer cancel()
	_, err := transport.Invoke[RenewReq, LeaseResp](ctx, c.Caller, c.Addr, MethodRenew,
		RenewReq{LeaseID: string(id), DurMillis: dur.Milliseconds()})
	return err
}

// Deregister removes a service.
func (c *Client) Deregister(serviceID string) error {
	ctx, cancel := c.ctx()
	defer cancel()
	_, err := transport.Invoke[DeregisterReq, Empty](ctx, c.Caller, c.Addr, MethodDeregister,
		DeregisterReq{ServiceID: serviceID})
	return err
}

// Find queries by template.
func (c *Client) Find(tmpl Template) ([]ServiceItem, error) {
	ctx, cancel := c.ctx()
	defer cancel()
	resp, err := transport.Invoke[FindReq, FindResp](ctx, c.Caller, c.Addr, MethodFind, FindReq{Tmpl: tmpl})
	if err != nil {
		return nil, err
	}
	return resp.Items, nil
}

// Watch registers a remote watcher delivering to addr/method.
func (c *Client) Watch(tmpl Template, dur time.Duration, addr, method string) (string, error) {
	ctx, cancel := c.ctx()
	defer cancel()
	resp, err := transport.Invoke[WatchReq, WatchResp](ctx, c.Caller, c.Addr, MethodWatch,
		WatchReq{Tmpl: tmpl, DurMillis: dur.Milliseconds(), Addr: addr, Method: method})
	if err != nil {
		return "", err
	}
	return resp.WatchID, nil
}

// RenewWatch extends a watcher lease.
func (c *Client) RenewWatch(watchID string, dur time.Duration) error {
	ctx, cancel := c.ctx()
	defer cancel()
	_, err := transport.Invoke[RenewWatchReq, LeaseResp](ctx, c.Caller, c.Addr, MethodRenewWatch,
		RenewWatchReq{WatchID: watchID, DurMillis: dur.Milliseconds()})
	return err
}

// Unwatch removes a watcher.
func (c *Client) Unwatch(watchID string) error {
	ctx, cancel := c.ctx()
	defer cancel()
	_, err := transport.Invoke[UnwatchReq, Empty](ctx, c.Caller, c.Addr, MethodUnwatch,
		UnwatchReq{WatchID: watchID})
	return err
}
