package registry

import (
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
)

func item(id, name string, attrs map[string]string) ServiceItem {
	return ServiceItem{ID: id, Name: name, Addr: "addr-" + id, Attrs: attrs}
}

func TestRegisterFind(t *testing.T) {
	l := NewLookup(clock.NewManual(time.Unix(0, 0)))
	if _, err := l.Register(item("r1", "midas.adaptation", map[string]string{"node": "robot1"}), time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Register(item("b1", "midas.base", nil), time.Minute); err != nil {
		t.Fatal(err)
	}

	all := l.Find(Template{})
	if len(all) != 2 {
		t.Fatalf("Find(all) = %d items", len(all))
	}
	adapt := l.Find(Template{Name: "midas.adaptation"})
	if len(adapt) != 1 || adapt[0].ID != "r1" {
		t.Fatalf("Find(adaptation) = %v", adapt)
	}
	glob := l.Find(Template{Name: "midas.*"})
	if len(glob) != 2 {
		t.Fatalf("Find(midas.*) = %d", len(glob))
	}
	attr := l.Find(Template{Attrs: map[string]string{"node": "robot1"}})
	if len(attr) != 1 || attr[0].ID != "r1" {
		t.Fatalf("Find(attr) = %v", attr)
	}
	none := l.Find(Template{Name: "other"})
	if len(none) != 0 {
		t.Fatalf("Find(other) = %v", none)
	}
}

func TestRegisterValidation(t *testing.T) {
	l := NewLookup(clock.NewManual(time.Unix(0, 0)))
	if _, err := l.Register(ServiceItem{Name: "x"}, time.Minute); err == nil {
		t.Error("missing ID should fail")
	}
	if _, err := l.Register(ServiceItem{ID: "x"}, time.Minute); err == nil {
		t.Error("missing Name should fail")
	}
}

func TestReregisterRefreshes(t *testing.T) {
	l := NewLookup(clock.NewManual(time.Unix(0, 0)))
	if _, err := l.Register(item("r1", "svc", map[string]string{"v": "1"}), time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Register(item("r1", "svc", map[string]string{"v": "2"}), time.Minute); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d", l.Len())
	}
	got := l.Find(Template{Name: "svc"})
	if got[0].Attrs["v"] != "2" {
		t.Errorf("re-registration did not refresh attrs: %v", got[0].Attrs)
	}
}

func TestLeaseExpiryRemovesItem(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	l := NewLookup(clk)
	if _, err := l.Register(item("r1", "svc", nil), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	clk.Advance(5 * time.Second)
	l.ExpireNow()
	if l.Len() != 1 {
		t.Fatal("item expired early")
	}
	clk.Advance(6 * time.Second)
	l.ExpireNow()
	if l.Len() != 0 {
		t.Fatal("item not expired")
	}
}

func TestRenewExtendsRegistration(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	l := NewLookup(clk)
	gl, err := l.Register(item("r1", "svc", nil), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(8 * time.Second)
	if _, err := l.Renew(gl.ID, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	clk.Advance(8 * time.Second)
	l.ExpireNow()
	if l.Len() != 1 {
		t.Fatal("renewed registration expired")
	}
}

func TestWatchNotifiesAddAndRemove(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	l := NewLookup(clk)
	var mu sync.Mutex
	var events []Event
	l.Watch(Template{Name: "midas.adaptation"}, time.Hour, func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})

	if _, err := l.Register(item("r1", "midas.adaptation", nil), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Register(item("x", "other", nil), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := l.Deregister("r1"); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(events) != 2 {
		t.Fatalf("events = %v", events)
	}
	if events[0].Kind != Added || events[0].Item.ID != "r1" {
		t.Errorf("event[0] = %+v", events[0])
	}
	if events[1].Kind != Removed || events[1].Item.ID != "r1" {
		t.Errorf("event[1] = %+v", events[1])
	}
}

func TestWatchSeesLeaseExpiryAsRemoval(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	l := NewLookup(clk)
	var mu sync.Mutex
	var kinds []EventKind
	l.Watch(Template{}, time.Hour, func(ev Event) {
		mu.Lock()
		kinds = append(kinds, ev.Kind)
		mu.Unlock()
	})
	if _, err := l.Register(item("r1", "svc", nil), time.Second); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Second)
	l.ExpireNow()
	mu.Lock()
	defer mu.Unlock()
	if len(kinds) != 2 || kinds[0] != Added || kinds[1] != Removed {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestUnwatchStopsNotifications(t *testing.T) {
	l := NewLookup(clock.NewManual(time.Unix(0, 0)))
	count := 0
	removed := false
	id, _ := l.WatchFull(Template{}, time.Hour, func(Event) { count++ }, func() { removed = true })
	l.Unwatch(id)
	if !removed {
		t.Error("onRemoved did not run")
	}
	if _, err := l.Register(item("r1", "svc", nil), time.Minute); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Error("unwatched watcher notified")
	}
}

func TestWatcherLeaseExpiry(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	l := NewLookup(clk)
	count := 0
	l.Watch(Template{}, time.Second, func(Event) { count++ })
	clk.Advance(2 * time.Second)
	l.ExpireNow()
	if _, err := l.Register(item("r1", "svc", nil), time.Minute); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Error("expired watcher notified")
	}
}

func TestTemplateMatching(t *testing.T) {
	it := item("a", "midas.adaptation", map[string]string{"hall": "h1", "node": "r1"})
	tests := []struct {
		tmpl Template
		want bool
	}{
		{Template{}, true},
		{Template{Name: "midas.adaptation"}, true},
		{Template{Name: "midas.*"}, true},
		{Template{Name: "*.adaptation"}, true},
		{Template{Name: "other"}, false},
		{Template{Attrs: map[string]string{"hall": "h1"}}, true},
		{Template{Attrs: map[string]string{"hall": "h2"}}, false},
		{Template{Attrs: map[string]string{"missing": ""}}, false},
		{Template{Name: "midas.*", Attrs: map[string]string{"node": "r1"}}, true},
	}
	for i, tt := range tests {
		if got := tt.tmpl.Matches(it); got != tt.want {
			t.Errorf("case %d: Matches = %v, want %v", i, got, tt.want)
		}
	}
}

func TestDeregisterUnknown(t *testing.T) {
	l := NewLookup(clock.NewManual(time.Unix(0, 0)))
	if err := l.Deregister("ghost"); err == nil {
		t.Fatal("want error")
	}
}
