package registry

import "repro/internal/wire"

// Wire codecs for the lookup service surface: register/renew/find ride the
// same fabrics as the midas traffic, and at fleet scale a reconcile or
// discovery storm hits the registry with one RPC per node.

// MarshalWire encodes s with the wire codec.
func (s ServiceItem) MarshalWire(e *wire.Encoder) {
	e.String(s.ID)
	e.String(s.Name)
	e.String(s.Addr)
	e.StringMap(s.Attrs)
}

// UnmarshalWire decodes s from the wire codec.
func (s *ServiceItem) UnmarshalWire(d *wire.Decoder) error {
	s.ID = d.String()
	s.Name = d.String()
	s.Addr = d.String()
	s.Attrs = d.StringMap()
	return d.Err()
}

// MarshalWire encodes t with the wire codec.
func (t Template) MarshalWire(e *wire.Encoder) {
	e.String(t.Name)
	e.StringMap(t.Attrs)
}

// UnmarshalWire decodes t from the wire codec.
func (t *Template) UnmarshalWire(d *wire.Decoder) error {
	t.Name = d.String()
	t.Attrs = d.StringMap()
	return d.Err()
}

// MarshalWire encodes r with the wire codec.
func (r RegisterReq) MarshalWire(e *wire.Encoder) {
	r.Item.MarshalWire(e)
	e.Varint(r.DurMillis)
}

// UnmarshalWire decodes r from the wire codec.
func (r *RegisterReq) UnmarshalWire(d *wire.Decoder) error {
	if err := r.Item.UnmarshalWire(d); err != nil {
		return err
	}
	r.DurMillis = d.Varint()
	return d.Err()
}

// MarshalWire encodes r with the wire codec.
func (r LeaseResp) MarshalWire(e *wire.Encoder) {
	e.String(r.LeaseID)
	e.Varint(r.DurMillis)
}

// UnmarshalWire decodes r from the wire codec.
func (r *LeaseResp) UnmarshalWire(d *wire.Decoder) error {
	r.LeaseID = d.String()
	r.DurMillis = d.Varint()
	return d.Err()
}

// MarshalWire encodes r with the wire codec.
func (r RenewReq) MarshalWire(e *wire.Encoder) {
	e.String(r.LeaseID)
	e.Varint(r.DurMillis)
}

// UnmarshalWire decodes r from the wire codec.
func (r *RenewReq) UnmarshalWire(d *wire.Decoder) error {
	r.LeaseID = d.String()
	r.DurMillis = d.Varint()
	return d.Err()
}

// MarshalWire encodes r with the wire codec.
func (r DeregisterReq) MarshalWire(e *wire.Encoder) { e.String(r.ServiceID) }

// UnmarshalWire decodes r from the wire codec.
func (r *DeregisterReq) UnmarshalWire(d *wire.Decoder) error {
	r.ServiceID = d.String()
	return d.Err()
}

// MarshalWire encodes r with the wire codec.
func (r FindReq) MarshalWire(e *wire.Encoder) { r.Tmpl.MarshalWire(e) }

// UnmarshalWire decodes r from the wire codec.
func (r *FindReq) UnmarshalWire(d *wire.Decoder) error {
	return r.Tmpl.UnmarshalWire(d)
}

// MarshalWire encodes r with the wire codec.
func (r FindResp) MarshalWire(e *wire.Encoder) {
	e.Len(len(r.Items))
	for _, it := range r.Items {
		it.MarshalWire(e)
	}
}

// UnmarshalWire decodes r from the wire codec.
func (r *FindResp) UnmarshalWire(d *wire.Decoder) error {
	if n := d.Len(); n > 0 {
		r.Items = make([]ServiceItem, n)
		for i := range r.Items {
			if err := r.Items[i].UnmarshalWire(d); err != nil {
				return err
			}
		}
	} else {
		r.Items = nil
	}
	return d.Err()
}

// MarshalWire encodes r with the wire codec.
func (r WatchReq) MarshalWire(e *wire.Encoder) {
	r.Tmpl.MarshalWire(e)
	e.Varint(r.DurMillis)
	e.String(r.Addr)
	e.String(r.Method)
}

// UnmarshalWire decodes r from the wire codec.
func (r *WatchReq) UnmarshalWire(d *wire.Decoder) error {
	if err := r.Tmpl.UnmarshalWire(d); err != nil {
		return err
	}
	r.DurMillis = d.Varint()
	r.Addr = d.String()
	r.Method = d.String()
	return d.Err()
}

// MarshalWire encodes r with the wire codec.
func (r WatchResp) MarshalWire(e *wire.Encoder) {
	e.String(r.WatchID)
	e.Varint(r.DurMillis)
}

// UnmarshalWire decodes r from the wire codec.
func (r *WatchResp) UnmarshalWire(d *wire.Decoder) error {
	r.WatchID = d.String()
	r.DurMillis = d.Varint()
	return d.Err()
}

// MarshalWire encodes r with the wire codec.
func (r RenewWatchReq) MarshalWire(e *wire.Encoder) {
	e.String(r.WatchID)
	e.Varint(r.DurMillis)
}

// UnmarshalWire decodes r from the wire codec.
func (r *RenewWatchReq) UnmarshalWire(d *wire.Decoder) error {
	r.WatchID = d.String()
	r.DurMillis = d.Varint()
	return d.Err()
}

// MarshalWire encodes r with the wire codec.
func (r UnwatchReq) MarshalWire(e *wire.Encoder) { e.String(r.WatchID) }

// UnmarshalWire decodes r from the wire codec.
func (r *UnwatchReq) UnmarshalWire(d *wire.Decoder) error {
	r.WatchID = d.String()
	return d.Err()
}

// MarshalWire encodes r with the wire codec.
func (r Empty) MarshalWire(e *wire.Encoder) {}

// UnmarshalWire decodes r from the wire codec.
func (r *Empty) UnmarshalWire(d *wire.Decoder) error { return d.Err() }
