package registry

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/event"
	"repro/internal/transport"
)

func newLookupServer(t *testing.T, fabric *transport.InProc) (*Server, *Client) {
	t.Helper()
	lookup := NewLookup(clock.Real{})
	mux := transport.NewMux()
	srv := NewServer("lookup", lookup, mux, fabric.Node("lookup"), clock.Real{})
	stop, err := fabric.Serve("lookup", mux)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); stop() })
	client := &Client{Caller: fabric.Node("client"), Addr: "lookup"}
	return srv, client
}

func TestServerRegisterFindRenewDeregister(t *testing.T) {
	fabric := transport.NewInProc()
	_, client := newLookupServer(t, fabric)

	leaseID, err := client.Register(ServiceItem{ID: "r1", Name: "midas.adaptation", Addr: "r1"}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if leaseID == "" {
		t.Fatal("empty lease id")
	}
	items, err := client.Find(Template{Name: "midas.*"})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 || items[0].ID != "r1" {
		t.Fatalf("Find = %v", items)
	}
	if err := client.Renew(leaseID, time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := client.Deregister("r1"); err != nil {
		t.Fatal(err)
	}
	items, _ = client.Find(Template{})
	if len(items) != 0 {
		t.Fatalf("after deregister: %v", items)
	}
}

func TestServerWatchDeliversRemoteEvents(t *testing.T) {
	fabric := transport.NewInProc()
	_, client := newLookupServer(t, fabric)

	var mu sync.Mutex
	var events []Event
	listener := transport.NewMux()
	transport.Register(listener, "onchange", func(_ context.Context, n event.Notification) (struct{}, error) {
		var ev Event
		if err := n.DecodeBody(&ev); err != nil {
			t.Errorf("decode: %v", err)
		}
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
		return struct{}{}, nil
	})
	stop, err := fabric.Serve("base1", listener)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	watchID, err := client.Watch(Template{Name: "midas.adaptation"}, time.Minute, "base1", "onchange")
	if err != nil {
		t.Fatal(err)
	}
	if err := client.RenewWatch(watchID, time.Minute); err != nil {
		t.Fatal(err)
	}

	if _, err := client.Register(ServiceItem{ID: "r1", Name: "midas.adaptation", Addr: "r1"}, time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := client.Deregister("r1"); err != nil {
		t.Fatal(err)
	}

	deadline := time.After(2 * time.Second)
	for {
		mu.Lock()
		n := len(events)
		mu.Unlock()
		if n >= 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("watch events not delivered")
		case <-time.After(time.Millisecond):
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if events[0].Kind != Added || events[1].Kind != Removed {
		t.Errorf("events = %+v", events)
	}

	if err := client.Unwatch(watchID); err != nil {
		t.Fatal(err)
	}
}

func TestServerOverTCP(t *testing.T) {
	lookup := NewLookup(clock.Real{})
	mux := transport.NewMux()
	caller := transport.NewTCPCaller()
	defer caller.Close()
	srv := NewServer("lookup", lookup, mux, caller, clock.Real{})
	defer srv.Close()
	tcpSrv, err := transport.ServeTCP("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	defer tcpSrv.Close()

	client := &Client{Caller: caller, Addr: tcpSrv.Addr()}
	if _, err := client.Register(ServiceItem{ID: "n1", Name: "svc", Addr: "x"}, time.Minute); err != nil {
		t.Fatal(err)
	}
	items, err := client.Find(Template{Name: "svc"})
	if err != nil || len(items) != 1 {
		t.Fatalf("Find over TCP = %v, %v", items, err)
	}
}
