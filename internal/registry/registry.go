// Package registry implements the Jini-like lookup service used for service
// detection and brokerage (§3.3): adaptation services advertise themselves as
// leased service items, extension bases find them by template or watch for
// their arrival through remote events.
package registry

import (
	"context"
	"errors"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/lease"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// ServiceItem is one advertised service.
type ServiceItem struct {
	ID    string // globally unique service id chosen by the registrant
	Name  string // service type, e.g. "midas.adaptation"
	Addr  string // transport address the service is reachable at
	Attrs map[string]string
}

// Template selects service items: Name may contain '*' wildcards; all Attrs
// must be present with equal values. The zero Template matches everything.
type Template struct {
	Name  string
	Attrs map[string]string
}

// Matches reports whether item satisfies the template.
func (t Template) Matches(item ServiceItem) bool {
	if t.Name != "" && !globMatch(t.Name, item.Name) {
		return false
	}
	for k, v := range t.Attrs {
		got, ok := item.Attrs[k]
		if !ok || got != v {
			return false
		}
	}
	return true
}

// EventKind discriminates watcher notifications.
type EventKind uint8

// Watcher event kinds.
const (
	Added EventKind = iota + 1
	Removed
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case Added:
		return "added"
	case Removed:
		return "removed"
	default:
		return "unknown"
	}
}

// Event notifies a watcher of a registration change. Trace carries the span
// context of the registration that caused it (zero if untraced), so a watcher
// reacting to an arrival — an extension base adapting a node — continues the
// node's announce trace.
type Event struct {
	Kind  EventKind
	Item  ServiceItem
	Trace trace.SpanContext
}

// ErrUnknownService is returned for operations on unregistered services.
var ErrUnknownService = errors.New("registry: unknown service")

type entry struct {
	item    ServiceItem
	leaseID lease.ID
}

type watcher struct {
	id        string
	tmpl      Template
	notify    func(Event)
	onRemoved func()
	leaseID   lease.ID
}

// lookupShards spreads the service-item index; watchers stay global (every
// registration change consults all of them anyway).
const lookupShards = 16

// itemShard holds one slice of the service-item index. Lock order: a shard's
// mu may be held while taking the Lookup's global mu, never the reverse; no
// path holds two shard locks at once.
type itemShard struct {
	mu    sync.Mutex
	items map[string]*entry // by service ID
}

// Lookup is the in-memory lookup service core. Remote access is provided by
// Server/Client in this package. The item index is sharded by a hash of the
// service ID, so registration and lookup traffic from a fleet of nodes does
// not serialise on one lock.
type Lookup struct {
	grantor *lease.Grantor
	shards  []itemShard

	mu       sync.Mutex
	byLease  map[lease.ID]string // lease -> service ID, for expiry routing
	watchers map[string]*watcher
	nextW    int
	m        lookupMetrics
}

func (l *Lookup) shard(serviceID string) *itemShard {
	h := fnv.New32a()
	h.Write([]byte(serviceID))
	return &l.shards[h.Sum32()%uint32(len(l.shards))]
}

// lookupMetrics aggregates service-brokerage traffic; all fields are nil-safe
// no-ops until Instrument.
type lookupMetrics struct {
	registers   *metrics.Counter
	deregisters *metrics.Counter
	lookups     *metrics.Counter
	watches     *metrics.Counter
	events      *metrics.Counter
	services    *metrics.Gauge
	watchers    *metrics.Gauge
}

// Instrument records registrations, deregistrations, template lookups, watch
// subscriptions and delivered watcher events in reg, plus gauges for live
// services and watchers. The lookup's grantor is instrumented too, so lease
// traffic lands in the same registry. A nil reg is a no-op.
func (l *Lookup) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	l.grantor.Instrument(reg)
	n := l.Len() // shard locks precede the global mu in the lock order
	l.mu.Lock()
	defer l.mu.Unlock()
	l.m = lookupMetrics{
		registers:   reg.Counter("registry.registers"),
		deregisters: reg.Counter("registry.deregisters"),
		lookups:     reg.Counter("registry.lookups"),
		watches:     reg.Counter("registry.watches"),
		events:      reg.Counter("registry.events_delivered"),
		services:    reg.Gauge("registry.services"),
		watchers:    reg.Gauge("registry.watchers"),
	}
	l.m.services.Set(int64(n))
	l.m.watchers.Set(int64(len(l.watchers)))
}

// NewLookup returns an empty lookup service on clk.
func NewLookup(clk clock.Clock) *Lookup {
	l := &Lookup{
		grantor:  lease.NewGrantor(clk),
		shards:   make([]itemShard, lookupShards),
		byLease:  make(map[lease.ID]string),
		watchers: make(map[string]*watcher),
	}
	for i := range l.shards {
		l.shards[i].items = make(map[string]*entry)
	}
	return l
}

// Grantor exposes the lease grantor (for sweeping or Start/Stop).
func (l *Lookup) Grantor() *lease.Grantor { return l.grantor }

// Register advertises item for the lease duration. Re-registering an existing
// ID refreshes the item and returns a fresh lease.
func (l *Lookup) Register(item ServiceItem, dur time.Duration) (lease.Lease, error) {
	return l.RegisterCtx(context.Background(), item, dur)
}

// RegisterCtx is Register stamping watcher events with the span context from
// ctx (if any), so watchers join the registrant's trace.
func (l *Lookup) RegisterCtx(ctx context.Context, item ServiceItem, dur time.Duration) (lease.Lease, error) {
	if item.ID == "" || item.Name == "" {
		return lease.Lease{}, errors.New("registry: item needs ID and Name")
	}
	sc, _ := trace.FromContext(ctx)
	s := l.shard(item.ID)
	s.mu.Lock()
	old, refreshed := s.items[item.ID]
	if refreshed {
		delete(s.items, item.ID)
	}
	s.mu.Unlock()
	if refreshed {
		// Refresh: cancel the old lease silently.
		l.mu.Lock()
		delete(l.byLease, old.leaseID)
		l.mu.Unlock()
		_ = l.grantor.Cancel(old.leaseID)
	}

	gl := l.grantor.GrantCtx(ctx, dur, func(id lease.ID) { l.expireLease(id) })

	s.mu.Lock()
	s.items[item.ID] = &entry{item: item, leaseID: gl.ID}
	s.mu.Unlock()
	n := l.Len()
	l.mu.Lock()
	l.byLease[gl.ID] = item.ID
	watchers := l.matchingWatchersLocked(item)
	l.m.registers.Inc()
	l.m.services.Set(int64(n))
	events := l.m.events
	l.mu.Unlock()

	for _, w := range watchers {
		events.Inc()
		w.notify(Event{Kind: Added, Item: item, Trace: sc})
	}
	return gl, nil
}

// Renew extends a registration lease.
func (l *Lookup) Renew(id lease.ID, dur time.Duration) (lease.Lease, error) {
	return l.grantor.Renew(id, dur)
}

// Deregister removes the service with the given service ID.
func (l *Lookup) Deregister(serviceID string) error {
	s := l.shard(serviceID)
	s.mu.Lock()
	e, ok := s.items[serviceID]
	if ok {
		delete(s.items, serviceID)
	}
	s.mu.Unlock()
	if !ok {
		return ErrUnknownService
	}
	_ = l.grantor.Cancel(e.leaseID)
	n := l.Len()
	l.mu.Lock()
	delete(l.byLease, e.leaseID)
	watchers := l.matchingWatchersLocked(e.item)
	l.m.deregisters.Inc()
	l.m.services.Set(int64(n))
	events := l.m.events
	l.mu.Unlock()

	for _, w := range watchers {
		events.Inc()
		w.notify(Event{Kind: Removed, Item: e.item})
	}
	return nil
}

// Find returns all items matching the template, ordered by service ID.
func (l *Lookup) Find(tmpl Template) []ServiceItem {
	l.metricsRef().lookups.Inc()
	var out []ServiceItem
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		for _, e := range s.items {
			if tmpl.Matches(e.item) {
				out = append(out, e.item)
			}
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// metricsRef snapshots the metric handles; every field stays a nil-safe no-op
// until Instrument.
func (l *Lookup) metricsRef() lookupMetrics {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.m
}

// Watch registers notify to run for every future registration change
// matching tmpl, under a lease. It returns the watcher id and lease.
func (l *Lookup) Watch(tmpl Template, dur time.Duration, notify func(Event)) (string, lease.Lease) {
	return l.WatchFull(tmpl, dur, notify, nil)
}

// WatchFull is Watch with an additional cleanup callback invoked exactly once
// when the watcher is removed (explicitly or by lease expiry).
func (l *Lookup) WatchFull(tmpl Template, dur time.Duration, notify func(Event), onRemoved func()) (string, lease.Lease) {
	l.mu.Lock()
	l.nextW++
	id := "w" + strconv.Itoa(l.nextW)
	w := &watcher{id: id, tmpl: tmpl, notify: notify, onRemoved: onRemoved}
	l.watchers[id] = w
	l.m.watches.Inc()
	l.m.watchers.Set(int64(len(l.watchers)))
	l.mu.Unlock()

	gl := l.grantor.Grant(dur, func(lease.ID) { l.Unwatch(id) })
	l.mu.Lock()
	w.leaseID = gl.ID
	l.mu.Unlock()
	return id, gl
}

// RenewWatch extends a watcher's lease.
func (l *Lookup) RenewWatch(id string, dur time.Duration) (lease.Lease, error) {
	l.mu.Lock()
	w, ok := l.watchers[id]
	l.mu.Unlock()
	if !ok {
		return lease.Lease{}, lease.ErrUnknownLease
	}
	return l.grantor.Renew(w.leaseID, dur)
}

// Unwatch removes a watcher.
func (l *Lookup) Unwatch(id string) {
	l.mu.Lock()
	w, ok := l.watchers[id]
	if ok {
		delete(l.watchers, id)
		l.m.watchers.Set(int64(len(l.watchers)))
	}
	l.mu.Unlock()
	if ok {
		_ = l.grantor.Cancel(w.leaseID)
		if w.onRemoved != nil {
			w.onRemoved()
		}
	}
}

// Len returns the number of live registrations.
func (l *Lookup) Len() int {
	n := 0
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		n += len(s.items)
		s.mu.Unlock()
	}
	return n
}

// ExpireNow sweeps lapsed leases (registrations and watchers).
func (l *Lookup) ExpireNow() int { return l.grantor.ExpireNow() }

func (l *Lookup) expireLease(id lease.ID) {
	l.mu.Lock()
	serviceID, ok := l.byLease[id]
	if ok {
		delete(l.byLease, id)
	}
	l.mu.Unlock()
	if !ok {
		return
	}
	s := l.shard(serviceID)
	s.mu.Lock()
	e := s.items[serviceID]
	if e == nil || e.leaseID != id {
		// Re-registered while the expiry was in flight: the fresh entry owns
		// a different lease and stays.
		s.mu.Unlock()
		return
	}
	delete(s.items, serviceID)
	s.mu.Unlock()

	n := l.Len()
	l.mu.Lock()
	watchers := l.matchingWatchersLocked(e.item)
	l.m.services.Set(int64(n))
	events := l.m.events
	l.mu.Unlock()

	for _, w := range watchers {
		events.Inc()
		w.notify(Event{Kind: Removed, Item: e.item})
	}
}

func (l *Lookup) matchingWatchersLocked(item ServiceItem) []*watcher {
	var out []*watcher
	for _, w := range l.watchers {
		if w.tmpl.Matches(item) {
			out = append(out, w)
		}
	}
	return out
}

func globMatch(pattern, s string) bool {
	if pattern == "*" {
		return true
	}
	parts := strings.Split(pattern, "*")
	if len(parts) == 1 {
		return pattern == s
	}
	if !strings.HasPrefix(s, parts[0]) {
		return false
	}
	s = s[len(parts[0]):]
	last := parts[len(parts)-1]
	if !strings.HasSuffix(s, last) {
		return false
	}
	s = s[:len(s)-len(last)]
	for _, mid := range parts[1 : len(parts)-1] {
		if mid == "" {
			continue
		}
		idx := strings.Index(s, mid)
		if idx < 0 {
			return false
		}
		s = s[idx+len(mid):]
	}
	return true
}
