package lvm

import "fmt"

// Class is a named collection of fields and methods, mirroring the Java
// classes the paper weaves into.
type Class struct {
	Name       string
	Fields     []string
	FieldIndex map[string]int
	Methods    map[string]*Method
}

// NewClass returns an empty class with the given name.
func NewClass(name string) *Class {
	return &Class{
		Name:       name,
		FieldIndex: make(map[string]int),
		Methods:    make(map[string]*Method),
	}
}

// AddField declares a field and returns its slot index. Re-declaring an
// existing field returns the existing index.
func (c *Class) AddField(name string) int {
	if i, ok := c.FieldIndex[name]; ok {
		return i
	}
	i := len(c.Fields)
	c.Fields = append(c.Fields, name)
	c.FieldIndex[name] = i
	return i
}

// AddMethod attaches m to the class, overwriting any previous method with the
// same name.
func (c *Class) AddMethod(m *Method) {
	m.Class = c
	c.Methods[m.Name] = m
}

// New instantiates the class with all fields nil.
func (c *Class) New() *Object {
	return &Object{Class: c, Fields: make([]Value, len(c.Fields))}
}

// Method is a single LVM method: a signature, a constant pool, bytecode and
// an exception handler table.
type Method struct {
	Class     *Class
	Name      string
	Params    []string // declared parameter type names (int, str, ...)
	Return    string   // declared return type name, "void" if none
	NumLocals int      // locals beyond self+params
	Consts    []Value
	Code      []Instr
	Handlers  []Handler
}

// Handler is an exception-handler table entry: if an exception is thrown at a
// pc in [Start, End), control transfers to Target with the exception message
// pushed on the stack.
type Handler struct {
	Start, End, Target int
}

// Arity returns the number of declared parameters.
func (m *Method) Arity() int { return len(m.Params) }

// FrameSize returns the number of local slots a frame needs: self, params and
// declared locals.
func (m *Method) FrameSize() int { return 1 + len(m.Params) + m.NumLocals }

// String renders the method's signature, e.g. "int Motor.rotate(int, bool)".
func (m *Method) String() string {
	cls := "?"
	if m.Class != nil {
		cls = m.Class.Name
	}
	params := ""
	for i, p := range m.Params {
		if i > 0 {
			params += ", "
		}
		params += p
	}
	return fmt.Sprintf("%s %s.%s(%s)", m.Return, cls, m.Name, params)
}

// Program is a set of classes forming a deployable LVM application.
type Program struct {
	Classes map[string]*Class
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{Classes: make(map[string]*Class)}
}

// AddClass registers c, overwriting any class with the same name.
func (p *Program) AddClass(c *Class) {
	p.Classes[c.Name] = c
}

// Class returns the named class, or nil.
func (p *Program) Class(name string) *Class {
	return p.Classes[name]
}

// Method resolves "Class.method", or returns nil.
func (p *Program) Method(class, method string) *Method {
	c := p.Classes[class]
	if c == nil {
		return nil
	}
	return c.Methods[method]
}

// EachMethod invokes fn for every method of every class in an unspecified
// order.
func (p *Program) EachMethod(fn func(*Method)) {
	for _, c := range p.Classes {
		for _, m := range c.Methods {
			fn(m)
		}
	}
}
