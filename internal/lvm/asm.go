package lvm

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses LVM assembler source into a Program. The syntax is
// line-oriented:
//
//	class Motor
//	  field speed
//	  method void rotate(int deg)
//	    local tmp
//	    push 0
//	    store tmp
//	  loop:
//	    load tmp
//	    load deg
//	    lt
//	    jmpf done
//	    ...
//	    jmp loop
//	  done:
//	    retv
//	  end
//	end
//
// Comments start with ';' or '#'. Labels end with ':'. Parameters and named
// locals can be referenced by name in load/store. Exception handlers are
// declared with "handler Lstart Lend Lcatch". Field access on self uses
// "getself name" / "setself name"; on arbitrary objects "getfield Class.field"
// / "setfield Class.field". Constants are pushed with "push" followed by an
// integer, a double-quoted string, true, false or nil.
func Assemble(src string) (*Program, error) {
	lines := splitLines(src)

	prog := NewProgram()
	// Pass 1: declare classes, fields and method headers so that forward
	// references (new, getfield) resolve.
	var cur *Class
	inMethod := false
	for _, ln := range lines {
		f := strings.Fields(ln.text)
		switch {
		case len(f) >= 2 && f[0] == "class" && !inMethod:
			cur = NewClass(f[1])
			prog.AddClass(cur)
		case len(f) >= 2 && f[0] == "field" && !inMethod:
			if cur == nil {
				return nil, ln.errf("field outside class")
			}
			cur.AddField(f[1])
		case len(f) >= 1 && f[0] == "method":
			if cur == nil {
				return nil, ln.errf("method outside class")
			}
			m, _, err := parseMethodHeader(ln.text)
			if err != nil {
				return nil, ln.errf("%v", err)
			}
			cur.AddMethod(m)
			inMethod = true
		case len(f) == 1 && f[0] == "end":
			if inMethod {
				inMethod = false
			} else {
				cur = nil
			}
		}
	}

	// Pass 2: assemble method bodies.
	cur = nil
	var asm *methodAsm
	for _, ln := range lines {
		f := strings.Fields(ln.text)
		switch {
		case len(f) >= 2 && f[0] == "class" && asm == nil:
			cur = prog.Class(f[1])
		case len(f) >= 2 && f[0] == "field" && asm == nil:
			// already handled
		case len(f) >= 1 && f[0] == "method" && asm == nil:
			_, name, err := parseMethodHeader(ln.text)
			if err != nil {
				return nil, ln.errf("%v", err)
			}
			asm = newMethodAsm(prog, cur, cur.Methods[name])
			asm.bindParams(paramNames(ln.text))
		case len(f) == 1 && f[0] == "end":
			if asm != nil {
				if err := asm.finish(); err != nil {
					return nil, ln.errf("%v", err)
				}
				asm = nil
			} else {
				cur = nil
			}
		default:
			if asm == nil {
				return nil, ln.errf("instruction outside method: %s", ln.text)
			}
			if err := asm.line(ln.text); err != nil {
				return nil, ln.errf("%v", err)
			}
		}
	}
	if asm != nil || cur != nil {
		return nil, fmt.Errorf("lvm asm: missing end")
	}
	return prog, nil
}

// MustAssemble is Assemble that panics on error; for tests and fixed fixtures.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

type srcLine struct {
	no   int
	text string
}

func (l srcLine) errf(format string, args ...any) error {
	return fmt.Errorf("lvm asm line %d: %s", l.no, fmt.Sprintf(format, args...))
}

func splitLines(src string) []srcLine {
	var out []srcLine
	for i, raw := range strings.Split(src, "\n") {
		text := raw
		// Strip comments, respecting string literals.
		inStr := false
		for j := 0; j < len(text); j++ {
			c := text[j]
			if c == '"' {
				inStr = !inStr
			}
			if !inStr && (c == ';' || c == '#') {
				text = text[:j]
				break
			}
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		out = append(out, srcLine{no: i + 1, text: text})
	}
	return out
}

// parseMethodHeader parses "method RET NAME(TYPE [name], ...)".
func parseMethodHeader(line string) (*Method, string, error) {
	rest := strings.TrimSpace(strings.TrimPrefix(line, "method"))
	open := strings.IndexByte(rest, '(')
	closeIdx := strings.LastIndexByte(rest, ')')
	if open < 0 || closeIdx < open {
		return nil, "", fmt.Errorf("bad method header %q", line)
	}
	head := strings.Fields(rest[:open])
	if len(head) != 2 {
		return nil, "", fmt.Errorf("method header needs return type and name: %q", line)
	}
	m := &Method{Name: head[1], Return: head[0]}
	params := strings.TrimSpace(rest[open+1 : closeIdx])
	if params != "" {
		for _, p := range strings.Split(params, ",") {
			pf := strings.Fields(strings.TrimSpace(p))
			if len(pf) == 0 || len(pf) > 2 {
				return nil, "", fmt.Errorf("bad parameter %q", p)
			}
			m.Params = append(m.Params, pf[0])
		}
	}
	return m, m.Name, nil
}

// paramNames re-parses the header's parameter names for named local slots.
func paramNames(line string) []string {
	open := strings.IndexByte(line, '(')
	closeIdx := strings.LastIndexByte(line, ')')
	if open < 0 || closeIdx < open {
		return nil
	}
	params := strings.TrimSpace(line[open+1 : closeIdx])
	if params == "" {
		return nil
	}
	var names []string
	for _, p := range strings.Split(params, ",") {
		pf := strings.Fields(strings.TrimSpace(p))
		if len(pf) == 2 {
			names = append(names, pf[1])
		} else {
			names = append(names, "")
		}
	}
	return names
}

type methodAsm struct {
	prog       *Program
	cls        *Class
	m          *Method
	slots      map[string]int // named locals and params
	labels     map[string]int
	fixups     []fixup // jump targets to resolve
	handlerFix []handlerFixup
	headerLine string
}

type fixup struct {
	pc    int
	label string
}

type handlerFixup struct {
	start, end, target string
}

func newMethodAsm(prog *Program, cls *Class, m *Method) *methodAsm {
	a := &methodAsm{
		prog:   prog,
		cls:    cls,
		m:      m,
		slots:  make(map[string]int),
		labels: make(map[string]int),
	}
	a.slots["self"] = 0
	return a
}

// bindParams assigns slots for named parameters from the original header.
func (a *methodAsm) bindParams(names []string) {
	for i, n := range names {
		if n != "" {
			a.slots[n] = i + 1
		}
	}
}

func (a *methodAsm) emit(i Instr) { a.m.Code = append(a.m.Code, i) }

func (a *methodAsm) constIdx(v Value) int {
	for i, c := range a.m.Consts {
		if c.K == v.K && c.Equal(v) {
			return i
		}
	}
	a.m.Consts = append(a.m.Consts, v)
	return len(a.m.Consts) - 1
}

func (a *methodAsm) slot(name string) (int, error) {
	if i, err := strconv.Atoi(name); err == nil {
		return i, nil
	}
	if s, ok := a.slots[name]; ok {
		return s, nil
	}
	return 0, fmt.Errorf("unknown local %q", name)
}

func (a *methodAsm) fieldSlot(spec string) (int, error) {
	if i, err := strconv.Atoi(spec); err == nil {
		return i, nil
	}
	// Class.field form.
	if dot := strings.IndexByte(spec, '.'); dot > 0 {
		cls := a.prog.Class(spec[:dot])
		if cls == nil {
			return 0, fmt.Errorf("unknown class %q", spec[:dot])
		}
		if idx, ok := cls.FieldIndex[spec[dot+1:]]; ok {
			return idx, nil
		}
		return 0, fmt.Errorf("unknown field %q", spec)
	}
	// Bare name: resolve against the enclosing class.
	if idx, ok := a.cls.FieldIndex[spec]; ok {
		return idx, nil
	}
	return 0, fmt.Errorf("unknown field %q in class %s", spec, a.cls.Name)
}

func (a *methodAsm) line(text string) error {
	if strings.HasSuffix(text, ":") && !strings.ContainsAny(text, " \t") {
		label := strings.TrimSuffix(text, ":")
		a.labels[label] = len(a.m.Code)
		return nil
	}
	f := fieldsRespectingStrings(text)
	op := f[0]
	switch op {
	case "local":
		if len(f) != 2 {
			return fmt.Errorf("local needs a name")
		}
		a.slots[f[1]] = 1 + len(a.m.Params) + a.m.NumLocals
		a.m.NumLocals++
		return nil
	case "locals":
		if len(f) != 2 {
			return fmt.Errorf("locals needs a count")
		}
		n, err := strconv.Atoi(f[1])
		if err != nil {
			return err
		}
		a.m.NumLocals += n
		return nil
	case "param":
		// "param i name" binds a name to parameter slot i+1.
		if len(f) != 3 {
			return fmt.Errorf("param needs index and name")
		}
		i, err := strconv.Atoi(f[1])
		if err != nil {
			return err
		}
		a.slots[f[2]] = i + 1
		return nil
	case "params":
		// "params a b c" binds names to parameter slots 1..n.
		for i, n := range f[1:] {
			a.slots[n] = i + 1
		}
		return nil
	case "handler":
		if len(f) != 4 {
			return fmt.Errorf("handler needs start end target labels")
		}
		a.handlerFix = append(a.handlerFix, handlerFixup{f[1], f[2], f[3]})
		return nil
	case "push":
		if len(f) < 2 {
			return fmt.Errorf("push needs a literal")
		}
		v, err := parseLiteral(strings.TrimSpace(text[len("push"):]))
		if err != nil {
			return err
		}
		a.emit(Instr{Op: OpConst, A: a.constIdx(v)})
		return nil
	case "load", "store":
		if len(f) != 2 {
			return fmt.Errorf("%s needs a slot", op)
		}
		s, err := a.slot(f[1])
		if err != nil {
			return err
		}
		o := OpLoad
		if op == "store" {
			o = OpStore
		}
		a.emit(Instr{Op: o, A: s})
		return nil
	case "getself", "setself":
		if len(f) != 2 {
			return fmt.Errorf("%s needs a field", op)
		}
		idx, err := a.fieldSlot(f[1])
		if err != nil {
			return err
		}
		o := OpGetSelf
		if op == "setself" {
			o = OpSetSelf
		}
		a.emit(Instr{Op: o, A: idx, Sym: symbolicField(f[1])})
		return nil
	case "getfield", "setfield":
		if len(f) != 2 {
			return fmt.Errorf("%s needs a field", op)
		}
		idx, err := a.fieldSlot(f[1])
		if err != nil {
			return err
		}
		o := OpGetField
		if op == "setfield" {
			o = OpSetField
		}
		a.emit(Instr{Op: o, A: idx, Sym: symbolicField(f[1])})
		return nil
	case "jmp", "jmpf":
		if len(f) != 2 {
			return fmt.Errorf("%s needs a label", op)
		}
		o := OpJump
		if op == "jmpf" {
			o = OpJumpFalse
		}
		a.fixups = append(a.fixups, fixup{pc: len(a.m.Code), label: f[1]})
		a.emit(Instr{Op: o})
		return nil
	case "call":
		if len(f) != 3 {
			return fmt.Errorf("call needs method name and argc")
		}
		n, err := strconv.Atoi(f[2])
		if err != nil {
			return err
		}
		a.emit(Instr{Op: OpCall, Sym: f[1], B: n})
		return nil
	case "hostcall":
		if len(f) != 3 {
			return fmt.Errorf("hostcall needs name and argc")
		}
		n, err := strconv.Atoi(f[2])
		if err != nil {
			return err
		}
		a.emit(Instr{Op: OpHostCall, Sym: f[1], B: n})
		return nil
	case "new":
		if len(f) != 2 {
			return fmt.Errorf("new needs a class name")
		}
		if a.prog.Class(f[1]) == nil {
			return fmt.Errorf("unknown class %q", f[1])
		}
		a.emit(Instr{Op: OpNew, Sym: f[1]})
		return nil
	}
	// Zero-operand ops.
	simple := map[string]Op{
		"nop": OpNop, "add": OpAdd, "sub": OpSub, "mul": OpMul, "div": OpDiv,
		"mod": OpMod, "neg": OpNeg, "eq": OpEq, "ne": OpNe, "lt": OpLt,
		"le": OpLe, "gt": OpGt, "ge": OpGe, "and": OpAnd, "or": OpOr,
		"not": OpNot, "concat": OpConcat, "len": OpLen, "throw": OpThrow,
		"ret": OpReturn, "retv": OpReturnVoid, "pop": OpPop, "dup": OpDup,
	}
	if o, ok := simple[op]; ok {
		if len(f) != 1 {
			return fmt.Errorf("%s takes no operands", op)
		}
		a.emit(Instr{Op: o})
		return nil
	}
	return fmt.Errorf("unknown instruction %q", op)
}

func (a *methodAsm) finish() error {
	for _, fx := range a.fixups {
		pc, ok := a.labels[fx.label]
		if !ok {
			return fmt.Errorf("undefined label %q", fx.label)
		}
		a.m.Code[fx.pc].A = pc
	}
	for _, h := range a.handlerFix {
		start, ok1 := a.labels[h.start]
		end, ok2 := a.labels[h.end]
		target, ok3 := a.labels[h.target]
		if !ok1 || !ok2 || !ok3 {
			return fmt.Errorf("undefined handler label in %v", h)
		}
		a.m.Handlers = append(a.m.Handlers, Handler{Start: start, End: end, Target: target})
	}
	// Implicit return for straight-line void code.
	if len(a.m.Code) == 0 || !isTerminator(a.m.Code[len(a.m.Code)-1].Op) {
		a.emit(Instr{Op: OpReturnVoid})
	}
	return nil
}

func isTerminator(o Op) bool {
	return o == OpReturn || o == OpReturnVoid || o == OpJump || o == OpThrow
}

func parseLiteral(s string) (Value, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "nil":
		return Nil(), nil
	case s == "true":
		return Bool(true), nil
	case s == "false":
		return Bool(false), nil
	case len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"':
		unq, err := strconv.Unquote(s)
		if err != nil {
			return Nil(), fmt.Errorf("bad string literal %s: %v", s, err)
		}
		return Str(unq), nil
	default:
		i, err := strconv.ParseInt(s, 0, 64)
		if err != nil {
			return Nil(), fmt.Errorf("bad literal %q", s)
		}
		return Int(i), nil
	}
}

// symbolicField preserves the textual field reference ("speed" or
// "Motor.speed") on the instruction so that the JIT can register named field
// join points; purely numeric slot references carry no symbol.
func symbolicField(spec string) string {
	if _, err := strconv.Atoi(spec); err == nil {
		return ""
	}
	return spec
}

func fieldsRespectingStrings(s string) []string {
	var out []string
	cur := strings.Builder{}
	inStr := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '"' {
			inStr = !inStr
		}
		if !inStr && (c == ' ' || c == '\t') {
			if cur.Len() > 0 {
				out = append(out, cur.String())
				cur.Reset()
			}
			continue
		}
		cur.WriteByte(c)
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}
