// Package lvm implements the LVM, a small stack-based virtual machine that
// stands in for the LeJOS tiny JVM used by the paper. Application code (robot
// control programs, synthetic workloads) and mobile extension advice are both
// expressed as LVM bytecode. The companion package internal/jit plays the role
// of the JIT compiler that PROSE instruments with minimal hook stubs.
package lvm

import (
	"fmt"
	"strconv"
)

// Kind discriminates the dynamic type of a Value.
type Kind uint8

// Value kinds.
const (
	KNil Kind = iota
	KInt
	KBool
	KStr
	KBytes
	KObj
)

// String returns the type name used in signatures and diagnostics.
func (k Kind) String() string {
	switch k {
	case KNil:
		return "nil"
	case KInt:
		return "int"
	case KBool:
		return "bool"
	case KStr:
		return "str"
	case KBytes:
		return "bytes"
	case KObj:
		return "obj"
	default:
		return "invalid"
	}
}

// Value is an LVM runtime value. The zero Value is nil.
type Value struct {
	K Kind
	I int64
	S string
	B []byte
	O *Object
}

// Convenience constructors.

// Nil returns the nil value.
func Nil() Value { return Value{} }

// Int returns an integer value.
func Int(i int64) Value { return Value{K: KInt, I: i} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	var i int64
	if b {
		i = 1
	}
	return Value{K: KBool, I: i}
}

// Str returns a string value.
func Str(s string) Value { return Value{K: KStr, S: s} }

// Bytes returns a byte-slice value. The slice is not copied.
func Bytes(b []byte) Value { return Value{K: KBytes, B: b} }

// Obj returns an object-reference value.
func Obj(o *Object) Value { return Value{K: KObj, O: o} }

// AsBool reports the truthiness of v: false for nil, zero int and false.
func (v Value) AsBool() bool {
	switch v.K {
	case KBool, KInt:
		return v.I != 0
	case KNil:
		return false
	case KStr:
		return v.S != ""
	case KBytes:
		return len(v.B) > 0
	default:
		return v.O != nil
	}
}

// AsInt returns the integer interpretation of v (bools are 0/1).
func (v Value) AsInt() int64 { return v.I }

// Equal reports deep equality of two values. Byte slices compare by content;
// objects compare by identity.
func (v Value) Equal(w Value) bool {
	if v.K != w.K {
		return false
	}
	switch v.K {
	case KNil:
		return true
	case KInt, KBool:
		return v.I == w.I
	case KStr:
		return v.S == w.S
	case KBytes:
		if len(v.B) != len(w.B) {
			return false
		}
		for i := range v.B {
			if v.B[i] != w.B[i] {
				return false
			}
		}
		return true
	case KObj:
		return v.O == w.O
	default:
		return false
	}
}

// String renders a value for diagnostics and logging extensions.
func (v Value) String() string {
	switch v.K {
	case KNil:
		return "nil"
	case KInt:
		return strconv.FormatInt(v.I, 10)
	case KBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case KStr:
		return v.S
	case KBytes:
		return fmt.Sprintf("bytes[%d]", len(v.B))
	case KObj:
		if v.O == nil {
			return "obj(nil)"
		}
		return "obj(" + v.O.Class.Name + ")"
	default:
		return "invalid"
	}
}

// Object is an instance of a Class with one slot per declared field.
type Object struct {
	Class  *Class
	Fields []Value
}

// Get returns the value of field slot i.
func (o *Object) Get(i int) Value {
	if i < 0 || i >= len(o.Fields) {
		return Nil()
	}
	return o.Fields[i]
}

// Set stores v into field slot i.
func (o *Object) Set(i int, v Value) {
	if i >= 0 && i < len(o.Fields) {
		o.Fields[i] = v
	}
}

// FieldByName returns the value of the named field and whether it exists.
func (o *Object) FieldByName(name string) (Value, bool) {
	idx, ok := o.Class.FieldIndex[name]
	if !ok {
		return Nil(), false
	}
	return o.Fields[idx], true
}

// SetFieldByName stores v into the named field, reporting whether it exists.
func (o *Object) SetFieldByName(name string, v Value) bool {
	idx, ok := o.Class.FieldIndex[name]
	if !ok {
		return false
	}
	o.Fields[idx] = v
	return true
}
