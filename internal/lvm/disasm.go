package lvm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Disassemble renders a program back into assembler syntax accepted by
// Assemble. Jump targets become generated labels; constants are inlined as
// push literals; field accesses keep their symbolic names when available.
// The output is primarily for debugging woven applications and for
// round-trip testing of the toolchain.
func Disassemble(p *Program) string {
	var b strings.Builder
	names := make([]string, 0, len(p.Classes))
	for n := range p.Classes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		disasmClass(&b, p.Classes[n])
	}
	return b.String()
}

func disasmClass(b *strings.Builder, c *Class) {
	fmt.Fprintf(b, "class %s\n", c.Name)
	for _, f := range c.Fields {
		fmt.Fprintf(b, "  field %s\n", f)
	}
	methods := make([]string, 0, len(c.Methods))
	for n := range c.Methods {
		methods = append(methods, n)
	}
	sort.Strings(methods)
	for _, n := range methods {
		disasmMethod(b, c.Methods[n])
	}
	b.WriteString("end\n")
}

func disasmMethod(b *strings.Builder, m *Method) {
	fmt.Fprintf(b, "  method %s %s(%s)\n", m.Return, m.Name, strings.Join(m.Params, ", "))
	if m.NumLocals > 0 {
		fmt.Fprintf(b, "    locals %d\n", m.NumLocals)
	}
	// Collect label targets: jumps plus handler boundaries.
	targets := make(map[int]string)
	label := func(pc int) string {
		if l, ok := targets[pc]; ok {
			return l
		}
		l := "L" + strconv.Itoa(len(targets))
		targets[pc] = l
		return l
	}
	for _, ins := range m.Code {
		if ins.Op == OpJump || ins.Op == OpJumpFalse {
			label(ins.A)
		}
	}
	for _, h := range m.Handlers {
		label(h.Start)
		label(h.End)
		label(h.Target)
	}

	for pc, ins := range m.Code {
		if l, ok := targets[pc]; ok {
			fmt.Fprintf(b, "  %s:\n", l)
		}
		b.WriteString("    ")
		b.WriteString(disasmInstr(m, ins, targets))
		b.WriteByte('\n')
	}
	// Labels pointing one past the last instruction (handler end ranges).
	if l, ok := targets[len(m.Code)]; ok {
		fmt.Fprintf(b, "  %s:\n", l)
	}
	for _, h := range m.Handlers {
		fmt.Fprintf(b, "    handler %s %s %s\n", targets[h.Start], targets[h.End], targets[h.Target])
	}
	b.WriteString("  end\n")
}

func disasmInstr(m *Method, ins Instr, targets map[int]string) string {
	switch ins.Op {
	case OpConst:
		return "push " + literal(m.Consts[ins.A])
	case OpLoad:
		return "load " + strconv.Itoa(ins.A)
	case OpStore:
		return "store " + strconv.Itoa(ins.A)
	case OpGetSelf, OpSetSelf, OpGetField, OpSetField:
		op := map[Op]string{
			OpGetSelf: "getself", OpSetSelf: "setself",
			OpGetField: "getfield", OpSetField: "setfield",
		}[ins.Op]
		if ins.Sym != "" {
			return op + " " + ins.Sym
		}
		return op + " " + strconv.Itoa(ins.A)
	case OpJump:
		return "jmp " + targets[ins.A]
	case OpJumpFalse:
		return "jmpf " + targets[ins.A]
	case OpCall:
		return fmt.Sprintf("call %s %d", ins.Sym, ins.B)
	case OpHostCall:
		return fmt.Sprintf("hostcall %s %d", ins.Sym, ins.B)
	case OpNew:
		return "new " + ins.Sym
	default:
		return ins.Op.String()
	}
}

func literal(v Value) string {
	switch v.K {
	case KNil:
		return "nil"
	case KBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case KInt:
		return strconv.FormatInt(v.I, 10)
	case KStr:
		return strconv.Quote(v.S)
	default:
		// Bytes/objects cannot appear in assembled constant pools.
		return strconv.Quote(v.String())
	}
}
