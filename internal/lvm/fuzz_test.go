package lvm

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestAssembleNeverPanics feeds arbitrary text to the assembler: mobile
// extension code arrives from the network, so the toolchain must reject
// garbage with errors, never panics.
func TestAssembleNeverPanics(t *testing.T) {
	check := func(src string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Assemble(%q) panicked: %v", src, r)
				ok = false
			}
		}()
		_, _ = Assemble(src)
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	// Adversarial fragments around the grammar.
	for _, src := range []string{
		"class", "class \n end", "method", "end", "end\nend",
		"class C\nmethod void m(\nend\nend",
		"class C\nmethod void m()\npush\nend\nend",
		"class C\nmethod void m()\npush \"unterminated\nend\nend",
		"class C\nmethod void m()\nhandler a b\nend\nend",
		"class C\nmethod void m()\nlabel:\nlabel:\njmp label\nend\nend",
		"class C\nfield\nend",
		"class C\nmethod void m()\ncall x\nend\nend",
		strings.Repeat("class C\n", 50),
	} {
		check(src)
	}
}

// TestInterpNeverPanicsOnAssembled runs any program that assembles through
// the interpreter with a small budget; type confusion must surface as errors.
func TestInterpNeverPanicsOnAssembled(t *testing.T) {
	srcs := []string{
		// Type confusion: string where int expected.
		`class C
  method int m()
    push "s"
    push 1
    add
    ret
  end
end`,
		// Concat on object.
		`class C
  method str m()
    new C
    push "x"
    concat
    ret
  end
end`,
		// Compare across kinds.
		`class C
  method bool m()
    push "a"
    push 1
    lt
    ret
  end
end`,
	}
	for i, src := range srcs {
		prog, err := Assemble(src)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		in := NewInterp(prog, nil)
		in.MaxSteps = 10_000
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("case %d panicked: %v", i, r)
				}
			}()
			_, _ = in.Invoke(prog.Method("C", "m"), prog.Class("C").New(), nil)
		}()
	}
}

// TestDisassembleArbitraryRoundTrips: any program the assembler accepts must
// disassemble into text the assembler accepts again.
func TestDisassembleArbitraryRoundTrips(t *testing.T) {
	fixtures := []string{
		lvmFixtureA, lvmFixtureB,
	}
	for i, src := range fixtures {
		prog, err := Assemble(src)
		if err != nil {
			t.Fatalf("fixture %d: %v", i, err)
		}
		text := Disassemble(prog)
		if _, err := Assemble(text); err != nil {
			t.Errorf("fixture %d round trip: %v\n%s", i, err, text)
		}
	}
}

const lvmFixtureA = `
class A
  field x
  method void set(int v)
    load v
    setself x
  end
  method int get()
    getself x
    ret
  end
end`

const lvmFixtureB = `
class B
  method int host(int v)
    load v
    hostcall f.g 1
    ret
  end
  method obj mk()
    new B
    ret
  end
end`
