package analysis

import (
	"fmt"

	"repro/internal/lvm"
)

// AbsKind is the abstract type domain of the typed verifier: the LVM value
// kinds plus Any (the join of distinct kinds — host-call results, merged
// branches). There is deliberately no Bottom: unvisited pcs simply carry no
// state.
type AbsKind uint8

// Abstract kinds.
const (
	Any AbsKind = iota
	ANil
	AInt
	ABool
	AStr
	ABytes
	AObj
)

// String names the abstract kind for diagnostics.
func (k AbsKind) String() string {
	switch k {
	case Any:
		return "any"
	case ANil:
		return "nil"
	case AInt:
		return "int"
	case ABool:
		return "bool"
	case AStr:
		return "str"
	case ABytes:
		return "bytes"
	case AObj:
		return "obj"
	default:
		return "invalid"
	}
}

// AbsVal is one abstract operand: a kind plus, for object references whose
// allocation site is known, the class name (used to devirtualise calls in
// capability inference). Class == "" means "some object".
type AbsVal struct {
	K     AbsKind
	Class string
}

func joinVal(a, b AbsVal) AbsVal {
	if a.K != b.K {
		return AbsVal{K: Any}
	}
	if a.K == AObj && a.Class != b.Class {
		return AbsVal{K: AObj}
	}
	return a
}

// typeState is the abstract machine state at one pc: operand stack and local
// slots. States are persistent: Apply and Merge copy before writing.
type typeState struct {
	stack  []AbsVal
	locals []AbsVal
}

func (s typeState) clone() typeState {
	return typeState{
		stack:  append([]AbsVal(nil), s.stack...),
		locals: append([]AbsVal(nil), s.locals...),
	}
}

// typeFlow is the Transfer of the typed stack verifier.
type typeFlow struct {
	p *lvm.Program
	m *lvm.Method
}

func absKindOf(v lvm.Value) AbsVal {
	switch v.K {
	case lvm.KNil:
		return AbsVal{K: ANil}
	case lvm.KInt:
		return AbsVal{K: AInt}
	case lvm.KBool:
		return AbsVal{K: ABool}
	case lvm.KStr:
		return AbsVal{K: AStr}
	case lvm.KBytes:
		return AbsVal{K: ABytes}
	default:
		return AbsVal{K: AObj}
	}
}

// paramVal maps a declared parameter type name onto the abstract domain.
// Unknown names (the assembler does not restrict them) are Any.
func paramVal(typ string) AbsVal {
	switch typ {
	case "int":
		return AbsVal{K: AInt}
	case "bool":
		return AbsVal{K: ABool}
	case "str", "string":
		return AbsVal{K: AStr}
	case "bytes":
		return AbsVal{K: ABytes}
	case "nil":
		return AbsVal{K: ANil}
	default:
		return AbsVal{K: Any}
	}
}

func (t *typeFlow) Entry() typeState {
	locals := make([]AbsVal, t.m.FrameSize())
	cls := ""
	if t.m.Class != nil {
		cls = t.m.Class.Name
	}
	locals[0] = AbsVal{K: AObj, Class: cls}
	for i, p := range t.m.Params {
		locals[1+i] = paramVal(p)
	}
	for i := 1 + len(t.m.Params); i < len(locals); i++ {
		locals[i] = AbsVal{K: ANil} // uninitialised locals hold nil
	}
	return typeState{locals: locals}
}

func (t *typeFlow) HandlerEntry() typeState {
	// The interpreter clears the stack and pushes the exception message. The
	// locals could be in any write-state when the exception fired.
	locals := make([]AbsVal, t.m.FrameSize())
	for i := range locals {
		locals[i] = AbsVal{K: Any}
	}
	return typeState{stack: []AbsVal{{K: AStr}}, locals: locals}
}

func (t *typeFlow) Merge(a, b typeState) (typeState, bool, error) {
	if len(a.stack) != len(b.stack) {
		return typeState{}, false, fmt.Errorf("inconsistent stack depth (%d vs %d)", len(a.stack), len(b.stack))
	}
	merged := a
	changed := false
	for i := range a.stack {
		j := joinVal(a.stack[i], b.stack[i])
		if j != a.stack[i] {
			if !changed {
				merged = a.clone()
				changed = true
			}
			merged.stack[i] = j
		}
	}
	for i := range a.locals {
		j := joinVal(a.locals[i], b.locals[i])
		if j != merged.locals[i] {
			if !changed {
				merged = a.clone()
				changed = true
			}
			merged.locals[i] = j
		}
	}
	return merged, changed, nil
}

// intish reports whether v may legally feed integer arithmetic: definite
// strings, byte slices and objects are type confusion (the interpreter would
// silently read their zero I field), everything else is admitted.
func intish(v AbsVal) bool {
	return v.K != AStr && v.K != ABytes && v.K != AObj
}

// objish reports whether v may be used as an object receiver.
func objish(v AbsVal) bool {
	return v.K == AObj || v.K == Any || v.K == ANil
}

func (t *typeFlow) Apply(pc int, ins lvm.Instr, s0 typeState) (typeState, error) {
	s := s0.clone()
	pop := func(want int) ([]AbsVal, error) {
		if len(s.stack) < want {
			return nil, fmt.Errorf("stack underflow (%s needs %d, have %d)", ins.Op, want, len(s.stack))
		}
		vals := s.stack[len(s.stack)-want:]
		s.stack = s.stack[:len(s.stack)-want]
		return vals, nil
	}
	push := func(v AbsVal) { s.stack = append(s.stack, v) }

	switch ins.Op {
	case lvm.OpNop:
	case lvm.OpConst:
		if ins.A < 0 || ins.A >= len(t.m.Consts) {
			return s, fmt.Errorf("const index %d out of range", ins.A)
		}
		push(absKindOf(t.m.Consts[ins.A]))
	case lvm.OpLoad:
		if ins.A < 0 || ins.A >= len(s.locals) {
			return s, fmt.Errorf("load slot %d out of range", ins.A)
		}
		push(s.locals[ins.A])
	case lvm.OpStore:
		v, err := pop(1)
		if err != nil {
			return s, err
		}
		if ins.A < 0 || ins.A >= len(s.locals) {
			return s, fmt.Errorf("store slot %d out of range", ins.A)
		}
		s.locals[ins.A] = v[0]
	case lvm.OpGetField:
		v, err := pop(1)
		if err != nil {
			return s, err
		}
		if !objish(v[0]) {
			return s, fmt.Errorf("getfield on %s", v[0].K)
		}
		push(AbsVal{K: Any})
	case lvm.OpSetField:
		v, err := pop(2)
		if err != nil {
			return s, err
		}
		if !objish(v[0]) {
			return s, fmt.Errorf("setfield on %s", v[0].K)
		}
	case lvm.OpGetSelf:
		push(AbsVal{K: Any})
	case lvm.OpSetSelf:
		if _, err := pop(1); err != nil {
			return s, err
		}
	case lvm.OpAdd, lvm.OpSub, lvm.OpMul, lvm.OpDiv, lvm.OpMod:
		v, err := pop(2)
		if err != nil {
			return s, err
		}
		if !intish(v[0]) || !intish(v[1]) {
			return s, fmt.Errorf("%s on %s, %s", ins.Op, v[0].K, v[1].K)
		}
		push(AbsVal{K: AInt})
	case lvm.OpNeg:
		v, err := pop(1)
		if err != nil {
			return s, err
		}
		if !intish(v[0]) {
			return s, fmt.Errorf("neg on %s", v[0].K)
		}
		push(AbsVal{K: AInt})
	case lvm.OpEq, lvm.OpNe:
		if _, err := pop(2); err != nil {
			return s, err
		}
		push(AbsVal{K: ABool})
	case lvm.OpLt, lvm.OpLe, lvm.OpGt, lvm.OpGe:
		v, err := pop(2)
		if err != nil {
			return s, err
		}
		a, b := v[0], v[1]
		if a.K == ABytes || a.K == AObj || b.K == ABytes || b.K == AObj {
			return s, fmt.Errorf("%s on %s, %s", ins.Op, a.K, b.K)
		}
		// Ordering a definite string against a definite number silently
		// compares the string's zero I field — type confusion.
		aStr, bStr := a.K == AStr, b.K == AStr
		aNum, bNum := a.K == AInt || a.K == ABool, b.K == AInt || b.K == ABool
		if (aStr && bNum) || (aNum && bStr) {
			return s, fmt.Errorf("%s on %s, %s", ins.Op, a.K, b.K)
		}
		push(AbsVal{K: ABool})
	case lvm.OpAnd, lvm.OpOr:
		if _, err := pop(2); err != nil {
			return s, err
		}
		push(AbsVal{K: ABool})
	case lvm.OpNot:
		if _, err := pop(1); err != nil {
			return s, err
		}
		push(AbsVal{K: ABool})
	case lvm.OpConcat:
		if _, err := pop(2); err != nil {
			return s, err
		}
		push(AbsVal{K: AStr})
	case lvm.OpLen:
		v, err := pop(1)
		if err != nil {
			return s, err
		}
		switch v[0].K {
		case AStr, ABytes, Any, ANil:
			// nil throws a catchable exception at run time; definite ints,
			// bools and objects are rejected here.
		default:
			return s, fmt.Errorf("len on %s", v[0].K)
		}
		push(AbsVal{K: AInt})
	case lvm.OpJump:
		// no stack effect
	case lvm.OpJumpFalse:
		if _, err := pop(1); err != nil {
			return s, err
		}
	case lvm.OpCall:
		if ins.B < 0 {
			return s, fmt.Errorf("negative argc")
		}
		v, err := pop(ins.B + 1)
		if err != nil {
			return s, err
		}
		recv := v[0]
		if !objish(recv) {
			return s, fmt.Errorf("call %s on %s", ins.Sym, recv.K)
		}
		if recv.K == AObj && recv.Class != "" && t.p != nil {
			if c := t.p.Class(recv.Class); c != nil {
				if c.Methods[ins.Sym] == nil {
					return s, fmt.Errorf("no method %s.%s", recv.Class, ins.Sym)
				}
			}
		}
		push(AbsVal{K: Any})
	case lvm.OpHostCall:
		if ins.B < 0 {
			return s, fmt.Errorf("negative argc")
		}
		if _, err := pop(ins.B); err != nil {
			return s, err
		}
		push(AbsVal{K: Any})
	case lvm.OpNew:
		if t.p != nil && t.p.Class(ins.Sym) == nil {
			return s, fmt.Errorf("unknown class %q", ins.Sym)
		}
		push(AbsVal{K: AObj, Class: ins.Sym})
	case lvm.OpThrow:
		if _, err := pop(1); err != nil {
			return s, err
		}
	case lvm.OpReturn:
		if _, err := pop(1); err != nil {
			return s, err
		}
	case lvm.OpReturnVoid:
	case lvm.OpPop:
		if _, err := pop(1); err != nil {
			return s, err
		}
	case lvm.OpDup:
		v, err := pop(1)
		if err != nil {
			return s, err
		}
		push(v[0])
		push(v[0])
	default:
		return s, fmt.Errorf("unknown opcode %d", ins.Op)
	}
	return s, nil
}

// TypeInfo is the result of typed verification: the abstract in-state of
// every pc (for capability inference's devirtualisation) plus the visited
// mask.
type TypeInfo struct {
	CFG     *CFG
	In      []typeState
	Visited []bool
}

// ReceiverAt returns the abstract receiver of the OpCall at pc, if typed
// verification reached that pc.
func (ti *TypeInfo) ReceiverAt(pc int) (AbsVal, bool) {
	if pc < 0 || pc >= len(ti.In) || !ti.Visited[pc] {
		return AbsVal{}, false
	}
	ins := ti.CFG.Method.Code[pc]
	if ins.Op != lvm.OpCall {
		return AbsVal{}, false
	}
	st := ti.In[pc].stack
	idx := len(st) - ins.B - 1
	if idx < 0 {
		return AbsVal{}, false
	}
	return st[idx], true
}

// TypeCheck runs the typed stack verifier over m: abstract interpretation of
// value kinds across every control-flow path, rejecting type-confused
// operand use (arithmetic on strings, field access on integers, calls on
// non-objects), stack depth inconsistencies and bad operands — strictly
// stronger than lvm.VerifyMethod's depth-only pass. Dead instructions still
// get their operands validated.
func TypeCheck(p *lvm.Program, m *lvm.Method) (*TypeInfo, error) {
	g, err := BuildCFG(m)
	if err != nil {
		return nil, err
	}
	tf := &typeFlow{p: p, m: m}
	in, seen, err := Forward[typeState](g, tf)
	if err != nil {
		return nil, err
	}
	// Dead code never executes but still travels with the extension: validate
	// its operands so a rejected instruction cannot hide behind a jump.
	for pc, visited := range seen {
		if visited {
			continue
		}
		if err := validateOperands(p, m, m.Code[pc]); err != nil {
			return nil, fmt.Errorf("pc %d (unreachable): %w", pc, err)
		}
	}
	return &TypeInfo{CFG: g, In: in, Visited: seen}, nil
}

// validateOperands checks an instruction's static operands without abstract
// state (used for unreachable instructions).
func validateOperands(p *lvm.Program, m *lvm.Method, ins lvm.Instr) error {
	switch ins.Op {
	case lvm.OpConst:
		if ins.A < 0 || ins.A >= len(m.Consts) {
			return fmt.Errorf("const index %d out of range", ins.A)
		}
	case lvm.OpLoad, lvm.OpStore:
		if ins.A < 0 || ins.A >= m.FrameSize() {
			return fmt.Errorf("%s slot %d out of range", ins.Op, ins.A)
		}
	case lvm.OpCall, lvm.OpHostCall:
		if ins.B < 0 {
			return fmt.Errorf("negative argc")
		}
	case lvm.OpNew:
		if p != nil && p.Class(ins.Sym) == nil {
			return fmt.Errorf("unknown class %q", ins.Sym)
		}
	}
	return nil
}
