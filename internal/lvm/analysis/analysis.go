package analysis

import (
	"fmt"
	"sort"

	"repro/internal/lvm"
	"repro/internal/sandbox"
)

// MethodReport is the admission verdict for one method: the host functions
// and capabilities reachable from it (transitively through calls), the
// source→sink information flows its data can take, its static fuel bound,
// and the pcs of dead instructions.
type MethodReport struct {
	Method      string // "Class.method"
	HostCalls   []string
	Caps        []sandbox.Capability
	Flows       []Flow
	Fuel        Fuel
	Unreachable []int
}

// Report is the result of analysing a whole program. Methods is keyed by
// "Class.method"; Warnings carries human-readable non-fatal findings
// (unreachable code) in deterministic order.
type Report struct {
	Methods  map[string]*MethodReport
	Warnings []string
}

// Method returns the report for "Class.method", or nil.
func (r *Report) Method(class, method string) *MethodReport {
	return r.Methods[class+"."+method]
}

// analyzer holds the per-program artifacts shared by the client analyses:
// typed-verification results, devirtualised call targets, and the cost memo.
type analyzer struct {
	p       *lvm.Program
	types   map[*lvm.Method]*TypeInfo
	targets map[*lvm.Method]map[int][]*lvm.Method
	byName  map[string]*lvm.Method
	cost    *costState
	taintW  *taintWorld
	reach   map[*lvm.Method][]bool
}

// newAnalyzer type-checks every method of p (rejecting the program on the
// first failure) and resolves call targets.
func newAnalyzer(p *lvm.Program) (*analyzer, error) {
	a := &analyzer{
		p:       p,
		types:   make(map[*lvm.Method]*TypeInfo),
		targets: make(map[*lvm.Method]map[int][]*lvm.Method),
		byName:  make(map[string]*lvm.Method),
	}
	for _, cls := range sortedClassNames(p) {
		c := p.Classes[cls]
		for _, name := range sortedMethodNames(c) {
			m := c.Methods[name]
			ti, err := TypeCheck(p, m)
			if err != nil {
				return nil, fmt.Errorf("analysis: %s: %w", m, err)
			}
			a.types[m] = ti
			a.byName[cls+"."+name] = m
		}
	}
	for m, ti := range a.types {
		a.targets[m] = callTargets(p, m, ti)
	}
	return a, nil
}

func sortedMethodNames(c *lvm.Class) []string {
	names := make([]string, 0, len(c.Methods))
	for name := range c.Methods {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// AnalyzeProgram runs the full admission pipeline over p: CFG construction
// and typed stack verification for every method (an error anywhere rejects
// the program), then capability inference and bounded-cost analysis per
// method. It is strictly stronger than lvm.VerifyProgram: anything it accepts
// also passes the depth-only verifier.
func AnalyzeProgram(p *lvm.Program) (*Report, error) {
	a, err := newAnalyzer(p)
	if err != nil {
		return nil, err
	}
	rep := &Report{Methods: make(map[string]*MethodReport)}
	for _, cls := range sortedClassNames(p) {
		c := p.Classes[cls]
		for _, name := range sortedMethodNames(c) {
			m := c.Methods[name]
			mr := &MethodReport{Method: cls + "." + name}
			mr.HostCalls, mr.Caps = a.InferCaps(m)
			if mr.Flows, err = a.Flows(m); err != nil {
				return nil, err
			}
			mr.Fuel = a.MethodFuel(m)
			mr.Unreachable = a.types[m].CFG.Unreachable()
			for _, pc := range mr.Unreachable {
				rep.Warnings = append(rep.Warnings,
					fmt.Sprintf("%s: pc %d unreachable (%s)", mr.Method, pc, m.Code[pc].Op))
			}
			rep.Methods[mr.Method] = mr
		}
	}
	return rep, nil
}

// AnalyzeMethod analyses a single method in the context of p: typed
// verification of the whole program is still required (callees must be safe
// too), but the returned report is scoped to what entry can reach.
func AnalyzeMethod(p *lvm.Program, entry *lvm.Method) (*MethodReport, error) {
	rep, err := AnalyzeProgram(p)
	if err != nil {
		return nil, err
	}
	cls := "?"
	if entry.Class != nil {
		cls = entry.Class.Name
	}
	mr := rep.Methods[cls+"."+entry.Name]
	if mr == nil {
		return nil, fmt.Errorf("analysis: method %s.%s not in program", cls, entry.Name)
	}
	return mr, nil
}
