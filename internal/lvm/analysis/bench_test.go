package analysis

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lvm"
)

// BenchmarkAnalyze measures the full admission pipeline (CFG + typed
// verification + capability inference + cost analysis) over the example
// advice corpus — the price a base pays once per AddExtension, off the weave
// fast path entirely.
func BenchmarkAnalyze(b *testing.B) {
	entries, err := os.ReadDir(adviceDir)
	if err != nil {
		b.Fatal(err)
	}
	var progs []*lvm.Program
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".lasm" {
			continue
		}
		src, err := os.ReadFile(filepath.Join(adviceDir, e.Name()))
		if err != nil {
			b.Fatal(err)
		}
		progs = append(progs, lvm.MustAssemble(string(src)))
	}
	if len(progs) == 0 {
		b.Fatal("no example advice to analyze")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range progs {
			if _, err := AnalyzeProgram(p); err != nil {
				b.Fatal(err)
			}
		}
	}
}
