package analysis

import (
	"reflect"
	"testing"

	"repro/internal/lvm"
)

// flowsOf analyses src and returns the flows of C.m.
func flowsOf(t *testing.T, src string) []Flow {
	t.Helper()
	p, m := mustAssembleMethod(t, src)
	rep, err := AnalyzeMethod(p, m)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return rep.Flows
}

func rulesOf(flows []Flow) []string { return FlowRules(flows) }

func TestTaintDirectFlow(t *testing.T) {
	flows := flowsOf(t, `class C
  method void m()
    push "k"
    hostcall store.get 1
    hostcall net.post 1
    pop
    retv
  end
end`)
	if got := rulesOf(flows); !reflect.DeepEqual(got, []string{"store->net"}) {
		t.Fatalf("rules = %v, want [store->net]", got)
	}
	f := flows[0]
	if f.SourceFn != "store.get" || f.SinkFn != "net.post" {
		t.Errorf("flow fns = %s -> %s", f.SourceFn, f.SinkFn)
	}
	// Witness: source site first, sink site last.
	if len(f.Witness) < 2 || f.Witness[0] != (FlowStep{Method: "C.m", PC: 1}) ||
		f.Witness[len(f.Witness)-1] != (FlowStep{Method: "C.m", PC: 2}) {
		t.Errorf("witness = %v", f.Witness)
	}
}

func TestTaintNoFlowWithoutSource(t *testing.T) {
	// clock.now is not a source; store.put receiving it is not a flow.
	flows := flowsOf(t, `class C
  method void m()
    push "k"
    hostcall clock.now 0
    hostcall store.put 2
    pop
    retv
  end
end`)
	if len(flows) != 0 {
		t.Fatalf("flows = %v, want none", flows)
	}
}

func TestTaintUntaintedArgsNoFlow(t *testing.T) {
	// A source runs, but only clean constants reach the sink.
	flows := flowsOf(t, `class C
  method void m()
    push "k"
    hostcall store.get 1
    pop
    push "clean"
    hostcall net.post 1
    pop
    retv
  end
end`)
	if len(flows) != 0 {
		t.Fatalf("flows = %v, want none", flows)
	}
}

func TestTaintThroughLocalAndArith(t *testing.T) {
	flows := flowsOf(t, `class C
  method void m()
    local v
    push "k"
    hostcall store.get 1
    store v
    load v
    push "suffix"
    concat
    hostcall net.post 1
    pop
    retv
  end
end`)
	if got := rulesOf(flows); !reflect.DeepEqual(got, []string{"store->net"}) {
		t.Fatalf("rules = %v, want [store->net]", got)
	}
}

func TestTaintThroughHelperAndField(t *testing.T) {
	// The laundering shape: store.get in a helper, routed through a field,
	// posted by the entry method. Cap inference alone sees {store,net} and is
	// satisfied; only flow analysis connects them.
	flows := flowsOf(t, `class C
  field stash
  method void m()
    load self
    call fetch 0
    pop
    load self
    getfield stash
    hostcall net.post 1
    pop
    retv
  end
  method int fetch()
    load self
    push "secret"
    hostcall store.get 1
    setfield stash
    push 0
    ret
  end
end`)
	if got := rulesOf(flows); !reflect.DeepEqual(got, []string{"store->net"}) {
		t.Fatalf("rules = %v, want [store->net]", got)
	}
	// The witness should name the source in the helper and the sink in m.
	f := flows[0]
	if f.Witness[0].Method != "C.fetch" {
		t.Errorf("witness source = %v, want C.fetch", f.Witness[0])
	}
	if last := f.Witness[len(f.Witness)-1]; last.Method != "C.m" {
		t.Errorf("witness sink = %v, want C.m", last)
	}
}

func TestTaintThroughCallArgsAndReturn(t *testing.T) {
	// Taint passes into a callee as an argument and back out as a return.
	flows := flowsOf(t, `class C
  method void m()
    load self
    push "k"
    hostcall store.get 1
    call relay 1
    hostcall net.post 1
    pop
    retv
  end
  method int relay(int x)
    load x
    ret
  end
end`)
	if got := rulesOf(flows); !reflect.DeepEqual(got, []string{"store->net"}) {
		t.Fatalf("rules = %v, want [store->net]", got)
	}
}

func TestTaintSessionAndDeviceSources(t *testing.T) {
	flows := flowsOf(t, `class C
  method void m()
    hostcall session.caller 0
    hostcall device.read 0
    concat
    hostcall store.put 1
    pop
    retv
  end
end`)
	got := rulesOf(flows)
	want := []string{"device->store", "session->store"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rules = %v, want %v", got, want)
	}
}

func TestTaintBranchJoin(t *testing.T) {
	// Taint on one arm of a branch still reaches the sink after the join.
	flows := flowsOf(t, `class C
  method void m(bool c)
    local v
    load c
    jmpf alt
    push "k"
    hostcall store.get 1
    store v
    jmp use
  alt:
    push "clean"
    store v
  use:
    load v
    hostcall net.post 1
    pop
    retv
  end
end`)
	if got := rulesOf(flows); !reflect.DeepEqual(got, []string{"store->net"}) {
		t.Fatalf("rules = %v, want [store->net]", got)
	}
}

func TestTaintThroughHandler(t *testing.T) {
	// A tainted value thrown as an exception surfaces as the handler's
	// message and flows on to the sink.
	flows := flowsOf(t, `class C
  method void m()
  s:
    push "k"
    hostcall store.get 1
    throw
  e:
  h:
    hostcall net.post 1
    pop
    retv
    handler s e h
  end
end`)
	if got := rulesOf(flows); !reflect.DeepEqual(got, []string{"store->net"}) {
		t.Fatalf("rules = %v, want [store->net]", got)
	}
}

func TestTaintWitnessReachable(t *testing.T) {
	flows := flowsOf(t, `class C
  field stash
  method void m()
    load self
    call fetch 0
    pop
    load self
    getfield stash
    hostcall net.replicate 1
    pop
    retv
  end
  method int fetch()
    load self
    hostcall session.id 0
    setfield stash
    push 0
    ret
  end
end`)
	if len(flows) == 0 {
		t.Fatal("no flows")
	}
	for _, f := range flows {
		for _, st := range f.Witness {
			if st.PC < 0 {
				t.Errorf("witness step %v has negative pc", st)
			}
		}
	}
}

func TestTaintDeterministic(t *testing.T) {
	src := `class C
  field a
  field b
  method void m()
    load self
    hostcall session.caller 0
    setfield a
    load self
    push "k"
    hostcall store.get 1
    setfield b
    load self
    getfield a
    load self
    getfield b
    concat
    hostcall net.post 1
    pop
    hostcall device.poll 0
    hostcall store.put 1
    pop
    retv
  end
end`
	first := flowsOf(t, src)
	for i := 0; i < 3; i++ {
		again := flowsOf(t, src)
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d differs:\n%v\nvs\n%v", i, first, again)
		}
	}
	want := []string{"device->store", "session->net", "store->net"}
	if got := rulesOf(first); !reflect.DeepEqual(got, want) {
		t.Fatalf("rules = %v, want %v", got, want)
	}
}

func TestTaintScopedToEntry(t *testing.T) {
	// A flow in an unrelated class is not attributed to C.m.
	src := `class C
  method void m()
    hostcall ctx.method 0
    pop
    retv
  end
end
class D
  method void leak()
    push "k"
    hostcall store.get 1
    hostcall net.post 1
    pop
    retv
  end
end`
	p, err := lvm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AnalyzeProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	if mr := rep.Method("C", "m"); len(mr.Flows) != 0 {
		t.Errorf("C.m flows = %v, want none", mr.Flows)
	}
	if mr := rep.Method("D", "leak"); len(rulesOf(mr.Flows)) != 1 {
		t.Errorf("D.leak flows = %v, want one rule", mr.Flows)
	}
}

func TestFlowRule(t *testing.T) {
	f := Flow{Source: "store", Sink: "net"}
	if f.Rule() != "store->net" {
		t.Errorf("rule = %q", f.Rule())
	}
}
