package analysis

import "repro/internal/lvm"

// Fuel is a static execution-cost verdict for one entry point. Bounded means
// every reachable cycle is a recognised constant-trip loop (see loops.go) and
// no recursion is reachable; Steps is then an upper bound on the interpreter
// steps one invocation can consume (each instruction costs one step, scaled
// by its loop trip counts; calls add the callee's bound). Unbounded code
// falls back to the interpreter's default budget.
type Fuel struct {
	Bounded bool
	Steps   int
}

// Unbounded is the verdict for cyclic or recursive code.
func Unbounded() Fuel { return Fuel{} }

// costState tracks the memoized per-method cost during call-graph traversal.
type costState struct {
	memo     map[*lvm.Method]Fuel
	visiting map[*lvm.Method]bool
}

// MethodFuel returns the static cost bound of one invocation of m, including
// everything it may call. Recursion — even potential recursion through an
// imprecisely resolved call — yields Unbounded.
func (a *analyzer) MethodFuel(m *lvm.Method) Fuel {
	if a.cost == nil {
		a.cost = &costState{memo: make(map[*lvm.Method]Fuel), visiting: make(map[*lvm.Method]bool)}
	}
	return a.fuelOf(m)
}

func (a *analyzer) fuelOf(m *lvm.Method) Fuel {
	if f, ok := a.cost.memo[m]; ok {
		return f
	}
	if a.cost.visiting[m] {
		// Back edge in the call graph: (potential) recursion.
		return Unbounded()
	}
	a.cost.visiting[m] = true
	f := a.localFuel(m)
	delete(a.cost.visiting, m)
	a.cost.memo[m] = f
	return f
}

// localFuel bounds one invocation of m. blockMultipliers says how many times
// each block can execute: 1 everywhere for acyclic code, trip counts for
// recognised constant-trip loops, and failure (→ Unbounded) for any other
// cycle, including exception edges that can loop through repeated throws.
// The sum of per-instruction costs scaled by their block's multiplier is a
// sound — if conservative — upper bound that needs no path enumeration.
func (a *analyzer) localFuel(m *lvm.Method) Fuel {
	ti := a.types[m]
	if ti == nil {
		return Unbounded()
	}
	mult, ok := blockMultipliers(ti.CFG)
	if !ok {
		return Unbounded()
	}
	var steps int64
	for pc, ins := range m.Code {
		k := mult[ti.CFG.BlockOf(pc)]
		steps += k
		if ins.Op != lvm.OpCall {
			continue
		}
		callees := a.targets[m][pc]
		if len(callees) == 0 {
			// Unresolvable call: at run time it would throw "no method",
			// costing nothing further. Charge only the instruction.
			continue
		}
		worst := 0
		for _, callee := range callees {
			cf := a.fuelOf(callee)
			if !cf.Bounded {
				return Unbounded()
			}
			if cf.Steps > worst {
				worst = cf.Steps
			}
		}
		steps += k * int64(worst)
		if steps > maxFuelSteps {
			return Unbounded()
		}
	}
	if steps > maxFuelSteps {
		return Unbounded()
	}
	return Fuel{Bounded: true, Steps: int(steps)}
}
