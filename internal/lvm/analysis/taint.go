package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/lvm"
	"repro/internal/sandbox"
)

// This file is the information-flow half of the admission analyzer: an
// interprocedural taint analysis over LVM bytecode. Host-call *sources*
// (store.get, session.*, device.*) produce tainted values; the analysis
// tracks them through the operand stack, local slots, object fields and call
// boundaries; reaching a *sink* host call (net.post, net.replicate,
// store.put) records a Flow. Capability inference answers "which host calls
// can run"; this answers "where can their data go" — the difference between
// an extension that reads the store and posts telemetry, and one that reads
// the store and posts the store.
//
// The analysis is deliberately over-approximate where precision is expensive:
// fields are tracked flow-insensitively by name across the whole program
// (an assignment anywhere taints reads everywhere), calls are
// context-insensitive (parameter taints join over all call sites), and
// exception handlers assume the worst write-state of locals. Only explicit
// data flows are tracked; implicit flows through branching on a tainted
// condition are out of scope, as in classic taint systems. Everything is
// monotone over a finite set of source sites, so the fixpoint terminates.

// FlowStep is one pc of a flow witness: where tainted data was produced,
// crossed a method/field boundary, or reached a sink.
type FlowStep struct {
	Method string // "Class.method"
	PC     int
}

func (s FlowStep) String() string { return fmt.Sprintf("%s@%d", s.Method, s.PC) }

// Flow records one information flow from a source host call to a sink host
// call. Witness is a pc chain: the source site first, then the boundary
// crossings the tainted value took (stores to fields, call-argument passing),
// and the sink site last. Every witness pc is reachable in its method.
type Flow struct {
	Source   sandbox.Capability
	Sink     sandbox.Capability
	SourceFn string
	SinkFn   string
	Witness  []FlowStep
}

// Rule renders the flow as the policy identity admission matches against an
// extension's declared flows: "<source-cap>-><sink-cap>".
func (f Flow) Rule() string { return string(f.Source) + "->" + string(f.Sink) }

// String renders the flow with its witness chain for diagnostics.
func (f Flow) String() string {
	steps := make([]string, len(f.Witness))
	for i, s := range f.Witness {
		steps[i] = s.String()
	}
	return fmt.Sprintf("%s: %s -> %s via %s", f.Rule(), f.SourceFn, f.SinkFn, strings.Join(steps, " "))
}

// FlowRules returns the deduplicated, sorted policy rules of flows (nil when
// there are none).
func FlowRules(flows []Flow) []string {
	if len(flows) == 0 {
		return nil
	}
	set := make(map[string]bool, len(flows))
	for _, f := range flows {
		set[f.Rule()] = true
	}
	out := make([]string, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// IsSourceFn reports whether the host function produces sensitive data: the
// persistent store, session/caller identity, and device (sensor) readings.
func IsSourceFn(fn string) bool {
	return fn == "store.get" ||
		strings.HasPrefix(fn, string(sandbox.CapSession)+".") ||
		strings.HasPrefix(fn, string(sandbox.CapDevice)+".")
}

// IsSinkFn reports whether the host function moves data somewhere that
// outlives or leaves the invocation: off-node (net.*) or into the store.
func IsSinkFn(fn string) bool {
	switch fn {
	case "net.post", "net.replicate", "store.put":
		return true
	}
	return false
}

// taintSet is a sorted set of origin ids; nil means untainted. Sets are
// immutable — union returns a fresh slice when it grows.
type taintSet []int

func unionTaint(a, b taintSet) (taintSet, bool) {
	if len(b) == 0 {
		return a, false
	}
	if len(a) == 0 {
		return b, true
	}
	// Fast path: b ⊆ a.
	grew := false
	for _, id := range b {
		if !containsInt(a, id) {
			grew = true
			break
		}
	}
	if !grew {
		return a, false
	}
	out := make(taintSet, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out, true
}

// taintOrigin is one source site: the host function and the pc that called it.
// trail accumulates the boundary crossings its taint took, diagnostic only
// (it never drives the fixpoint).
type taintOrigin struct {
	fn      string
	site    FlowStep
	trail   []FlowStep // starts with site; boundary steps appended once each
	inTrail map[FlowStep]bool
}

// sinkHit is one (origin, sink site) pair found by the analysis.
type sinkHit struct {
	originID int
	sinkFn   string
	site     FlowStep
}

// taintWorld is the interprocedural state shared across per-method passes:
// origins, the flow-insensitive field map, per-method parameter/return/throw
// summaries, and the sink hits. dirty flags any summary growth, driving the
// outer fixpoint.
type taintWorld struct {
	a        *analyzer
	origins  []*taintOrigin
	originAt map[FlowStep]int
	fields   map[string]taintSet
	entry    map[*lvm.Method][]taintSet // slot 0 = receiver, 1.. = params
	ret      map[*lvm.Method]taintSet
	esc      map[*lvm.Method]taintSet // thrown taint, callees included
	stored   map[*lvm.Method][]taintSet
	hits     map[string]sinkHit
	dirty    bool
}

func newTaintWorld(a *analyzer) *taintWorld {
	return &taintWorld{
		a:        a,
		originAt: make(map[FlowStep]int),
		fields:   make(map[string]taintSet),
		entry:    make(map[*lvm.Method][]taintSet),
		ret:      make(map[*lvm.Method]taintSet),
		esc:      make(map[*lvm.Method]taintSet),
		stored:   make(map[*lvm.Method][]taintSet),
		hits:     make(map[string]sinkHit),
	}
}

func (w *taintWorld) originFor(fn string, site FlowStep) int {
	if id, ok := w.originAt[site]; ok {
		return id
	}
	id := len(w.origins)
	w.origins = append(w.origins, &taintOrigin{
		fn:      fn,
		site:    site,
		trail:   []FlowStep{site},
		inTrail: map[FlowStep]bool{site: true},
	})
	w.originAt[site] = id
	return id
}

// noteTrail appends a boundary step to every origin in t, once per origin.
func (w *taintWorld) noteTrail(t taintSet, step FlowStep) {
	for _, id := range t {
		o := w.origins[id]
		if !o.inTrail[step] {
			o.inTrail[step] = true
			o.trail = append(o.trail, step)
		}
	}
}

func (w *taintWorld) joinField(key string, t taintSet) {
	merged, grew := unionTaint(w.fields[key], t)
	if grew {
		w.fields[key] = merged
		w.dirty = true
	}
}

func (w *taintWorld) joinEntry(callee *lvm.Method, vals []taintSet) {
	ent := w.entry[callee]
	n := 1 + callee.Arity()
	if len(ent) < n {
		ent = append(ent, make([]taintSet, n-len(ent))...)
	}
	for i := 0; i < n && i < len(vals); i++ {
		merged, grew := unionTaint(ent[i], vals[i])
		if grew {
			ent[i] = merged
			w.dirty = true
		}
	}
	w.entry[callee] = ent
}

func (w *taintWorld) joinRet(m *lvm.Method, t taintSet) {
	merged, grew := unionTaint(w.ret[m], t)
	if grew {
		w.ret[m] = merged
		w.dirty = true
	}
}

func (w *taintWorld) joinEsc(m *lvm.Method, t taintSet) {
	merged, grew := unionTaint(w.esc[m], t)
	if grew {
		w.esc[m] = merged
		w.dirty = true
	}
}

func (w *taintWorld) noteStored(m *lvm.Method, slot int, t taintSet) {
	st := w.stored[m]
	if len(st) <= slot {
		st = append(st, make([]taintSet, slot+1-len(st))...)
	}
	merged, grew := unionTaint(st[slot], t)
	if grew {
		st[slot] = merged
		w.dirty = true
	}
	w.stored[m] = st
}

func (w *taintWorld) noteHit(originID int, sinkFn string, site FlowStep) {
	key := fmt.Sprintf("%d|%s|%s|%d", originID, sinkFn, site.Method, site.PC)
	if _, ok := w.hits[key]; !ok {
		w.hits[key] = sinkHit{originID: originID, sinkFn: sinkFn, site: site}
	}
}

func (w *taintWorld) sortedHits() []sinkHit {
	out := make([]sinkHit, 0, len(w.hits))
	for _, h := range w.hits {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.originID != b.originID {
			return a.originID < b.originID
		}
		if a.sinkFn != b.sinkFn {
			return a.sinkFn < b.sinkFn
		}
		if a.site.Method != b.site.Method {
			return a.site.Method < b.site.Method
		}
		return a.site.PC < b.site.PC
	})
	return out
}

// fieldKey names a field cell for the flow-insensitive field map. The
// assembler stamps Sym with the field name; hand-built code may carry only
// the slot index.
func fieldKey(ins lvm.Instr) string {
	if ins.Sym != "" {
		return ins.Sym
	}
	return fmt.Sprintf("#%d", ins.A)
}

// taintState is the per-pc abstract state: the taint of every operand stack
// slot and local. Shapes mirror the typed verifier exactly (same pops, same
// pushes), so a method that typechecked can never underflow here.
type taintState struct {
	stack  []taintSet
	locals []taintSet
}

func (s taintState) clone() taintState {
	return taintState{
		stack:  append([]taintSet(nil), s.stack...),
		locals: append([]taintSet(nil), s.locals...),
	}
}

// taintFlow is the per-method Transfer of the taint analysis. Apply both
// transforms the local state and joins into the shared world (fields, callee
// entries, returns, throws, sink hits) — those joins are monotone, so
// re-applying during the fixpoint is harmless.
type taintFlow struct {
	w    *taintWorld
	m    *lvm.Method
	name string
}

func (t *taintFlow) Entry() taintState {
	locals := make([]taintSet, t.m.FrameSize())
	copy(locals, t.w.entry[t.m])
	return taintState{locals: locals}
}

func (t *taintFlow) HandlerEntry() taintState {
	// The interpreter clears the stack and pushes the exception message; a
	// tainted thrown value taints the message. Locals may be in any
	// write-state, so join the parameter taints with everything ever stored.
	locals := make([]taintSet, t.m.FrameSize())
	copy(locals, t.w.entry[t.m])
	for i, st := range t.w.stored[t.m] {
		if i < len(locals) {
			locals[i], _ = unionTaint(locals[i], st)
		}
	}
	return taintState{stack: []taintSet{t.w.esc[t.m]}, locals: locals}
}

func (t *taintFlow) Merge(a, b taintState) (taintState, bool, error) {
	if len(a.stack) != len(b.stack) {
		return taintState{}, false, fmt.Errorf("taint: inconsistent stack depth (%d vs %d)", len(a.stack), len(b.stack))
	}
	merged := a
	changed := false
	for i := range a.stack {
		m, grew := unionTaint(a.stack[i], b.stack[i])
		if grew {
			if !changed {
				merged = a.clone()
				changed = true
			}
			merged.stack[i] = m
		}
	}
	for i := range a.locals {
		m, grew := unionTaint(merged.locals[i], b.locals[i])
		if grew {
			if !changed {
				merged = a.clone()
				changed = true
			}
			merged.locals[i] = m
		}
	}
	return merged, changed, nil
}

func (t *taintFlow) Apply(pc int, ins lvm.Instr, s0 taintState) (taintState, error) {
	s := s0.clone()
	pop := func(want int) ([]taintSet, error) {
		if len(s.stack) < want {
			return nil, fmt.Errorf("taint: stack underflow (%s needs %d, have %d)", ins.Op, want, len(s.stack))
		}
		vals := s.stack[len(s.stack)-want:]
		s.stack = s.stack[:len(s.stack)-want]
		return vals, nil
	}
	push := func(t taintSet) { s.stack = append(s.stack, t) }
	union := func(vals []taintSet) taintSet {
		var out taintSet
		for _, v := range vals {
			out, _ = unionTaint(out, v)
		}
		return out
	}

	switch ins.Op {
	case lvm.OpNop, lvm.OpJump, lvm.OpReturnVoid:
	case lvm.OpConst, lvm.OpNew:
		push(nil)
	case lvm.OpLoad:
		if ins.A < 0 || ins.A >= len(s.locals) {
			return s, fmt.Errorf("taint: load slot %d out of range", ins.A)
		}
		push(s.locals[ins.A])
	case lvm.OpStore:
		v, err := pop(1)
		if err != nil {
			return s, err
		}
		if ins.A < 0 || ins.A >= len(s.locals) {
			return s, fmt.Errorf("taint: store slot %d out of range", ins.A)
		}
		s.locals[ins.A] = v[0]
		t.w.noteStored(t.m, ins.A, v[0])
	case lvm.OpGetField:
		v, err := pop(1)
		if err != nil {
			return s, err
		}
		ft := t.w.fields[fieldKey(ins)]
		t.w.noteTrail(ft, FlowStep{Method: t.name, PC: pc})
		out, _ := unionTaint(ft, v[0])
		push(out)
	case lvm.OpSetField:
		v, err := pop(2)
		if err != nil {
			return s, err
		}
		t.w.noteTrail(v[1], FlowStep{Method: t.name, PC: pc})
		t.w.joinField(fieldKey(ins), v[1])
	case lvm.OpGetSelf:
		ft := t.w.fields[fieldKey(ins)]
		t.w.noteTrail(ft, FlowStep{Method: t.name, PC: pc})
		push(ft)
	case lvm.OpSetSelf:
		v, err := pop(1)
		if err != nil {
			return s, err
		}
		t.w.noteTrail(v[0], FlowStep{Method: t.name, PC: pc})
		t.w.joinField(fieldKey(ins), v[0])
	case lvm.OpAdd, lvm.OpSub, lvm.OpMul, lvm.OpDiv, lvm.OpMod,
		lvm.OpEq, lvm.OpNe, lvm.OpLt, lvm.OpLe, lvm.OpGt, lvm.OpGe,
		lvm.OpAnd, lvm.OpOr, lvm.OpConcat:
		v, err := pop(2)
		if err != nil {
			return s, err
		}
		push(union(v))
	case lvm.OpNeg, lvm.OpNot, lvm.OpLen:
		v, err := pop(1)
		if err != nil {
			return s, err
		}
		push(v[0])
	case lvm.OpJumpFalse:
		// The condition is consumed; branching on tainted data is an implicit
		// flow, which this analysis deliberately does not track.
		if _, err := pop(1); err != nil {
			return s, err
		}
	case lvm.OpCall:
		if ins.B < 0 {
			return s, fmt.Errorf("taint: negative argc")
		}
		v, err := pop(ins.B + 1)
		if err != nil {
			return s, err
		}
		step := FlowStep{Method: t.name, PC: pc}
		var result taintSet
		for _, callee := range t.w.a.targets[t.m][pc] {
			t.w.joinEntry(callee, v)
			result, _ = unionTaint(result, t.w.ret[callee])
			// Exceptions escaping the callee surface at this call site.
			t.w.joinEsc(t.m, t.w.esc[callee])
		}
		t.w.noteTrail(union(v), step)
		t.w.noteTrail(result, step)
		push(result)
	case lvm.OpHostCall:
		if ins.B < 0 {
			return s, fmt.Errorf("taint: negative argc")
		}
		v, err := pop(ins.B)
		if err != nil {
			return s, err
		}
		site := FlowStep{Method: t.name, PC: pc}
		args := union(v)
		if IsSinkFn(ins.Sym) {
			for _, id := range args {
				t.w.noteHit(id, ins.Sym, site)
			}
		}
		// A host result derives from the call's arguments (conservative); a
		// source additionally mints fresh taint.
		result := args
		if IsSourceFn(ins.Sym) {
			id := t.w.originFor(ins.Sym, site)
			result, _ = unionTaint(result, taintSet{id})
		}
		push(result)
	case lvm.OpThrow:
		v, err := pop(1)
		if err != nil {
			return s, err
		}
		t.w.joinEsc(t.m, v[0])
	case lvm.OpReturn:
		v, err := pop(1)
		if err != nil {
			return s, err
		}
		t.w.joinRet(t.m, v[0])
	case lvm.OpPop:
		if _, err := pop(1); err != nil {
			return s, err
		}
	case lvm.OpDup:
		v, err := pop(1)
		if err != nil {
			return s, err
		}
		push(v[0])
		push(v[0])
	default:
		return s, fmt.Errorf("taint: unknown opcode %d", ins.Op)
	}
	return s, nil
}

// taintAnalysis runs the interprocedural taint fixpoint over the whole
// program once and memoizes the world. The outer loop re-runs every
// per-method pass until no interprocedural summary (fields, entries, returns,
// throws, handler write-states) grows; everything is monotone over the finite
// origin set, so it converges.
func (a *analyzer) taintAnalysis() (*taintWorld, error) {
	if a.taintW != nil {
		return a.taintW, nil
	}
	w := newTaintWorld(a)
	type nm struct {
		name string
		m    *lvm.Method
	}
	var methods []nm
	for _, cls := range sortedClassNames(a.p) {
		c := a.p.Classes[cls]
		for _, name := range sortedMethodNames(c) {
			methods = append(methods, nm{name: cls + "." + name, m: c.Methods[name]})
		}
	}
	for {
		w.dirty = false
		for _, e := range methods {
			tf := &taintFlow{w: w, m: e.m, name: e.name}
			if _, _, err := Forward[taintState](a.types[e.m].CFG, tf); err != nil {
				return nil, fmt.Errorf("taint: %s: %w", e.name, err)
			}
		}
		if !w.dirty {
			break
		}
	}
	a.taintW = w
	return w, nil
}

// reachablePCs caches CFG.Reachable per method.
func (a *analyzer) reachablePCs(m *lvm.Method) []bool {
	if a.reach == nil {
		a.reach = make(map[*lvm.Method][]bool)
	}
	if r, ok := a.reach[m]; ok {
		return r
	}
	r := a.types[m].CFG.Reachable()
	a.reach[m] = r
	return r
}

func (a *analyzer) stepReachable(s FlowStep) bool {
	m := a.byName[s.Method]
	if m == nil || s.PC < 0 || s.PC >= len(m.Code) {
		return false
	}
	return a.reachablePCs(m)[s.PC]
}

// Flows returns the source→sink flows reachable from entry, sorted
// deterministically. A flow is attributed to entry when both its source and
// sink sites lie in methods reachable through entry's call graph; witness
// steps in unreachable code are pruned (code that cannot run cannot flow),
// and a flow whose source or sink site itself is unreachable is dropped.
func (a *analyzer) Flows(entry *lvm.Method) ([]Flow, error) {
	w, err := a.taintAnalysis()
	if err != nil {
		return nil, err
	}
	reach := make(map[string]bool)
	for _, m := range a.reachableMethods(entry) {
		cls := "?"
		if m.Class != nil {
			cls = m.Class.Name
		}
		reach[cls+"."+m.Name] = true
	}
	var out []Flow
	for _, h := range w.sortedHits() {
		o := w.origins[h.originID]
		if !reach[o.site.Method] || !reach[h.site.Method] {
			continue
		}
		if !a.stepReachable(o.site) || !a.stepReachable(h.site) {
			continue
		}
		wit := make([]FlowStep, 0, len(o.trail)+1)
		for _, st := range o.trail {
			if reach[st.Method] && a.stepReachable(st) {
				wit = append(wit, st)
			}
		}
		wit = append(wit, h.site)
		out = append(out, Flow{
			Source:   sandbox.CapabilityOf(o.fn),
			Sink:     sandbox.CapabilityOf(h.sinkFn),
			SourceFn: o.fn,
			SinkFn:   h.sinkFn,
			Witness:  wit,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		x, y := out[i], out[j]
		if r1, r2 := x.Rule(), y.Rule(); r1 != r2 {
			return r1 < r2
		}
		if x.SourceFn != y.SourceFn {
			return x.SourceFn < y.SourceFn
		}
		if x.SinkFn != y.SinkFn {
			return x.SinkFn < y.SinkFn
		}
		return flowStepsLess(x.Witness, y.Witness)
	})
	return out, nil
}

func flowStepsLess(a, b []FlowStep) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i].Method != b[i].Method {
			return a[i].Method < b[i].Method
		}
		if a[i].PC != b[i].PC {
			return a[i].PC < b[i].PC
		}
	}
	return len(a) < len(b)
}
