package analysis

import (
	"testing"

	"repro/internal/lvm"
)

// fuzzSyms is the symbol pool the fuzzer draws call/hostcall/new operands
// from: known and unknown classes, methods that do and don't exist, and
// host functions across several capability namespaces.
var fuzzSyms = []string{"m", "helper", "ghost", "C", "Ghost", "store.put", "net.post", "ctx.arg", "x"}

// methodFromFuzz decodes an arbitrary byte string into a two-method program:
// each 4-byte group becomes one instruction of C.m, while C.helper is a fixed
// valid callee so OpCall has something real to resolve to. The final byte
// pair, when present, adds an exception handler.
func methodFromFuzz(data []byte) *lvm.Program {
	if len(data) < 4 {
		return nil
	}
	p := lvm.NewProgram()
	c := lvm.NewClass("C")
	helper := &lvm.Method{
		Name:   "helper",
		Return: "void",
		Code:   []lvm.Instr{{Op: lvm.OpReturnVoid}},
	}
	c.AddMethod(helper)

	m := &lvm.Method{
		Name:      "m",
		Return:    "void",
		NumLocals: int(data[0] % 4),
		Consts:    []lvm.Value{lvm.Int(7), lvm.Str("s"), lvm.Bool(true), lvm.Nil()},
	}
	body := data[1:]
	for i := 0; i+4 <= len(body); i += 4 {
		m.Code = append(m.Code, lvm.Instr{
			Op:  lvm.Op(body[i] % 32),
			A:   int(int8(body[i+1])),
			B:   int(int8(body[i+2])),
			Sym: fuzzSyms[int(body[i+3])%len(fuzzSyms)],
		})
	}
	if len(m.Code) == 0 {
		return nil
	}
	if rest := len(body) % 4; rest >= 2 {
		tail := body[len(body)-rest:]
		n := len(m.Code)
		start := int(tail[0]) % n
		m.Handlers = []lvm.Handler{{Start: start, End: start + 1, Target: int(tail[1]) % n}}
	}
	c.AddMethod(m)
	p.AddClass(c)
	return p
}

// FuzzAnalyze checks the two safety properties of the admission analyzer:
// it never panics on arbitrary bytecode, and anything it accepts also passes
// the depth-only lvm.VerifyMethod (analysis is strictly stronger, so an
// admitted extension can never be bounced by the receiver's verifier).
func FuzzAnalyze(f *testing.F) {
	f.Add([]byte{0, byte(lvm.OpReturnVoid), 0, 0, 0})
	f.Add([]byte{1, byte(lvm.OpConst), 0, 0, 0, byte(lvm.OpPop), 0, 0, 0, byte(lvm.OpReturnVoid), 0, 0, 0})
	f.Add([]byte{2, byte(lvm.OpHostCall), 0, 1, 5, byte(lvm.OpPop), 0, 0, 0, byte(lvm.OpReturnVoid), 0, 0, 0})
	f.Add([]byte{0, byte(lvm.OpLoad), 0, 0, 0, byte(lvm.OpCall), 0, 0, 1, byte(lvm.OpPop), 0, 0, 0, byte(lvm.OpReturnVoid), 0, 0, 0, 9, 3})
	f.Add([]byte{0, byte(lvm.OpJump), 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := methodFromFuzz(data)
		if p == nil {
			return
		}
		rep, err := AnalyzeProgram(p)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		if rep.Method("C", "m") == nil {
			t.Fatal("accepted program missing method report")
		}
		if err := lvm.VerifyProgram(p); err != nil {
			t.Fatalf("analysis accepted what VerifyMethod rejects: %v", err)
		}
	})
}
