package analysis

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/lvm"
)

// fuzzSyms is the symbol pool the fuzzer draws call/hostcall/new operands
// from: known and unknown classes, methods that do and don't exist, and
// host functions across several capability namespaces.
var fuzzSyms = []string{"m", "helper", "ghost", "C", "Ghost", "store.put", "net.post", "ctx.arg", "x"}

// methodFromFuzz decodes an arbitrary byte string into a two-method program:
// each 4-byte group becomes one instruction of C.m, while C.helper is a fixed
// valid callee so OpCall has something real to resolve to. The final byte
// pair, when present, adds an exception handler.
func methodFromFuzz(data []byte) *lvm.Program {
	if len(data) < 4 {
		return nil
	}
	p := lvm.NewProgram()
	c := lvm.NewClass("C")
	helper := &lvm.Method{
		Name:   "helper",
		Return: "void",
		Code:   []lvm.Instr{{Op: lvm.OpReturnVoid}},
	}
	c.AddMethod(helper)

	m := &lvm.Method{
		Name:      "m",
		Return:    "void",
		NumLocals: int(data[0] % 4),
		Consts:    []lvm.Value{lvm.Int(7), lvm.Str("s"), lvm.Bool(true), lvm.Nil()},
	}
	body := data[1:]
	for i := 0; i+4 <= len(body); i += 4 {
		m.Code = append(m.Code, lvm.Instr{
			Op:  lvm.Op(body[i] % 32),
			A:   int(int8(body[i+1])),
			B:   int(int8(body[i+2])),
			Sym: fuzzSyms[int(body[i+3])%len(fuzzSyms)],
		})
	}
	if len(m.Code) == 0 {
		return nil
	}
	if rest := len(body) % 4; rest >= 2 {
		tail := body[len(body)-rest:]
		n := len(m.Code)
		start := int(tail[0]) % n
		m.Handlers = []lvm.Handler{{Start: start, End: start + 1, Target: int(tail[1]) % n}}
	}
	c.AddMethod(m)
	p.AddClass(c)
	return p
}

// checkTaintSoundness asserts the invariants every accepted report's flow set
// must satisfy: re-analysis is deterministic, and every reported flow carries
// a witness whose pcs name reachable instructions in real methods, opening at
// the source host call and closing at the sink host call.
func checkTaintSoundness(t *testing.T, p *lvm.Program, rep *Report) {
	t.Helper()
	rep2, err := AnalyzeProgram(p)
	if err != nil {
		t.Fatalf("re-analysis rejected an accepted program: %v", err)
	}
	for name, mr := range rep.Methods {
		mr2 := rep2.Methods[name]
		if mr2 == nil {
			t.Fatalf("re-analysis lost method %s", name)
		}
		if !reflect.DeepEqual(mr.Flows, mr2.Flows) {
			t.Fatalf("%s: flows not deterministic:\n  first  %v\n  second %v", name, mr.Flows, mr2.Flows)
		}
		if !reflect.DeepEqual(mr.Caps, mr2.Caps) {
			t.Fatalf("%s: caps not deterministic: %v vs %v", name, mr.Caps, mr2.Caps)
		}
		for _, f := range mr.Flows {
			if len(f.Witness) < 2 {
				t.Fatalf("%s: flow %s has witness %v, want at least source and sink steps", name, f.Rule(), f.Witness)
			}
			for _, step := range f.Witness {
				cls, meth, ok := strings.Cut(step.Method, ".")
				if !ok {
					t.Fatalf("%s: witness step %v not of form Class.method", name, step)
				}
				wm := p.Method(cls, meth)
				if wm == nil {
					t.Fatalf("%s: witness step %v names a method missing from the program", name, step)
				}
				if step.PC < 0 || step.PC >= len(wm.Code) {
					t.Fatalf("%s: witness step %v out of range (method has %d instrs)", name, step, len(wm.Code))
				}
				wrep := rep.Methods[step.Method]
				if wrep == nil {
					t.Fatalf("%s: witness step %v names a method with no report", name, step)
				}
				for _, dead := range wrep.Unreachable {
					if dead == step.PC {
						t.Fatalf("%s: witness step %v is unreachable code", name, step)
					}
				}
			}
			src, snk := f.Witness[0], f.Witness[len(f.Witness)-1]
			if ins := instrAt(p, src); ins == nil || ins.Op != lvm.OpHostCall || ins.Sym != f.SourceFn {
				t.Fatalf("%s: flow %s: first witness step %v is not the source host call %s", name, f.Rule(), src, f.SourceFn)
			}
			if ins := instrAt(p, snk); ins == nil || ins.Op != lvm.OpHostCall || ins.Sym != f.SinkFn {
				t.Fatalf("%s: flow %s: last witness step %v is not the sink host call %s", name, f.Rule(), snk, f.SinkFn)
			}
		}
	}
}

func instrAt(p *lvm.Program, step FlowStep) *lvm.Instr {
	cls, meth, ok := strings.Cut(step.Method, ".")
	if !ok {
		return nil
	}
	m := p.Method(cls, meth)
	if m == nil || step.PC < 0 || step.PC >= len(m.Code) {
		return nil
	}
	return &m.Code[step.PC]
}

// FuzzAnalyze checks the safety properties of the admission analyzer: it
// never panics on arbitrary bytecode, anything it accepts also passes the
// depth-only lvm.VerifyMethod (analysis is strictly stronger, so an admitted
// extension can never be bounced by the receiver's verifier), and the taint
// verdict is sound — deterministic across runs, with every reported flow
// carrying a reachable source-to-sink witness chain.
func FuzzAnalyze(f *testing.F) {
	f.Add([]byte{0, byte(lvm.OpReturnVoid), 0, 0, 0})
	f.Add([]byte{1, byte(lvm.OpConst), 0, 0, 0, byte(lvm.OpPop), 0, 0, 0, byte(lvm.OpReturnVoid), 0, 0, 0})
	f.Add([]byte{2, byte(lvm.OpHostCall), 0, 1, 5, byte(lvm.OpPop), 0, 0, 0, byte(lvm.OpReturnVoid), 0, 0, 0})
	f.Add([]byte{0, byte(lvm.OpLoad), 0, 0, 0, byte(lvm.OpCall), 0, 0, 1, byte(lvm.OpPop), 0, 0, 0, byte(lvm.OpReturnVoid), 0, 0, 0, 9, 3})
	f.Add([]byte{0, byte(lvm.OpJump), 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := methodFromFuzz(data)
		if p == nil {
			return
		}
		rep, err := AnalyzeProgram(p)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		if rep.Method("C", "m") == nil {
			t.Fatal("accepted program missing method report")
		}
		if err := lvm.VerifyProgram(p); err != nil {
			t.Fatalf("analysis accepted what VerifyMethod rejects: %v", err)
		}
		checkTaintSoundness(t, p, rep)
	})
}

// taintSyms biases the FuzzTaint symbol pool toward taint sources
// (store.get, session.*, device.*) and sinks (net.post, net.replicate,
// store.put) so the fuzzer actually exercises flow construction, plus the
// call/field symbols needed for interprocedural and field laundering.
var taintSyms = []string{
	"m", "fetch", "stash", "C",
	"store.get", "session.id", "device.location",
	"net.post", "net.replicate", "store.put", "ctx.method",
}

// taintProgramFromFuzz decodes bytes into a program shaped like the flow
// corpus: class C has a field "stash" for laundering, a fixed C.fetch that
// returns a freshly tainted value (hostcall store.get), and a fuzzed C.m.
func taintProgramFromFuzz(data []byte) *lvm.Program {
	if len(data) < 4 {
		return nil
	}
	p := lvm.NewProgram()
	c := lvm.NewClass("C")
	c.AddField("stash")
	fetch := &lvm.Method{
		Name:   "fetch",
		Return: "val",
		Consts: []lvm.Value{lvm.Str("k")},
		Code: []lvm.Instr{
			{Op: lvm.OpConst, A: 0},
			{Op: lvm.OpHostCall, B: 1, Sym: "store.get"},
			{Op: lvm.OpReturn},
		},
	}
	c.AddMethod(fetch)

	m := &lvm.Method{
		Name:      "m",
		Return:    "void",
		NumLocals: int(data[0] % 4),
		Consts:    []lvm.Value{lvm.Int(7), lvm.Str("s"), lvm.Bool(true), lvm.Nil()},
	}
	body := data[1:]
	for i := 0; i+4 <= len(body); i += 4 {
		m.Code = append(m.Code, lvm.Instr{
			Op:  lvm.Op(body[i] % 32),
			A:   int(int8(body[i+1])),
			B:   int(int8(body[i+2])),
			Sym: taintSyms[int(body[i+3])%len(taintSyms)],
		})
	}
	if len(m.Code) == 0 {
		return nil
	}
	if rest := len(body) % 4; rest >= 2 {
		tail := body[len(body)-rest:]
		n := len(m.Code)
		start := int(tail[0]) % n
		m.Handlers = []lvm.Handler{{Start: start, End: start + 1, Target: int(tail[1]) % n}}
	}
	c.AddMethod(m)
	p.AddClass(c)
	return p
}

// FuzzTaint drives the taint analysis with flow-shaped programs: direct
// source-to-sink hand-offs, interprocedural flows through C.fetch, field
// laundering through C.stash, and branch/handler joins. The property is the
// same soundness contract FuzzAnalyze checks, but the biased symbol pool
// makes the fuzzer construct real flows instead of rejecting early.
func FuzzTaint(f *testing.F) {
	hostcall := func(nargs, sym byte) []byte { return []byte{byte(lvm.OpHostCall), 0, nargs, sym} }
	ins := func(op lvm.Op, a, b, sym byte) []byte { return []byte{byte(op), a, b, sym} }
	seed := func(locals byte, groups ...[]byte) []byte {
		out := []byte{locals}
		for _, g := range groups {
			out = append(out, g...)
		}
		return out
	}
	// Direct flow: tainted := store.get(k); net.post(tainted).
	f.Add(seed(0,
		ins(lvm.OpConst, 1, 0, 0),
		hostcall(1, 4), // store.get
		hostcall(1, 7), // net.post
		ins(lvm.OpPop, 0, 0, 0),
		ins(lvm.OpReturnVoid, 0, 0, 0),
	))
	// Interprocedural: self.fetch() result replicated.
	f.Add(seed(0,
		ins(lvm.OpGetSelf, 0, 0, 0),
		ins(lvm.OpCall, 0, 0, 1), // call fetch
		hostcall(1, 8),           // net.replicate
		ins(lvm.OpPop, 0, 0, 0),
		ins(lvm.OpReturnVoid, 0, 0, 0),
	))
	// Field laundering: stash := session.id(); store.put(stash).
	f.Add(seed(0,
		ins(lvm.OpGetSelf, 0, 0, 0),
		hostcall(0, 5), // session.id
		ins(lvm.OpSetField, 0, 0, 2),
		ins(lvm.OpGetSelf, 0, 0, 0),
		ins(lvm.OpGetField, 0, 0, 2),
		hostcall(1, 9), // store.put
		ins(lvm.OpPop, 0, 0, 0),
		ins(lvm.OpReturnVoid, 0, 0, 0),
	))
	// Branch join: one arm taints a local, both arms reach the sink.
	f.Add(seed(1,
		ins(lvm.OpConst, 2, 0, 0), // true
		ins(lvm.OpJumpFalse, 4, 0, 0),
		hostcall(0, 6), // device.location
		ins(lvm.OpStore, 0, 0, 0),
		ins(lvm.OpLoad, 0, 0, 0),
		hostcall(1, 7), // net.post
		ins(lvm.OpPop, 0, 0, 0),
		ins(lvm.OpReturnVoid, 0, 0, 0),
	))
	// Handler flow: taint acquired in a try region, sunk in the handler.
	f.Add(append(seed(1,
		hostcall(0, 5), // session.id
		ins(lvm.OpStore, 0, 0, 0),
		ins(lvm.OpReturnVoid, 0, 0, 0),
		ins(lvm.OpPop, 0, 0, 0),
		ins(lvm.OpLoad, 0, 0, 0),
		hostcall(1, 7), // net.post
		ins(lvm.OpPop, 0, 0, 0),
		ins(lvm.OpReturnVoid, 0, 0, 0),
	), 0, 3)) // handler over pc 0 targeting pc 3
	f.Fuzz(func(t *testing.T, data []byte) {
		p := taintProgramFromFuzz(data)
		if p == nil {
			return
		}
		rep, err := AnalyzeProgram(p)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		if err := lvm.VerifyProgram(p); err != nil {
			t.Fatalf("analysis accepted what VerifyMethod rejects: %v", err)
		}
		checkTaintSoundness(t, p, rep)
	})
}
