package analysis

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/lvm"
	"repro/internal/sandbox"
)

const adviceDir = "../../../examples/advice"

// golden pins the inferred capability set, fuel verdict, and information
// flows of every example advice. A new .lasm under examples/advice without an
// entry here fails the test, so the goldens cannot silently rot.
var golden = map[string]struct {
	caps    []sandbox.Capability
	bounded bool
	flows   []string
}{
	"movelimit.lasm":  {caps: []sandbox.Capability{sandbox.CapCtx}, bounded: true},
	"audit.lasm":      {caps: []sandbox.Capability{sandbox.CapClock, sandbox.CapCtx, sandbox.CapStore}, bounded: true},
	"exfiltrate.lasm": {caps: []sandbox.Capability{sandbox.CapCtx, sandbox.CapNet}, bounded: true},
	"announce.lasm":   {caps: []sandbox.Capability{sandbox.CapCtx, sandbox.CapLog}, bounded: true},
	"launder.lasm":    {caps: []sandbox.Capability{sandbox.CapCtx, sandbox.CapNet, sandbox.CapStore}, bounded: true, flows: []string{"store->net"}},
}

func TestGoldenExampleCaps(t *testing.T) {
	entries, err := os.ReadDir(adviceDir)
	if err != nil {
		t.Fatalf("reading %s: %v", adviceDir, err)
	}
	var files []string
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".lasm" {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	if len(files) != len(golden) {
		t.Errorf("examples/advice has %d .lasm files, golden covers %d", len(files), len(golden))
	}
	for _, name := range files {
		t.Run(name, func(t *testing.T) {
			want, ok := golden[name]
			if !ok {
				t.Fatalf("no golden entry for %s — add one", name)
			}
			src, err := os.ReadFile(filepath.Join(adviceDir, name))
			if err != nil {
				t.Fatal(err)
			}
			prog, err := lvm.Assemble(string(src))
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			rep, err := AnalyzeProgram(prog)
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			mr := rep.Method("Ext", "advice")
			if mr == nil {
				t.Fatal("no Ext.advice report")
			}
			if !reflect.DeepEqual(mr.Caps, want.caps) {
				t.Errorf("caps = %v, want %v", mr.Caps, want.caps)
			}
			if mr.Fuel.Bounded != want.bounded {
				t.Errorf("fuel bounded = %v, want %v (steps %d)", mr.Fuel.Bounded, want.bounded, mr.Fuel.Steps)
			}
			var wantFlows []string
			if want.flows != nil {
				wantFlows = want.flows
			}
			if got := FlowRules(mr.Flows); !reflect.DeepEqual(got, wantFlows) {
				t.Errorf("flows = %v, want %v", got, wantFlows)
			}
			if len(rep.Warnings) != 0 {
				t.Errorf("example advice should have no warnings: %v", rep.Warnings)
			}
		})
	}
}
