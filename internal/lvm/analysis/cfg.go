// Package analysis is the admission-time static analyzer for LVM bytecode:
// control-flow graph construction, a generic forward dataflow engine, and
// three client analyses — typed stack verification (abstract interpretation
// over value kinds), capability inference (the exact set of sandbox
// capabilities reachable from a method), and bounded-cost estimation (static
// fuel bounds for acyclic code). Bases run it before signing and pushing an
// extension; receivers re-run it before weaving, so a hostile or buggy
// extension is rejected on the base station instead of aborting inside a
// node's sandbox after it was already distributed (the mobile-code
// verification discipline of Java bytecode verification, applied to the
// paper's PROSE sandbox promise).
package analysis

import (
	"fmt"
	"sort"

	"repro/internal/lvm"
)

// Block is one basic block: the half-open pc range [Start, End) plus the
// indices of successor blocks. Exception edges (protected range → handler
// target) are kept separately in Handlers so clients can decide whether they
// participate in an analysis.
type Block struct {
	Start, End int
	Succs      []int
}

// CFG is the control-flow graph of a single method.
type CFG struct {
	Method *lvm.Method
	Blocks []Block
	// blockOf maps each pc to the index of its containing block.
	blockOf []int
}

// BlockOf returns the index of the block containing pc.
func (g *CFG) BlockOf(pc int) int { return g.blockOf[pc] }

// BuildCFG partitions m's bytecode into basic blocks and links them. It
// rejects structurally invalid code: empty bodies, out-of-range jump targets,
// malformed handler tables, and code whose final instruction is not a
// terminator (so no path — reachable or not — can fall off the end).
func BuildCFG(m *lvm.Method) (*CFG, error) {
	n := len(m.Code)
	if n == 0 {
		return nil, fmt.Errorf("empty body")
	}
	for _, h := range m.Handlers {
		if h.Start < 0 || h.End > n || h.Start >= h.End {
			return nil, fmt.Errorf("bad handler range [%d,%d)", h.Start, h.End)
		}
		if h.Target < 0 || h.Target >= n {
			return nil, fmt.Errorf("handler target %d out of range", h.Target)
		}
	}
	// The last instruction must not fall through past the end of the code.
	switch m.Code[n-1].Op {
	case lvm.OpReturn, lvm.OpReturnVoid, lvm.OpThrow, lvm.OpJump:
		// fine
	default:
		return nil, fmt.Errorf("control can fall off the end at pc %d (%s)", n-1, m.Code[n-1].Op)
	}

	leader := make([]bool, n)
	leader[0] = true
	for pc, ins := range m.Code {
		switch ins.Op {
		case lvm.OpJump, lvm.OpJumpFalse:
			if ins.A < 0 || ins.A >= n {
				return nil, fmt.Errorf("pc %d: jump target %d out of range", pc, ins.A)
			}
			leader[ins.A] = true
			if pc+1 < n {
				leader[pc+1] = true
			}
		case lvm.OpReturn, lvm.OpReturnVoid, lvm.OpThrow:
			if pc+1 < n {
				leader[pc+1] = true
			}
		}
	}
	for _, h := range m.Handlers {
		leader[h.Target] = true
		leader[h.Start] = true
		if h.End < n {
			leader[h.End] = true
		}
	}

	g := &CFG{Method: m, blockOf: make([]int, n)}
	start := 0
	for pc := 1; pc <= n; pc++ {
		if pc == n || leader[pc] {
			g.Blocks = append(g.Blocks, Block{Start: start, End: pc})
			start = pc
		}
	}
	for i, b := range g.Blocks {
		for pc := b.Start; pc < b.End; pc++ {
			g.blockOf[pc] = i
		}
	}
	for i := range g.Blocks {
		b := &g.Blocks[i]
		last := m.Code[b.End-1]
		switch last.Op {
		case lvm.OpJump:
			b.Succs = append(b.Succs, g.blockOf[last.A])
		case lvm.OpJumpFalse:
			b.Succs = append(b.Succs, g.blockOf[last.A])
			if b.End < n {
				b.Succs = append(b.Succs, g.blockOf[b.End])
			}
		case lvm.OpReturn, lvm.OpReturnVoid, lvm.OpThrow:
			// terminal: no successors
		default:
			b.Succs = append(b.Succs, g.blockOf[b.End])
		}
	}
	return g, nil
}

// Reachable reports, per pc, whether the instruction can be reached from the
// method entry or from a handler whose protected range is itself reachable.
func (g *CFG) Reachable() []bool {
	n := len(g.blockOf)
	seenBlock := make([]bool, len(g.Blocks))
	var visit func(int)
	visit = func(b int) {
		if seenBlock[b] {
			return
		}
		seenBlock[b] = true
		for _, s := range g.Blocks[b].Succs {
			visit(s)
		}
	}
	visit(0)
	// Handler targets become reachable when any protected pc is reachable;
	// iterate to a fixpoint since handlers can chain.
	for changed := true; changed; {
		changed = false
		for _, h := range g.Method.Handlers {
			tb := g.blockOf[h.Target]
			if seenBlock[tb] {
				continue
			}
			for pc := h.Start; pc < h.End; pc++ {
				if seenBlock[g.blockOf[pc]] {
					visit(tb)
					changed = true
					break
				}
			}
		}
	}
	out := make([]bool, n)
	for pc := 0; pc < n; pc++ {
		out[pc] = seenBlock[g.blockOf[pc]]
	}
	return out
}

// Unreachable returns the pcs of dead instructions, sorted.
func (g *CFG) Unreachable() []int {
	reach := g.Reachable()
	var out []int
	for pc, r := range reach {
		if !r {
			out = append(out, pc)
		}
	}
	sort.Ints(out)
	return out
}

// HasCycle reports whether the CFG contains a cycle, counting exception
// edges (a handler whose target lies inside a protected range can loop
// through repeated throws just like a jump can).
func (g *CFG) HasCycle() bool {
	succs := g.succsWithHandlers()
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, len(g.Blocks))
	var visit func(int) bool
	visit = func(b int) bool {
		color[b] = grey
		for _, s := range succs[b] {
			switch color[s] {
			case grey:
				return true
			case white:
				if visit(s) {
					return true
				}
			}
		}
		color[b] = black
		return false
	}
	for b := range g.Blocks {
		if color[b] == white && visit(b) {
			return true
		}
	}
	return false
}

// succsWithHandlers returns the successor lists extended with exception
// edges: every block intersecting a protected range gains an edge to the
// handler's target block.
func (g *CFG) succsWithHandlers() [][]int {
	out := make([][]int, len(g.Blocks))
	for i, b := range g.Blocks {
		out[i] = append([]int(nil), b.Succs...)
	}
	for _, h := range g.Method.Handlers {
		tb := g.blockOf[h.Target]
		for i, b := range g.Blocks {
			if b.Start < h.End && b.End > h.Start && !containsInt(out[i], tb) {
				out[i] = append(out[i], tb)
			}
		}
	}
	return out
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
