package analysis

import (
	"fmt"

	"repro/internal/lvm"
)

// Transfer defines one forward dataflow problem over a method's bytecode.
// States flow instruction by instruction; Merge joins states at control-flow
// joins and reports whether the merged state changed (driving the fixpoint).
type Transfer[S any] interface {
	// Entry is the abstract state at pc 0.
	Entry() S
	// HandlerEntry is the abstract state at an exception handler's target
	// (the LVM clears the stack and pushes the exception message there).
	HandlerEntry() S
	// Apply transforms the state across one instruction. An error rejects
	// the method (type confusion, stack underflow, bad operand).
	Apply(pc int, ins lvm.Instr, s S) (S, error)
	// Merge joins two states arriving at the same pc. An error rejects the
	// method (e.g. inconsistent stack depth).
	Merge(a, b S) (S, bool, error)
}

// Forward runs t to a fixpoint over g and returns the in-state of every pc
// plus a visited mask (unvisited pcs hold the zero state). Handler targets
// are seeded with HandlerEntry like the depth verifier seeds them, so the
// two verdicts stay comparable.
func Forward[S any](g *CFG, t Transfer[S]) ([]S, []bool, error) {
	m := g.Method
	n := len(m.Code)
	in := make([]S, n)
	seen := make([]bool, n)

	queue := make([]int, 0, n)
	propagate := func(pc int, s S) error {
		if !seen[pc] {
			seen[pc] = true
			in[pc] = s
			queue = append(queue, pc)
			return nil
		}
		merged, changed, err := t.Merge(in[pc], s)
		if err != nil {
			return fmt.Errorf("pc %d: %w", pc, err)
		}
		if changed {
			in[pc] = merged
			queue = append(queue, pc)
		}
		return nil
	}

	if err := propagate(0, t.Entry()); err != nil {
		return nil, nil, err
	}
	for _, h := range m.Handlers {
		if err := propagate(h.Target, t.HandlerEntry()); err != nil {
			return nil, nil, err
		}
	}

	for len(queue) > 0 {
		pc := queue[0]
		queue = queue[1:]
		ins := m.Code[pc]
		out, err := t.Apply(pc, ins, in[pc])
		if err != nil {
			// The in-state may still be refined (e.g. a definite str joined
			// with an int becomes any, which arithmetic accepts); don't
			// propagate now, and leave rejection to the post-fixpoint check
			// below so transient states can't cause spurious errors.
			continue
		}
		switch ins.Op {
		case lvm.OpReturn, lvm.OpReturnVoid, lvm.OpThrow:
			// terminal
		case lvm.OpJump:
			if err := propagate(ins.A, out); err != nil {
				return nil, nil, err
			}
		case lvm.OpJumpFalse:
			if err := propagate(ins.A, out); err != nil {
				return nil, nil, err
			}
			if err := propagate(pc+1, out); err != nil {
				return nil, nil, err
			}
		default:
			if err := propagate(pc+1, out); err != nil {
				return nil, nil, err
			}
		}
	}
	// Errors are judged only against the fixpoint states.
	for pc := 0; pc < n; pc++ {
		if !seen[pc] {
			continue
		}
		if _, err := t.Apply(pc, m.Code[pc], in[pc]); err != nil {
			return nil, nil, fmt.Errorf("pc %d: %w", pc, err)
		}
	}
	return in, seen, nil
}
