package analysis

import (
	"sort"

	"repro/internal/lvm"
	"repro/internal/sandbox"
)

// callTargets resolves every OpCall in m to the set of methods it may invoke.
// Where typed verification pinned the receiver to a known class, the call
// devirtualises to exactly that class's method; otherwise the closed world of
// the program supplies every method sharing the name. Calls in dead code
// resolve by name too — dead code cannot run, but counting it keeps the
// inferred set an over-approximation even if the verifier ever changes.
func callTargets(p *lvm.Program, m *lvm.Method, ti *TypeInfo) map[int][]*lvm.Method {
	out := make(map[int][]*lvm.Method)
	for pc, ins := range m.Code {
		if ins.Op != lvm.OpCall {
			continue
		}
		if recv, ok := ti.ReceiverAt(pc); ok && recv.K == AObj && recv.Class != "" {
			if callee := p.Method(recv.Class, ins.Sym); callee != nil {
				out[pc] = []*lvm.Method{callee}
				continue
			}
		}
		var callees []*lvm.Method
		for _, name := range sortedClassNames(p) {
			if callee := p.Classes[name].Methods[ins.Sym]; callee != nil {
				callees = append(callees, callee)
			}
		}
		out[pc] = callees
	}
	return out
}

func sortedClassNames(p *lvm.Program) []string {
	names := make([]string, 0, len(p.Classes))
	for name := range p.Classes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// reachableMethods walks the call graph from entry and returns every method
// that may execute, entry included.
func (a *analyzer) reachableMethods(entry *lvm.Method) []*lvm.Method {
	seen := map[*lvm.Method]bool{entry: true}
	queue := []*lvm.Method{entry}
	var out []*lvm.Method
	for len(queue) > 0 {
		m := queue[0]
		queue = queue[1:]
		out = append(out, m)
		for _, callees := range a.targets[m] {
			for _, callee := range callees {
				if !seen[callee] {
					seen[callee] = true
					queue = append(queue, callee)
				}
			}
		}
	}
	return out
}

// InferCaps computes the host calls and sandbox capabilities reachable from
// entry, transitively through the call graph. The capability mapping is the
// sandbox's own (sandbox.CapabilityOf), so whatever this returns is exactly
// what the run-time gate would demand.
func (a *analyzer) InferCaps(entry *lvm.Method) (hostCalls []string, caps []sandbox.Capability) {
	fns := make(map[string]bool)
	for _, m := range a.reachableMethods(entry) {
		for _, ins := range m.Code {
			if ins.Op == lvm.OpHostCall {
				fns[ins.Sym] = true
			}
		}
	}
	capSet := make(map[sandbox.Capability]bool)
	for fn := range fns {
		hostCalls = append(hostCalls, fn)
		capSet[sandbox.CapabilityOf(fn)] = true
	}
	sort.Strings(hostCalls)
	for c := range capSet {
		caps = append(caps, c)
	}
	sort.Slice(caps, func(i, j int) bool { return caps[i] < caps[j] })
	return hostCalls, caps
}
