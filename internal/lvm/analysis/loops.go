package analysis

import "repro/internal/lvm"

// Natural-loop trip-count analysis for the cost estimator. PR 5's fuel bound
// covered only acyclic CFGs; this file extends it to the classic counted-loop
// shape so far more real advice gets a finite Fuel (and so a tight
// interpreter MaxSteps):
//
//	           push C0 ; store i        (preheader: constant init)
//	  header:  load i ; push K ; cmp ; jmpf exit   (cmp ∈ lt,le,gt,ge)
//	  body:    ... load i ; push S ; add|sub ; store i ...  (sole store to i)
//	           jmp header
//
// The rules are deliberately syntactic: the header block must be exactly the
// four-instruction test, the induction variable must have exactly one update
// in the loop (a constant positive step, add for upward lt/le loops, sub for
// downward gt/ge loops), and its initialisation must be a constant store
// found by walking single-predecessor blocks up from the header's entry
// edge. Anything else — irreducible cycles, handler edges into a loop body,
// multiple back edges per header, non-constant bounds — stays Unbounded.
// Every accepted loop yields an exact trip count, so the resulting Steps is
// still a sound upper bound on interpreter steps.

// maxFuelSteps caps the computed bound (and every intermediate product) so
// deeply nested loops cannot overflow; anything larger is Unbounded.
const maxFuelSteps = 1 << 31

// blockMultipliers returns, per basic block, how many times one invocation
// can execute it (1 everywhere for acyclic code; loop bodies scale by their
// trip counts, nested loops multiply). ok is false when any cycle is not a
// recognised constant-trip natural loop.
func blockMultipliers(g *CFG) (mult []int64, ok bool) {
	n := len(g.Blocks)
	mult = make([]int64, n)
	for i := range mult {
		mult[i] = 1
	}
	succsH := g.succsWithHandlers()
	if !cyclic(succsH) {
		return mult, true
	}

	preds := make([][]int, n)
	for b, blk := range g.Blocks {
		for _, s := range blk.Succs {
			preds[s] = append(preds[s], b)
		}
	}
	dom := dominators(g, preds)

	// Collect back edges tail→header on the normal-edge graph: edges whose
	// target dominates their source. At most one back edge per header.
	type loop struct {
		header, tail int
		body         map[int]bool
		trips        int64
	}
	var loops []*loop
	byHeader := make(map[int]bool)
	for b, blk := range g.Blocks {
		for _, s := range blk.Succs {
			if dom[b] == nil || !dom[b][s] {
				continue
			}
			if byHeader[s] {
				return nil, false // two back edges share a header
			}
			byHeader[s] = true
			loops = append(loops, &loop{header: s, tail: b})
		}
	}

	// Removing the recognised back edges must leave the graph — exception
	// edges included — acyclic: any residual cycle (irreducible loops,
	// throw/handler loops, cycles in dead code) is out of scope.
	residual := make([][]int, n)
	for b, ss := range succsH {
		for _, s := range ss {
			isBack := false
			for _, l := range loops {
				if b == l.tail && s == l.header {
					isBack = true
					break
				}
			}
			if !isBack {
				residual[b] = append(residual[b], s)
			}
		}
	}
	if cyclic(residual) {
		return nil, false
	}

	for _, l := range loops {
		l.body = naturalLoopBody(l.header, l.tail, preds)
		trips, tok := tripCount(g, preds, dom, l.header, l.tail, l.body)
		if !tok {
			return nil, false
		}
		l.trips = trips
		for b := range l.body {
			f := l.trips
			if b == l.header {
				f = l.trips + 1 // the final, failing test still runs
			}
			mult[b] *= f
			if mult[b] > maxFuelSteps {
				return nil, false
			}
		}
	}
	return mult, true
}

// cyclic reports whether the successor graph has a cycle (white/grey/black).
func cyclic(succs [][]int) bool {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, len(succs))
	var visit func(int) bool
	visit = func(b int) bool {
		color[b] = grey
		for _, s := range succs[b] {
			switch color[s] {
			case grey:
				return true
			case white:
				if visit(s) {
					return true
				}
			}
		}
		color[b] = black
		return false
	}
	for b := range succs {
		if color[b] == white && visit(b) {
			return true
		}
	}
	return false
}

// dominators computes per-block dominator sets over the normal-edge graph
// (nil for blocks unreachable from the entry). O(n²) iteration — method CFGs
// are tiny.
func dominators(g *CFG, preds [][]int) []map[int]bool {
	n := len(g.Blocks)
	reach := make([]bool, n)
	var visit func(int)
	visit = func(b int) {
		if reach[b] {
			return
		}
		reach[b] = true
		for _, s := range g.Blocks[b].Succs {
			visit(s)
		}
	}
	visit(0)

	dom := make([]map[int]bool, n)
	dom[0] = map[int]bool{0: true}
	all := make(map[int]bool, n)
	for b := 0; b < n; b++ {
		if reach[b] {
			all[b] = true
		}
	}
	for b := 1; b < n; b++ {
		if reach[b] {
			dom[b] = all
		}
	}
	for changed := true; changed; {
		changed = false
		for b := 1; b < n; b++ {
			if !reach[b] {
				continue
			}
			next := map[int]bool{b: true}
			first := true
			for _, p := range preds[b] {
				if !reach[p] || dom[p] == nil {
					continue
				}
				if first {
					for d := range dom[p] {
						next[d] = true
					}
					first = false
					continue
				}
				for d := range next {
					if d != b && !dom[p][d] {
						delete(next, d)
					}
				}
			}
			if len(next) != len(dom[b]) || !sameSet(next, dom[b]) {
				dom[b] = next
				changed = true
			}
		}
	}
	return dom
}

func sameSet(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// naturalLoopBody returns {header} ∪ all blocks reaching tail without
// passing through header.
func naturalLoopBody(header, tail int, preds [][]int) map[int]bool {
	body := map[int]bool{header: true, tail: true}
	stack := []int{tail}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range preds[b] {
			if !body[p] {
				body[p] = true
				stack = append(stack, p)
			}
		}
	}
	return body
}

// tripCount matches the counted-loop shape rooted at header and returns the
// exact number of body executions.
func tripCount(g *CFG, preds [][]int, dom []map[int]bool, header, tail int, body map[int]bool) (int64, bool) {
	m := g.Method
	hb := g.Blocks[header]
	if hb.End-hb.Start != 4 {
		return 0, false
	}
	load, konst, cmp, jmpf := m.Code[hb.Start], m.Code[hb.Start+1], m.Code[hb.Start+2], m.Code[hb.Start+3]
	if load.Op != lvm.OpLoad || konst.Op != lvm.OpConst || jmpf.Op != lvm.OpJumpFalse {
		return 0, false
	}
	switch cmp.Op {
	case lvm.OpLt, lvm.OpLe, lvm.OpGt, lvm.OpGe:
	default:
		return 0, false
	}
	slot := load.A
	if konst.A < 0 || konst.A >= len(m.Consts) || m.Consts[konst.A].K != lvm.KInt {
		return 0, false
	}
	limit := m.Consts[konst.A].I
	// The false branch must leave the loop; the fallthrough must stay in it.
	if body[g.BlockOf(jmpf.A)] {
		return 0, false
	}
	if hb.End >= len(m.Code) || !body[g.BlockOf(hb.End)] {
		return 0, false
	}
	// No exception edge may enter the loop: a handler target inside the body
	// could resume mid-iteration past the update.
	for _, h := range m.Handlers {
		if body[g.BlockOf(h.Target)] {
			return 0, false
		}
	}

	// Exactly one store to the induction slot inside the loop, in the shape
	// load slot ; push step ; add|sub ; store slot, all within one block —
	// and that block must dominate the back-edge tail, so no iteration can
	// reach the back edge without running the update.
	step := int64(0)
	up := false
	found := false
	for b := range body {
		blk := g.Blocks[b]
		for pc := blk.Start; pc < blk.End; pc++ {
			ins := m.Code[pc]
			if ins.Op != lvm.OpStore || ins.A != slot {
				continue
			}
			if found || pc-3 < blk.Start {
				return 0, false
			}
			l2, k2, op2 := m.Code[pc-3], m.Code[pc-2], m.Code[pc-1]
			if l2.Op != lvm.OpLoad || l2.A != slot || k2.Op != lvm.OpConst {
				return 0, false
			}
			if k2.A < 0 || k2.A >= len(m.Consts) || m.Consts[k2.A].K != lvm.KInt {
				return 0, false
			}
			if dom[tail] == nil || !dom[tail][b] {
				return 0, false
			}
			step = m.Consts[k2.A].I
			switch op2.Op {
			case lvm.OpAdd:
				up = true
			case lvm.OpSub:
				up = false
			default:
				return 0, false
			}
			found = true
		}
	}
	if !found || step <= 0 || step > maxFuelSteps {
		return 0, false
	}

	// Constant initialisation: walk single-predecessor blocks up from the
	// loop entry edge looking for the last store to the slot.
	init, ok := initialValue(g, preds, header, body, slot)
	if !ok {
		return 0, false
	}
	// Keep bound and init small enough that the trip-count arithmetic below
	// cannot overflow int64.
	if limit > maxFuelSteps || limit < -maxFuelSteps || init > maxFuelSteps || init < -maxFuelSteps {
		return 0, false
	}

	var trips int64
	switch cmp.Op {
	case lvm.OpLt:
		if !up {
			return 0, false
		}
		trips = ceilDiv(limit-init, step)
	case lvm.OpLe:
		if !up {
			return 0, false
		}
		trips = ceilDiv(limit-init+1, step)
	case lvm.OpGt:
		if up {
			return 0, false
		}
		trips = ceilDiv(init-limit, step)
	case lvm.OpGe:
		if up {
			return 0, false
		}
		trips = ceilDiv(init-limit+1, step)
	}
	if trips < 0 {
		trips = 0
	}
	if trips > maxFuelSteps {
		return 0, false
	}
	return trips, true
}

func ceilDiv(a, b int64) int64 {
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// initialValue finds the constant stored into slot before the loop is
// entered: starting at the unique outside predecessor of header, scan the
// block backwards for a store to slot (which must be preceded by an integer
// push), walking up through unique predecessors until one is found.
func initialValue(g *CFG, preds [][]int, header int, body map[int]bool, slot int) (int64, bool) {
	m := g.Method
	var outside []int
	for _, p := range preds[header] {
		if !body[p] {
			outside = append(outside, p)
		}
	}
	if len(outside) != 1 {
		return 0, false
	}
	b := outside[0]
	for hops := 0; hops < len(g.Blocks)+1; hops++ {
		blk := g.Blocks[b]
		for pc := blk.End - 1; pc >= blk.Start; pc-- {
			ins := m.Code[pc]
			if ins.Op != lvm.OpStore || ins.A != slot {
				continue
			}
			if pc-1 < blk.Start {
				return 0, false
			}
			k := m.Code[pc-1]
			if k.Op != lvm.OpConst || k.A < 0 || k.A >= len(m.Consts) || m.Consts[k.A].K != lvm.KInt {
				return 0, false
			}
			return m.Consts[k.A].I, true
		}
		if len(preds[b]) != 1 {
			return 0, false
		}
		b = preds[b][0]
	}
	return 0, false
}
