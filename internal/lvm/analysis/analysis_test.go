package analysis

import (
	"strings"
	"testing"

	"repro/internal/lvm"
	"repro/internal/sandbox"
)

func buildProg(code []lvm.Instr, consts []lvm.Value, numLocals int) (*lvm.Program, *lvm.Method) {
	p := lvm.NewProgram()
	c := lvm.NewClass("C")
	m := &lvm.Method{Name: "m", Return: "void", NumLocals: numLocals, Consts: consts, Code: code}
	c.AddMethod(m)
	p.AddClass(c)
	return p, m
}

func TestBuildCFGBlocks(t *testing.T) {
	// 0: const, 1: jmpf 4, 2: const, 3: jmp 5, 4: nop, 5: retv
	code := []lvm.Instr{
		{Op: lvm.OpConst, A: 0},
		{Op: lvm.OpJumpFalse, A: 4},
		{Op: lvm.OpConst, A: 0},
		{Op: lvm.OpJump, A: 5},
		{Op: lvm.OpNop},
		{Op: lvm.OpReturnVoid},
	}
	_, m := buildProg(code, []lvm.Value{lvm.Bool(true)}, 0)
	g, err := BuildCFG(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4 (%+v)", len(g.Blocks), g.Blocks)
	}
	// Block 0 = [0,2) branches to blocks at pc 4 and pc 2.
	b0 := g.Blocks[g.BlockOf(0)]
	if len(b0.Succs) != 2 {
		t.Errorf("entry block succs = %v, want 2", b0.Succs)
	}
	if g.BlockOf(4) != g.BlockOf(5)-1 {
		t.Errorf("blockOf(4)=%d blockOf(5)=%d", g.BlockOf(4), g.BlockOf(5))
	}
	if cyc := g.HasCycle(); cyc {
		t.Error("acyclic CFG reported cyclic")
	}
	if dead := g.Unreachable(); len(dead) != 0 {
		t.Errorf("all pcs reachable, got dead %v", dead)
	}
}

func TestCFGRejectsFallOff(t *testing.T) {
	_, m := buildProg([]lvm.Instr{{Op: lvm.OpNop}}, nil, 0)
	if _, err := BuildCFG(m); err == nil || !strings.Contains(err.Error(), "fall off") {
		t.Errorf("want fall-off rejection, got %v", err)
	}
	// A dead non-terminator tail is just as rejected.
	_, m = buildProg([]lvm.Instr{{Op: lvm.OpReturnVoid}, {Op: lvm.OpNop}}, nil, 0)
	if _, err := BuildCFG(m); err == nil {
		t.Error("dead fall-off tail accepted")
	}
}

func TestCFGUnreachable(t *testing.T) {
	// 0: jmp 3, 1: const (dead), 2: pop (dead), 3: retv
	code := []lvm.Instr{
		{Op: lvm.OpJump, A: 3},
		{Op: lvm.OpConst, A: 0},
		{Op: lvm.OpPop},
		{Op: lvm.OpReturnVoid},
	}
	_, m := buildProg(code, []lvm.Value{lvm.Int(1)}, 0)
	g, err := BuildCFG(m)
	if err != nil {
		t.Fatal(err)
	}
	dead := g.Unreachable()
	if len(dead) != 2 || dead[0] != 1 || dead[1] != 2 {
		t.Errorf("dead = %v, want [1 2]", dead)
	}
}

func TestCFGCycle(t *testing.T) {
	// 0: const, 1: jmpf 3, 2: jmp 0, 3: retv — a loop.
	code := []lvm.Instr{
		{Op: lvm.OpConst, A: 0},
		{Op: lvm.OpJumpFalse, A: 3},
		{Op: lvm.OpJump, A: 0},
		{Op: lvm.OpReturnVoid},
	}
	_, m := buildProg(code, []lvm.Value{lvm.Bool(false)}, 0)
	g, err := BuildCFG(m)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasCycle() {
		t.Error("loop not detected")
	}
}

func TestCFGHandlerCycle(t *testing.T) {
	// A handler whose target lies inside its own protected range can loop via
	// repeated throws: 0: const, 1: throw, 2: retv; handler [0,2) -> 0.
	code := []lvm.Instr{
		{Op: lvm.OpConst, A: 0},
		{Op: lvm.OpThrow},
		{Op: lvm.OpReturnVoid},
	}
	_, m := buildProg(code, []lvm.Value{lvm.Str("boom")}, 0)
	m.Handlers = []lvm.Handler{{Start: 0, End: 2, Target: 0}}
	g, err := BuildCFG(m)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasCycle() {
		t.Error("throw/handler loop not detected")
	}
}

func TestCFGDeadHandlerStaysDead(t *testing.T) {
	// The handler protects only dead code, so its target is dead too.
	// 0: jmp 4, 1: const (dead), 2: pop (dead), 3: retv (dead, handler target), 4: retv
	code := []lvm.Instr{
		{Op: lvm.OpJump, A: 4},
		{Op: lvm.OpConst, A: 0},
		{Op: lvm.OpPop},
		{Op: lvm.OpReturnVoid},
		{Op: lvm.OpReturnVoid},
	}
	_, m := buildProg(code, []lvm.Value{lvm.Int(1)}, 0)
	m.Handlers = []lvm.Handler{{Start: 1, End: 3, Target: 3}}
	g, err := BuildCFG(m)
	if err != nil {
		t.Fatal(err)
	}
	dead := g.Unreachable()
	if len(dead) != 3 {
		t.Errorf("dead = %v, want [1 2 3]", dead)
	}
}

func mustAssembleMethod(t *testing.T, body string) (*lvm.Program, *lvm.Method) {
	t.Helper()
	p, err := lvm.Assemble(body)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := p.Method("C", "m")
	if m == nil {
		t.Fatal("no C.m in source")
	}
	return p, m
}

func TestTypeCheckTable(t *testing.T) {
	tests := []struct {
		name    string
		src     string
		wantErr string // "" = accept
	}{
		{
			name: "good arithmetic",
			src: `class C
  method int m(int a)
    load a
    push 2
    mul
    ret
  end
end`,
		},
		{
			name: "add on strings",
			src: `class C
  method void m()
    push "a"
    push "b"
    add
    pop
    retv
  end
end`,
			wantErr: "add on str",
		},
		{
			name: "order-compare string against int",
			src: `class C
  method void m()
    push "a"
    push 1
    lt
    pop
    retv
  end
end`,
			wantErr: "lt on str",
		},
		{
			name: "eq tolerates mixed kinds",
			src: `class C
  method void m()
    push "a"
    push 1
    eq
    pop
    retv
  end
end`,
		},
		{
			name: "getfield on int",
			src: `class C
  field x
  method void m()
    push 7
    getfield x
    pop
    retv
  end
end`,
			wantErr: "getfield on int",
		},
		{
			name: "call on int receiver",
			src: `class C
  method void m()
    push 7
    call m 0
    pop
    retv
  end
end`,
			wantErr: "call m on int",
		},
		{
			name: "unknown method on known class",
			src: `class C
  method void m()
    new C
    call ghost 0
    pop
    retv
  end
end`,
			wantErr: "no method C.ghost",
		},
		{
			name: "len on int",
			src: `class C
  method void m()
    push 7
    len
    pop
    retv
  end
end`,
			wantErr: "len on int",
		},
		{
			name: "host result flows as any",
			src: `class C
  method void m()
    hostcall clock.now 0
    push 1
    add
    pop
    retv
  end
end`,
		},
		{
			name: "join of int and str is any",
			src: `class C
  method void m(bool c)
    local v
    load c
    jmpf alt
    push 1
    store v
    jmp use
  alt:
    push "s"
    store v
  use:
    load v
    push 1
    add
    pop
    retv
  end
end`,
		},
		{
			name: "join of two strings stays str",
			src: `class C
  method void m(bool c)
    local v
    load c
    jmpf alt
    push "a"
    store v
    jmp use
  alt:
    push "b"
    store v
  use:
    load v
    push 1
    add
    pop
    retv
  end
end`,
			wantErr: "add on str",
		},
		{
			name: "handler entry carries the exception string",
			src: `class C
  method void m()
  s:
    push "boom"
    throw
  e:
  h:
    push "!"
    concat
    pop
    retv
    handler s e h
  end
end`,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p, m := mustAssembleMethod(t, tt.src)
			_, err := TypeCheck(p, m)
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted, want error containing %q", tt.wantErr)
			}
			if !strings.Contains(err.Error(), tt.wantErr) {
				t.Errorf("error %q does not contain %q", err, tt.wantErr)
			}
		})
	}
}

func TestTypeCheckRejectsDeadBadOperand(t *testing.T) {
	code := []lvm.Instr{
		{Op: lvm.OpReturnVoid},
		{Op: lvm.OpConst, A: 9},
		{Op: lvm.OpReturnVoid},
	}
	p, m := buildProg(code, nil, 0)
	if _, err := TypeCheck(p, m); err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Errorf("want dead-operand rejection, got %v", err)
	}
}

func TestInferCapsTransitive(t *testing.T) {
	src := `class C
  method void m()
    load self
    call helper 0
    pop
    hostcall ctx.method 0
    pop
    retv
  end
  method void helper()
    push "k"
    push "v"
    hostcall store.put 2
    pop
    retv
  end
end`
	p, m := mustAssembleMethod(t, src)
	rep, err := AnalyzeMethod(p, m)
	if err != nil {
		t.Fatal(err)
	}
	wantCalls := []string{"ctx.method", "store.put"}
	if len(rep.HostCalls) != len(wantCalls) {
		t.Fatalf("host calls = %v, want %v", rep.HostCalls, wantCalls)
	}
	for i := range wantCalls {
		if rep.HostCalls[i] != wantCalls[i] {
			t.Errorf("host calls = %v, want %v", rep.HostCalls, wantCalls)
		}
	}
	wantCaps := []sandbox.Capability{sandbox.CapCtx, sandbox.CapStore}
	if len(rep.Caps) != 2 || rep.Caps[0] != wantCaps[0] || rep.Caps[1] != wantCaps[1] {
		t.Errorf("caps = %v, want %v", rep.Caps, wantCaps)
	}
	// helper alone must not inherit m's ctx call.
	hr, err := AnalyzeMethod(p, p.Method("C", "helper"))
	if err != nil {
		t.Fatal(err)
	}
	if len(hr.Caps) != 1 || hr.Caps[0] != sandbox.CapStore {
		t.Errorf("helper caps = %v, want [store]", hr.Caps)
	}
}

func TestInferCapsClosedWorldFallback(t *testing.T) {
	// The receiver of the call is a host result (any), so every same-named
	// method in the program is a potential callee.
	src := `class C
  method void m()
    hostcall ctx.result 0
    call leak 0
    pop
    retv
  end
end
class D
  method void leak()
    push "x"
    hostcall net.post 1
    pop
    retv
  end
end`
	p, err := lvm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AnalyzeMethod(p, p.Method("C", "m"))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range rep.Caps {
		if c == sandbox.CapNet {
			found = true
		}
	}
	if !found {
		t.Errorf("closed-world call should pick up net from D.leak, got %v", rep.Caps)
	}
}

func TestFuelBounds(t *testing.T) {
	straight := `class C
  method void m()
    push 1
    push 2
    add
    pop
    retv
  end
end`
	p, m := mustAssembleMethod(t, straight)
	rep, err := AnalyzeMethod(p, m)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Fuel.Bounded || rep.Fuel.Steps != len(m.Code) {
		t.Errorf("fuel = %+v, want bounded %d steps", rep.Fuel, len(m.Code))
	}

	loop := `class C
  method void m()
  top:
    push 1
    pop
    jmp top
  end
end`
	p, m = mustAssembleMethod(t, loop)
	rep, err = AnalyzeMethod(p, m)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fuel.Bounded {
		t.Errorf("loop reported bounded: %+v", rep.Fuel)
	}

	recursive := `class C
  method void m()
    load self
    call m 0
    pop
    retv
  end
end`
	p, m = mustAssembleMethod(t, recursive)
	rep, err = AnalyzeMethod(p, m)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fuel.Bounded {
		t.Errorf("recursion reported bounded: %+v", rep.Fuel)
	}

	calls := `class C
  method void m()
    load self
    call helper 0
    pop
    retv
  end
  method void helper()
    push 1
    pop
    retv
  end
end`
	p, m = mustAssembleMethod(t, calls)
	rep, err = AnalyzeMethod(p, m)
	if err != nil {
		t.Fatal(err)
	}
	helper := p.Method("C", "helper")
	want := len(m.Code) + len(helper.Code)
	if !rep.Fuel.Bounded || rep.Fuel.Steps != want {
		t.Errorf("fuel = %+v, want bounded %d steps", rep.Fuel, want)
	}
}

func TestAnalyzeProgramWarnsUnreachable(t *testing.T) {
	code := []lvm.Instr{
		{Op: lvm.OpJump, A: 2},
		{Op: lvm.OpNop},
		{Op: lvm.OpReturnVoid},
	}
	p, _ := buildProg(code, nil, 0)
	rep, err := AnalyzeProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Warnings) != 1 || !strings.Contains(rep.Warnings[0], "pc 1 unreachable") {
		t.Errorf("warnings = %v", rep.Warnings)
	}
	if mr := rep.Method("C", "m"); mr == nil || len(mr.Unreachable) != 1 {
		t.Errorf("method report missing unreachable pcs: %+v", mr)
	}
}
