package analysis

import (
	"testing"
)

// fuelOfSrc analyses src and returns C.m's fuel verdict.
func fuelOfSrc(t *testing.T, src string) Fuel {
	t.Helper()
	p, m := mustAssembleMethod(t, src)
	rep, err := AnalyzeMethod(p, m)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return rep.Fuel
}

func TestFuelCountedLoop(t *testing.T) {
	f := fuelOfSrc(t, `class C
  method void m()
    local i
    push 0
    store i
  top:
    load i
    push 10
    lt
    jmpf done
    load i
    push 1
    add
    store i
    jmp top
  done:
    retv
  end
end`)
	if !f.Bounded {
		t.Fatal("counted loop should be bounded")
	}
	// Entry 2×1, header 4×11 (final failing test included), body 5×10, exit 1.
	if want := 2 + 4*11 + 5*10 + 1; f.Steps != want {
		t.Errorf("steps = %d, want %d", f.Steps, want)
	}
}

func TestFuelCountedLoopDown(t *testing.T) {
	f := fuelOfSrc(t, `class C
  method void m()
    local i
    push 5
    store i
  top:
    load i
    push 0
    gt
    jmpf done
    load i
    push 1
    sub
    store i
    jmp top
  done:
    retv
  end
end`)
	if !f.Bounded {
		t.Fatal("down-counting loop should be bounded")
	}
	if want := 2 + 4*6 + 5*5 + 1; f.Steps != want {
		t.Errorf("steps = %d, want %d", f.Steps, want)
	}
}

func TestFuelNestedLoops(t *testing.T) {
	f := fuelOfSrc(t, `class C
  method void m()
    local i
    local j
    push 0
    store i
  outer:
    load i
    push 2
    lt
    jmpf done
    push 0
    store j
  inner:
    load j
    push 3
    lt
    jmpf iend
    load j
    push 1
    add
    store j
    jmp inner
  iend:
    load i
    push 1
    add
    store i
    jmp outer
  done:
    retv
  end
end`)
	if !f.Bounded {
		t.Fatal("nested counted loops should be bounded")
	}
	// entry 2×1 + outer header 4×3 + inner preheader 2×2 + inner header
	// 4×(2×4) + inner body 5×(2×3) + outer latch 5×2 + exit 1×1.
	if want := 2 + 12 + 4 + 32 + 30 + 10 + 1; f.Steps != want {
		t.Errorf("steps = %d, want %d", f.Steps, want)
	}
}

func TestFuelLoopWithBoundedCall(t *testing.T) {
	f := fuelOfSrc(t, `class C
  method void m()
    local i
    push 0
    store i
  top:
    load i
    push 4
    lt
    jmpf done
    load self
    call tick 0
    pop
    load i
    push 1
    add
    store i
    jmp top
  done:
    retv
  end
  method int tick()
    push 1
    ret
  end
end`)
	if !f.Bounded {
		t.Fatal("loop calling bounded helper should be bounded")
	}
	// Body per iteration: load self, call(+2 callee), pop, 4 update instrs,
	// jmp = 8 instructions + 2 callee steps; header 4, ×5; entry 2; exit 1.
	if want := 2 + 4*5 + (8+2)*4 + 1; f.Steps != want {
		t.Errorf("steps = %d, want %d", f.Steps, want)
	}
}

func TestFuelInfiniteLoopStaysUnbounded(t *testing.T) {
	f := fuelOfSrc(t, `class C
  method void m()
  top:
    jmp top
  end
end`)
	if f.Bounded {
		t.Fatal("jmp-to-self must stay unbounded")
	}
}

func TestFuelConditionalUpdateUnbounded(t *testing.T) {
	// The increment is guarded: iterations may skip it, so the loop can spin
	// forever and must not be credited with a constant trip count.
	f := fuelOfSrc(t, `class C
  method void m(bool c)
    local i
    push 0
    store i
  top:
    load i
    push 10
    lt
    jmpf done
    load c
    jmpf skip
    load i
    push 1
    add
    store i
  skip:
    jmp top
  done:
    retv
  end
end`)
	if f.Bounded {
		t.Fatal("conditionally-updated induction variable must stay unbounded")
	}
}

func TestFuelNonConstantBoundUnbounded(t *testing.T) {
	f := fuelOfSrc(t, `class C
  method void m(int n)
    local i
    push 0
    store i
  top:
    load i
    load n
    lt
    jmpf done
    load i
    push 1
    add
    store i
    jmp top
  done:
    retv
  end
end`)
	if f.Bounded {
		t.Fatal("variable loop bound must stay unbounded")
	}
}

func TestFuelWrongDirectionUnbounded(t *testing.T) {
	// i counts down while the test is i < 10: never terminates from 0.
	f := fuelOfSrc(t, `class C
  method void m()
    local i
    push 0
    store i
  top:
    load i
    push 10
    lt
    jmpf done
    load i
    push 1
    sub
    store i
    jmp top
  done:
    retv
  end
end`)
	if f.Bounded {
		t.Fatal("decrement under an upper-bound test must stay unbounded")
	}
}

func TestFuelZeroTripLoop(t *testing.T) {
	f := fuelOfSrc(t, `class C
  method void m()
    local i
    push 7
    store i
  top:
    load i
    push 3
    lt
    jmpf done
    load i
    push 1
    add
    store i
    jmp top
  done:
    retv
  end
end`)
	if !f.Bounded {
		t.Fatal("zero-trip loop should be bounded")
	}
	// Body never runs; header runs its one failing test.
	if want := 2 + 4 + 1; f.Steps != want {
		t.Errorf("steps = %d, want %d", f.Steps, want)
	}
}

func TestFuelLoopRecursionStillUnbounded(t *testing.T) {
	f := fuelOfSrc(t, `class C
  method void m()
    local i
    push 0
    store i
  top:
    load i
    push 2
    lt
    jmpf done
    load self
    call m2 0
    pop
    load i
    push 1
    add
    store i
    jmp top
  done:
    retv
  end
  method int m2()
    load self
    call m2 0
    ret
  end
end`)
	if f.Bounded {
		t.Fatal("recursion inside a counted loop must stay unbounded")
	}
}
