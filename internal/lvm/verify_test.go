package lvm

import (
	"strings"
	"testing"
)

func TestVerifyAcceptsAssembledPrograms(t *testing.T) {
	// Everything the assembler produces for well-formed sources must verify.
	for i, src := range []string{disasmFixture, lvmFixtureA, lvmFixtureB, robotVerifySrc} {
		prog, err := Assemble(src)
		if err != nil {
			t.Fatalf("fixture %d: %v", i, err)
		}
		if err := VerifyProgram(prog); err != nil {
			t.Errorf("fixture %d: %v", i, err)
		}
	}
}

const robotVerifySrc = `
class Robot
  field pos
  method void move(int d)
    getself pos
    load d
    add
    setself pos
  end
  method int loop(int n)
    local acc
    push 0
    store acc
  top:
    load n
    push 0
    gt
    jmpf out
    load acc
    load n
    add
    store acc
    load n
    push 1
    sub
    store n
    jmp top
  out:
    load acc
    ret
  end
end`

func buildMethod(code []Instr, consts []Value, params int) (*Program, *Method) {
	p := NewProgram()
	c := NewClass("C")
	m := &Method{Name: "m", Return: "void", Code: code, Consts: consts}
	for i := 0; i < params; i++ {
		m.Params = append(m.Params, "int")
	}
	c.AddMethod(m)
	p.AddClass(c)
	return p, m
}

func TestVerifyRejectsMalformed(t *testing.T) {
	tests := []struct {
		name    string
		code    []Instr
		consts  []Value
		wantSub string
	}{
		{
			name:    "empty body",
			code:    nil,
			wantSub: "empty body",
		},
		{
			name:    "stack underflow",
			code:    []Instr{{Op: OpAdd}, {Op: OpReturnVoid}},
			wantSub: "underflow",
		},
		{
			name:    "const out of range",
			code:    []Instr{{Op: OpConst, A: 3}, {Op: OpReturnVoid}},
			wantSub: "const index",
		},
		{
			name:    "load out of range",
			code:    []Instr{{Op: OpLoad, A: 9}, {Op: OpReturnVoid}},
			wantSub: "load slot",
		},
		{
			name:    "jump out of range",
			code:    []Instr{{Op: OpJump, A: 99}},
			wantSub: "out of range",
		},
		{
			name: "inconsistent depth",
			code: []Instr{
				{Op: OpConst, A: 0},     // 0: push
				{Op: OpJumpFalse, A: 3}, // 1: pops cond... depth 0 -> branch
				{Op: OpConst, A: 0},     // 2: push (depth 1 at pc 3 via fallthrough)
				{Op: OpReturnVoid},      // 3: reached with depth 0 and 1
			},
			consts:  []Value{Int(1)},
			wantSub: "inconsistent stack depth",
		},
		{
			name:    "falls off the end",
			code:    []Instr{{Op: OpNop}},
			wantSub: "fall off the end",
		},
		{
			name:    "dead tail falls off the end",
			code:    []Instr{{Op: OpReturnVoid}, {Op: OpNop}},
			wantSub: "fall off the end",
		},
		{
			name:    "dead code with bad operand",
			code:    []Instr{{Op: OpReturnVoid}, {Op: OpConst, A: 9}, {Op: OpReturnVoid}},
			wantSub: "unreachable",
		},
		{
			name:    "return without value",
			code:    []Instr{{Op: OpReturn}},
			wantSub: "underflow",
		},
		{
			name:    "unknown class in new",
			code:    []Instr{{Op: OpNew, Sym: "Ghost"}, {Op: OpPop}, {Op: OpReturnVoid}},
			wantSub: "unknown class",
		},
		{
			name:    "call needs receiver",
			code:    []Instr{{Op: OpCall, Sym: "x", B: 0}, {Op: OpPop}, {Op: OpReturnVoid}},
			wantSub: "underflow",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p, m := buildMethod(tt.code, tt.consts, 0)
			err := VerifyMethod(p, m)
			if err == nil {
				t.Fatal("verification passed")
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("error %q does not contain %q", err, tt.wantSub)
			}
		})
	}
}

func TestVerifyHandlerRanges(t *testing.T) {
	p, m := buildMethod([]Instr{{Op: OpReturnVoid}}, nil, 0)
	m.Handlers = []Handler{{Start: 0, End: 5, Target: 0}}
	if err := VerifyMethod(p, m); err == nil {
		t.Error("bad handler end accepted")
	}
	m.Handlers = []Handler{{Start: 0, End: 1, Target: 7}}
	if err := VerifyMethod(p, m); err == nil {
		t.Error("bad handler target accepted")
	}
}

func TestVerifyHandlerEntryDepth(t *testing.T) {
	// Handler entry receives the message on the stack; a handler that pops
	// twice must be rejected.
	prog := MustAssemble(`
class C
  method void m()
  s:
    push 1
    pop
  e:
    retv
  h:
    pop
    pop
    retv
    handler s e h
  end
end`)
	err := VerifyMethod(prog, prog.Method("C", "m"))
	if err == nil || !strings.Contains(err.Error(), "underflow") {
		t.Errorf("handler over-pop: %v", err)
	}
}
