package lvm

import (
	"errors"
	"fmt"
)

// Host is the gateway through which LVM code reaches the outside world. The
// sandbox package wraps a Host with capability checks before handing it to
// foreign extension code.
type Host interface {
	HostCall(name string, args []Value) (Value, error)
}

// PrecheckedHost is a Host that can prove, ahead of execution, that specific
// functions need no per-dispatch policy check. Prechecked returns a Host to
// dispatch fn through directly — skipping the wrapper's checks — or nil when
// fn still requires the checked path. The interpreter and the JIT consult it
// so statically-proven host calls bypass the capability gate entirely.
type PrecheckedHost interface {
	Host
	Prechecked(fn string) Host
}

// HostMap is a simple Host backed by a map of named functions.
type HostMap map[string]func(args []Value) (Value, error)

// HostCall implements Host.
func (h HostMap) HostCall(name string, args []Value) (Value, error) {
	fn, ok := h[name]
	if !ok {
		return Nil(), &Thrown{Msg: "unknown host function: " + name}
	}
	return fn(args)
}

// Thrown is an LVM-level exception. It can be caught by a handler table
// entry; any other Go error aborts execution outright.
type Thrown struct {
	Msg string
}

// Error implements error.
func (t *Thrown) Error() string { return "lvm: thrown: " + t.Msg }

// Throwf raises a formatted LVM exception.
func Throwf(format string, args ...any) error {
	return &Thrown{Msg: fmt.Sprintf(format, args...)}
}

// VM-level (uncatchable) errors.
var (
	// ErrStepBudget is returned when execution exceeds the step budget.
	ErrStepBudget = errors.New("lvm: step budget exhausted")
	// ErrStackDepth is returned when the call stack exceeds the limit.
	ErrStackDepth = errors.New("lvm: call stack too deep")
)

// DefaultMaxSteps bounds runaway bytecode unless callers override it.
const DefaultMaxSteps = 10_000_000

// DefaultMaxDepth bounds recursive LVM calls.
const DefaultMaxDepth = 256

// Interp executes LVM bytecode directly (without JIT compilation and
// therefore without any weaving hooks). It is the execution engine for
// sandboxed extension advice and the non-instrumented baseline in the
// overhead experiments.
type Interp struct {
	Prog     *Program
	Host     Host
	MaxSteps int64
	MaxDepth int
}

// NewInterp returns an interpreter over prog using host for host calls.
func NewInterp(prog *Program, host Host) *Interp {
	return &Interp{Prog: prog, Host: host, MaxSteps: DefaultMaxSteps, MaxDepth: DefaultMaxDepth}
}

// Invoke runs m with the given receiver and arguments and returns the result.
// A *Thrown error indicates an uncaught LVM exception.
func (in *Interp) Invoke(m *Method, self *Object, args []Value) (Value, error) {
	steps := in.MaxSteps
	if steps <= 0 {
		steps = DefaultMaxSteps
	}
	return in.run(m, self, args, &steps, 0)
}

func (in *Interp) run(m *Method, self *Object, args []Value, steps *int64, depth int) (Value, error) {
	if depth > in.maxDepth() {
		return Nil(), ErrStackDepth
	}
	if len(args) != m.Arity() {
		return Nil(), Throwf("%s: want %d args, got %d", m, m.Arity(), len(args))
	}
	locals := make([]Value, m.FrameSize())
	locals[0] = Obj(self)
	copy(locals[1:], args)
	stack := make([]Value, 0, 8)

	pc := 0
	code := m.Code
	for pc < len(code) {
		*steps--
		if *steps < 0 {
			return Nil(), ErrStepBudget
		}
		ins := code[pc]
		var err error
		switch ins.Op {
		case OpNop:
		case OpConst:
			stack = append(stack, m.Consts[ins.A])
		case OpLoad:
			stack = append(stack, locals[ins.A])
		case OpStore:
			locals[ins.A] = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
		case OpGetField:
			o := stack[len(stack)-1]
			if o.K != KObj || o.O == nil {
				err = Throwf("getfield on non-object")
				break
			}
			stack[len(stack)-1] = o.O.Get(ins.A)
		case OpSetField:
			v := stack[len(stack)-1]
			o := stack[len(stack)-2]
			stack = stack[:len(stack)-2]
			if o.K != KObj || o.O == nil {
				err = Throwf("setfield on non-object")
				break
			}
			o.O.Set(ins.A, v)
		case OpGetSelf:
			if self == nil {
				err = Throwf("getself with nil self")
				break
			}
			stack = append(stack, self.Get(ins.A))
		case OpSetSelf:
			if self == nil {
				err = Throwf("setself with nil self")
				break
			}
			self.Set(ins.A, stack[len(stack)-1])
			stack = stack[:len(stack)-1]
		case OpAdd, OpSub, OpMul, OpDiv, OpMod:
			b := stack[len(stack)-1]
			a := stack[len(stack)-2]
			stack = stack[:len(stack)-1]
			var r int64
			r, err = arith(ins.Op, a.I, b.I)
			stack[len(stack)-1] = Int(r)
		case OpNeg:
			stack[len(stack)-1] = Int(-stack[len(stack)-1].I)
		case OpEq, OpNe:
			b := stack[len(stack)-1]
			a := stack[len(stack)-2]
			stack = stack[:len(stack)-1]
			eq := a.Equal(b)
			if ins.Op == OpNe {
				eq = !eq
			}
			stack[len(stack)-1] = Bool(eq)
		case OpLt, OpLe, OpGt, OpGe:
			b := stack[len(stack)-1]
			a := stack[len(stack)-2]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] = Bool(compare(ins.Op, a, b))
		case OpAnd:
			b := stack[len(stack)-1]
			a := stack[len(stack)-2]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] = Bool(a.AsBool() && b.AsBool())
		case OpOr:
			b := stack[len(stack)-1]
			a := stack[len(stack)-2]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] = Bool(a.AsBool() || b.AsBool())
		case OpNot:
			stack[len(stack)-1] = Bool(!stack[len(stack)-1].AsBool())
		case OpConcat:
			b := stack[len(stack)-1]
			a := stack[len(stack)-2]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] = Str(a.String() + b.String())
		case OpLen:
			v := stack[len(stack)-1]
			switch v.K {
			case KStr:
				stack[len(stack)-1] = Int(int64(len(v.S)))
			case KBytes:
				stack[len(stack)-1] = Int(int64(len(v.B)))
			default:
				err = Throwf("len on %s", v.K)
			}
		case OpJump:
			pc = ins.A
			continue
		case OpJumpFalse:
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if !v.AsBool() {
				pc = ins.A
				continue
			}
		case OpCall:
			n := ins.B
			if len(stack) < n+1 {
				err = Throwf("call %s: stack underflow", ins.Sym)
				break
			}
			callArgs := make([]Value, n)
			copy(callArgs, stack[len(stack)-n:])
			recv := stack[len(stack)-n-1]
			stack = stack[:len(stack)-n-1]
			if recv.K != KObj || recv.O == nil {
				err = Throwf("call %s on non-object", ins.Sym)
				break
			}
			callee := recv.O.Class.Methods[ins.Sym]
			if callee == nil {
				err = Throwf("no method %s.%s", recv.O.Class.Name, ins.Sym)
				break
			}
			var r Value
			r, err = in.run(callee, recv.O, callArgs, steps, depth+1)
			if err == nil {
				stack = append(stack, r)
			}
		case OpHostCall:
			n := ins.B
			if len(stack) < n {
				err = Throwf("hostcall %s: stack underflow", ins.Sym)
				break
			}
			callArgs := make([]Value, n)
			copy(callArgs, stack[len(stack)-n:])
			stack = stack[:len(stack)-n]
			if in.Host == nil {
				err = Throwf("no host environment for %s", ins.Sym)
				break
			}
			host := in.Host
			if ph, ok := host.(PrecheckedHost); ok {
				if direct := ph.Prechecked(ins.Sym); direct != nil {
					host = direct
				}
			}
			var r Value
			r, err = host.HostCall(ins.Sym, callArgs)
			if err == nil {
				stack = append(stack, r)
			}
		case OpNew:
			cls := in.Prog.Class(ins.Sym)
			if cls == nil {
				err = Throwf("unknown class %s", ins.Sym)
				break
			}
			stack = append(stack, Obj(cls.New()))
		case OpThrow:
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			err = &Thrown{Msg: v.String()}
		case OpReturn:
			return stack[len(stack)-1], nil
		case OpReturnVoid:
			return Nil(), nil
		case OpPop:
			stack = stack[:len(stack)-1]
		case OpDup:
			stack = append(stack, stack[len(stack)-1])
		default:
			return Nil(), fmt.Errorf("lvm: bad opcode %d at %s pc=%d", ins.Op, m, pc)
		}
		if err != nil {
			var thrown *Thrown
			if errors.As(err, &thrown) {
				if h, ok := findHandler(m.Handlers, pc); ok {
					stack = stack[:0]
					stack = append(stack, Str(thrown.Msg))
					pc = h.Target
					continue
				}
			}
			return Nil(), err
		}
		pc++
	}
	return Nil(), nil
}

func (in *Interp) maxDepth() int {
	if in.MaxDepth > 0 {
		return in.MaxDepth
	}
	return DefaultMaxDepth
}

func arith(op Op, a, b int64) (int64, error) {
	switch op {
	case OpAdd:
		return a + b, nil
	case OpSub:
		return a - b, nil
	case OpMul:
		return a * b, nil
	case OpDiv:
		if b == 0 {
			return 0, Throwf("divide by zero")
		}
		return a / b, nil
	case OpMod:
		if b == 0 {
			return 0, Throwf("divide by zero")
		}
		return a % b, nil
	}
	return 0, fmt.Errorf("lvm: not arithmetic: %s", op)
}

func compare(op Op, a, b Value) bool {
	if a.K == KStr && b.K == KStr {
		switch op {
		case OpLt:
			return a.S < b.S
		case OpLe:
			return a.S <= b.S
		case OpGt:
			return a.S > b.S
		case OpGe:
			return a.S >= b.S
		}
	}
	switch op {
	case OpLt:
		return a.I < b.I
	case OpLe:
		return a.I <= b.I
	case OpGt:
		return a.I > b.I
	case OpGe:
		return a.I >= b.I
	}
	return false
}

func findHandler(hs []Handler, pc int) (Handler, bool) {
	for _, h := range hs {
		if pc >= h.Start && pc < h.End {
			return h, true
		}
	}
	return Handler{}, false
}
