package lvm

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func run(t *testing.T, prog *Program, class, method string, args ...Value) (Value, error) {
	t.Helper()
	m := prog.Method(class, method)
	if m == nil {
		t.Fatalf("no method %s.%s", class, method)
	}
	in := NewInterp(prog, nil)
	cls := prog.Class(class)
	return in.Invoke(m, cls.New(), args)
}

func TestArithmetic(t *testing.T) {
	prog := MustAssemble(`
class Math
  method int add3(int a, int b, int c)
    load a
    load b
    add
    load c
    add
    ret
  end
  method int mix(int a, int b)
    load a
    load b
    mul
    load a
    load b
    sub
    add
    ret
  end
end`)
	v, err := run(t, prog, "Math", "add3", Int(1), Int(2), Int(3))
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 6 {
		t.Errorf("add3 = %d, want 6", v.I)
	}
	v, err = run(t, prog, "Math", "mix", Int(7), Int(5))
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 7*5+7-5 {
		t.Errorf("mix = %d, want %d", v.I, 7*5+7-5)
	}
}

func TestLoopAndBranch(t *testing.T) {
	prog := MustAssemble(`
class Math
  method int sumTo(int n)
    local acc
    local i
    push 0
    store acc
    push 1
    store i
  loop:
    load i
    load n
    le
    jmpf done
    load acc
    load i
    add
    store acc
    load i
    push 1
    add
    store i
    jmp loop
  done:
    load acc
    ret
  end
end`)
	tests := []struct {
		n, want int64
	}{
		{0, 0}, {1, 1}, {10, 55}, {100, 5050},
	}
	for _, tt := range tests {
		v, err := run(t, prog, "Math", "sumTo", Int(tt.n))
		if err != nil {
			t.Fatal(err)
		}
		if v.I != tt.want {
			t.Errorf("sumTo(%d) = %d, want %d", tt.n, v.I, tt.want)
		}
	}
}

func TestFieldsAndObjects(t *testing.T) {
	prog := MustAssemble(`
class Counter
  field count
  method void init()
    push 0
    setself count
  end
  method int inc()
    getself count
    push 1
    add
    dup
    setself count
    ret
  end
end
class Factory
  method int spin(int n)
    local c
    local i
    new Counter
    store c
    load c
    call init 0
    pop
    push 0
    store i
  loop:
    load i
    load n
    lt
    jmpf done
    load c
    call inc 0
    pop
    load i
    push 1
    add
    store i
    jmp loop
  done:
    load c
    getfield Counter.count
    ret
  end
end`)
	v, err := run(t, prog, "Factory", "spin", Int(5))
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 5 {
		t.Errorf("spin(5) = %d, want 5", v.I)
	}
}

func TestExceptionHandling(t *testing.T) {
	prog := MustAssemble(`
class App
  method str guarded(int x)
  tryStart:
    load x
    push 0
    eq
    jmpf ok
    push "boom"
    throw
  ok:
    push "fine"
    ret
  tryEnd:
  catch:
    push "caught:"
    ; exception message is on the stack... swap not available, rebuild
    concat
    ret
    handler tryStart tryEnd catch
  end
end`)
	v, err := run(t, prog, "App", "guarded", Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if v.S != "fine" {
		t.Errorf("guarded(1) = %q, want fine", v.S)
	}
	v, err = run(t, prog, "App", "guarded", Int(0))
	if err != nil {
		t.Fatal(err)
	}
	// concat pops (msg, "caught:") in stack order: message was pushed by the
	// handler entry, then "caught:", so concat yields msg+"caught:".
	if v.S != "boomcaught:" {
		t.Errorf("guarded(0) = %q", v.S)
	}
}

func TestUncaughtExceptionPropagates(t *testing.T) {
	prog := MustAssemble(`
class App
  method void blow()
    push "kaput"
    throw
  end
  method void indirect()
    load self
    call blow 0
    pop
  end
end`)
	_, err := run(t, prog, "App", "indirect")
	var thrown *Thrown
	if !errors.As(err, &thrown) {
		t.Fatalf("want *Thrown, got %v", err)
	}
	if thrown.Msg != "kaput" {
		t.Errorf("msg = %q", thrown.Msg)
	}
}

func TestDivideByZeroIsCatchable(t *testing.T) {
	prog := MustAssemble(`
class App
  method int safeDiv(int a, int b)
  s:
    load a
    load b
    div
    ret
  e:
  h:
    pop
    push -1
    ret
    handler s e h
  end
end`)
	v, err := run(t, prog, "App", "safeDiv", Int(10), Int(2))
	if err != nil || v.I != 5 {
		t.Fatalf("safeDiv(10,2) = %v, %v", v, err)
	}
	v, err = run(t, prog, "App", "safeDiv", Int(10), Int(0))
	if err != nil || v.I != -1 {
		t.Fatalf("safeDiv(10,0) = %v, %v", v, err)
	}
}

func TestHostCall(t *testing.T) {
	prog := MustAssemble(`
class App
  method int probe(int x)
    load x
    hostcall double 1
    ret
  end
end`)
	host := HostMap{
		"double": func(args []Value) (Value, error) {
			return Int(args[0].I * 2), nil
		},
	}
	in := NewInterp(prog, host)
	m := prog.Method("App", "probe")
	v, err := in.Invoke(m, prog.Class("App").New(), []Value{Int(21)})
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 42 {
		t.Errorf("probe = %d, want 42", v.I)
	}
}

func TestUnknownHostCallIsThrown(t *testing.T) {
	prog := MustAssemble(`
class App
  method void bad()
    hostcall nothere 0
    pop
  end
end`)
	in := NewInterp(prog, HostMap{})
	_, err := in.Invoke(prog.Method("App", "bad"), prog.Class("App").New(), nil)
	var thrown *Thrown
	if !errors.As(err, &thrown) {
		t.Fatalf("want thrown, got %v", err)
	}
}

func TestStepBudget(t *testing.T) {
	prog := MustAssemble(`
class App
  method void spin()
  loop:
    jmp loop
  end
end`)
	in := NewInterp(prog, nil)
	in.MaxSteps = 1000
	_, err := in.Invoke(prog.Method("App", "spin"), prog.Class("App").New(), nil)
	if !errors.Is(err, ErrStepBudget) {
		t.Fatalf("want ErrStepBudget, got %v", err)
	}
}

func TestRecursionDepthLimit(t *testing.T) {
	prog := MustAssemble(`
class App
  method void rec()
    load self
    call rec 0
    pop
  end
end`)
	in := NewInterp(prog, nil)
	_, err := in.Invoke(prog.Method("App", "rec"), prog.Class("App").New(), nil)
	if !errors.Is(err, ErrStackDepth) {
		t.Fatalf("want ErrStackDepth, got %v", err)
	}
}

func TestStringsAndComparison(t *testing.T) {
	prog := MustAssemble(`
class App
  method str greet(str name)
    push "hello, "
    load name
    concat
    ret
  end
  method bool isAbc(str s)
    load s
    push "abc"
    eq
    ret
  end
  method int strlen(str s)
    load s
    len
    ret
  end
end`)
	v, err := run(t, prog, "App", "greet", Str("world"))
	if err != nil || v.S != "hello, world" {
		t.Fatalf("greet = %v, %v", v, err)
	}
	v, _ = run(t, prog, "App", "isAbc", Str("abc"))
	if !v.AsBool() {
		t.Error("isAbc(abc) = false")
	}
	v, _ = run(t, prog, "App", "strlen", Str("four"))
	if v.I != 4 {
		t.Errorf("strlen = %d", v.I)
	}
}

func TestAssembleErrors(t *testing.T) {
	tests := []struct {
		name, src, wantSub string
	}{
		{"undefined label", "class C\nmethod void m()\njmp nowhere\nend\nend", "undefined label"},
		{"unknown instr", "class C\nmethod void m()\nfrobnicate\nend\nend", "unknown instruction"},
		{"field outside class", "field x", "field outside class"},
		{"instr outside method", "class C\npush 1\nend", "instruction outside method"},
		{"unknown local", "class C\nmethod void m()\nload zz\nend\nend", "unknown local"},
		{"unknown class in new", "class C\nmethod void m()\nnew Nope\nend\nend", "unknown class"},
		{"unknown field", "class C\nmethod void m()\ngetself nope\nend\nend", "unknown field"},
		{"missing end", "class C\nmethod void m()\nretv", "missing end"},
		{"bad literal", "class C\nmethod void m()\npush @@\nend\nend", "bad literal"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Assemble(tt.src)
			if err == nil {
				t.Fatal("want error")
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("error %q does not contain %q", err, tt.wantSub)
			}
		})
	}
}

func TestValueEqualProperties(t *testing.T) {
	// Reflexivity of Equal over ints and strings.
	if err := quick.Check(func(i int64, s string) bool {
		return Int(i).Equal(Int(i)) && Str(s).Equal(Str(s))
	}, nil); err != nil {
		t.Error(err)
	}
	// Int/Str never equal across kinds.
	if err := quick.Check(func(i int64, s string) bool {
		return !Int(i).Equal(Str(s))
	}, nil); err != nil {
		t.Error(err)
	}
	// Bytes equality is content equality.
	if err := quick.Check(func(b []byte) bool {
		c := make([]byte, len(b))
		copy(c, b)
		return Bytes(b).Equal(Bytes(c))
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestInterpArithmeticMatchesGo(t *testing.T) {
	prog := MustAssemble(`
class Math
  method int poly(int a, int b)
    load a
    load a
    mul
    load b
    push 3
    mul
    add
    push 7
    sub
    ret
  end
end`)
	in := NewInterp(prog, nil)
	m := prog.Method("Math", "poly")
	self := prog.Class("Math").New()
	if err := quick.Check(func(a, b int32) bool {
		v, err := in.Invoke(m, self, []Value{Int(int64(a)), Int(int64(b))})
		if err != nil {
			return false
		}
		want := int64(a)*int64(a) + int64(b)*3 - 7
		return v.I == want
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMethodString(t *testing.T) {
	prog := MustAssemble(`
class Motor
  method void rotate(int deg, bool fast)
    retv
  end
end`)
	got := prog.Method("Motor", "rotate").String()
	want := "void Motor.rotate(int, bool)"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestObjectFieldByName(t *testing.T) {
	c := NewClass("C")
	c.AddField("x")
	o := c.New()
	if !o.SetFieldByName("x", Int(9)) {
		t.Fatal("SetFieldByName failed")
	}
	v, ok := o.FieldByName("x")
	if !ok || v.I != 9 {
		t.Errorf("FieldByName = %v, %v", v, ok)
	}
	if _, ok := o.FieldByName("nope"); ok {
		t.Error("FieldByName(nope) should fail")
	}
	if o.SetFieldByName("nope", Int(1)) {
		t.Error("SetFieldByName(nope) should fail")
	}
}

func TestInstrString(t *testing.T) {
	tests := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpCall, Sym: "inc", B: 0}, "call inc 0"},
		{Instr{Op: OpConst, A: 3}, "const 3"},
		{Instr{Op: OpAdd}, "add"},
		{Instr{Op: OpNew, Sym: "C"}, "new C"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("String(%v) = %q, want %q", tt.in.Op, got, tt.want)
		}
	}
}

func TestValueString(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{Nil(), "nil"},
		{Int(-3), "-3"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Str("x"), "x"},
		{Bytes([]byte{1, 2}), "bytes[2]"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("String(%v) = %q, want %q", tt.v.K, got, tt.want)
		}
	}
}

func TestWrongArity(t *testing.T) {
	prog := MustAssemble(`
class App
  method int id(int x)
    load x
    ret
  end
end`)
	_, err := run(t, prog, "App", "id")
	if err == nil {
		t.Fatal("want arity error")
	}
}
