package lvm

import "testing"

// FuzzAssemble is the native-fuzzing counterpart of TestAssembleNeverPanics:
// mobile extension code arrives from the network, so the assembler must
// reject garbage with errors, never panics — and anything it accepts must
// disassemble into text it accepts again. Programs that additionally pass
// the static verifier (the production install pipeline is Assemble →
// VerifyProgram → run, see core.InstallBody) must run in the interpreter
// without panicking under a small step budget.
func FuzzAssemble(f *testing.F) {
	for _, seed := range []string{
		lvmFixtureA,
		lvmFixtureB,
		"class", "class \n end", "method", "end", "end\nend",
		"class C\nmethod void m()\npush\nend\nend",
		"class C\nmethod void m()\npush \"unterminated\nend\nend",
		"class C\nmethod void m()\nlabel:\njmp label\nend\nend",
		"class C\n  method int m()\n    push \"s\"\n    push 1\n    add\n    ret\n  end\nend",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Assemble(src)
		if err != nil {
			return
		}
		text := Disassemble(prog)
		if _, err := Assemble(text); err != nil {
			t.Fatalf("accepted program failed to round trip: %v\n%s", err, text)
		}
		if err := VerifyProgram(prog); err != nil {
			return // rejected before execution, exactly as a receiver would
		}
		in := NewInterp(prog, nil)
		in.MaxSteps = 2_000
		in.MaxDepth = 16
		prog.EachMethod(func(m *Method) {
			if m.Arity() != 0 {
				return
			}
			_, _ = in.Invoke(m, m.Class.New(), nil)
		})
	})
}
