package lvm

import "fmt"

// Op is an LVM opcode.
type Op uint8

// Opcodes. A is the primary integer operand; B the secondary. Sym carries a
// symbolic operand (method name, host-call name or class name).
const (
	OpNop Op = iota
	// OpConst pushes Consts[A].
	OpConst
	// OpLoad pushes local slot A (slot 0 is self, 1..n the parameters).
	OpLoad
	// OpStore pops into local slot A.
	OpStore
	// OpGetField pops an object and pushes its field slot A.
	OpGetField
	// OpSetField pops value then object and stores into field slot A.
	OpSetField
	// OpGetSelf pushes field slot A of self (shorthand for Load 0; GetField).
	OpGetSelf
	// OpSetSelf pops a value into field slot A of self.
	OpSetSelf
	// Arithmetic: pop two ints, push result.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	// OpNeg negates the int on top of the stack.
	OpNeg
	// Comparisons: pop two values, push bool.
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	// Logic.
	OpAnd
	OpOr
	OpNot
	// OpConcat pops two values and pushes their string concatenation.
	OpConcat
	// OpLen pushes the length of the string/bytes on top of the stack.
	OpLen
	// OpJump jumps to pc A.
	OpJump
	// OpJumpFalse pops a value and jumps to pc A when it is falsy.
	OpJumpFalse
	// OpCall pops B arguments then a receiver object and invokes method Sym
	// on it; the result (or nil for void) is pushed.
	OpCall
	// OpHostCall pops B arguments and calls host function Sym, pushing the
	// result. Host calls are the only way LVM code touches the outside world
	// and are gated by the sandbox.
	OpHostCall
	// OpNew pushes a new instance of class Sym.
	OpNew
	// OpThrow pops a value and raises it as an exception.
	OpThrow
	// OpReturn pops the return value and leaves the method.
	OpReturn
	// OpReturnVoid leaves the method with a nil result.
	OpReturnVoid
	// OpPop discards the top of the stack.
	OpPop
	// OpDup duplicates the top of the stack.
	OpDup
)

var opNames = map[Op]string{
	OpNop: "nop", OpConst: "const", OpLoad: "load", OpStore: "store",
	OpGetField: "getfield", OpSetField: "setfield",
	OpGetSelf: "getself", OpSetSelf: "setself",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpNeg: "neg",
	OpEq:  "eq", OpNe: "ne", OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge",
	OpAnd: "and", OpOr: "or", OpNot: "not",
	OpConcat: "concat", OpLen: "len",
	OpJump: "jmp", OpJumpFalse: "jmpf",
	OpCall: "call", OpHostCall: "hostcall", OpNew: "new",
	OpThrow: "throw", OpReturn: "ret", OpReturnVoid: "retv",
	OpPop: "pop", OpDup: "dup",
}

// String returns the assembler mnemonic for the opcode.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Instr is a single LVM instruction.
type Instr struct {
	Op  Op
	A   int
	B   int
	Sym string
}

// String renders the instruction in assembler syntax.
func (i Instr) String() string {
	switch i.Op {
	case OpCall, OpHostCall:
		return fmt.Sprintf("%s %s %d", i.Op, i.Sym, i.B)
	case OpNew:
		return fmt.Sprintf("%s %s", i.Op, i.Sym)
	case OpConst, OpLoad, OpStore, OpGetField, OpSetField, OpGetSelf,
		OpSetSelf, OpJump, OpJumpFalse:
		return fmt.Sprintf("%s %d", i.Op, i.A)
	default:
		return i.Op.String()
	}
}
