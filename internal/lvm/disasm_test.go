package lvm

import (
	"strings"
	"testing"
)

const disasmFixture = `
class Counter
  field count
  method int inc(int by)
    getself count
    load by
    add
    dup
    setself count
    ret
  end
  method int guarded(int a, int b)
  s:
    load a
    load b
    div
    ret
  e:
  h:
    pop
    push -1
    ret
    handler s e h
  end
  method int loopy(int n)
    local acc
    push 0
    store acc
  top:
    load n
    push 0
    gt
    jmpf out
    load acc
    load n
    add
    store acc
    load n
    push 1
    sub
    store n
    jmp top
  out:
    load acc
    ret
  end
end`

// TestDisassembleRoundTrip verifies that disassembled output reassembles
// into a semantically equivalent program.
func TestDisassembleRoundTrip(t *testing.T) {
	orig := MustAssemble(disasmFixture)
	text := Disassemble(orig)
	re, err := Assemble(text)
	if err != nil {
		t.Fatalf("reassemble failed: %v\n%s", err, text)
	}

	type call struct {
		method string
		args   []Value
		want   int64
		fails  bool
	}
	calls := []call{
		{method: "inc", args: []Value{Int(5)}, want: 5},
		{method: "guarded", args: []Value{Int(10), Int(2)}, want: 5},
		{method: "guarded", args: []Value{Int(10), Int(0)}, want: -1},
		{method: "loopy", args: []Value{Int(10)}, want: 55},
	}
	for _, c := range calls {
		for name, prog := range map[string]*Program{"orig": orig, "reassembled": re} {
			in := NewInterp(prog, nil)
			self := prog.Class("Counter").New()
			got, err := in.Invoke(prog.Method("Counter", c.method), self, c.args)
			if err != nil {
				t.Fatalf("%s %s: %v", name, c.method, err)
			}
			if got.I != c.want {
				t.Errorf("%s %s = %d, want %d", name, c.method, got.I, c.want)
			}
		}
	}
}

func TestDisassembleShape(t *testing.T) {
	text := Disassemble(MustAssemble(disasmFixture))
	for _, want := range []string{
		"class Counter", "field count", "method int inc(int)",
		"handler ", "jmpf ", "push -1", "getself count",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly lacks %q:\n%s", want, text)
		}
	}
}

func TestDisassembleLiterals(t *testing.T) {
	prog := MustAssemble(`
class C
  method void m()
    push "quoted \"str\""
    pop
    push true
    pop
    push nil
    pop
    push false
    pop
  end
end`)
	text := Disassemble(prog)
	re, err := Assemble(text)
	if err != nil {
		t.Fatalf("reassemble: %v\n%s", err, text)
	}
	in := NewInterp(re, nil)
	if _, err := in.Invoke(re.Method("C", "m"), re.Class("C").New(), nil); err != nil {
		t.Fatal(err)
	}
}
