package lvm

import (
	"fmt"
)

// VerifyMethod statically checks a method's bytecode before execution:
// operand indexes in range, jump targets valid, and a consistent, never-
// negative stack depth at every instruction (merging over all control-flow
// paths, including exception handlers). Receivers verify mobile extension
// code with this before it ever runs, complementing the run-time sandbox.
func VerifyMethod(p *Program, m *Method) error {
	n := len(m.Code)
	if n == 0 {
		return fmt.Errorf("lvm verify: %s: empty body", m)
	}
	for _, h := range m.Handlers {
		if h.Start < 0 || h.End > n || h.Start >= h.End {
			return fmt.Errorf("lvm verify: %s: bad handler range [%d,%d)", m, h.Start, h.End)
		}
		if h.Target < 0 || h.Target >= n {
			return fmt.Errorf("lvm verify: %s: handler target %d out of range", m, h.Target)
		}
	}
	// Structural check: the final instruction must be a terminator or an
	// unconditional jump, so no path — reachable or not — can run off the end
	// of the code. The reachable case is also caught by the walk below, but
	// dead tails would otherwise slip through.
	switch m.Code[n-1].Op {
	case OpReturn, OpReturnVoid, OpThrow, OpJump:
	default:
		return fmt.Errorf("lvm verify: %s: control can fall off the end at pc %d (%s)", m, n-1, m.Code[n-1].Op)
	}

	// Abstract interpretation over stack depth. -1 = unvisited.
	depth := make([]int, n)
	for i := range depth {
		depth[i] = -1
	}
	type work struct{ pc, d int }
	queue := []work{{0, 0}}
	// Handler entries start with exactly the exception message on the stack.
	for _, h := range m.Handlers {
		queue = append(queue, work{h.Target, 1})
	}

	frame := m.FrameSize()
	push := func(q []work, pc, d int) ([]work, error) {
		if pc < 0 || pc >= n {
			return q, fmt.Errorf("lvm verify: %s: jump target %d out of range", m, pc)
		}
		if depth[pc] == -1 {
			depth[pc] = d
			return append(q, work{pc, d}), nil
		}
		if depth[pc] != d {
			return q, fmt.Errorf("lvm verify: %s: inconsistent stack depth at pc %d (%d vs %d)", m, pc, depth[pc], d)
		}
		return q, nil
	}

	var err error
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		pc, d := w.pc, w.d
		if depth[pc] == -1 {
			depth[pc] = d
		}
		ins := m.Code[pc]

		pop, pushN, errV := stackEffect(p, m, ins, frame)
		if errV != nil {
			return fmt.Errorf("lvm verify: %s pc %d: %w", m, pc, errV)
		}
		if d < pop {
			return fmt.Errorf("lvm verify: %s pc %d: stack underflow (%s needs %d, have %d)", m, pc, ins.Op, pop, d)
		}
		nd := d - pop + pushN

		switch ins.Op {
		case OpReturn, OpReturnVoid, OpThrow:
			// Terminal: no successors.
		case OpJump:
			if queue, err = push(queue, ins.A, nd); err != nil {
				return err
			}
		case OpJumpFalse:
			if queue, err = push(queue, ins.A, nd); err != nil {
				return err
			}
			if queue, err = push(queue, pc+1, nd); err != nil {
				return err
			}
		default:
			if pc+1 >= n {
				return fmt.Errorf("lvm verify: %s: control falls off the end at pc %d", m, pc)
			}
			if queue, err = push(queue, pc+1, nd); err != nil {
				return err
			}
		}
	}
	// Instructions the walk never reached are dead code, but they travel with
	// the method: validate their operands so a malformed instruction cannot
	// hide behind a jump.
	for pc := range m.Code {
		if depth[pc] != -1 {
			continue
		}
		if _, _, errV := stackEffect(p, m, m.Code[pc], frame); errV != nil {
			return fmt.Errorf("lvm verify: %s pc %d (unreachable): %w", m, pc, errV)
		}
	}
	return nil
}

// stackEffect returns how many values ins pops and pushes, validating its
// operands along the way.
func stackEffect(p *Program, m *Method, ins Instr, frame int) (pop, push int, err error) {
	switch ins.Op {
	case OpNop:
		return 0, 0, nil
	case OpConst:
		if ins.A < 0 || ins.A >= len(m.Consts) {
			return 0, 0, fmt.Errorf("const index %d out of range", ins.A)
		}
		return 0, 1, nil
	case OpLoad:
		if ins.A < 0 || ins.A >= frame {
			return 0, 0, fmt.Errorf("load slot %d out of range", ins.A)
		}
		return 0, 1, nil
	case OpStore:
		if ins.A < 0 || ins.A >= frame {
			return 0, 0, fmt.Errorf("store slot %d out of range", ins.A)
		}
		return 1, 0, nil
	case OpGetField:
		return 1, 1, nil
	case OpSetField:
		return 2, 0, nil
	case OpGetSelf:
		return 0, 1, nil
	case OpSetSelf:
		return 1, 0, nil
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpEq, OpNe, OpLt, OpLe, OpGt,
		OpGe, OpAnd, OpOr, OpConcat:
		return 2, 1, nil
	case OpNeg, OpNot, OpLen:
		return 1, 1, nil
	case OpJump:
		return 0, 0, nil
	case OpJumpFalse:
		return 1, 0, nil
	case OpCall:
		if ins.B < 0 {
			return 0, 0, fmt.Errorf("negative argc")
		}
		return ins.B + 1, 1, nil
	case OpHostCall:
		if ins.B < 0 {
			return 0, 0, fmt.Errorf("negative argc")
		}
		return ins.B, 1, nil
	case OpNew:
		if p != nil && p.Class(ins.Sym) == nil {
			return 0, 0, fmt.Errorf("unknown class %q", ins.Sym)
		}
		return 0, 1, nil
	case OpThrow:
		return 1, 0, nil
	case OpReturn:
		return 1, 0, nil
	case OpReturnVoid:
		return 0, 0, nil
	case OpPop:
		return 1, 0, nil
	case OpDup:
		return 1, 2, nil
	default:
		return 0, 0, fmt.Errorf("unknown opcode %d", ins.Op)
	}
}

// VerifyProgram verifies every method of p.
func VerifyProgram(p *Program) error {
	var err error
	p.EachMethod(func(m *Method) {
		if err == nil {
			err = VerifyMethod(p, m)
		}
	})
	return err
}
