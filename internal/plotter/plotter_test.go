package plotter

import (
	"strings"
	"testing"

	"repro/internal/aop"
	"repro/internal/lvm"
	"repro/internal/svc"
	"repro/internal/transport"
	"repro/internal/weave"
)

func newPlotter(t *testing.T) (*weave.Weaver, *Canvas, *Plotter) {
	t.Helper()
	w := weave.New()
	canvas := NewCanvas(20, 20)
	p, err := New(w, canvas)
	if err != nil {
		t.Fatal(err)
	}
	return w, canvas, p
}

func TestDrawLine(t *testing.T) {
	_, canvas, p := newPlotter(t)
	if err := p.MoveTo(2, 2); err != nil {
		t.Fatal(err)
	}
	if canvas.Count() != 0 {
		t.Fatal("pen-up movement inked")
	}
	if err := p.Line(5, 2); err != nil {
		t.Fatal(err)
	}
	for x := 2; x <= 5; x++ {
		if !canvas.Marked(x, 2) {
			t.Errorf("(%d,2) not inked", x)
		}
	}
	if canvas.Marked(6, 2) {
		t.Error("overshoot")
	}
}

func TestRenderShowsInk(t *testing.T) {
	_, canvas, p := newPlotter(t)
	if err := p.Line(1, 0); err != nil {
		t.Fatal(err)
	}
	r := canvas.Render()
	if !strings.HasPrefix(r, "##") {
		t.Errorf("render = %q...", r[:10])
	}
}

func TestMovementControlExtensionLimitsPlotter(t *testing.T) {
	w, canvas, p := newPlotter(t)
	// Forbid movements beyond x = 3 so "certain parts of the paper remain
	// untouched" (§4.5): veto any position write beyond the limit.
	guard := &aop.Aspect{Name: "control", Advices: []aop.Advice{
		aop.OnFieldSet("Motor.pos", aop.BodyFunc(func(ctx *aop.Context) error {
			if id, _ := ctx.Self.FieldByName("id"); id.S == "x" && ctx.Arg(0).AsInt() > 3 {
				ctx.Abort("x beyond limit")
			}
			return nil
		})),
	}}
	if err := w.Insert(guard); err != nil {
		t.Fatal(err)
	}
	err := p.Line(10, 0)
	if err == nil {
		t.Fatal("limit not enforced")
	}
	x, _ := p.Position()
	if x != 3 {
		t.Errorf("x = %d, want 3", x)
	}
	if canvas.Marked(4, 0) {
		t.Error("forbidden cell inked")
	}
}

func TestServiceDrivesPlotter(t *testing.T) {
	w, canvas, p := newPlotter(t)
	reg := svc.NewRegistry(w)
	p.RegisterService(reg)
	mux := transport.NewMux()
	reg.ServeOn(mux)
	fabric := transport.NewInProc()
	stop, err := fabric.Serve("plotter1", mux)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	caller := fabric.Node("drawingprog")
	if _, err := svc.Call(caller, "plotter1", ServiceName, "line", "artist", lvm.Int(3), lvm.Int(0)); err != nil {
		t.Fatal(err)
	}
	if !canvas.Marked(1, 0) {
		t.Error("remote line not drawn")
	}
	pos, err := svc.Call(caller, "plotter1", ServiceName, "position", "artist")
	if err != nil || pos.S != "3,0" {
		t.Errorf("position = %v, %v", pos, err)
	}
	if _, err := svc.Call(caller, "plotter1", ServiceName, "penDown", "artist"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Call(caller, "plotter1", ServiceName, "penUp", "artist"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Call(caller, "plotter1", ServiceName, "moveTo", "artist", lvm.Int(0), lvm.Int(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Call(caller, "plotter1", ServiceName, "rotate", "artist", lvm.Int(2)); err != nil {
		t.Fatal(err)
	}
}

func TestReplayReproducesDrawing(t *testing.T) {
	_, canvas, p := newPlotter(t)
	if err := p.Line(4, 0); err != nil {
		t.Fatal(err)
	}
	want := canvas.Count()

	// Re-execute the recorded trace on a fresh plotter.
	var cmds []ReplayCommand
	for _, c := range p.Controller().Trace() {
		cmds = append(cmds, ReplayCommand{Device: c.Device, Action: c.Action, Value: c.Value})
	}
	_, canvas2, p2 := newPlotter(t)
	if err := p2.Replay(cmds); err != nil {
		t.Fatal(err)
	}
	if canvas2.Count() != want {
		t.Errorf("replayed %d cells, want %d", canvas2.Count(), want)
	}
	for x := 0; x <= 4; x++ {
		if canvas2.Marked(x, 0) != canvas.Marked(x, 0) {
			t.Errorf("cell (%d,0) differs", x)
		}
	}
}

func TestCanvasBounds(t *testing.T) {
	c := NewCanvas(2, 2)
	c.Mark(-1, 0)
	c.Mark(0, 5)
	c.Mark(1, 1)
	if c.Count() != 1 {
		t.Errorf("Count = %d", c.Count())
	}
}

func TestPenIdempotent(t *testing.T) {
	_, _, p := newPlotter(t)
	if err := p.PenDown(); err != nil {
		t.Fatal(err)
	}
	if err := p.PenDown(); err != nil {
		t.Fatal(err)
	}
	if err := p.PenUp(); err != nil {
		t.Fatal(err)
	}
	if err := p.PenUp(); err != nil {
		t.Fatal(err)
	}
	// z motor moved exactly once each way.
	trace := p.Controller().Trace()
	zMoves := 0
	for _, c := range trace {
		if c.Device == "motor:z" {
			zMoves++
		}
	}
	if zMoves != 2 {
		t.Errorf("z moves = %d, want 2", zMoves)
	}
}
