// Package plotter is the paper's prototype application (§4.3, Fig. 4): a
// robot acting as the head of a printer, moving a marking pen across three
// dimensions, one motor per axis. The overall movement is determined by a
// drawing program that talks to the exported drawing interface; the plotter
// itself contains no code beyond drawing — monitoring, control, replication
// and the rest arrive as MIDAS extensions.
package plotter

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/lvm"
	"repro/internal/robot"
	"repro/internal/svc"
	"repro/internal/weave"
)

// ServiceName is the exported drawing interface's service name.
const ServiceName = "Plotter"

// Canvas records where the pen marked the paper; it lets tests and examples
// verify drawing, replication and movement-control behaviour.
type Canvas struct {
	mu     sync.Mutex
	w, h   int
	marked map[[2]int]bool
}

// NewCanvas returns a w×h canvas.
func NewCanvas(w, h int) *Canvas {
	return &Canvas{w: w, h: h, marked: make(map[[2]int]bool)}
}

// Mark inks the cell at (x, y) when it lies on the canvas.
func (c *Canvas) Mark(x, y int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if x >= 0 && x < c.w && y >= 0 && y < c.h {
		c.marked[[2]int{x, y}] = true
	}
}

// Marked reports whether (x, y) is inked.
func (c *Canvas) Marked(x, y int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.marked[[2]int{x, y}]
}

// Count returns the number of inked cells.
func (c *Canvas) Count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.marked)
}

// Render draws the canvas as ASCII art ('#' inked, '.' blank).
func (c *Canvas) Render() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var b strings.Builder
	for y := 0; y < c.h; y++ {
		for x := 0; x < c.w; x++ {
			if c.marked[[2]int{x, y}] {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Plotter drives three motors (x, y and z for the pen) over a canvas.
type Plotter struct {
	ctrl   *robot.Controller
	canvas *Canvas
	mx     *robot.Motor
	my     *robot.Motor
	mz     *robot.Motor

	mu      sync.Mutex
	penDown bool
}

// New builds a plotter whose motors are woven through weaver.
func New(weaver *weave.Weaver, canvas *Canvas) (*Plotter, error) {
	ctrl := robot.NewController(weaver, nil)
	mx, err := ctrl.AddMotor("x")
	if err != nil {
		return nil, err
	}
	my, err := ctrl.AddMotor("y")
	if err != nil {
		return nil, err
	}
	mz, err := ctrl.AddMotor("z")
	if err != nil {
		return nil, err
	}
	return &Plotter{ctrl: ctrl, canvas: canvas, mx: mx, my: my, mz: mz}, nil
}

// Controller exposes the underlying device controller (for monitoring tests
// and the task layer).
func (p *Plotter) Controller() *robot.Controller { return p.ctrl }

// Position returns the pen's (x, y) position.
func (p *Plotter) Position() (int64, int64) {
	return p.mx.Position(), p.my.Position()
}

// PenDown lowers the pen (motor z to -1), inking the current cell.
func (p *Plotter) PenDown() error {
	p.mu.Lock()
	down := p.penDown
	p.mu.Unlock()
	if down {
		return nil
	}
	if err := p.mz.Rotate(-1); err != nil {
		return err
	}
	p.mu.Lock()
	p.penDown = true
	p.mu.Unlock()
	p.ink()
	return nil
}

// PenUp raises the pen.
func (p *Plotter) PenUp() error {
	p.mu.Lock()
	down := p.penDown
	p.mu.Unlock()
	if !down {
		return nil
	}
	if err := p.mz.Rotate(1); err != nil {
		return err
	}
	p.mu.Lock()
	p.penDown = false
	p.mu.Unlock()
	return nil
}

// MoveTo moves the head to (x, y) one unit step at a time, inking along the
// way while the pen is down. An extension veto stops the movement at the
// offending step.
func (p *Plotter) MoveTo(x, y int64) error {
	for p.mx.Position() != x {
		step := int64(1)
		if p.mx.Position() > x {
			step = -1
		}
		if err := p.mx.Rotate(step); err != nil {
			return fmt.Errorf("plotter: x axis: %w", err)
		}
		p.ink()
	}
	for p.my.Position() != y {
		step := int64(1)
		if p.my.Position() > y {
			step = -1
		}
		if err := p.my.Rotate(step); err != nil {
			return fmt.Errorf("plotter: y axis: %w", err)
		}
		p.ink()
	}
	return nil
}

// Line draws a segment from the current position to (x, y) with the pen
// down, restoring the pen state afterwards.
func (p *Plotter) Line(x, y int64) error {
	if err := p.PenDown(); err != nil {
		return err
	}
	if err := p.MoveTo(x, y); err != nil {
		return err
	}
	return p.PenUp()
}

func (p *Plotter) ink() {
	p.mu.Lock()
	down := p.penDown
	p.mu.Unlock()
	if down && p.canvas != nil {
		p.canvas.Mark(int(p.mx.Position()), int(p.my.Position()))
	}
}

// RegisterService exports the drawing interface on reg, so drawing programs
// (and replication extensions) can drive the plotter remotely: moveTo(x, y),
// penDown(), penUp(), line(x, y), position() and rotate(axis-as-method) for
// raw motor access.
func (p *Plotter) RegisterService(reg *svc.Registry) {
	reg.Register(ServiceName, "moveTo", []string{"int", "int"}, "void", func(args []lvm.Value) (lvm.Value, error) {
		return lvm.Nil(), p.MoveTo(args[0].AsInt(), args[1].AsInt())
	})
	reg.Register(ServiceName, "line", []string{"int", "int"}, "void", func(args []lvm.Value) (lvm.Value, error) {
		return lvm.Nil(), p.Line(args[0].AsInt(), args[1].AsInt())
	})
	reg.Register(ServiceName, "penDown", nil, "void", func([]lvm.Value) (lvm.Value, error) {
		return lvm.Nil(), p.PenDown()
	})
	reg.Register(ServiceName, "penUp", nil, "void", func([]lvm.Value) (lvm.Value, error) {
		return lvm.Nil(), p.PenUp()
	})
	reg.Register(ServiceName, "position", nil, "int", func([]lvm.Value) (lvm.Value, error) {
		x, y := p.Position()
		return lvm.Str(fmt.Sprintf("%d,%d", x, y)), nil
	})
	// Raw single-axis rotation, used by the replication extension to mirror
	// movements onto an identical robot.
	reg.Register(ServiceName, "rotate", []string{"int"}, "void", func(args []lvm.Value) (lvm.Value, error) {
		return lvm.Nil(), p.mx.Rotate(args[0].AsInt())
	})
}

// Replay re-executes a recorded movement sequence (device, action, value)
// against this plotter — the paper's simulation application (§4.5): replay a
// part of the sequence of movements to reproduce a failure.
func (p *Plotter) Replay(cmds []ReplayCommand) error {
	for _, c := range cmds {
		var m *robot.Motor
		switch c.Device {
		case "motor:x", "Motor:x":
			m = p.mx
		case "motor:y", "Motor:y":
			m = p.my
		case "motor:z", "Motor:z":
			m = p.mz
		default:
			continue // foreign device records are skipped
		}
		if c.Action != "rotate" {
			continue
		}
		// Track pen state through z-axis movements.
		if m == p.mz {
			if c.Value < 0 {
				if err := p.PenDown(); err != nil {
					return err
				}
			} else {
				if err := p.PenUp(); err != nil {
					return err
				}
			}
			continue
		}
		if err := m.Rotate(c.Value); err != nil {
			return err
		}
		p.ink()
	}
	return nil
}

// ReplayCommand is one recorded movement (a store.Record projection, kept
// free of the store dependency).
type ReplayCommand struct {
	Device string
	Action string
	Value  int64
}
