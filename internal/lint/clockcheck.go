package lint

import (
	"go/ast"
	"strings"
)

// clockAPIs are the package-level time functions that read or block on the
// wall clock. Durations, formatting and arithmetic stay allowed.
var clockAPIs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
	"Tick":      true,
}

// ClockCheck flags direct wall-clock access outside internal/clock: the
// platform's determinism story (manual clocks in tests, the simnet scenarios)
// depends on time flowing through the clock.Clock seam. Test files are
// exempt, as is the clock package itself, which wraps the real clock.
var ClockCheck = &Analyzer{
	Name: "clockcheck",
	Doc:  "disallow time.Now/Sleep/timers outside internal/clock; use the clock.Clock seam",
	Run:  runClockCheck,
}

func runClockCheck(p *Pass) {
	if p.Pkg.Dir == "internal/clock" || strings.HasSuffix(p.Pkg.Dir, "/internal/clock") {
		return
	}
	for _, f := range p.Pkg.Files {
		timeName := importName(f.AST, "time")
		if timeName == "" || timeName == "_" {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Name != timeName || !clockAPIs[sel.Sel.Name] {
				return true
			}
			p.Reportf(sel.Pos(), "time.%s reads the wall clock; route it through internal/clock", sel.Sel.Name)
			return true
		})
	}
}
