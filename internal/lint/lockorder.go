package lint

import (
	"go/ast"
	"go/token"
)

// LockOrder enforces the base station's documented lock ordering:
//
//	shard.mu -> b.mu -> sched.mu
//
// (see internal/core/shard.go and the Base struct comment). A shard's mu may
// be held while taking b.mu or the lease scheduler's lock, never the other
// way around, and no path may hold two shard locks at once. The check is
// purely syntactic and per-function: it tracks a held-set through the
// statement stream, classifying each mu by idiom — `x.mu` on a *Base receiver
// is b.mu, on a *Scheduler receiver is sched.mu, and a mu reached through a
// `shard(...)` result or a `shards` slice element is a shard lock. Method
// calls through a `.nodes` or `.sched` field are treated as transiently
// acquiring the corresponding lock class, so `b.nodes.counts()` under b.mu is
// flagged even though the Lock call lives in another function.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "enforce the shard.mu -> b.mu -> sched.mu lock ordering of the base station",
	Run:  runLockOrder,
}

// Lock ranks: lower ranks must be acquired first.
const (
	rankShard = iota // a nodeShard's mu
	rankBase         // Base.mu, the config lock
	rankSched        // lease.Scheduler's mu
)

var rankName = map[int]string{rankShard: "shard.mu", rankBase: "b.mu", rankSched: "sched.mu"}

type heldLock struct {
	rank int
	pos  token.Pos
}

func runLockOrder(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkLockOrder(p, fn)
		}
	}
}

func checkLockOrder(p *Pass, fn *ast.FuncDecl) {
	recvName, recvType := "", ""
	if fn.Recv != nil && len(fn.Recv.List) > 0 {
		recvType = recvTypeName(fn.Recv.List[0].Type)
		if len(fn.Recv.List[0].Names) > 0 {
			recvName = fn.Recv.List[0].Names[0].Name
		}
	}
	shardVars := collectShardVars(fn.Body)

	// classify maps the receiver expression of a mu to a lock rank, -1 when
	// the mu is not one of the ranked classes.
	classify := func(muRecv ast.Expr) int {
		switch x := muRecv.(type) {
		case *ast.Ident:
			if shardVars[x.Name] {
				return rankShard
			}
			if x.Name == recvName {
				switch recvType {
				case "Base":
					return rankBase
				case "Scheduler":
					return rankSched
				}
			}
		case *ast.IndexExpr: // t.shards[i].mu
			if sel, ok := x.X.(*ast.SelectorExpr); ok && sel.Sel.Name == "shards" {
				return rankShard
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				return -1
			}
		}
		return -1
	}

	var scan func(body ast.Node)
	scan = func(body ast.Node) {
		var held []heldLock
		acquire := func(rank int, pos token.Pos, transient bool) {
			for _, h := range held {
				if h.rank > rank || (h.rank == rank && rank == rankShard) {
					p.Reportf(pos, "acquiring %s while %s is held violates the lock order shard.mu -> b.mu -> sched.mu",
						rankName[rank], rankName[h.rank])
					break
				}
			}
			if !transient {
				held = append(held, heldLock{rank: rank, pos: pos})
			}
		}
		release := func(rank int) {
			for i := len(held) - 1; i >= 0; i-- {
				if held[i].rank == rank {
					held = append(held[:i], held[i+1:]...)
					return
				}
			}
		}

		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				// A deferred Unlock keeps the lock held for the rest of the
				// function; deferred closures run after everything else, so
				// the linear scan skips their bodies entirely.
				return false
			case *ast.FuncLit:
				// A closure body runs at some other time (goroutine,
				// callback); analyze it with a fresh held-set rather than
				// inheriting the enclosing function's.
				scan(n.Body)
				return false
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				switch sel.Sel.Name {
				case "Lock", "RLock":
					if mu, ok := sel.X.(*ast.SelectorExpr); ok && mu.Sel.Name == "mu" {
						if rank := classify(mu.X); rank >= 0 {
							acquire(rank, sel.Pos(), false)
						}
					}
				case "Unlock", "RUnlock":
					if mu, ok := sel.X.(*ast.SelectorExpr); ok && mu.Sel.Name == "mu" {
						if rank := classify(mu.X); rank >= 0 {
							release(rank)
						}
					}
				case "shard":
					// Pure accessor: returns the shard without locking it.
				default:
					// Method calls through the node table or the scheduler
					// acquire and release that class internally.
					if via, ok := sel.X.(*ast.SelectorExpr); ok {
						switch via.Sel.Name {
						case "nodes":
							acquire(rankShard, sel.Pos(), true)
						case "sched":
							acquire(rankSched, sel.Pos(), true)
						}
					}
				}
			}
			return true
		})
	}
	scan(fn.Body)
}

// collectShardVars finds local variables bound to a single shard: assigned
// from a method call named shard(...) or from an element of a field named
// shards. Their mu is a shard lock.
func collectShardVars(body *ast.BlockStmt) map[string]bool {
	vars := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || i >= len(assign.Rhs) {
				continue
			}
			if isShardExpr(assign.Rhs[i]) {
				vars[id.Name] = true
			}
		}
		return true
	})
	return vars
}

func isShardExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.CallExpr:
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
			return sel.Sel.Name == "shard"
		}
	case *ast.UnaryExpr:
		return x.Op == token.AND && isShardExpr(x.X)
	case *ast.IndexExpr:
		if sel, ok := x.X.(*ast.SelectorExpr); ok {
			return sel.Sel.Name == "shards"
		}
	}
	return false
}
