package lint

import (
	"go/ast"
	"strings"
)

// Index holds whole-tree facts that individual analyzers need: which method
// names have a context-accepting twin on every type that declares them.
// Everything is purely syntactic — receiver types are matched by name, which
// is exactly why qualification demands unanimity across the tree.
type Index struct {
	// methodRecvs maps a method name to the set of "pkgDir.TypeName" receivers
	// declaring it.
	methodRecvs map[string]map[string]bool
	// freeFuncs records names also declared as free functions anywhere.
	freeFuncs map[string]bool
}

// BuildIndex scans every function declaration of every package.
func BuildIndex(pkgs []*Package) *Index {
	ix := &Index{
		methodRecvs: make(map[string]map[string]bool),
		freeFuncs:   make(map[string]bool),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.AST.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if fn.Recv == nil || len(fn.Recv.List) == 0 {
					ix.freeFuncs[fn.Name.Name] = true
					continue
				}
				recv := recvTypeName(fn.Recv.List[0].Type)
				if recv == "" {
					continue
				}
				key := pkg.Dir + "." + recv
				set := ix.methodRecvs[fn.Name.Name]
				if set == nil {
					set = make(map[string]bool)
					ix.methodRecvs[fn.Name.Name] = set
				}
				set[key] = true
			}
		}
	}
	return ix
}

// HasCtxTwin reports whether name is a context-less API with a universal
// FooCtx twin: it is declared only as a method (never a free function), and
// every receiver type declaring it also declares name+"Ctx". Unanimity makes
// the purely name-based check sound enough to flag call sites without type
// information.
func (ix *Index) HasCtxTwin(name string) bool {
	if strings.HasSuffix(name, "Ctx") || ix.freeFuncs[name] {
		return false
	}
	recvs := ix.methodRecvs[name]
	if len(recvs) == 0 {
		return false
	}
	twins := ix.methodRecvs[name+"Ctx"]
	for r := range recvs {
		if !twins[r] {
			return false
		}
	}
	return true
}
