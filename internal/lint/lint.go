// Package lint is a small, dependency-free static-analysis framework for the
// platform's own Go sources: the "prosevet-go" suite. It mirrors the shape of
// go/analysis — named analyzers receive a parsed package and report
// position-tagged diagnostics — but is built on the standard library's go/ast
// and go/parser only, so it runs in hermetic builds with no module downloads.
//
// Analyzers work purely syntactically (there is no type information), so each
// one is designed to over-approximate conservatively: qualification rules are
// computed across the whole tree first (see Index) and a finding can be waived
// at the use site with a
//
//	//lint:allow <analyzer>[,<analyzer>...]
//
// comment on the flagged line or the line directly above it.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// File is one parsed Go source file.
type File struct {
	Path string // slash path relative to the load root
	AST  *ast.File
	// allow maps line numbers to the analyzer names waived on that line via
	// //lint:allow comments.
	allow map[int]map[string]bool
}

// Package groups the files of one directory.
type Package struct {
	Dir   string // slash path relative to the load root; "." for the root
	Files []*File
}

// Analyzer is one named check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Pass)
}

// Pass hands an analyzer one package plus the cross-package Index, and
// collects its diagnostics.
type Pass struct {
	Fset     *token.FileSet
	Pkg      *Package
	Index    *Index
	analyzer *Analyzer
	files    map[string]*File // by fset filename, for waiver lookup
	diags    *[]Diagnostic
}

// Reportf records a diagnostic at pos unless the line (or the line above it)
// carries a //lint:allow waiver for this analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if f := p.files[position.Filename]; f != nil {
		if f.allow[position.Line][p.analyzer.Name] || f.allow[position.Line-1][p.analyzer.Name] {
			return
		}
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Load parses every non-test .go file under root (skipping .git, testdata and
// vendor directories) into per-directory packages.
func Load(root string) (*token.FileSet, []*Package, error) {
	fset := token.NewFileSet()
	byDir := make(map[string]*Package)
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		name := info.Name()
		if info.IsDir() {
			if name == ".git" || name == "testdata" || name == "vendor" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		f, err := ParseFile(fset, path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		f.Path = filepath.ToSlash(rel)
		dir := filepath.ToSlash(filepath.Dir(rel))
		pkg := byDir[dir]
		if pkg == nil {
			pkg = &Package{Dir: dir}
			byDir[dir] = pkg
		}
		pkg.Files = append(pkg.Files, f)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	pkgs := make([]*Package, 0, len(byDir))
	for _, pkg := range byDir {
		sort.Slice(pkg.Files, func(i, j int) bool { return pkg.Files[i].Path < pkg.Files[j].Path })
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Dir < pkgs[j].Dir })
	return fset, pkgs, nil
}

// ParseFile parses one file (with comments, for waivers).
func ParseFile(fset *token.FileSet, path string) (*File, error) {
	astF, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	return &File{Path: path, AST: astF, allow: waivers(fset, astF)}, nil
}

// ParseSource parses source text held in memory (used by tests).
func ParseSource(fset *token.FileSet, filename, src string) (*File, error) {
	astF, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	return &File{Path: filename, AST: astF, allow: waivers(fset, astF)}, nil
}

// waivers extracts //lint:allow comments by line.
func waivers(fset *token.FileSet, f *ast.File) map[int]map[string]bool {
	out := make(map[int]map[string]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "lint:allow") {
				continue
			}
			line := fset.Position(c.Pos()).Line
			names := out[line]
			if names == nil {
				names = make(map[string]bool)
				out[line] = names
			}
			// Anything after the analyzer list — conventionally a
			// parenthesised reason — is ignored.
			for _, name := range strings.Split(strings.TrimSpace(strings.TrimPrefix(text, "lint:allow")), ",") {
				if fields := strings.Fields(name); len(fields) > 0 {
					names[fields[0]] = true
				}
			}
		}
	}
	return out
}

// Run executes every analyzer over every package and returns the combined
// diagnostics sorted by position.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	index := BuildIndex(pkgs)
	files := make(map[string]*File)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			files[fset.Position(f.AST.Pos()).Filename] = f
		}
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		for _, pkg := range pkgs {
			a.Run(&Pass{Fset: fset, Pkg: pkg, Index: index, analyzer: a, files: files, diags: &diags})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags
}

// importName returns the local name under which f imports path, "" if it
// does not.
func importName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		if i := strings.LastIndex(path, "/"); i >= 0 {
			return path[i+1:]
		}
		return path
	}
	return ""
}

// recvTypeName unwraps a receiver type expression to its named type.
func recvTypeName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	}
	return ""
}
