package lint

import (
	"go/ast"
	"sort"
	"unicode"
	"unicode/utf8"
)

// WireCover checks MarshalWire/UnmarshalWire pairs for field parity. The wire
// codec has no field tags or self-description: both sides must touch exactly
// the same fields in the same order, and a field added to one method but not
// the other silently shifts every later value in the stream. For each type in
// a package, the analyzer collects the exported receiver fields each method
// mentions and reports the difference; it also flags a type that has one
// method of the pair but not the other.
var WireCover = &Analyzer{
	Name: "wirecover",
	Doc:  "require MarshalWire and UnmarshalWire of a type to cover the same exported fields",
	Run:  runWireCover,
}

type wirePair struct {
	marshal, unmarshal *ast.FuncDecl
}

func runWireCover(p *Pass) {
	pairs := make(map[string]*wirePair)
	order := []string{}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || len(fn.Recv.List) == 0 {
				continue
			}
			if fn.Name.Name != "MarshalWire" && fn.Name.Name != "UnmarshalWire" {
				continue
			}
			recv := recvTypeName(fn.Recv.List[0].Type)
			if recv == "" {
				continue
			}
			pair := pairs[recv]
			if pair == nil {
				pair = &wirePair{}
				pairs[recv] = pair
				order = append(order, recv)
			}
			if fn.Name.Name == "MarshalWire" {
				pair.marshal = fn
			} else {
				pair.unmarshal = fn
			}
		}
	}
	sort.Strings(order)
	for _, recv := range order {
		pair := pairs[recv]
		switch {
		case pair.marshal == nil:
			p.Reportf(pair.unmarshal.Name.Pos(), "%s has UnmarshalWire but no MarshalWire; the codec pair must live together", recv)
		case pair.unmarshal == nil:
			p.Reportf(pair.marshal.Name.Pos(), "%s has MarshalWire but no UnmarshalWire; the codec pair must live together", recv)
		default:
			wrote := receiverFields(pair.marshal)
			read := receiverFields(pair.unmarshal)
			for _, field := range missingFields(wrote, read) {
				p.Reportf(pair.unmarshal.Name.Pos(), "%s.UnmarshalWire never reads field %s written by MarshalWire", recv, field)
			}
			for _, field := range missingFields(read, wrote) {
				p.Reportf(pair.marshal.Name.Pos(), "%s.MarshalWire never writes field %s read by UnmarshalWire", recv, field)
			}
		}
	}
}

// receiverFields collects the exported fields the method mentions through its
// receiver ident (r.Field, including r.Field[i] and nested uses).
func receiverFields(fn *ast.FuncDecl) map[string]bool {
	fields := make(map[string]bool)
	if fn.Body == nil || len(fn.Recv.List[0].Names) == 0 {
		return fields
	}
	recv := fn.Recv.List[0].Names[0].Name
	if recv == "_" {
		return fields
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != recv {
			return true
		}
		if r, _ := utf8.DecodeRuneInString(sel.Sel.Name); unicode.IsUpper(r) {
			fields[sel.Sel.Name] = true
		}
		return true
	})
	return fields
}

// missingFields returns the members of want absent from got, sorted.
func missingFields(want, got map[string]bool) []string {
	var out []string
	for field := range want {
		if !got[field] {
			out = append(out, field)
		}
	}
	sort.Strings(out)
	return out
}
