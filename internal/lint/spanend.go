package lint

import (
	"go/ast"
)

// SpanEnd flags use of a trace span after its End call. Span.End returns the
// span's annotation/tag storage to a sync.Pool, so any later Tag, Annotatef
// or Context call races with the pool's next owner and can stamp data onto an
// unrelated request's span. The check is block-local: within one statement
// list, once an ident bound to a StartSpan/StartSpanFrom result has had a
// non-deferred `.End(...)` statement, any later statement in that list that
// mentions the ident is flagged (a reassignment of the ident clears it).
// `defer sp.End(err)` is the idiomatic pattern and never starts a dead
// region.
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc:  "disallow use of a pooled trace span after End returns it to the pool",
	Run:  runSpanEnd,
}

func runSpanEnd(p *Pass) {
	for _, f := range p.Pkg.Files {
		spans := spanIdents(f.AST)
		if len(spans) == 0 {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			checkSpanBlock(p, block, spans)
			return true
		})
	}
}

// spanIdents collects the names of variables assigned from a
// StartSpan/StartSpanFrom call anywhere in the file. Name-based matching is
// deliberately file-wide: a span variable keeps meaning a span in every
// block it flows through.
func spanIdents(f *ast.File) map[string]bool {
	spans := make(map[string]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok || !isStartSpanCall(call) {
			return true
		}
		// StartSpan returns (ctx, *Span); StartSpanFrom returns *Span. The
		// span is always the last value on the left.
		if id, ok := assign.Lhs[len(assign.Lhs)-1].(*ast.Ident); ok && id.Name != "_" {
			spans[id.Name] = true
		}
		return true
	})
	return spans
}

func isStartSpanCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name == "StartSpan" || fun.Sel.Name == "StartSpanFrom"
	case *ast.Ident:
		return fun.Name == "StartSpan" || fun.Name == "StartSpanFrom"
	}
	return false
}

// checkSpanBlock scans one statement list. ended maps span names to true
// once a non-deferred End statement for them has executed.
func checkSpanBlock(p *Pass, block *ast.BlockStmt, spans map[string]bool) {
	ended := make(map[string]bool)
	for _, stmt := range block.List {
		if name, ok := spanEndStmt(stmt); ok && spans[name] {
			ended[name] = true
			continue
		}
		if len(ended) == 0 {
			continue
		}
		// A reassignment gives the name a fresh span; it is live again.
		if assign, ok := stmt.(*ast.AssignStmt); ok {
			for _, lhs := range assign.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && ended[id.Name] {
					delete(ended, id.Name)
				}
			}
		}
		ast.Inspect(stmt, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // closures may run before the End executed
			}
			id, ok := n.(*ast.Ident)
			if ok && ended[id.Name] {
				p.Reportf(id.Pos(), "span %s used after End returned it to the pool", id.Name)
			}
			return true
		})
	}
}

// spanEndStmt reports whether stmt is a plain `x.End(...)` expression
// statement, returning the receiver name.
func spanEndStmt(stmt ast.Stmt) (string, bool) {
	expr, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", false
	}
	call, ok := expr.X.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	return id.Name, true
}
