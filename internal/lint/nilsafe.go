package lint

import (
	"go/ast"
	"strings"
)

// nilsafeTypes lists, per package directory suffix, the instrument types
// whose exported pointer-receiver methods must tolerate nil receivers: the
// whole observability layer is designed as "nil until Instrument", so every
// component calls these unconditionally.
var nilsafeTypes = map[string]map[string]bool{
	"internal/metrics": {"Counter": true, "Gauge": true, "Histogram": true, "Registry": true},
	"internal/trace":   {"Tracer": true, "Span": true},
}

// NilSafe verifies that metrics/trace instruments nil-check their receiver
// somewhere in each exported pointer-receiver method.
var NilSafe = &Analyzer{
	Name: "nilsafe",
	Doc:  "exported methods of metrics/trace instruments must nil-check their receiver",
	Run:  runNilSafe,
}

func runNilSafe(p *Pass) {
	var types map[string]bool
	for suffix, set := range nilsafeTypes {
		if p.Pkg.Dir == suffix || strings.HasSuffix(p.Pkg.Dir, "/"+suffix) {
			types = set
		}
	}
	if types == nil {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || len(fn.Recv.List) == 0 || fn.Body == nil {
				continue
			}
			if !fn.Name.IsExported() || !types[recvTypeName(fn.Recv.List[0].Type)] {
				continue
			}
			if _, isPtr := fn.Recv.List[0].Type.(*ast.StarExpr); !isPtr {
				continue // value receivers cannot be nil
			}
			names := fn.Recv.List[0].Names
			if len(names) == 0 || names[0].Name == "_" {
				p.Reportf(fn.Pos(), "%s has an unnamed receiver and cannot nil-check it", fn.Name.Name)
				continue
			}
			if !checksNil(fn.Body, names[0].Name) {
				p.Reportf(fn.Pos(), "%s never nil-checks its receiver %q; instruments must be no-ops when unset",
					fn.Name.Name, names[0].Name)
			}
		}
	}
}

// checksNil reports whether body contains a `recv == nil` or `recv != nil`
// comparison.
func checksNil(body *ast.BlockStmt, recv string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || (bin.Op.String() != "==" && bin.Op.String() != "!=") {
			return true
		}
		if isIdent(bin.X, recv) && isIdent(bin.Y, "nil") ||
			isIdent(bin.X, "nil") && isIdent(bin.Y, recv) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}
