package lint

import (
	"go/ast"
)

// CtxTwin flags calls to a context-less API from a function that has a
// context.Context in scope, when every type declaring that API also offers a
// FooCtx twin. Such calls silently drop cancellation: the platform grew Ctx
// variants (InstallCtx, AdaptNodeCtx, GrantCtx, ...) precisely so RPC
// deadlines propagate into lease and weave operations.
var CtxTwin = &Analyzer{
	Name: "ctxtwin",
	Doc:  "flag Foo(...) calls with a context.Context in scope when FooCtx exists on every declaring type",
	Run:  runCtxTwin,
}

func runCtxTwin(p *Pass) {
	for _, f := range p.Pkg.Files {
		ctxName := importName(f.AST, "context")
		if ctxName == "" || ctxName == "_" {
			continue
		}
		imports := make(map[string]bool)
		for _, imp := range f.AST.Imports {
			path := imp.Path.Value[1 : len(imp.Path.Value)-1]
			imports[importName(f.AST, path)] = true
		}
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasCtxParam(fn.Type, ctxName) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				// A nested function literal without its own ctx param still
				// closes over the outer one; keep inspecting.
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				// Skip pkg.Func calls: only method-style x.Foo(...) can have a
				// receiver-declared twin.
				if id, ok := sel.X.(*ast.Ident); ok && imports[id.Name] {
					return true
				}
				// The twin wrapper itself (FooCtx delegating to Foo after
				// recording the context) is the one legitimate caller.
				if fn.Name.Name == sel.Sel.Name+"Ctx" {
					return true
				}
				if p.Index.HasCtxTwin(sel.Sel.Name) {
					p.Reportf(sel.Pos(), "%s drops the in-scope context.Context; call %sCtx", sel.Sel.Name, sel.Sel.Name)
				}
				return true
			})
		}
	}
}

// hasCtxParam reports whether the function type declares a parameter of type
// <ctxName>.Context.
func hasCtxParam(ft *ast.FuncType, ctxName string) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		sel, ok := field.Type.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Context" {
			continue
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == ctxName {
			return true
		}
	}
	return false
}
