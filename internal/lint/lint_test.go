package lint

import (
	"go/token"
	"strings"
	"testing"
)

// runOn parses the given (path, source) pairs into per-directory packages and
// runs the analyzers over them.
func runOn(t *testing.T, sources map[string]string, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	byDir := make(map[string]*Package)
	for path, src := range sources {
		f, err := ParseSource(fset, path, src)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		f.Path = path
		dir := "."
		if i := strings.LastIndex(path, "/"); i >= 0 {
			dir = path[:i]
		}
		pkg := byDir[dir]
		if pkg == nil {
			pkg = &Package{Dir: dir}
			byDir[dir] = pkg
		}
		pkg.Files = append(pkg.Files, f)
	}
	var pkgs []*Package
	for _, pkg := range byDir {
		pkgs = append(pkgs, pkg)
	}
	return Run(fset, pkgs, analyzers)
}

func messages(diags []Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.Analyzer + ": " + d.Message
	}
	return out
}

func TestClockCheckFlagsWallClock(t *testing.T) {
	diags := runOn(t, map[string]string{
		"internal/core/a.go": `package core
import "time"
func f() {
	_ = time.Now()
	time.Sleep(time.Second)
	_ = time.NewTicker(time.Second)
	_ = 5 * time.Second // durations are fine
}`,
	}, ClockCheck)
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics %v, want 3", len(diags), messages(diags))
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "internal/clock") {
			t.Errorf("diagnostic %q does not point at the clock seam", d.Message)
		}
	}
}

func TestClockCheckExemptsClockPackageAndAliases(t *testing.T) {
	diags := runOn(t, map[string]string{
		"internal/clock/clock.go": `package clock
import "time"
func now() time.Time { return time.Now() }`,
		"internal/other/b.go": `package other
import stdtime "time"
func f() { stdtime.Sleep(1) }`,
		"internal/other/c.go": `package other
func time_free() {}`,
	}, ClockCheck)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "time.Sleep") {
		t.Fatalf("got %v, want exactly the aliased Sleep flagged", messages(diags))
	}
}

func TestClockCheckWaiver(t *testing.T) {
	diags := runOn(t, map[string]string{
		"internal/core/a.go": `package core
import "time"
func f() {
	_ = time.Now() //lint:allow clockcheck (reasons after the name are ignored)
	//lint:allow clockcheck
	time.Sleep(time.Second)
	time.Sleep(time.Second) //lint:allow othercheck
}`,
	}, ClockCheck)
	if len(diags) != 1 {
		t.Fatalf("got %v, want only the mis-waived Sleep", messages(diags))
	}
}

const twinDecls = `package api
import "context"
type Store struct{}
func (s *Store) Put(v int) {}
func (s *Store) PutCtx(ctx context.Context, v int) {}
type Cache struct{}
func (c *Cache) Put(v int) {}
func (c *Cache) PutCtx(ctx context.Context, v int) {}
type Log struct{}
func (l *Log) Write(v int) {}
`

func TestCtxTwinFlagsDroppedContext(t *testing.T) {
	diags := runOn(t, map[string]string{
		"internal/api/api.go": twinDecls,
		"internal/use/use.go": `package use
import "context"
type store interface{ Put(int) }
func With(ctx context.Context, s store) {
	s.Put(1)
}
func Without(s store) {
	s.Put(1) // no ctx in scope: fine
}`,
	}, CtxTwin)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "PutCtx") {
		t.Fatalf("got %v, want exactly the in-scope Put flagged", messages(diags))
	}
}

func TestCtxTwinUnanimityRequired(t *testing.T) {
	diags := runOn(t, map[string]string{
		"internal/api/api.go": twinDecls + `
type Bag struct{}
func (b *Bag) Put(v int) {} // no PutCtx: disqualifies the name
`,
		"internal/use/use.go": `package use
import "context"
type store interface{ Put(int) }
func With(ctx context.Context, s store) { s.Put(1) }`,
	}, CtxTwin)
	if len(diags) != 0 {
		t.Fatalf("got %v, want none: Bag.Put has no twin", messages(diags))
	}
}

func TestCtxTwinFreeFunctionDisqualifies(t *testing.T) {
	diags := runOn(t, map[string]string{
		"internal/api/api.go": twinDecls + `
func Put(v int) {}
`,
		"internal/use/use.go": `package use
import "context"
type store interface{ Put(int) }
func With(ctx context.Context, s store) { s.Put(1) }`,
	}, CtxTwin)
	if len(diags) != 0 {
		t.Fatalf("got %v, want none: free Put disqualifies", messages(diags))
	}
}

func TestCtxTwinAllowsTwinWrapperDelegation(t *testing.T) {
	diags := runOn(t, map[string]string{
		"internal/api/api.go": twinDecls + `
type Disk struct{}
func (d *Disk) Save(v int) {}
func (d *Disk) SaveCtx(ctx context.Context, v int) { d.Save(v) }
func (d *Disk) other(ctx context.Context) { d.Save(1) }
`,
	}, CtxTwin)
	// SaveCtx's own delegation to Save is the legitimate wrapper call; only
	// the differently-named caller is flagged.
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "SaveCtx") {
		t.Fatalf("got %v, want only the non-wrapper call flagged", messages(diags))
	}
}

func TestCtxTwinSkipsPackageCalls(t *testing.T) {
	diags := runOn(t, map[string]string{
		"internal/api/api.go": twinDecls,
		"internal/use/use.go": `package use
import (
	"context"
	"internal/api"
)
func With(ctx context.Context) { api.Helper() }`,
	}, CtxTwin)
	if len(diags) != 0 {
		t.Fatalf("got %v, want none: pkg-level calls have no receiver", messages(diags))
	}
}

func TestNilSafe(t *testing.T) {
	diags := runOn(t, map[string]string{
		"internal/metrics/metrics.go": `package metrics
type Counter struct{ v uint64 }
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v++
}
func (c *Counter) Reset() { c.v = 0 }
func (c *Counter) value() uint64 { return c.v } // unexported: exempt
type helper struct{}
func (h *helper) Do() {} // not an instrument type: exempt
`,
	}, NilSafe)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "Reset") {
		t.Fatalf("got %v, want exactly Reset flagged", messages(diags))
	}
}

func TestNilSafeLateCheckCounts(t *testing.T) {
	diags := runOn(t, map[string]string{
		"internal/trace/trace.go": `package trace
type Span struct{ n int }
func (s *Span) End(err error) {
	x := 1
	_ = x
	if s != nil {
		s.n++
	}
}`,
	}, NilSafe)
	if len(diags) != 0 {
		t.Fatalf("got %v, want none: the nil check need not be first", messages(diags))
	}
}

func TestHasCtxTwinIndex(t *testing.T) {
	fset := token.NewFileSet()
	f, err := ParseSource(fset, "internal/api/api.go", twinDecls)
	if err != nil {
		t.Fatal(err)
	}
	ix := BuildIndex([]*Package{{Dir: "internal/api", Files: []*File{f}}})
	if !ix.HasCtxTwin("Put") {
		t.Error("Put should qualify: both Store and Cache declare PutCtx")
	}
	if ix.HasCtxTwin("Write") {
		t.Error("Write has no twin anywhere")
	}
	if ix.HasCtxTwin("PutCtx") {
		t.Error("the twin itself must not qualify")
	}
	if ix.HasCtxTwin("Absent") {
		t.Error("undeclared names must not qualify")
	}
}
