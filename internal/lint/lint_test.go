package lint

import (
	"go/token"
	"strings"
	"testing"
)

// runOn parses the given (path, source) pairs into per-directory packages and
// runs the analyzers over them.
func runOn(t *testing.T, sources map[string]string, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	byDir := make(map[string]*Package)
	for path, src := range sources {
		f, err := ParseSource(fset, path, src)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		f.Path = path
		dir := "."
		if i := strings.LastIndex(path, "/"); i >= 0 {
			dir = path[:i]
		}
		pkg := byDir[dir]
		if pkg == nil {
			pkg = &Package{Dir: dir}
			byDir[dir] = pkg
		}
		pkg.Files = append(pkg.Files, f)
	}
	var pkgs []*Package
	for _, pkg := range byDir {
		pkgs = append(pkgs, pkg)
	}
	return Run(fset, pkgs, analyzers)
}

func messages(diags []Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.Analyzer + ": " + d.Message
	}
	return out
}

func TestClockCheckFlagsWallClock(t *testing.T) {
	diags := runOn(t, map[string]string{
		"internal/core/a.go": `package core
import "time"
func f() {
	_ = time.Now()
	time.Sleep(time.Second)
	_ = time.NewTicker(time.Second)
	_ = 5 * time.Second // durations are fine
}`,
	}, ClockCheck)
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics %v, want 3", len(diags), messages(diags))
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "internal/clock") {
			t.Errorf("diagnostic %q does not point at the clock seam", d.Message)
		}
	}
}

func TestClockCheckExemptsClockPackageAndAliases(t *testing.T) {
	diags := runOn(t, map[string]string{
		"internal/clock/clock.go": `package clock
import "time"
func now() time.Time { return time.Now() }`,
		"internal/other/b.go": `package other
import stdtime "time"
func f() { stdtime.Sleep(1) }`,
		"internal/other/c.go": `package other
func time_free() {}`,
	}, ClockCheck)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "time.Sleep") {
		t.Fatalf("got %v, want exactly the aliased Sleep flagged", messages(diags))
	}
}

func TestClockCheckWaiver(t *testing.T) {
	diags := runOn(t, map[string]string{
		"internal/core/a.go": `package core
import "time"
func f() {
	_ = time.Now() //lint:allow clockcheck (reasons after the name are ignored)
	//lint:allow clockcheck
	time.Sleep(time.Second)
	time.Sleep(time.Second) //lint:allow othercheck
}`,
	}, ClockCheck)
	if len(diags) != 1 {
		t.Fatalf("got %v, want only the mis-waived Sleep", messages(diags))
	}
}

const twinDecls = `package api
import "context"
type Store struct{}
func (s *Store) Put(v int) {}
func (s *Store) PutCtx(ctx context.Context, v int) {}
type Cache struct{}
func (c *Cache) Put(v int) {}
func (c *Cache) PutCtx(ctx context.Context, v int) {}
type Log struct{}
func (l *Log) Write(v int) {}
`

func TestCtxTwinFlagsDroppedContext(t *testing.T) {
	diags := runOn(t, map[string]string{
		"internal/api/api.go": twinDecls,
		"internal/use/use.go": `package use
import "context"
type store interface{ Put(int) }
func With(ctx context.Context, s store) {
	s.Put(1)
}
func Without(s store) {
	s.Put(1) // no ctx in scope: fine
}`,
	}, CtxTwin)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "PutCtx") {
		t.Fatalf("got %v, want exactly the in-scope Put flagged", messages(diags))
	}
}

func TestCtxTwinUnanimityRequired(t *testing.T) {
	diags := runOn(t, map[string]string{
		"internal/api/api.go": twinDecls + `
type Bag struct{}
func (b *Bag) Put(v int) {} // no PutCtx: disqualifies the name
`,
		"internal/use/use.go": `package use
import "context"
type store interface{ Put(int) }
func With(ctx context.Context, s store) { s.Put(1) }`,
	}, CtxTwin)
	if len(diags) != 0 {
		t.Fatalf("got %v, want none: Bag.Put has no twin", messages(diags))
	}
}

func TestCtxTwinFreeFunctionDisqualifies(t *testing.T) {
	diags := runOn(t, map[string]string{
		"internal/api/api.go": twinDecls + `
func Put(v int) {}
`,
		"internal/use/use.go": `package use
import "context"
type store interface{ Put(int) }
func With(ctx context.Context, s store) { s.Put(1) }`,
	}, CtxTwin)
	if len(diags) != 0 {
		t.Fatalf("got %v, want none: free Put disqualifies", messages(diags))
	}
}

func TestCtxTwinAllowsTwinWrapperDelegation(t *testing.T) {
	diags := runOn(t, map[string]string{
		"internal/api/api.go": twinDecls + `
type Disk struct{}
func (d *Disk) Save(v int) {}
func (d *Disk) SaveCtx(ctx context.Context, v int) { d.Save(v) }
func (d *Disk) other(ctx context.Context) { d.Save(1) }
`,
	}, CtxTwin)
	// SaveCtx's own delegation to Save is the legitimate wrapper call; only
	// the differently-named caller is flagged.
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "SaveCtx") {
		t.Fatalf("got %v, want only the non-wrapper call flagged", messages(diags))
	}
}

func TestCtxTwinSkipsPackageCalls(t *testing.T) {
	diags := runOn(t, map[string]string{
		"internal/api/api.go": twinDecls,
		"internal/use/use.go": `package use
import (
	"context"
	"internal/api"
)
func With(ctx context.Context) { api.Helper() }`,
	}, CtxTwin)
	if len(diags) != 0 {
		t.Fatalf("got %v, want none: pkg-level calls have no receiver", messages(diags))
	}
}

func TestNilSafe(t *testing.T) {
	diags := runOn(t, map[string]string{
		"internal/metrics/metrics.go": `package metrics
type Counter struct{ v uint64 }
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v++
}
func (c *Counter) Reset() { c.v = 0 }
func (c *Counter) value() uint64 { return c.v } // unexported: exempt
type helper struct{}
func (h *helper) Do() {} // not an instrument type: exempt
`,
	}, NilSafe)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "Reset") {
		t.Fatalf("got %v, want exactly Reset flagged", messages(diags))
	}
}

func TestNilSafeLateCheckCounts(t *testing.T) {
	diags := runOn(t, map[string]string{
		"internal/trace/trace.go": `package trace
type Span struct{ n int }
func (s *Span) End(err error) {
	x := 1
	_ = x
	if s != nil {
		s.n++
	}
}`,
	}, NilSafe)
	if len(diags) != 0 {
		t.Fatalf("got %v, want none: the nil check need not be first", messages(diags))
	}
}

func TestHasCtxTwinIndex(t *testing.T) {
	fset := token.NewFileSet()
	f, err := ParseSource(fset, "internal/api/api.go", twinDecls)
	if err != nil {
		t.Fatal(err)
	}
	ix := BuildIndex([]*Package{{Dir: "internal/api", Files: []*File{f}}})
	if !ix.HasCtxTwin("Put") {
		t.Error("Put should qualify: both Store and Cache declare PutCtx")
	}
	if ix.HasCtxTwin("Write") {
		t.Error("Write has no twin anywhere")
	}
	if ix.HasCtxTwin("PutCtx") {
		t.Error("the twin itself must not qualify")
	}
	if ix.HasCtxTwin("Absent") {
		t.Error("undeclared names must not qualify")
	}
}

func TestLockOrderFlagsInversions(t *testing.T) {
	diags := runOn(t, map[string]string{
		"internal/core/base.go": `package core
type Base struct{ nodes *nodeTable }
func (b *Base) good(addr string) {
	s := b.nodes.shard(addr)
	s.mu.Lock()
	b.mu.Lock() // shard then b.mu: the documented order
	b.mu.Unlock()
	s.mu.Unlock()
}
func (b *Base) inverted(addr string) {
	b.mu.Lock()
	s := b.nodes.shard(addr)
	s.mu.Lock() // b.mu then shard: inversion
	s.mu.Unlock()
	b.mu.Unlock()
}
func (b *Base) released(addr string) {
	b.mu.Lock()
	b.mu.Unlock()
	s := b.nodes.shard(addr)
	s.mu.Lock() // b.mu already released: fine
	s.mu.Unlock()
}`,
	}, LockOrder)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "shard.mu") {
		t.Fatalf("got %v, want exactly the inverted acquisition flagged", messages(diags))
	}
}

func TestLockOrderFlagsTableCallUnderConfigLock(t *testing.T) {
	diags := runOn(t, map[string]string{
		"internal/core/base.go": `package core
type Base struct{ nodes *nodeTable }
func (b *Base) bad() {
	b.mu.Lock()
	defer b.mu.Unlock()
	a, d := b.nodes.counts() // takes every shard lock under b.mu
	_, _ = a, d
}
func (b *Base) good() {
	a, d := b.nodes.counts()
	b.mu.Lock()
	defer b.mu.Unlock()
	_, _ = a, d
}
func (b *Base) accessor(addr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	_ = b.nodes.shard(addr) // shard() itself does not lock
}`,
	}, LockOrder)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "b.mu is held") {
		t.Fatalf("got %v, want exactly the counts-under-b.mu call flagged", messages(diags))
	}
}

func TestLockOrderDoubleShardAndSched(t *testing.T) {
	diags := runOn(t, map[string]string{
		"internal/core/base.go": `package core
type Base struct{ nodes *nodeTable }
func (b *Base) twoShards(x, y string) {
	s1 := b.nodes.shard(x)
	s2 := b.nodes.shard(y)
	s1.mu.Lock()
	s2.mu.Lock() // two shard locks at once
	s2.mu.Unlock()
	s1.mu.Unlock()
}
func (b *Base) schedUnderShard(addr string) {
	s := b.nodes.shard(addr)
	s.mu.Lock()
	defer s.mu.Unlock()
	b.sched.Cancel(addr, 1) // ascending: allowed
}`,
		"internal/lease/scheduler.go": `package lease
type Scheduler struct{}
func (s *Scheduler) ok() {
	s.mu.Lock()
	defer s.mu.Unlock()
}`,
	}, LockOrder)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "shard.mu while shard.mu") {
		t.Fatalf("got %v, want exactly the double shard lock flagged", messages(diags))
	}
}

func TestLockOrderClosureGetsFreshHeldSet(t *testing.T) {
	diags := runOn(t, map[string]string{
		"internal/core/base.go": `package core
type Base struct{ nodes *nodeTable }
func (b *Base) spawn(addr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	go func() {
		s := b.nodes.shard(addr)
		s.mu.Lock() // runs after spawn returns; not under b.mu
		s.mu.Unlock()
	}()
}`,
	}, LockOrder)
	if len(diags) != 0 {
		t.Fatalf("got %v, want none: goroutine bodies do not inherit held locks", messages(diags))
	}
}

func TestSpanEndFlagsUseAfterEnd(t *testing.T) {
	diags := runOn(t, map[string]string{
		"internal/core/push.go": `package core
func (b *Base) push() {
	ctx, sp := b.tracer.StartSpan(b.ctx, "push")
	sp.Tag("k", "v")
	sp.End(nil)
	sc := sp.Context() // use after the span went back to the pool
	_, _ = ctx, sc
}`,
	}, SpanEnd)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "after End") {
		t.Fatalf("got %v, want exactly the post-End Context call flagged", messages(diags))
	}
}

func TestSpanEndAllowsDeferAndReassignment(t *testing.T) {
	diags := runOn(t, map[string]string{
		"internal/core/push.go": `package core
func (b *Base) deferred() {
	_, sp := b.tracer.StartSpan(b.ctx, "op")
	defer sp.End(nil)
	sp.Tag("k", "v") // defer never starts a dead region
}
func (b *Base) reassigned() {
	sp := b.tracer.StartSpanFrom(parent, "a")
	sp.End(nil)
	sp = b.tracer.StartSpanFrom(parent, "b")
	sp.Tag("k", "v") // fresh span, live again
	sp.End(nil)
}
func (b *Base) branches(fail bool) {
	_, sp := b.tracer.StartSpan(b.ctx, "op")
	if fail {
		sp.End(errBoom)
		return
	}
	sp.End(nil)
}
func notASpan() {
	w := newWindow()
	w.End(5)
	w.Len() // End on a non-span type: exempt
}`,
	}, SpanEnd)
	if len(diags) != 0 {
		t.Fatalf("got %v, want none", messages(diags))
	}
}

func TestWireCoverFlagsFieldDrift(t *testing.T) {
	diags := runOn(t, map[string]string{
		"internal/core/codec.go": `package core
type Rec struct {
	ID   string
	Name string
	Seq  int
}
func (r Rec) MarshalWire(e *Encoder) {
	e.String(r.ID)
	e.String(r.Name)
	e.Varint(int64(r.Seq))
}
func (r *Rec) UnmarshalWire(d *Decoder) error {
	r.ID = d.String()
	r.Seq = int(d.Varint())
	return d.Err()
}`,
	}, WireCover)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "never reads field Name") {
		t.Fatalf("got %v, want exactly the missing Name read flagged", messages(diags))
	}
}

func TestWireCoverFlagsMissingPairAndAcceptsParity(t *testing.T) {
	diags := runOn(t, map[string]string{
		"internal/core/codec.go": `package core
type Half struct{ ID string }
func (h Half) MarshalWire(e *Encoder) { e.String(h.ID) }
type Full struct {
	ID    string
	Items []Item
}
func (f Full) MarshalWire(e *Encoder) {
	e.String(f.ID)
	e.Len(len(f.Items))
	for _, it := range f.Items {
		it.MarshalWire(e)
	}
}
func (f *Full) UnmarshalWire(d *Decoder) error {
	f.ID = d.String()
	if n := d.Len(); n > 0 {
		f.Items = make([]Item, n)
		for i := range f.Items {
			if err := f.Items[i].UnmarshalWire(d); err != nil {
				return err
			}
		}
	}
	return d.Err()
}`,
	}, WireCover)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "no UnmarshalWire") {
		t.Fatalf("got %v, want exactly the unpaired Half flagged", messages(diags))
	}
}
