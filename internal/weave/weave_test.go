package weave

import (
	"strings"
	"testing"

	"repro/internal/aop"
	"repro/internal/lvm"
)

func traceBody(log *[]string, tag string) aop.Body {
	return aop.BodyFunc(func(ctx *aop.Context) error {
		*log = append(*log, tag)
		return nil
	})
}

func simpleAspect(name string, pattern string, body aop.Body) *aop.Aspect {
	return &aop.Aspect{Name: name, Advices: []aop.Advice{aop.BeforeCall(pattern, body)}}
}

func TestInsertWithdraw(t *testing.T) {
	w := New()
	site := w.RegisterMethodSite(aop.MethodEntry, aop.Signature{Class: "Motor", Method: "rotate", Return: "void"})
	if site.Active() {
		t.Fatal("fresh site should be inactive")
	}

	var log []string
	a := simpleAspect("log", "Motor.*(..)", traceBody(&log, "hit"))
	if err := w.Insert(a); err != nil {
		t.Fatal(err)
	}
	if !site.Active() {
		t.Fatal("site should be active after insert")
	}
	ctx := &aop.Context{Sig: site.Sig}
	if err := site.Dispatch(ctx); err != nil {
		t.Fatal(err)
	}
	if len(log) != 1 {
		t.Fatalf("advice ran %d times, want 1", len(log))
	}

	if err := w.Withdraw("log"); err != nil {
		t.Fatal(err)
	}
	if site.Active() {
		t.Fatal("site should be inactive after withdraw")
	}
	if w.Has("log") {
		t.Error("Has should report withdrawn aspect gone")
	}
}

func TestInsertDuplicateFails(t *testing.T) {
	w := New()
	body := aop.BodyFunc(func(*aop.Context) error { return nil })
	if err := w.Insert(simpleAspect("a", "*.*(..)", body)); err != nil {
		t.Fatal(err)
	}
	if err := w.Insert(simpleAspect("a", "*.*(..)", body)); err == nil {
		t.Fatal("duplicate insert should fail")
	}
}

func TestWithdrawUnknownFails(t *testing.T) {
	w := New()
	if err := w.Withdraw("ghost"); err == nil {
		t.Fatal("withdrawing unknown aspect should fail")
	}
}

func TestLateSiteRegistrationSeesAspects(t *testing.T) {
	w := New()
	var log []string
	if err := w.Insert(simpleAspect("log", "Motor.*(..)", traceBody(&log, "hit"))); err != nil {
		t.Fatal(err)
	}
	// Site registered after the aspect (app JIT-compiled later).
	site := w.RegisterMethodSite(aop.MethodEntry, aop.Signature{Class: "Motor", Method: "stop", Return: "void"})
	if !site.Active() {
		t.Fatal("late site should be woven against existing aspects")
	}
}

func TestPriorityOrdering(t *testing.T) {
	w := New()
	site := w.RegisterMethodSite(aop.MethodEntry, aop.Signature{Class: "C", Method: "m", Return: "void"})
	var log []string
	high := simpleAspect("second", "C.*(..)", traceBody(&log, "second"))
	high.Priority = 10
	low := simpleAspect("first", "C.*(..)", traceBody(&log, "first"))
	low.Priority = 1
	// Insert in reverse priority order; dispatch must still honour priority.
	if err := w.Insert(high); err != nil {
		t.Fatal(err)
	}
	if err := w.Insert(low); err != nil {
		t.Fatal(err)
	}
	if err := site.Dispatch(&aop.Context{}); err != nil {
		t.Fatal(err)
	}
	if strings.Join(log, ",") != "first,second" {
		t.Errorf("order = %v", log)
	}
}

func TestSamePriorityUsesInsertionOrder(t *testing.T) {
	w := New()
	site := w.RegisterMethodSite(aop.MethodEntry, aop.Signature{Class: "C", Method: "m", Return: "void"})
	var log []string
	if err := w.Insert(simpleAspect("a", "C.*(..)", traceBody(&log, "a"))); err != nil {
		t.Fatal(err)
	}
	if err := w.Insert(simpleAspect("b", "C.*(..)", traceBody(&log, "b"))); err != nil {
		t.Fatal(err)
	}
	if err := site.Dispatch(&aop.Context{}); err != nil {
		t.Fatal(err)
	}
	if strings.Join(log, ",") != "a,b" {
		t.Errorf("order = %v", log)
	}
}

func TestVetoStopsChain(t *testing.T) {
	w := New()
	site := w.RegisterMethodSite(aop.MethodEntry, aop.Signature{Class: "C", Method: "m", Return: "void"})
	var log []string
	deny := &aop.Aspect{Name: "deny", Advices: []aop.Advice{
		aop.BeforeCall("C.*(..)", aop.BodyFunc(func(ctx *aop.Context) error {
			ctx.Abort("access denied")
			return nil
		})),
	}}
	if err := w.Insert(deny); err != nil {
		t.Fatal(err)
	}
	late := simpleAspect("late", "C.*(..)", traceBody(&log, "late"))
	if err := w.Insert(late); err != nil {
		t.Fatal(err)
	}
	err := site.Dispatch(&aop.Context{})
	if err == nil || !strings.Contains(err.Error(), "access denied") {
		t.Fatalf("want veto error, got %v", err)
	}
	if len(log) != 0 {
		t.Error("advice after veto must not run")
	}
}

func TestReplaceSwapsAtomically(t *testing.T) {
	w := New()
	site := w.RegisterMethodSite(aop.MethodEntry, aop.Signature{Class: "C", Method: "m", Return: "void"})
	var log []string
	shutdownRan := false
	old := simpleAspect("policy", "C.*(..)", traceBody(&log, "v1"))
	old.OnShutdown = func() { shutdownRan = true }
	if err := w.Insert(old); err != nil {
		t.Fatal(err)
	}
	v2 := simpleAspect("policy", "C.*(..)", traceBody(&log, "v2"))
	if err := w.Replace("policy", v2); err != nil {
		t.Fatal(err)
	}
	if !shutdownRan {
		t.Error("old aspect's shutdown procedure must run on replace")
	}
	if err := site.Dispatch(&aop.Context{}); err != nil {
		t.Fatal(err)
	}
	if strings.Join(log, ",") != "v2" {
		t.Errorf("log = %v", log)
	}
	if got := w.Aspects(); len(got) != 1 || got[0] != "policy" {
		t.Errorf("Aspects = %v", got)
	}
}

func TestReplaceUnknownFails(t *testing.T) {
	w := New()
	if err := w.Replace("nope", simpleAspect("x", "*.*(..)", aop.BodyFunc(func(*aop.Context) error { return nil }))); err == nil {
		t.Fatal("replace of unknown aspect should fail")
	}
}

func TestOnActivateFailureBlocksInsert(t *testing.T) {
	w := New()
	a := simpleAspect("x", "*.*(..)", aop.BodyFunc(func(*aop.Context) error { return nil }))
	a.OnActivate = func() error { return lvm.Throwf("cannot init") }
	if err := w.Insert(a); err == nil {
		t.Fatal("insert should fail when activation fails")
	}
	if w.Has("x") {
		t.Error("failed aspect must not be registered")
	}
}

func TestAspectsInsertionOrder(t *testing.T) {
	w := New()
	body := aop.BodyFunc(func(*aop.Context) error { return nil })
	for _, n := range []string{"one", "two", "three"} {
		if err := w.Insert(simpleAspect(n, "*.*(..)", body)); err != nil {
			t.Fatal(err)
		}
	}
	got := w.Aspects()
	if strings.Join(got, ",") != "one,two,three" {
		t.Errorf("Aspects = %v", got)
	}
}

func TestFieldSiteMatching(t *testing.T) {
	w := New()
	setSite := w.RegisterFieldSite(aop.FieldSet, "Motor", "speed")
	getSite := w.RegisterFieldSite(aop.FieldGet, "Motor", "speed")
	var log []string
	a := &aop.Aspect{Name: "watch", Advices: []aop.Advice{
		aop.OnFieldSet("Motor.*", traceBody(&log, "set")),
	}}
	if err := w.Insert(a); err != nil {
		t.Fatal(err)
	}
	if !setSite.Active() {
		t.Error("set site should match Motor.*")
	}
	if getSite.Active() {
		t.Error("get site must not match a FieldSet crosscut")
	}
}

func TestSiteCounts(t *testing.T) {
	w := New()
	w.RegisterMethodSite(aop.MethodEntry, aop.Signature{Class: "A", Method: "m", Return: "void"})
	w.RegisterMethodSite(aop.MethodEntry, aop.Signature{Class: "B", Method: "m", Return: "void"})
	if w.SiteCount() != 2 {
		t.Errorf("SiteCount = %d", w.SiteCount())
	}
	body := aop.BodyFunc(func(*aop.Context) error { return nil })
	if err := w.Insert(simpleAspect("a", "A.*(..)", body)); err != nil {
		t.Fatal(err)
	}
	if w.ActiveSiteCount() != 1 {
		t.Errorf("ActiveSiteCount = %d", w.ActiveSiteCount())
	}
}

func TestMethodHooksInvoke(t *testing.T) {
	w := New()
	hooks := w.HookMethod(aop.Signature{Class: "Svc", Method: "echo", Return: "str", Params: []string{"str"}})

	called := 0
	fn := func(args []lvm.Value) (lvm.Value, error) {
		called++
		return lvm.Str("echo:" + args[0].S), nil
	}

	// No advice: straight through.
	v, err := hooks.Invoke(nil, []lvm.Value{lvm.Str("hi")}, fn)
	if err != nil || v.S != "echo:hi" {
		t.Fatalf("plain invoke = %v, %v", v, err)
	}

	// Entry advice rewrites the argument; exit advice rewrites the result.
	a := &aop.Aspect{Name: "shout", Advices: []aop.Advice{
		aop.BeforeCall("Svc.*(..)", aop.BodyFunc(func(ctx *aop.Context) error {
			ctx.SetArg(0, lvm.Str(strings.ToUpper(ctx.Arg(0).S)))
			return nil
		})),
		aop.AfterCall("Svc.*(..)", aop.BodyFunc(func(ctx *aop.Context) error {
			ctx.SetResult(lvm.Str(ctx.Result.S + "!"))
			return nil
		})),
	}}
	if err := w.Insert(a); err != nil {
		t.Fatal(err)
	}
	v, err = hooks.Invoke(nil, []lvm.Value{lvm.Str("hi")}, fn)
	if err != nil {
		t.Fatal(err)
	}
	if v.S != "echo:HI!" {
		t.Errorf("adapted invoke = %q, want echo:HI!", v.S)
	}

	// Veto.
	deny := &aop.Aspect{Name: "deny", Priority: -1, Advices: []aop.Advice{
		aop.BeforeCall("Svc.*(..)", aop.BodyFunc(func(ctx *aop.Context) error {
			ctx.Abort("no")
			return nil
		})),
	}}
	if err := w.Insert(deny); err != nil {
		t.Fatal(err)
	}
	before := called
	if _, err = hooks.Invoke(nil, []lvm.Value{lvm.Str("hi")}, fn); err == nil {
		t.Fatal("vetoed call should error")
	}
	if called != before {
		t.Error("vetoed call must not execute the target")
	}
}

// TestWeaverRandomizedConsistency inserts random aspect sets over random
// sites and cross-checks the weaver's chain state against a brute-force
// matcher after every mutation.
func TestWeaverRandomizedConsistency(t *testing.T) {
	classes := []string{"Motor", "Sensor", "Robot"}
	methods := []string{"rotate", "read", "stop", "moveArm"}
	patterns := []string{
		"*.*(..)", "Motor.*(..)", "*.ro*(..)", "Sensor.read(..)",
		"Robot.moveArm(..)", "*.stop(..)",
	}

	w := New()
	var sites []*Site
	var sigs []aop.Signature
	for _, c := range classes {
		for _, m := range methods {
			sig := aop.Signature{Class: c, Method: m, Return: "void"}
			sites = append(sites, w.RegisterMethodSite(aop.MethodEntry, sig))
			sigs = append(sigs, sig)
		}
	}

	body := aop.BodyFunc(func(*aop.Context) error { return nil })
	active := make(map[string]string) // aspect name -> pattern

	check := func() {
		t.Helper()
		for i, site := range sites {
			want := 0
			for _, pat := range active {
				if aop.MustParsePattern(pat).MatchMethod(sigs[i]) {
					want++
				}
			}
			if got := site.AdviceCount(); got != want {
				t.Fatalf("site %v: advice count %d, want %d (active %v)", sigs[i], got, want, active)
			}
		}
	}

	// Deterministic pseudo-random walk over insert/withdraw operations.
	seed := uint64(42)
	next := func(n int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int(seed>>33) % n
	}
	for step := 0; step < 200; step++ {
		name := "a" + string(rune('0'+next(8)))
		if _, ok := active[name]; ok && next(2) == 0 {
			if err := w.Withdraw(name); err != nil {
				t.Fatal(err)
			}
			delete(active, name)
		} else if _, ok := active[name]; !ok {
			pat := patterns[next(len(patterns))]
			a := &aop.Aspect{Name: name, Advices: []aop.Advice{aop.BeforeCall(pat, body)}}
			if err := w.Insert(a); err != nil {
				t.Fatal(err)
			}
			active[name] = pat
		}
		check()
	}
}
