// Package weave is the run-time weaver at the heart of the PROSE layer. It
// keeps the registry of join-point sites planted by the JIT (or by explicit
// hooks in native Go services), and maps dynamically inserted/withdrawn
// aspects onto per-site advice chains.
//
// The performance-critical property reproduced from the paper is the
// "minimal hook" design: every potential join point carries a stub whose
// inactive cost is a single atomic pointer load, so that methods not affected
// by interceptions are not slowed down.
package weave

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aop"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Site is one static join point in a woven application. The JIT plants a
// stub referencing the Site; Dispatch is the stub's slow path.
type Site struct {
	Kind  aop.Kind
	Sig   aop.Signature
	Field string

	chain atomic.Pointer[chain]

	// metrics is consulted only on the dispatch slow path (chain != nil);
	// the inactive fast path — Active(), one atomic load — never touches it.
	metrics atomic.Pointer[siteMetrics]
}

// siteMetrics is the per-weaver dispatch accounting shared by all sites.
type siteMetrics struct {
	dispatches *metrics.Counter
	errors     *metrics.Counter
}

type chain struct {
	entries []chainEntry
}

type chainEntry struct {
	aspect *aop.Aspect
	advice *aop.Advice
	order  [3]int // priority, insertion sequence, advice index
}

// Active reports whether any advice is currently woven at this site. This is
// the minimal-hook fast path: callers should skip building a Context when it
// returns false.
func (s *Site) Active() bool { return s.chain.Load() != nil }

// AdviceCount returns the number of advice bodies currently attached.
func (s *Site) AdviceCount() int {
	c := s.chain.Load()
	if c == nil {
		return 0
	}
	return len(c.entries)
}

// Dispatch runs the woven advice chain with ctx. The first advice error (or
// veto via ctx.Abort) stops the chain and is returned.
func (s *Site) Dispatch(ctx *aop.Context) error {
	c := s.chain.Load()
	if c == nil {
		return nil
	}
	sm := s.metrics.Load()
	if sm != nil {
		sm.dispatches.Inc()
	}
	for i := range c.entries {
		if err := c.entries[i].advice.Body.Exec(ctx); err != nil {
			if sm != nil {
				sm.errors.Inc()
			}
			return err
		}
		if err := ctx.Aborted(); err != nil {
			if sm != nil {
				sm.errors.Inc()
			}
			return err
		}
	}
	return nil
}

// Weaver owns the sites of one node and the set of active aspects.
type Weaver struct {
	mu      sync.Mutex
	sites   []*Site
	aspects map[string]*insertedAspect
	seq     int

	m *weaverMetrics // nil until Instrument

	// tracer records weave/unweave control-plane spans. It is never consulted
	// on the dispatch path, so tracing adds zero cost to interceptions.
	tracer *trace.Tracer
}

// weaverMetrics holds the weaver's own instruments plus the shared dispatch
// accounting handed to every site.
type weaverMetrics struct {
	site        *siteMetrics
	inserts     *metrics.Counter
	withdraws   *metrics.Counter
	insertNs    *metrics.Histogram
	withdrawNs  *metrics.Histogram
	aspects     *metrics.Gauge
	sites       *metrics.Gauge
	activeSites *metrics.Gauge
}

// Instrument wires the weaver (and every current and future site) into reg:
// interception dispatches and advice errors, weave/withdraw latencies, and
// gauges for registered sites, active sites and active aspects. A nil reg is
// a no-op. Site dispatch accounting lives strictly on the dispatch slow path;
// the inactive join-point fast path stays a single atomic pointer load.
func (w *Weaver) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	wm := &weaverMetrics{
		site: &siteMetrics{
			dispatches: reg.Counter("weave.dispatches"),
			errors:     reg.Counter("weave.dispatch_errors"),
		},
		inserts:     reg.Counter("weave.inserts"),
		withdraws:   reg.Counter("weave.withdraws"),
		insertNs:    reg.Histogram("weave.insert_ns", nil),
		withdrawNs:  reg.Histogram("weave.withdraw_ns", nil),
		aspects:     reg.Gauge("weave.aspects"),
		sites:       reg.Gauge("weave.sites"),
		activeSites: reg.Gauge("weave.active_sites"),
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.m = wm
	for _, s := range w.sites {
		s.metrics.Store(wm.site)
	}
	w.refreshGaugesLocked()
}

// refreshGaugesLocked republishes the structural gauges after a change.
func (w *Weaver) refreshGaugesLocked() {
	if w.m == nil {
		return
	}
	w.m.aspects.Set(int64(len(w.aspects)))
	w.m.sites.Set(int64(len(w.sites)))
	active := 0
	for _, s := range w.sites {
		if s.Active() {
			active++
		}
	}
	w.m.activeSites.Set(int64(active))
}

type insertedAspect struct {
	aspect *aop.Aspect
	seq    int
}

// New returns an empty weaver.
func New() *Weaver {
	return &Weaver{aspects: make(map[string]*insertedAspect)}
}

// RegisterMethodSite creates (and wires) the join-point site for a method
// boundary. kind must be MethodEntry, MethodExit, ExceptionThrow or
// ExceptionHandler.
func (w *Weaver) RegisterMethodSite(kind aop.Kind, sig aop.Signature) *Site {
	s := &Site{Kind: kind, Sig: sig}
	w.addSite(s)
	return s
}

// RegisterFieldSite creates the join-point site for a field access. kind must
// be FieldGet or FieldSet.
func (w *Weaver) RegisterFieldSite(kind aop.Kind, class, field string) *Site {
	s := &Site{Kind: kind, Sig: aop.Signature{Class: class}, Field: field}
	w.addSite(s)
	return s
}

func (w *Weaver) addSite(s *Site) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.m != nil {
		s.metrics.Store(w.m.site)
	}
	w.sites = append(w.sites, s)
	w.recomputeLocked(s)
	w.refreshGaugesLocked()
}

// Insert activates an aspect: its advice is woven into every currently
// registered matching site, and will be woven into sites registered later.
// Aspect names must be unique; inserting a second aspect with the same name
// fails (use Replace for policy evolution).
func (w *Weaver) Insert(a *aop.Aspect) error {
	if err := a.Validate(); err != nil {
		return err
	}
	w.mu.Lock()
	if _, dup := w.aspects[a.Name]; dup {
		w.mu.Unlock()
		return fmt.Errorf("weave: aspect %q already inserted", a.Name)
	}
	w.mu.Unlock()

	if a.OnActivate != nil {
		if err := a.OnActivate(); err != nil {
			return fmt.Errorf("weave: activate %q: %w", a.Name, err)
		}
	}

	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dup := w.aspects[a.Name]; dup {
		return fmt.Errorf("weave: aspect %q already inserted", a.Name)
	}
	start := time.Time{}
	if w.m != nil {
		start = time.Now() //lint:allow clockcheck (real weave latency metric)
	}
	w.seq++
	w.aspects[a.Name] = &insertedAspect{aspect: a, seq: w.seq}
	w.recomputeAllLocked()
	if w.m != nil {
		w.m.inserts.Inc()
		w.m.insertNs.Since(start)
		w.refreshGaugesLocked()
	}
	return nil
}

// Withdraw removes the named aspect, running its shutdown procedure first so
// it can reach a consistent state (per §3.2).
func (w *Weaver) Withdraw(name string) error {
	w.mu.Lock()
	ins, ok := w.aspects[name]
	if !ok {
		w.mu.Unlock()
		return fmt.Errorf("weave: aspect %q not inserted", name)
	}
	start := time.Time{}
	if w.m != nil {
		start = time.Now() //lint:allow clockcheck (real weave latency metric)
	}
	delete(w.aspects, name)
	w.recomputeAllLocked()
	if w.m != nil {
		w.m.withdraws.Inc()
		w.m.withdrawNs.Since(start)
		w.refreshGaugesLocked()
	}
	w.mu.Unlock()

	if ins.aspect.OnShutdown != nil {
		ins.aspect.OnShutdown()
	}
	return nil
}

// Replace atomically swaps an old aspect for a new one, supporting the
// paper's "allow the replacement of obsolete extensions with new ones in case
// the local policy evolves". The old aspect's shutdown runs after the swap.
func (w *Weaver) Replace(oldName string, a *aop.Aspect) error {
	if err := a.Validate(); err != nil {
		return err
	}
	if a.OnActivate != nil {
		if err := a.OnActivate(); err != nil {
			return fmt.Errorf("weave: activate %q: %w", a.Name, err)
		}
	}
	w.mu.Lock()
	old, ok := w.aspects[oldName]
	if !ok {
		w.mu.Unlock()
		return fmt.Errorf("weave: aspect %q not inserted", oldName)
	}
	if oldName != a.Name {
		if _, dup := w.aspects[a.Name]; dup {
			w.mu.Unlock()
			return fmt.Errorf("weave: aspect %q already inserted", a.Name)
		}
	}
	start := time.Time{}
	if w.m != nil {
		start = time.Now() //lint:allow clockcheck (real weave latency metric)
	}
	delete(w.aspects, oldName)
	w.seq++
	w.aspects[a.Name] = &insertedAspect{aspect: a, seq: w.seq}
	w.recomputeAllLocked()
	if w.m != nil {
		w.m.inserts.Inc()
		w.m.insertNs.Since(start)
		w.refreshGaugesLocked()
	}
	w.mu.Unlock()

	if old.aspect.OnShutdown != nil {
		old.aspect.OnShutdown()
	}
	return nil
}

// Trace records weave/unweave operations as spans in tr. Only the
// insert/withdraw/replace control plane is traced; the join-point fast path
// (Active, one atomic load) and Dispatch never touch the tracer. A nil tr is
// a no-op.
func (w *Weaver) Trace(tr *trace.Tracer) {
	if tr == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.tracer = tr
}

func (w *Weaver) traceRef() *trace.Tracer {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.tracer
}

// InsertCtx is Insert recording a "weave.insert" span in the trace carried
// by ctx (typically the extension install that triggered the weave).
func (w *Weaver) InsertCtx(ctx context.Context, a *aop.Aspect) error {
	_, sp := w.traceRef().StartSpan(ctx, "weave.insert")
	sp.Tag("aspect", a.Name)
	err := w.Insert(a)
	sp.End(err)
	return err
}

// WithdrawCtx is Withdraw recording a "weave.withdraw" span in the trace
// carried by ctx.
func (w *Weaver) WithdrawCtx(ctx context.Context, name string) error {
	_, sp := w.traceRef().StartSpan(ctx, "weave.withdraw")
	sp.Tag("aspect", name)
	err := w.Withdraw(name)
	sp.End(err)
	return err
}

// ReplaceCtx is Replace recording a "weave.replace" span in the trace
// carried by ctx.
func (w *Weaver) ReplaceCtx(ctx context.Context, oldName string, a *aop.Aspect) error {
	_, sp := w.traceRef().StartSpan(ctx, "weave.replace")
	sp.Tag("aspect", a.Name)
	if oldName != a.Name {
		sp.Tag("replaces", oldName)
	}
	err := w.Replace(oldName, a)
	sp.End(err)
	return err
}

// Has reports whether the named aspect is active.
func (w *Weaver) Has(name string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	_, ok := w.aspects[name]
	return ok
}

// Aspects returns the names of active aspects in insertion order.
func (w *Weaver) Aspects() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	type named struct {
		name string
		seq  int
	}
	out := make([]named, 0, len(w.aspects))
	for n, ins := range w.aspects {
		out = append(out, named{n, ins.seq})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	names := make([]string, len(out))
	for i, n := range out {
		names[i] = n.name
	}
	return names
}

// SiteCount returns the number of registered join-point sites.
func (w *Weaver) SiteCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.sites)
}

// ActiveSiteCount returns the number of sites with at least one advice woven.
func (w *Weaver) ActiveSiteCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := 0
	for _, s := range w.sites {
		if s.Active() {
			n++
		}
	}
	return n
}

// recomputeAllLocked rebuilds every site's chain; called on aspect changes.
func (w *Weaver) recomputeAllLocked() {
	for _, s := range w.sites {
		w.recomputeLocked(s)
	}
}

// recomputeLocked rebuilds one site's chain against the active aspect set.
func (w *Weaver) recomputeLocked(s *Site) {
	var entries []chainEntry
	for _, ins := range w.aspects {
		a := ins.aspect
		for i := range a.Advices {
			adv := &a.Advices[i]
			if adv.Cut.Kind != s.Kind {
				continue
			}
			if !matches(adv, s) {
				continue
			}
			entries = append(entries, chainEntry{
				aspect: a,
				advice: adv,
				order:  [3]int{a.Priority, ins.seq, i},
			})
		}
	}
	if len(entries) == 0 {
		s.chain.Store(nil)
		return
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i].order, entries[j].order
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		if a[1] != b[1] {
			return a[1] < b[1]
		}
		return a[2] < b[2]
	})
	s.chain.Store(&chain{entries: entries})
}

func matches(adv *aop.Advice, s *Site) bool {
	switch s.Kind {
	case aop.FieldGet, aop.FieldSet:
		return adv.Cut.Pat.MatchField(s.Sig.Class, s.Field)
	default:
		return adv.Cut.Pat.MatchMethod(s.Sig)
	}
}
