package weave_test

import (
	"fmt"

	"repro/internal/aop"
	"repro/internal/jit"
	"repro/internal/lvm"
	"repro/internal/weave"
)

// Example demonstrates the core PROSE loop: compile an application with hook
// stubs, weave an aspect at run time, observe the interception, withdraw.
func Example() {
	weaver := weave.New()
	machine := jit.NewMachine(lvm.MustAssemble(`
class Robot
  method void moveArm(int deg)
    retv
  end
end`), weaver, nil)

	aspect := &aop.Aspect{
		Name: "monitor",
		Advices: []aop.Advice{
			aop.BeforeCall("Robot.moveArm(..)", aop.BodyFunc(func(ctx *aop.Context) error {
				fmt.Printf("intercepted %s.%s(%s)\n", ctx.Sig.Class, ctx.Sig.Method, ctx.Arg(0))
				return nil
			})),
		},
	}
	if err := weaver.Insert(aspect); err != nil {
		fmt.Println(err)
		return
	}
	if _, err := machine.Call("Robot", "moveArm", nil, lvm.Int(30)); err != nil {
		fmt.Println(err)
		return
	}
	if err := weaver.Withdraw("monitor"); err != nil {
		fmt.Println(err)
		return
	}
	if _, err := machine.Call("Robot", "moveArm", nil, lvm.Int(60)); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("withdrawn: second call not intercepted")
	// Output:
	// intercepted Robot.moveArm(30)
	// withdrawn: second call not intercepted
}

// ExampleMethodHooks shows how a native Go service routes its calls through
// the weaver so extensions can adapt it.
func ExampleMethodHooks() {
	weaver := weave.New()
	hooks := weaver.HookMethod(aop.Signature{
		Class: "Greeter", Method: "greet", Return: "str", Params: []string{"str"},
	})

	greet := func(args []lvm.Value) (lvm.Value, error) {
		return lvm.Str("hello, " + args[0].S), nil
	}

	polite := &aop.Aspect{
		Name: "politeness",
		Advices: []aop.Advice{
			aop.AfterCall("Greeter.*(..)", aop.BodyFunc(func(ctx *aop.Context) error {
				ctx.SetResult(lvm.Str(ctx.Result.S + "!"))
				return nil
			})),
		},
	}
	if err := weaver.Insert(polite); err != nil {
		fmt.Println(err)
		return
	}
	out, err := hooks.Invoke(nil, []lvm.Value{lvm.Str("world")}, greet)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(out.S)
	// Output:
	// hello, world!
}
