package weave

import (
	"sync"

	"repro/internal/aop"
	"repro/internal/lvm"
)

// ctxPool recycles advice contexts so the woven fast path stays allocation
// free for inactive sites and cheap for active ones.
var ctxPool = sync.Pool{New: func() any { return new(aop.Context) }}

// GetContext fetches a cleared Context from the pool.
func GetContext() *aop.Context { return ctxPool.Get().(*aop.Context) }

// PutContext returns a Context to the pool.
func PutContext(c *aop.Context) {
	c.Reset()
	ctxPool.Put(c)
}

// MethodHooks is the pair of stub sites for a natively implemented (Go)
// method. Remote services expose their operations through MethodHooks so
// that MIDAS extensions can adapt them exactly like LVM code — this is the
// adaptation point of Fig. 2, where the interceptions around a remote method
// call m_R live.
type MethodHooks struct {
	Sig   aop.Signature
	Entry *Site
	Exit  *Site
}

// HookMethod registers entry and exit sites for a native method signature.
func (w *Weaver) HookMethod(sig aop.Signature) *MethodHooks {
	return &MethodHooks{
		Sig:   sig,
		Entry: w.RegisterMethodSite(aop.MethodEntry, sig),
		Exit:  w.RegisterMethodSite(aop.MethodExit, sig),
	}
}

// Invoke runs fn through the woven advice chains. When no advice is attached
// the only cost over a direct call is two atomic loads. Entry advice may veto
// the call (ctx.Abort) or rewrite arguments; exit advice may observe or
// rewrite the result.
func (h *MethodHooks) Invoke(self *lvm.Object, args []lvm.Value, fn func(args []lvm.Value) (lvm.Value, error)) (lvm.Value, error) {
	return h.InvokeWithMeta(self, args, nil, fn)
}

// InvokeWithMeta is Invoke with initial cross-extension metadata (e.g. the
// transport layer provides the remote caller's identity, which the session
// extension then exposes to the access-control extension).
func (h *MethodHooks) InvokeWithMeta(self *lvm.Object, args []lvm.Value, meta map[string]lvm.Value, fn func(args []lvm.Value) (lvm.Value, error)) (lvm.Value, error) {
	if !h.Entry.Active() && !h.Exit.Active() {
		return fn(args)
	}
	ctx := GetContext()
	defer PutContext(ctx)
	ctx.Kind = aop.MethodEntry
	ctx.Sig = h.Sig
	ctx.Self = self
	ctx.Args = args
	for k, v := range meta {
		ctx.Put(k, v)
	}
	if err := h.Entry.Dispatch(ctx); err != nil {
		return lvm.Nil(), err
	}
	res, err := fn(ctx.Args)
	if err != nil {
		return lvm.Nil(), err
	}
	ctx.Kind = aop.MethodExit
	ctx.Result = res
	if err := h.Exit.Dispatch(ctx); err != nil {
		return lvm.Nil(), err
	}
	return ctx.Result, nil
}
