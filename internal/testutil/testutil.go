// Package testutil holds the small helpers every scenario and integration
// test re-implemented locally: condition polling with a deadline, counter
// waits against a metrics registry, and seed selection for deterministic
// simulations. Tests across packages share one vocabulary (and one failure
// format) instead of drifting copies.
package testutil

import (
	"os"
	"strconv"
	"time"

	"repro/internal/metrics"
)

// TB is the subset of testing.TB the helpers need; it keeps testutil free of
// a direct dependency on how callers construct their tests.
type TB interface {
	Helper()
	Fatalf(format string, args ...any)
	Logf(format string, args ...any)
}

// WaitFor polls cond every 2ms until it holds, failing the test after 5s.
// Scenario tests drive simulated time themselves and use WaitFor only to let
// real goroutines (renew workers, sweepers, RPC handlers) catch up.
func WaitFor(t TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second) //lint:allow clockcheck (test helper bounds real goroutine settling)
	for !cond() {
		if time.Now().After(deadline) { //lint:allow clockcheck (test helper bounds real goroutine settling)
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond) //lint:allow clockcheck (real pause lets goroutines run between polls)
	}
}

// WaitForCounter polls reg until the named counter reaches at least want.
func WaitForCounter(t TB, reg *metrics.Registry, name string, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second) //lint:allow clockcheck (test helper bounds real goroutine settling)
	for time.Now().Before(deadline) {           //lint:allow clockcheck (test helper bounds real goroutine settling)
		if reg.Snapshot().Counters[name] >= want {
			return
		}
		time.Sleep(5 * time.Millisecond) //lint:allow clockcheck (real pause lets goroutines run between polls)
	}
	t.Fatalf("counter %s = %d, want >= %d (timeout)",
		name, reg.Snapshot().Counters[name], want)
}

// Counter reads one counter from a registry snapshot (0 when absent).
func Counter(reg *metrics.Registry, name string) uint64 {
	return reg.Snapshot().Counters[name]
}

// Gauge reads one gauge from a registry snapshot (0 when absent).
func Gauge(reg *metrics.Registry, name string) int64 {
	return reg.Snapshot().Gauges[name]
}

// SeedFromEnv returns the simulation seed: the named environment variable
// when set (logged for the record), fallback otherwise. Pass a pinned
// fallback for replayable tests, or time.Now().UnixNano() for fuzzing runs.
func SeedFromEnv(t TB, env string, fallback int64) int64 {
	t.Helper()
	if v := os.Getenv(env); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("%s=%q: %v", env, v, err)
		}
		t.Logf("using %s=%d", env, seed)
		return seed
	}
	t.Logf("set %s=%d to reproduce this run", env, fallback)
	return fallback
}
