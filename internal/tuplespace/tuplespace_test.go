package tuplespace

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/clock"
)

func TestOutRdIn(t *testing.T) {
	s := New(nil)
	s.Out(Tuple{FStr("ext"), FStr("monitor"), FInt(1)}, 0)
	s.Out(Tuple{FStr("ext"), FStr("access"), FInt(2)}, 0)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}

	// Rd does not consume.
	got, ok := s.RdNonBlock(Tuple{FStr("ext"), FStr("monitor"), FAny()})
	if !ok || got[2].I != 1 {
		t.Fatalf("Rd = %v, %v", got, ok)
	}
	if s.Len() != 2 {
		t.Error("Rd consumed a tuple")
	}

	// In consumes.
	got, ok = s.InNonBlock(Tuple{FStr("ext"), FAny(), FAny()})
	if !ok {
		t.Fatal("In found nothing")
	}
	if s.Len() != 1 {
		t.Errorf("Len after In = %d", s.Len())
	}
	// FIFO matching order: the first Out is returned first.
	if got[1].S != "monitor" {
		t.Errorf("In returned %v, want monitor first", got)
	}

	if _, ok := s.RdNonBlock(Tuple{FStr("nope")}); ok {
		t.Error("template with wrong arity matched")
	}
}

func TestFieldMatching(t *testing.T) {
	tests := []struct {
		tmpl, tuple Tuple
		want        bool
	}{
		{Tuple{FStr("a")}, Tuple{FStr("a")}, true},
		{Tuple{FStr("a")}, Tuple{FStr("b")}, false},
		{Tuple{FAny()}, Tuple{FStr("b")}, true},
		{Tuple{FInt(3)}, Tuple{FInt(3)}, true},
		{Tuple{FInt(3)}, Tuple{FInt(4)}, false},
		{Tuple{FStr("3")}, Tuple{FInt(3)}, false}, // type mismatch
		{Tuple{FBytes([]byte{1})}, Tuple{FBytes([]byte{1})}, true},
		{Tuple{FBytes([]byte{1})}, Tuple{FBytes([]byte{2})}, false},
		{Tuple{FAny(), FAny()}, Tuple{FStr("x")}, false}, // arity
	}
	for i, tt := range tests {
		if got := tt.tmpl.Matches(tt.tuple); got != tt.want {
			t.Errorf("case %d: Matches = %v, want %v", i, got, tt.want)
		}
	}
}

func TestBlockingRdServedByOut(t *testing.T) {
	s := New(nil)
	done := make(chan Tuple, 1)
	go func() {
		got, err := s.Rd(context.Background(), Tuple{FStr("ext"), FAny()})
		if err != nil {
			t.Errorf("Rd: %v", err)
		}
		done <- got
	}()
	time.Sleep(5 * time.Millisecond)
	s.Out(Tuple{FStr("ext"), FStr("monitor")}, 0)
	select {
	case got := <-done:
		if got[1].S != "monitor" {
			t.Errorf("got %v", got)
		}
	case <-time.After(time.Second):
		t.Fatal("blocked Rd not served")
	}
	// Rd must leave the tuple in the space.
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestBlockingInConsumes(t *testing.T) {
	s := New(nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := s.In(context.Background(), Tuple{FStr("x")}); err != nil {
			t.Errorf("In: %v", err)
		}
	}()
	time.Sleep(5 * time.Millisecond)
	s.Out(Tuple{FStr("x")}, 0)
	<-done
	if s.Len() != 0 {
		t.Errorf("Len = %d, want 0", s.Len())
	}
}

func TestBlockedReadContextCancel(t *testing.T) {
	s := New(nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := s.Rd(ctx, Tuple{FStr("never")})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestTupleLeaseExpiry(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	s := New(clk)
	l := s.Out(Tuple{FStr("ephemeral")}, 10*time.Second)
	if l.ID == "" {
		t.Fatal("no lease granted")
	}
	clk.Advance(5 * time.Second)
	if err := s.Renew(l.ID, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	clk.Advance(8 * time.Second)
	s.ExpireNow()
	if s.Len() != 1 {
		t.Fatal("renewed tuple expired early")
	}
	clk.Advance(5 * time.Second)
	s.ExpireNow()
	if s.Len() != 0 {
		t.Fatal("tuple survived lease expiry")
	}
}

func TestInCancelsTupleLease(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	s := New(clk)
	s.Out(Tuple{FStr("x")}, time.Minute)
	if _, ok := s.InNonBlock(Tuple{FAny()}); !ok {
		t.Fatal("In failed")
	}
	if s.Grantor().Len() != 0 {
		t.Error("consumed tuple's lease not cancelled")
	}
}

func TestRdAllOrder(t *testing.T) {
	s := New(nil)
	for i := int64(0); i < 5; i++ {
		s.Out(Tuple{FStr("seq"), FInt(i)}, 0)
	}
	s.Out(Tuple{FStr("other")}, 0)
	all := s.RdAll(Tuple{FStr("seq"), FAny()})
	if len(all) != 5 {
		t.Fatalf("RdAll = %d tuples", len(all))
	}
	for i, tu := range all {
		if tu[1].I != int64(i) {
			t.Errorf("order[%d] = %d", i, tu[1].I)
		}
	}
}

func TestCloseWakesWaiters(t *testing.T) {
	s := New(nil)
	errCh := make(chan error, 1)
	go func() {
		_, err := s.Rd(context.Background(), Tuple{FStr("never")})
		errCh <- err
	}()
	time.Sleep(5 * time.Millisecond)
	s.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("err = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter not woken by Close")
	}
	if _, err := s.Rd(context.Background(), Tuple{FAny()}); !errors.Is(err, ErrClosed) {
		t.Errorf("Rd after close: %v", err)
	}
}
