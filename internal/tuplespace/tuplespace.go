// Package tuplespace implements a Linda-style generative-communication space
// (Gelernter 1985), the distribution substrate the paper names as future work
// for MIDAS ("we are looking at tuple spaces to get a more flexible and
// expressive platform for distributing extensions"). Tuples are written with
// Out, read with Rd (non-destructive) and taken with In (destructive); reads
// match templates field-by-field with wildcards; leased tuples expire like
// any other MIDAS artifact.
package tuplespace

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/lease"
)

// Field is one tuple element: a typed scalar.
type Field struct {
	S   string
	I   int64
	B   []byte
	Set uint8 // 1=string, 2=int, 3=bytes
}

// FStr builds a string field.
func FStr(s string) Field { return Field{S: s, Set: 1} }

// FInt builds an integer field.
func FInt(i int64) Field { return Field{I: i, Set: 2} }

// FBytes builds a bytes field.
func FBytes(b []byte) Field { return Field{B: b, Set: 3} }

// FAny is the wildcard template field.
func FAny() Field { return Field{} }

func (f Field) matches(v Field) bool {
	if f.Set == 0 {
		return true // wildcard
	}
	if f.Set != v.Set {
		return false
	}
	switch f.Set {
	case 1:
		return f.S == v.S
	case 2:
		return f.I == v.I
	default:
		if len(f.B) != len(v.B) {
			return false
		}
		for i := range f.B {
			if f.B[i] != v.B[i] {
				return false
			}
		}
		return true
	}
}

// Tuple is an ordered sequence of fields.
type Tuple []Field

// Matches reports whether template t selects tuple v (same arity, each
// template field matches).
func (t Tuple) Matches(v Tuple) bool {
	if len(t) != len(v) {
		return false
	}
	for i := range t {
		if !t[i].matches(v[i]) {
			return false
		}
	}
	return true
}

// ErrClosed is returned by blocking operations when the space closes.
var ErrClosed = errors.New("tuplespace: closed")

type entry struct {
	tuple   Tuple
	leaseID lease.ID
	seq     int64
}

type waiter struct {
	tmpl Tuple
	take bool
	ch   chan Tuple
}

// Space is an in-process tuple space with leased tuples.
type Space struct {
	grantor *lease.Grantor

	mu      sync.Mutex
	entries map[int64]*entry
	waiters map[int64]*waiter
	seq     int64
	wseq    int64
	closed  bool
}

// New returns an empty space on clk (nil = real clock).
func New(clk clock.Clock) *Space {
	if clk == nil {
		clk = clock.Real{}
	}
	return &Space{
		grantor: lease.NewGrantor(clk),
		entries: make(map[int64]*entry),
		waiters: make(map[int64]*waiter),
	}
}

// Grantor exposes the lease grantor for sweeping.
func (s *Space) Grantor() *lease.Grantor { return s.grantor }

// Out writes a tuple under a lease (0 = immortal). A blocked In/Rd waiting
// on a matching template is served immediately — In consumes the tuple.
func (s *Space) Out(t Tuple, dur time.Duration) lease.Lease {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return lease.Lease{}
	}
	// Serve a blocked waiter first (take-waiters consume the tuple).
	for id, w := range s.waiters {
		if w.tmpl.Matches(t) {
			delete(s.waiters, id)
			take := w.take
			s.mu.Unlock()
			w.ch <- t
			if take {
				return lease.Lease{}
			}
			// Rd waiters leave the tuple in the space.
			s.mu.Lock()
			break
		}
	}
	s.seq++
	e := &entry{tuple: t, seq: s.seq}
	id := s.seq
	s.entries[id] = e
	s.mu.Unlock()

	var l lease.Lease
	if dur > 0 {
		l = s.grantor.Grant(dur, func(lease.ID) {
			s.mu.Lock()
			delete(s.entries, id)
			s.mu.Unlock()
		})
		s.mu.Lock()
		if cur, ok := s.entries[id]; ok {
			cur.leaseID = l.ID
		}
		s.mu.Unlock()
	}
	return l
}

// Renew extends a tuple's lease.
func (s *Space) Renew(id lease.ID, dur time.Duration) error {
	_, err := s.grantor.Renew(id, dur)
	return err
}

// RdNonBlock returns (a copy of the first) matching tuple without removing
// it, reporting whether one was found. Matching order is write order.
func (s *Space) RdNonBlock(tmpl Tuple) (Tuple, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.findLocked(tmpl)
	if e == nil {
		return nil, false
	}
	return append(Tuple(nil), e.tuple...), true
}

// InNonBlock removes and returns the first matching tuple.
func (s *Space) InNonBlock(tmpl Tuple) (Tuple, bool) {
	s.mu.Lock()
	e := s.findLocked(tmpl)
	if e == nil {
		s.mu.Unlock()
		return nil, false
	}
	delete(s.entries, e.seq)
	leaseID := e.leaseID
	s.mu.Unlock()
	if leaseID != "" {
		_ = s.grantor.Cancel(leaseID)
	}
	return e.tuple, true
}

// Rd blocks until a matching tuple exists and returns a copy of it.
func (s *Space) Rd(ctx context.Context, tmpl Tuple) (Tuple, error) {
	return s.wait(ctx, tmpl, false)
}

// In blocks until a matching tuple exists and removes it.
func (s *Space) In(ctx context.Context, tmpl Tuple) (Tuple, error) {
	return s.wait(ctx, tmpl, true)
}

func (s *Space) wait(ctx context.Context, tmpl Tuple, take bool) (Tuple, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if e := s.findLocked(tmpl); e != nil {
		if take {
			delete(s.entries, e.seq)
			leaseID := e.leaseID
			s.mu.Unlock()
			if leaseID != "" {
				_ = s.grantor.Cancel(leaseID)
			}
			return e.tuple, nil
		}
		t := append(Tuple(nil), e.tuple...)
		s.mu.Unlock()
		return t, nil
	}
	s.wseq++
	id := s.wseq
	w := &waiter{tmpl: tmpl, take: take, ch: make(chan Tuple, 1)}
	s.waiters[id] = w
	s.mu.Unlock()

	select {
	case t, ok := <-w.ch:
		if !ok {
			return nil, ErrClosed
		}
		return t, nil
	case <-ctx.Done():
		s.mu.Lock()
		delete(s.waiters, id)
		s.mu.Unlock()
		// A concurrent Out may have already served us.
		select {
		case t, ok := <-w.ch:
			if ok {
				return t, nil
			}
		default:
		}
		return nil, ctx.Err()
	}
}

// RdAll returns copies of all tuples matching tmpl, in write order.
func (s *Space) RdAll(tmpl Tuple) []Tuple {
	s.mu.Lock()
	defer s.mu.Unlock()
	var found []*entry
	for _, e := range s.entries {
		if tmpl.Matches(e.tuple) {
			found = append(found, e)
		}
	}
	// Write order.
	for i := 1; i < len(found); i++ {
		for j := i; j > 0 && found[j].seq < found[j-1].seq; j-- {
			found[j], found[j-1] = found[j-1], found[j]
		}
	}
	out := make([]Tuple, len(found))
	for i, e := range found {
		out[i] = append(Tuple(nil), e.tuple...)
	}
	return out
}

// Len returns the number of stored tuples.
func (s *Space) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// ExpireNow sweeps lapsed tuple leases.
func (s *Space) ExpireNow() int { return s.grantor.ExpireNow() }

// Close wakes all blocked readers with ErrClosed.
func (s *Space) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ws := make([]*waiter, 0, len(s.waiters))
	for _, w := range s.waiters {
		ws = append(ws, w)
	}
	s.waiters = make(map[int64]*waiter)
	s.mu.Unlock()
	for _, w := range ws {
		close(w.ch)
	}
}

func (s *Space) findLocked(tmpl Tuple) *entry {
	var best *entry
	for _, e := range s.entries {
		if tmpl.Matches(e.tuple) && (best == nil || e.seq < best.seq) {
			best = e
		}
	}
	return best
}
